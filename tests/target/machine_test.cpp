//===- tests/target/machine_test.cpp - the simulator -----------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "target/machine.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::target;

namespace {

constexpr uint32_t Base = 0x1000;

class MachineTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  /// Loads \p Program at Base and positions the pc there.
  Machine load(const std::vector<Instr> &Program) {
    const TargetDesc &Desc = *GetParam();
    Machine M(Desc);
    uint32_t Addr = Base;
    for (const Instr &In : Program) {
      EXPECT_TRUE(M.storeInt(Addr, 4, Desc.Enc.encode(In)));
      Addr += 4;
    }
    M.Pc = Base;
    M.setGpr(Desc.SpReg, M.memSize() - 4096);
    return M;
  }
};

TEST_P(MachineTest, ArithmeticAndExit) {
  const TargetDesc &D = *GetParam();
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 5),
      Instr::i(Op::AddI, 2, 0, 7),
      Instr::r(Op::Add, 3, 1, 2),
      Instr::r(Op::Mul, 3, 3, 2),
      Instr::i(Op::AddI, D.FirstArgReg, 3, -4),
      Instr::i(Op::Sys, 0, D.FirstArgReg,
               static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 80u); // (5+7)*7 - 4
}

TEST_P(MachineTest, GprZeroIsHardwired) {
  Machine M = load({
      Instr::i(Op::AddI, 0, 0, 99),
      Instr::i(Op::Sys, 0, 0, static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R = M.run(10);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 0u);
}

TEST_P(MachineTest, ByteOrderOfMemory) {
  const TargetDesc &D = *GetParam();
  Machine M(D);
  ASSERT_TRUE(M.storeInt(0x2000, 4, 0x11223344));
  uint32_t Half = 0;
  ASSERT_TRUE(M.loadInt(0x2000, 2, Half));
  EXPECT_EQ(Half, D.isBigEndian() ? 0x1122u : 0x3344u);
  uint8_t Raw[4];
  ASSERT_TRUE(M.readBytes(0x2000, 4, Raw));
  EXPECT_EQ(Raw[0], D.isBigEndian() ? 0x11 : 0x44);
}

TEST_P(MachineTest, BranchesAndLoops) {
  const TargetDesc &D = *GetParam();
  // Sum 1..5 with a countdown loop.
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 5),
      Instr::i(Op::AddI, 2, 0, 0),
      // loop:
      Instr::r(Op::Add, 2, 2, 1),
      Instr::i(Op::AddI, 1, 1, -1),
      Instr::i(Op::Bne, 1, 0, -3), // back to loop
      Instr::i(Op::Sys, 0, 2, static_cast<int32_t>(Syscall::Exit)),
  });
  (void)D;
  RunResult R = M.run(1000);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 15u);
}

TEST_P(MachineTest, LoadStoreSignedness) {
  const TargetDesc &D = *GetParam();
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, -2),
      Instr::i(Op::Sb, 1, D.SpReg, 0),
      Instr::i(Op::Lb, 2, D.SpReg, 0),
      Instr::nop(),
      Instr::i(Op::Sys, 0, 2, static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(static_cast<int32_t>(R.Value), -2); // Lb sign-extends
}

TEST_P(MachineTest, BreakpointStopsAtBreak) {
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 1),
      Instr::brk(),
      Instr::i(Op::AddI, 1, 1, 1),
      Instr::i(Op::Sys, 0, 1, static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Breakpoint);
  EXPECT_EQ(M.Pc, Base + 4); // pc rests on the break word
  // The debugger resumes by advancing the pc past the planted no-op.
  M.Pc += 4;
  R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 2u);
}

TEST_P(MachineTest, FaultsAndBudget) {
  const TargetDesc &D = *GetParam();
  // Division by zero.
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 3),
      Instr::r(Op::Div, 1, 1, 0),
  });
  EXPECT_EQ(M.run(10).Kind, StopKind::DivFault);

  // Memory fault: load far past the end of memory.
  Machine M2 = load({
      Instr::i(Op::Lui, 1, 0, 0xfff0),
      Instr::i(Op::Lw, 2, 1, 0),
  });
  RunResult R2 = M2.run(10);
  EXPECT_EQ(R2.Kind, StopKind::MemFault);
  EXPECT_EQ(R2.Value, 0xfff00000u);

  // Illegal instruction: the all-zero word never decodes.
  Machine M3(D);
  M3.Pc = 0x3000;
  EXPECT_EQ(M3.run(10).Kind, StopKind::IllegalInstr);

  // Budget exhaustion is resumable.
  Machine M4 = load({Instr::j(Op::J, Base / 4)});
  EXPECT_EQ(M4.run(100).Kind, StopKind::Running);
  EXPECT_EQ(M4.run(100).Kind, StopKind::Running);
}

TEST_P(MachineTest, CallAndReturn) {
  const TargetDesc &D = *GetParam();
  // _start: jal f; exit(rv).  f: rv = 41 + 1; jalr back.
  Machine M = load({
      Instr::j(Op::Jal, (Base + 12) / 4),
      Instr::i(Op::Sys, 0, D.RvReg, static_cast<int32_t>(Syscall::Exit)),
      Instr::nop(),
      // f:
      Instr::i(Op::AddI, D.RvReg, 0, 41),
      Instr::i(Op::AddI, D.RvReg, D.RvReg, 1),
      Instr::r(Op::Jalr, 0, D.RaReg, 0),
  });
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 42u);
}

TEST_P(MachineTest, FloatsAndConsole) {
  const TargetDesc &D = *GetParam();
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 5),
      Instr::r(Op::CvtIF, 2, 1, 0),
      Instr::i(Op::AddI, 1, 0, 2),
      Instr::r(Op::CvtIF, 3, 1, 0),
      Instr::r(Op::FDiv, 2, 2, 3), // 2.5
      Instr::i(Op::Sys, 0, 2, static_cast<int32_t>(Syscall::PutFloat)),
      Instr::i(Op::AddI, 1, 0, 10),
      Instr::i(Op::Sys, 0, 1, static_cast<int32_t>(Syscall::PutChar)),
      Instr::i(Op::AddI, 1, 0, -7),
      Instr::i(Op::Sys, 0, 1, static_cast<int32_t>(Syscall::PutInt)),
      Instr::i(Op::Sys, 0, 0, static_cast<int32_t>(Syscall::Exit)),
  });
  (void)D;
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(M.ConsoleOut, "2.5\n-7");
}

TEST_P(MachineTest, FloatMemoryRoundTrip) {
  const TargetDesc &D = *GetParam();
  std::vector<Instr> Prog = {
      Instr::i(Op::AddI, 1, 0, 7),
      Instr::r(Op::CvtIF, 2, 1, 0),
      Instr::i(Op::AddI, 1, 0, 2),
      Instr::r(Op::CvtIF, 3, 1, 0),
      Instr::r(Op::FDiv, 2, 2, 3), // 3.5
      Instr::i(Op::Fs8, 2, D.SpReg, 16),
      Instr::i(Op::Fl8, 4, D.SpReg, 16),
      Instr::r(Op::CvtFI, 1, 4, 0), // truncates to 3
      Instr::nop(),
      Instr::i(Op::Sys, 0, 1, static_cast<int32_t>(Syscall::Exit)),
  };
  Machine M = load(Prog);
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 3u);
}

TEST_P(MachineTest, DelaySlotHazard) {
  const TargetDesc &D = *GetParam();
  Machine M = load({
      Instr::i(Op::AddI, 1, 0, 11),
      Instr::i(Op::Sw, 1, D.SpReg, 0),
      Instr::i(Op::Lw, 2, D.SpReg, 0),
      Instr::i(Op::AddI, 3, 2, 0), // reads r2 in the delay slot
      Instr::i(Op::Sys, 0, 3, static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R = M.run(100);
  if (D.LoadDelaySlots > 0) {
    ASSERT_EQ(R.Kind, StopKind::DelayHazard) << D.Name;
    EXPECT_EQ(M.Pc, Base + 12);
  } else {
    ASSERT_EQ(R.Kind, StopKind::Exited) << D.Name;
    EXPECT_EQ(R.Value, 11u);
  }

  // With a no-op (or any independent instruction) in the slot every
  // target agrees.
  Machine M2 = load({
      Instr::i(Op::AddI, 1, 0, 11),
      Instr::i(Op::Sw, 1, D.SpReg, 0),
      Instr::i(Op::Lw, 2, D.SpReg, 0),
      Instr::nop(),
      Instr::i(Op::AddI, 3, 2, 0),
      Instr::i(Op::Sys, 0, 3, static_cast<int32_t>(Syscall::Exit)),
  });
  RunResult R2 = M2.run(100);
  ASSERT_EQ(R2.Kind, StopKind::Exited);
  EXPECT_EQ(R2.Value, 11u);
}

TEST_P(MachineTest, PutStr) {
  const TargetDesc &D = *GetParam();
  Machine M(D);
  const char *Msg = "hi there";
  ASSERT_TRUE(M.writeBytes(0x8000, 9,
                           reinterpret_cast<const uint8_t *>(Msg)));
  uint32_t Addr = Base;
  std::vector<Instr> Prog = {
      Instr::i(Op::Lui, 1, 0, 0),
      Instr::i(Op::OrI, 1, 1, 0x8000),
      Instr::i(Op::Sys, 0, 1, static_cast<int32_t>(Syscall::PutStr)),
      Instr::i(Op::Sys, 0, 0, static_cast<int32_t>(Syscall::Exit)),
  };
  for (const Instr &In : Prog) {
    ASSERT_TRUE(M.storeInt(Addr, 4, D.Enc.encode(In)));
    Addr += 4;
  }
  M.Pc = Base;
  RunResult R = M.run(100);
  ASSERT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(M.ConsoleOut, "hi there");
}

INSTANTIATE_TEST_SUITE_P(AllTargets, MachineTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
