//===- tests/target/disasm_test.cpp - disassembly ---------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "target/disasm.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::target;

namespace {

TEST(Disasm, RendersCommonShapes) {
  const TargetDesc &D = *targetByName("zmips");
  EXPECT_EQ(disassemble(D, D.nopWord()), "nop");
  EXPECT_EQ(disassemble(D, D.breakWord()), "break");
  EXPECT_EQ(disassemble(D, D.Enc.encode(Instr::r(Op::Add, 3, 1, 2))),
            "add r3, r1, r2");
  EXPECT_EQ(disassemble(D, D.Enc.encode(Instr::i(Op::AddI, 4, 0, -4))),
            "addi r4, r0, -4");
  EXPECT_EQ(disassemble(D, D.Enc.encode(Instr::i(Op::Lw, 2, 29, 8))),
            "lw r2, 8(r29)");
  EXPECT_EQ(disassemble(D, D.Enc.encode(Instr::r(Op::FAdd, 1, 2, 3))),
            "fadd f1, f2, f3");
  EXPECT_EQ(disassemble(D, D.Enc.encode(Instr::j(Op::Jal, 0x1000 / 4))),
            "jal 0x1000");
}

TEST(Disasm, UndecodableWordsRenderRaw) {
  for (const TargetDesc *D : allTargets())
    EXPECT_EQ(disassemble(*D, 0), ".word 0x00000000") << D->Name;
}

TEST(Disasm, EveryTargetRendersItsOwnEncoding) {
  Instr Probe = Instr::i(Op::AddI, 4, 2, 42);
  for (const TargetDesc *D : allTargets()) {
    EXPECT_EQ(disassemble(*D, D->Enc.encode(Probe)), "addi r4, r2, 42")
        << D->Name;
  }
}

} // namespace
