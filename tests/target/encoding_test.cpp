//===- tests/target/encoding_test.cpp - instruction encodings --------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "target/targetdesc.h"

#include <gtest/gtest.h>

#include <set>

using namespace ldb;
using namespace ldb::target;

namespace {

class EncodingTest : public ::testing::TestWithParam<const TargetDesc *> {};

std::vector<Instr> sampleInstrs(const TargetDesc &Desc) {
  std::vector<Instr> Out = {
      Instr::nop(),
      Instr::brk(),
      Instr::r(Op::Add, 3, 1, 2),
      Instr::r(Op::Sub, 1, 0, 1),
      Instr::r(Op::Sltu, 5, 0, 5),
      Instr::r(Op::FAdd, 2, 3, 4),
      Instr::r(Op::Jalr, 0, Desc.RaReg, 0),
      Instr::i(Op::AddI, 4, 0, -32768),
      Instr::i(Op::AddI, 4, 0, 32767),
      Instr::i(Op::OrI, 4, 4, 0xffff),
      Instr::i(Op::XorI, 7, 7, 1),
      Instr::i(Op::Lui, 6, 0, 0xffff),
      Instr::i(Op::Lw, 3, Desc.SpReg, -64),
      Instr::i(Op::Sw, 3, Desc.SpReg, 124),
      Instr::i(Op::Lb, 1, 2, 0),
      Instr::i(Op::Fs8, 2, Desc.SpReg, 8),
      Instr::i(Op::Beq, 3, 0, -5),
      Instr::i(Op::Bne, 3, 1, 17),
      Instr::i(Op::Sys, 0, Desc.RvReg,
               static_cast<int32_t>(Syscall::Exit)),
      Instr::j(Op::J, 0x1000 / 4),
      Instr::j(Op::Jal, (1 << 26) - 1),
  };
  return Out;
}

bool sameInstr(const Instr &A, const Instr &B) {
  if (A.Opc != B.Opc || A.Imm != B.Imm)
    return false;
  switch (opFormat(A.Opc)) {
  case OpFormat::N:
  case OpFormat::J:
    return true;
  case OpFormat::R:
    return A.Rd == B.Rd && A.Ra == B.Ra && A.Rb == B.Rb;
  case OpFormat::I:
    return A.Rd == B.Rd && A.Ra == B.Ra;
  }
  return false;
}

TEST_P(EncodingTest, RoundTrips) {
  const TargetDesc &Desc = *GetParam();
  for (const Instr &In : sampleInstrs(Desc)) {
    uint32_t Word = Desc.Enc.encode(In);
    Instr Back;
    ASSERT_TRUE(Desc.Enc.decode(Word, Back))
        << Desc.Name << " " << opName(In.Opc);
    EXPECT_TRUE(sameInstr(In, Back)) << Desc.Name << " " << opName(In.Opc);
    // Re-encoding the decoded form gives the same word (the linker
    // depends on this when patching relocations).
    EXPECT_EQ(Desc.Enc.encode(Back), Word) << opName(In.Opc);
  }
}

TEST_P(EncodingTest, NopAndBreakAreDistinctAndDecodable) {
  const TargetDesc &Desc = *GetParam();
  EXPECT_NE(Desc.nopWord(), Desc.breakWord());
  Instr In;
  ASSERT_TRUE(Desc.Enc.decode(Desc.nopWord(), In));
  EXPECT_EQ(In.Opc, Op::Nop);
  ASSERT_TRUE(Desc.Enc.decode(Desc.breakWord(), In));
  EXPECT_EQ(In.Opc, Op::Break);
}

TEST_P(EncodingTest, ZeroWordIsIllegal) {
  Instr In;
  EXPECT_FALSE(GetParam()->Enc.decode(0, In));
}

TEST_P(EncodingTest, ImmediateExtension) {
  const TargetDesc &Desc = *GetParam();
  Instr In;
  // Arithmetic immediates sign-extend...
  ASSERT_TRUE(
      Desc.Enc.decode(Desc.Enc.encode(Instr::i(Op::AddI, 1, 0, -1)), In));
  EXPECT_EQ(In.Imm, -1);
  // ...logical ones and Lui keep raw 16-bit values (the linker stores
  // Lo16/Hi16 relocation results up to 0xffff).
  ASSERT_TRUE(
      Desc.Enc.decode(Desc.Enc.encode(Instr::i(Op::OrI, 1, 1, 0xffff)), In));
  EXPECT_EQ(In.Imm, 0xffff);
  ASSERT_TRUE(
      Desc.Enc.decode(Desc.Enc.encode(Instr::i(Op::Lui, 1, 0, 0xffff)), In));
  EXPECT_EQ(In.Imm, 0xffff);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, EncodingTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

TEST(Encodings, TargetsDisagree) {
  // The whole point of four ports: no two targets share an encoding, so
  // nothing machine-independent can assume one (paper Sec 6).
  std::set<uint32_t> Nops, Breaks;
  for (const TargetDesc *D : allTargets()) {
    Nops.insert(D->nopWord());
    Breaks.insert(D->breakWord());
  }
  EXPECT_EQ(Nops.size(), allTargets().size());
  EXPECT_EQ(Breaks.size(), allTargets().size());

  Instr Probe = Instr::i(Op::AddI, 4, 2, 42);
  std::set<uint32_t> Words;
  for (const TargetDesc *D : allTargets())
    Words.insert(D->Enc.encode(Probe));
  EXPECT_EQ(Words.size(), allTargets().size());
}

TEST(Registry, ByNameAndConventions) {
  EXPECT_EQ(allTargets().size(), 4u);
  for (const TargetDesc *D : allTargets()) {
    EXPECT_EQ(targetByName(D->Name), D);
    // gpr 0 is the hardwired zero everywhere; conventions must avoid it.
    EXPECT_NE(D->RvReg, 0u);
    EXPECT_NE(D->SpReg, 0u);
    EXPECT_NE(D->RaReg, 0u);
    EXPECT_GT(D->FirstArgReg, 0u);
    EXPECT_LE(D->FirstArgReg + D->NumArgRegs, D->NumGpr);
    EXPECT_LE(D->FirstCalleeSaved + D->NumCalleeSaved, D->NumGpr);
    if (D->HasFramePointer) {
      EXPECT_GE(D->FpReg, 0);
      EXPECT_LT(static_cast<unsigned>(D->FpReg), D->NumGpr);
    }
  }
  EXPECT_EQ(targetByName("zmips")->LoadDelaySlots, 1u);
  EXPECT_EQ(targetByName("z68k")->HasF80, true);
  EXPECT_EQ(targetByName("zvax")->Order, ByteOrder::Little);
  EXPECT_EQ(targetByName("zsparc")->Order, ByteOrder::Big);
  EXPECT_EQ(targetByName("nosuch"), nullptr);
}

} // namespace
