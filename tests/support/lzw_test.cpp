//===- tests/support/lzw_test.cpp ----------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/lzw.h"

#include <gtest/gtest.h>

#include <random>

using namespace ldb;

namespace {

std::string roundTrip(const std::string &Input) {
  return lzwDecompress(lzwCompress(Input));
}

TEST(Lzw, Empty) {
  EXPECT_TRUE(lzwCompress("").empty());
  EXPECT_EQ(roundTrip(""), "");
}

TEST(Lzw, SingleByte) { EXPECT_EQ(roundTrip("x"), "x"); }

TEST(Lzw, ShortText) { EXPECT_EQ(roundTrip("hello, world"), "hello, world"); }

TEST(Lzw, KwKwKCase) {
  // The classic pattern that exercises the code-not-yet-in-table case.
  EXPECT_EQ(roundTrip("abababababab"), "abababababab");
  EXPECT_EQ(roundTrip("aaaaaaaaaaaaaaaa"), "aaaaaaaaaaaaaaaa");
}

TEST(Lzw, AllByteValues) {
  std::string Input;
  for (int C = 0; C < 256; ++C)
    Input += static_cast<char>(C);
  Input += Input;
  EXPECT_EQ(roundTrip(Input), Input);
}

TEST(Lzw, CompressesRepetitiveText) {
  std::string Input;
  for (int I = 0; I < 500; ++I)
    Input += "/S10 << /name (i) /kind (variable) >> def\n";
  std::vector<uint8_t> Packed = lzwCompress(Input);
  EXPECT_LT(Packed.size(), Input.size() / 4);
  EXPECT_EQ(lzwDecompress(Packed), Input);
}

TEST(Lzw, LargeRandomRoundTrip) {
  std::mt19937 Rng(12345);
  std::string Input;
  // Mildly structured randomness: words drawn from a small alphabet so the
  // dictionary grows past the 9-bit and 10-bit boundaries.
  for (int I = 0; I < 200000; ++I)
    Input += static_cast<char>('a' + Rng() % 20);
  EXPECT_EQ(roundTrip(Input), Input);
}

TEST(Lzw, DictionaryFullStillRoundTrips) {
  std::mt19937 Rng(99);
  std::string Input;
  // Force the dictionary to its 16-bit capacity.
  for (int I = 0; I < 2000000; ++I)
    Input += static_cast<char>(Rng() % 256);
  EXPECT_EQ(roundTrip(Input), Input);
}

TEST(Lzw, CorruptStreamYieldsEmpty) {
  std::vector<uint8_t> Bogus = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(lzwDecompress(Bogus), "");
}

} // namespace
