//===- tests/support/byteorder_test.cpp ----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/byteorder.h"

#include <gtest/gtest.h>

using namespace ldb;

namespace {

TEST(ByteOrder, PackUnpackLittle) {
  uint8_t Buf[4];
  packInt(0x11223344u, Buf, 4, ByteOrder::Little);
  EXPECT_EQ(Buf[0], 0x44);
  EXPECT_EQ(Buf[3], 0x11);
  EXPECT_EQ(unpackInt(Buf, 4, ByteOrder::Little), 0x11223344u);
}

TEST(ByteOrder, PackUnpackBig) {
  uint8_t Buf[4];
  packInt(0x11223344u, Buf, 4, ByteOrder::Big);
  EXPECT_EQ(Buf[0], 0x11);
  EXPECT_EQ(Buf[3], 0x44);
  EXPECT_EQ(unpackInt(Buf, 4, ByteOrder::Big), 0x11223344u);
}

TEST(ByteOrder, MixedOrdersDisagree) {
  uint8_t Buf[2];
  packInt(0xABCD, Buf, 2, ByteOrder::Big);
  EXPECT_EQ(unpackInt(Buf, 2, ByteOrder::Little), 0xCDABu);
}

TEST(ByteOrder, SignExtend) {
  EXPECT_EQ(signExtend(0xFF, 8), -1);
  EXPECT_EQ(signExtend(0x7F, 8), 127);
  EXPECT_EQ(signExtend(0xFFFF, 16), -1);
  EXPECT_EQ(signExtend(0x8000, 16), -32768);
  EXPECT_EQ(signExtend(0xFFFFFFFFull, 32), -1);
  EXPECT_EQ(signExtend(5, 32), 5);
}

class FloatRoundTrip : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(FloatRoundTrip, F32) {
  uint8_t Buf[4];
  packF32(3.25f, Buf, GetParam());
  EXPECT_EQ(unpackF32(Buf, GetParam()), 3.25f);
}

TEST_P(FloatRoundTrip, F64) {
  uint8_t Buf[8];
  packF64(-1.5e300, Buf, GetParam());
  EXPECT_EQ(unpackF64(Buf, GetParam()), -1.5e300);
}

TEST_P(FloatRoundTrip, F80) {
  uint8_t Buf[10];
  long double Value = 1.0000000000000000001L;
  packF80(Value, Buf, GetParam());
  EXPECT_EQ(unpackF80(Buf, GetParam()), Value);
}

TEST_P(FloatRoundTrip, F80Negative) {
  uint8_t Buf[10];
  packF80(-42.0L, Buf, GetParam());
  EXPECT_EQ(unpackF80(Buf, GetParam()), -42.0L);
}

INSTANTIATE_TEST_SUITE_P(Orders, FloatRoundTrip,
                         ::testing::Values(ByteOrder::Little, ByteOrder::Big));

} // namespace
