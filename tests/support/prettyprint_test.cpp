//===- tests/support/prettyprint_test.cpp --------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/prettyprint.h"

#include <gtest/gtest.h>

using namespace ldb;

namespace {

TEST(PrettyPrint, PlainTextPassesThrough) {
  PrettyPrinter PP(40);
  PP.put("hello");
  PP.put(" world");
  EXPECT_EQ(PP.take(), "hello world");
}

TEST(PrettyPrint, ExplicitNewlineFlushes) {
  PrettyPrinter PP(40);
  PP.put("one\ntwo");
  EXPECT_EQ(PP.take(), "one\ntwo");
}

TEST(PrettyPrint, BreakKeepsShortLinesTogether) {
  PrettyPrinter PP(40);
  PP.put("a");
  PP.brk();
  PP.put("b");
  EXPECT_EQ(PP.take(), "ab");
}

TEST(PrettyPrint, BreakSplitsLongLines) {
  PrettyPrinter PP(10);
  PP.put("aaaa, ");
  PP.brk();
  PP.put("bbbb, ");
  PP.brk();
  PP.put("cccc");
  std::string Out = PP.take();
  EXPECT_EQ(Out, "aaaa, \nbbbb, cccc"); // "bbbb, cccc" is exactly 10 cols
}

TEST(PrettyPrint, GroupIndentAppliesToContinuations) {
  PrettyPrinter PP(12);
  PP.put("x = {");
  PP.begin(2);
  PP.put("11111, ");
  PP.brk();
  PP.put("22222, ");
  PP.brk();
  PP.put("33333");
  PP.end();
  PP.put("}");
  std::string Out = PP.take();
  // Continuation lines are indented to the column where the group began
  // (5) plus 2.
  EXPECT_NE(Out.find("\n       22222"), std::string::npos) << Out;
}

TEST(PrettyPrint, TakeResets) {
  PrettyPrinter PP(40);
  PP.put("first");
  EXPECT_EQ(PP.take(), "first");
  PP.put("second");
  EXPECT_EQ(PP.take(), "second");
}

TEST(PrettyPrint, SegmentLongerThanMarginStillEmitted) {
  PrettyPrinter PP(4);
  PP.put("abcdefgh");
  PP.brk();
  PP.put("xy");
  std::string Out = PP.take();
  EXPECT_NE(Out.find("abcdefgh"), std::string::npos);
  EXPECT_NE(Out.find("xy"), std::string::npos);
}

} // namespace
