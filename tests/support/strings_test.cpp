//===- tests/support/strings_test.cpp ------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/strings.h"

#include <gtest/gtest.h>

using namespace ldb;

namespace {

TEST(Strings, PsEscapePlain) { EXPECT_EQ(psEscape("fib.c"), "fib.c"); }

TEST(Strings, PsEscapeSpecials) {
  EXPECT_EQ(psEscape("a(b)c"), "a\\(b\\)c");
  EXPECT_EQ(psEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(psEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(psEscape("tab\there"), "tab\\there");
}

TEST(Strings, PsEscapeControl) {
  EXPECT_EQ(psEscape(std::string(1, '\x01')), "\\001");
}

TEST(Strings, PsHex) { EXPECT_EQ(psHex(0x23d8), "16#000023d8"); }

TEST(Strings, Hex32) { EXPECT_EQ(hex32(0x2270), "0x00002270"); }

TEST(Strings, SplitWords) {
  auto W = splitWords("  break fib.c:11   ");
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0], "break");
  EXPECT_EQ(W[1], "fib.c:11");
}

TEST(Strings, SplitOn) {
  auto F = splitOn("a:b::c", ':');
  ASSERT_EQ(F.size(), 4u);
  EXPECT_EQ(F[0], "a");
  EXPECT_EQ(F[2], "");
  EXPECT_EQ(F[3], "c");
}

TEST(Strings, CountCodeLines) {
  std::string Source = "int x;\n"
                       "\n"
                       "  // comment only\n"
                       "int y; // trailing comment counts\n"
                       "   \t \n"
                       "}\n";
  EXPECT_EQ(countCodeLines(Source, "//"), 3u);
}

TEST(Strings, CountCodeLinesPostScript) {
  std::string Source = "% a comment\n/INT { pop } def\n\n";
  EXPECT_EQ(countCodeLines(Source, "%"), 1u);
}

TEST(Strings, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/ldb_strings_test.txt";
  ASSERT_TRUE(writeFile(Path, "contents\n"));
  std::string Back;
  ASSERT_TRUE(readFile(Path, Back));
  EXPECT_EQ(Back, "contents\n");
}

TEST(Strings, ReadMissingFileFails) {
  std::string Contents;
  EXPECT_FALSE(readFile("/nonexistent/definitely/missing", Contents));
}

} // namespace
