//===- tests/lcc/compile_run_test.cpp ------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end compiler tests: C programs compiled by the lcc-style
/// compiler, linked, loaded into the simulator, and executed — on all
/// four targets. The same source must produce the same console output
/// everywhere, which is the compiler-side half of the retargetability
/// story.
///
//===----------------------------------------------------------------------===//

#include "lcc/driver.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

struct RunOutcome {
  std::string Console;
  uint32_t ExitStatus = 0;
  StopKind Kind = StopKind::Running;
  std::string Error;
};

RunOutcome compileAndRun(const std::string &Source, const TargetDesc &Desc,
                         const CompileOptions &Options = {}) {
  RunOutcome Out;
  auto C = compileAndLink({{"test.c", Source}}, Desc, Options);
  if (!C) {
    Out.Error = C.message();
    return Out;
  }
  Machine M(Desc);
  if (Error E = (*C)->Img.loadInto(M)) {
    Out.Error = E.message();
    return Out;
  }
  M.Pc = (*C)->Img.Entry;
  M.setGpr(Desc.SpReg, M.memSize() - 4096);
  RunResult R = M.run(50'000'000);
  Out.Kind = R.Kind;
  Out.ExitStatus = R.Value;
  Out.Console = M.ConsoleOut;
  return Out;
}

class CompileRun : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  /// Compiles, runs, and checks a clean exit; returns console output.
  std::string run(const std::string &Source, uint32_t ExpectExit = 0) {
    RunOutcome Out = compileAndRun(Source, *GetParam());
    EXPECT_TRUE(Out.Error.empty()) << Out.Error;
    EXPECT_EQ(Out.Kind, StopKind::Exited)
        << "stopped by " << stopKindName(Out.Kind);
    EXPECT_EQ(Out.ExitStatus, ExpectExit);
    return Out.Console;
  }
};

TEST_P(CompileRun, ReturnConstant) {
  run("int main() { return 42; }", 42);
}

TEST_P(CompileRun, Arithmetic) {
  run("int main() { return (3 + 4) * 6 - 84 / 42 + 10 % 8; }", 42);
}

TEST_P(CompileRun, DeepExpressionSpills) {
  // Deep enough to exhaust every target's temporaries (z68k has two).
  run("int main() {\n"
      "  int a; int b; a = 3; b = 4;\n"
      "  return ((a+b)*(a-b+9)) + ((a*b)-(a+b)) + ((((a+1)*(b+1))-(a*b))\n"
      "         - (a+b+1)) - 19;\n" // 56 + 5 + 0 - 19
      "}",
      42);
}

TEST_P(CompileRun, LocalsAndAssignments) {
  run("int main() { int x; int y; x = 40; y = 2; x += y; return x; }", 42);
}

TEST_P(CompileRun, GlobalsAndStatics) {
  run("int g = 30;\n"
      "static int s = 10;\n"
      "int main() { s = s + 2; return g + s; }",
      42);
}

TEST_P(CompileRun, GlobalArrayInitializer) {
  run("int a[4] = {10, 11, 10, 11};\n"
      "int main() { return a[0] + a[1] + a[2] + a[3]; }",
      42);
}

TEST_P(CompileRun, IfElseChains) {
  run("int classify(int x) {\n"
      "  if (x < 0) return 1;\n"
      "  else if (x == 0) return 2;\n"
      "  else return 3;\n"
      "}\n"
      "int main() { return classify(-5) * 100 + classify(0) * 10 +\n"
      "                    classify(7); }",
      123);
}

TEST_P(CompileRun, WhileLoopBreakContinue) {
  run("int main() {\n"
      "  int i; int sum; i = 0; sum = 0;\n"
      "  while (1) {\n"
      "    i = i + 1;\n"
      "    if (i > 100) break;\n"
      "    if (i % 2) continue;\n"
      "    sum = sum + i;\n"
      "  }\n"
      "  return sum / 60;\n" // 2550 / 60 = 42
      "}",
      42);
}

TEST_P(CompileRun, ForLoop) {
  run("int main() { int s; int i; s = 0;\n"
      "  for (i = 1; i <= 13; i++) s += i;\n"
      "  return s - 49; }", // 91 - 49
      42);
}

TEST_P(CompileRun, Recursion) {
  run("int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n"
      "int main() { return fact(5) / 3 + 2; }", // 120/3+2
      42);
}

TEST_P(CompileRun, MutualRecursion) {
  run("int isOdd(int n);\n"
      "int isEven(int n) { if (n == 0) return 1; return isOdd(n - 1); }\n"
      "int isOdd(int n) { if (n == 0) return 0; return isEven(n - 1); }\n"
      "int main() { return isEven(10) * 40 + isOdd(7) * 2; }",
      42);
}

TEST_P(CompileRun, PointersAndAddressOf) {
  run("int main() {\n"
      "  int x; int *p; x = 10; p = &x;\n"
      "  *p = *p + 32;\n"
      "  return x;\n"
      "}",
      42);
}

TEST_P(CompileRun, PointerArithmetic) {
  run("int a[5] = {1, 2, 4, 8, 16};\n"
      "int main() {\n"
      "  int *p; int s; s = 0;\n"
      "  for (p = a; p < a + 5; p++) s += *p;\n"
      "  return s + 11;\n" // 31 + 11
      "}",
      42);
}

TEST_P(CompileRun, ArraysLocal) {
  run("int main() {\n"
      "  int a[10]; int i; int s;\n"
      "  for (i = 0; i < 10; i++) a[i] = i;\n"
      "  s = 0;\n"
      "  for (i = 0; i < 10; i++) s += a[i];\n"
      "  return s - 3;\n" // 45 - 3
      "}",
      42);
}

TEST_P(CompileRun, Structs) {
  run("struct point { int x; int y; };\n"
      "struct point p;\n"
      "int main() {\n"
      "  struct point *q;\n"
      "  p.x = 40; p.y = 2;\n"
      "  q = &p;\n"
      "  return q->x + q->y;\n"
      "}",
      42);
}

TEST_P(CompileRun, StructFieldOffsets) {
  run("struct mixed { char c; int i; short s; };\n"
      "struct mixed m;\n"
      "int main() {\n"
      "  m.c = 'a'; m.i = 1000000; m.s = -5;\n"
      "  if (m.c != 'a') return 1;\n"
      "  if (m.i != 1000000) return 2;\n"
      "  if (m.s != -5) return 3;\n"
      "  return 0;\n"
      "}");
}

TEST_P(CompileRun, CharAndShortMemory) {
  run("char c; short h;\n"
      "int main() {\n"
      "  c = 200;\n"         // wraps to -56 as signed char
      "  h = 40000;\n"       // wraps to -25536 as signed short
      "  if (c >= 0) return 1;\n"
      "  if (h >= 0) return 2;\n"
      "  return (c + 56) + (h + 25536);\n"
      "}");
}

TEST_P(CompileRun, UnsignedComparisons) {
  run("int main() {\n"
      "  unsigned a; int b;\n"
      "  a = 1; a = a - 2;\n" // 0xffffffff
      "  b = -1;\n"
      "  if (a < 1) return 1;\n"      // unsigned: huge, not less
      "  if (!(b < 1)) return 2;\n"   // signed: -1 < 1
      "  return 0;\n"
      "}");
}

TEST_P(CompileRun, ShiftsAndBitOps) {
  run("int main() {\n"
      "  int x; unsigned u;\n"
      "  x = 1 << 5;\n"
      "  if (x != 32) return 1;\n"
      "  x = -8 >> 1;\n"
      "  if (x != -4) return 2;\n"
      "  u = 1; u = u - 9;\n"       // 0xfffffff8
      "  u = u >> 1;\n"
      "  if (u != 2147483644u + 0u) return 3;\n"
      "  if ((12 & 10) != 8) return 4;\n"
      "  if ((12 | 10) != 14) return 5;\n"
      "  if ((12 ^ 10) != 6) return 6;\n"
      "  if (~0 != -1) return 7;\n"
      "  return 0;\n"
      "}");
}

TEST_P(CompileRun, LogicalOperators) {
  run("int sideEffects = 0;\n"
      "int bump() { sideEffects = sideEffects + 1; return 1; }\n"
      "int main() {\n"
      "  if (0 && bump()) return 1;\n"
      "  if (sideEffects != 0) return 2;\n" // short-circuit held
      "  if (!(1 || bump())) return 3;\n"
      "  if (sideEffects != 0) return 4;\n"
      "  if (!(1 && 2)) return 5;\n"
      "  if (0 || 0) return 6;\n"
      "  return 0;\n"
      "}");
}

TEST_P(CompileRun, TernaryOperator) {
  run("int main() { int x; x = 5; return x > 0 ? 42 : 7; }", 42);
}

TEST_P(CompileRun, IncDecOperators) {
  run("int main() {\n"
      "  int i; int a[3]; int *p;\n"
      "  i = 5;\n"
      "  if (i++ != 5) return 1;\n"
      "  if (i != 6) return 2;\n"
      "  if (++i != 7) return 3;\n"
      "  if (--i != 6) return 4;\n"
      "  if (i-- != 6) return 5;\n"
      "  a[0] = 1; a[1] = 2; a[2] = 3;\n"
      "  p = a;\n"
      "  p++;\n"
      "  if (*p != 2) return 6;\n"
      "  return 0;\n"
      "}");
}

TEST_P(CompileRun, FloatsAndDoubles) {
  run("double half(double x) { return x / 2.0; }\n"
      "int main() {\n"
      "  double d; float f;\n"
      "  d = 10.5;\n"
      "  f = 2.25;\n"
      "  d = half(d) + f;\n" // 5.25 + 2.25 = 7.5
      "  if (d < 7.4) return 1;\n"
      "  if (d > 7.6) return 2;\n"
      "  return (int)(d * 4.0);\n" // 30
      "}",
      30);
}

TEST_P(CompileRun, IntFloatConversions) {
  run("int main() {\n"
      "  double d; int i;\n"
      "  i = 7;\n"
      "  d = i;\n"
      "  d = d / 2;\n"
      "  i = (int)d;\n" // 3.5 -> 3
      "  return i;\n"
      "}",
      3);
}

TEST_P(CompileRun, PrintfFormats) {
  std::string Console = run(
      "int main() {\n"
      "  printf(\"%d %c %s %u\\n\", -42, 'x', \"str\", 7);\n"
      "  printf(\"pct%%done\\n\");\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(Console, "-42 x str 7\npct%done\n");
}

TEST_P(CompileRun, PrintfFloat) {
  std::string Console = run(
      "int main() { printf(\"%g\\n\", 2.5); return 0; }");
  EXPECT_EQ(Console, "2.5\n");
}

TEST_P(CompileRun, PaperFibProgram) {
  // The paper's Fig 1 program, output checked exactly.
  std::string Console = run(
      "void fib(int n) {\n"
      "  static int a[20];\n"
      "  if (n > 20) n = 20;\n"
      "  a[0] = a[1] = 1;\n"
      "  { int i;\n"
      "    for (i=2; i<n; i++)\n"
      "      a[i] = a[i-1] + a[i-2];\n"
      "  }\n"
      "  { int j;\n"
      "    for (j=0; j<n; j++)\n"
      "      printf(\"%d \", a[j]);\n"
      "  }\n"
      "  printf(\"\\n\");\n"
      "}\n"
      "int main() { fib(10); return 0; }\n");
  EXPECT_EQ(Console, "1 1 2 3 5 8 13 21 34 55 \n");
}

TEST_P(CompileRun, StringGlobals) {
  std::string Console = run(
      "char msg[] = \"hello\";\n"
      "int main() { printf(\"%s world\\n\", msg); return 0; }");
  EXPECT_EQ(Console, "hello world\n");
}

TEST_P(CompileRun, SizeofOperator) {
  run("struct pair { int a; int b; };\n"
      "int main() { return sizeof(int) + sizeof(char) + sizeof(short)\n"
      "  + sizeof(double) + sizeof(struct pair) + sizeof(int[4]); }",
      4 + 1 + 2 + 8 + 8 + 16);
}

TEST_P(CompileRun, MultiUnitProgram) {
  CompileOptions Options;
  auto C = compileAndLink(
      {{"lib.c", "int add(int a, int b) { return a + b; }\n"
                 "static int secret = 30;\n"
                 "int getSecret() { return secret; }\n"},
       {"main.c", "int add(int a, int b);\n"
                  "int getSecret();\n"
                  "static int secret = 10;\n" // same name, different unit
                  "int main() { return add(getSecret(), secret) + 2; }\n"}},
      *GetParam(), Options);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  Machine M(*GetParam());
  ASSERT_FALSE((*C)->Img.loadInto(M));
  M.Pc = (*C)->Img.Entry;
  M.setGpr(GetParam()->SpReg, M.memSize() - 4096);
  RunResult R = M.run(1'000'000);
  EXPECT_EQ(R.Kind, StopKind::Exited);
  EXPECT_EQ(R.Value, 42u);
}

TEST_P(CompileRun, DivideByZeroFaults) {
  RunOutcome Out = compileAndRun(
      "int main() { int z; z = 0; return 5 / z; }", *GetParam());
  EXPECT_TRUE(Out.Error.empty()) << Out.Error;
  EXPECT_EQ(Out.Kind, StopKind::DivFault);
}

TEST_P(CompileRun, NullDereferenceFaults) {
  // Address 0 is mapped in the flat simulator, so fault via a wild
  // pointer instead.
  RunOutcome Out = compileAndRun(
      "int main() { int *p; p = (int *)-16; return *p; }", *GetParam());
  EXPECT_TRUE(Out.Error.empty()) << Out.Error;
  EXPECT_EQ(Out.Kind, StopKind::MemFault);
}

TEST_P(CompileRun, NoDebugStillRuns) {
  CompileOptions Options;
  Options.Debug = false;
  RunOutcome Out = compileAndRun("int main() { return 42; }", *GetParam(),
                                 Options);
  EXPECT_TRUE(Out.Error.empty()) << Out.Error;
  EXPECT_EQ(Out.ExitStatus, 42u);
}

TEST_P(CompileRun, DebugIncreasesInstructionCount) {
  const char *Source =
      "int main() { int s; int i; s = 0;\n"
      "  for (i = 0; i < 10; i++) s += i;\n"
      "  return s; }";
  CompileOptions Dbg, NoDbg;
  NoDbg.Debug = false;
  auto A = compileAndLink({{"t.c", Source}}, *GetParam(), Dbg);
  auto B = compileAndLink({{"t.c", Source}}, *GetParam(), NoDbg);
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_GT((*A)->Img.Stats.Instructions, (*B)->Img.Stats.Instructions);
  EXPECT_GT((*A)->Img.Stats.StopNops, 0u);
  EXPECT_EQ((*B)->Img.Stats.StopNops, 0u);
}

TEST_P(CompileRun, SyntaxErrorsReported) {
  auto C = compileAndLink({{"bad.c", "int main( { return 0; }"}},
                          *GetParam(), CompileOptions());
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.message().find("bad.c"), std::string::npos);
}

TEST_P(CompileRun, TypeErrorsReported) {
  auto C = compileAndLink(
      {{"bad.c", "int main() { int x; return x(3); }"}}, *GetParam(),
      CompileOptions());
  EXPECT_FALSE(static_cast<bool>(C));
}

TEST_P(CompileRun, UndefinedSymbolReported) {
  auto C = compileAndLink(
      {{"bad.c", "int helper(int);\nint main() { return helper(1); }"}},
      *GetParam(), CompileOptions());
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.message().find("helper"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CompileRun,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

//===----------------------------------------------------------------------===//
// zmips scheduling (the paper's Sec 3 penalty)
//===----------------------------------------------------------------------===//

TEST(ZmipsScheduling, HazardFreeExecutionWithAndWithoutScheduler) {
  const TargetDesc &Zmips = *targetByName("zmips");
  const char *Source =
      "int a[8] = {1,2,3,4,5,6,7,8};\n"
      "int main() { int s; int i; s = 0;\n"
      "  for (i = 0; i < 8; i++) s += a[i] * a[7 - i];\n"
      "  return s; }";
  for (bool Schedule : {true, false}) {
    CompileOptions Options;
    Options.Schedule = Schedule;
    auto C = compileAndLink({{"t.c", Source}}, Zmips, Options);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    Machine M(Zmips);
    ASSERT_FALSE((*C)->Img.loadInto(M));
    M.Pc = (*C)->Img.Entry;
    M.setGpr(Zmips.SpReg, M.memSize() - 4096);
    RunResult R = M.run(1'000'000);
    EXPECT_EQ(R.Kind, StopKind::Exited) << stopKindName(R.Kind);
    EXPECT_EQ(R.Value, 120u); // 2*(1*8+2*7+3*6+4*5)
  }
}

TEST(ZmipsScheduling, SchedulerFillsSlots) {
  const TargetDesc &Zmips = *targetByName("zmips");
  const char *Source =
      "int a; int b; int c; int d;\n"
      "int main() { int s;\n"
      "  s = a + b + c + d;\n"
      "  s = s * (a - b) + (c - d);\n"
      "  return s; }";
  CompileOptions On, Off;
  Off.Schedule = false;
  On.Debug = Off.Debug = false; // no barriers: best case for the scheduler
  auto WithSched = compileAndLink({{"t.c", Source}}, Zmips, On);
  auto NoSched = compileAndLink({{"t.c", Source}}, Zmips, Off);
  ASSERT_TRUE(static_cast<bool>(WithSched));
  ASSERT_TRUE(static_cast<bool>(NoSched));
  EXPECT_LT((*WithSched)->Img.Stats.DelayNops,
            (*NoSched)->Img.Stats.DelayNops);
  EXPECT_GT((*WithSched)->Img.Stats.DelayFilled, 0u);
}

TEST(ZmipsScheduling, DebugRestrictsScheduling) {
  // With -g, stopping points are barriers, so fewer slots can be filled
  // and more padding no-ops remain (the paper's +13% effect).
  const TargetDesc &Zmips = *targetByName("zmips");
  std::string Source = "int a[64]; int main() { int s; int i; s = 0;\n";
  for (int K = 0; K < 24; ++K)
    Source += "  s += a[" + std::to_string(K) + "] + " +
              std::to_string(K) + ";\n";
  Source += "  return s; }";
  CompileOptions Dbg, NoDbg;
  NoDbg.Debug = false;
  auto WithDebug = compileAndLink({{"t.c", Source}}, Zmips, Dbg);
  auto NoDebug = compileAndLink({{"t.c", Source}}, Zmips, NoDbg);
  ASSERT_TRUE(static_cast<bool>(WithDebug));
  ASSERT_TRUE(static_cast<bool>(NoDebug));
  EXPECT_GE((*WithDebug)->Img.Stats.DelayNops,
            (*NoDebug)->Img.Stats.DelayNops);
}

//===----------------------------------------------------------------------===//
// z68k 80-bit long double
//===----------------------------------------------------------------------===//

TEST(Z68kLongDouble, TenByteStorage) {
  const TargetDesc &Z68k = *targetByName("z68k");
  auto C = compileAndLink(
      {{"t.c", "long double x;\n"
               "int main() { x = 2.5; return (int)(x * 4.0); }"}},
      Z68k, CompileOptions());
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  // The type metric is machine-dependent: 10 bytes here.
  EXPECT_EQ((*C)->Units[0]->Types->longDoubleTy()->Size, 10u);
  Machine M(Z68k);
  ASSERT_FALSE((*C)->Img.loadInto(M));
  M.Pc = (*C)->Img.Entry;
  M.setGpr(Z68k.SpReg, M.memSize() - 4096);
  RunResult R = M.run(1'000'000);
  EXPECT_EQ(R.Kind, StopKind::Exited) << stopKindName(R.Kind);
  EXPECT_EQ(R.Value, 10u);
}

} // namespace
