//===- tests/lcc/symtab_emit_test.cpp ------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the debugging artifacts the compiler driver generates: the
/// PostScript symbol tables of Sec 2 (interpreted here by the embedded
/// interpreter, exactly as ldb does), the loader table, and the stabs
/// baseline.
///
//===----------------------------------------------------------------------===//

#include "lcc/driver.h"
#include "postscript/interp.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::lcc;
using namespace ldb::ps;
using namespace ldb::target;

namespace {

const char *FibSource =
    "void fib(int n) {\n"
    "  static int a[20];\n"
    "  if (n > 20) n = 20;\n"
    "  a[0] = a[1] = 1;\n"
    "  { int i;\n"
    "    for (i=2; i<n; i++)\n"
    "      a[i] = a[i-1] + a[i-2];\n"
    "  }\n"
    "  { int j;\n"
    "    for (j=0; j<n; j++)\n"
    "      printf(\"%d \", a[j]);\n"
    "  }\n"
    "  printf(\"\\n\");\n"
    "}\n"
    "int main() { fib(10); return 0; }\n";

class SymtabEmit : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    auto COr = compileAndLink({{"fib.c", FibSource}}, *Desc,
                              CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    ASSERT_FALSE(I.run(prelude()));
  }

  /// Interprets text, expecting success.
  void runPs(const std::string &Text) {
    Error E = I.run(Text);
    ASSERT_FALSE(E) << E.message();
  }

  /// Looks a name up in the interpreter's dictionaries.
  Object get(const std::string &Name) {
    Object O;
    EXPECT_TRUE(I.lookup(Name, O)) << "unbound: " << Name;
    return O;
  }

  Object dictGet(const Object &D, const std::string &Key) {
    EXPECT_EQ(D.Ty, Type::Dict);
    const Object *Found = D.DictVal->find(Key);
    EXPECT_TRUE(Found != nullptr) << "no key " << Key;
    return Found ? *Found : Object();
  }

  const TargetDesc *Desc = nullptr;
  std::unique_ptr<Compilation> C;
  Interp I;
};

TEST_P(SymtabEmit, SymtabInterprets) {
  runPs(C->PsSymtab);
  Object Top = get("symtab");
  ASSERT_EQ(Top.Ty, Type::Dict);
  EXPECT_EQ(dictGet(Top, "architecture").text(), Desc->Name);

  Object Procs = dictGet(Top, "procs");
  ASSERT_EQ(Procs.Ty, Type::Array);
  EXPECT_EQ(Procs.ArrVal->size(), 2u); // fib and main

  Object Externs = dictGet(Top, "externs");
  Object FibEntry = dictGet(Externs, "fib");
  ASSERT_EQ(FibEntry.Ty, Type::Dict);
  EXPECT_EQ(dictGet(FibEntry, "kind").text(), "procedure");
  EXPECT_EQ(dictGet(FibEntry, "name").text(), "fib");
}

TEST_P(SymtabEmit, UplinkTreeMatchesFig2) {
  runPs(C->PsSymtab);
  Object Externs = dictGet(get("symtab"), "externs");
  Object Fib = dictGet(Externs, "fib");

  // formals -> n (the last parameter); n has no uplink.
  Object N = dictGet(Fib, "formals");
  ASSERT_EQ(N.Ty, Type::Dict);
  EXPECT_EQ(dictGet(N, "name").text(), "n");
  EXPECT_FALSE(N.DictVal->contains("uplink"));

  // The static array a uplinks to n; i and j both uplink to a (Fig 2's
  // tree: two branches sharing the a -> n spine).
  Object Statics = dictGet(Fib, "statics");
  Object A = dictGet(Statics, "a");
  EXPECT_EQ(dictGet(A, "name").text(), "a");
  EXPECT_EQ(dictGet(dictGet(A, "uplink"), "name").text(), "n");

  // Find i and j through the loci.
  Object Loci = dictGet(Fib, "loci");
  ASSERT_EQ(Loci.Ty, Type::Array);
  bool SawI = false, SawJ = false;
  for (const Object &Locus : *Loci.ArrVal) {
    ASSERT_EQ(Locus.Ty, Type::Array);
    const Object &Visible = (*Locus.ArrVal)[2];
    if (Visible.Ty != Type::Dict)
      continue;
    std::string Name = dictGet(Visible, "name").text();
    if (Name == "i" || Name == "j") {
      (Name == "i" ? SawI : SawJ) = true;
      EXPECT_EQ(dictGet(dictGet(Visible, "uplink"), "name").text(), "a");
    }
  }
  EXPECT_TRUE(SawI);
  EXPECT_TRUE(SawJ);
}

TEST_P(SymtabEmit, WhereValuesHaveTheRightShapes) {
  runPs(C->PsSymtab);
  Object Externs = dictGet(get("symtab"), "externs");
  Object Fib = dictGet(Externs, "fib");

  // i is a register variable: its where was computed when the table was
  // interpreted and is a location in register space (the paper's
  // "30 Regset0 Absolute").
  Object Loci = dictGet(Fib, "loci");
  for (const Object &Locus : *Loci.ArrVal) {
    const Object &Visible = (*Locus.ArrVal)[2];
    if (Visible.Ty != Type::Dict)
      continue;
    if (dictGet(Visible, "name").text() != "i")
      continue;
    Object Where = dictGet(Visible, "where");
    ASSERT_EQ(Where.Ty, Type::Location);
    EXPECT_EQ(Where.LocVal.Space, mem::SpGpr);
    break;
  }

  // a is static: its where is a procedure calling LazyData, interpreted
  // at debug time.
  Object A = dictGet(dictGet(Fib, "statics"), "a");
  Object AWhere = dictGet(A, "where");
  EXPECT_EQ(AWhere.Ty, Type::Array);
  EXPECT_TRUE(AWhere.Exec);

  // n is a stack parameter: a frame-local location.
  Object N = dictGet(Fib, "formals");
  Object NWhere = dictGet(N, "where");
  ASSERT_EQ(NWhere.Ty, Type::Location);
  EXPECT_EQ(NWhere.LocVal.Space, mem::SpLocal);
}

TEST_P(SymtabEmit, LociCoverEveryStopWithOffsets) {
  runPs(C->PsSymtab);
  Object Fib = dictGet(dictGet(get("symtab"), "externs"), "fib");
  Object Loci = dictGet(Fib, "loci");
  // Fig 1 shows 14 stopping points (0..13) in fib.
  EXPECT_EQ(Loci.ArrVal->size(), 14u);
  // Object-code offsets are distinct, word-aligned, within the procedure.
  std::set<int64_t> Offsets;
  for (const Object &Locus : *Loci.ArrVal) {
    int64_t Off = (*Locus.ArrVal)[1].IntVal;
    EXPECT_EQ(Off % 4, 0);
    Offsets.insert(Off);
  }
  EXPECT_EQ(Offsets.size(), Loci.ArrVal->size());
}

TEST_P(SymtabEmit, TypeDictsCarryMachineDependentData) {
  runPs(C->PsSymtab);
  Object A = dictGet(dictGet(dictGet(get("symtab"), "externs"), "fib"),
                     "statics");
  Object Ty = dictGet(dictGet(A, "a"), "type");
  EXPECT_EQ(dictGet(Ty, "decl").text(), "int %s[20]");
  EXPECT_EQ(dictGet(Ty, "&elemsize").IntVal, 4);
  EXPECT_EQ(dictGet(Ty, "&arraysize").IntVal, 80);
  Object Printer = dictGet(Ty, "printer");
  EXPECT_EQ(Printer.Ty, Type::Array);
  EXPECT_TRUE(Printer.Exec);
}

TEST_P(SymtabEmit, ProcEntriesCarryStackWalkingData) {
  runPs(C->PsSymtab);
  Object Fib = dictGet(dictGet(get("symtab"), "externs"), "fib");
  EXPECT_GT(dictGet(Fib, "framesize").IntVal, 0);
  // fib has register variables (i, j share one register), so the save
  // mask is nonempty.
  EXPECT_NE(dictGet(Fib, "savemask").IntVal, 0);
}

TEST_P(SymtabEmit, DeferredSymtabBehavesIdentically) {
  CompileOptions Options;
  Options.DeferredSymtab = true;
  auto DOr = compileAndLink({{"fib.c", FibSource}}, *Desc, Options);
  ASSERT_TRUE(static_cast<bool>(DOr)) << DOr.message();
  runPs((*DOr)->PsSymtab);
  // Forcing the top level through the deferred entries still yields the
  // same structure.
  runPs("symtab /externs get /fib get Force /entry exch def");
  Object Fib = get("entry");
  ASSERT_EQ(Fib.Ty, Type::Dict);
  EXPECT_EQ(dictGet(Fib, "name").text(), "fib");
  EXPECT_EQ(dictGet(Fib, "loci").ArrVal->size(), 14u);
}

TEST_P(SymtabEmit, DeferredSymtabIsStringHeavy) {
  CompileOptions Options;
  Options.DeferredSymtab = true;
  auto DOr = compileAndLink({{"fib.c", FibSource}}, *Desc, Options);
  ASSERT_TRUE(static_cast<bool>(DOr));
  EXPECT_NE((*DOr)->PsSymtab.find("DeferDef"), std::string::npos);
}

TEST_P(SymtabEmit, LoaderTableInterprets) {
  runPs(C->PsSymtab);
  runPs(C->LoaderTable);
  Object LT = get("loadertable");
  ASSERT_EQ(LT.Ty, Type::Dict);

  Object AnchorMap = dictGet(LT, "anchormap");
  ASSERT_EQ(AnchorMap.Ty, Type::Dict);
  EXPECT_EQ(AnchorMap.DictVal->size(), 1u); // one unit, one anchor
  // The anchor's name matches the symtab's /anchors entry.
  Object Anchors = dictGet(get("symtab"), "anchors");
  std::string AnchorName = (*Anchors.ArrVal)[0].text();
  EXPECT_TRUE(AnchorMap.DictVal->contains(AnchorName));

  // proctable is a flat ascending array of (address, name) pairs and
  // includes procedures without debug symbols (_start).
  Object Pt = dictGet(LT, "proctable");
  ASSERT_EQ(Pt.Ty, Type::Array);
  ASSERT_EQ(Pt.ArrVal->size() % 2, 0u);
  bool SawFib = false;
  int64_t Last = -1;
  for (size_t K = 0; K < Pt.ArrVal->size(); K += 2) {
    int64_t Addr = (*Pt.ArrVal)[K].IntVal;
    EXPECT_GT(Addr, Last);
    Last = Addr;
    if ((*Pt.ArrVal)[K + 1].text() == "fib")
      SawFib = true;
  }
  EXPECT_TRUE(SawFib);

  // zmips carries its runtime procedure table address.
  if (!Desc->HasFramePointer) {
    EXPECT_GT(dictGet(LT, "rpt").IntVal, 0);
  }
}

TEST_P(SymtabEmit, StabsRoundTrip) {
  ASSERT_FALSE(C->Stabs.empty());
  auto StabsOr = readStabs(C->Stabs);
  ASSERT_TRUE(static_cast<bool>(StabsOr)) << StabsOr.message();
  const std::vector<Stab> &Stabs = *StabsOr;
  bool SawFib = false, SawA = false, SawI = false;
  for (const Stab &S : Stabs) {
    if (S.Name == "fib") {
      SawFib = true;
      EXPECT_EQ(S.Kind, 1);
    }
    if (S.Name == "a") {
      SawA = true;
      EXPECT_EQ(S.LocKind, 2); // anchor index
    }
    if (S.Name == "i") {
      SawI = true;
      EXPECT_EQ(S.LocKind, 1); // register
    }
  }
  EXPECT_TRUE(SawFib);
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawI);
}

TEST_P(SymtabEmit, PsSymtabMuchLargerThanStabs) {
  // The paper's Sec 7 size comparison: PostScript is far more verbose
  // (about 9x; exact ratio checked by the bench, shape checked here).
  EXPECT_GT(C->PsSymtab.size(), 4 * C->Stabs.size());
}

TEST_P(SymtabEmit, MultiUnitTopLevelMerges) {
  auto MOr = compileAndLink(
      {{"a.c", "int f(int x) { return x + 1; }\nint ga;\n"},
       {"b.c", "int f(int x);\nextern int ga;\nint gb;\n"
               "int main() { gb = f(ga); return gb; }\n"}},
      *Desc, CompileOptions());
  ASSERT_TRUE(static_cast<bool>(MOr)) << MOr.message();
  runPs((*MOr)->PsSymtab);
  Object Top = get("symtab");
  Object Procs = dictGet(Top, "procs");
  EXPECT_EQ(Procs.ArrVal->size(), 2u); // f and main
  Object Externs = dictGet(Top, "externs");
  EXPECT_TRUE(Externs.DictVal->contains("ga"));
  EXPECT_TRUE(Externs.DictVal->contains("gb"));
  EXPECT_TRUE(Externs.DictVal->contains("main"));
  Object Anchors = dictGet(Top, "anchors");
  EXPECT_EQ(Anchors.ArrVal->size(), 2u);
  Object Sm = dictGet(Top, "sourcemap");
  EXPECT_TRUE(Sm.DictVal->contains("a.c"));
  EXPECT_TRUE(Sm.DictVal->contains("b.c"));
}

INSTANTIATE_TEST_SUITE_P(AllTargets, SymtabEmit,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
