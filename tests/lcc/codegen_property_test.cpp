//===- tests/lcc/codegen_property_test.cpp --------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the retargetable compiler: randomly generated C
/// programs must produce the *same* console output and exit status on
/// all four targets — across two byte orders, two register-file sizes,
/// frame pointer or none, and four instruction encodings. Seeds are the
/// test parameter so failures replay.
///
//===----------------------------------------------------------------------===//

#include "lcc/driver.h"

#include <gtest/gtest.h>

#include <random>

using namespace ldb;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

class ProgramGen {
public:
  explicit ProgramGen(unsigned Seed) : Rng(Seed * 2654435761u + 99) {}

  std::string generate() {
    std::string Out;
    Out += "int g0 = 11; int g1 = -5; int g2 = 1000;\n";
    Out += "int buf[6] = {3, 1, 4, 1, 5, 9};\n";
    Out += "int combine(int p, int q) {\n";
    Out += "  int t;\n";
    Out += "  t = p " + binOp() + " q;\n";
    Out += "  if (t < 0) t = -t;\n";
    Out += "  return t % 89 + 1;\n";
    Out += "}\n";
    Out += "int main() {\n";
    Out += "  int a; int b; int c; int i;\n";
    Out += "  a = " + std::to_string(small()) + ";\n";
    Out += "  b = " + std::to_string(small()) + ";\n";
    Out += "  c = 0;\n";
    for (int K = 0; K < 8; ++K)
      Out += "  " + statement() + "\n";
    Out += "  for (i = 0; i < 6; i++) c = c + buf[i] * (i + 1);\n";
    Out += "  printf(\"%d %d %d\\n\", a, b, c);\n";
    Out += "  return (a + b + c) % 251;\n";
    Out += "}\n";
    return Out;
  }

private:
  int pick(int N) { return static_cast<int>(Rng() % N); }
  int small() { return pick(41) - 20; }

  std::string binOp() {
    const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
    return Ops[pick(6)];
  }

  std::string var() {
    const char *Vars[] = {"a", "b", "c", "g0", "g1", "g2"};
    return Vars[pick(6)];
  }

  std::string rvalue(int Depth) {
    if (Depth <= 0 || pick(3) == 0) {
      switch (pick(3)) {
      case 0:
        return var();
      case 1:
        return "buf[" + std::to_string(pick(6)) + "]";
      default:
        return std::to_string(small());
      }
    }
    if (pick(5) == 0)
      return "combine(" + rvalue(Depth - 1) + ", " + rvalue(Depth - 1) +
             ")";
    if (pick(6) == 0)
      return "(" + rvalue(Depth - 1) + " < " + rvalue(Depth - 1) + " ? " +
             rvalue(Depth - 1) + " : " + rvalue(Depth - 1) + ")";
    return "(" + rvalue(Depth - 1) + " " + binOp() + " " +
           rvalue(Depth - 1) + ")";
  }

  std::string statement() {
    switch (pick(5)) {
    case 0:
      return var() + " = " + rvalue(2) + ";";
    case 1:
      return "buf[" + std::to_string(pick(6)) + "] = " + rvalue(2) + ";";
    case 2:
      return "if (" + rvalue(1) + " < " + rvalue(1) + ") " + var() +
             " = " + rvalue(1) + ";";
    case 3:
      return var() + " += " + rvalue(1) + ";";
    default:
      return var() + "++;";
    }
  }

  std::mt19937 Rng;
};

struct Outcome {
  StopKind Kind;
  uint32_t Status;
  std::string Console;
};

Outcome runOn(const std::string &Source, const TargetDesc &Desc,
              std::string &Err) {
  Outcome Out{StopKind::Running, 0, ""};
  auto C = compileAndLink({{"gen.c", Source}}, Desc, CompileOptions());
  if (!C) {
    Err = C.message();
    return Out;
  }
  Machine M(Desc);
  if (Error E = (*C)->Img.loadInto(M)) {
    Err = E.message();
    return Out;
  }
  M.Pc = (*C)->Img.Entry;
  M.setGpr(Desc.SpReg, M.memSize() - 4096);
  RunResult R = M.run(20'000'000);
  Out.Kind = R.Kind;
  Out.Status = R.Value;
  Out.Console = M.ConsoleOut;
  return Out;
}

class CrossTargetDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(CrossTargetDeterminism, SameBehaviourOnAllTargets) {
  ProgramGen Gen(static_cast<unsigned>(GetParam()));
  std::string Source = Gen.generate();

  std::string Err;
  Outcome Reference = runOn(Source, *allTargets()[0], Err);
  ASSERT_TRUE(Err.empty()) << Err << "\nprogram:\n" << Source;
  ASSERT_EQ(Reference.Kind, StopKind::Exited)
      << "seed " << GetParam() << " program:\n" << Source;

  for (size_t K = 1; K < allTargets().size(); ++K) {
    const TargetDesc &Desc = *allTargets()[K];
    Outcome Got = runOn(Source, Desc, Err);
    ASSERT_TRUE(Err.empty()) << Desc.Name << ": " << Err;
    EXPECT_EQ(Got.Kind, StopKind::Exited) << Desc.Name;
    EXPECT_EQ(Got.Status, Reference.Status)
        << "seed " << GetParam() << " target " << Desc.Name
        << "\nprogram:\n" << Source;
    EXPECT_EQ(Got.Console, Reference.Console)
        << "seed " << GetParam() << " target " << Desc.Name;
  }
}

TEST_P(CrossTargetDeterminism, DebugBuildBehavesIdentically) {
  // Planting no-ops and disabling scheduling must never change behaviour.
  ProgramGen Gen(static_cast<unsigned>(GetParam()) + 1000);
  std::string Source = Gen.generate();
  for (const TargetDesc *Desc : allTargets()) {
    std::string Err;
    Outcome Plain, Debug;
    {
      CompileOptions O;
      O.Debug = false;
      auto C = compileAndLink({{"gen.c", Source}}, *Desc, O);
      ASSERT_TRUE(static_cast<bool>(C)) << C.message();
      Machine M(*Desc);
      ASSERT_FALSE((*C)->Img.loadInto(M));
      M.Pc = (*C)->Img.Entry;
      M.setGpr(Desc->SpReg, M.memSize() - 4096);
      RunResult R = M.run(20'000'000);
      Plain = Outcome{R.Kind, R.Value, M.ConsoleOut};
    }
    Debug = runOn(Source, *Desc, Err);
    ASSERT_TRUE(Err.empty()) << Err;
    EXPECT_EQ(Plain.Kind, Debug.Kind) << Desc->Name;
    EXPECT_EQ(Plain.Status, Debug.Status)
        << "seed " << GetParam() << " target " << Desc->Name
        << "\nprogram:\n" << Source;
    EXPECT_EQ(Plain.Console, Debug.Console) << Desc->Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossTargetDeterminism,
                         ::testing::Range(0, 16));

} // namespace
