//===- tests/postscript/fastload_test.cpp --------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary fastload blob: encode/decode round-trips for every
/// scanner-producible token shape, rejection of truncated / corrupt /
/// stale blobs, and the Cache's fall-back-to-scanner behavior when a
/// planted blob is bad — the cache must never change what a load means.
///
//===----------------------------------------------------------------------===//

#include "postscript/fastload.h"

#include "postscript/atoms.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::ps;
using namespace ldb::ps::fastload;

namespace {

/// Deep structural equality for token objects, stricter than
/// Object::equals: also compares the Exec bit, which the replay path
/// depends on to distinguish procedures from data.
bool tokensEqual(const Object &A, const Object &B) {
  if (A.Ty != B.Ty || A.Exec != B.Exec)
    return false;
  switch (A.Ty) {
  case Type::Int:
    return A.IntVal == B.IntVal;
  case Type::Real:
    return A.RealVal == B.RealVal;
  case Type::Name:
    return A.Atom == B.Atom;
  case Type::String:
    return *A.StrVal == *B.StrVal;
  case Type::Array: {
    if (A.ArrVal->size() != B.ArrVal->size())
      return false;
    for (size_t K = 0; K < A.ArrVal->size(); ++K)
      if (!tokensEqual((*A.ArrVal)[K], (*B.ArrVal)[K]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

std::vector<Object> roundTrip(const std::string &Text) {
  uint64_t Hash = contentHash(Text);
  Expected<std::vector<Object>> Tokens = scanAll(Text);
  EXPECT_TRUE(bool(Tokens)) << Tokens.message();
  Expected<std::vector<uint8_t>> Blob = encode(*Tokens, Hash);
  EXPECT_TRUE(bool(Blob)) << Blob.message();
  Expected<std::vector<Object>> Back = decode(*Blob, Hash);
  EXPECT_TRUE(bool(Back)) << Back.message();
  EXPECT_EQ(Tokens->size(), Back->size());
  for (size_t K = 0; K < Tokens->size() && K < Back->size(); ++K)
    EXPECT_TRUE(tokensEqual((*Tokens)[K], (*Back)[K])) << "token " << K;
  return Back ? *Back : std::vector<Object>();
}

TEST(Fastload, RoundTripsEveryTokenShape) {
  roundTrip("1 -2 2147483647 -9999999999");
  roundTrip("3.5 -0.25 1e10");
  roundTrip("/literal execname (a string) ()");
  roundTrip("{ 1 2 add } { /x { nested (deep) } def }");
  roundTrip("(string with \\(escapes\\) and \\n newline)");
}

TEST(Fastload, RoundTripPreservesExecBits) {
  std::vector<Object> Back = roundTrip("/lit name { 1 } (s)");
  ASSERT_EQ(Back.size(), 4u);
  EXPECT_FALSE(Back[0].Exec); // /lit
  EXPECT_TRUE(Back[1].Exec);  // name
  EXPECT_TRUE(Back[2].Exec);  // procedure body
  EXPECT_FALSE(Back[3].Exec); // string
}

TEST(Fastload, DecodedProceduresAreFresh) {
  // Two decodes of the same blob must not share array storage — bind
  // mutates procedure bodies in place.
  std::string Text = "{ 1 2 add }";
  uint64_t Hash = contentHash(Text);
  auto Tokens = scanAll(Text);
  ASSERT_TRUE(bool(Tokens));
  auto Blob = encode(*Tokens, Hash);
  ASSERT_TRUE(bool(Blob));
  auto First = decode(*Blob, Hash);
  auto Second = decode(*Blob, Hash);
  ASSERT_TRUE(bool(First) && bool(Second));
  ASSERT_EQ(First->size(), 1u);
  EXPECT_NE((*First)[0].ArrVal.get(), (*Second)[0].ArrVal.get());
}

TEST(Fastload, ScanAllRejectsSyntaxErrors) {
  EXPECT_FALSE(bool(scanAll("1 2 )")));
  EXPECT_FALSE(bool(scanAll("{ unclosed")));
}

TEST(Fastload, DecodeRejectsBadMagic) {
  std::string Text = "1 2 add";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  std::vector<uint8_t> Bad = *Blob;
  Bad[0] = 'X';
  EXPECT_FALSE(bool(decode(Bad, Hash)));
}

TEST(Fastload, DecodeRejectsWrongVersion) {
  std::string Text = "1 2 add";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  std::vector<uint8_t> Bad = *Blob;
  Bad[4] = Version + 1; // the version byte follows the 4-byte magic
  EXPECT_FALSE(bool(decode(Bad, Hash)));
}

TEST(Fastload, DecodeRejectsHashMismatch) {
  std::string Text = "1 2 add";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  // Same bytes, different expected hash: the blob is stale for this text.
  EXPECT_FALSE(bool(decode(*Blob, Hash + 1)));
}

TEST(Fastload, DecodeRejectsTruncation) {
  std::string Text = "/x { 1 2 add (str) } def x";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  // Every proper prefix must fail cleanly, never crash or misparse.
  for (size_t Len = 0; Len < Blob->size(); ++Len) {
    std::vector<uint8_t> Cut(Blob->begin(), Blob->begin() + Len);
    EXPECT_FALSE(bool(decode(Cut, Hash))) << "prefix length " << Len;
  }
}

TEST(Fastload, DecodeRejectsTrailingGarbage) {
  std::string Text = "1 2 add";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  std::vector<uint8_t> Long = *Blob;
  Long.push_back(0);
  EXPECT_FALSE(bool(decode(Long, Hash)));
}

TEST(Fastload, CacheHitReplaysIdentically) {
  Cache &C = Cache::global();
  C.clear();
  C.setEnabled(true);
  std::string Text = "/fastload-hit-test { 2 3 mul } def fastload-hit-test";
  interpStats().reset();

  Interp I1;
  ASSERT_FALSE(C.run(I1, Text));
  EXPECT_EQ(interpStats().FastloadMisses, 1u);
  EXPECT_EQ(interpStats().FastloadStores, 1u);
  ASSERT_EQ(I1.opStack().size(), 1u);
  EXPECT_EQ(I1.opStack().back().IntVal, 6);

  Interp I2;
  ASSERT_FALSE(C.run(I2, Text));
  EXPECT_EQ(interpStats().FastloadHits, 1u);
  ASSERT_EQ(I2.opStack().size(), 1u);
  EXPECT_EQ(I2.opStack().back().IntVal, 6);
  C.clear();
}

TEST(Fastload, CorruptPlantedBlobFallsBackToScanner) {
  Cache &C = Cache::global();
  C.clear();
  C.setEnabled(true);
  std::string Text = "/fastload-corrupt-test 40 2 add def fastload-corrupt-test";
  uint64_t Hash = contentHash(Text);
  interpStats().reset();

  // Plant garbage under the text's own hash: a hit that fails decode.
  C.store(Hash, {'L', 'D', 'F', 'L', 9, 9, 9});
  Interp I;
  ASSERT_FALSE(C.run(I, Text));
  EXPECT_EQ(interpStats().FastloadFallbacks, 1u);
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 42);
  // The bad blob was dropped and the freshly scanned one stored.
  const std::vector<uint8_t> *Stored = C.lookup(Hash);
  ASSERT_NE(Stored, nullptr);
  EXPECT_TRUE(bool(decode(*Stored, Hash)));
  C.clear();
}

TEST(Fastload, TruncatedPlantedBlobFallsBackToScanner) {
  Cache &C = Cache::global();
  C.clear();
  C.setEnabled(true);
  std::string Text = "1 2 3 add add";
  uint64_t Hash = contentHash(Text);
  auto Blob = encode(*scanAll(Text), Hash);
  ASSERT_TRUE(bool(Blob));
  std::vector<uint8_t> Cut(Blob->begin(), Blob->begin() + Blob->size() / 2);
  C.store(Hash, Cut);
  interpStats().reset();

  Interp I;
  ASSERT_FALSE(C.run(I, Text));
  EXPECT_EQ(interpStats().FastloadFallbacks, 1u);
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 6);
  C.clear();
}

TEST(Fastload, DisabledCacheUsesScannerOnly) {
  Cache &C = Cache::global();
  C.clear();
  C.setEnabled(false);
  interpStats().reset();
  Interp I;
  ASSERT_FALSE(C.run(I, "1 1 add"));
  EXPECT_EQ(interpStats().FastloadMisses, 0u);
  EXPECT_EQ(interpStats().FastloadStores, 0u);
  EXPECT_EQ(C.size(), 0u);
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 2);
  C.setEnabled(true);
}

TEST(Fastload, SyntaxErrorKeepsStreamingSemantics) {
  // A text that fails to scan must still execute its prefix, exactly like
  // the streaming scanner path, and must not be cached.
  Cache &C = Cache::global();
  C.clear();
  C.setEnabled(true);
  std::string Text = "7 8 add )";
  Interp I;
  Error E = C.run(I, Text);
  EXPECT_TRUE(bool(E));
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 15);
  EXPECT_EQ(C.lookup(contentHash(Text)), nullptr);
  C.clear();
}

} // namespace
