//===- tests/postscript/scanner_test.cpp ---------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "postscript/scanner.h"

#include <gtest/gtest.h>

using namespace ldb::ps;

namespace {

std::vector<Object> scanAll(const std::string &Text, bool *Failed = nullptr) {
  StringCharSource Src(Text);
  Scanner Scan(Src);
  std::vector<Object> Objects;
  for (;;) {
    Scanner::Result R = Scan.next();
    if (R.K == Scanner::Kind::EndOfInput)
      break;
    if (R.K == Scanner::Kind::Failed) {
      if (Failed)
        *Failed = true;
      break;
    }
    Objects.push_back(std::move(R.O));
  }
  return Objects;
}

TEST(Scanner, Integers) {
  auto O = scanAll("42 -7 0");
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0].IntVal, 42);
  EXPECT_EQ(O[1].IntVal, -7);
  EXPECT_EQ(O[2].IntVal, 0);
}

TEST(Scanner, RadixIntegers) {
  auto O = scanAll("16#000023d8 2#1010 8#777");
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0].IntVal, 0x23d8);
  EXPECT_EQ(O[1].IntVal, 10);
  EXPECT_EQ(O[2].IntVal, 0777);
}

TEST(Scanner, Reals) {
  auto O = scanAll("1.5 -2.25 1e3");
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0].Ty, Type::Real);
  EXPECT_DOUBLE_EQ(O[0].RealVal, 1.5);
  EXPECT_DOUBLE_EQ(O[1].RealVal, -2.25);
  EXPECT_DOUBLE_EQ(O[2].RealVal, 1000.0);
}

TEST(Scanner, Names) {
  auto O = scanAll("fib /S10 &elemsize ExpressionServer.lookup");
  ASSERT_EQ(O.size(), 4u);
  EXPECT_EQ(O[0].Ty, Type::Name);
  EXPECT_TRUE(O[0].Exec);
  EXPECT_EQ(O[0].text(), "fib");
  EXPECT_FALSE(O[1].Exec);
  EXPECT_EQ(O[1].text(), "S10");
  EXPECT_EQ(O[2].text(), "&elemsize");
  EXPECT_EQ(O[3].text(), "ExpressionServer.lookup");
}

TEST(Scanner, MalformedNumberIsName) {
  auto O = scanAll("3abc 1.2.3");
  ASSERT_EQ(O.size(), 2u);
  EXPECT_EQ(O[0].Ty, Type::Name);
  EXPECT_EQ(O[1].Ty, Type::Name);
}

TEST(Scanner, Strings) {
  auto O = scanAll("(hello world) (nested (parens) ok) (esc \\( \\) \\\\)");
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0].text(), "hello world");
  EXPECT_EQ(O[1].text(), "nested (parens) ok");
  EXPECT_EQ(O[2].text(), "esc ( ) \\");
}

TEST(Scanner, StringEscapes) {
  auto O = scanAll("(a\\nb\\tc\\101)");
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0].text(), "a\nb\tcA");
}

TEST(Scanner, Procedures) {
  auto O = scanAll("{ dup 0 ne { exch } if }");
  ASSERT_EQ(O.size(), 1u);
  ASSERT_EQ(O[0].Ty, Type::Array);
  EXPECT_TRUE(O[0].Exec);
  ASSERT_EQ(O[0].ArrVal->size(), 5u);
  // The nested procedure stays a procedure element.
  EXPECT_EQ((*O[0].ArrVal)[3].Ty, Type::Array);
  EXPECT_EQ((*O[0].ArrVal)[4].text(), "if");
}

TEST(Scanner, DictBrackets) {
  auto O = scanAll("<< /name (i) >> [ 1 2 ]");
  ASSERT_GE(O.size(), 4u);
  EXPECT_EQ(O[0].text(), "<<");
  EXPECT_TRUE(O[0].Exec);
}

TEST(Scanner, Comments) {
  auto O = scanAll("1 % comment to end of line\n2");
  ASSERT_EQ(O.size(), 2u);
  EXPECT_EQ(O[1].IntVal, 2);
}

TEST(Scanner, UnterminatedString) {
  bool Failed = false;
  scanAll("(no close", &Failed);
  EXPECT_TRUE(Failed);
}

TEST(Scanner, UnterminatedProc) {
  bool Failed = false;
  scanAll("{ dup", &Failed);
  EXPECT_TRUE(Failed);
}

TEST(Scanner, StrayRBrace) {
  bool Failed = false;
  scanAll("}", &Failed);
  EXPECT_TRUE(Failed);
}

TEST(Scanner, PaperSymbolEntryScans) {
  // The S10 entry from paper Sec 2, verbatim in structure.
  const char *Entry = "/S10 << /name (i)\n"
                      "  /type << /decl (int %s) /printer {INT} >>\n"
                      "  /sourcefile (fib.c) /sourcey 6 /sourcex 8\n"
                      "  /kind (variable)\n"
                      "  /where 30 Regset0 Absolute\n"
                      "  /uplink S8 >> def\n";
  bool Failed = false;
  auto O = scanAll(Entry, &Failed);
  EXPECT_FALSE(Failed);
  EXPECT_GT(O.size(), 20u);
}

} // namespace
