//===- tests/postscript/interp_test.cpp ----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "postscript/interp.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::ps;

namespace {

class InterpTest : public ::testing::Test {
protected:
  /// Runs code and returns the single integer left on the stack.
  int64_t evalInt(const std::string &Code) {
    EXPECT_FALSE(I.run(Code)) << "while running: " << Code;
    EXPECT_EQ(I.opStack().size(), 1u) << Code;
    EXPECT_EQ(I.opStack().back().Ty, Type::Int) << Code;
    int64_t V = I.opStack().back().IntVal;
    I.opStack().clear();
    return V;
  }

  bool evalBool(const std::string &Code) {
    EXPECT_FALSE(I.run(Code)) << Code;
    EXPECT_EQ(I.opStack().back().Ty, Type::Bool) << Code;
    bool V = I.opStack().back().BoolVal;
    I.opStack().clear();
    return V;
  }

  std::string evalOutput(const std::string &Code) {
    EXPECT_FALSE(I.run(Code)) << Code;
    return I.takeOutput();
  }

  Interp I;
};

TEST_F(InterpTest, Arithmetic) {
  EXPECT_EQ(evalInt("1 2 add"), 3);
  EXPECT_EQ(evalInt("10 3 sub"), 7);
  EXPECT_EQ(evalInt("6 7 mul"), 42);
  EXPECT_EQ(evalInt("17 5 idiv"), 3);
  EXPECT_EQ(evalInt("17 5 mod"), 2);
  EXPECT_EQ(evalInt("5 neg"), -5);
  EXPECT_EQ(evalInt("-5 abs"), 5);
}

TEST_F(InterpTest, MixedRealArithmetic) {
  EXPECT_FALSE(I.run("1 2.5 add"));
  EXPECT_EQ(I.opStack().back().Ty, Type::Real);
  EXPECT_DOUBLE_EQ(I.opStack().back().RealVal, 3.5);
}

TEST_F(InterpTest, StackOps) {
  EXPECT_EQ(evalInt("1 2 exch sub"), 1);
  EXPECT_EQ(evalInt("3 dup mul"), 9);
  EXPECT_EQ(evalInt("1 2 3 pop pop"), 1);
  EXPECT_EQ(evalInt("10 20 30 2 index pop pop pop"), 10);
  EXPECT_EQ(evalInt("1 2 3 3 -1 roll pop pop"), 2); // 2 3 1 -> pops 1, 3
  EXPECT_EQ(evalInt("1 2 3 clear 42"), 42);
  EXPECT_EQ(evalInt("7 8 count exch pop exch pop"), 2);
}

TEST_F(InterpTest, Marks) {
  EXPECT_EQ(evalInt("mark 1 2 3 counttomark 5 1 roll cleartomark"), 3);
}

TEST_F(InterpTest, Relational) {
  EXPECT_TRUE(evalBool("1 1 eq"));
  EXPECT_FALSE(evalBool("1 2 eq"));
  EXPECT_TRUE(evalBool("1 2 ne"));
  EXPECT_TRUE(evalBool("1 2 lt"));
  EXPECT_TRUE(evalBool("2 2 le"));
  EXPECT_TRUE(evalBool("3 2 gt"));
  EXPECT_TRUE(evalBool("(abc) (abd) lt"));
  EXPECT_TRUE(evalBool("(x) (x) eq"));
  EXPECT_TRUE(evalBool("1 1.0 eq")); // numeric cross-type equality
}

TEST_F(InterpTest, Booleans) {
  EXPECT_TRUE(evalBool("true false or"));
  EXPECT_FALSE(evalBool("true false and"));
  EXPECT_TRUE(evalBool("true false xor"));
  EXPECT_FALSE(evalBool("true not"));
  EXPECT_EQ(evalInt("12 10 and"), 8);
  EXPECT_EQ(evalInt("12 10 or"), 14);
  EXPECT_EQ(evalInt("1 3 bitshift"), 8);
  EXPECT_EQ(evalInt("8 -3 bitshift"), 1);
}

TEST_F(InterpTest, SignedBits) {
  EXPECT_EQ(evalInt("255 8 signedbits"), -1);
  EXPECT_EQ(evalInt("127 8 signedbits"), 127);
  EXPECT_EQ(evalInt("16#ffffffff 32 signedbits"), -1);
}

TEST_F(InterpTest, ControlFlow) {
  EXPECT_EQ(evalInt("true { 1 } { 2 } ifelse"), 1);
  EXPECT_EQ(evalInt("false { 1 } { 2 } ifelse"), 2);
  EXPECT_EQ(evalInt("0 true { 5 add } if"), 5);
  EXPECT_EQ(evalInt("0 1 1 10 { add } for"), 55);
  EXPECT_EQ(evalInt("0 5 { 1 add } repeat"), 5);
  EXPECT_EQ(evalInt("0 { 1 add dup 7 eq { exit } if } loop"), 7);
}

TEST_F(InterpTest, ForCountsDown) {
  EXPECT_EQ(evalInt("0 10 -1 1 { add } for"), 55);
}

TEST_F(InterpTest, ForallArray) {
  EXPECT_EQ(evalInt("0 [ 1 2 3 4 ] { add } forall"), 10);
}

TEST_F(InterpTest, ForallString) {
  EXPECT_EQ(evalInt("0 (ab) { add } forall"), 'a' + 'b');
}

TEST_F(InterpTest, ForallDict) {
  EXPECT_EQ(evalInt("0 << /a 1 /b 2 >> { exch pop add } forall"), 3);
}

TEST_F(InterpTest, ExitInsideForall) {
  EXPECT_EQ(evalInt("0 [ 1 2 3 4 ] { add dup 3 eq { exit } if } forall"), 3);
}

TEST_F(InterpTest, DefAndLookup) {
  EXPECT_EQ(evalInt("/x 42 def x"), 42);
  EXPECT_EQ(evalInt("/double { 2 mul } def 21 double"), 42);
}

TEST_F(InterpTest, DictBeginEnd) {
  EXPECT_EQ(evalInt("/x 1 def 4 dict begin /x 2 def x end"), 2);
  EXPECT_EQ(evalInt("/x 1 def 4 dict begin /x 2 def end x"), 1);
}

TEST_F(InterpTest, DictLiteralAndGet) {
  EXPECT_EQ(evalInt("<< /a 10 /b 20 >> /b get"), 20);
  EXPECT_TRUE(evalBool("<< /a 1 >> /a known"));
  EXPECT_FALSE(evalBool("<< /a 1 >> /z known"));
}

TEST_F(InterpTest, NestedDictLiteral) {
  EXPECT_EQ(evalInt("<< /t << /size 4 >> >> /t get /size get"), 4);
}

TEST_F(InterpTest, DictPutSharesStorage) {
  EXPECT_EQ(evalInt("/d 2 dict def d /k 9 put d /k get"), 9);
}

TEST_F(InterpTest, StoreRebindsWhereDefined) {
  EXPECT_EQ(evalInt("/x 1 def 4 dict begin /x 2 store end x"), 2);
}

TEST_F(InterpTest, WhereFindsDict) {
  EXPECT_TRUE(evalBool("/x 5 def /x where { pop true } { false } ifelse"));
  EXPECT_FALSE(evalBool("/zz.unbound where { pop true } { false } ifelse"));
}

TEST_F(InterpTest, Arrays) {
  EXPECT_EQ(evalInt("[ 10 20 30 ] 1 get"), 20);
  EXPECT_EQ(evalInt("[ 1 2 3 ] length"), 3);
  EXPECT_EQ(evalInt("3 array length"), 3);
  EXPECT_EQ(evalInt("/a [ 0 0 ] def a 1 99 put a 1 get"), 99);
  EXPECT_EQ(evalInt("[ 5 6 ] aload pop add"), 11);
}

TEST_F(InterpTest, StringsAreImmutable) {
  Error E = I.run("(abc) 0 88 put");
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("immutable"), std::string::npos);
}

TEST_F(InterpTest, StringOps) {
  EXPECT_EQ(evalInt("(abc) length"), 3);
  EXPECT_EQ(evalInt("(abc) 1 get"), 'b');
  EXPECT_EQ(evalOutput("(ab) (cd) concat syswrite"), "abcd");
}

TEST_F(InterpTest, Conversions) {
  EXPECT_EQ(evalInt("3.7 cvi"), 3);
  EXPECT_EQ(evalInt("(42) cvi"), 42);
  EXPECT_TRUE(evalBool("1 cvr 1.0 eq"));
  EXPECT_TRUE(evalBool("(abc) cvn /abc eq"));
  EXPECT_EQ(evalOutput("42 cvs syswrite"), "42");
  EXPECT_TRUE(evalBool("{ dup } xcheck"));
  EXPECT_FALSE(evalBool("[ 1 ] xcheck"));
}

TEST_F(InterpTest, TypeOp) {
  EXPECT_TRUE(evalBool("1 type /integertype eq"));
  EXPECT_TRUE(evalBool("(s) type /stringtype eq"));
  EXPECT_TRUE(evalBool("<< >> type /dicttype eq"));
  EXPECT_TRUE(evalBool("{ } type /arraytype eq"));
}

TEST_F(InterpTest, CvxExecOnString) {
  // Deferred lexing: an executable string scans and runs when executed.
  EXPECT_EQ(evalInt("(1 2 add) cvx exec"), 3);
}

TEST_F(InterpTest, CvxMakesNameExecutable) {
  EXPECT_EQ(evalInt("/sq { dup mul } def (sq) cvn cvx /f exch def 5 f"), 25);
}

TEST_F(InterpTest, LiteralReplacesProcedureTrick) {
  // The paper's memoisation idiom (Sec 5): a procedure interpreted at most
  // once is replaced by its result; executing the literal result pushes it.
  EXPECT_EQ(evalInt("/d << /w { 1 2 add } >> def"
                    "  d /w get exec"        // compute once: 3
                    "  d exch /w exch put"   // replace proc with result
                    "  d /w get dup exec eq" // literal now pushes itself
                    "  { 1 } { 0 } ifelse"),
            1);
}

TEST_F(InterpTest, StoppedCatchesStop) {
  EXPECT_TRUE(evalBool("{ 1 stop 2 } stopped"));
  EXPECT_FALSE(evalBool("{ 1 pop } stopped"));
}

TEST_F(InterpTest, StoppedCatchesErrors) {
  EXPECT_TRUE(evalBool("{ 1 0 idiv } stopped"));
  EXPECT_TRUE(evalBool("{ undefined.name.xyz } stopped"));
  // The interpreter is usable again afterwards.
  EXPECT_EQ(evalInt("40 2 add"), 42);
}

TEST_F(InterpTest, ErrorsCarryMessages) {
  Error E = I.run("undefined.name.xyz");
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("undefined"), std::string::npos);
  E = I.run("1 0 idiv");
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("division by zero"), std::string::npos);
}

TEST_F(InterpTest, StackUnderflowIsError) {
  EXPECT_TRUE(static_cast<bool>(I.run("add")));
}

TEST_F(InterpTest, EndBelowFloorIsError) {
  EXPECT_TRUE(static_cast<bool>(I.run("end")));
}

TEST_F(InterpTest, Output) {
  EXPECT_EQ(evalOutput("(hi) syswrite"), "hi");
  EXPECT_EQ(evalOutput("42 ="), "42\n");
  EXPECT_EQ(evalOutput("(s) =="), "(s)\n");
  EXPECT_EQ(evalOutput("[ 1 (a) /b ] =="), "[1 (a) /b]\n");
}

TEST_F(InterpTest, Bind) {
  // After bind, redefining add does not affect the bound procedure.
  EXPECT_EQ(evalInt("/f { 1 2 add } bind def /add { pop pop 0 } def f"), 3);
}

TEST_F(InterpTest, RecursionDepthLimited) {
  EXPECT_TRUE(static_cast<bool>(I.run("/f { f } def f")));
}

TEST_F(InterpTest, QuitStopsExecution) {
  EXPECT_FALSE(I.run("1 quit 2"));
  ASSERT_EQ(I.opStack().size(), 1u);
}

TEST_F(InterpTest, FileObjectExecution) {
  auto Src = std::make_shared<StringCharSource>("10 32 add");
  EXPECT_EQ(I.exec(Object::makeFile(Src)), PsStatus::Ok);
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 42);
}

TEST_F(InterpTest, StoppedOnFileHonorsStop) {
  // The expression-server idiom: interpret tokens from a stream until told
  // to stop ("cvx stopped" applied to the open pipe, paper Sec 3).
  auto Src = std::make_shared<StringCharSource>("1 2 add stop 99");
  I.push(Object::makeFile(Src));
  EXPECT_FALSE(I.run("stopped"));
  ASSERT_EQ(I.opStack().size(), 2u);
  EXPECT_TRUE(I.opStack().back().BoolVal);
  EXPECT_EQ(I.opStack()[0].IntVal, 3); // 99 never executed
}

TEST_F(InterpTest, DictStackRebinding) {
  // Architecture switching: pushing a dictionary rebinds MD names
  // (paper Sec 5).
  EXPECT_FALSE(I.run("/FrameReg (generic) def"
                     "/mips 2 dict def mips /FrameReg (vfp) put"));
  EXPECT_EQ(evalOutput("mips begin FrameReg syswrite end"), "vfp");
  EXPECT_EQ(evalOutput("FrameReg syswrite"), "generic");
}

} // namespace
