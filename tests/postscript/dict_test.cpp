//===- tests/postscript/dict_test.cpp ------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atom-keyed DictImpl: inline storage spilling to heap, the
/// open-addressed index above the linear-scan threshold, erase compaction,
/// and the sorted-key view used by repr/forall — behaviors the whole
/// interpreter leans on after the std::map replacement.
///
//===----------------------------------------------------------------------===//

#include "postscript/atoms.h"
#include "postscript/interp.h"
#include "postscript/object.h"

#include <gtest/gtest.h>

#include <set>

using namespace ldb;
using namespace ldb::ps;

namespace {

TEST(AtomTable, InternIsIdempotentAndStable) {
  AtomTable &AT = AtomTable::global();
  uint32_t A = AT.intern("dict-test-unique-a");
  uint32_t B = AT.intern("dict-test-unique-b");
  EXPECT_NE(A, B);
  EXPECT_EQ(AT.intern("dict-test-unique-a"), A);
  EXPECT_EQ(AT.text(A), "dict-test-unique-a");
  EXPECT_EQ(AT.text(B), "dict-test-unique-b");
}

TEST(AtomTable, PeekNeverInterns) {
  AtomTable &AT = AtomTable::global();
  uint32_t Before = AT.size();
  EXPECT_EQ(AT.peek("dict-test-never-interned-xyzzy"), AtomTable::None);
  EXPECT_EQ(AT.size(), Before);
}

TEST(AtomTable, SurvivesGrowth) {
  AtomTable &AT = AtomTable::global();
  std::vector<uint32_t> Atoms;
  for (int K = 0; K < 3000; ++K)
    Atoms.push_back(AT.intern("growth-key-" + std::to_string(K)));
  for (int K = 0; K < 3000; ++K) {
    EXPECT_EQ(AT.intern("growth-key-" + std::to_string(K)), Atoms[K]);
    EXPECT_EQ(AT.text(Atoms[K]), "growth-key-" + std::to_string(K));
  }
}

TEST(Dict, InlineThenSpillPreservesInsertionOrder) {
  DictImpl D;
  // Four entries fit inline; the fifth spills to the heap vectors. The
  // observable order must not change across the boundary.
  for (int K = 0; K < 10; ++K)
    D.set("k" + std::to_string(K), Object::makeInt(K));
  ASSERT_EQ(D.size(), 10u);
  for (int K = 0; K < 10; ++K) {
    EXPECT_EQ(AtomTable::global().text(D.keyAt(K)), "k" + std::to_string(K));
    EXPECT_EQ(D.valueAt(K).IntVal, K);
  }
}

TEST(Dict, FindAndOverwrite) {
  DictImpl D;
  D.set("x", Object::makeInt(1));
  D.set("y", Object::makeInt(2));
  Object *X = D.find("x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->IntVal, 1);
  D.set("x", Object::makeInt(42));
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D.find("x")->IntVal, 42);
  EXPECT_EQ(D.find("missing"), nullptr);
}

TEST(Dict, LargeDictIndexedLookup) {
  DictImpl D;
  for (int K = 0; K < 500; ++K)
    D.set("big" + std::to_string(K), Object::makeInt(K * 7));
  ASSERT_EQ(D.size(), 500u);
  for (int K = 0; K < 500; ++K) {
    Object *V = D.find("big" + std::to_string(K));
    ASSERT_NE(V, nullptr) << K;
    EXPECT_EQ(V->IntVal, K * 7);
  }
  EXPECT_FALSE(D.contains("big500"));
}

TEST(Dict, EraseCompactsAndKeepsOrder) {
  DictImpl D;
  for (int K = 0; K < 6; ++K)
    D.set("e" + std::to_string(K), Object::makeInt(K));
  EXPECT_TRUE(D.erase("e2"));
  EXPECT_FALSE(D.erase("e2"));
  ASSERT_EQ(D.size(), 5u);
  std::vector<std::string> Keys;
  D.forEach([&Keys](uint32_t A, const Object &) {
    Keys.push_back(AtomTable::global().text(A));
  });
  EXPECT_EQ(Keys, (std::vector<std::string>{"e0", "e1", "e3", "e4", "e5"}));
  EXPECT_EQ(D.find("e2"), nullptr);
  EXPECT_EQ(D.find("e5")->IntVal, 5);
}

TEST(Dict, EraseFromLargeDictKeepsIndexConsistent) {
  DictImpl D;
  for (int K = 0; K < 100; ++K)
    D.set("del" + std::to_string(K), Object::makeInt(K));
  for (int K = 0; K < 100; K += 2)
    EXPECT_TRUE(D.erase("del" + std::to_string(K)));
  ASSERT_EQ(D.size(), 50u);
  for (int K = 0; K < 100; ++K) {
    Object *V = D.find("del" + std::to_string(K));
    if (K % 2 == 0)
      EXPECT_EQ(V, nullptr) << K;
    else {
      ASSERT_NE(V, nullptr) << K;
      EXPECT_EQ(V->IntVal, K);
    }
  }
}

TEST(Dict, SortedItemsOrdersByKeyText) {
  DictImpl D;
  D.set("zebra", Object::makeInt(1));
  D.set("apple", Object::makeInt(2));
  D.set("mango", Object::makeInt(3));
  auto Items = D.sortedItems();
  ASSERT_EQ(Items.size(), 3u);
  AtomTable &AT = AtomTable::global();
  EXPECT_EQ(AT.text(Items[0].first), "apple");
  EXPECT_EQ(AT.text(Items[1].first), "mango");
  EXPECT_EQ(AT.text(Items[2].first), "zebra");
}

TEST(Dict, ClearEntries) {
  DictImpl D;
  for (int K = 0; K < 50; ++K)
    D.set("c" + std::to_string(K), Object::makeInt(K));
  D.clearEntries();
  EXPECT_EQ(D.size(), 0u);
  EXPECT_TRUE(D.empty());
  EXPECT_EQ(D.find("c0"), nullptr);
  D.set("c0", Object::makeInt(99));
  EXPECT_EQ(D.find("c0")->IntVal, 99);
}

TEST(Dict, NameObjectsCompareByAtom) {
  Object A = Object::makeName("samename", /*Exec=*/false);
  Object B = Object::makeName("samename", /*Exec=*/true);
  EXPECT_EQ(A.Atom, B.Atom);
  EXPECT_EQ(A.text(), "samename");
}

TEST(Dict, InterpDictOpsStillWork) {
  // End-to-end through the interpreter: def/load/known/undef over a dict
  // big enough to engage the slot index.
  Interp I;
  std::string Code = "/d 1 dict def";
  for (int K = 0; K < 40; ++K)
    Code += " d /f" + std::to_string(K) + " " + std::to_string(K) + " put";
  Code += " d /f17 get d /f39 get add";
  ASSERT_FALSE(I.run(Code));
  ASSERT_EQ(I.opStack().size(), 1u);
  EXPECT_EQ(I.opStack().back().IntVal, 17 + 39);
}

} // namespace
