//===- tests/postscript/printers_test.cpp --------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the machine-independent prelude printers driving abstract
/// memories — the paper's Sec 2 story: the compiler emits type dictionaries
/// whose /printer procedures ldb interprets, so ldb proper never knows the
/// layout of runtime data structures.
///
//===----------------------------------------------------------------------===//

#include "mem/memories.h"
#include "postscript/interp.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::ps;

namespace {

class PrinterTest : public ::testing::TestWithParam<ByteOrder> {
protected:
  void SetUp() override {
    ASSERT_FALSE(I.run(prelude()));
    Mem = std::make_shared<mem::FlatMemory>(GetParam());
    Mem->addSpace(mem::SpData, 4096);
    I.defineSystemValue("M", Object::makeMemory(Mem));
  }

  std::string print(const std::string &Code) {
    Error E = I.run(Code);
    EXPECT_FALSE(E) << E.message() << " in: " << Code;
    return I.takeOutput();
  }

  mem::Location data(int64_t Off) {
    return mem::Location::absolute(mem::SpData, Off);
  }

  Interp I;
  std::shared_ptr<mem::FlatMemory> Mem;
};

TEST_P(PrinterTest, IntPrinter) {
  ASSERT_FALSE(Mem->storeInt(data(100), 4, static_cast<uint64_t>(-7) &
                                                0xffffffffu));
  EXPECT_EQ(print("M 100 DataLoc Absolute << /printer {INT} >> print"), "-7");
}

TEST_P(PrinterTest, UnsignedPrinter) {
  ASSERT_FALSE(Mem->storeInt(data(100), 4, 0xfffffff9u));
  EXPECT_EQ(print("M 100 DataLoc << /printer {UNSIGNED} >> print"),
            "4294967289");
}

TEST_P(PrinterTest, ShortPrinter) {
  ASSERT_FALSE(Mem->storeInt(data(20), 2, 0xfffe));
  EXPECT_EQ(print("M 20 DataLoc << /printer {SHORT} >> print"), "-2");
}

TEST_P(PrinterTest, CharPrinterPrintable) {
  ASSERT_FALSE(Mem->storeInt(data(3), 1, 'A'));
  EXPECT_EQ(print("M 3 DataLoc << /printer {CHAR} >> print"), "'A'");
}

TEST_P(PrinterTest, CharPrinterNonPrintable) {
  ASSERT_FALSE(Mem->storeInt(data(3), 1, 7));
  EXPECT_EQ(print("M 3 DataLoc << /printer {CHAR} >> print"), "'\\7'");
}

TEST_P(PrinterTest, FloatAndDoublePrinters) {
  ASSERT_FALSE(Mem->storeFloat(data(0), 4, 1.5L));
  EXPECT_EQ(print("M 0 DataLoc << /printer {FLOAT} >> print"), "1.5");
  ASSERT_FALSE(Mem->storeFloat(data(8), 8, -0.25L));
  EXPECT_EQ(print("M 8 DataLoc << /printer {DOUBLE} >> print"), "-0.25");
}

TEST_P(PrinterTest, LongDoublePrinter) {
  ASSERT_FALSE(Mem->storeFloat(data(16), 10, 2.5L));
  EXPECT_EQ(print("M 16 DataLoc << /printer {LONGDOUBLE} >> print"), "2.5");
}

TEST_P(PrinterTest, PointerPrinter) {
  ASSERT_FALSE(Mem->storeInt(data(40), 4, 0x23d8));
  EXPECT_EQ(print("M 40 DataLoc << /printer {POINTER} >> print"),
            "0x000023d8");
}

TEST_P(PrinterTest, ArrayPrinter) {
  // int a[5] = {1, 1, 2, 3, 5} at offset 200.
  int Fib[5] = {1, 1, 2, 3, 5};
  for (int K = 0; K < 5; ++K)
    ASSERT_FALSE(Mem->storeInt(data(200 + 4 * K), 4,
                               static_cast<uint64_t>(Fib[K])));
  std::string Out = print(
      "M 200 DataLoc "
      "<< /printer {ARRAY} /&elemsize 4 /&arraysize 20 "
      "   /&elemtype << /printer {INT} >> >> print");
  EXPECT_EQ(Out, "{1, 1, 2, 3, 5}");
}

TEST_P(PrinterTest, ArrayPrinterHonorsLimit) {
  for (int K = 0; K < 30; ++K)
    ASSERT_FALSE(Mem->storeInt(data(200 + 4 * K), 4,
                               static_cast<uint64_t>(K)));
  ASSERT_FALSE(I.run("4 setprintlimit"));
  std::string Out = print(
      "M 200 DataLoc "
      "<< /printer {ARRAY} /&elemsize 4 /&arraysize 120 "
      "   /&elemtype << /printer {INT} >> >> print");
  EXPECT_EQ(Out, "{0, 1, 2, 3, ...}");
}

TEST_P(PrinterTest, NestedArrayOfArrays) {
  // int m[2][3] at offset 0.
  int K = 0;
  for (int V : {1, 2, 3, 4, 5, 6})
    ASSERT_FALSE(Mem->storeInt(data(4 * K++), 4, static_cast<uint64_t>(V)));
  std::string Out = print(
      "M 0 DataLoc "
      "<< /printer {ARRAY} /&elemsize 12 /&arraysize 24 /&elemtype "
      "   << /printer {ARRAY} /&elemsize 4 /&arraysize 12 /&elemtype "
      "      << /printer {INT} >> >> >> print");
  EXPECT_EQ(Out, "{{1, 2, 3}, {4, 5, 6}}");
}

TEST_P(PrinterTest, StructPrinter) {
  // struct { int x; char c; } at offset 64: x = -3, c = 'z'.
  ASSERT_FALSE(Mem->storeInt(data(64), 4,
                             static_cast<uint64_t>(-3) & 0xffffffffu));
  ASSERT_FALSE(Mem->storeInt(data(68), 1, 'z'));
  std::string Out = print(
      "M 64 DataLoc "
      "<< /printer {STRUCT} /&fields [ "
      "   << /name (x) /offset 0 /type << /printer {INT} >> >> "
      "   << /name (c) /offset 4 /type << /printer {CHAR} >> >> ] >> print");
  EXPECT_EQ(Out, "{x=-3, c='z'}");
}

TEST_P(PrinterTest, CharArrayPrintsAsString) {
  const char *Text = "fib";
  for (int K = 0; K < 4; ++K)
    ASSERT_FALSE(Mem->storeInt(data(300 + K), 1,
                               static_cast<uint64_t>(Text[K])));
  std::string Out = print(
      "M 300 DataLoc << /printer {CHARARRAY} /&arraysize 8 >> print");
  EXPECT_EQ(Out, "\"fib\"");
}

TEST_P(PrinterTest, PrintDispatchesOnStrings) {
  EXPECT_EQ(print("(plain) print"), "plain");
}

TEST_P(PrinterTest, CompilerExtendedTypeDictIgnoredKeysHarmless) {
  // Machine-dependent extras in type dicts (e.g. 68020 register-save
  // masks, paper Sec 5) must not disturb printing.
  ASSERT_FALSE(Mem->storeInt(data(100), 4, 5));
  EXPECT_EQ(print("M 100 DataLoc "
                  "<< /printer {INT} /savemask 16#c0c0 /decl (int %s) >> "
                  "print"),
            "5");
}

INSTANTIATE_TEST_SUITE_P(Orders, PrinterTest,
                         ::testing::Values(ByteOrder::Little, ByteOrder::Big));

//===----------------------------------------------------------------------===//
// LazyData / anchor symbols
//===----------------------------------------------------------------------===//

class FakeHooks : public DebugHooks {
public:
  std::map<std::string, uint32_t> Anchors;
  std::map<uint32_t, uint32_t> DataWords;
  int FetchCount = 0;

  Expected<uint32_t> anchorAddress(const std::string &Name) override {
    auto It = Anchors.find(Name);
    if (It == Anchors.end())
      return Error::failure("unknown anchor symbol: " + Name);
    return It->second;
  }
  Expected<uint32_t> fetchDataWord(uint32_t Addr) override {
    ++FetchCount;
    auto It = DataWords.find(Addr);
    if (It == DataWords.end())
      return Error::failure("bad data address");
    return It->second;
  }
};

TEST(LazyData, ResolvesThroughAnchorTable) {
  Interp I;
  ASSERT_FALSE(I.run(prelude()));
  FakeHooks Hooks;
  Hooks.Anchors["_stanchor__V2935334b_e288a"] = 0x23d8;
  Hooks.DataWords[0x23d8 + 8 * 4] = 0x3000; // a's address, 8th word on
  I.Hooks = &Hooks;

  ASSERT_FALSE(I.run("(_stanchor__V2935334b_e288a) 8 LazyData"));
  ASSERT_EQ(I.opStack().size(), 1u);
  ASSERT_EQ(I.opStack().back().Ty, Type::Location);
  EXPECT_EQ(I.opStack().back().LocVal,
            mem::Location::absolute(mem::SpData, 0x3000));
}

TEST(LazyData, UnknownAnchorFails) {
  Interp I;
  FakeHooks Hooks;
  I.Hooks = &Hooks;
  Error E = I.run("(_missing) 0 LazyData");
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("unknown anchor"), std::string::npos);
}

TEST(LazyData, NoTargetFails) {
  Interp I;
  EXPECT_TRUE(static_cast<bool>(I.run("(_x) 0 LazyData")));
}

TEST(LazyData, MemoizationAvoidsRepeatFetches) {
  // The deferral technique of Sec 5: a where-procedure is interpreted at
  // most once and replaced with its result.
  Interp I;
  ASSERT_FALSE(I.run(prelude()));
  FakeHooks Hooks;
  Hooks.Anchors["_a"] = 100;
  Hooks.DataWords[100] = 0x4000;
  I.Hooks = &Hooks;

  ASSERT_FALSE(I.run("/entry << /where { (_a) 0 LazyData } >> def "
                     "entry /where get Force "
                     "entry exch /where exch put "
                     "entry /where get Force pop "
                     "entry /where get Force pop"));
  EXPECT_EQ(Hooks.FetchCount, 1);
}

//===----------------------------------------------------------------------===//
// Deferred lexing (paper Sec 5)
//===----------------------------------------------------------------------===//

TEST(DeferredLexing, DeferDefBindsLazily) {
  Interp I;
  ASSERT_FALSE(I.run(prelude()));
  // The body contains an undefined name, which is harmless until forced.
  ASSERT_FALSE(I.run("(S1) (<< /name (fib) /kind (proc) >>) DeferDef"));
  ASSERT_FALSE(I.run("S1 /name get"));
  EXPECT_EQ(I.opStack().back().text(), "fib");
}

TEST(DeferredLexing, SyntaxErrorsSurfaceOnlyWhenForced) {
  Interp I;
  ASSERT_FALSE(I.run(prelude()));
  ASSERT_FALSE(I.run("(bad) ({ unbalanced) DeferDef"));
  EXPECT_TRUE(static_cast<bool>(I.run("bad")));
}

} // namespace
