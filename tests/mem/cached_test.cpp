//===- tests/mem/cached_test.cpp ------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CachedMemory unit tests: lines fill once and serve many, stores write
/// through before patching, invalidate really forgets, failed line fills
/// fall back to direct transfers, and bypass mode reproduces the old
/// word-at-a-time traffic. The underlying memory is wrapped in a probe
/// that counts what actually reaches it — the cache's whole point is what
/// does *not* reach the wire.
///
//===----------------------------------------------------------------------===//

#include "mem/cached.h"
#include "mem/memories.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::mem;

namespace {

/// Forwards everything and counts it, so tests can assert how much traffic
/// the cache let through.
class ProbeMemory : public Memory {
public:
  explicit ProbeMemory(MemoryRef Under) : Under(std::move(Under)) {}

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override {
    ++FetchInts;
    return Under->fetchInt(Loc, Size, Value);
  }
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override {
    ++StoreInts;
    return Under->storeInt(Loc, Size, Value);
  }
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override {
    ++FetchFloats;
    return Under->fetchFloat(Loc, Size, Value);
  }
  Error storeFloat(Location Loc, unsigned Size, long double Value) override {
    ++StoreFloats;
    return Under->storeFloat(Loc, Size, Value);
  }
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override {
    ++FetchBlocks;
    return Under->fetchBlock(Loc, Size, Out);
  }
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override {
    ++StoreBlocks;
    return Under->storeBlock(Loc, Size, Bytes);
  }

  int FetchInts = 0, StoreInts = 0, FetchFloats = 0, StoreFloats = 0;
  int FetchBlocks = 0, StoreBlocks = 0;

private:
  MemoryRef Under;
};

struct Rig {
  explicit Rig(ByteOrder Order = ByteOrder::Little, unsigned LineBytes = 16) {
    Flat = std::make_shared<FlatMemory>(Order);
    Flat->addSpace('c', 4096);
    Flat->addSpace('d', 4096);
    Probe = std::make_shared<ProbeMemory>(Flat);
    Cache = std::make_shared<CachedMemory>(Probe, Order, LineBytes);
    Cache->setStats(&Stats);
  }
  std::shared_ptr<FlatMemory> Flat;
  std::shared_ptr<ProbeMemory> Probe;
  std::shared_ptr<CachedMemory> Cache;
  TransportStats Stats;
};

Location d(int64_t Off) { return Location::absolute(SpData, Off); }
Location c(int64_t Off) { return Location::absolute(SpCode, Off); }

TEST(CachedMemory, LineFillsOnceThenServes) {
  Rig R;
  ASSERT_FALSE(R.Flat->storeInt(d(0x100), 4, 0x11223344));
  ASSERT_FALSE(R.Flat->storeInt(d(0x104), 4, 0x55667788));

  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V));
  EXPECT_EQ(V, 0x11223344u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1); // one line fill
  EXPECT_EQ(R.Probe->FetchInts, 0);   // no word ever reached the wire

  // The neighbouring word rides the same line: zero new traffic.
  ASSERT_FALSE(R.Cache->fetchInt(d(0x104), 4, V));
  EXPECT_EQ(V, 0x55667788u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1);
  EXPECT_EQ(R.Stats.Cache[SpData].Misses, 1u);
  EXPECT_EQ(R.Stats.Cache[SpData].Hits, 1u);
  EXPECT_EQ(R.Cache->cachedLines(), 1u);
}

TEST(CachedMemory, ServesValuesInTargetByteOrder) {
  Rig R(ByteOrder::Big);
  ASSERT_FALSE(R.Flat->storeInt(d(0x40), 4, 0xdeadbeef));
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x40), 4, V));
  EXPECT_EQ(V, 0xdeadbeefu);
  // Subword fetch out of the cached line honours big-endian layout.
  ASSERT_FALSE(R.Cache->fetchInt(d(0x40), 2, V));
  EXPECT_EQ(V, 0xdeadu);
}

TEST(CachedMemory, StoresWriteThroughThenPatchResidentLines) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x200), 4, V)); // cache the line
  ASSERT_FALSE(R.Cache->storeInt(d(0x200), 4, 0xcafef00d));

  // Underneath sees the store immediately (write-through)...
  ASSERT_FALSE(R.Flat->fetchInt(d(0x200), 4, V));
  EXPECT_EQ(V, 0xcafef00du);
  // ...and the cached copy was patched, not dropped: the re-fetch is free.
  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x200), 4, V));
  EXPECT_EQ(V, 0xcafef00du);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore);
}

TEST(CachedMemory, StoreToUncachedLineAllocatesNothing) {
  Rig R;
  ASSERT_FALSE(R.Cache->storeInt(d(0x300), 4, 7));
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  uint64_t V = 0;
  ASSERT_FALSE(R.Flat->fetchInt(d(0x300), 4, V));
  EXPECT_EQ(V, 7u);
}

TEST(CachedMemory, InvalidateForgetsEverything) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 0u);

  // The target runs behind the cache's back.
  ASSERT_FALSE(R.Flat->storeInt(d(0x80), 4, 42));
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 0u) << "still serving the cached line, by design";

  R.Cache->invalidate();
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 42u);
}

TEST(CachedMemory, FetchAcrossLineBoundaryFillsBothLines) {
  Rig R; // 16-byte lines
  ASSERT_FALSE(R.Flat->storeInt(d(14), 4, 0xaabbccdd));
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(14), 4, V));
  EXPECT_EQ(V, 0xaabbccddu);
  EXPECT_EQ(R.Cache->cachedLines(), 2u);
  EXPECT_EQ(R.Probe->FetchBlocks, 2);
}

TEST(CachedMemory, LinePastEndOfSpaceFallsBackUncached) {
  auto Flat = std::make_shared<FlatMemory>(ByteOrder::Little);
  Flat->addSpace('d', 100); // a line at offset 96 would run past the end
  auto Probe = std::make_shared<ProbeMemory>(Flat);
  CachedMemory Cache(Probe, ByteOrder::Little, 16);

  ASSERT_FALSE(Flat->storeInt(d(96), 4, 99));
  uint64_t V = 0;
  ASSERT_FALSE(Cache.fetchInt(d(96), 4, V));
  EXPECT_EQ(V, 99u);
  EXPECT_EQ(Cache.cachedLines(), 0u) << "the failed line must not linger";

  // Past the space entirely the error still surfaces.
  EXPECT_TRUE(static_cast<bool>(Cache.fetchInt(d(200), 4, V)));
}

TEST(CachedMemory, LargeBlockIsOneTransferAndSeedsLines) {
  Rig R; // 16-byte lines
  ASSERT_FALSE(R.Flat->storeInt(d(0x410), 4, 0x01020304));
  uint8_t Block[64];
  ASSERT_FALSE(R.Cache->fetchBlock(d(0x400), 64, Block));
  EXPECT_EQ(R.Probe->FetchBlocks, 1) << "one bulk transfer, not per-line";
  EXPECT_EQ(R.Cache->cachedLines(), 4u);

  // The seeded lines now serve word fetches for free.
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x410), 4, V));
  EXPECT_EQ(V, 0x01020304u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1);
}

TEST(CachedMemory, BlockStoreWritesThroughAndPatches) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x500), 4, V)); // resident line
  uint8_t Bytes[8];
  packInt(0x11111111, Bytes, 4, ByteOrder::Little);
  packInt(0x22222222, Bytes + 4, 4, ByteOrder::Little);
  ASSERT_FALSE(R.Cache->storeBlock(d(0x500), 8, Bytes));
  EXPECT_EQ(R.Probe->StoreBlocks, 1);

  ASSERT_FALSE(R.Flat->fetchInt(d(0x504), 4, V));
  EXPECT_EQ(V, 0x22222222u);
  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x500), 4, V));
  EXPECT_EQ(V, 0x11111111u);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore);
}

TEST(CachedMemory, AliasedSpacesPatchEachOther) {
  // The nub's code and data spaces name the same bytes; FlatMemory's do
  // not, which makes the aliasing visible: a store through 'd' patches the
  // cached 'c' line even though flat 'c' storage never changes.
  Rig R;
  R.Cache->setSpacesAlias(true);
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V)); // cache a 'c' line
  ASSERT_FALSE(R.Cache->fetchInt(d(0x600), 4, V)); // and the 'd' twin
  ASSERT_FALSE(R.Cache->storeInt(d(0x600), 4, 0x5eed));

  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  EXPECT_EQ(V, 0x5eedu);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore) << "served from the cache";
}

TEST(CachedMemory, WithoutAliasSpacesStayIndependent) {
  Rig R; // SpacesAlias defaults to false
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  ASSERT_FALSE(R.Cache->storeInt(d(0x600), 4, 0x5eed));
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  EXPECT_EQ(V, 0u);
}

TEST(CachedMemory, BypassKeepsNoLinesAndDegradesToWords) {
  Rig R;
  R.Cache->setBypass(true);
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x700), 4, V));
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  EXPECT_EQ(R.Probe->FetchInts, 1);
  EXPECT_EQ(R.Probe->FetchBlocks, 0);

  // Block ops degrade to one word message per 4 bytes — the pre-block
  // traffic shape the bench uses as its baseline.
  uint8_t Block[8];
  ASSERT_FALSE(R.Cache->fetchBlock(d(0x700), 8, Block));
  EXPECT_EQ(R.Probe->FetchInts, 3);
  EXPECT_EQ(R.Probe->FetchBlocks, 0);
  ASSERT_FALSE(R.Cache->storeBlock(d(0x700), 8, Block));
  EXPECT_EQ(R.Probe->StoreInts, 2);
  EXPECT_EQ(R.Probe->StoreBlocks, 0);
}

TEST(CachedMemory, SettingBypassDropsResidentLines) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0), 4, V));
  EXPECT_EQ(R.Cache->cachedLines(), 1u);
  R.Cache->setBypass(true);
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
}

TEST(CachedMemory, FloatsAlwaysGoToTheWire) {
  // Floats stay word operations so the nub keeps its say (e.g. refusing
  // 80-bit floats on targets without them).
  Rig R;
  ASSERT_FALSE(R.Cache->storeFloat(d(0x20), 8, -2.5L));
  long double F = 0;
  ASSERT_FALSE(R.Cache->fetchFloat(d(0x20), 8, F));
  EXPECT_EQ(F, -2.5L);
  EXPECT_EQ(R.Probe->StoreFloats, 1);
  EXPECT_EQ(R.Probe->FetchFloats, 1);
}

TEST(CachedMemory, FloatStorePatchesResidentLine) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x20), 4, V)); // resident line
  ASSERT_FALSE(R.Cache->storeFloat(d(0x20), 8, 1.5L));
  long double F = 0;
  ASSERT_FALSE(R.Cache->fetchFloat(d(0x20), 8, F));
  EXPECT_EQ(F, 1.5L);
  // The cached line was patched with the packed bytes, so an int view of
  // the same address matches what the flat memory holds.
  uint64_t Below = 0, Above = 0;
  ASSERT_FALSE(R.Flat->fetchInt(d(0x20), 4, Below));
  ASSERT_FALSE(R.Cache->fetchInt(d(0x20), 4, Above));
  EXPECT_EQ(Above, Below);
}

TEST(CachedMemory, ZeroSizeBlocksAreFreeSuccesses) {
  Rig R;
  uint8_t Byte = 0;
  ASSERT_FALSE(R.Cache->fetchBlock(d(0), 0, &Byte));
  ASSERT_FALSE(R.Cache->storeBlock(d(0), 0, &Byte));
  EXPECT_EQ(R.Probe->FetchBlocks, 0);
  EXPECT_EQ(R.Probe->StoreBlocks, 0);
}

TEST(CachedMemory, ImmediateFetchNeedsNoWire) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(Location::immediate(123), 4, V));
  EXPECT_EQ(V, 123u);
  EXPECT_EQ(R.Probe->FetchInts + R.Probe->FetchBlocks, 0);
  uint8_t Byte = 0;
  EXPECT_TRUE(
      static_cast<bool>(R.Cache->fetchBlock(Location::immediate(1), 1, &Byte)));
}

TEST(CachedMemory, UncachedSpacesForwardUntouched) {
  auto Flat = std::make_shared<FlatMemory>(ByteOrder::Little);
  Flat->addSpace('d', 256);
  Flat->addSpace('x', 256);
  auto Probe = std::make_shared<ProbeMemory>(Flat);
  CachedMemory Cache(Probe, ByteOrder::Little, 16, "d");

  uint64_t V = 0;
  ASSERT_FALSE(Cache.fetchInt(Location::absolute(SpExtra, 0), 4, V));
  EXPECT_EQ(Probe->FetchInts, 1) << "'x' is not cached: the word forwards";
  EXPECT_EQ(Cache.cachedLines(), 0u);
}

} // namespace
