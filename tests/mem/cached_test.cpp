//===- tests/mem/cached_test.cpp ------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CachedMemory unit tests: lines fill once and serve many, stores write
/// through before patching, invalidate really forgets, failed line fills
/// fall back to direct transfers, and bypass mode reproduces the old
/// word-at-a-time traffic. The underlying memory is wrapped in a probe
/// that counts what actually reaches it — the cache's whole point is what
/// does *not* reach the wire.
///
//===----------------------------------------------------------------------===//

#include "mem/cached.h"
#include "mem/memories.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::mem;

namespace {

/// Forwards everything and counts it, so tests can assert how much traffic
/// the cache let through.
class ProbeMemory : public Memory {
public:
  explicit ProbeMemory(MemoryRef Under) : Under(std::move(Under)) {}

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override {
    ++FetchInts;
    return Under->fetchInt(Loc, Size, Value);
  }
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override {
    ++StoreInts;
    return Under->storeInt(Loc, Size, Value);
  }
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override {
    ++FetchFloats;
    return Under->fetchFloat(Loc, Size, Value);
  }
  Error storeFloat(Location Loc, unsigned Size, long double Value) override {
    ++StoreFloats;
    return Under->storeFloat(Loc, Size, Value);
  }
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override {
    ++FetchBlocks;
    return Under->fetchBlock(Loc, Size, Out);
  }
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override {
    ++StoreBlocks;
    return Under->storeBlock(Loc, Size, Bytes);
  }

  int FetchInts = 0, StoreInts = 0, FetchFloats = 0, StoreFloats = 0;
  int FetchBlocks = 0, StoreBlocks = 0;

private:
  MemoryRef Under;
};

struct Rig {
  explicit Rig(ByteOrder Order = ByteOrder::Little, unsigned LineBytes = 16) {
    Flat = std::make_shared<FlatMemory>(Order);
    Flat->addSpace('c', 4096);
    Flat->addSpace('d', 4096);
    Probe = std::make_shared<ProbeMemory>(Flat);
    Cache = std::make_shared<CachedMemory>(Probe, Order, LineBytes);
    Cache->setStats(&Stats);
  }
  std::shared_ptr<FlatMemory> Flat;
  std::shared_ptr<ProbeMemory> Probe;
  std::shared_ptr<CachedMemory> Cache;
  TransportStats Stats;
};

Location d(int64_t Off) { return Location::absolute(SpData, Off); }
Location c(int64_t Off) { return Location::absolute(SpCode, Off); }

TEST(CachedMemory, LineFillsOnceThenServes) {
  Rig R;
  ASSERT_FALSE(R.Flat->storeInt(d(0x100), 4, 0x11223344));
  ASSERT_FALSE(R.Flat->storeInt(d(0x104), 4, 0x55667788));

  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V));
  EXPECT_EQ(V, 0x11223344u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1); // one line fill
  EXPECT_EQ(R.Probe->FetchInts, 0);   // no word ever reached the wire

  // The neighbouring word rides the same line: zero new traffic.
  ASSERT_FALSE(R.Cache->fetchInt(d(0x104), 4, V));
  EXPECT_EQ(V, 0x55667788u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1);
  EXPECT_EQ(R.Stats.Cache[SpData].Misses, 1u);
  EXPECT_EQ(R.Stats.Cache[SpData].Hits, 1u);
  EXPECT_EQ(R.Cache->cachedLines(), 1u);
}

TEST(CachedMemory, ServesValuesInTargetByteOrder) {
  Rig R(ByteOrder::Big);
  ASSERT_FALSE(R.Flat->storeInt(d(0x40), 4, 0xdeadbeef));
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x40), 4, V));
  EXPECT_EQ(V, 0xdeadbeefu);
  // Subword fetch out of the cached line honours big-endian layout.
  ASSERT_FALSE(R.Cache->fetchInt(d(0x40), 2, V));
  EXPECT_EQ(V, 0xdeadu);
}

TEST(CachedMemory, StoresWriteThroughThenPatchResidentLines) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x200), 4, V)); // cache the line
  ASSERT_FALSE(R.Cache->storeInt(d(0x200), 4, 0xcafef00d));

  // Underneath sees the store immediately (write-through)...
  ASSERT_FALSE(R.Flat->fetchInt(d(0x200), 4, V));
  EXPECT_EQ(V, 0xcafef00du);
  // ...and the cached copy was patched, not dropped: the re-fetch is free.
  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x200), 4, V));
  EXPECT_EQ(V, 0xcafef00du);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore);
}

TEST(CachedMemory, StoreToUncachedLineAllocatesNothing) {
  Rig R;
  ASSERT_FALSE(R.Cache->storeInt(d(0x300), 4, 7));
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  uint64_t V = 0;
  ASSERT_FALSE(R.Flat->fetchInt(d(0x300), 4, V));
  EXPECT_EQ(V, 7u);
}

TEST(CachedMemory, InvalidateForgetsEverything) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 0u);

  // The target runs behind the cache's back.
  ASSERT_FALSE(R.Flat->storeInt(d(0x80), 4, 42));
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 0u) << "still serving the cached line, by design";

  R.Cache->invalidate();
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  ASSERT_FALSE(R.Cache->fetchInt(d(0x80), 4, V));
  EXPECT_EQ(V, 42u);
}

TEST(CachedMemory, FetchAcrossLineBoundaryFillsBothLines) {
  Rig R; // 16-byte lines
  ASSERT_FALSE(R.Flat->storeInt(d(14), 4, 0xaabbccdd));
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(14), 4, V));
  EXPECT_EQ(V, 0xaabbccddu);
  EXPECT_EQ(R.Cache->cachedLines(), 2u);
  EXPECT_EQ(R.Probe->FetchBlocks, 2);
}

TEST(CachedMemory, LinePastEndOfSpaceFallsBackUncached) {
  auto Flat = std::make_shared<FlatMemory>(ByteOrder::Little);
  Flat->addSpace('d', 100); // a line at offset 96 would run past the end
  auto Probe = std::make_shared<ProbeMemory>(Flat);
  CachedMemory Cache(Probe, ByteOrder::Little, 16);

  ASSERT_FALSE(Flat->storeInt(d(96), 4, 99));
  uint64_t V = 0;
  ASSERT_FALSE(Cache.fetchInt(d(96), 4, V));
  EXPECT_EQ(V, 99u);
  EXPECT_EQ(Cache.cachedLines(), 0u) << "the failed line must not linger";

  // Past the space entirely the error still surfaces.
  EXPECT_TRUE(static_cast<bool>(Cache.fetchInt(d(200), 4, V)));
}

TEST(CachedMemory, LargeBlockIsOneTransferAndSeedsLines) {
  Rig R; // 16-byte lines
  ASSERT_FALSE(R.Flat->storeInt(d(0x410), 4, 0x01020304));
  uint8_t Block[64];
  ASSERT_FALSE(R.Cache->fetchBlock(d(0x400), 64, Block));
  EXPECT_EQ(R.Probe->FetchBlocks, 1) << "one bulk transfer, not per-line";
  EXPECT_EQ(R.Cache->cachedLines(), 4u);

  // The seeded lines now serve word fetches for free.
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x410), 4, V));
  EXPECT_EQ(V, 0x01020304u);
  EXPECT_EQ(R.Probe->FetchBlocks, 1);
}

TEST(CachedMemory, BlockStoreWritesThroughAndPatches) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x500), 4, V)); // resident line
  uint8_t Bytes[8];
  packInt(0x11111111, Bytes, 4, ByteOrder::Little);
  packInt(0x22222222, Bytes + 4, 4, ByteOrder::Little);
  ASSERT_FALSE(R.Cache->storeBlock(d(0x500), 8, Bytes));
  EXPECT_EQ(R.Probe->StoreBlocks, 1);

  ASSERT_FALSE(R.Flat->fetchInt(d(0x504), 4, V));
  EXPECT_EQ(V, 0x22222222u);
  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x500), 4, V));
  EXPECT_EQ(V, 0x11111111u);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore);
}

TEST(CachedMemory, AliasedSpacesPatchEachOther) {
  // The nub's code and data spaces name the same bytes; FlatMemory's do
  // not, which makes the aliasing visible: a store through 'd' patches the
  // cached 'c' line even though flat 'c' storage never changes.
  Rig R;
  R.Cache->setSpacesAlias(true);
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V)); // cache a 'c' line
  ASSERT_FALSE(R.Cache->fetchInt(d(0x600), 4, V)); // and the 'd' twin
  ASSERT_FALSE(R.Cache->storeInt(d(0x600), 4, 0x5eed));

  int BlocksBefore = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  EXPECT_EQ(V, 0x5eedu);
  EXPECT_EQ(R.Probe->FetchBlocks, BlocksBefore) << "served from the cache";
}

TEST(CachedMemory, WithoutAliasSpacesStayIndependent) {
  Rig R; // SpacesAlias defaults to false
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  ASSERT_FALSE(R.Cache->storeInt(d(0x600), 4, 0x5eed));
  ASSERT_FALSE(R.Cache->fetchInt(c(0x600), 4, V));
  EXPECT_EQ(V, 0u);
}

TEST(CachedMemory, BypassKeepsNoLinesAndDegradesToWords) {
  Rig R;
  R.Cache->setBypass(true);
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x700), 4, V));
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  EXPECT_EQ(R.Probe->FetchInts, 1);
  EXPECT_EQ(R.Probe->FetchBlocks, 0);

  // Block ops degrade to one word message per 4 bytes — the pre-block
  // traffic shape the bench uses as its baseline.
  uint8_t Block[8];
  ASSERT_FALSE(R.Cache->fetchBlock(d(0x700), 8, Block));
  EXPECT_EQ(R.Probe->FetchInts, 3);
  EXPECT_EQ(R.Probe->FetchBlocks, 0);
  ASSERT_FALSE(R.Cache->storeBlock(d(0x700), 8, Block));
  EXPECT_EQ(R.Probe->StoreInts, 2);
  EXPECT_EQ(R.Probe->StoreBlocks, 0);
}

TEST(CachedMemory, SettingBypassDropsResidentLines) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0), 4, V));
  EXPECT_EQ(R.Cache->cachedLines(), 1u);
  R.Cache->setBypass(true);
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
}

TEST(CachedMemory, FloatsAlwaysGoToTheWire) {
  // Floats stay word operations so the nub keeps its say (e.g. refusing
  // 80-bit floats on targets without them).
  Rig R;
  ASSERT_FALSE(R.Cache->storeFloat(d(0x20), 8, -2.5L));
  long double F = 0;
  ASSERT_FALSE(R.Cache->fetchFloat(d(0x20), 8, F));
  EXPECT_EQ(F, -2.5L);
  EXPECT_EQ(R.Probe->StoreFloats, 1);
  EXPECT_EQ(R.Probe->FetchFloats, 1);
}

TEST(CachedMemory, FloatStorePatchesResidentLine) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x20), 4, V)); // resident line
  ASSERT_FALSE(R.Cache->storeFloat(d(0x20), 8, 1.5L));
  long double F = 0;
  ASSERT_FALSE(R.Cache->fetchFloat(d(0x20), 8, F));
  EXPECT_EQ(F, 1.5L);
  // The cached line was patched with the packed bytes, so an int view of
  // the same address matches what the flat memory holds.
  uint64_t Below = 0, Above = 0;
  ASSERT_FALSE(R.Flat->fetchInt(d(0x20), 4, Below));
  ASSERT_FALSE(R.Cache->fetchInt(d(0x20), 4, Above));
  EXPECT_EQ(Above, Below);
}

TEST(CachedMemory, ZeroSizeBlocksAreFreeSuccesses) {
  Rig R;
  uint8_t Byte = 0;
  ASSERT_FALSE(R.Cache->fetchBlock(d(0), 0, &Byte));
  ASSERT_FALSE(R.Cache->storeBlock(d(0), 0, &Byte));
  EXPECT_EQ(R.Probe->FetchBlocks, 0);
  EXPECT_EQ(R.Probe->StoreBlocks, 0);
}

TEST(CachedMemory, ImmediateFetchNeedsNoWire) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(Location::immediate(123), 4, V));
  EXPECT_EQ(V, 123u);
  EXPECT_EQ(R.Probe->FetchInts + R.Probe->FetchBlocks, 0);
  uint8_t Byte = 0;
  EXPECT_TRUE(
      static_cast<bool>(R.Cache->fetchBlock(Location::immediate(1), 1, &Byte)));
}

TEST(CachedMemory, UncachedSpacesForwardUntouched) {
  auto Flat = std::make_shared<FlatMemory>(ByteOrder::Little);
  Flat->addSpace('d', 256);
  Flat->addSpace('x', 256);
  auto Probe = std::make_shared<ProbeMemory>(Flat);
  CachedMemory Cache(Probe, ByteOrder::Little, 16, "d");

  uint64_t V = 0;
  ASSERT_FALSE(Cache.fetchInt(Location::absolute(SpExtra, 0), 4, V));
  EXPECT_EQ(Probe->FetchInts, 1) << "'x' is not cached: the word forwards";
  EXPECT_EQ(Cache.cachedLines(), 0u);
}

//===----------------------------------------------------------------------===//
// Seeding from pushed bytes (the nub's expedited stop window).
//===----------------------------------------------------------------------===//

TEST(CachedMemory, SeedInstallsOnlyFullyCoveredLines) {
  Rig R; // 16-byte lines
  ASSERT_FALSE(R.Flat->storeInt(d(0x20), 4, 0x11223344));
  // The peer pushed [0x1a, 0x4a): lines 0x20 and 0x30 are fully covered,
  // the ragged edges at 0x10 and 0x40 are not.
  std::vector<uint8_t> Pushed(0x4a - 0x1a);
  ASSERT_FALSE(R.Flat->fetchBlock(d(0x1a), Pushed.size(), Pushed.data()));
  R.Cache->seed(d(0x1a), Pushed.size(), Pushed.data());
  EXPECT_EQ(R.Cache->cachedLines(), 2u);
  EXPECT_EQ(R.Probe->FetchBlocks, 0) << "seeding costs no wire traffic";

  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x20), 4, V));
  EXPECT_EQ(V, 0x11223344u);
  EXPECT_EQ(R.Probe->FetchBlocks, 0) << "served from the seeded line";
  // The partial edge line was not installed: reading it fills normally.
  ASSERT_FALSE(R.Cache->fetchInt(d(0x10), 4, V));
  EXPECT_EQ(R.Probe->FetchBlocks, 1);
}

TEST(CachedMemory, SeedIgnoresBypassAndUncachedSpaces) {
  Rig R;
  uint8_t Bytes[64] = {0};
  R.Cache->seed(Location::absolute(SpExtra, 0), sizeof(Bytes), Bytes);
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
  R.Cache->setBypass(true);
  R.Cache->seed(d(0), sizeof(Bytes), Bytes);
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
}

//===----------------------------------------------------------------------===//
// Immutable spaces: code survives invalidate(), nothing survives
// invalidateAll().
//===----------------------------------------------------------------------===//

TEST(CachedMemory, ImmutableSpacesSurviveInvalidate) {
  Rig R;
  R.Cache->setImmutableSpaces("c");
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x100), 4, V));
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V));
  EXPECT_EQ(R.Cache->cachedLines(), 2u);

  R.Cache->invalidate();
  EXPECT_EQ(R.Cache->cachedLines(), 1u) << "code stays, data is dropped";
  int Blocks = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x100), 4, V));
  EXPECT_EQ(R.Probe->FetchBlocks, Blocks) << "the code line is still warm";
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V));
  EXPECT_EQ(R.Probe->FetchBlocks, Blocks + 1) << "the data line refills";

  R.Cache->invalidateAll();
  EXPECT_EQ(R.Cache->cachedLines(), 0u) << "invalidateAll spares nothing";
}

TEST(CachedMemory, EmptyImmutableSetRestoresDropEverything) {
  Rig R;
  R.Cache->setImmutableSpaces("c");
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x40), 4, V));
  R.Cache->setImmutableSpaces("");
  R.Cache->invalidate();
  EXPECT_EQ(R.Cache->cachedLines(), 0u);
}

TEST(CachedMemory, RetainedCodeLinesSeeWriteThroughStores) {
  Rig R;
  R.Cache->setImmutableSpaces("c");
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x80), 4, V));
  EXPECT_EQ(V, 0u);
  // The debugger plants a break word: the store writes through and
  // patches the retained line, so surviving invalidate() stays coherent.
  ASSERT_FALSE(R.Cache->storeInt(c(0x80), 4, 0x0000000d));
  R.Cache->invalidate();
  int Blocks = R.Probe->FetchBlocks;
  ASSERT_FALSE(R.Cache->fetchInt(c(0x80), 4, V));
  EXPECT_EQ(V, 0x0000000du);
  EXPECT_EQ(R.Probe->FetchBlocks, Blocks) << "no refill needed";
  ASSERT_FALSE(R.Flat->fetchInt(c(0x80), 4, V));
  EXPECT_EQ(V, 0x0000000du) << "and the target really holds the break word";
}

//===----------------------------------------------------------------------===//
// Prefetch batches and the posted half.
//===----------------------------------------------------------------------===//

TEST(CachedMemory, WarmManyFillsSpansInOneBatch) {
  Rig R;
  ASSERT_FALSE(R.Flat->storeInt(d(0x100), 4, 0xaaaa5555));
  ASSERT_FALSE(R.Flat->storeInt(d(0x300), 4, 0x5555aaaa));
  Error E = R.Cache->warmMany({{d(0x100), 64}, {d(0x300), 64}});
  ASSERT_FALSE(E) << E.message();
  int Blocks = R.Probe->FetchBlocks;
  EXPECT_GT(Blocks, 0);
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V));
  EXPECT_EQ(V, 0xaaaa5555u);
  ASSERT_FALSE(R.Cache->fetchInt(d(0x300), 4, V));
  EXPECT_EQ(V, 0x5555aaaau);
  EXPECT_EQ(R.Probe->FetchBlocks, Blocks) << "both spans were prefetched";
}

TEST(CachedMemory, WarmManyPastEndOfSpaceIsNotAnError) {
  Rig R; // 'd' is 4096 bytes
  Error E = R.Cache->warmMany({{d(4000), 200}});
  EXPECT_FALSE(E) << "an unwarnable span is not a transport failure";
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(4000), 4, V)) << "reads still work";
}

TEST(CachedMemory, PostedFetchFromResidentLinesCompletesImmediately) {
  Rig R;
  ASSERT_FALSE(R.Flat->storeInt(d(0x100), 4, 0x01020304));
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V)); // line is now resident
  int Blocks = R.Probe->FetchBlocks;
  uint8_t Buf[4] = {0};
  bool Completed = false;
  R.Cache->postFetchBlock(d(0x100), 4, Buf, [&](Error E) {
    EXPECT_FALSE(E) << E.message();
    Completed = true;
  });
  EXPECT_TRUE(Completed) << "a cache hit needs no await";
  EXPECT_EQ(R.Probe->FetchBlocks, Blocks);
  ASSERT_FALSE(R.Cache->awaitPosted());
}

TEST(CachedMemory, PostedStorePatchesEagerlyAndDropsOnFailure) {
  Rig R;
  uint64_t V = 0;
  ASSERT_FALSE(R.Cache->fetchInt(d(0x100), 4, V)); // make the line resident
  uint8_t New[4] = {0xde, 0xad, 0xbe, 0xef};
  R.Cache->postStoreBlock(d(0x100), 4, New, nullptr);
  // Reads between post and await must already see the new bytes.
  uint8_t Got[4] = {0};
  ASSERT_FALSE(R.Cache->fetchBlock(d(0x100), 4, Got));
  EXPECT_EQ(0, memcmp(Got, New, 4));
  ASSERT_FALSE(R.Cache->awaitPosted());

  // A store the target refuses (past the end of the space) must drop any
  // eagerly patched line rather than keep bytes the target never took.
  ASSERT_FALSE(R.Cache->fetchInt(d(4080), 4, V)); // line [4080, 4096)
  size_t Resident = R.Cache->cachedLines();
  std::vector<uint8_t> Beyond(32, 0x77);
  bool FailedClean = false;
  R.Cache->postStoreBlock(d(4080), Beyond.size(), Beyond.data(),
                          [&](Error E) { FailedClean = static_cast<bool>(E); });
  ASSERT_FALSE(R.Cache->awaitPosted()) << "failure went to the callback";
  EXPECT_TRUE(FailedClean);
  EXPECT_LT(R.Cache->cachedLines(), Resident) << "the patched line is gone";
  ASSERT_FALSE(R.Cache->fetchInt(d(4080), 4, V));
  EXPECT_EQ(V, 0u) << "the refused bytes are nowhere to be seen";
}

//===----------------------------------------------------------------------===//
// The counter block itself.
//===----------------------------------------------------------------------===//

TEST(TransportStats, ResetClearsEveryCounter) {
  TransportStats S;
  S.RoundTrips = S.MsgsSent = S.MsgsReceived = S.BytesSent = S.BytesReceived =
      1;
  S.BlockMsgsSent = S.WordMsgsSent = S.BlockRepliesReceived =
      S.WordRepliesReceived = 2;
  S.Posted = S.MaxInFlight = S.StoresCombined = 3;
  S.Retries = S.Timeouts = S.StaleReplies = 4;
  S.LinkDrops = S.LinkGarbles = 5;
  S.Cache['d'].Hits = S.Cache['d'].Misses = 6;
  S.reset();
  EXPECT_EQ(S.RoundTrips + S.MsgsSent + S.MsgsReceived + S.BytesSent +
                S.BytesReceived,
            0u);
  EXPECT_EQ(S.BlockMsgsSent + S.WordMsgsSent + S.BlockRepliesReceived +
                S.WordRepliesReceived,
            0u);
  EXPECT_EQ(S.Posted + S.MaxInFlight + S.StoresCombined, 0u);
  EXPECT_EQ(S.Retries + S.Timeouts + S.StaleReplies, 0u);
  EXPECT_EQ(S.LinkDrops + S.LinkGarbles, 0u);
  EXPECT_TRUE(S.Cache.empty());
  EXPECT_EQ(S.cacheHits() + S.cacheMisses(), 0u);
}

} // namespace
