//===- tests/mem/memories_test.cpp ---------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the abstract-memory DAG (paper Sec 4.1 / Fig 4), including the
/// key retargetability property: register memories make target byte order
/// irrelevant to the debugger.
///
//===----------------------------------------------------------------------===//

#include "mem/memories.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::mem;

namespace {

TEST(FlatMemory, IntRoundTrip) {
  FlatMemory M(ByteOrder::Little);
  M.addSpace(SpData, 64);
  ASSERT_FALSE(M.storeInt(Location::absolute(SpData, 8), 4, 0xdeadbeef));
  uint64_t V = 0;
  ASSERT_FALSE(M.fetchInt(Location::absolute(SpData, 8), 4, V));
  EXPECT_EQ(V, 0xdeadbeefu);
}

TEST(FlatMemory, ByteOrderVisibleInBytes) {
  FlatMemory Big(ByteOrder::Big);
  Big.addSpace(SpData, 8);
  ASSERT_FALSE(Big.storeInt(Location::absolute(SpData, 0), 4, 0x11223344));
  uint64_t FirstByte = 0;
  ASSERT_FALSE(Big.fetchInt(Location::absolute(SpData, 0), 1, FirstByte));
  EXPECT_EQ(FirstByte, 0x11u); // MSB first on a big-endian target.

  FlatMemory Little(ByteOrder::Little);
  Little.addSpace(SpData, 8);
  ASSERT_FALSE(Little.storeInt(Location::absolute(SpData, 0), 4, 0x11223344));
  ASSERT_FALSE(Little.fetchInt(Location::absolute(SpData, 0), 1, FirstByte));
  EXPECT_EQ(FirstByte, 0x44u);
}

TEST(FlatMemory, OutOfRangeFails) {
  FlatMemory M(ByteOrder::Little);
  M.addSpace(SpData, 4);
  uint64_t V;
  EXPECT_TRUE(M.fetchInt(Location::absolute(SpData, 2), 4, V));
  EXPECT_TRUE(M.fetchInt(Location::absolute(SpData, -1), 1, V));
  EXPECT_TRUE(M.fetchInt(Location::absolute(SpCode, 0), 4, V));
}

TEST(FlatMemory, FloatSizes) {
  FlatMemory M(ByteOrder::Big);
  M.addSpace(SpData, 64);
  long double V = 0;
  ASSERT_FALSE(M.storeFloat(Location::absolute(SpData, 0), 4, 1.5L));
  ASSERT_FALSE(M.fetchFloat(Location::absolute(SpData, 0), 4, V));
  EXPECT_EQ(V, 1.5L);
  ASSERT_FALSE(M.storeFloat(Location::absolute(SpData, 8), 8, -2.25L));
  ASSERT_FALSE(M.fetchFloat(Location::absolute(SpData, 8), 8, V));
  EXPECT_EQ(V, -2.25L);
  ASSERT_FALSE(M.storeFloat(Location::absolute(SpData, 16), 10, 3.0L / 7.0L));
  ASSERT_FALSE(M.fetchFloat(Location::absolute(SpData, 16), 10, V));
  EXPECT_EQ(V, 3.0L / 7.0L); // 80-bit storage is exact for long double.
}

TEST(ImmediateSemantics, FetchReturnsOffsetStoreFails) {
  FlatMemory M(ByteOrder::Little);
  uint64_t V = 0;
  ASSERT_FALSE(M.fetchInt(Location::immediate(77), 4, V));
  EXPECT_EQ(V, 77u);
  EXPECT_TRUE(M.storeInt(Location::immediate(77), 4, 1));
}

class AliasFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Flat = std::make_shared<FlatMemory>(ByteOrder::Big);
    Flat->addSpace(SpData, 256);
    Alias = std::make_shared<AliasMemory>(Flat);
  }
  std::shared_ptr<FlatMemory> Flat;
  std::shared_ptr<AliasMemory> Alias;
};

TEST_F(AliasFixture, RegisterAliasRoutesToData) {
  // Register 30 saved at data offset 92, as in the paper's walkthrough.
  Alias->addAlias(SpGpr, 30, Location::absolute(SpData, 92));
  ASSERT_FALSE(Flat->storeInt(Location::absolute(SpData, 92), 4, 2));
  uint64_t V = 0;
  ASSERT_FALSE(Alias->fetchInt(Location::absolute(SpGpr, 30), 4, V));
  EXPECT_EQ(V, 2u);
}

TEST_F(AliasFixture, ImmediateAliasForExtraRegisters) {
  // The pc is an alias for an immediate location (paper Sec 4.1).
  Alias->addAlias(SpExtra, 0, Location::immediate(0x2270));
  uint64_t V = 0;
  ASSERT_FALSE(Alias->fetchInt(Location::absolute(SpExtra, 0), 4, V));
  EXPECT_EQ(V, 0x2270u);
  EXPECT_TRUE(Alias->storeInt(Location::absolute(SpExtra, 0), 4, 1));
}

TEST_F(AliasFixture, RebaseMapsLocalSpace) {
  // Frame-local space rebased onto data at vfp = 128.
  Alias->addRebase(SpLocal, SpData, 128);
  ASSERT_FALSE(Flat->storeInt(Location::absolute(SpData, 116), 4, 42));
  uint64_t V = 0;
  ASSERT_FALSE(Alias->fetchInt(Location::absolute(SpLocal, -12), 4, V));
  EXPECT_EQ(V, 42u);
}

TEST_F(AliasFixture, UnaliasedRequestsPassThrough) {
  ASSERT_FALSE(Flat->storeInt(Location::absolute(SpData, 4), 4, 9));
  uint64_t V = 0;
  ASSERT_FALSE(Alias->fetchInt(Location::absolute(SpData, 4), 4, V));
  EXPECT_EQ(V, 9u);
}

TEST_F(AliasFixture, StoreThroughAlias) {
  Alias->addAlias(SpGpr, 5, Location::absolute(SpData, 40));
  ASSERT_FALSE(Alias->storeInt(Location::absolute(SpGpr, 5), 4, 0xabcd));
  uint64_t V = 0;
  ASSERT_FALSE(Flat->fetchInt(Location::absolute(SpData, 40), 4, V));
  EXPECT_EQ(V, 0xabcdu);
}

/// The paper's central byte-order claim: fetching a character from a 32-bit
/// register returns the least significant 8 bits on *both* byte orders, so
/// ldb executes the same code whether debugging a little- or big-endian
/// target.
class RegisterByteOrder : public ::testing::TestWithParam<ByteOrder> {};

TEST_P(RegisterByteOrder, SubwordRegisterFetchIsLsb) {
  auto Flat = std::make_shared<FlatMemory>(GetParam());
  Flat->addSpace(SpData, 256);
  auto Alias = std::make_shared<AliasMemory>(Flat);
  Alias->addAlias(SpGpr, 7, Location::absolute(SpData, 92));
  auto Reg = std::make_shared<RegisterMemory>(Alias, "rfx");

  // Register 7 holds 0x11223344; a char fetch must see 0x44 regardless of
  // the byte order of the underlying saved-register storage.
  ASSERT_FALSE(Reg->storeInt(Location::absolute(SpGpr, 7), 4, 0x11223344));
  uint64_t V = 0;
  ASSERT_FALSE(Reg->fetchInt(Location::absolute(SpGpr, 7), 1, V));
  EXPECT_EQ(V, 0x44u);
  ASSERT_FALSE(Reg->fetchInt(Location::absolute(SpGpr, 7), 2, V));
  EXPECT_EQ(V, 0x3344u);
}

TEST_P(RegisterByteOrder, SubwordRegisterStoreIsReadModifyWrite) {
  auto Flat = std::make_shared<FlatMemory>(GetParam());
  Flat->addSpace(SpData, 256);
  auto Alias = std::make_shared<AliasMemory>(Flat);
  Alias->addAlias(SpGpr, 7, Location::absolute(SpData, 92));
  auto Reg = std::make_shared<RegisterMemory>(Alias, "rfx");

  ASSERT_FALSE(Reg->storeInt(Location::absolute(SpGpr, 7), 4, 0x11223344));
  ASSERT_FALSE(Reg->storeInt(Location::absolute(SpGpr, 7), 1, 0x99));
  uint64_t V = 0;
  ASSERT_FALSE(Reg->fetchInt(Location::absolute(SpGpr, 7), 4, V));
  EXPECT_EQ(V, 0x11223399u);
}

TEST_P(RegisterByteOrder, NonRegisterSpacePassesThrough) {
  auto Flat = std::make_shared<FlatMemory>(GetParam());
  Flat->addSpace(SpData, 8);
  auto Reg = std::make_shared<RegisterMemory>(Flat, "rfx");
  ASSERT_FALSE(Flat->storeInt(Location::absolute(SpData, 0), 4, 0x11223344));
  uint64_t V = 0;
  // A data-space byte fetch is a real byte fetch: byte order shows.
  ASSERT_FALSE(Reg->fetchInt(Location::absolute(SpData, 0), 1, V));
  EXPECT_EQ(V, GetParam() == ByteOrder::Big ? 0x11u : 0x44u);
}

INSTANTIATE_TEST_SUITE_P(Orders, RegisterByteOrder,
                         ::testing::Values(ByteOrder::Little, ByteOrder::Big));

TEST(JoinedMemory, RoutesBySpace) {
  auto DataMem = std::make_shared<FlatMemory>(ByteOrder::Little);
  DataMem->addSpace(SpData, 32);
  DataMem->addSpace(SpCode, 32);
  auto RegMem = std::make_shared<FlatMemory>(ByteOrder::Little);
  RegMem->addSpace(SpGpr, 32 * 4);

  auto Joined = std::make_shared<JoinedMemory>();
  Joined->join("cd", DataMem);
  Joined->join("rfx", RegMem);

  ASSERT_FALSE(DataMem->storeInt(Location::absolute(SpData, 0), 4, 1));
  ASSERT_FALSE(RegMem->storeInt(Location::absolute(SpGpr, 0), 4, 2));
  uint64_t V = 0;
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpData, 0), 4, V));
  EXPECT_EQ(V, 1u);
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpGpr, 0), 4, V));
  EXPECT_EQ(V, 2u);
  EXPECT_TRUE(Joined->fetchInt(Location::absolute('z', 0), 4, V));
}

TEST(JoinedMemory, FullDagWalkthrough) {
  // Reproduces the Sec 4.1 walkthrough: i lives in register 30; the joined
  // memory routes to the register memory, which does a full-word fetch
  // through the alias memory, which notes that register 30 lives 92 bytes
  // into the context in data space.
  auto Target = std::make_shared<FlatMemory>(ByteOrder::Big);
  Target->addSpace(SpData, 4096);
  auto Alias = std::make_shared<AliasMemory>(Target);
  Alias->addAlias(SpGpr, 30, Location::absolute(SpData, 92));
  Alias->addAlias(SpExtra, 0, Location::immediate(0x2290)); // pc
  auto Reg = std::make_shared<RegisterMemory>(Alias, "rfx");
  auto Joined = std::make_shared<JoinedMemory>();
  Joined->join("rfx", Reg);
  Joined->join("cd", Target);

  ASSERT_FALSE(Target->storeInt(Location::absolute(SpData, 92), 4, 7));
  uint64_t V = 0;
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpGpr, 30), 4, V));
  EXPECT_EQ(V, 7u);
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpExtra, 0), 4, V));
  EXPECT_EQ(V, 0x2290u);
}

TEST(Location, Helpers) {
  Location L = Location::absolute(SpGpr, 30);
  EXPECT_EQ(L.str(), "r:30");
  EXPECT_EQ(L.shifted(8).Offset, 38);
  EXPECT_EQ(Location::immediate(5).str(), "imm:5");
  EXPECT_TRUE(L == Location::absolute(SpGpr, 30));
  EXPECT_FALSE(L == Location::absolute(SpGpr, 31));
}

} // namespace
