//===- tests/core/debugger_test.cpp ---------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end debugger tests: the paper's whole story on every target —
/// compile fib.c with lcc, load it into a simulated process with the nub,
/// connect ldb, plant breakpoints by source line, stop, resolve names
/// through the uplink tree, print values through PostScript printers and
/// the abstract-memory DAG, assign, walk the stack, and continue.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

// The paper's Fig 1 program with explicit line numbers:
//  1: void fib(int n) {
//  2:   static int a[20];
//  3:   if (n > 20) n = 20;
//  4:   a[0] = a[1] = 1;
//  5:   { int i;
//  6:     for (i=2; i<n; i++)
//  7:       a[i] = a[i-1] + a[i-2];
//  8:   }
//  9:   { int j;
// 10:     for (j=0; j<n; j++)
// 11:       printf("%d ", a[j]);
// 12:   }
// 13:   printf("\n");
// 14: }
// 15: int main() { int limit; limit = 10; fib(limit); return 0; }
const char *FibSource =
    "void fib(int n) {\n"
    "  static int a[20];\n"
    "  if (n > 20) n = 20;\n"
    "  a[0] = a[1] = 1;\n"
    "  { int i;\n"
    "    for (i=2; i<n; i++)\n"
    "      a[i] = a[i-1] + a[i-2];\n"
    "  }\n"
    "  { int j;\n"
    "    for (j=0; j<n; j++)\n"
    "      printf(\"%d \", a[j]);\n"
    "  }\n"
    "  printf(\"\\n\");\n"
    "}\n"
    "int main() { int limit; limit = 10; fib(limit); return 0; }\n";

class DebuggerTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    auto COr =
        compileAndLink({{"fib.c", FibSource}}, *Desc, CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();

    Proc = &Host.createProcess("fib", *Desc);
    ASSERT_FALSE(C->Img.loadInto(Proc->machine()));
    Proc->enter(C->Img.Entry);

    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
    ASSERT_TRUE(T->stopped()); // the nub's pause before main
    EXPECT_EQ(T->lastStop().Signo, nub::SigPause);
  }

  /// Plants a breakpoint at fib.c:Line and resumes until it hits.
  void runToLine(int Line) {
    ASSERT_FALSE(Debugger->breakAtLine(*T, "fib.c", Line));
    ASSERT_FALSE(T->resume());
    ASSERT_TRUE(T->stopped());
    ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  }

  std::string print(const std::string &Name, unsigned Frame = 0) {
    Expected<std::string> Out = printVariable(*T, Name, Frame);
    EXPECT_TRUE(static_cast<bool>(Out)) << Out.message();
    return Out ? *Out : std::string();
  }

  const TargetDesc *Desc = nullptr;
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
};

TEST_P(DebuggerTest, RunsToCompletionWithoutBreakpoints) {
  ASSERT_FALSE(T->resume());
  EXPECT_TRUE(T->exited());
  EXPECT_EQ(T->lastStop().ExitStatus, 0u);
  EXPECT_EQ(Proc->machine().ConsoleOut, "1 1 2 3 5 8 13 21 34 55 \n");
}

TEST_P(DebuggerTest, BreakpointBySourceLineHits) {
  runToLine(7);
  Expected<std::string> Where = describeStop(*T);
  ASSERT_TRUE(static_cast<bool>(Where)) << Where.message();
  EXPECT_NE(Where->find("fib.c:7"), std::string::npos) << *Where;
  EXPECT_NE(Where->find("in fib"), std::string::npos);
}

TEST_P(DebuggerTest, PrintsRegisterVariable) {
  runToLine(7); // first arrival: i == 2
  EXPECT_EQ(print("i"), "2");
}

TEST_P(DebuggerTest, PrintsParameterFromStack) {
  runToLine(7);
  EXPECT_EQ(print("n"), "10");
}

TEST_P(DebuggerTest, PrintsStaticArrayThroughAnchor) {
  runToLine(7);
  ASSERT_FALSE(T->interp().run("5 setprintlimit"));
  EXPECT_EQ(print("a"), "{1, 1, 0, 0, 0, ...}");
}

TEST_P(DebuggerTest, BreakpointHitsRepeatedly) {
  runToLine(7);
  EXPECT_EQ(print("i"), "2");
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  EXPECT_EQ(print("i"), "3");
  ASSERT_FALSE(T->resume());
  EXPECT_EQ(print("i"), "4");
  // a grows as fib fills it.
  ASSERT_FALSE(T->interp().run("4 setprintlimit"));
  EXPECT_EQ(print("a"), "{1, 1, 2, 3, ...}");
}

TEST_P(DebuggerTest, NameResolutionFollowsScopes) {
  // At line 11, j is visible but i is not (different block); a and n are.
  runToLine(11);
  EXPECT_EQ(print("j"), "0");
  EXPECT_EQ(print("n"), "10");
  Expected<std::string> Bad = printVariable(*T, "i");
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("i"), std::string::npos);
}

TEST_P(DebuggerTest, AssignmentToRegisterVariable) {
  runToLine(7);
  // Cut the loop short: force i to n-1 so only one more element fills.
  ASSERT_FALSE(assignVariable(*T, "i", "9"));
  EXPECT_EQ(print("i"), "9");
  ASSERT_FALSE(T->resume()); // runs a[9]=a[8]+a[7]=0, i++, loop exits
  EXPECT_TRUE(T->exited());
  // a[2..9] were never really filled.
  EXPECT_EQ(Proc->machine().ConsoleOut, "1 1 0 0 0 0 0 0 0 0 \n");
}

TEST_P(DebuggerTest, AssignmentToParameter) {
  runToLine(4); // before the loops: n = 10 still
  ASSERT_FALSE(assignVariable(*T, "n", "3"));
  ASSERT_FALSE(T->resume());
  EXPECT_TRUE(T->exited());
  EXPECT_EQ(Proc->machine().ConsoleOut, "1 1 2 \n");
}

TEST_P(DebuggerTest, BacktraceShowsCallChain) {
  runToLine(7);
  Expected<std::string> Bt = renderBacktrace(*T);
  ASSERT_TRUE(static_cast<bool>(Bt)) << Bt.message();
  EXPECT_NE(Bt->find("#0 fib at fib.c:7"), std::string::npos) << *Bt;
  EXPECT_NE(Bt->find("#1 main at fib.c:15"), std::string::npos) << *Bt;
}

TEST_P(DebuggerTest, PrintsLocalInCallerFrame) {
  runToLine(7);
  // limit lives in main's frame (frame 1).
  EXPECT_EQ(print("limit", 1), "10");
  // It is not visible from fib's own frame.
  Expected<std::string> Bad = printVariable(*T, "limit", 0);
  EXPECT_FALSE(static_cast<bool>(Bad));
}

TEST_P(DebuggerTest, BreakAtProcedureEntry) {
  ASSERT_FALSE(Debugger->breakAtProc(*T, "fib"));
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  EXPECT_EQ(print("n"), "10");
  ASSERT_FALSE(T->resume());
  EXPECT_TRUE(T->exited());
}

TEST_P(DebuggerTest, RemoveBreakpointRestoresNop) {
  runToLine(7);
  // Remove every breakpoint: the program then runs to completion.
  std::vector<uint32_t> Addrs;
  for (const auto &[Addr, Orig] : T->breakpoints())
    Addrs.push_back(Addr);
  for (uint32_t Addr : Addrs)
    ASSERT_FALSE(T->removeBreakpoint(Addr));
  ASSERT_FALSE(T->resume());
  EXPECT_TRUE(T->exited());
  EXPECT_EQ(Proc->machine().ConsoleOut, "1 1 2 3 5 8 13 21 34 55 \n");
}

TEST_P(DebuggerTest, BreakpointRefusedOffStoppingPoints) {
  // An address that holds a real instruction, not a no-op.
  Error E = T->plantBreakpoint(C->Img.Entry);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("no-op"), std::string::npos);
}

TEST_P(DebuggerTest, RegistersPrintWithMdNames) {
  runToLine(7);
  Expected<std::string> Regs = printRegisters(*T);
  ASSERT_TRUE(static_cast<bool>(Regs)) << Regs.message();
  EXPECT_NE(Regs->find("sp=0x"), std::string::npos) << *Regs;
  // Each architecture names its registers its own way.
  if (Desc->Name == "z68k") {
    EXPECT_NE(Regs->find("d0="), std::string::npos);
  }
  if (Desc->Name == "zsparc") {
    EXPECT_NE(Regs->find("g0="), std::string::npos);
  }
}

TEST_P(DebuggerTest, DebuggerCrashAndReattachKeepsEverything) {
  runToLine(7);
  EXPECT_EQ(print("i"), "2");

  // The debugger dies without detaching; the nub preserves all state.
  T->crashConnection();
  Debugger = std::make_unique<Ldb>();
  auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  T = *TOr;
  ASSERT_TRUE(T->stopped());
  EXPECT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(print("i"), "2");

  // The new debugger does not know about the old one's planted
  // breakpoints; the word in code memory is still a break instruction,
  // so re-plant bookkeeping by reading the code is possible — here we
  // simply resume past the trap by adjusting the context pc, as the old
  // debugger would have.
  Expected<uint32_t> Pc = T->ctxPc();
  ASSERT_TRUE(static_cast<bool>(Pc));
  ASSERT_FALSE(T->setCtxPc(*Pc + T->arch().Bp.PcAdvance));
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped()); // hits the planted break again
}

TEST_P(DebuggerTest, FaultReportsSourcePosition) {
  // A program that faults: ldb maps the faulting pc to the nearest
  // stopping point.
  auto COr = compileAndLink(
      {{"crash.c", "int f(int d) { return 10 / d; }\n"
                   "int main() { return f(0); }\n"}},
      *Desc, CompileOptions());
  ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
  nub::NubProcess &P = Host.createProcess("crash", *Desc);
  ASSERT_FALSE((*COr)->Img.loadInto(P.machine()));
  P.enter((*COr)->Img.Entry);
  auto TOr = Debugger->connect(Host, "crash", (*COr)->PsSymtab,
                               (*COr)->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  Target &CT = **TOr;
  ASSERT_FALSE(CT.resume());
  ASSERT_TRUE(CT.stopped());
  EXPECT_EQ(CT.lastStop().Signo, nub::SigFpe);
  Expected<std::string> Where = describeStop(CT);
  ASSERT_TRUE(static_cast<bool>(Where)) << Where.message();
  EXPECT_NE(Where->find("arithmetic fault"), std::string::npos);
  EXPECT_NE(Where->find("crash.c:1"), std::string::npos) << *Where;
  // The argument is printable at the fault.
  Expected<std::string> D = printVariable(CT, "d");
  ASSERT_TRUE(static_cast<bool>(D)) << D.message();
  EXPECT_EQ(*D, "0");
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DebuggerTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

//===----------------------------------------------------------------------===//
// Cross-architecture and multi-target debugging
//===----------------------------------------------------------------------===//

TEST(CrossArch, TwoTargetsTwoArchitecturesSimultaneously) {
  // "ldb can debug on multiple architectures simultaneously" (Sec 6) and
  // cross-architecture debugging is identical to single-architecture
  // debugging (Sec 1): one debugger, one interpreter, a zmips process and
  // a z68k process, interleaved.
  nub::ProcessHost Host;
  Ldb Debugger;
  std::map<std::string, std::unique_ptr<Compilation>> Programs;
  for (const char *Name : {"zmips", "z68k"}) {
    const TargetDesc &Desc = *targetByName(Name);
    auto COr =
        compileAndLink({{"fib.c", FibSource}}, Desc, CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    nub::NubProcess &P =
        Host.createProcess(std::string("p-") + Name, Desc);
    ASSERT_FALSE((*COr)->Img.loadInto(P.machine()));
    P.enter((*COr)->Img.Entry);
    Programs[Name] = COr.take();
  }

  Target *A = nullptr, *B = nullptr;
  {
    auto AOr = Debugger.connect(Host, "p-zmips",
                                Programs["zmips"]->PsSymtab,
                                Programs["zmips"]->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(AOr)) << AOr.message();
    A = *AOr;
    auto BOr = Debugger.connect(Host, "p-z68k",
                                Programs["z68k"]->PsSymtab,
                                Programs["z68k"]->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(BOr)) << BOr.message();
    B = *BOr;
  }
  EXPECT_EQ(A->arch().Desc->Name, "zmips");
  EXPECT_EQ(B->arch().Desc->Name, "z68k");

  // Break both at line 7, interleave stops, print on both sides with the
  // *same* debugger code paths.
  ASSERT_FALSE(Debugger.breakAtLine(*A, "fib.c", 7));
  ASSERT_FALSE(Debugger.breakAtLine(*B, "fib.c", 7));
  ASSERT_FALSE(A->resume());
  ASSERT_FALSE(B->resume());
  Expected<std::string> Ia = printVariable(*A, "i");
  Expected<std::string> Ib = printVariable(*B, "i");
  ASSERT_TRUE(static_cast<bool>(Ia)) << Ia.message();
  ASSERT_TRUE(static_cast<bool>(Ib)) << Ib.message();
  EXPECT_EQ(*Ia, "2");
  EXPECT_EQ(*Ib, "2");

  // Advance only the little-endian target; the big-endian one is
  // untouched (state is in target objects, not globals).
  ASSERT_FALSE(A->resume());
  Ia = printVariable(*A, "i");
  Ib = printVariable(*B, "i");
  ASSERT_TRUE(static_cast<bool>(Ia));
  ASSERT_TRUE(static_cast<bool>(Ib));
  EXPECT_EQ(*Ia, "3");
  EXPECT_EQ(*Ib, "2");
}

TEST(CrossArch, FaultingProcessNotChildOfDebugger) {
  // The "faulty process asks to be debugged" flow: the process runs (and
  // faults) before any debugger exists.
  const TargetDesc &Desc = *targetByName("zvax");
  auto COr = compileAndLink(
      {{"late.c", "int g; int main() { g = 7; return g / (g - 7); }\n"}},
      Desc, CompileOptions());
  ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
  nub::ProcessHost Host;
  nub::NubProcess &P = Host.createProcess("late", Desc);
  ASSERT_FALSE((*COr)->Img.loadInto(P.machine()));
  P.enter((*COr)->Img.Entry);
  P.continueUnattached(); // crashes with nobody watching
  ASSERT_EQ(P.state(), nub::NubProcess::State::Stopped);

  Ldb Debugger;
  auto TOr = Debugger.connect(Host, "late", (*COr)->PsSymtab,
                              (*COr)->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  Target &T = **TOr;
  ASSERT_TRUE(T.stopped());
  EXPECT_EQ(T.lastStop().Signo, nub::SigFpe);
  Expected<std::string> G = printVariable(T, "g");
  ASSERT_TRUE(static_cast<bool>(G)) << G.message();
  EXPECT_EQ(*G, "7");
}

TEST(LdbApi, MismatchedSymbolTableRejected) {
  // A symbol table for one architecture must not load against a target
  // running another.
  const TargetDesc &Zmips = *targetByName("zmips");
  const TargetDesc &Zvax = *targetByName("zvax");
  auto CM = compileAndLink({{"t.c", "int main() { return 0; }\n"}}, Zmips,
                           CompileOptions());
  auto CV = compileAndLink({{"t.c", "int main() { return 0; }\n"}}, Zvax,
                           CompileOptions());
  ASSERT_TRUE(static_cast<bool>(CM));
  ASSERT_TRUE(static_cast<bool>(CV));
  nub::ProcessHost Host;
  nub::NubProcess &P = Host.createProcess("t", Zvax);
  ASSERT_FALSE((*CV)->Img.loadInto(P.machine()));
  P.enter((*CV)->Img.Entry);
  Ldb Debugger;
  // zmips symbols + zvax loader table against the zvax process.
  auto TOr =
      Debugger.connect(Host, "t", (*CM)->PsSymtab, (*CV)->LoaderTable);
  ASSERT_FALSE(static_cast<bool>(TOr));
  EXPECT_NE(TOr.message().find("zmips"), std::string::npos);
}

} // namespace
