//===- tests/core/session_test.cpp ---------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Session-architecture tests: N DebugSessions over one Ldb share one
/// ImageRepository entry per image (with byte-identical behavior to
/// private loads and to each other), keep their mutable state —
/// breakpoint numbering, stop state, transport counters — independent,
/// and multiplex over one SessionManager event loop with all simulated
/// wires on a single virtual clock.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "core/fleet.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

const char *FibSource =
    "void fib(int n) {\n"
    "  static int a[20];\n"
    "  if (n > 20) n = 20;\n"
    "  a[0] = a[1] = 1;\n"
    "  { int i;\n"
    "    for (i=2; i<n; i++)\n"
    "      a[i] = a[i-1] + a[i-2];\n"
    "  }\n"
    "}\n"
    "int main() { fib(10); return 0; }\n";

class SessionTest : public ::testing::Test {
protected:
  void SetUp() override {
    Desc = targetByName("zmips");
    auto COr = compileAndLink({{"fib.c", FibSource}}, *Desc,
                              CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    Debugger = std::make_unique<Ldb>();
  }

  /// Creates a fresh process running the image and connects a session
  /// named \p Name to it.
  DebugSession *makeSession(const std::string &Name,
                            const nub::SimParams *Sim = nullptr,
                            std::shared_ptr<nub::VirtualClock> Clock =
                                nullptr) {
    nub::NubProcess &P = Host.createProcess(Name, *Desc);
    if (C->Img.loadInto(P.machine()))
      return nullptr;
    P.enter(C->Img.Entry);
    auto SOr = Debugger->createSession(Host, Name, C->PsSymtab,
                                       C->LoaderTable, Sim, Clock);
    EXPECT_TRUE(static_cast<bool>(SOr)) << SOr.message();
    return SOr ? *SOr : nullptr;
  }

  /// Runs the session to fib's entry and takes \p N source steps,
  /// returning the stop pcs.
  std::vector<uint32_t> stepTrace(DebugSession &S, unsigned N) {
    std::vector<uint32_t> Pcs;
    Expected<int> Id = S.addBreakAtProc("fib");
    EXPECT_TRUE(static_cast<bool>(Id)) << Id.message();
    if (!Id)
      return Pcs;
    Error E = S.continueToStop();
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    Expected<size_t> Del = S.target().deleteAllUserBreakpoints();
    EXPECT_TRUE(static_cast<bool>(Del));
    for (unsigned K = 0; K < N && !S.target().exited(); ++K) {
      Error SE = S.stepToNextStop();
      EXPECT_FALSE(static_cast<bool>(SE)) << SE.message();
      Expected<uint32_t> Pc = S.target().ctxPc();
      Pcs.push_back(Pc ? *Pc : 0);
    }
    return Pcs;
  }

  const TargetDesc *Desc = nullptr;
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  std::unique_ptr<Ldb> Debugger;
};

TEST_F(SessionTest, TwoSessionsShareOneRepositoryEntry) {
  DebugSession *A = makeSession("a");
  DebugSession *B = makeSession("b");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(Debugger->images().imageCount(), 1u);
  ASSERT_TRUE(A->target().image());
  ASSERT_TRUE(B->target().image());
  // Literally the same shared object, not two equal copies.
  EXPECT_EQ(A->target().image().get(), B->target().image().get());
  EXPECT_GT(Debugger->images().sourceBytes(), 0u);
}

TEST_F(SessionTest, SharedSessionsProduceIdenticalStopSequences) {
  DebugSession *A = makeSession("a");
  DebugSession *B = makeSession("b");
  ASSERT_TRUE(A && B);
  // A steps first and pays the deferred-loci forcing; B rides the
  // memoized shared entries. Interference through the shared image would
  // skew one of the traces.
  std::vector<uint32_t> TA = stepTrace(*A, 8);
  std::vector<uint32_t> TB = stepTrace(*B, 8);
  EXPECT_EQ(TA, TB);
  ASSERT_EQ(TA.size(), 8u);
}

TEST_F(SessionTest, PrivateLoadMatchesSharedLoad) {
  DebugSession *Shared = makeSession("shared");
  ASSERT_TRUE(Shared);
  Debugger->setImageSharing(false);
  DebugSession *Priv = makeSession("private");
  ASSERT_TRUE(Priv);
  EXPECT_TRUE(Shared->target().image());
  EXPECT_FALSE(Priv->target().image());
  // Only the shared session put an entry in the repository.
  EXPECT_EQ(Debugger->images().imageCount(), 1u);
  // Sharing must be observably invisible: identical stepping.
  EXPECT_EQ(stepTrace(*Shared, 8), stepTrace(*Priv, 8));
}

TEST_F(SessionTest, BreakpointNumberingIsPerSession) {
  DebugSession *A = makeSession("a");
  DebugSession *B = makeSession("b");
  ASSERT_TRUE(A && B);
  Expected<int> A1 = A->addBreakAtProc("fib");
  Expected<int> A2 = A->addBreakAtLine("fib.c", 6);
  Expected<int> B1 = B->addBreakAtProc("fib");
  ASSERT_TRUE(A1 && A2 && B1);
  // Numbering starts at 1 in every session, independently.
  EXPECT_EQ(*A1, 1);
  EXPECT_EQ(*A2, 2);
  EXPECT_EQ(*B1, 1);
  // Deleting in one session leaves the other's records and plants alone.
  ASSERT_FALSE(A->target().deleteUserBreakpoint(*A1));
  EXPECT_EQ(A->target().userBreakpoints().size(), 1u);
  EXPECT_EQ(B->target().userBreakpoints().size(), 1u);
  EXPECT_TRUE(B->target().userBreakpoint(*B1));
}

TEST_F(SessionTest, SessionManagerMultiplexesOnOneVirtualClock) {
  nub::SimParams Sim;
  Sim.LatencyNs = 1500;
  auto Clock = std::make_shared<nub::VirtualClock>();
  const unsigned N = 4, Steps = 6;
  std::vector<DebugSession *> All;
  for (unsigned K = 0; K < N; ++K) {
    DebugSession *S =
        makeSession("s" + std::to_string(K), &Sim, Clock);
    ASSERT_TRUE(S);
    All.push_back(S);
  }
  // The serial reference comes from a zero-latency private session.
  DebugSession *Ref = makeSession("ref");
  ASSERT_TRUE(Ref);
  std::vector<uint32_t> Want = stepTrace(*Ref, Steps);

  SessionManager Mgr;
  for (DebugSession *S : All)
    Mgr.add(*S);
  EXPECT_EQ(Mgr.sessionCount(), N);

  std::map<std::string, std::vector<uint32_t>> Stops;
  Mgr.run([&](DebugSession &S, size_t Round) -> bool {
    if (Round == 0) {
      Expected<int> Id = S.addBreakAtProc("fib");
      EXPECT_TRUE(static_cast<bool>(Id));
      Error E = S.continueToStop();
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
      Expected<size_t> Del = S.target().deleteAllUserBreakpoints();
      EXPECT_TRUE(static_cast<bool>(Del));
      return true;
    }
    Error E = S.stepToNextStop();
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    Expected<uint32_t> Pc = S.target().ctxPc();
    Stops[S.name()].push_back(Pc ? *Pc : 0);
    return Round < Steps;
  });

  // Every multiplexed session reproduced the serial trace exactly.
  for (DebugSession *S : All)
    EXPECT_EQ(Stops[S->name()], Want) << S->name();
  // N sessions, one setup turn plus Steps stepping turns each.
  EXPECT_EQ(Mgr.turns(), uint64_t(N) * (Steps + 1));
  // All wires ran on the one shared clock, which actually advanced.
  EXPECT_GT(All.front()->target().client().channel().nowNs(), 0u);
  EXPECT_EQ(All.front()->target().client().channel().nowNs(),
            All.back()->target().client().channel().nowNs());
  // The rollup sums per-session counters.
  mem::TransportStats Sum = Mgr.rollup();
  EXPECT_GT(Sum.RoundTrips, All.front()->stats().RoundTrips);

  for (DebugSession *S : All)
    Mgr.remove(*S);
  EXPECT_EQ(Mgr.sessionCount(), 0u);
}

TEST_F(SessionTest, ReplacedAndDroppedSessionsRetireTheirStats) {
  DebugSession *A = makeSession("a");
  ASSERT_TRUE(A);
  stepTrace(*A, 4);
  uint64_t LiveRt = A->stats().RoundTrips;
  ASSERT_GT(LiveRt, 0u);
  EXPECT_EQ(Debugger->fleetStats().RoundTrips, LiveRt);

  // A reconnect under the same name replaces the session; the dead
  // session's counters survive in the fleet aggregate.
  A->target().crashConnection();
  auto SOr = Debugger->createSession(Host, "a", C->PsSymtab,
                                     C->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(SOr)) << SOr.message();
  EXPECT_NE(*SOr, A);
  EXPECT_GE(Debugger->fleetStats().RoundTrips, LiveRt);

  // Disconnecting retires the replacement's counters too (the polite
  // detach itself costs a final round trip).
  uint64_t Total = Debugger->fleetStats().RoundTrips;
  Debugger->disconnect("a");
  EXPECT_EQ(Debugger->session("a"), nullptr);
  EXPECT_GE(Debugger->fleetStats().RoundTrips, Total);
  // And a reset clears the retired aggregate.
  Debugger->clearRetiredStats();
  EXPECT_EQ(Debugger->fleetStats().RoundTrips, 0u);
}

TEST_F(SessionTest, SessionForFindsTheOwningSession) {
  DebugSession *A = makeSession("a");
  DebugSession *B = makeSession("b");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(Debugger->sessionFor(A->target()), A);
  EXPECT_EQ(Debugger->sessionFor(B->target()), B);
  Target Outside("outside", Debugger->interp());
  EXPECT_EQ(Debugger->sessionFor(Outside), nullptr);
}

} // namespace
