//===- tests/core/symblob_test.cpp -----------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled debug-info blob (core/symblob.h) against its contract:
/// compile -> inspect -> attach roundtrips cleanly on every target, every
/// deliberate mutation is rejected with a structured error (never a
/// crash), the mmap attach path behaves like the in-memory one, the cache
/// drops invalid entries to the interpreter, a deferred symbol table
/// answers byte-identically with the blob on and off, and the CLI stats
/// rows report and reset the symblob counters.
///
//===----------------------------------------------------------------------===//

#include "core/cli.h"
#include "core/debugger.h"
#include "core/symblob.h"
#include "core/symtab.h"
#include "postscript/fastload.h"
#include "target/targetdesc.h"
#include "workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::target;

namespace symblob = ldb::core::symblob;

namespace {

/// One simulated process with a debugger attached, sized to the image.
struct Session {
  nub::ProcessHost Host;
  Ldb Debugger;
  Target *T = nullptr;
};

std::unique_ptr<Session> connectTo(const lcc::Image &Img,
                                   const std::string &PsSymtab,
                                   const std::string &LoaderTable) {
  auto S = std::make_unique<Session>();
  uint32_t Need = std::max<uint32_t>(
      Img.TextBase + static_cast<uint32_t>(Img.Text.size()),
      Img.DataBase + static_cast<uint32_t>(Img.Data.size()));
  uint32_t MemBytes = 1u << 20;
  while (MemBytes < Need + (1u << 18))
    MemBytes <<= 1;
  nub::NubProcess &Proc = S->Host.createProcess("p0", *Img.Desc, MemBytes);
  if (Img.loadInto(Proc.machine()))
    return nullptr;
  Proc.enter(Img.Entry);
  auto T = S->Debugger.connect(S->Host, "p0", PsSymtab, LoaderTable);
  if (!T)
    return nullptr;
  S->T = *T;
  return S;
}

uint64_t keyFor(const TargetDesc &Desc, const std::string &PsSymtab,
                const std::string &LoaderTable) {
  return symblob::combineKeys(
      ps::fastload::contentHash(Desc.Name + "\n" + PsSymtab),
      ps::fastload::contentHash(LoaderTable));
}

/// Compiles fib for \p Desc and lowers its debug info into a blob.
struct Compiled {
  std::unique_ptr<lcc::Compilation> C;
  uint64_t Key = 0;
  std::vector<uint8_t> Bytes;
};

Compiled compileFib(const TargetDesc &Desc, bool Deferred = false) {
  Compiled Out;
  lcc::CompileOptions Options;
  Options.DeferredSymtab = Deferred;
  auto COr = lcc::compileAndLink({{"fib.c", bench::fibProgram()}}, Desc,
                                 Options);
  EXPECT_TRUE(static_cast<bool>(COr)) << COr.message();
  if (!COr)
    return Out;
  Out.C = COr.take();
  Out.Key = keyFor(Desc, Out.C->PsSymtab, Out.C->LoaderTable);

  symblob::Cache::global().setEnabled(false);
  auto S = connectTo(Out.C->Img, Out.C->PsSymtab, Out.C->LoaderTable);
  symblob::Cache::global().setEnabled(true);
  EXPECT_NE(S, nullptr);
  if (!S)
    return Out;
  Target::Scope Scope(*S->T);
  auto B = symblob::compile(S->T->interp(),
                            symblob::Params{Out.Key, Desc.Name});
  EXPECT_TRUE(static_cast<bool>(B)) << B.message();
  if (B)
    Out.Bytes = B.take();
  return Out;
}

class SymblobTest : public ::testing::TestWithParam<const TargetDesc *> {};

TEST_P(SymblobTest, CompileInspectAttachRoundtrip) {
  Compiled P = compileFib(*GetParam());
  ASSERT_FALSE(P.Bytes.empty());

  EXPECT_TRUE(symblob::inspect(P.Bytes, P.Key).empty());
  auto B = symblob::Blob::attach(P.Bytes, P.Key);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  const symblob::Blob &Blob = **B;

  EXPECT_EQ(Blob.imageKey(), P.Key);
  EXPECT_EQ(Blob.archName(), GetParam()->Name);
  EXPECT_GE(Blob.procCount(), 2u) << "fib and main at least";

  auto Fib = Blob.procNamed("fib");
  ASSERT_TRUE(Fib.has_value());
  EXPECT_TRUE(Fib->HasSymbols);
  EXPECT_TRUE(Fib->Extern);
  EXPECT_GT(Fib->LociCount, 0u);

  // Every locus of fib maps back through the pc and line indexes.
  ASSERT_TRUE(Fib->HasFile);
  auto Fid = Blob.fileId(Fib->File);
  ASSERT_TRUE(Fid.has_value());
  EXPECT_TRUE(Blob.fileInLineIndex(*Fid));
  for (uint32_t K = 0; K < Fib->LociCount; ++K) {
    symblob::Blob::LocusView L = Blob.locus(Fib->LociStart + K);
    EXPECT_EQ(L.ProcId, Fib->Id);
    EXPECT_GT(L.Line, 0);
    auto Within = Blob.procContaining(L.Addr);
    ASSERT_TRUE(Within.has_value());
    EXPECT_EQ(Within->Id, Fib->Id);
    bool Found = false;
    for (uint32_t Id : Blob.lociForLine(*Fid, L.Line))
      Found |= Blob.locus(Id).Addr == L.Addr;
    EXPECT_TRUE(Found) << "line " << L.Line << " misses its stop site";
  }

  auto Sym = Blob.symbolNamed("fib");
  ASSERT_TRUE(Sym.has_value());
  EXPECT_TRUE(Sym->IsProc);
  EXPECT_EQ(Blob.proc(Sym->ProcId).Name, "fib");
  EXPECT_FALSE(Blob.symbolNamed("no-such-symbol").has_value());
}

TEST(SymblobMutations, EveryMutationIsRejectedStructurally) {
  Compiled P = compileFib(*targetByName("zmips"));
  ASSERT_FALSE(P.Bytes.empty());

  auto Rd32 = [&](const std::vector<uint8_t> &B, size_t Off) {
    uint32_t V;
    std::memcpy(&V, B.data() + Off, 4);
    return V;
  };
  uint32_t ProcsOff = Rd32(P.Bytes, 24 + 8);

  struct Case {
    const char *Label;
    void (*Apply)(std::vector<uint8_t> &, uint32_t);
  };
  const Case Cases[] = {
      {"truncation to half",
       [](std::vector<uint8_t> &B, uint32_t) { B.resize(B.size() / 2); }},
      {"truncation inside the header",
       [](std::vector<uint8_t> &B, uint32_t) { B.resize(12); }},
      {"bad magic",
       [](std::vector<uint8_t> &B, uint32_t) { B[0] ^= 0xFF; }},
      {"stale image key",
       [](std::vector<uint8_t> &B, uint32_t) { B[8] ^= 0x01; }},
      {"unsorted pc index",
       [](std::vector<uint8_t> &B, uint32_t Off) {
         uint8_t Tmp[28];
         std::memcpy(Tmp, B.data() + Off, 28);
         std::memcpy(B.data() + Off, B.data() + Off + 28, 28);
         std::memcpy(B.data() + Off + 28, Tmp, 28);
       }},
      {"out-of-range string offset",
       [](std::vector<uint8_t> &B, uint32_t Off) {
         uint32_t Bad = 0xFFFFFF00u;
         std::memcpy(B.data() + Off + 8, &Bad, 4);
       }},
  };
  for (const Case &C : Cases) {
    std::vector<uint8_t> Mutant = P.Bytes;
    C.Apply(Mutant, ProcsOff);
    EXPECT_FALSE(symblob::inspect(Mutant, P.Key).empty())
        << C.Label << " passed inspection";
    auto B = symblob::Blob::attach(std::move(Mutant), P.Key);
    EXPECT_FALSE(static_cast<bool>(B)) << C.Label << " attached";
    if (!B) {
      EXPECT_FALSE(B.message().empty()) << C.Label;
    }
  }
}

TEST(SymblobAttachFile, MmapRoundtripAndRejection) {
  Compiled P = compileFib(*targetByName("zmips"));
  ASSERT_FALSE(P.Bytes.empty());

  std::string Path = "symblob_test_tmp.ldbi";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(P.Bytes.data(), 1, P.Bytes.size(), F),
            P.Bytes.size());
  std::fclose(F);

  auto B = symblob::Blob::attachFile(Path, P.Key);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_EQ((*B)->byteSize(), P.Bytes.size());
  EXPECT_EQ((*B)->procCount(),
            symblob::Blob::attach(P.Bytes, P.Key).take()->procCount());

  // A different expected key is a stale blob, not a crash.
  EXPECT_FALSE(
      static_cast<bool>(symblob::Blob::attachFile(Path, P.Key + 1)));
  EXPECT_FALSE(static_cast<bool>(
      symblob::Blob::attachFile("no-such-file.ldbi", P.Key)));

  // Truncate on disk: the mmap path must reject it structurally too.
  F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(P.Bytes.data(), 1, P.Bytes.size() / 3, F),
            P.Bytes.size() / 3);
  std::fclose(F);
  EXPECT_FALSE(static_cast<bool>(symblob::Blob::attachFile(Path, P.Key)));
  std::remove(Path.c_str());
}

TEST(SymblobCache, InvalidEntriesFallBackAndSnapshotsCopy) {
  Compiled P = compileFib(*targetByName("zmips"));
  ASSERT_FALSE(P.Bytes.empty());
  symblob::Cache &BC = symblob::Cache::global();
  BC.clear();
  BC.setEnabled(true);

  // A corrupt planted blob is dropped, counted, and never returned.
  std::vector<uint8_t> Corrupt = P.Bytes;
  Corrupt[0] ^= 0xFF;
  BC.store(P.Key, Corrupt);
  uint64_t Before = symblob::symblobStats().Fallbacks;
  EXPECT_EQ(BC.acquire(P.Key), nullptr);
  EXPECT_GT(symblob::symblobStats().Fallbacks, Before);

  BC.store(P.Key, P.Bytes);
  std::shared_ptr<const symblob::Blob> B = BC.acquire(P.Key);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->imageKey(), P.Key);
  auto Snap = BC.snapshotBytes(P.Key);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(*Snap, P.Bytes);

  // Disabled means miss — the interpreter path is always behind it.
  BC.setEnabled(false);
  EXPECT_EQ(BC.acquire(P.Key), nullptr);
  BC.setEnabled(true);

  BC.clear();
  EXPECT_EQ(BC.size(), 0u);
  EXPECT_FALSE(BC.snapshotBytes(P.Key).has_value());
}

/// The deferred-lexing equivalence: a session whose stop-site queries are
/// answered by the blob must behave byte-identically to one that forces
/// the interpreter's deferred entries — including the later variable
/// reads that DO force entries, proving the blob path left the symtab
/// dictionaries in the same state the interpreter path produces.
TEST_P(SymblobTest, DeferredSessionIsByteIdenticalWithBlobOnAndOff) {
  Compiled P = compileFib(*GetParam(), /*Deferred=*/true);
  ASSERT_NE(P.C, nullptr);
  ASSERT_NE(P.C->PsSymtab.find("DeferDef"), std::string::npos);

  const std::vector<std::string> Commands = {
      "break fib.c:7", "continue", "status", "where",
      "print i",       "print n",  "step",   "where",
  };
  auto Transcript = [&](bool UseBlob) {
    symblob::Cache &BC = symblob::Cache::global();
    BC.clear();
    BC.setEnabled(UseBlob);
    auto S = connectTo(P.C->Img, P.C->PsSymtab, P.C->LoaderTable);
    EXPECT_NE(S, nullptr);
    if (!S)
      return std::string();
    CommandInterpreter Cli(S->Debugger);
    Cli.setCurrent(S->T);
    std::string Out;
    for (const std::string &C : Commands)
      Out += "> " + C + "\n" + Cli.execute(C);
    BC.setEnabled(true);
    BC.clear();
    return Out;
  };

  std::string WithBlob = Transcript(true);
  std::string WithDict = Transcript(false);
  EXPECT_FALSE(WithBlob.empty());
  EXPECT_EQ(WithBlob, WithDict);
  // The blob run really used the blob: a breakpoint by FILE:LINE and the
  // stop description are index queries.
  EXPECT_NE(WithBlob.find("fib.c:7"), std::string::npos);
}

TEST(SymblobCliStats, GoldenRowsReportAndReset) {
  Compiled P = compileFib(*targetByName("zmips"));
  ASSERT_NE(P.C, nullptr);
  symblob::Cache &BC = symblob::Cache::global();
  BC.clear();
  BC.setEnabled(true);
  symblob::symblobStats().reset();

  auto S = connectTo(P.C->Img, P.C->PsSymtab, P.C->LoaderTable);
  ASSERT_NE(S, nullptr);
  CommandInterpreter Cli(S->Debugger);
  Cli.setCurrent(S->T);
  Cli.execute("break fib.c:7");
  Cli.execute("continue");

  std::string Out = Cli.execute("stats");
  size_t At = Out.find("symblob:        ");
  ASSERT_NE(At, std::string::npos) << Out;
  unsigned long long Hits = 0, Misses = 0, Builds = 0, Fallbacks = 0,
                     Probes = 0;
  ASSERT_EQ(std::sscanf(Out.c_str() + At,
                        "symblob:        %llu hits, %llu misses, "
                        "%llu builds, %llu fallbacks, %llu probes",
                        &Hits, &Misses, &Builds, &Fallbacks, &Probes),
            5)
      << Out;
  (void)Hits;
  EXPECT_EQ(Builds, 1u) << "connect compiled the blob once";
  EXPECT_EQ(Misses, 1u) << "the build was preceded by one cache miss";
  EXPECT_GT(Probes, 0u) << "break FILE:LINE and the stop went to the blob";
  EXPECT_EQ(Fallbacks, 0u);

  EXPECT_NE(Cli.execute("stats reset").find("reset"), std::string::npos);
  Out = Cli.execute("stats");
  EXPECT_NE(Out.find("symblob:        0 hits, 0 misses, 0 builds, "
                     "0 fallbacks, 0 probes\n"),
            std::string::npos)
      << Out;
  BC.clear();
}

/// The million-symbol direction, out of the tier-1 suite: set
/// LDB_SCALE_TESTS=1 to run (the first run compiles a 100,000-line
/// program; bench_symblob's disk cache makes later runs quick).
TEST(SymblobScale, Gen100kAnswersQueries) {
  if (!std::getenv("LDB_SCALE_TESTS"))
    GTEST_SKIP() << "set LDB_SCALE_TESTS=1 to run the gen:100000 smoke";
  const TargetDesc &Desc = *targetByName("zmips");
  auto P = bench::cachedGenProgram(Desc, 100000);
  ASSERT_TRUE(static_cast<bool>(P)) << P.message();

  symblob::Cache &BC = symblob::Cache::global();
  BC.clear();
  BC.setEnabled(true);
  auto S = connectTo(P->Img, P->PsSymtab, P->LoaderTable);
  ASSERT_NE(S, nullptr);

  uint64_t Key = keyFor(Desc, P->PsSymtab, P->LoaderTable);
  auto Snap = BC.snapshotBytes(Key);
  ASSERT_TRUE(Snap.has_value()) << "connect did not build the blob";
  auto B = symblob::Blob::attach(std::move(*Snap), Key);
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_GT((*B)->procCount(), 5000u);
  EXPECT_GT((*B)->locusCount(), 80000u);

  Target::Scope Scope(*S->T);
  symblob::Blob::ProcView Mid = (*B)->proc((*B)->procCount() / 2);
  ASSERT_TRUE(Mid.HasSymbols);
  symblob::Blob::LocusView L = (*B)->locus(Mid.LociStart);
  auto Brief = core::symtab::briefForPc(*S->T, L.Addr);
  ASSERT_TRUE(static_cast<bool>(Brief)) << Brief.message();
  EXPECT_EQ(Brief->ProcName, Mid.Name);
  EXPECT_EQ(Brief->Line, L.Line);
  BC.clear();
}

INSTANTIATE_TEST_SUITE_P(AllTargets, SymblobTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) {
                           return Info.param->Name;
                         });

} // namespace
