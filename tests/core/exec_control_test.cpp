//===- tests/core/exec_control_test.cpp -----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution control on the stop-site index: step/next/finish must walk
/// the same (proc, line) sequences on every target, conditional
/// breakpoints must auto-resume non-matching hits with exact counters,
/// and scoped stepping in a deferred-symtab session must not force
/// entries the step never touches (the index exists so that it doesn't).
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"
#include "workload.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

//  1: int fib(int n) {
//  2:   int r;
//  3:   if (n < 2) {
//  4:     r = 1;
//  5:   } else {
//  6:     r = fib(n - 1) + fib(n - 2);
//  7:   }
//  8:   return r;
//  9: }
// 10: int main() {
// 11:   int v;
// 12:   v = fib(6);
// 13:   return v;
// 14: }
const char *FibSource = "int fib(int n) {\n"
                        "  int r;\n"
                        "  if (n < 2) {\n"
                        "    r = 1;\n"
                        "  } else {\n"
                        "    r = fib(n - 1) + fib(n - 2);\n"
                        "  }\n"
                        "  return r;\n"
                        "}\n"
                        "int main() {\n"
                        "  int v;\n"
                        "  v = fib(6);\n"
                        "  return v;\n"
                        "}\n";

/// One connected debugging session over an in-process nub.
struct Session {
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;

  Error start(const TargetDesc &Desc, const std::string &Source,
              CompileOptions Options = CompileOptions()) {
    auto COr = compileAndLink({{"fib.c", Source}}, Desc, Options);
    if (!COr)
      return COr.takeError();
    C = COr.take();
    nub::NubProcess &Proc = Host.createProcess("fib", Desc);
    if (Error E = C->Img.loadInto(Proc.machine()))
      return E;
    Proc.enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
    if (!TOr)
      return TOr.takeError();
    T = *TOr;
    return Error::success();
  }

  /// "proc:line" at the current stop (or "exited").
  std::string where() {
    if (T->exited())
      return "exited";
    Expected<uint32_t> Pc = T->ctxPc();
    if (!Pc)
      return "?";
    Target::Scope S(*T);
    Expected<symtab::StopSite> Site = symtab::stopForPc(*T, *Pc);
    if (!Site)
      return "?";
    return Site->ProcName + ":" + std::to_string(Site->Line);
  }
};

//===----------------------------------------------------------------------===//
// Cross-target determinism: the step/next/finish walks are target-invariant
//===----------------------------------------------------------------------===//

TEST(ExecControl, StepSequenceIdenticalAcrossTargets) {
  std::vector<std::string> First;
  for (const TargetDesc *Desc : allTargets()) {
    Session S;
    ASSERT_FALSE(S.start(*Desc, FibSource));
    std::vector<std::string> Seq;
    for (int I = 0; I < 30 && !S.T->exited(); ++I) {
      ASSERT_FALSE(S.Debugger->stepToNextStop(*S.T));
      Seq.push_back(S.where());
    }
    if (First.empty()) {
      First = Seq;
      // Pin the shape once: entry stop, the call statement, the dive
      // into fib, and its first leaf.
      ASSERT_GE(Seq.size(), 8u);
      EXPECT_EQ(Seq[0], "main:10");
      EXPECT_EQ(Seq[1], "main:12");
      EXPECT_EQ(Seq[2], "fib:1");
      EXPECT_NE(std::find(Seq.begin(), Seq.end(), "fib:4"), Seq.end());
    } else {
      EXPECT_EQ(Seq, First) << "step walk diverged on " << Desc->Name;
    }
  }
}

TEST(ExecControl, NextStaysInFrameOnEveryTarget) {
  for (const TargetDesc *Desc : allTargets()) {
    Session S;
    ASSERT_FALSE(S.start(*Desc, FibSource));
    // Two steps reach the call statement; next must hop over the whole
    // fib(6) subtree in one user-visible motion.
    ASSERT_FALSE(S.Debugger->stepToNextStop(*S.T));
    ASSERT_FALSE(S.Debugger->stepToNextStop(*S.T));
    ASSERT_EQ(S.where(), "main:12") << Desc->Name;
    ASSERT_FALSE(S.Debugger->stepOver(*S.T)) << Desc->Name;
    EXPECT_EQ(S.where(), "main:13") << Desc->Name;
    Expected<std::string> V = printVariable(*S.T, "v");
    ASSERT_TRUE(static_cast<bool>(V)) << V.message();
    EXPECT_EQ(*V, "13") << Desc->Name; // the call completed under next
  }
}

TEST(ExecControl, FinishReturnsToCallerOnEveryTarget) {
  for (const TargetDesc *Desc : allTargets()) {
    Session S;
    ASSERT_FALSE(S.start(*Desc, FibSource));
    // Run to the first leaf activation, drop the breakpoint, and finish:
    // the stop lands at the caller activation's next stopping point,
    // auto-resuming the deeper recursion the caller makes in between.
    ASSERT_FALSE(S.Debugger->breakAtLine(*S.T, "fib.c", 4));
    ASSERT_FALSE(S.T->resume());
    ASSERT_TRUE(S.T->stopped());
    ASSERT_EQ(S.where(), "fib:4") << Desc->Name;
    auto NOr = S.T->deleteAllUserBreakpoints();
    ASSERT_TRUE(static_cast<bool>(NOr));
    ASSERT_FALSE(S.Debugger->stepOut(*S.T)) << Desc->Name;
    EXPECT_EQ(S.where(), "fib:8") << Desc->Name;
  }
}

//===----------------------------------------------------------------------===//
// Conditional breakpoints and ignore counts
//===----------------------------------------------------------------------===//

class CondBreak : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override { ASSERT_FALSE(S.start(*GetParam(), FibSource)); }

  Session S;
  ExprSession Exprs;
};

TEST_P(CondBreak, ConditionOnLocalFiltersHits) {
  // fib(6) reaches line 4 in all 13 leaf activations; 8 have n == 1.
  auto IdOr = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(IdOr)) << IdOr.message();
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, Exprs, *IdOr, "n == 1"));
  int Visible = 0;
  while (true) {
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
    if (S.T->exited())
      break;
    ++Visible;
    ASSERT_EQ(S.where(), "fib:4");
    Expected<std::string> N = printVariable(*S.T, "n");
    ASSERT_TRUE(static_cast<bool>(N)) << N.message();
    EXPECT_EQ(*N, "1"); // every visible stop satisfies the condition
    ASSERT_LT(Visible, 20) << "condition failed to filter";
  }
  EXPECT_EQ(Visible, 8);
  const Target::ExecStats &ES = S.T->execStats();
  EXPECT_EQ(ES.BpHits, 13u);
  EXPECT_EQ(ES.CondEvals, 13u);
  EXPECT_EQ(ES.CondResumes, 5u); // the n == 0 leaves
  Target::UserBreakpoint *U = S.T->userBreakpoint(*IdOr);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->HitCount, 13u);
}

TEST_P(CondBreak, FalseConditionRunsToExit) {
  auto IdOr = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(IdOr)) << IdOr.message();
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, Exprs, *IdOr, "n == 99"));
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  EXPECT_TRUE(S.T->exited());
  EXPECT_EQ(S.T->execStats().BpHits, 13u);
  EXPECT_EQ(S.T->execStats().CondResumes, 13u);
}

TEST_P(CondBreak, IgnoreCountSkipsEarlyHits) {
  auto IdOr = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(IdOr)) << IdOr.message();
  Target::UserBreakpoint *U = S.T->userBreakpoint(*IdOr);
  ASSERT_NE(U, nullptr);
  U->Ignore = 5;
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->stopped());
  EXPECT_EQ(S.where(), "fib:4");
  EXPECT_EQ(U->HitCount, 6u); // the sixth hit is the first visible one
  EXPECT_EQ(U->Ignore, 0u);
  EXPECT_EQ(S.T->execStats().IgnoreResumes, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CondBreak,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

//===----------------------------------------------------------------------===//
// Deferred symtabs: a step must not force what it does not touch (E6)
//===----------------------------------------------------------------------===//

TEST(ExecControl, DeferredStepForcesOnlyCurrentProcedure) {
  CompileOptions Options;
  Options.DeferredSymtab = true;
  Session S;
  ASSERT_FALSE(
      S.start(*targetByName("zmips"), bench::generateProgram(13000),
              Options));
  ASSERT_NE(S.C->PsSymtab.find("DeferDef"), std::string::npos);

  // Run to one procedure in the middle of the image and take one step.
  ASSERT_FALSE(S.Debugger->breakAtProc(*S.T, "work300"));
  ASSERT_FALSE(S.T->resume());
  ASSERT_TRUE(S.T->stopped());
  ASSERT_FALSE(S.Debugger->stepToNextStop(*S.T));
  ASSERT_TRUE(S.T->stopped());

  // The seed's sweep planted every stopping point of every procedure
  // here, forcing all ~680 deferred entries. The index plants only the
  // current procedure's sites (the first statement makes no calls), so
  // exactly one entry is loaded.
  auto IdxOr = S.T->stopIndex();
  ASSERT_TRUE(static_cast<bool>(IdxOr)) << IdxOr.message();
  EXPECT_GE((*IdxOr)->procCount(), 600u);
  EXPECT_LE((*IdxOr)->loadedCount(), 2u);
  // And the plant itself stayed proportional to one procedure, not the
  // 11,000+ stopping points of the whole image.
  EXPECT_LT(S.T->execStats().TempPlants, 50u);
}

} // namespace
