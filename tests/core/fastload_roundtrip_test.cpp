//===- tests/core/fastload_roundtrip_test.cpp ----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-identical-semantics regression for the fastload cache: for every
/// target x program x symtab flavor, the encoded blob must decode back to
/// the scanner's exact token stream, and replaying it must build the same
/// /symtab dictionary the scanner builds — forcing deferred entries
/// included. If fastload ever changes what a symbol table means, this is
/// the test that goes red.
///
//===----------------------------------------------------------------------===//

#include "core/arch.h"
#include "lcc/driver.h"
#include "postscript/fastload.h"
#include "workload.h"

#include <gtest/gtest.h>

#include <set>

using namespace ldb;
using namespace ldb::ps;

namespace fastload = ldb::ps::fastload;

namespace {

const char *AllTargets[] = {"zmips", "zsparc", "z68k", "zvax"};

lcc::SourceFile programFor(const std::string &Spec) {
  if (Spec == "hello")
    return {"hello.c", bench::helloProgram()};
  if (Spec == "fib")
    return {"fib.c", bench::fibProgram()};
  unsigned Lines = static_cast<unsigned>(atoi(Spec.c_str() + 4));
  return {Spec + ".c", bench::generateProgram(Lines)};
}

/// Deep token equality including the Exec bit; scanner output is a tree,
/// so plain recursion suffices.
bool tokensEqual(const Object &A, const Object &B) {
  if (A.Ty != B.Ty || A.Exec != B.Exec)
    return false;
  switch (A.Ty) {
  case Type::Int:
    return A.IntVal == B.IntVal;
  case Type::Real:
    return A.RealVal == B.RealVal;
  case Type::Name:
    return A.Atom == B.Atom;
  case Type::String:
    return *A.StrVal == *B.StrVal;
  case Type::Array: {
    if (A.ArrVal->size() != B.ArrVal->size())
      return false;
    for (size_t K = 0; K < A.ArrVal->size(); ++K)
      if (!tokensEqual((*A.ArrVal)[K], (*B.ArrVal)[K]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

/// Structural equality over interpreted values. Symtab dictionaries form
/// DAGs (entries share type dicts, uplinks), so visited pairs are memoized
/// to terminate and to keep the comparison linear.
bool valuesEqual(const Object &A, const Object &B,
                 std::set<std::pair<const void *, const void *>> &Seen);

bool dictsEqual(const DictImpl &A, const DictImpl &B,
                std::set<std::pair<const void *, const void *>> &Seen) {
  if (A.size() != B.size())
    return false;
  for (uint32_t K = 0; K < A.size(); ++K) {
    if (A.keyAt(K) != B.keyAt(K))
      return false;
    if (!valuesEqual(A.valueAt(K), B.valueAt(K), Seen))
      return false;
  }
  return true;
}

bool valuesEqual(const Object &A, const Object &B,
                 std::set<std::pair<const void *, const void *>> &Seen) {
  if (A.Ty != B.Ty || A.Exec != B.Exec)
    return false;
  switch (A.Ty) {
  case Type::Null:
  case Type::Mark:
    return true;
  case Type::Bool:
    return A.BoolVal == B.BoolVal;
  case Type::Int:
    return A.IntVal == B.IntVal;
  case Type::Real:
    return A.RealVal == B.RealVal;
  case Type::Name:
    return A.Atom == B.Atom;
  case Type::String:
    return *A.StrVal == *B.StrVal;
  case Type::Array: {
    if (!Seen.insert({A.ArrVal.get(), B.ArrVal.get()}).second)
      return true;
    if (A.ArrVal->size() != B.ArrVal->size())
      return false;
    for (size_t K = 0; K < A.ArrVal->size(); ++K)
      if (!valuesEqual((*A.ArrVal)[K], (*B.ArrVal)[K], Seen))
        return false;
    return true;
  }
  case Type::Dict: {
    if (!Seen.insert({A.DictVal.get(), B.DictVal.get()}).second)
      return true;
    return dictsEqual(*A.DictVal, *B.DictVal, Seen);
  }
  case Type::Operator:
    // Eager symtabs bind entries at load time, splicing operators into
    // procedure bodies; same registered name means the same operator.
    return A.OpVal && B.OpVal && A.OpVal->Name == B.OpVal->Name;
  default:
    // Files, memories: opaque; count matching types as equal.
    return true;
  }
}

/// Interprets the machine-independent prelude, the target's
/// machine-dependent fragment, and \p Symtab into \p I, the way
/// Target::connect + loadSymbols stack their scopes — either straight
/// through the scanner or by replaying a freshly encoded blob.
void loadScope(Interp &I, const core::Architecture &Arch,
               const std::string &Symtab, bool Replay) {
  ASSERT_FALSE(I.run(prelude()));
  auto ArchDict = Object::makeDict(std::make_shared<DictImpl>());
  I.dictStack().push_back(ArchDict);
  ASSERT_FALSE(I.run(Arch.MdPostScript));
  if (!Replay) {
    ASSERT_FALSE(I.run(Symtab));
    return;
  }
  uint64_t Hash = fastload::contentHash(Symtab);
  Expected<std::vector<Object>> Tokens = fastload::scanAll(Symtab);
  ASSERT_TRUE(bool(Tokens)) << Tokens.message();
  Expected<std::vector<uint8_t>> Blob = fastload::encode(*Tokens, Hash);
  ASSERT_TRUE(bool(Blob)) << Blob.message();
  Expected<std::vector<Object>> Replayed = fastload::decode(*Blob, Hash);
  ASSERT_TRUE(bool(Replayed)) << Replayed.message();
  EXPECT_EQ(fastload::execTokens(I, *Replayed), PsStatus::Ok)
      << I.errorMessage();
}

void checkProgramOnTarget(const std::string &TargetName,
                          const std::string &Spec, bool Deferred) {
  SCOPED_TRACE(TargetName + "/" + Spec +
               (Deferred ? "/deferred" : "/eager"));
  const target::TargetDesc *Desc = target::targetByName(TargetName);
  ASSERT_NE(Desc, nullptr);
  const core::Architecture *Arch = core::architectureByName(TargetName);
  ASSERT_NE(Arch, nullptr);

  lcc::CompileOptions CO;
  CO.DeferredSymtab = Deferred;
  Expected<std::unique_ptr<lcc::Compilation>> C =
      lcc::compileAndLink({programFor(Spec)}, *Desc, CO);
  ASSERT_TRUE(bool(C)) << C.message();
  const std::string &Symtab = (*C)->PsSymtab;

  // Layer 1: the blob reproduces the scanner's token stream exactly.
  uint64_t Hash = fastload::contentHash(Symtab);
  Expected<std::vector<Object>> Tokens = fastload::scanAll(Symtab);
  ASSERT_TRUE(bool(Tokens)) << Tokens.message();
  Expected<std::vector<uint8_t>> Blob = fastload::encode(*Tokens, Hash);
  ASSERT_TRUE(bool(Blob)) << Blob.message();
  Expected<std::vector<Object>> Back = fastload::decode(*Blob, Hash);
  ASSERT_TRUE(bool(Back)) << Back.message();
  ASSERT_EQ(Tokens->size(), Back->size());
  for (size_t K = 0; K < Tokens->size(); ++K)
    ASSERT_TRUE(tokensEqual((*Tokens)[K], (*Back)[K])) << "token " << K;

  // Layer 2: replaying the blob builds the same /symtab the scanner does.
  Interp Scanned, Replayed;
  loadScope(Scanned, *Arch, Symtab, /*Replay=*/false);
  loadScope(Replayed, *Arch, Symtab, /*Replay=*/true);
  if (::testing::Test::HasFatalFailure())
    return;

  Object SymA, SymB;
  ASSERT_TRUE(Scanned.lookup("symtab", SymA));
  ASSERT_TRUE(Replayed.lookup("symtab", SymB));
  ASSERT_EQ(SymA.Ty, Type::Dict);
  ASSERT_EQ(SymB.Ty, Type::Dict);
  std::set<std::pair<const void *, const void *>> Seen;
  EXPECT_TRUE(dictsEqual(*SymA.DictVal, *SymB.DictVal, Seen));
}

class FastloadRoundTrip
    : public ::testing::TestWithParam<std::tuple<const char *, bool>> {};

TEST_P(FastloadRoundTrip, Hello) {
  checkProgramOnTarget(std::get<0>(GetParam()), "hello",
                       std::get<1>(GetParam()));
}

TEST_P(FastloadRoundTrip, Fib) {
  checkProgramOnTarget(std::get<0>(GetParam()), "fib",
                       std::get<1>(GetParam()));
}

TEST_P(FastloadRoundTrip, Generated13k) {
  checkProgramOnTarget(std::get<0>(GetParam()), "gen:13000",
                       std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllTargetsBothFlavors, FastloadRoundTrip,
    ::testing::Combine(::testing::ValuesIn(AllTargets),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<FastloadRoundTrip::ParamType> &Info) {
      return std::string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) ? "Deferred" : "Eager");
    });

} // namespace
