//===- tests/core/step_test.cpp -------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level stepping, layered entirely on the breakpoint mechanism
/// (the construction sketched in the paper's Sec 7.1). Stepping must walk
/// the stopping points in execution order — into callees, around loops —
/// and leave previously planted user breakpoints untouched.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

//  1: int twice(int x) {
//  2:   return x * 2;
//  3: }
//  4: int main() {
//  5:   int v;
//  6:   v = 1;
//  7:   v = twice(v);
//  8:   v = v + 5;
//  9:   return v;
// 10: }
const char *StepSource = "int twice(int x) {\n"
                         "  return x * 2;\n"
                         "}\n"
                         "int main() {\n"
                         "  int v;\n"
                         "  v = 1;\n"
                         "  v = twice(v);\n"
                         "  v = v + 5;\n"
                         "  return v;\n"
                         "}\n";

class StepTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    auto COr =
        compileAndLink({{"step.c", StepSource}}, *GetParam(),
                       CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    Proc = &Host.createProcess("step", *GetParam());
    ASSERT_FALSE(C->Img.loadInto(Proc->machine()));
    Proc->enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "step", C->PsSymtab,
                                 C->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
  }

  /// Steps once and returns "proc:line".
  std::string step() {
    Error E = Debugger->stepToNextStop(*T);
    EXPECT_FALSE(E) << E.message();
    if (T->exited())
      return "exited";
    Expected<uint32_t> Pc = T->ctxPc();
    EXPECT_TRUE(static_cast<bool>(Pc));
    Target::Scope S(*T);
    Expected<symtab::StopSite> Site = symtab::stopForPc(*T, *Pc);
    EXPECT_TRUE(static_cast<bool>(Site)) << Site.message();
    if (!Site)
      return "?";
    return Site->ProcName + ":" + std::to_string(Site->Line);
  }

  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
};

TEST_P(StepTest, WalksStoppingPointsInExecutionOrder) {
  // From the startup pause, stepping enters main, walks its statements,
  // dives into twice at the call, and comes back.
  EXPECT_EQ(step(), "main:4"); // entry stop
  EXPECT_EQ(step(), "main:6"); // v = 1
  EXPECT_EQ(step(), "main:7"); // v = twice(v)
  EXPECT_EQ(step(), "twice:1"); // callee entry stop
  EXPECT_EQ(step(), "twice:2"); // return x * 2
  EXPECT_EQ(step(), "twice:3"); // exit stop
  EXPECT_EQ(step(), "main:8"); // v = v + 5
  Expected<std::string> V = printVariable(*T, "v");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, "2"); // the call has completed, the add has not
}

TEST_P(StepTest, StepsToExit) {
  int Guard = 0;
  while (!T->exited() && ++Guard < 40)
    ASSERT_FALSE(Debugger->stepToNextStop(*T));
  ASSERT_TRUE(T->exited());
  EXPECT_EQ(T->lastStop().ExitStatus, 7u);
}

TEST_P(StepTest, UserBreakpointsSurviveStepping) {
  ASSERT_FALSE(Debugger->breakAtLine(*T, "step.c", 8));
  ASSERT_EQ(T->breakpoints().size(), 1u);
  step();
  step();
  EXPECT_EQ(T->breakpoints().size(), 1u); // temporaries were removed
  // The user breakpoint still fires on a plain continue.
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  Expected<std::string> Where = describeStop(*T);
  ASSERT_TRUE(static_cast<bool>(Where));
  EXPECT_NE(Where->find("step.c:8"), std::string::npos) << *Where;
}

INSTANTIATE_TEST_SUITE_P(AllTargets, StepTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
