//===- tests/core/reverse_test.cpp - record/replay and reverse execution --===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointed recording is an optimization over re-running from the
/// start; it must never be visible in the bytes. Restoring a checkpoint
/// and re-executing has to reproduce the recorded run exactly — machine
/// state, console output, stop sequence, hit counters, `info
/// breakpoints` — on every target, eager or deferred. Reverse commands
/// are defined entirely in terms of that replay, so each must land on a
/// stop the forward run really visited, with the counters it had then.
/// Eviction under a byte budget degrades how far back a seek restores
/// cheaply, never whether replay is exact. And a drained tracepoint ring
/// must not collect the same hit twice just because the timeline ran
/// through it again.
///
//===----------------------------------------------------------------------===//

#include "core/cli.h"
#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"
#include "nub/nub.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

//  1: int fib(int n) {
//  2:   int r;
//  3:   if (n < 2) {
//  4:     r = 1;
//  5:   } else {
//  6:     r = fib(n - 1) + fib(n - 2);
//  7:   }
//  8:   return r;
//  9: }
// 10: int main() { ... v = fib(6); ... }
const char *FibSource = "int fib(int n) {\n"
                        "  int r;\n"
                        "  if (n < 2) {\n"
                        "    r = 1;\n"
                        "  } else {\n"
                        "    r = fib(n - 1) + fib(n - 2);\n"
                        "  }\n"
                        "  return r;\n"
                        "}\n"
                        "int main() {\n"
                        "  int v;\n"
                        "  v = fib(6);\n"
                        "  return v;\n"
                        "}\n";

/// FNV-1a over everything a replayed instant must reproduce: memory
/// (break words included — the seek sweep restores today's plants),
/// registers, pc, retired count, and console output. Floats go through
/// double so register padding never leaks into the hash.
uint64_t machineDigest(const Machine &M) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    for (size_t K = 0; K < N; ++K) {
      H ^= B[K];
      H *= 1099511628211ull;
    }
  };
  Mix(M.memBytes().data(), M.memBytes().size());
  Mix(&M.Pc, sizeof M.Pc);
  Mix(&M.Icount, sizeof M.Icount);
  for (unsigned R = 0; R < M.desc().NumGpr; ++R) {
    uint32_t V = M.gpr(R);
    Mix(&V, sizeof V);
  }
  for (unsigned R = 0; R < M.desc().NumFpr; ++R) {
    double V = static_cast<double>(M.fpr(R));
    Mix(&V, sizeof V);
  }
  Mix(M.ConsoleOut.data(), M.ConsoleOut.size());
  return H;
}

/// One connected debugging session over an in-process nub, with the nub
/// process kept visible so tests can compare raw machine state.
struct Session {
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
  nub::NubProcess *Proc = nullptr;
  ExprSession Exprs;

  Error start(const TargetDesc &Desc, const std::string &Source,
              CompileOptions Options = CompileOptions()) {
    auto COr = compileAndLink({{"fib.c", Source}}, Desc, Options);
    if (!COr)
      return COr.takeError();
    C = COr.take();
    Proc = &Host.createProcess("fib", Desc);
    if (Error E = C->Img.loadInto(Proc->machine()))
      return E;
    Proc->enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
    if (!TOr)
      return TOr.takeError();
    T = *TOr;
    return Error::success();
  }

  /// Turns recording on under a test-sized checkpoint policy, restoring
  /// the environment before returning.
  Error record(const char *Spacing, const char *KeyInt = nullptr,
               const char *Budget = nullptr) {
    setenv("LDB_CHECKPOINT_SPACING", Spacing, 1);
    if (KeyInt)
      setenv("LDB_CHECKPOINT_KEYINT", KeyInt, 1);
    if (Budget)
      setenv("LDB_CHECKPOINT_BUDGET", Budget, 1);
    Error E = T->enableRecording();
    unsetenv("LDB_CHECKPOINT_SPACING");
    unsetenv("LDB_CHECKPOINT_KEYINT");
    unsetenv("LDB_CHECKPOINT_BUDGET");
    return E;
  }

  /// "proc:line" at the current stop (or "exited").
  std::string where() {
    if (T->exited())
      return "exited";
    Expected<uint32_t> Pc = T->ctxPc();
    if (!Pc)
      return "?";
    Target::Scope S(*T);
    Expected<symtab::StopSite> Site = symtab::stopForPc(*T, *Pc);
    if (!Site)
      return "?";
    return Site->ProcName + ":" + std::to_string(Site->Line);
  }

  uint64_t digest() const { return machineDigest(Proc->machine()); }
};

/// Everything one recorded instant must reproduce when replayed.
struct StopRec {
  uint64_t Icount = 0;
  uint32_t Pc = 0;
  uint64_t Digest = 0;
  std::string Where;
};

StopRec snap(Session &S) {
  StopRec R;
  R.Icount = S.T->stopIcount();
  R.Pc = S.T->lastStop().Pc;
  R.Digest = S.digest();
  R.Where = S.where();
  return R;
}

//===----------------------------------------------------------------------===//
// Determinism: checkpoint restore + re-execution is byte-identical to
// the recorded forward run, on every target, eager and deferred
//===----------------------------------------------------------------------===//

TEST(ReplayDeterminism, SeekAndReExecutionAreByteIdentical) {
  for (const TargetDesc *Desc : allTargets())
    for (bool Deferred : {false, true}) {
      SCOPED_TRACE(std::string(Desc->Name) +
                   (Deferred ? " deferred" : " eager"));
      Session S;
      CompileOptions Opt;
      Opt.DeferredSymtab = Deferred;
      ASSERT_FALSE(S.start(*Desc, FibSource, Opt));
      ASSERT_FALSE(S.record("300"));
      Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
      ASSERT_TRUE(static_cast<bool>(Id));

      // Forward: every stop's instant, plus the exit instant.
      std::vector<StopRec> Fwd;
      for (int K = 0; K < 40 && !S.T->exited(); ++K) {
        ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
        if (!S.T->exited())
          Fwd.push_back(snap(S));
      }
      ASSERT_TRUE(S.T->exited());
      ASSERT_EQ(Fwd.size(), 13u);
      uint64_t ExitDigest = S.digest();
      std::string ExitConsole = S.Proc->machine().ConsoleOut;

      // Seek below a mid-run stop; replay must walk the recorded suffix
      // stop for stop, bit for bit, through to the same exit.
      ASSERT_FALSE(S.T->seekTo(Fwd[6].Icount));
      uint64_t Landing = S.T->stopIcount();
      EXPECT_LE(Landing, Fwd[6].Icount);
      for (const StopRec &Want : Fwd) {
        if (Want.Icount <= Landing)
          continue;
        ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
        ASSERT_TRUE(S.T->stopped());
        StopRec Got = snap(S);
        EXPECT_EQ(Got.Icount, Want.Icount);
        EXPECT_EQ(Got.Pc, Want.Pc);
        EXPECT_EQ(Got.Where, Want.Where);
        EXPECT_EQ(Got.Digest, Want.Digest);
      }
      ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
      ASSERT_TRUE(S.T->exited());
      EXPECT_EQ(S.digest(), ExitDigest);
      EXPECT_EQ(S.Proc->machine().ConsoleOut, ExitConsole);
      EXPECT_GE(S.T->execStats().Seeks, 1u);
    }
}

TEST(ReplayDeterminism, SeekRevivesAnExitedProcess) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("z68k"), FibSource));
  ASSERT_FALSE(S.record("300"));
  uint64_t Start = S.T->stopIcount();
  uint64_t StartDigest = S.digest();
  for (int K = 0; K < 4 && !S.T->exited(); ++K)
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->exited());
  // The history is still on the timeline: seeking to the beginning
  // lands on the enable keyframe, bit for bit.
  ASSERT_FALSE(S.T->seekTo(Start));
  ASSERT_TRUE(S.T->stopped());
  EXPECT_EQ(S.T->stopIcount(), Start);
  EXPECT_EQ(S.digest(), StartDigest);
}

//===----------------------------------------------------------------------===//
// Reverse commands land on stops the forward run really visited
//===----------------------------------------------------------------------===//

TEST(ReverseStep, RetracesForwardStepsExactly) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zmips"), FibSource));
  ASSERT_FALSE(S.record("200"));
  StopRec Start = snap(S);

  std::vector<StopRec> Fwd;
  for (int K = 0; K < 8; ++K) {
    ASSERT_FALSE(exec::stepToNextStop(*S.T));
    ASSERT_TRUE(S.T->stopped());
    Fwd.push_back(snap(S));
  }

  // Walk back through every forward step, digests included.
  for (int K = 6; K >= 0; --K) {
    ASSERT_FALSE(exec::reverseStep(*S.T)) << "step back to " << K;
    StopRec Got = snap(S);
    EXPECT_EQ(Got.Icount, Fwd[K].Icount) << K;
    EXPECT_EQ(Got.Pc, Fwd[K].Pc) << K;
    EXPECT_EQ(Got.Digest, Fwd[K].Digest) << K;
  }
  // One more lands on the recording's first instant; another settles
  // there (the floor), it does not error or wedge.
  ASSERT_FALSE(exec::reverseStep(*S.T));
  EXPECT_EQ(S.T->stopIcount(), Start.Icount);
  EXPECT_EQ(S.digest(), Start.Digest);
  ASSERT_FALSE(exec::reverseStep(*S.T));
  EXPECT_EQ(S.T->stopIcount(), Start.Icount);
  EXPECT_GE(S.T->execStats().Reverses, 9u);
}

TEST(ReverseNextAndFinish, RespectFrameBoundaries) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zmips"), FibSource));
  ASSERT_FALSE(S.record("400"));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 13);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_EQ(S.where(), "main:13");
  uint64_t AtReturn = S.T->stopIcount();

  // reverse-step sinks into the call that just returned...
  ASSERT_FALSE(exec::reverseStep(*S.T));
  EXPECT_LT(S.T->stopIcount(), AtReturn);
  EXPECT_EQ(S.where().substr(0, 4), "fib:") << S.where();

  // ...and reverse-finish climbs back out to before fib was entered.
  ASSERT_FALSE(exec::reverseFinish(*S.T));
  EXPECT_EQ(S.where(), "main:12");
  uint64_t AtCall = S.T->stopIcount();
  EXPECT_LT(AtCall, AtReturn);

  // From the return site again, reverse-next skips the whole call in
  // one step: same landing as step-then-finish.
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_EQ(S.where(), "main:13");
  ASSERT_FALSE(exec::reverseNext(*S.T));
  EXPECT_EQ(S.where(), "main:12");
  EXPECT_EQ(S.T->stopIcount(), AtCall);
}

TEST(ReverseContinue, ReplaysBreakpointStopsWithCountersRewound) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zsparc"), FibSource));
  ASSERT_FALSE(S.record("300"));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));

  CommandInterpreter Cli(*S.Debugger);
  Cli.setCurrent(S.T);
  struct VisibleStop {
    StopRec At;
    uint64_t Hits = 0;
    std::string Info;
  };
  std::vector<VisibleStop> Fwd;
  for (int K = 0; K < 6; ++K) {
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
    ASSERT_TRUE(S.T->stopped());
    Fwd.push_back({snap(S), S.T->userBreakpoint(*Id)->HitCount,
                   Cli.execute("info breakpoints")});
  }

  // Each reverse-continue is the previous visible stop — conditions and
  // hit counts honored in reverse, `info breakpoints` byte-identical to
  // what the user saw there the first time.
  for (int K = 4; K >= 0; --K) {
    ASSERT_FALSE(exec::reverseContinue(*S.T)) << "back to stop " << K;
    StopRec Got = snap(S);
    EXPECT_EQ(Got.Icount, Fwd[K].At.Icount) << K;
    EXPECT_EQ(Got.Pc, Fwd[K].At.Pc) << K;
    EXPECT_EQ(Got.Digest, Fwd[K].At.Digest) << K;
    EXPECT_EQ(S.T->userBreakpoint(*Id)->HitCount, Fwd[K].Hits) << K;
    EXPECT_EQ(Cli.execute("info breakpoints"), Fwd[K].Info) << K;
  }

  // And forward again: the future is replayed, not invented.
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  StopRec Got = snap(S);
  EXPECT_EQ(Got.Icount, Fwd[1].At.Icount);
  EXPECT_EQ(Got.Digest, Fwd[1].At.Digest);
  EXPECT_EQ(S.T->userBreakpoint(*Id)->HitCount, Fwd[1].Hits);
}

//===----------------------------------------------------------------------===//
// Tracepoints: the drained ring never collects a hit twice
//===----------------------------------------------------------------------===//

TEST(ReverseTrace, ReplayDoesNotDoubleCollectDrainedRecords) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zvax"), FibSource));
  ASSERT_FALSE(S.record("300"));
  uint64_t Start = S.T->stopIcount();
  Expected<int> Id = exec::addTracepoint(*S.T, S.Exprs, "fib.c:4", {"n"});
  ASSERT_TRUE(static_cast<bool>(Id)) << Id.message();
  for (int K = 0; K < 4 && !S.T->exited(); ++K)
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->exited());
  std::vector<nub::condbc::TraceRecord> Drained = S.T->traceLog();
  ASSERT_EQ(Drained.size(), 13u);

  // Rewind to the beginning and live the whole run again: the ring has
  // already reported hits 1..13, so replay adds nothing.
  ASSERT_FALSE(S.T->seekTo(Start));
  for (int K = 0; K < 4 && !S.T->exited(); ++K)
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->exited());
  const std::vector<nub::condbc::TraceRecord> &Log = S.T->traceLog();
  ASSERT_EQ(Log.size(), 13u);
  std::set<std::pair<uint32_t, uint64_t>> Seen;
  for (size_t K = 0; K < Log.size(); ++K) {
    EXPECT_EQ(Log[K].Id, Drained[K].Id);
    EXPECT_EQ(Log[K].HitNo, Drained[K].HitNo);
    EXPECT_EQ(Log[K].Values, Drained[K].Values);
    EXPECT_TRUE(Seen.insert({Log[K].Id, Log[K].HitNo}).second)
        << "hit " << Log[K].HitNo << " collected twice";
  }
  EXPECT_EQ(S.T->traceDropped(), 0u);
}

//===----------------------------------------------------------------------===//
// Budget: eviction reclaims incrementals, keyframes keep replay exact
//===----------------------------------------------------------------------===//

TEST(CheckpointBudget, EvictionDegradesToKeyframesNotToWrongBytes) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zmips"), FibSource));
  // Tight spacing and a budget below the keyframe load: every
  // incremental chain behind the newest keyframe gets evicted.
  ASSERT_FALSE(S.record("100", "4", "1500000"));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  std::vector<StopRec> Fwd;
  for (int K = 0; K < 40 && !S.T->exited(); ++K) {
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
    if (!S.T->exited())
      Fwd.push_back(snap(S));
  }
  ASSERT_TRUE(S.T->exited());
  uint64_t ExitDigest = S.digest();

  Expected<nub::TimelineInfo> TI = S.T->timeline();
  ASSERT_TRUE(static_cast<bool>(TI)) << TI.message();
  EXPECT_TRUE(TI->Enabled);
  ASSERT_GE(TI->Checkpoints, 3u) << "fib(6) must outrun spacing 100";
  EXPECT_GE(TI->Keyframes, 2u);
  EXPECT_GE(TI->Evictions, 1u);
  // Under pressure the store degenerates to the keyframe floor plus the
  // live chain: every older incremental chain has been evicted.
  EXPECT_LE(TI->Checkpoints, TI->Keyframes + TI->KeyInterval);

  // A seek into the evicted span restores the nearest surviving
  // keyframe below it — further back than asked, never wrong.
  uint64_t Mid = Fwd[6].Icount;
  ASSERT_FALSE(S.T->seekTo(Mid));
  EXPECT_LE(S.T->stopIcount(), Mid);
  for (const StopRec &Want : Fwd) {
    if (Want.Icount <= S.T->stopIcount())
      continue;
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
    ASSERT_TRUE(S.T->stopped());
    EXPECT_EQ(S.T->stopIcount(), Want.Icount);
    EXPECT_EQ(S.digest(), Want.Digest);
    break; // one replayed stop proves the chain restored intact
  }
  for (int K = 0; K < 40 && !S.T->exited(); ++K)
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->exited());
  EXPECT_EQ(S.digest(), ExitDigest);
}

//===----------------------------------------------------------------------===//
// The user surface: record, reverse-*, info timeline, stats
//===----------------------------------------------------------------------===//

TEST(ReverseCli, CommandsRoundTrip) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("z68k"), FibSource));
  CommandInterpreter Cli(*S.Debugger);
  Cli.setCurrent(S.T);

  // Reverse without a recording is an error, not a crash.
  EXPECT_NE(Cli.execute("reverse-step").find("error"), std::string::npos);

  std::string On = Cli.execute("record");
  EXPECT_NE(On.find("recording from instruction"), std::string::npos) << On;
  EXPECT_NE(Cli.execute("break fib.c:4").find("breakpoint 1"),
            std::string::npos);
  EXPECT_NE(Cli.execute("continue").find("fib.c"), std::string::npos);
  std::string Before = Cli.execute("continue");
  uint64_t Here = S.T->stopIcount();

  std::string Back = Cli.execute("reverse-continue");
  EXPECT_NE(Back.find("fib.c"), std::string::npos) << Back;
  EXPECT_LT(S.T->stopIcount(), Here);

  std::string Info = Cli.execute("info timeline");
  EXPECT_NE(Info.find("recording:      on"), std::string::npos) << Info;
  EXPECT_NE(Info.find("checkpoints:"), std::string::npos) << Info;
  EXPECT_NE(Info.find("replay:"), std::string::npos) << Info;

  std::string Stats = Cli.execute("stats");
  EXPECT_NE(Stats.find("timeline:"), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("reverse command"), std::string::npos) << Stats;

  EXPECT_NE(Cli.execute("record off").find("recording off"),
            std::string::npos);
  EXPECT_NE(Cli.execute("rs").find("error"), std::string::npos);
}

} // namespace
