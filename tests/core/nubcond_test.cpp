//===- tests/core/nubcond_test.cpp - nub-side conditions and tracepoints --===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nub-side condition evaluation is an optimization, not a semantic: on
/// every target, eager or deferred, the stop sequence, hit/ignore
/// counters, and `info breakpoints` output must be byte-identical whether
/// the nub settles false hits locally or the host evaluates every one
/// (the LDB_NO_NUBCOND oracle). Faulty links and malformed records must
/// degrade to host evaluation, never wedge the session. Tracepoint
/// records must come home with the right values and registers. And a
/// rejected hit must be decided entirely from the expedited stop window
/// the nub already pushed — no re-fetching (the E8 regression).
///
//===----------------------------------------------------------------------===//

#include "core/cli.h"
#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

//  1: int fib(int n) {
//  2:   int r;
//  3:   if (n < 2) {
//  4:     r = 1;
//  5:   } else {
//  6:     r = fib(n - 1) + fib(n - 2);
//  7:   }
//  8:   return r;
//  9: }
// 10: int main() { ... v = fib(6); ... }
const char *FibSource = "int fib(int n) {\n"
                        "  int r;\n"
                        "  if (n < 2) {\n"
                        "    r = 1;\n"
                        "  } else {\n"
                        "    r = fib(n - 1) + fib(n - 2);\n"
                        "  }\n"
                        "  return r;\n"
                        "}\n"
                        "int main() {\n"
                        "  int v;\n"
                        "  v = fib(6);\n"
                        "  return v;\n"
                        "}\n";

/// One connected debugging session over an in-process nub.
struct Session {
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
  ExprSession Exprs;

  Error start(const TargetDesc &Desc, const std::string &Source,
              CompileOptions Options = CompileOptions(),
              const nub::SimParams *Sim = nullptr) {
    auto COr = compileAndLink({{"fib.c", Source}}, Desc, Options);
    if (!COr)
      return COr.takeError();
    C = COr.take();
    nub::NubProcess &Proc = Host.createProcess("fib", Desc);
    if (Error E = C->Img.loadInto(Proc.machine()))
      return E;
    Proc.enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr =
        Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable, Sim);
    if (!TOr)
      return TOr.takeError();
    T = *TOr;
    return Error::success();
  }

  /// "proc:line" at the current stop (or "exited").
  std::string where() {
    if (T->exited())
      return "exited";
    Expected<uint32_t> Pc = T->ctxPc();
    if (!Pc)
      return "?";
    Target::Scope S(*T);
    Expected<symtab::StopSite> Site = symtab::stopForPc(*T, *Pc);
    if (!Site)
      return "?";
    return Site->ProcName + ":" + std::to_string(Site->Line);
  }
};

/// Everything the oracle comparison looks at after one full run of
/// "break fib.c:4 if n == 1; continue to exit".
struct RunRecord {
  std::vector<std::string> Stops;
  std::string InfoBreakpoints;
  uint64_t BpHits = 0, CondEvals = 0, CondResumes = 0, IgnoreResumes = 0;
  uint64_t NubEvals = 0, NubResumes = 0, CondShips = 0;
  uint64_t RoundTrips = 0;
  uint64_t HitCount = 0, Ignore = 0;
  bool Exited = false;
};

/// Runs the scenario on a started session whose breakpoint and condition
/// are already set. Bounded: a wedge shows up as !Exited, not a hang.
RunRecord drive(Session &S, int Id) {
  RunRecord R;
  for (int K = 0; K < 40 && !S.T->exited(); ++K) {
    if (S.Debugger->continueToStop(*S.T))
      break;
    R.Stops.push_back(S.where());
  }
  R.Exited = S.T->exited();
  CommandInterpreter Cli(*S.Debugger);
  Cli.setCurrent(S.T);
  R.InfoBreakpoints = Cli.execute("info breakpoints");
  Target::ExecStats &ES = S.T->execStats();
  R.BpHits = ES.BpHits;
  R.CondEvals = ES.CondEvals;
  R.CondResumes = ES.CondResumes;
  R.IgnoreResumes = ES.IgnoreResumes;
  R.NubEvals = ES.NubCondEvals;
  R.NubResumes = ES.NubLocalResumes;
  R.CondShips = ES.CondShips;
  R.RoundTrips = S.T->stats().RoundTrips;
  if (Target::UserBreakpoint *U = S.T->userBreakpoint(Id)) {
    R.HitCount = U->HitCount;
    R.Ignore = U->Ignore;
  }
  return R;
}

/// Starts, plants "break fib.c:4 if n == 1" (plus \p Ignore), and runs.
bool condScenario(const TargetDesc &Desc, bool NubEval, bool Deferred,
                  RunRecord &Out, uint64_t Ignore = 0,
                  const nub::SimParams *Sim = nullptr) {
  Session S;
  CompileOptions Opt;
  Opt.DeferredSymtab = Deferred;
  if (S.start(Desc, FibSource, Opt, Sim))
    return false;
  S.T->setNubCondEnabled(NubEval);
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  if (!Id)
    return false;
  if (S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"))
    return false;
  if (Ignore)
    S.T->userBreakpoint(*Id)->Ignore = Ignore;
  Out = drive(S, *Id);
  return true;
}

//===----------------------------------------------------------------------===//
// Cross-target determinism: nub-eval vs the LDB_NO_NUBCOND host oracle
//===----------------------------------------------------------------------===//

TEST(NubCondDeterminism, StopSequencesAndCountersMatchTheHostOracle) {
  for (const TargetDesc *Desc : allTargets())
    for (bool Deferred : {false, true}) {
      RunRecord Nub, Host;
      ASSERT_TRUE(condScenario(*Desc, true, Deferred, Nub))
          << Desc->Name << (Deferred ? " deferred" : " eager");
      ASSERT_TRUE(condScenario(*Desc, false, Deferred, Host))
          << Desc->Name << (Deferred ? " deferred" : " eager");

      // The user-visible record is byte-identical.
      EXPECT_EQ(Nub.Stops, Host.Stops) << Desc->Name;
      EXPECT_EQ(Nub.InfoBreakpoints, Host.InfoBreakpoints) << Desc->Name;
      EXPECT_EQ(Nub.BpHits, Host.BpHits) << Desc->Name;
      EXPECT_EQ(Nub.CondEvals, Host.CondEvals) << Desc->Name;
      EXPECT_EQ(Nub.CondResumes, Host.CondResumes) << Desc->Name;
      EXPECT_EQ(Nub.HitCount, Host.HitCount) << Desc->Name;
      EXPECT_EQ(Nub.Ignore, Host.Ignore) << Desc->Name;
      EXPECT_TRUE(Nub.Exited && Host.Exited) << Desc->Name;

      // Pin the scenario itself (fib(6): 13 hits, 8 with n == 1).
      EXPECT_EQ(Host.BpHits, 13u) << Desc->Name;
      EXPECT_EQ(Host.CondResumes, 5u) << Desc->Name;

      // And the nub really did the work: evals moved into the target and
      // false hits never crossed the wire.
      EXPECT_EQ(Nub.NubEvals, 13u) << Desc->Name;
      EXPECT_EQ(Nub.NubResumes, 5u) << Desc->Name;
      EXPECT_GE(Nub.CondShips, 1u) << Desc->Name;
      EXPECT_EQ(Host.NubEvals, 0u) << Desc->Name;
      EXPECT_LT(Nub.RoundTrips, Host.RoundTrips) << Desc->Name;
    }
}

TEST(NubCondDeterminism, IgnoreCountsMoveNubSideIntact) {
  for (const TargetDesc *Desc : allTargets()) {
    RunRecord Nub, Host;
    ASSERT_TRUE(condScenario(*Desc, true, false, Nub, /*Ignore=*/5));
    ASSERT_TRUE(condScenario(*Desc, false, false, Host, /*Ignore=*/5));
    EXPECT_EQ(Nub.Stops, Host.Stops) << Desc->Name;
    EXPECT_EQ(Nub.InfoBreakpoints, Host.InfoBreakpoints) << Desc->Name;
    EXPECT_EQ(Nub.HitCount, Host.HitCount) << Desc->Name;
    EXPECT_EQ(Nub.Ignore, Host.Ignore) << Desc->Name;
    EXPECT_EQ(Nub.IgnoreResumes, Host.IgnoreResumes) << Desc->Name;
    EXPECT_TRUE(Nub.Exited) << Desc->Name;
  }
}

//===----------------------------------------------------------------------===//
// Fault injection: degrade to host evaluation, never wedge
//===----------------------------------------------------------------------===//

TEST(NubCondFaults, RefusedConditionShipFallsBackToHostEvaluation) {
  // A condition record the nub refuses (here: a frame so large the nub
  // Naks it without reading) must not wedge anything: every continue
  // falls back to ReportAll, the host evaluates each hit itself, and the
  // user-visible run matches the oracle exactly.
  RunRecord Host;
  const TargetDesc *Desc = targetByName("zsparc");
  ASSERT_TRUE(condScenario(*Desc, false, false, Host));

  Session S;
  ASSERT_FALSE(S.start(*Desc, FibSource));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));
  Target::UserBreakpoint *U = S.T->userBreakpoint(*Id);
  ASSERT_TRUE(U);
  U->Bytecode.assign(2u << 20, 0xff); // over the frame payload cap
  U->Dirty = true;
  RunRecord R = drive(S, *Id);

  EXPECT_TRUE(R.Exited);
  EXPECT_EQ(R.Stops, Host.Stops);
  EXPECT_EQ(R.BpHits, Host.BpHits);
  EXPECT_EQ(R.HitCount, Host.HitCount);
  EXPECT_EQ(R.CondEvals, Host.CondEvals);
  EXPECT_EQ(R.CondResumes, Host.CondResumes);
  // The record never made it into the nub.
  EXPECT_EQ(R.NubEvals, 0u);
  EXPECT_EQ(R.CondShips, 0u);
}

TEST(NubCondFaults, MalformedBytecodeFallsBackToHostDecision) {
  // A garbled condition record reaches the nub: its evaluation fails at
  // the first hit, the nub stops with StopNubEvalFailed, and the host
  // finishes every decision itself. The user-visible run is unchanged.
  RunRecord Host;
  const TargetDesc *Desc = targetByName("z68k");
  ASSERT_TRUE(condScenario(*Desc, false, false, Host));

  Session S;
  ASSERT_FALSE(S.start(*Desc, FibSource));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));
  Target::UserBreakpoint *U = S.T->userBreakpoint(*Id);
  ASSERT_TRUE(U);
  U->Bytecode = {0xff, 0x00}; // not a program the VM accepts
  U->Dirty = true;
  RunRecord R = drive(S, *Id);

  EXPECT_TRUE(R.Exited);
  EXPECT_EQ(R.Stops, Host.Stops);
  EXPECT_EQ(R.BpHits, Host.BpHits);
  EXPECT_EQ(R.HitCount, Host.HitCount);
  EXPECT_EQ(R.CondResumes, Host.CondResumes);
  // The nub tried (and failed) every hit; the host decided every hit.
  EXPECT_EQ(R.NubEvals, 13u);
  EXPECT_EQ(R.NubResumes, 0u);
}

//===----------------------------------------------------------------------===//
// Tracepoints: values and registers come home
//===----------------------------------------------------------------------===//

TEST(Tracepoints, RecordsDrainWithValuesAndRegisters) {
  for (const TargetDesc *Desc : allTargets()) {
    Session S;
    ASSERT_FALSE(S.start(*Desc, FibSource)) << Desc->Name;
    Expected<int> Id =
        exec::addTracepoint(*S.T, S.Exprs, "fib.c:4", {"n"});
    ASSERT_TRUE(static_cast<bool>(Id)) << Desc->Name << ": " << Id.message();
    for (int K = 0; K < 4 && !S.T->exited(); ++K)
      ASSERT_FALSE(S.Debugger->continueToStop(*S.T)) << Desc->Name;
    ASSERT_TRUE(S.T->exited()) << Desc->Name;

    // fib(6) reaches the n < 2 leaf 13 times: n == 1 eight times and
    // n == 0 five (the Fibonacci counts themselves).
    const std::vector<nub::condbc::TraceRecord> &Log = S.T->traceLog();
    ASSERT_EQ(Log.size(), 13u) << Desc->Name;
    int Ones = 0;
    uint32_t Mask = S.T->tracepoint(*Id)->RegMask;
    for (size_t K = 0; K < Log.size(); ++K) {
      EXPECT_EQ(Log[K].Id, static_cast<uint32_t>(*Id)) << Desc->Name;
      EXPECT_EQ(Log[K].HitNo, K + 1) << Desc->Name;
      ASSERT_EQ(Log[K].Values.size(), 1u) << Desc->Name;
      EXPECT_TRUE(Log[K].Values[0] == 0 || Log[K].Values[0] == 1)
          << Desc->Name << " n=" << Log[K].Values[0];
      Ones += Log[K].Values[0] == 1;
      EXPECT_EQ(Log[K].RegMask, Mask) << Desc->Name;
      EXPECT_EQ(Log[K].Regs.size(),
                static_cast<size_t>(__builtin_popcount(Mask)))
          << Desc->Name;
    }
    EXPECT_EQ(Ones, 8) << Desc->Name;
    EXPECT_EQ(S.T->tracepoint(*Id)->Hits, 13u) << Desc->Name;
    EXPECT_EQ(S.T->traceDropped(), 0u) << Desc->Name;
    // The whole run is one continue plus a handful of drains.
    EXPECT_EQ(S.T->execStats().BpHits, 0u) << Desc->Name;
  }
}

TEST(Tracepoints, RefusedWhenNubEvalIsDisabled) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zmips"), FibSource));
  S.T->setNubCondEnabled(false);
  Expected<int> Id = exec::addTracepoint(*S.T, S.Exprs, "fib.c:4", {"n"});
  EXPECT_FALSE(static_cast<bool>(Id));
}

TEST(Tracepoints, DumpAttributesRecordsToSourceSites) {
  Session S;
  ASSERT_FALSE(S.start(*targetByName("zvax"), FibSource));
  CommandInterpreter Cli(*S.Debugger);
  Cli.setCurrent(S.T);
  EXPECT_NE(Cli.execute("trace fib.c:4 n").find("tracepoint 1"),
            std::string::npos);
  for (int K = 0; K < 4 && !S.T->exited(); ++K)
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  std::string Dump = Cli.execute("trace dump");
  EXPECT_NE(Dump.find("tp 1 hit 1"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("fib.c:4"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("n = "), std::string::npos) << Dump;
  // Dumping consumes the log.
  EXPECT_TRUE(S.T->traceLog().empty());
}

//===----------------------------------------------------------------------===//
// Lifecycle: deleting or disconnecting clears planted nub records
//===----------------------------------------------------------------------===//

TEST(NubCondLifecycle, DeleteWhilePlantedIsCrossModeByteIdentical) {
  // Delete a breakpoint whose condition lives in the nub, then keep
  // debugging: the rest of the run — every stop, `info breakpoints` —
  // must be byte-identical to the host-evaluated oracle. A stale nub
  // record surviving the delete would silently auto-resume hits.
  for (const TargetDesc *Desc : allTargets()) {
    struct ModeRecord {
      std::vector<std::string> Stops;
      std::string InfoBreakpoints;
      bool Exited = false;
    } Rec[2];
    for (int Mode = 0; Mode < 2; ++Mode) {
      bool NubEval = Mode == 0;
      Session S;
      ASSERT_FALSE(S.start(*Desc, FibSource)) << Desc->Name;
      S.T->setNubCondEnabled(NubEval);
      Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
      ASSERT_TRUE(static_cast<bool>(Id)) << Desc->Name;
      ASSERT_FALSE(
          S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));
      for (int K = 0; K < 2; ++K) {
        ASSERT_FALSE(S.Debugger->continueToStop(*S.T)) << Desc->Name;
        Rec[Mode].Stops.push_back(S.where());
      }
      if (NubEval)
        ASSERT_TRUE(S.T->userBreakpoint(*Id)->NubManaged)
            << Desc->Name << ": the scenario must really plant a record";
      ASSERT_FALSE(S.T->deleteUserBreakpoint(*Id)) << Desc->Name;
      Expected<int> Id2 = S.Debugger->addBreakAtLine(*S.T, "fib.c", 8);
      ASSERT_TRUE(static_cast<bool>(Id2)) << Desc->Name;
      for (int K = 0; K < 40 && !S.T->exited(); ++K) {
        ASSERT_FALSE(S.Debugger->continueToStop(*S.T)) << Desc->Name;
        if (!S.T->exited())
          Rec[Mode].Stops.push_back(S.where());
      }
      Rec[Mode].Exited = S.T->exited();
      CommandInterpreter Cli(*S.Debugger);
      Cli.setCurrent(S.T);
      Rec[Mode].InfoBreakpoints = Cli.execute("info breakpoints");
    }
    EXPECT_TRUE(Rec[0].Exited && Rec[1].Exited) << Desc->Name;
    EXPECT_EQ(Rec[0].Stops, Rec[1].Stops) << Desc->Name;
    EXPECT_EQ(Rec[0].InfoBreakpoints, Rec[1].InfoBreakpoints) << Desc->Name;
    // Every remaining execution of line 8 stops — fib(6) makes 25 calls
    // and 3 had already returned by the second visible stop — so the
    // deleted condition is gone from the run, not just from the host's
    // table.
    EXPECT_EQ(Rec[0].Stops.size(), 2u + 22u) << Desc->Name;
  }
}

TEST(NubCondLifecycle, DisconnectClearsPlantedNubRecords) {
  // The nub outlives a detach and waits for the next debugger. Records
  // the old debugger shipped must not survive to make decisions for the
  // new one: a fresh unconditional breakpoint at the same site reports
  // every hit.
  const TargetDesc *Desc = targetByName("zmips");
  Session S;
  ASSERT_FALSE(S.start(*Desc, FibSource));
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));
  // First visible stop consumes hit 1 (the n == 1 leaf is reached
  // first); the condition record is planted nub-side.
  ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
  ASSERT_TRUE(S.T->stopped());
  ASSERT_TRUE(S.T->userBreakpoint(*Id)->NubManaged);
  S.Debugger->disconnect("fib");

  // A second debugger attaches to the preserved process and plants a
  // plain breakpoint at the same line: all 12 remaining executions of
  // line 4 must stop — none auto-resumed by a stale condition.
  Ldb Second;
  auto TOr = Second.connect(S.Host, "fib", S.C->PsSymtab, S.C->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  Target *T2 = *TOr;
  ASSERT_TRUE(T2->stopped());
  Expected<int> Id2 = Second.addBreakAtLine(*T2, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id2)) << Id2.message();
  int Stops = 0;
  for (int K = 0; K < 40 && !T2->exited(); ++K) {
    ASSERT_FALSE(Second.continueToStop(*T2));
    if (!T2->exited())
      ++Stops;
  }
  EXPECT_TRUE(T2->exited());
  EXPECT_EQ(Stops, 12);
  EXPECT_EQ(T2->userBreakpoint(*Id2)->HitCount, 12u);
}

//===----------------------------------------------------------------------===//
// The E8 regression: rejected hits are served from the seeded stop window
//===----------------------------------------------------------------------===//

TEST(NubCondRegression, RejectedHitsDoNotRefetchTheStopContext) {
  // Host-evaluated conditions (the LDB_NO_NUBCOND path) with code-line
  // retention off, so every code re-fetch is visible as a miss: deciding
  // a rejected hit must run entirely out of the expedited stop window the
  // nub pushed with the Stopped — the warm (and its code-span fetch)
  // belongs to accepted stops only.
  setenv("LDB_CACHE_CODE", "0", 1);
  Session S;
  Error Started = S.start(*targetByName("zmips"), FibSource);
  unsetenv("LDB_CACHE_CODE");
  ASSERT_FALSE(Started);
  S.T->setNubCondEnabled(false);
  Expected<int> Id = S.Debugger->addBreakAtLine(*S.T, "fib.c", 4);
  ASSERT_TRUE(static_cast<bool>(Id));
  ASSERT_FALSE(
      S.Debugger->setBreakpointCondition(*S.T, S.Exprs, *Id, "n == 1"));

  uint64_t Code0 = S.T->stats().Cache['c'].Misses;
  uint64_t Data0 = S.T->stats().Cache['d'].Misses;
  int Visible = 0;
  for (int K = 0; K < 40 && !S.T->exited(); ++K) {
    ASSERT_FALSE(S.Debugger->continueToStop(*S.T));
    if (!S.T->exited())
      ++Visible;
  }
  ASSERT_TRUE(S.T->exited());
  EXPECT_EQ(Visible, 8);
  EXPECT_EQ(S.T->execStats().BpHits, 13u);

  // 13 hits, 8 accepted: code misses scale with accepted stops (one warm
  // each), not with hits — before the fix this was >= 13.
  uint64_t CodeMisses = S.T->stats().Cache['c'].Misses - Code0;
  uint64_t DataMisses = S.T->stats().Cache['d'].Misses - Data0;
  EXPECT_LE(CodeMisses, static_cast<uint64_t>(Visible) + 1);
  // The five rejected evaluations read n from the seeded window: no data
  // re-fetches beyond the walker's one-time frame-layout lookup.
  EXPECT_LE(DataMisses, 2u);
}

} // namespace
