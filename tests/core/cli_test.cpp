//===- tests/core/cli_test.cpp -------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-interpreter tests: the user surface built on the client
/// interface, driven as scripted sessions.
///
//===----------------------------------------------------------------------===//

#include "core/cli.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

const char *FibSource =
    "void fib(int n) {\n"
    "  static int a[20];\n"
    "  if (n > 20) n = 20;\n"
    "  a[0] = a[1] = 1;\n"
    "  { int i;\n"
    "    for (i=2; i<n; i++)\n"
    "      a[i] = a[i-1] + a[i-2];\n"
    "  }\n"
    "  { int j;\n"
    "    for (j=0; j<n; j++)\n"
    "      printf(\"%d \", a[j]);\n"
    "  }\n"
    "  printf(\"\\n\");\n"
    "}\n"
    "int main() { fib(10); return 0; }\n";

class CliTest : public ::testing::Test {
protected:
  void SetUp() override {
    const TargetDesc &Desc = *targetByName("zmips");
    auto COr =
        compileAndLink({{"fib.c", FibSource}}, Desc, CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    Proc = &Host.createProcess("fib", Desc);
    ASSERT_FALSE(C->Img.loadInto(Proc->machine()));
    Proc->enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    Cli = std::make_unique<CommandInterpreter>(*Debugger);
    Cli->setCurrent(*TOr);
  }

  std::string run(const std::string &Command) {
    return Cli->execute(Command);
  }

  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  std::unique_ptr<CommandInterpreter> Cli;
};

TEST_F(CliTest, HelpListsCommands) {
  std::string Out = run("help");
  EXPECT_NE(Out.find("break"), std::string::npos);
  EXPECT_NE(Out.find("eval"), std::string::npos);
}

TEST_F(CliTest, TargetsShowsState) {
  std::string Out = run("targets");
  EXPECT_NE(Out.find("fib (zmips) stopped"), std::string::npos) << Out;
}

TEST_F(CliTest, FullSession) {
  EXPECT_NE(run("break fib.c:7").find("planted"), std::string::npos);
  EXPECT_NE(run("continue").find("breakpoint trap at fib.c:7"),
            std::string::npos);
  EXPECT_EQ(run("print i"), "i = 2\n");
  EXPECT_EQ(run("print n"), "n = 10\n");
  EXPECT_EQ(run("eval a[i-1] + a[i-2]"), "2\n");
  std::string Bt = run("where");
  EXPECT_NE(Bt.find("#0 fib at fib.c:7"), std::string::npos);
  EXPECT_NE(Bt.find("#1 main"), std::string::npos);
  EXPECT_EQ(run("set i 8"), "i = 8\n");
  EXPECT_NE(run("continue").find("fib.c:7"), std::string::npos);
  EXPECT_EQ(run("print i"), "i = 9\n");
  EXPECT_NE(run("delete").find("deleted 1"), std::string::npos);
  EXPECT_NE(run("continue").find("exited with status 0"),
            std::string::npos);
}

TEST_F(CliTest, BreakpointsListAndDelete) {
  run("break fib.c:7");
  run("break fib");
  std::string Out = run("breakpoints");
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 2);
  EXPECT_NE(run("delete").find("2 breakpoint(s)"), std::string::npos);
  EXPECT_EQ(run("breakpoints"), "no breakpoints\n");
}

TEST_F(CliTest, FrameSelection) {
  run("break fib.c:7");
  run("continue");
  EXPECT_NE(run("frame 1").find("frame 1 selected"), std::string::npos);
  // main's frame has no i; switching back finds it.
  EXPECT_NE(run("print i").find("error"), std::string::npos);
  run("frame 0");
  EXPECT_EQ(run("print i"), "i = 2\n");
}

TEST_F(CliTest, RegsUsesArchNames) {
  run("break fib.c:7");
  run("continue");
  std::string Out = run("regs");
  EXPECT_NE(Out.find("sp=0x"), std::string::npos) << Out;
}

TEST_F(CliTest, DisasmShowsPlantedBreak) {
  run("break fib.c:7");
  run("continue");
  std::string Out = run("disasm 4");
  // The pc sits on the planted break instruction.
  EXPECT_NE(Out.find("break   <- breakpoint"), std::string::npos) << Out;
  EXPECT_EQ(std::count(Out.begin(), Out.end(), '\n'), 4) << Out;
}

TEST_F(CliTest, ErrorsAreUserLevel) {
  EXPECT_NE(run("bogus").find("unknown command"), std::string::npos);
  EXPECT_NE(run("break nowhere.c:99").find("error"), std::string::npos);
  EXPECT_NE(run("print nothing").find("error"), std::string::npos);
  EXPECT_NE(run("set").find("error"), std::string::npos);
}

TEST_F(CliTest, QuitSetsFlag) {
  EXPECT_FALSE(Cli->quitRequested());
  run("quit");
  EXPECT_TRUE(Cli->quitRequested());
}

TEST_F(CliTest, TargetSwitching) {
  // A second process on another architecture; the CLI hops between them.
  const TargetDesc &Z68k = *targetByName("z68k");
  auto C2Or = compileAndLink({{"fib.c", FibSource}}, Z68k,
                             CompileOptions());
  ASSERT_TRUE(static_cast<bool>(C2Or));
  nub::NubProcess &P2 = Host.createProcess("other", Z68k);
  ASSERT_FALSE((*C2Or)->Img.loadInto(P2.machine()));
  P2.enter((*C2Or)->Img.Entry);
  auto T2 = Debugger->connect(Host, "other", (*C2Or)->PsSymtab,
                              (*C2Or)->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(T2));

  EXPECT_NE(run("targets").find("other (z68k)"), std::string::npos);
  EXPECT_NE(run("target other").find("current target: other"),
            std::string::npos);
  run("break fib.c:7");
  run("continue");
  EXPECT_EQ(run("print i"), "i = 2\n");
  run("target fib");
  EXPECT_NE(run("status").find("pause before main"), std::string::npos);
}

TEST_F(CliTest, DisconnectOfCurrentTargetLeavesNoDanglingState) {
  // Regression: disconnecting the selected target used to leave the
  // interpreter's Current pointing at the freed Target; the next command
  // dereferenced it. The CLI now resolves the session by name per
  // command, so the stale selection is reported, not dereferenced.
  run("break fib.c:7");
  run("continue");
  EXPECT_NE(run("disconnect").find("disconnected fib"), std::string::npos);
  std::string Out = run("status");
  EXPECT_NE(Out.find("no target selected"), std::string::npos) << Out;
  EXPECT_EQ(Cli->current(), nullptr);
}

TEST_F(CliTest, DisconnectBehindTheCliBack) {
  // The same dangling window without the CLI's own command: the client
  // interface drops the session directly (an event-action tool could).
  run("break fib.c:7");
  Debugger->disconnect("fib");
  std::string Out = run("step");
  EXPECT_NE(Out.find("target 'fib' is no longer connected"),
            std::string::npos)
      << Out;
  // The stale name was cleared: the next command reports no selection.
  EXPECT_NE(run("status").find("no target selected"), std::string::npos);
}

TEST_F(CliTest, ReconnectUnderSameNameIsPickedUpSeamlessly) {
  // A replacement session under the same name (reconnect after a
  // debugger crash) must be what the next command operates on — not the
  // freed original.
  Target *Old = Cli->current();
  ASSERT_NE(Old, nullptr);
  Old->crashConnection();
  auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  EXPECT_NE(*TOr, Old);
  EXPECT_EQ(Cli->current(), *TOr);
  EXPECT_NE(run("status").find("pause before main"), std::string::npos);
}

TEST_F(CliTest, FrameSelectionResetsAcrossTargetSwitch) {
  // Regression: the frame selection used to live in the CLI and silently
  // carry over to the next `target NAME` — print/eval then read the
  // wrong frame of the new target. Selecting a target resets its frame.
  const TargetDesc &Z68k = *targetByName("z68k");
  auto C2Or = compileAndLink({{"fib.c", FibSource}}, Z68k,
                             CompileOptions());
  ASSERT_TRUE(static_cast<bool>(C2Or));
  nub::NubProcess &P2 = Host.createProcess("other", Z68k);
  ASSERT_FALSE((*C2Or)->Img.loadInto(P2.machine()));
  P2.enter((*C2Or)->Img.Entry);
  auto T2 = Debugger->connect(Host, "other", (*C2Or)->PsSymtab,
                              (*C2Or)->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(T2));

  run("break fib.c:7");
  run("continue");
  run("frame 1"); // select main's frame on fib
  run("target other");
  run("break fib.c:7");
  run("continue");
  // On the fresh target the selection must be frame 0 — i is visible.
  EXPECT_EQ(run("print i"), "i = 2\n");
  // And the first target kept its own frame selection independently.
  run("target fib");
  DebugSession *S = Debugger->session("fib");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->currentFrame(), 0u) << "switching back also resets";
}

TEST_F(CliTest, StatsSplitsFrameKindsPerDirection) {
  run("break fib.c:7");
  run("continue");
  run("step");
  std::string Out = run("stats");
  // The frame-shape rows: block vs word messages, each split by
  // direction, indented under the messages total.
  auto row = [&](const std::string &Label) {
    size_t At = Out.find(Label);
    EXPECT_NE(At, std::string::npos) << Label << " missing from:\n" << Out;
    if (At == std::string::npos)
      return std::make_pair(uint64_t(0), uint64_t(0));
    uint64_t Sent = 0, Received = 0;
    EXPECT_EQ(std::sscanf(Out.c_str() + At + Label.size(),
                          "%llu sent, %llu received",
                          reinterpret_cast<unsigned long long *>(&Sent),
                          reinterpret_cast<unsigned long long *>(&Received)),
              2)
        << "unparseable row after " << Label;
    return std::make_pair(Sent, Received);
  };
  auto [BlockSent, BlockRecv] = row("  block frames: ");
  auto [WordSent, WordRecv] = row("  word frames:  ");
  EXPECT_GT(BlockSent, 0u) << "block transport sends block frames";
  EXPECT_GT(BlockRecv, 0u);
  EXPECT_EQ(WordSent, 0u) << "no word frames under the block transport";
  EXPECT_EQ(WordRecv, 0u);
  // The pipelined-window and recovery rows exist, and the stepping above
  // actually drove the window deeper than one request.
  EXPECT_NE(Out.find("pipeline:       "), std::string::npos) << Out;
  EXPECT_NE(Out.find("recovery:       "), std::string::npos) << Out;
  EXPECT_NE(Out.find(" posted, "), std::string::npos);
  EXPECT_NE(Out.find(" max in flight, "), std::string::npos);
  EXPECT_NE(Out.find(" stores combined"), std::string::npos);
}

TEST_F(CliTest, StatsResetClearsPipelineAndRecoveryCounters) {
  run("break fib.c:7");
  run("continue");
  run("step");
  EXPECT_NE(run("stats reset").find("reset"), std::string::npos);
  // Golden output: with no traffic since the reset, every transport row
  // renders as exact zeros — one stale counter would show here.
  std::string Out = run("stats");
  EXPECT_NE(Out.find("round trips:    0\n"), std::string::npos) << Out;
  EXPECT_NE(Out.find("messages:       0 sent, 0 received\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("  block frames: 0 sent, 0 received\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("  word frames:  0 sent, 0 received\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("bytes on wire:  0 sent, 0 received\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(
      Out.find("pipeline:       0 posted, 0 max in flight, 0 stores combined\n"),
      std::string::npos)
      << Out;
  EXPECT_NE(Out.find("recovery:       0 retries, 0 timeouts, 0 stale replies, "
                     "0 drops, 0 garbles\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("cache:          0 hits, 0 misses\n"), std::string::npos)
      << Out;
}

TEST_F(CliTest, StatsShowsSessionAndFleetRollupRows) {
  run("break fib.c:7");
  run("continue");
  std::string Out = run("stats");
  EXPECT_NE(Out.find("sessions:       1 active, 1 shared images\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("  session fib: "), std::string::npos) << Out;
  // With one session and nothing retired, the fleet total equals the
  // session's own counters.
  uint64_t Rt = 0, FleetRt = 1;
  size_t At = Out.find("round trips:    ");
  ASSERT_NE(At, std::string::npos);
  std::sscanf(Out.c_str() + At, "round trips:    %llu",
              reinterpret_cast<unsigned long long *>(&Rt));
  At = Out.find("fleet:          ");
  ASSERT_NE(At, std::string::npos) << Out;
  std::sscanf(Out.c_str() + At, "fleet:          %llu round trips",
              reinterpret_cast<unsigned long long *>(&FleetRt));
  EXPECT_EQ(Rt, FleetRt) << Out;
  EXPECT_GT(Rt, 0u);
}

TEST_F(CliTest, StatsResetClearsFleetRollups) {
  run("break fib.c:7");
  run("continue");
  // Retire some counters: crash the session and reconnect under the same
  // name. The fleet row then exceeds the fresh session's own counters.
  Cli->current()->crashConnection();
  auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr));
  ASSERT_GT(Debugger->fleetStats().RoundTrips,
            Debugger->session("fib")->stats().RoundTrips);

  EXPECT_NE(run("stats reset").find("reset"), std::string::npos);
  // Golden rows: the reset cleared the live session AND the retired
  // aggregate — the fleet rollup reads exact zeros.
  std::string Out = run("stats");
  EXPECT_NE(Out.find("round trips:    0\n"), std::string::npos) << Out;
  EXPECT_NE(Out.find("  session fib: 0 posted, 0 retries\n"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("fleet:          0 round trips, 0 posted, 0 retries\n"),
            std::string::npos)
      << Out;
}

} // namespace
