//===- tests/core/deferred_session_test.cpp -------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete debugging session against *deferred* symbol tables: every
/// capability the eager path has must work identically when entries are
/// lexed lazily (paper Sec 5), because laziness is supposed to be an
/// optimization, not a behaviour change.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

const char *FibSource =
    "void fib(int n) {\n"
    "  static int a[20];\n"
    "  if (n > 20) n = 20;\n"
    "  a[0] = a[1] = 1;\n"
    "  { int i;\n"
    "    for (i=2; i<n; i++)\n"
    "      a[i] = a[i-1] + a[i-2];\n"
    "  }\n"
    "  { int j;\n"
    "    for (j=0; j<n; j++)\n"
    "      printf(\"%d \", a[j]);\n"
    "  }\n"
    "  printf(\"\\n\");\n"
    "}\n"
    "int main() { fib(10); return 0; }\n";

class DeferredSession : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    CompileOptions Options;
    Options.DeferredSymtab = true;
    auto COr =
        compileAndLink({{"fib.c", FibSource}}, *GetParam(), Options);
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    ASSERT_NE(C->PsSymtab.find("DeferDef"), std::string::npos);
    Proc = &Host.createProcess("fib", *GetParam());
    ASSERT_FALSE(C->Img.loadInto(Proc->machine()));
    Proc->enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "fib", C->PsSymtab, C->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
  }

  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
};

TEST_P(DeferredSession, BreakPrintEvalAssignBacktrace) {
  ASSERT_FALSE(Debugger->breakAtLine(*T, "fib.c", 7));
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());

  Expected<std::string> I = printVariable(*T, "i");
  ASSERT_TRUE(static_cast<bool>(I)) << I.message();
  EXPECT_EQ(*I, "2");
  Expected<std::string> N = printVariable(*T, "n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(*N, "10");

  ASSERT_FALSE(T->interp().run("4 setprintlimit"));
  Expected<std::string> A = printVariable(*T, "a");
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  EXPECT_EQ(*A, "{1, 1, 0, 0, ...}");

  Expected<std::string> Bt = renderBacktrace(*T);
  ASSERT_TRUE(static_cast<bool>(Bt)) << Bt.message();
  EXPECT_NE(Bt->find("#1 main"), std::string::npos);

  ExprSession Session;
  Expected<std::string> V =
      evalExpression(*T, Session, "a[i-1] + a[i-2] + n");
  ASSERT_TRUE(static_cast<bool>(V)) << V.message();
  EXPECT_EQ(*V, "12");

  ASSERT_FALSE(assignVariable(*T, "i", "9"));
  ASSERT_FALSE(T->resume());
  EXPECT_TRUE(T->exited());
  EXPECT_EQ(Proc->machine().ConsoleOut, "1 1 0 0 0 0 0 0 0 0 \n");
}

TEST_P(DeferredSession, BreakByProcedureAndSecondStop) {
  ASSERT_FALSE(Debugger->breakAtProc(*T, "fib"));
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  Expected<std::string> Where = describeStop(*T);
  ASSERT_TRUE(static_cast<bool>(Where)) << Where.message();
  EXPECT_NE(Where->find("in fib"), std::string::npos);
  // Forcing memoizes: the same entry resolves instantly a second time.
  Expected<std::string> N1 = printVariable(*T, "n");
  Expected<std::string> N2 = printVariable(*T, "n");
  ASSERT_TRUE(static_cast<bool>(N1));
  ASSERT_TRUE(static_cast<bool>(N2));
  EXPECT_EQ(*N1, *N2);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DeferredSession,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
