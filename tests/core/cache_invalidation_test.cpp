//===- tests/core/cache_invalidation_test.cpp -----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end block-cache coherence against a live nub, on every target:
/// memory the debugger read before a continue must be re-read afterwards,
/// because the target ran and may have changed it. The cache makes reads
/// cheap; resume() makes it forget. A target whose stores went unseen
/// would be a debugger that lies.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::mem;
using namespace ldb::target;

namespace {

constexpr uint32_t TextBase = 0x1000;
constexpr uint32_t Flag = 0x2000; // data word the program writes

class CacheInvalidationTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    Proc = makeProcess("t1");
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "t1", "", "");
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
  }

  /// Loads the flag-writing program into a fresh process and enters it.
  nub::NubProcess *makeProcess(const std::string &Name) {
    nub::NubProcess &P = Host.createProcess(Name, *Desc);
    unsigned ArgReg = Desc->FirstArgReg;
    // r1 = 42; nop (bp); [Flag] = r1; nop (bp); exit(0)
    std::vector<Instr> Program = {
        Instr::i(Op::AddI, 1, 0, 42),
        Instr::nop(),
        Instr::i(Op::Sw, 1, 0, static_cast<int32_t>(Flag)),
        Instr::nop(),
        Instr::i(Op::AddI, ArgReg, 0, 0),
        Instr::i(Op::Sys, 0, ArgReg, static_cast<int32_t>(Syscall::Exit)),
    };
    uint32_t Addr = TextBase;
    for (const Instr &In : Program) {
      EXPECT_TRUE(P.machine().storeInt(Addr, 4, Desc->Enc.encode(In)));
      Addr += 4;
    }
    P.enter(TextBase);
    return &P;
  }

  uint64_t fetchFlag() {
    uint64_t V = ~0ull;
    Error E = T->wire()->fetchInt(Location::absolute(SpData, Flag), 4, V);
    EXPECT_FALSE(E) << E.message();
    return V;
  }

  uint64_t fetchCode(Target &On, uint32_t Addr) {
    uint64_t V = ~0ull;
    Error E = On.wire()->fetchInt(Location::absolute(SpCode, Addr), 4, V);
    EXPECT_FALSE(E) << E.message();
    return V;
  }

  const TargetDesc *Desc = nullptr;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
};

TEST_P(CacheInvalidationTest, ResumeForgetsCachedMemory) {
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));

  ASSERT_FALSE(T->resume()); // startup pause -> first breakpoint
  ASSERT_TRUE(T->stopped());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);

  // Read the flag word; read it again so it is demonstrably served from
  // the cache (no extra round trip).
  EXPECT_EQ(fetchFlag(), 0u);
  uint64_t Before = T->stats().RoundTrips;
  EXPECT_EQ(fetchFlag(), 0u);
  EXPECT_EQ(T->stats().RoundTrips, Before);

  // Continue: the program stores 42 into the flag and hits the second
  // breakpoint. The cached line must be gone, the new value visible.
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 42u);

  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->exited());
  EXPECT_EQ(T->lastStop().ExitStatus, 0u);
}

TEST_P(CacheInvalidationTest, BatchPlantMovesOneRangeInTwoRoundTrips) {
  // Both sites sit in one coalesced range inside one cache line: the
  // batch plant costs exactly one block fetch plus one block store.
  uint64_t Before = T->stats().RoundTrips;
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  EXPECT_EQ(T->stats().RoundTrips - Before, 2u);

  // The removal's verification fetch hits the line still resident from
  // the plant, so only the write-through store goes to the wire.
  Before = T->stats().RoundTrips;
  uint64_t HitsBefore = T->stats().cacheHits();
  ASSERT_FALSE(T->removeBreakpoints({TextBase + 4, TextBase + 12}));
  EXPECT_EQ(T->stats().RoundTrips - Before, 1u);
  EXPECT_GT(T->stats().cacheHits(), HitsBefore);
  EXPECT_TRUE(T->breakpoints().empty());
}

TEST_P(CacheInvalidationTest, WordTransportSeesTheSameWorld) {
  // The word-granularity compatibility transport has no cache to go
  // stale; the observable values are identical, just dearer.
  T->setBlockTransport(false);
  EXPECT_FALSE(T->blockTransport());

  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 0u);
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 42u);

  // Flipping the block transport back on mid-session is safe: the cache
  // restarts empty and refills.
  T->setBlockTransport(true);
  EXPECT_TRUE(T->blockTransport());
  EXPECT_EQ(fetchFlag(), 42u);
}

TEST_P(CacheInvalidationTest, ResumeDropsWarmedDataLines) {
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);

  // Prefetch the flag's line; the reads after it are free.
  ASSERT_FALSE(T->warmSpans({{Location::absolute(SpData, Flag), 64}}));
  uint64_t Before = T->stats().RoundTrips;
  EXPECT_EQ(fetchFlag(), 0u);
  EXPECT_EQ(T->stats().RoundTrips, Before) << "served from the warmed line";

  // The target runs and stores 42. A warm()-populated line is no more
  // durable than one filled by a read: resume must drop it.
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 42u) << "the warmed line outlived the resume";
}

TEST_P(CacheInvalidationTest, CodeLinesSurviveResumeCoherently) {
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);

  // Fill the code line (the plant's verification fetch may already have),
  // then show it serves without traffic.
  uint64_t First = fetchCode(*T, TextBase);
  uint64_t Before = T->stats().RoundTrips;
  EXPECT_EQ(fetchCode(*T, TextBase), First);
  EXPECT_EQ(T->stats().RoundTrips, Before);

  // Code is immutable while the target runs (no self-modifying code in
  // this system), so the line survives the resume and still serves free —
  // and with the same bytes, because the debugger's own break-word
  // stores patch resident lines write-through.
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  uint64_t Across = T->stats().RoundTrips;
  EXPECT_EQ(fetchCode(*T, TextBase), First);
  EXPECT_EQ(T->stats().RoundTrips, Across)
      << "the code line should have survived the resume";
}

TEST_P(CacheInvalidationTest, CacheCodeKillSwitchRestoresFullDrop) {
  // LDB_CACHE_CODE=0 turns code-line retention off at connect time: every
  // resume drops everything, the pre-retention behavior.
  makeProcess("t2");
  ::setenv("LDB_CACHE_CODE", "0", 1);
  Ldb Plain;
  auto TOr = Plain.connect(Host, "t2", "", "");
  ::unsetenv("LDB_CACHE_CODE");
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  Target &U = **TOr;

  ASSERT_FALSE(U.plantBreakpoints({TextBase + 4, TextBase + 12}));
  ASSERT_FALSE(U.resume());
  ASSERT_EQ(U.lastStop().Signo, nub::SigTrap);
  uint64_t First = fetchCode(U, TextBase);
  uint64_t Before = U.stats().RoundTrips;
  EXPECT_EQ(fetchCode(U, TextBase), First);
  EXPECT_EQ(U.stats().RoundTrips, Before) << "resident until the resume";

  ASSERT_FALSE(U.resume());
  ASSERT_EQ(U.lastStop().Signo, nub::SigTrap);
  Before = U.stats().RoundTrips;
  EXPECT_EQ(fetchCode(U, TextBase), First);
  EXPECT_GT(U.stats().RoundTrips, Before)
      << "with the kill switch, the code line must refill after a resume";
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CacheInvalidationTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
