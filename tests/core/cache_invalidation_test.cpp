//===- tests/core/cache_invalidation_test.cpp -----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end block-cache coherence against a live nub, on every target:
/// memory the debugger read before a continue must be re-read afterwards,
/// because the target ran and may have changed it. The cache makes reads
/// cheap; resume() makes it forget. A target whose stores went unseen
/// would be a debugger that lies.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::mem;
using namespace ldb::target;

namespace {

constexpr uint32_t TextBase = 0x1000;
constexpr uint32_t Flag = 0x2000; // data word the program writes

class CacheInvalidationTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    Proc = &Host.createProcess("t1", *Desc);
    unsigned ArgReg = Desc->FirstArgReg;
    // r1 = 42; nop (bp); [Flag] = r1; nop (bp); exit(0)
    std::vector<Instr> Program = {
        Instr::i(Op::AddI, 1, 0, 42),
        Instr::nop(),
        Instr::i(Op::Sw, 1, 0, static_cast<int32_t>(Flag)),
        Instr::nop(),
        Instr::i(Op::AddI, ArgReg, 0, 0),
        Instr::i(Op::Sys, 0, ArgReg, static_cast<int32_t>(Syscall::Exit)),
    };
    uint32_t Addr = TextBase;
    for (const Instr &In : Program) {
      ASSERT_TRUE(Proc->machine().storeInt(Addr, 4, Desc->Enc.encode(In)));
      Addr += 4;
    }
    Proc->enter(TextBase);
    Debugger = std::make_unique<Ldb>();
    auto TOr = Debugger->connect(Host, "t1", "", "");
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
  }

  uint64_t fetchFlag() {
    uint64_t V = ~0ull;
    Error E = T->wire()->fetchInt(Location::absolute(SpData, Flag), 4, V);
    EXPECT_FALSE(E) << E.message();
    return V;
  }

  const TargetDesc *Desc = nullptr;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
};

TEST_P(CacheInvalidationTest, ResumeForgetsCachedMemory) {
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));

  ASSERT_FALSE(T->resume()); // startup pause -> first breakpoint
  ASSERT_TRUE(T->stopped());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);

  // Read the flag word; read it again so it is demonstrably served from
  // the cache (no extra round trip).
  EXPECT_EQ(fetchFlag(), 0u);
  uint64_t Before = T->stats().RoundTrips;
  EXPECT_EQ(fetchFlag(), 0u);
  EXPECT_EQ(T->stats().RoundTrips, Before);

  // Continue: the program stores 42 into the flag and hits the second
  // breakpoint. The cached line must be gone, the new value visible.
  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->stopped());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 42u);

  ASSERT_FALSE(T->resume());
  ASSERT_TRUE(T->exited());
  EXPECT_EQ(T->lastStop().ExitStatus, 0u);
}

TEST_P(CacheInvalidationTest, BatchPlantMovesOneRangeInTwoRoundTrips) {
  // Both sites sit in one coalesced range inside one cache line: the
  // batch plant costs exactly one block fetch plus one block store.
  uint64_t Before = T->stats().RoundTrips;
  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  EXPECT_EQ(T->stats().RoundTrips - Before, 2u);

  // The removal's verification fetch hits the line still resident from
  // the plant, so only the write-through store goes to the wire.
  Before = T->stats().RoundTrips;
  uint64_t HitsBefore = T->stats().cacheHits();
  ASSERT_FALSE(T->removeBreakpoints({TextBase + 4, TextBase + 12}));
  EXPECT_EQ(T->stats().RoundTrips - Before, 1u);
  EXPECT_GT(T->stats().cacheHits(), HitsBefore);
  EXPECT_TRUE(T->breakpoints().empty());
}

TEST_P(CacheInvalidationTest, WordTransportSeesTheSameWorld) {
  // The word-granularity compatibility transport has no cache to go
  // stale; the observable values are identical, just dearer.
  T->setBlockTransport(false);
  EXPECT_FALSE(T->blockTransport());

  ASSERT_FALSE(T->plantBreakpoints({TextBase + 4, TextBase + 12}));
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 0u);
  ASSERT_FALSE(T->resume());
  ASSERT_EQ(T->lastStop().Signo, nub::SigTrap);
  EXPECT_EQ(fetchFlag(), 42u);

  // Flipping the block transport back on mid-session is safe: the cache
  // restarts empty and refills.
  T->setBlockTransport(true);
  EXPECT_TRUE(T->blockTransport());
  EXPECT_EQ(fetchFlag(), 42u);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CacheInvalidationTest,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
