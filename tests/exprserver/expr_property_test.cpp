//===- tests/exprserver/expr_property_test.cpp ----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test: randomly generated C integer expressions, evaluated by
/// the whole pipeline — the expression server's parser, the PostScript
/// rewriter, and the embedded interpreter against live variables in a
/// stopped simulated process — must agree with the host's own evaluation
/// of the same expression tree. Seeds are the parameter, so failures
/// replay deterministically.
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"

#include <gtest/gtest.h>

#include <random>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

/// The variables the target program exposes, mirrored host-side.
struct Env {
  int32_t A = 7, B = -3, C = 100, D = 13;
  int32_t Arr[5] = {2, 4, 8, 16, 32};

  int32_t var(int K) const {
    switch (K & 3) {
    case 0:
      return A;
    case 1:
      return B;
    case 2:
      return C;
    default:
      return D;
    }
  }
  static const char *varName(int K) {
    switch (K & 3) {
    case 0:
      return "va";
    case 1:
      return "vb";
    case 2:
      return "vc";
    default:
      return "vd";
    }
  }
};

/// Generates an expression and computes its value host-side. Division and
/// shifts are generated in guarded forms so the target cannot fault.
class Gen {
public:
  Gen(std::mt19937 &Rng, const Env &E) : Rng(Rng), E(E) {}

  std::string expr(int Depth, int64_t &Value) {
    if (Depth <= 0 || pick(4) == 0)
      return leaf(Value);
    int64_t L, R;
    switch (pick(9)) {
    case 0: {
      std::string Out = "(" + expr(Depth - 1, L) + " + " +
                        expr(Depth - 1, R) + ")";
      Value = wrap(L + R);
      return Out;
    }
    case 1: {
      std::string Out = "(" + expr(Depth - 1, L) + " - " +
                        expr(Depth - 1, R) + ")";
      Value = wrap(L - R);
      return Out;
    }
    case 2: {
      std::string Out = "(" + expr(Depth - 1, L) + " * " +
                        expr(Depth - 1, R) + ")";
      Value = wrap(L * R);
      return Out;
    }
    case 3: {
      // Guarded division: a / (|b| % 7 + 1).
      std::string BS = expr(Depth - 1, R);
      int64_t Div = (R < 0 ? -R : R) % 7 + 1;
      std::string Out = "(" + expr(Depth - 1, L) + " / ((" + BS + " < 0 ? -(" +
                        BS + ") : (" + BS + ")) % 7 + 1))";
      // The guard re-evaluates BS; it is side-effect free by construction.
      Value = wrap(L / Div);
      return Out;
    }
    case 4: {
      std::string Out = "(" + expr(Depth - 1, L) + " & " +
                        expr(Depth - 1, R) + ")";
      Value = wrap(L & R);
      return Out;
    }
    case 5: {
      std::string Out = "(" + expr(Depth - 1, L) + " ^ " +
                        expr(Depth - 1, R) + ")";
      Value = wrap(L ^ R);
      return Out;
    }
    case 6: {
      std::string Out = "(" + expr(Depth - 1, L) + " < " +
                        expr(Depth - 1, R) + ")";
      Value = L < R;
      return Out;
    }
    case 7: {
      std::string Out = "(" + expr(Depth - 1, L) + " == " +
                        expr(Depth - 1, R) + ")";
      Value = L == R;
      return Out;
    }
    default: {
      std::string Out = "(-" + expr(Depth - 1, L) + ")";
      Value = wrap(-L);
      return Out;
    }
    }
  }

private:
  int pick(int N) { return static_cast<int>(Rng() % N); }

  static int64_t wrap(int64_t V) {
    return static_cast<int32_t>(static_cast<uint64_t>(V));
  }

  std::string leaf(int64_t &Value) {
    switch (pick(3)) {
    case 0: {
      int K = pick(4);
      Value = E.var(K);
      return Env::varName(K);
    }
    case 1: {
      int K = pick(5);
      Value = E.Arr[K];
      return "arr[" + std::to_string(K) + "]";
    }
    default: {
      int32_t C = static_cast<int32_t>(Rng() % 201) - 100;
      Value = C;
      return C < 0 ? "(" + std::to_string(C) + ")" : std::to_string(C);
    }
    }
  }

  std::mt19937 &Rng;
  const Env &E;
};

const char *TargetSource =
    "int va = 7; int vb = -3; int vc = 100; int vd = 13;\n"
    "int arr[5] = {2, 4, 8, 16, 32};\n"
    "int main() { int anchor; anchor = 1; return anchor; }\n";

class ExprFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExprFuzz, AgreesWithHostSemantics) {
  const TargetDesc &Desc =
      *allTargets()[static_cast<size_t>(GetParam()) % allTargets().size()];
  auto COr = compileAndLink({{"env.c", TargetSource}}, Desc,
                            CompileOptions());
  ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
  nub::ProcessHost Host;
  nub::NubProcess &P = Host.createProcess("env", Desc);
  ASSERT_FALSE((*COr)->Img.loadInto(P.machine()));
  P.enter((*COr)->Img.Entry);
  Ldb Debugger;
  auto TOr = Debugger.connect(Host, "env", (*COr)->PsSymtab,
                              (*COr)->LoaderTable);
  ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
  Target &T = **TOr;
  ASSERT_FALSE(Debugger.breakAtLine(T, "env.c", 3));
  ASSERT_FALSE(T.resume());
  ASSERT_TRUE(T.stopped());

  ExprSession Session;
  Env E;
  std::mt19937 Rng(static_cast<unsigned>(GetParam()) * 2654435761u + 17);
  for (int K = 0; K < 25; ++K) {
    Gen G(Rng, E);
    int64_t Want = 0;
    std::string Text = G.expr(3, Want);
    Expected<std::string> Got = evalExpression(T, Session, Text);
    ASSERT_TRUE(static_cast<bool>(Got))
        << "seed " << GetParam() << " expr " << Text << ": "
        << Got.message();
    EXPECT_EQ(*Got, std::to_string(Want))
        << "seed " << GetParam() << " target " << Desc.Name << " expr "
        << Text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Range(0, 12));

} // namespace
