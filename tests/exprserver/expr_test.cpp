//===- tests/exprserver/expr_test.cpp ------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression-server tests: the rewriter in isolation, the pipe protocol
/// with a scripted debugger side, and full end-to-end evaluation against
/// stopped processes on all four targets (paper Sec 3 / Fig 3).
///
//===----------------------------------------------------------------------===//

#include "core/debugger.h"
#include "core/expreval.h"
#include "lcc/driver.h"
#include "lcc/parser.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::exprserver;
using namespace ldb::lcc;
using namespace ldb::target;

namespace {

//===----------------------------------------------------------------------===//
// Protocol-level tests with a scripted debugger side
//===----------------------------------------------------------------------===//

/// Drives the server pipes directly: replies to lookups from a table and
/// returns everything the server emits up to the final directive.
std::string converse(ExprServer &Srv, const std::string &Expr,
                     const std::map<std::string, std::string> &Table,
                     bool &IsError) {
  Srv.toServer().writeLine(Expr);
  std::string Collected;
  std::string Line;
  IsError = false;
  while (Srv.fromServer().readLine(Line)) {
    if (Line.find("ExpressionServer.lookup") != std::string::npos) {
      // "/name ExpressionServer.lookup"
      std::string Name = Line.substr(1, Line.find(' ') - 1);
      auto It = Table.find(Name);
      Srv.toServer().writeLine(It == Table.end() ? "unknown" : It->second);
      continue;
    }
    if (Line.find("ExpressionServer.error") != std::string::npos) {
      IsError = true;
      Collected += Line;
      break;
    }
    if (Line == "ExpressionServer.result")
      break;
    Collected += Line + "\n";
  }
  return Collected;
}

TEST(ExprProtocol, ConstantExpressionNeedsNoLookups) {
  ExprServer Srv;
  bool IsError;
  std::string Ps = converse(Srv, "1 + 2 * 3", {}, IsError);
  EXPECT_FALSE(IsError) << Ps;
  EXPECT_NE(Ps.find("1 2 3 mul"), std::string::npos) << Ps;
}

TEST(ExprProtocol, LookupRoundTrip) {
  ExprServer Srv;
  bool IsError;
  std::string Ps =
      converse(Srv, "x + 1", {{"x", "sym reg 16 i4"}}, IsError);
  EXPECT_FALSE(IsError) << Ps;
  EXPECT_NE(Ps.find("16 Regset0 Absolute"), std::string::npos) << Ps;
  EXPECT_NE(Ps.find("4 fetch"), std::string::npos) << Ps;
}

TEST(ExprProtocol, UnknownSymbolReportsError) {
  ExprServer Srv;
  bool IsError;
  std::string Ps = converse(Srv, "mystery + 1", {}, IsError);
  EXPECT_TRUE(IsError);
  EXPECT_NE(Ps.find("mystery"), std::string::npos) << Ps;
}

TEST(ExprProtocol, SyntaxErrorReported) {
  ExprServer Srv;
  bool IsError;
  std::string Ps = converse(Srv, "1 + ", {}, IsError);
  EXPECT_TRUE(IsError) << Ps;
}

TEST(ExprProtocol, ServerSurvivesManyExpressions) {
  ExprServer Srv;
  for (int K = 0; K < 50; ++K) {
    bool IsError;
    std::string Ps = converse(
        Srv, "v + " + std::to_string(K),
        {{"v", "sym local -16 i4"}}, IsError);
    EXPECT_FALSE(IsError) << Ps;
  }
}

TEST(ExprProtocol, StructMemberThroughLookup) {
  ExprServer Srv;
  bool IsError;
  std::string Ps = converse(
      Srv, "pt.y", {{"pt", "sym addr 8192 s 2 x 0 i4 y 4 i4"}}, IsError);
  EXPECT_FALSE(IsError) << Ps;
  EXPECT_NE(Ps.find("8192 DataLoc Absolute"), std::string::npos) << Ps;
  EXPECT_NE(Ps.find("4 Shifted"), std::string::npos) << Ps;
}

//===----------------------------------------------------------------------===//
// Rewriter unit tests
//===----------------------------------------------------------------------===//

TEST(Rewriter, RefusesCalls) {
  Unit U;
  U.Types = std::make_unique<TypePool>(false);
  CSymbol *F = U.newSymbol();
  F->Name = "f";
  F->Ty = U.Types->func(U.Types->intTy(), {});
  F->Sto = Storage::Func;
  auto R = Parser::parseExpression("f()", U,
                                   [&](const std::string &) { return F; });
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  auto Ps = rewriteToPostScript(**R);
  ASSERT_FALSE(static_cast<bool>(Ps));
  EXPECT_NE(Ps.message().find("procedure calls"), std::string::npos);
}

TEST(Rewriter, RefusesAddressOfRegisterVariable) {
  Unit U;
  U.Types = std::make_unique<TypePool>(false);
  CSymbol *X = U.newSymbol();
  X->Name = "x";
  X->Ty = U.Types->intTy();
  X->InRegister = true;
  X->RegNum = 16;
  auto R = Parser::parseExpression("&x", U,
                                   [&](const std::string &) { return X; });
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  auto Ps = rewriteToPostScript(**R);
  ASSERT_FALSE(static_cast<bool>(Ps));
  EXPECT_NE(Ps.message().find("register"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end evaluation against stopped targets
//===----------------------------------------------------------------------===//

const char *EvalSource =
    "struct point { int x; int y; };\n"
    "struct point origin;\n"
    "int values[4] = {10, 20, 30, 40};\n"
    "double ratio = 2.5;\n"
    "unsigned mask = 4294967295u;\n"
    "void inspect(int n, double f) {\n"
    "  int i;\n"
    "  int *p;\n"
    "  i = 6;\n"
    "  p = &values[1];\n"
    "  origin.x = 3; origin.y = 4;\n"
    "  i = i;\n" // line 12: the breakpoint, everything initialized
    "}\n"
    "int main() { inspect(7, 1.5); return 0; }\n";

class ExprEval : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    auto COr =
        compileAndLink({{"eval.c", EvalSource}}, *Desc, CompileOptions());
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    C = COr.take();
    Proc = &Host.createProcess("eval", *Desc);
    ASSERT_FALSE(C->Img.loadInto(Proc->machine()));
    Proc->enter(C->Img.Entry);
    Debugger = std::make_unique<Ldb>();
    auto TOr =
        Debugger->connect(Host, "eval", C->PsSymtab, C->LoaderTable);
    ASSERT_TRUE(static_cast<bool>(TOr)) << TOr.message();
    T = *TOr;
    ASSERT_FALSE(Debugger->breakAtLine(*T, "eval.c", 12));
    ASSERT_FALSE(T->resume());
    ASSERT_TRUE(T->stopped());
  }

  std::string eval(const std::string &Text) {
    Expected<std::string> Out = evalExpression(*T, Session, Text);
    EXPECT_TRUE(static_cast<bool>(Out)) << Text << ": " << Out.message();
    return Out ? *Out : std::string();
  }

  const TargetDesc *Desc = nullptr;
  std::unique_ptr<Compilation> C;
  nub::ProcessHost Host;
  nub::NubProcess *Proc = nullptr;
  std::unique_ptr<Ldb> Debugger;
  Target *T = nullptr;
  ExprSession Session;
};

TEST_P(ExprEval, Constants) {
  EXPECT_EQ(eval("1 + 2 * 3"), "7");
  EXPECT_EQ(eval("(10 - 4) / 3"), "2");
  EXPECT_EQ(eval("7 % 4"), "3");
  EXPECT_EQ(eval("-5"), "-5");
}

TEST_P(ExprEval, Variables) {
  EXPECT_EQ(eval("i"), "6");
  EXPECT_EQ(eval("n"), "7");
  EXPECT_EQ(eval("i + n"), "13");
  EXPECT_EQ(eval("n * i - 2"), "40");
}

TEST_P(ExprEval, GlobalsAndArrays) {
  EXPECT_EQ(eval("values[0]"), "10");
  EXPECT_EQ(eval("values[3]"), "40");
  EXPECT_EQ(eval("values[i - 5]"), "20");
}

TEST_P(ExprEval, Pointers) {
  EXPECT_EQ(eval("*p"), "20");
  EXPECT_EQ(eval("p[1]"), "30");
  EXPECT_EQ(eval("*(p + 2)"), "40");
  EXPECT_EQ(eval("(int)&values[2] - (int)&values[0]"), "8");
}

TEST_P(ExprEval, Structs) {
  EXPECT_EQ(eval("origin.x"), "3");
  EXPECT_EQ(eval("origin.y"), "4");
  EXPECT_EQ(eval("origin.x * origin.x + origin.y * origin.y"), "25");
}

TEST_P(ExprEval, Floats) {
  EXPECT_EQ(eval("ratio"), "2.5");
  EXPECT_EQ(eval("ratio * 2.0"), "5");
  EXPECT_EQ(eval("f"), "1.5");
  EXPECT_EQ(eval("(int)(ratio * 4.0)"), "10");
  EXPECT_EQ(eval("i / 4.0"), "1.5");
}

TEST_P(ExprEval, UnsignedSemantics) {
  EXPECT_EQ(eval("mask"), "4294967295");
  EXPECT_EQ(eval("mask + 1"), "0");
  EXPECT_EQ(eval("mask > 1"), "1");
  EXPECT_EQ(eval("mask >> 1"), "2147483647");
}

TEST_P(ExprEval, ComparisonsAndLogic) {
  EXPECT_EQ(eval("i < n"), "1");
  EXPECT_EQ(eval("i > n"), "0");
  EXPECT_EQ(eval("i == 6 && n == 7"), "1");
  EXPECT_EQ(eval("i == 0 || n == 7"), "1");
  EXPECT_EQ(eval("!i"), "0");
  EXPECT_EQ(eval("i != 6 ? 111 : 222"), "222");
}

TEST_P(ExprEval, ShiftsSigned) {
  EXPECT_EQ(eval("1 << 5"), "32");
  EXPECT_EQ(eval("-8 >> 1"), "-4");
  EXPECT_EQ(eval("i << 2"), "24");
}

TEST_P(ExprEval, AssignmentThroughExpression) {
  EXPECT_EQ(eval("i = 41"), "41");
  EXPECT_EQ(eval("i"), "41");
  EXPECT_EQ(eval("i = i + 1"), "42");
  EXPECT_EQ(eval("values[0] = 99"), "99");
  EXPECT_EQ(eval("values[0]"), "99");
  EXPECT_EQ(eval("origin.y = origin.x"), "3");
  EXPECT_EQ(eval("origin.y"), "3");
}

TEST_P(ExprEval, AssignmentVisibleToTheTarget) {
  // The store went through the wire into real target memory.
  EXPECT_EQ(eval("values[1] = 77"), "77");
  uint32_t V = 0;
  uint32_t Addr = C->Img.symbolAddr("values") + 4;
  ASSERT_TRUE(Proc->machine().loadInt(Addr, 4, V));
  EXPECT_EQ(V, 77u);
}

TEST_P(ExprEval, CompoundAssignAndIncrement) {
  EXPECT_EQ(eval("i += 4"), "10");
  EXPECT_EQ(eval("i++"), "10");
  EXPECT_EQ(eval("i"), "11");
  EXPECT_EQ(eval("--i"), "10");
}

TEST_P(ExprEval, ErrorsAreClean) {
  Expected<std::string> E1 = evalExpression(*T, Session, "nosuchvar + 1");
  ASSERT_FALSE(static_cast<bool>(E1));
  EXPECT_NE(E1.message().find("nosuchvar"), std::string::npos);

  // Procedure calls parse but are rejected by the rewriter, as in the
  // paper ("ldb cannot evaluate expressions that include procedure calls
  // into the target process").
  Expected<std::string> E2 = evalExpression(*T, Session, "main()");
  ASSERT_FALSE(static_cast<bool>(E2));
  EXPECT_NE(E2.message().find("not yet supported"), std::string::npos)
      << E2.message();
  Expected<std::string> E2b = evalExpression(*T, Session, "inspect(1, 2.0)");
  EXPECT_FALSE(static_cast<bool>(E2b));

  Expected<std::string> E3 = evalExpression(*T, Session, "1 +");
  EXPECT_FALSE(static_cast<bool>(E3));

  // The session still works after errors.
  EXPECT_EQ(eval("2 + 2"), "4");
}

TEST_P(ExprEval, WorksInCallerFrames) {
  // main's locals are not visible from inspect's frame, but constants
  // evaluate in any frame; and lookups resolve against frame 1's scope.
  Expected<std::string> N = evalExpression(*T, Session, "n", 0);
  ASSERT_TRUE(static_cast<bool>(N));
  EXPECT_EQ(*N, "7");
}

INSTANTIATE_TEST_SUITE_P(AllTargets, ExprEval,
                         ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
