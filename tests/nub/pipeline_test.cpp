//===- tests/nub/pipeline_test.cpp ---------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipelined client against a misbehaving wire. A scripted fake nub
/// on the far end of a SimLink lets each test hold, reorder, duplicate,
/// damage, or simply never send replies, so the client's window machinery
/// is exercised directly: replies match requests by sequence number no
/// matter the arrival order, stale duplicates are discarded rather than
/// matched to a later request, damaged frames lead to bounded
/// retransmission and then a clean error — never a hang — and a broken
/// link fails every outstanding request at once. The frame reader's
/// oversized-declaration drain path gets direct unit coverage, and one
/// end-to-end test runs a real nub over a lossy link to show the whole
/// stack recovers.
///
//===----------------------------------------------------------------------===//

#include "nub/host.h"
#include "nub/protocol.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

using namespace ldb;
using namespace ldb::mem;
using namespace ldb::nub;
using namespace ldb::target;

namespace {

/// The deterministic fill pattern the fake nub serves for a fetch of
/// [Addr, Addr+Len): one byte per address, so tests can verify a reply
/// landed in the right caller's buffer.
uint8_t patternAt(uint32_t Addr) { return static_cast<uint8_t>(Addr * 7 + 3); }

/// A scripted stand-in for the nub on the far end of a link. Every whole
/// frame that arrives is recorded in Seen and handed to OnRequest, which
/// each test scripts: serve it, hold it, damage the reply, or ignore it.
struct FakeNub {
  explicit FakeNub(std::shared_ptr<ChannelEnd> E) : End(std::move(E)) {
    End->setReadable([this] { drain(); });
  }

  void drain() {
    for (;;) {
      MsgReader Msg(MsgKind::Ack, {});
      FrameStatus St = readFrame(*End, Msg);
      if (St == FrameStatus::NoFrame)
        break;
      if (St != FrameStatus::Ok)
        continue;
      Seen.emplace_back(Msg.kind(), Msg.seq());
      if (OnRequest)
        OnRequest(Msg);
    }
  }

  void send(const MsgWriter &W, uint32_t Seq) {
    std::vector<uint8_t> F = W.frame(Seq);
    End->write(F.data(), F.size());
  }

  void sendRaw(const std::vector<uint8_t> &F) {
    End->write(F.data(), F.size());
  }

  /// Serves one FetchBlock with the pattern bytes, one StoreBlock with an
  /// Ack. The default OnRequest for tests that just want a working peer.
  void serve(MsgReader &Msg) {
    if (Msg.kind() == MsgKind::StoreBlock) {
      send(MsgWriter(MsgKind::Ack), Msg.seq());
      return;
    }
    if (Msg.kind() != MsgKind::FetchBlock)
      return;
    uint8_t Space;
    uint32_t Addr = 0, Len = 0;
    ASSERT_TRUE(Msg.u8(Space) && Msg.u32(Addr) && Msg.u32(Len));
    std::vector<uint8_t> Bytes(Len);
    for (uint32_t I = 0; I < Len; ++I)
      Bytes[I] = patternAt(Addr + I);
    MsgWriter W(MsgKind::FetchBlockReply);
    W.raw(Bytes.data(), Bytes.size());
    send(W, Msg.seq());
  }

  unsigned count(MsgKind K) const {
    unsigned N = 0;
    for (const auto &[Kind, Seq] : Seen)
      if (Kind == K)
        ++N;
    return N;
  }

  std::shared_ptr<ChannelEnd> End;
  std::vector<std::pair<MsgKind, uint32_t>> Seen;
  std::function<void(MsgReader &)> OnRequest;
};

/// A client wired to a FakeNub over a SimLink, handshake skipped (the
/// RemoteEndpoint surface under test does not need the Welcome).
struct Rig {
  explicit Rig(const SimParams &P, unsigned Window = 8) {
    auto [A, B] = SimLink::makePair(P);
    Client = std::make_unique<NubClient>(A);
    Client->setWindow(Window);
    Client->setStats(&Stats);
    Nub = std::make_unique<FakeNub>(B);
  }

  std::unique_ptr<NubClient> Client;
  std::unique_ptr<FakeNub> Nub;
  TransportStats Stats;
};

SimParams lowLatency() {
  SimParams P;
  P.LatencyNs = 1000;
  return P;
}

TEST(SimLink, TimingIsDeterministicForASeed) {
  auto arrivals = [](uint64_t Seed) {
    SimParams P;
    P.LatencyNs = 200'000;
    P.JitterNs = 50'000;
    P.BytesPerSec = 10'000'000;
    P.Seed = Seed;
    auto [A, B] = SimLink::makePair(P);
    std::vector<uint8_t> Msg(100, 0xAB);
    std::vector<uint64_t> Times;
    for (int I = 0; I < 5; ++I)
      A->write(Msg.data(), Msg.size());
    while (B->pump())
      Times.push_back(B->nowNs());
    return Times;
  };
  std::vector<uint64_t> First = arrivals(7), Again = arrivals(7);
  ASSERT_EQ(First.size(), 5u);
  EXPECT_EQ(First, Again) << "same seed, same virtual arrival times";
  // Each message spends at least the latency plus its serialization time.
  for (uint64_t T : First)
    EXPECT_GE(T, 200'000u + 10'000u);
  EXPECT_NE(arrivals(8), First) << "jitter depends on the seed";
}

TEST(Pipeline, RepliesMatchOutOfOrder) {
  Rig R(lowLatency());
  struct Held {
    uint32_t Seq, Addr, Len;
  };
  std::vector<Held> HeldReqs;
  // Hold both fetches, then answer the *second* first: correct routing
  // must come from sequence numbers, not arrival order.
  R.Nub->OnRequest = [&](MsgReader &M) {
    uint8_t Space;
    uint32_t Addr = 0, Len = 0;
    ASSERT_TRUE(M.u8(Space) && M.u32(Addr) && M.u32(Len));
    HeldReqs.push_back({M.seq(), Addr, Len});
    if (HeldReqs.size() < 2)
      return;
    for (auto It = HeldReqs.rbegin(); It != HeldReqs.rend(); ++It) {
      std::vector<uint8_t> Bytes(It->Len);
      for (uint32_t I = 0; I < It->Len; ++I)
        Bytes[I] = patternAt(It->Addr + I);
      MsgWriter W(MsgKind::FetchBlockReply);
      W.raw(Bytes.data(), Bytes.size());
      R.Nub->send(W, It->Seq);
    }
  };
  uint8_t BufA[8] = {0}, BufB[8] = {0};
  int Errors = 0;
  R.Client->postFetchBlock('d', 0x100, 8, BufA, [&](Error E) {
    if (E)
      ++Errors;
  });
  R.Client->postFetchBlock('d', 0x200, 8, BufB, [&](Error E) {
    if (E)
      ++Errors;
  });
  Error E = R.Client->awaitPosted();
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(Errors, 0);
  for (uint32_t I = 0; I < 8; ++I) {
    EXPECT_EQ(BufA[I], patternAt(0x100 + I));
    EXPECT_EQ(BufB[I], patternAt(0x200 + I));
  }
  EXPECT_EQ(R.Stats.StaleReplies, 0u);
}

TEST(Pipeline, DuplicateReplyIsStaleNeverRematched) {
  Rig R(lowLatency());
  bool Duplicate = true;
  R.Nub->OnRequest = [&](MsgReader &M) {
    MsgReader Copy = M;
    R.Nub->serve(M);
    if (Duplicate) {
      // A late duplicate of the same sequence number, right behind the
      // real reply.
      Duplicate = false;
      R.Nub->serve(Copy);
    }
  };
  uint8_t Buf[4] = {0};
  Error E = R.Client->remoteFetchBlock('d', 0x40, 4, Buf);
  ASSERT_FALSE(E) << E.message();
  // The duplicate is still in flight; the next exchange drains it. It
  // must be discarded — in particular never matched to this new request,
  // whose reply carries different bytes.
  uint8_t Buf2[4] = {0};
  E = R.Client->remoteFetchBlock('d', 0x80, 4, Buf2);
  ASSERT_FALSE(E) << E.message();
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(Buf2[I], patternAt(0x80 + I));
  EXPECT_EQ(R.Stats.StaleReplies, 1u);
}

TEST(Pipeline, CorruptReportTriggersSafeResend) {
  Rig R(lowLatency());
  bool RefuseOnce = true;
  R.Nub->OnRequest = [&](MsgReader &M) {
    if (RefuseOnce) {
      // The nub saw a damaged request frame: it cannot act, so it asks
      // for a resend. Any request is safe to replay after this.
      RefuseOnce = false;
      MsgWriter W(MsgKind::Corrupt);
      W.str("checksum mismatch");
      R.Nub->send(W, M.seq());
      return;
    }
    R.Nub->serve(M);
  };
  uint8_t Buf[4] = {0};
  Error E = R.Client->remoteFetchBlock('d', 0x40, 4, Buf);
  ASSERT_FALSE(E) << E.message();
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(Buf[I], patternAt(0x40 + I));
  EXPECT_EQ(R.Stats.Retries, 1u);
  EXPECT_EQ(R.Nub->count(MsgKind::FetchBlock), 2u);
}

TEST(Pipeline, GarbledReplyTimesOutAndRetransmits) {
  Rig R(lowLatency());
  R.Client->setRequestTimeoutNs(1'000'000);
  bool DamageOnce = true;
  R.Nub->OnRequest = [&](MsgReader &M) {
    if (DamageOnce) {
      DamageOnce = false;
      MsgWriter W(MsgKind::FetchBlockReply);
      uint8_t Junk[4] = {1, 2, 3, 4};
      W.raw(Junk, sizeof(Junk));
      std::vector<uint8_t> F = W.frame(M.seq());
      F[FrameHeaderSize] ^= 0xFF; // damage the payload in flight
      R.Nub->sendRaw(F);
      return;
    }
    R.Nub->serve(M);
  };
  uint8_t Buf[4] = {0};
  Error E = R.Client->remoteFetchBlock('d', 0x40, 4, Buf);
  ASSERT_FALSE(E) << E.message();
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(Buf[I], patternAt(0x40 + I));
  // The damaged reply was silently lost; its request timed out once and
  // the retransmission was served.
  EXPECT_EQ(R.Stats.Timeouts, 1u);
  EXPECT_EQ(R.Stats.Retries, 1u);
}

TEST(Pipeline, UnansweredRequestFailsCleanlyAfterBoundedTries) {
  Rig R(lowLatency());
  R.Client->setRequestTimeoutNs(1'000'000);
  // No OnRequest: the nub swallows every request without answering.
  uint8_t Buf[4] = {0};
  Error E = R.Client->remoteFetchBlock('d', 0x40, 4, Buf);
  ASSERT_TRUE(static_cast<bool>(E)) << "a silent peer must produce an error";
  EXPECT_NE(E.message().find("attempts"), std::string::npos) << E.message();
  EXPECT_EQ(R.Nub->count(MsgKind::FetchBlock), R.Client->maxTries());
  EXPECT_EQ(R.Stats.Timeouts, uint64_t(R.Client->maxTries()));
  EXPECT_EQ(R.Stats.Retries, uint64_t(R.Client->maxTries()) - 1);
}

TEST(Pipeline, NonIdempotentRequestNeverRetransmits) {
  Rig R(lowLatency());
  R.Client->setRequestTimeoutNs(1'000'000);
  // A lost Continue reply may mean the nub already resumed the target;
  // continuing twice is worse than a clean error, so one timeout ends it.
  StopInfo Stop;
  Error E = R.Client->doContinue(Stop);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(R.Nub->count(MsgKind::Continue), 1u);
  EXPECT_EQ(R.Stats.Retries, 0u);
  EXPECT_EQ(R.Stats.Timeouts, 1u);
}

TEST(Pipeline, MidPipelineBreakFailsEveryOutstandingRequest) {
  Rig R(lowLatency());
  uint8_t BufA[4], BufB[4], BufC[4];
  int Failed = 0, Succeeded = 0;
  auto Done = [&](Error E) {
    if (E)
      ++Failed;
    else
      ++Succeeded;
  };
  R.Client->postFetchBlock('d', 0x10, 4, BufA, Done);
  R.Client->postFetchBlock('d', 0x20, 4, BufB, Done);
  R.Client->postFetchBlock('d', 0x30, 4, BufC, Done);
  // The link dies with all three requests in flight.
  R.Client->crash();
  Error E = R.Client->awaitPosted();
  EXPECT_TRUE(static_cast<bool>(E)) << "await must report the broken link";
  EXPECT_EQ(Failed, 3) << "every outstanding request resolves, with an error";
  EXPECT_EQ(Succeeded, 0);
  // And the client stays cleanly failed, it does not hang on later use.
  uint8_t Buf[4];
  EXPECT_TRUE(static_cast<bool>(R.Client->remoteFetchBlock('d', 0, 4, Buf)));
}

TEST(Pipeline, WindowBoundsInFlightDepth) {
  Rig R(lowLatency(), /*Window=*/4);
  R.Nub->OnRequest = [&](MsgReader &M) { R.Nub->serve(M); };
  std::vector<std::array<uint8_t, 4>> Bufs(12);
  for (uint32_t I = 0; I < 12; ++I)
    R.Client->postFetchBlock('d', 0x100 + 4 * I, 4, Bufs[I].data(), nullptr);
  Error E = R.Client->awaitPosted();
  ASSERT_FALSE(E) << E.message();
  for (uint32_t I = 0; I < 12; ++I)
    for (uint32_t J = 0; J < 4; ++J)
      EXPECT_EQ(Bufs[I][J], patternAt(0x100 + 4 * I + J));
  EXPECT_EQ(R.Stats.Posted, 12u);
  EXPECT_LE(R.Stats.MaxInFlight, 4u);
  EXPECT_GE(R.Stats.MaxInFlight, 2u) << "the window should actually pipeline";
}

TEST(Pipeline, QueuedStoresCombineAndFlushBeforeFetch) {
  Rig R(lowLatency());
  R.Nub->OnRequest = [&](MsgReader &M) { R.Nub->serve(M); };
  uint8_t Bytes[4] = {1, 2, 3, 4};
  R.Client->postStoreBlock('d', 0x100, 4, Bytes, nullptr);
  R.Client->postStoreBlock('d', 0x104, 4, Bytes, nullptr); // contiguous
  uint8_t Buf[4];
  R.Client->postFetchBlock('d', 0x100, 4, Buf, nullptr);
  Error E = R.Client->awaitPosted();
  ASSERT_FALSE(E) << E.message();
  // The two stores merged into one frame, and it reached the nub before
  // the fetch that might read what they wrote.
  EXPECT_EQ(R.Stats.StoresCombined, 1u);
  ASSERT_EQ(R.Nub->Seen.size(), 2u);
  EXPECT_EQ(R.Nub->Seen[0].first, MsgKind::StoreBlock);
  EXPECT_EQ(R.Nub->Seen[1].first, MsgKind::FetchBlock);
}

TEST(Pipeline, SerialWindowDegradesPostsToSynchronous) {
  Rig R(lowLatency(), /*Window=*/1);
  R.Nub->OnRequest = [&](MsgReader &M) { R.Nub->serve(M); };
  uint8_t Buf[4] = {0};
  bool Completed = false;
  R.Client->postFetchBlock('d', 0x40, 4, Buf, [&](Error E) {
    EXPECT_FALSE(E) << E.message();
    Completed = true;
  });
  // With a window of one the post completed before returning — the
  // serial baseline the benches compare against.
  EXPECT_TRUE(Completed);
  for (uint32_t I = 0; I < 4; ++I)
    EXPECT_EQ(Buf[I], patternAt(0x40 + I));
  EXPECT_LE(R.Stats.MaxInFlight, 1u);
}

//===----------------------------------------------------------------------===//
// readFrame damage handling, unit level.
//===----------------------------------------------------------------------===//

TEST(ReadFrame, OversizedDeclarationIsDrainedAndReported) {
  auto [A, B] = LocalLink::makePair();
  // Hand-build a header declaring an impossible payload, followed by a
  // little of that "payload" (in a real stream: whatever arrived before
  // the receiver noticed).
  MsgWriter W(MsgKind::FetchBlockReply);
  std::vector<uint8_t> Frame = W.frame(77);
  Frame[5] = 0xFF; // length field: MaxFramePayload + lots
  Frame[6] = 0xFF;
  Frame[7] = 0xFF;
  Frame[8] = 0x7F;
  std::vector<uint8_t> Garbage(100, 0xEE);
  Frame.insert(Frame.end(), Garbage.begin(), Garbage.end());
  A->write(Frame.data(), Frame.size());

  MsgReader Out(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Out), FrameStatus::Oversized);
  // Kind and sequence survive so the receiver can answer (Nak or error).
  EXPECT_EQ(Out.kind(), MsgKind::FetchBlockReply);
  EXPECT_EQ(Out.seq(), 77u);
  // Every byte of the bogus payload was drained, nothing was allocated,
  // and the stream is resynchronized: a good frame that arrives next is
  // read normally.
  EXPECT_EQ(B->available(), 0u);
  MsgWriter Good(MsgKind::Ack);
  std::vector<uint8_t> GoodFrame = Good.frame(78);
  A->write(GoodFrame.data(), GoodFrame.size());
  EXPECT_EQ(readFrame(*B, Out), FrameStatus::Ok);
  EXPECT_EQ(Out.kind(), MsgKind::Ack);
  EXPECT_EQ(Out.seq(), 78u);
}

TEST(ReadFrame, OversizedReplyFailsThePipelineCleanly) {
  Rig R(lowLatency());
  R.Nub->OnRequest = [&](MsgReader &M) {
    MsgWriter W(MsgKind::FetchBlockReply);
    std::vector<uint8_t> F = W.frame(M.seq());
    F[5] = F[6] = F[7] = 0xFF; // declared length far past MaxFramePayload
    F[8] = 0x7F;
    R.Nub->sendRaw(F);
  };
  uint8_t Buf[4];
  Error E = R.Client->remoteFetchBlock('d', 0x40, 4, Buf);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("oversized"), std::string::npos) << E.message();
}

TEST(ReadFrame, GarbledFrameIsConsumedWhole) {
  auto [A, B] = LocalLink::makePair();
  MsgWriter W(MsgKind::FetchBlockReply);
  uint8_t Payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  W.raw(Payload, sizeof(Payload));
  std::vector<uint8_t> Frame = W.frame(42);
  Frame[FrameHeaderSize + 3] ^= 0x40; // one flipped bit in flight
  A->write(Frame.data(), Frame.size());
  MsgReader Out(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Out), FrameStatus::Garbled);
  EXPECT_EQ(Out.kind(), MsgKind::FetchBlockReply);
  EXPECT_EQ(Out.seq(), 42u);
  EXPECT_EQ(B->available(), 0u) << "the stream stays framed";
}

TEST(ReadFrame, PartialHeaderIsNotConsumed) {
  auto [A, B] = LocalLink::makePair();
  uint8_t Half[6] = {1, 2, 3, 4, 5, 6};
  A->write(Half, sizeof(Half));
  MsgReader Out(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Out), FrameStatus::NoFrame);
  EXPECT_EQ(B->available(), sizeof(Half)) << "nothing consumed";
}

//===----------------------------------------------------------------------===//
// End to end: a real nub over a lossy simulated link.
//===----------------------------------------------------------------------===//

TEST(Pipeline, RealNubSurvivesDropsAndGarblesEndToEnd) {
  const TargetDesc &Desc = *allTargets().front();
  ProcessHost Host;
  NubProcess &Proc = Host.createProcess("t1", Desc);
  // r1 = 5; exit(r1)
  unsigned ArgReg = Desc.FirstArgReg;
  std::vector<Instr> Program = {
      Instr::i(Op::AddI, ArgReg, 0, 5),
      Instr::i(Op::Sys, 0, ArgReg, static_cast<int32_t>(Syscall::Exit)),
  };
  uint32_t Addr = 0x1000;
  for (const Instr &In : Program) {
    ASSERT_TRUE(Proc.machine().storeInt(Addr, 4, Desc.Enc.encode(In)));
    Addr += 4;
  }
  Proc.enter(0x1000);

  SimParams P;
  P.LatencyNs = 100'000;
  P.Seed = 11;
  P.DropEvery = 7;   // lose every 7th message outright
  P.GarbleEvery = 5; // and damage every 5th
  TransportStats Stats;
  auto COr = Host.connect("t1", &Stats, &P);
  ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
  std::unique_ptr<NubClient> Client = COr.take();
  Client->setRequestTimeoutNs(2'000'000);

  // Pattern-fill a stretch of memory through the lossy wire, then read
  // it all back, pipelined. Every byte must come back exact: loss and
  // damage may cost retransmissions, never correctness.
  std::vector<uint8_t> Want(512);
  for (size_t I = 0; I < Want.size(); ++I)
    Want[I] = static_cast<uint8_t>(I * 13 + 1);
  ASSERT_FALSE(Client->remoteStoreBlock('d', 0x2000,
                                        static_cast<uint32_t>(Want.size()),
                                        Want.data()));
  std::vector<uint8_t> Got(Want.size(), 0);
  for (uint32_t I = 0; I < 8; ++I)
    Client->postFetchBlock('d', 0x2000 + 64 * I, 64, Got.data() + 64 * I,
                           nullptr);
  Error E = Client->awaitPosted();
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(Got, Want);
  EXPECT_GT(Stats.LinkDrops + Stats.LinkGarbles, 0u)
      << "the fault injection must actually have fired";
  EXPECT_GT(Stats.Retries, 0u) << "recovery, not luck";
}

} // namespace
