//===- tests/nub/nub_test.cpp --------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nub + protocol tests across all four targets: the little-endian wire
/// protocol works on every target byte order (paper Sec 4.2), breakpoints
/// are pure fetch/store from the nub's point of view, state survives
/// debugger crashes, and the context is readable through the wire using
/// the per-target layout.
///
//===----------------------------------------------------------------------===//

#include "mem/memories.h"
#include "nub/host.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ldb;
using namespace ldb::mem;
using namespace ldb::nub;
using namespace ldb::target;

namespace {

constexpr uint32_t TextBase = 0x1000;

/// counter: r1 = 5; nop (stopping point); r1 = r1 + 1; exit(r1)
std::vector<Instr> counterProgram(unsigned ArgReg) {
  return {
      Instr::i(Op::AddI, 1, 0, 5),
      Instr::nop(),
      Instr::i(Op::AddI, 1, 1, 1),
      Instr::i(Op::AddI, ArgReg, 1, 0),
      Instr::i(Op::Sys, 0, ArgReg, static_cast<int32_t>(Syscall::Exit)),
  };
}

class NubTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  void SetUp() override {
    Desc = GetParam();
    Proc = &Host.createProcess("t1", *Desc);
    loadProgram(counterProgram(argReg()));
  }

  unsigned argReg() const { return Desc->FirstArgReg; }

  void loadProgram(const std::vector<Instr> &Program) {
    uint32_t Addr = TextBase;
    for (const Instr &In : Program) {
      ASSERT_TRUE(Proc->machine().storeInt(Addr, 4, Desc->Enc.encode(In)));
      Addr += 4;
    }
  }

  std::unique_ptr<NubClient> connect() {
    auto C = Host.connect("t1");
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    return C ? C.take() : nullptr;
  }

  const TargetDesc *Desc = nullptr;
  ProcessHost Host;
  NubProcess *Proc = nullptr;
};

TEST_P(NubTest, HandshakeAnnouncesArchitecture) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  EXPECT_EQ(Client->archName(), Desc->Name);
}

TEST_P(NubTest, PauseSignalBeforeMain) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_TRUE(Client->pendingStop().has_value());
  EXPECT_EQ(Client->pendingStop()->Signo, SigPause);
  EXPECT_EQ(Client->pendingStop()->ContextAddr, Proc->contextAddr());
}

TEST_P(NubTest, ContinueRunsToExit) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));
  EXPECT_TRUE(Stop.Exited);
  EXPECT_EQ(Stop.ExitStatus, 6u);
}

TEST_P(NubTest, FetchAndStoreThroughWire) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  // Store 0x11223344 at 0x2000 through the wire, read it back in pieces.
  ASSERT_FALSE(Client->remoteStoreInt('d', 0x2000, 4, 0x11223344));
  uint64_t V = 0;
  ASSERT_FALSE(Client->remoteFetchInt('d', 0x2000, 4, V));
  EXPECT_EQ(V, 0x11223344u);
  // Value semantics: a 2-byte fetch at the word's address returns the
  // target's idea of the halfword there, which *does* depend on target
  // byte order — the wire carries values, the nub reads target memory.
  ASSERT_FALSE(Client->remoteFetchInt('d', 0x2000, 2, V));
  EXPECT_EQ(V, Desc->isBigEndian() ? 0x1122u : 0x3344u);
}

TEST_P(NubTest, RegisterSpaceRefused) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  uint64_t V;
  Error E = Client->remoteFetchInt('r', 1, 4, V);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("code and data"), std::string::npos);
}

TEST_P(NubTest, BadAddressNaks) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  uint64_t V;
  EXPECT_TRUE(static_cast<bool>(
      Client->remoteFetchInt('d', 0xfffffff0, 4, V)));
}

TEST_P(NubTest, FloatRoundTripThroughWire) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(Client->remoteStoreFloat('d', 0x2000, 8, -2.5L));
  long double V = 0;
  ASSERT_FALSE(Client->remoteFetchFloat('d', 0x2000, 8, V));
  EXPECT_EQ(V, -2.5L);
  ASSERT_FALSE(Client->remoteStoreFloat('d', 0x2010, 4, 1.25L));
  ASSERT_FALSE(Client->remoteFetchFloat('d', 0x2010, 4, V));
  EXPECT_EQ(V, 1.25L);
}

TEST_P(NubTest, F80OnlyWhereSupported) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  Error E = Client->remoteStoreFloat('d', 0x2000, 10, 3.0L);
  if (Desc->HasF80) {
    EXPECT_FALSE(E);
    long double V = 0;
    EXPECT_FALSE(Client->remoteFetchFloat('d', 0x2000, 10, V));
    EXPECT_EQ(V, 3.0L);
  } else {
    EXPECT_TRUE(static_cast<bool>(E));
  }
}

TEST_P(NubTest, BreakpointByStoreOnly) {
  // The debugger's whole breakpoint mechanism, nub-side: fetch the no-op
  // word, store the break word, continue, observe SIGTRAP, restore or
  // skip, continue again (paper Sec 3 and 6).
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);

  uint32_t StopAddr = TextBase + 4; // the no-op
  uint64_t Orig = 0;
  ASSERT_FALSE(Client->remoteFetchInt('c', StopAddr, 4, Orig));
  EXPECT_EQ(Orig, Desc->nopWord());
  ASSERT_FALSE(Client->remoteStoreInt('c', StopAddr, 4, Desc->breakWord()));

  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));
  ASSERT_FALSE(Stop.Exited);
  EXPECT_EQ(Stop.Signo, SigTrap);

  // Read the pc out of the context through the wire, using the target's
  // machine-dependent context layout.
  ContextLayout L = nubMdFor(*Desc).layout(*Desc);
  uint64_t Pc = 0;
  ASSERT_FALSE(
      Client->remoteFetchInt('d', Stop.ContextAddr + L.PcOff, 4, Pc));
  EXPECT_EQ(Pc, StopAddr);

  // Resume by skipping the no-op: advance the saved pc by 4 and continue.
  ASSERT_FALSE(Client->remoteStoreInt('d', Stop.ContextAddr + L.PcOff, 4,
                                      Pc + 4));
  ASSERT_FALSE(Client->doContinue(Stop));
  EXPECT_TRUE(Stop.Exited);
  EXPECT_EQ(Stop.ExitStatus, 6u);
}

TEST_P(NubTest, ContextHoldsRegisters) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(
      Client->remoteStoreInt('c', TextBase + 4, 4, Desc->breakWord()));
  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));
  ASSERT_EQ(Stop.Signo, SigTrap);

  ContextLayout L = nubMdFor(*Desc).layout(*Desc);
  uint64_t R1 = 0;
  ASSERT_FALSE(Client->remoteFetchInt(
      'd', L.gprAddr(Stop.ContextAddr, 1, Desc->NumGpr), 4, R1));
  EXPECT_EQ(R1, 5u); // r1 was set to 5 before the stopping point

  // Assignment to a register variable: write the context, continue, and
  // the program exits with the modified value + 1.
  ASSERT_FALSE(Client->remoteStoreInt(
      'd', L.gprAddr(Stop.ContextAddr, 1, Desc->NumGpr), 4, 41));
  uint64_t Pc = 0;
  ASSERT_FALSE(
      Client->remoteFetchInt('d', Stop.ContextAddr + L.PcOff, 4, Pc));
  ASSERT_FALSE(Client->remoteStoreInt('d', Stop.ContextAddr + L.PcOff, 4,
                                      Pc + 4));
  ASSERT_FALSE(Client->doContinue(Stop));
  EXPECT_TRUE(Stop.Exited);
  EXPECT_EQ(Stop.ExitStatus, 42u);
}

TEST_P(NubTest, WireMemoryIntegration) {
  // A WireMemory + alias DAG reads a register straight out of the context
  // (the paper's Fig 4 walkthrough, against a live nub).
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(
      Client->remoteStoreInt('c', TextBase + 4, 4, Desc->breakWord()));
  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));

  ContextLayout L = nubMdFor(*Desc).layout(*Desc);
  auto Wire = std::make_shared<WireMemory>(*Client);
  auto Alias = std::make_shared<AliasMemory>(Wire);
  Alias->addAlias(SpGpr, 1,
                  Location::absolute(SpData, L.gprAddr(Stop.ContextAddr, 1,
                                                       Desc->NumGpr)));
  auto Reg = std::make_shared<RegisterMemory>(Alias, "rfx");
  auto Joined = std::make_shared<JoinedMemory>();
  Joined->join("rfx", Reg);
  Joined->join("cd", Wire);

  uint64_t V = 0;
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpGpr, 1), 4, V));
  EXPECT_EQ(V, 5u);
  // Subword register fetch: identical result on both byte orders.
  ASSERT_FALSE(Joined->fetchInt(Location::absolute(SpGpr, 1), 1, V));
  EXPECT_EQ(V, 5u);
}

TEST_P(NubTest, DetachPreservesStateForReattach) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(Client->detach());
  EXPECT_FALSE(Proc->attached());

  auto Client2 = connect();
  ASSERT_TRUE(Client2);
  ASSERT_TRUE(Client2->pendingStop().has_value());
  EXPECT_EQ(Client2->pendingStop()->Signo, SigPause);
  StopInfo Stop;
  ASSERT_FALSE(Client2->doContinue(Stop));
  EXPECT_TRUE(Stop.Exited);
}

TEST_P(NubTest, DebuggerCrashPreservesState) {
  // "Normally, when a connection is broken, even by a debugger crash, the
  // nub preserves the state of the target program and waits for a new
  // connection from another instance of ldb."
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(
      Client->remoteStoreInt('c', TextBase + 4, 4, Desc->breakWord()));
  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));
  ASSERT_EQ(Stop.Signo, SigTrap);

  Client->crash(); // no Detach message, transport just dies

  auto Client2 = connect();
  ASSERT_TRUE(Client2);
  // The new debugger sees the preserved stop state.
  ASSERT_TRUE(Client2->pendingStop().has_value());
  EXPECT_EQ(Client2->pendingStop()->Signo, SigTrap);
  ContextLayout L = nubMdFor(*Desc).layout(*Desc);
  uint64_t R1 = 0;
  ASSERT_FALSE(Client2->remoteFetchInt(
      'd', L.gprAddr(Client2->pendingStop()->ContextAddr, 1, Desc->NumGpr),
      4, R1));
  EXPECT_EQ(R1, 5u);
}

TEST_P(NubTest, SequentialReattachChainsThroughProcessHost) {
  // The rendezvous supports any number of *sequential* connections to one
  // process: each debugger's stores are the next debugger's preserved
  // state, whether the previous connection died politely or by crash.
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(Client->remoteStoreInt('d', 0x3000, 4, 0xaa550001));
  ASSERT_FALSE(Client->detach());

  auto Client2 = connect();
  ASSERT_TRUE(Client2);
  uint64_t V = 0;
  ASSERT_FALSE(Client2->remoteFetchInt('d', 0x3000, 4, V));
  EXPECT_EQ(V, 0xaa550001u);
  ASSERT_FALSE(Client2->remoteStoreInt('d', 0x3000, 4, 0xaa550002));
  Client2->crash(); // transport dies with no Detach

  auto Client3 = connect();
  ASSERT_TRUE(Client3);
  // The pre-main pause is still the pending stop: nobody ran the process.
  ASSERT_TRUE(Client3->pendingStop().has_value());
  EXPECT_EQ(Client3->pendingStop()->Signo, SigPause);
  ASSERT_FALSE(Client3->remoteFetchInt('d', 0x3000, 4, V));
  EXPECT_EQ(V, 0xaa550002u);
  // The chain of reattaches never disturbed the program: it still runs
  // to its normal exit.
  StopInfo Stop;
  ASSERT_FALSE(Client3->doContinue(Stop));
  EXPECT_TRUE(Stop.Exited);
  EXPECT_EQ(Stop.ExitStatus, 6u);
}

TEST_P(NubTest, FaultingProcessWaitsForDebugger) {
  // A process that faults with no debugger attached keeps its state and
  // waits; the target program need not be a child of the debugger.
  std::vector<Instr> Faulty = {
      Instr::i(Op::AddI, 1, 0, 10),
      Instr::r(Op::Div, 1, 1, 0), // divide by zero
  };
  loadProgram(Faulty);
  Proc->enter(TextBase);
  Proc->continueUnattached();
  EXPECT_EQ(Proc->state(), NubProcess::State::Stopped);

  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_TRUE(Client->pendingStop().has_value());
  EXPECT_EQ(Client->pendingStop()->Signo, SigFpe);
}

TEST_P(NubTest, KillTerminates) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(Client->kill());
  EXPECT_EQ(Proc->state(), NubProcess::State::Exited);
  StopInfo Stop;
  EXPECT_TRUE(static_cast<bool>(Client->doContinue(Stop)));
}

TEST_P(NubTest, StepBudgetStopsRunawayProcess) {
  std::vector<Instr> Spin = {
      Instr::j(Op::J, TextBase / 4), // tight infinite loop
  };
  loadProgram(Spin);
  Proc->enter(TextBase);
  Proc->StepBudget = 10000;
  auto Client = connect();
  ASSERT_TRUE(Client);
  StopInfo Stop;
  ASSERT_FALSE(Client->doContinue(Stop));
  EXPECT_FALSE(Stop.Exited);
  EXPECT_EQ(Stop.Signo, NubProcess::SigXCpu);
}

TEST_P(NubTest, BlockFetchCarriesRawTargetBytes) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  ASSERT_FALSE(Client->remoteStoreInt('d', 0x2000, 4, 0x11223344));
  ASSERT_FALSE(Client->remoteStoreInt('d', 0x2004, 4, 0x55667788));
  uint8_t Block[8] = {0};
  ASSERT_FALSE(Client->remoteFetchBlock('d', 0x2000, 8, Block));
  // Blocks are raw target-order bytes — what the nub's memcpy sees — so
  // unpacking with the target's order recovers the stored values.
  EXPECT_EQ(unpackInt(Block, 4, Desc->Order), 0x11223344u);
  EXPECT_EQ(unpackInt(Block + 4, 4, Desc->Order), 0x55667788u);
}

TEST_P(NubTest, BlockStoreMatchesWordStores) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  uint8_t Block[8];
  packInt(0xcafebabe, Block, 4, Desc->Order);
  packInt(0x0badf00d, Block + 4, 4, Desc->Order);
  ASSERT_FALSE(Client->remoteStoreBlock('d', 0x3000, 8, Block));
  uint64_t V = 0;
  ASSERT_FALSE(Client->remoteFetchInt('d', 0x3000, 4, V));
  EXPECT_EQ(V, 0xcafebabeu);
  ASSERT_FALSE(Client->remoteFetchInt('d', 0x3004, 4, V));
  EXPECT_EQ(V, 0x0badf00du);
}

TEST_P(NubTest, BlockRefusesRegisterSpaceAndBadAddress) {
  Proc->enter(TextBase);
  auto Client = connect();
  ASSERT_TRUE(Client);
  uint8_t Block[4] = {0};
  Error E = Client->remoteFetchBlock('r', 0, 4, Block);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("code and data"), std::string::npos);
  EXPECT_TRUE(
      static_cast<bool>(Client->remoteFetchBlock('d', 0xfffffff0, 16, Block)));
  EXPECT_TRUE(static_cast<bool>(
      Client->remoteStoreBlock('d', 0xfffffff0, 4, Block)));
}

INSTANTIATE_TEST_SUITE_P(AllTargets, NubTest, ::testing::ValuesIn(allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

TEST(NubFraming, OversizedFrameNakedAndConnectionSurvives) {
  // A frame declaring a huge payload is refused with a Nak and never
  // allocated; the nub keeps serving afterwards.
  ProcessHost Host;
  NubProcess &P = Host.createProcess("t1", *targetByName("zmips"));
  ASSERT_TRUE(
      P.machine().storeInt(TextBase, 4, P.desc().Enc.encode(Instr::nop())));
  P.enter(TextBase);
  auto [DebuggerEnd, NubEnd] = LocalLink::makePair();
  P.attach(NubEnd);
  // Drain the Welcome and Stopped notifications.
  uint8_t Sink[256];
  while (DebuggerEnd->available())
    DebuggerEnd->read(Sink, std::min<size_t>(DebuggerEnd->available(), 256));

  uint8_t Bad[FrameHeaderSize] = {0};
  Bad[0] = static_cast<uint8_t>(MsgKind::FetchInt);
  packInt(64u << 20, Bad + 5, 4, ByteOrder::Little);
  DebuggerEnd->write(Bad, FrameHeaderSize);
  MsgReader Reply(MsgKind::Ack, {});
  ASSERT_EQ(readFrame(*DebuggerEnd, Reply), FrameStatus::Ok);
  EXPECT_EQ(Reply.kind(), MsgKind::Nak);
  std::string Reason;
  ASSERT_TRUE(Reply.str(Reason));
  EXPECT_NE(Reason.find("oversized"), std::string::npos);

  // Still alive: a well-formed request gets a real answer.
  NubClient Client(DebuggerEnd);
  uint64_t V = 0;
  ASSERT_FALSE(Client.remoteFetchInt('c', TextBase, 4, V));
  EXPECT_EQ(V, targetByName("zmips")->nopWord());
}

TEST(NubFraming, BlockLargerThanMessageCapNaked) {
  // The client splits big transfers, but a hand-rolled request past the
  // cap must be refused, not served.
  ProcessHost Host;
  NubProcess &P = Host.createProcess("t1", *targetByName("zmips"));
  P.enter(TextBase);
  auto [DebuggerEnd, NubEnd] = LocalLink::makePair();
  P.attach(NubEnd);
  uint8_t Sink[256];
  while (DebuggerEnd->available())
    DebuggerEnd->read(Sink, std::min<size_t>(DebuggerEnd->available(), 256));

  std::vector<uint8_t> Req = MsgWriter(MsgKind::FetchBlock)
                                 .u8('d')
                                 .u32(0)
                                 .u32(MaxBlockLen + 1)
                                 .frame();
  DebuggerEnd->write(Req.data(), Req.size());
  MsgReader Reply(MsgKind::Ack, {});
  ASSERT_EQ(readFrame(*DebuggerEnd, Reply), FrameStatus::Ok);
  EXPECT_EQ(Reply.kind(), MsgKind::Nak);
  std::string Reason;
  ASSERT_TRUE(Reply.str(Reason));
  EXPECT_NE(Reason.find("too large"), std::string::npos);
}

TEST(NubFraming, LinkBrokenMidBlockReplyIsCleanError) {
  // A link that dies halfway through a block reply must surface as an
  // error from the wire memory — never as a short read passed off as
  // success with zero-filled tails.
  auto [FakeNub, DebuggerEnd] = LocalLink::makePair();
  FakeNub->setReadable([End = FakeNub.get()] {
    // Consume whatever request arrived, then answer with a reply frame
    // whose header promises 64 bytes but whose payload is cut off at 10,
    // and kill the link — a crash mid-send.
    uint8_t Sink[256];
    while (End->available())
      End->read(Sink, std::min<size_t>(End->available(), 256));
    uint8_t Header[FrameHeaderSize] = {0};
    Header[0] = static_cast<uint8_t>(MsgKind::FetchBlockReply);
    packInt(64, Header + 5, 4, ByteOrder::Little);
    End->write(Header, FrameHeaderSize);
    uint8_t Part[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    End->write(Part, 10);
    End->breakLink();
  });

  NubClient Client(DebuggerEnd);
  WireMemory Wire(Client);
  uint8_t Out[64] = {0};
  Error E = Wire.fetchBlock(Location::absolute(SpData, 0x2000), 64, Out);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("truncated"), std::string::npos);
}

TEST(NubFraming, ShortBlockReplyIsError) {
  // A *well-formed* frame that simply carries fewer bytes than requested
  // is just as wrong: the client must refuse it, not zero-fill.
  auto [FakeNub, DebuggerEnd] = LocalLink::makePair();
  FakeNub->setReadable([End = FakeNub.get()] {
    // Parse the request's header so the reply can echo its sequence
    // number — an unmatched seq would (rightly) be discarded as stale.
    uint8_t Header[FrameHeaderSize] = {0};
    End->read(Header, FrameHeaderSize);
    uint32_t Seq = static_cast<uint32_t>(
        unpackInt(Header + 1, 4, ByteOrder::Little));
    uint8_t Sink[256];
    while (End->available())
      End->read(Sink, std::min<size_t>(End->available(), 256));
    uint8_t Part[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::vector<uint8_t> Reply =
        MsgWriter(MsgKind::FetchBlockReply).raw(Part, 10).frame(Seq);
    End->write(Reply.data(), Reply.size());
  });

  NubClient Client(DebuggerEnd);
  WireMemory Wire(Client);
  uint8_t Out[64] = {0};
  Error E = Wire.fetchBlock(Location::absolute(SpData, 0x2000), 64, Out);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("unexpected reply"), std::string::npos);
}

TEST(ProcessHost, MultipleSimultaneousTargets) {
  // ldb can connect to multiple targets at once, on different
  // architectures (paper Sec 7).
  ProcessHost Host;
  NubProcess &A = Host.createProcess("alpha", *targetByName("zmips"));
  NubProcess &B = Host.createProcess("beta", *targetByName("z68k"));
  for (NubProcess *P : {&A, &B}) {
    uint32_t Addr = TextBase;
    for (const Instr &In : counterProgram(P->desc().FirstArgReg)) {
      ASSERT_TRUE(P->machine().storeInt(Addr, 4, P->desc().Enc.encode(In)));
      Addr += 4;
    }
    P->enter(TextBase);
  }
  auto CA = Host.connect("alpha");
  auto CB = Host.connect("beta");
  ASSERT_TRUE(static_cast<bool>(CA));
  ASSERT_TRUE(static_cast<bool>(CB));
  EXPECT_EQ((*CA)->archName(), "zmips");
  EXPECT_EQ((*CB)->archName(), "z68k");
  StopInfo SA, SB;
  ASSERT_FALSE((*CA)->doContinue(SA));
  ASSERT_FALSE((*CB)->doContinue(SB));
  EXPECT_TRUE(SA.Exited);
  EXPECT_TRUE(SB.Exited);
}

TEST(ProcessHost, ConnectToMissingProcessFails) {
  ProcessHost Host;
  auto C = Host.connect("ghost");
  EXPECT_FALSE(static_cast<bool>(C));
}

TEST(NubCondWire, DroppedAndGarbledRecordFramesRetransmitAndHeal) {
  // The record-management kinds are idempotent: re-setting a record
  // replaces it verbatim, clearing twice is a no-op, and a re-drain just
  // yields what is left. So over a link that loses or damages frames,
  // every dropped copy — request or Ack — simply retransmits and the
  // exchanges all complete. (Continue cannot make this promise; records
  // can.)
  for (bool Garble : {false, true}) {
    ProcessHost Host;
    NubProcess &P = Host.createProcess("t1", *targetByName("zmips"));
    ASSERT_TRUE(
        P.machine().storeInt(TextBase, 4, P.desc().Enc.encode(Instr::nop())));
    P.enter(TextBase);
    SimParams Sim;
    Sim.LatencyNs = 1000;
    if (Garble)
      Sim.GarbleEvery = 3;
    else
      Sim.DropEvery = 3;
    auto COr = Host.connect("t1", nullptr, &Sim);
    ASSERT_TRUE(static_cast<bool>(COr)) << COr.message();
    std::unique_ptr<NubClient> Client = COr.take();

    condbc::Assembler A;
    A.pushI(1);
    A.done();
    CondRecordSpec Spec;
    Spec.Id = 1;
    Spec.PcAdvance = 4;
    Spec.Bytecode = A.take();
    Spec.Sites = {{TextBase, 0}};
    for (unsigned K = 0; K < 8; ++K) {
      Spec.Hits = K;
      Error E = Client->setCondition(Spec);
      EXPECT_FALSE(static_cast<bool>(E))
          << (Garble ? "garble" : "drop") << " ship " << K << ": "
          << E.message();
    }
    TraceDrain D;
    Error E = Client->drainTrace(D);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
    EXPECT_TRUE(D.Records.empty());
    E = Client->clearCondition(false, 1);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  }
}

TEST(ContextLayouts, PerTargetQuirksAreVisible) {
  // zvax reverses its gpr area; z68k uses 80-bit float slots; zsparc puts
  // floating state first. These are the machine-dependent data the shared
  // save/restore code is parameterized by.
  const TargetDesc *Zvax = targetByName("zvax");
  ContextLayout LV = nubMdFor(*Zvax).layout(*Zvax);
  EXPECT_TRUE(LV.GprsReversed);
  EXPECT_GT(LV.gprAddr(0, 0, Zvax->NumGpr), LV.gprAddr(0, 1, Zvax->NumGpr));

  const TargetDesc *Z68k = targetByName("z68k");
  EXPECT_EQ(nubMdFor(*Z68k).layout(*Z68k).FprSize, 10u);

  const TargetDesc *Zsparc = targetByName("zsparc");
  ContextLayout LS = nubMdFor(*Zsparc).layout(*Zsparc);
  EXPECT_LT(LS.FprOff, LS.GprOff);

  const TargetDesc *Zmips = targetByName("zmips");
  ContextLayout LM = nubMdFor(*Zmips).layout(*Zmips);
  EXPECT_EQ(LM.FprSize, 8u);
  EXPECT_LT(LM.GprOff, LM.FprOff);
}

} // namespace
