//===- tests/nub/protocol_test.cpp ----------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wire-protocol serialization tests: every field type round-trips, the
/// wire is little-endian regardless of anything, truncated payloads are
/// rejected, and a property sweep exercises random message contents.
///
//===----------------------------------------------------------------------===//

#include "nub/channel.h"
#include "nub/protocol.h"

#include <gtest/gtest.h>

#include <random>

using namespace ldb;
using namespace ldb::nub;

namespace {

MsgReader roundTrip(const MsgWriter &W, uint32_t Seq = 0) {
  std::vector<uint8_t> Frame = W.frame(Seq);
  EXPECT_GE(Frame.size(), static_cast<size_t>(FrameHeaderSize));
  MsgKind Kind = static_cast<MsgKind>(Frame[0]);
  uint32_t GotSeq =
      static_cast<uint32_t>(unpackInt(Frame.data() + 1, 4, ByteOrder::Little));
  EXPECT_EQ(GotSeq, Seq);
  uint32_t Len =
      static_cast<uint32_t>(unpackInt(Frame.data() + 5, 4, ByteOrder::Little));
  EXPECT_EQ(Len + FrameHeaderSize, Frame.size());
  uint32_t Sum =
      static_cast<uint32_t>(unpackInt(Frame.data() + 9, 4, ByteOrder::Little));
  uint32_t Want = fnv1a32(Fnv1a32Init, Frame.data(), 9);
  Want = fnv1a32(Want, Frame.data() + FrameHeaderSize, Len);
  EXPECT_EQ(Sum, Want);
  return MsgReader(
      Kind, std::vector<uint8_t>(Frame.begin() + FrameHeaderSize, Frame.end()),
      GotSeq);
}

/// Hand-builds a frame header: kind, seq, payload length, checksum. A
/// negative \p Sum means "compute the real one over the header alone" —
/// callers append the payload themselves and pass the full sum when they
/// want a valid frame.
std::vector<uint8_t> header(MsgKind Kind, uint32_t Len,
                            const uint8_t *Payload = nullptr,
                            uint32_t Seq = 0) {
  std::vector<uint8_t> H(FrameHeaderSize);
  H[0] = static_cast<uint8_t>(Kind);
  packInt(Seq, H.data() + 1, 4, ByteOrder::Little);
  packInt(Len, H.data() + 5, 4, ByteOrder::Little);
  uint32_t Sum = fnv1a32(Fnv1a32Init, H.data(), 9);
  if (Payload)
    Sum = fnv1a32(Sum, Payload, Len);
  packInt(Sum, H.data() + 9, 4, ByteOrder::Little);
  return H;
}

TEST(Protocol, FieldsRoundTrip) {
  MsgReader R = roundTrip(MsgWriter(MsgKind::StoreInt)
                              .u8('d')
                              .u32(0xdeadbeef)
                              .u8(4)
                              .u64(0x1122334455667788ull)
                              .str("hello")
                              .f80(-2.5L));
  EXPECT_EQ(R.kind(), MsgKind::StoreInt);
  uint8_t B;
  uint32_t W;
  uint64_t Q;
  std::string S;
  long double F;
  ASSERT_TRUE(R.u8(B));
  EXPECT_EQ(B, 'd');
  ASSERT_TRUE(R.u32(W));
  EXPECT_EQ(W, 0xdeadbeefu);
  ASSERT_TRUE(R.u8(B));
  EXPECT_EQ(B, 4);
  ASSERT_TRUE(R.u64(Q));
  EXPECT_EQ(Q, 0x1122334455667788ull);
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(S, "hello");
  ASSERT_TRUE(R.f80(F));
  EXPECT_EQ(F, -2.5L);
  EXPECT_TRUE(R.atEnd());
}

TEST(Protocol, WireIsLittleEndian) {
  std::vector<uint8_t> Frame = MsgWriter(MsgKind::FetchInt)
                                   .u32(0x11223344)
                                   .frame(0x0a0b0c0d);
  // Header fields are little-endian: seq at offset 1, length at 5.
  EXPECT_EQ(Frame[1], 0x0d);
  EXPECT_EQ(Frame[4], 0x0a);
  EXPECT_EQ(Frame[5], 0x04);
  // Payload begins after the 13-byte header; least significant byte first.
  EXPECT_EQ(Frame[13], 0x44);
  EXPECT_EQ(Frame[16], 0x11);
}

TEST(Protocol, TruncatedPayloadRejected) {
  MsgReader R(MsgKind::FetchInt, {0x01, 0x02});
  uint32_t W;
  EXPECT_FALSE(R.u32(W));
  uint64_t Q;
  EXPECT_FALSE(R.u64(Q));
  std::string S;
  EXPECT_FALSE(R.str(S));
}

TEST(Protocol, TruncatedStringRejected) {
  // Length claims 100 bytes; only 2 present.
  MsgReader R(MsgKind::Welcome, {100, 0, 0, 0, 'a', 'b'});
  std::string S;
  EXPECT_FALSE(R.str(S));
}

TEST(Protocol, EmptyString) {
  MsgReader R = roundTrip(MsgWriter(MsgKind::Welcome).str(""));
  std::string S = "junk";
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(S, "");
}

TEST(Protocol, SignalNamesCover) {
  EXPECT_STREQ(signalName(SigTrap), "breakpoint trap");
  EXPECT_STREQ(signalName(SigSegv), "segmentation fault");
  EXPECT_STREQ(signalName(SigPause), "pause before main");
  EXPECT_STREQ(signalName(12345), "unknown signal");
}

class ProtocolFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolFuzz, RandomMessagesRoundTrip) {
  std::mt19937_64 Rng(static_cast<unsigned>(GetParam()) * 7919 + 3);
  for (int K = 0; K < 200; ++K) {
    uint8_t B = static_cast<uint8_t>(Rng());
    uint32_t W = static_cast<uint32_t>(Rng());
    uint64_t Q = Rng();
    std::string S;
    for (unsigned J = Rng() % 40; J > 0; --J)
      S += static_cast<char>(Rng() % 256);
    long double F =
        static_cast<long double>(static_cast<int64_t>(Rng())) /
        (static_cast<long double>(Rng() % 1000) + 1);
    MsgReader R = roundTrip(
        MsgWriter(MsgKind::Stopped).u8(B).u32(W).u64(Q).str(S).f80(F));
    uint8_t B2;
    uint32_t W2;
    uint64_t Q2;
    std::string S2;
    long double F2;
    ASSERT_TRUE(R.u8(B2) && R.u32(W2) && R.u64(Q2) && R.str(S2) &&
                R.f80(F2));
    EXPECT_EQ(B2, B);
    EXPECT_EQ(W2, W);
    EXPECT_EQ(Q2, Q);
    EXPECT_EQ(S2, S);
    EXPECT_EQ(F2, F);
    EXPECT_TRUE(R.atEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz, ::testing::Range(0, 6));

TEST(Protocol, RawBytesRoundTrip) {
  uint8_t Bytes[5] = {0x10, 0x20, 0x30, 0x40, 0x50};
  MsgReader R = roundTrip(MsgWriter(MsgKind::FetchBlockReply).raw(Bytes, 5));
  EXPECT_EQ(R.remaining(), 5u);
  const uint8_t *Ptr = nullptr;
  ASSERT_TRUE(R.raw(5, Ptr));
  EXPECT_EQ(Ptr[0], 0x10);
  EXPECT_EQ(Ptr[4], 0x50);
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.raw(1, Ptr)); // drained
}

TEST(Protocol, BlockMessageFieldsRoundTrip) {
  uint8_t Bytes[3] = {9, 8, 7};
  MsgReader R = roundTrip(MsgWriter(MsgKind::StoreBlock)
                              .u8('c')
                              .u32(0x1000)
                              .u32(3)
                              .raw(Bytes, 3));
  uint8_t Space;
  uint32_t Addr, Len;
  ASSERT_TRUE(R.u8(Space) && R.u32(Addr) && R.u32(Len));
  EXPECT_EQ(Space, 'c');
  EXPECT_EQ(Addr, 0x1000u);
  ASSERT_EQ(Len, 3u);
  const uint8_t *Ptr = nullptr;
  ASSERT_TRUE(R.raw(Len, Ptr));
  EXPECT_EQ(Ptr[2], 7);
}

TEST(ReadFrame, WholeFrameComesOff) {
  auto [A, B] = LocalLink::makePair();
  std::vector<uint8_t> Frame =
      MsgWriter(MsgKind::FetchInt).u8('d').u32(0x2000).u8(4).frame();
  A->write(Frame.data(), Frame.size());
  MsgReader Msg(MsgKind::Ack, {});
  ASSERT_EQ(readFrame(*B, Msg), FrameStatus::Ok);
  EXPECT_EQ(Msg.kind(), MsgKind::FetchInt);
  EXPECT_EQ(Msg.remaining(), 6u);
  EXPECT_EQ(B->available(), 0u);
}

TEST(ReadFrame, PartialHeaderConsumesNothing) {
  auto [A, B] = LocalLink::makePair();
  uint8_t Partial[3] = {1, 2, 3};
  A->write(Partial, 3);
  MsgReader Msg(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Msg), FrameStatus::NoFrame);
  EXPECT_EQ(B->available(), 3u); // still there for when the rest arrives
}

TEST(ReadFrame, MissingPayloadIsTruncated) {
  auto [A, B] = LocalLink::makePair();
  // Header declares 10 payload bytes; only 4 ever arrive.
  std::vector<uint8_t> Header = header(MsgKind::FetchInt, 10);
  uint8_t Some[4] = {1, 2, 3, 4};
  A->write(Header.data(), Header.size());
  A->write(Some, 4);
  MsgReader Msg(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Msg), FrameStatus::Truncated);
}

TEST(ReadFrame, OversizedDeclarationRefusedWithoutAllocation) {
  auto [A, B] = LocalLink::makePair();
  // A frame declaring a 256 MiB payload must be rejected outright, not
  // allocated on faith.
  std::vector<uint8_t> Bad = header(MsgKind::Hello, 256u << 20, nullptr, 77);
  Bad.resize(Bad.size() + 32, 0xee); // some garbage payload bytes
  A->write(Bad.data(), Bad.size());
  MsgReader Msg(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Msg), FrameStatus::Oversized);
  EXPECT_EQ(Msg.kind(), MsgKind::Hello); // the kind survives for the Nak
  EXPECT_EQ(Msg.seq(), 77u);             // so does the seq, for the echo
  // The garbage payload bytes that did arrive were drained, so a later
  // well-formed frame frames cleanly.
  EXPECT_EQ(B->available(), 0u);
  std::vector<uint8_t> Good = MsgWriter(MsgKind::FetchInt).u8('d').frame();
  A->write(Good.data(), Good.size());
  ASSERT_EQ(readFrame(*B, Msg), FrameStatus::Ok);
  EXPECT_EQ(Msg.kind(), MsgKind::FetchInt);
}

TEST(ReadFrame, SequenceNumberRoundTrips) {
  auto [A, B] = LocalLink::makePair();
  std::vector<uint8_t> Frame =
      MsgWriter(MsgKind::FetchInt).u8('d').frame(0xfeedf00d);
  A->write(Frame.data(), Frame.size());
  MsgReader Msg(MsgKind::Ack, {});
  ASSERT_EQ(readFrame(*B, Msg), FrameStatus::Ok);
  EXPECT_EQ(Msg.seq(), 0xfeedf00du);
}

TEST(ReadFrame, FlippedPayloadByteIsGarbled) {
  auto [A, B] = LocalLink::makePair();
  std::vector<uint8_t> Frame =
      MsgWriter(MsgKind::FetchInt).u8('d').u32(0x2000).u8(4).frame(9);
  Frame[FrameHeaderSize + 2] ^= 0x01; // flip one payload bit
  A->write(Frame.data(), Frame.size());
  MsgReader Msg(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Msg), FrameStatus::Garbled);
  EXPECT_EQ(Msg.seq(), 9u); // seq survives so the nub can answer Corrupt
  // The damaged frame was consumed whole: the stream stays framed and the
  // next good frame comes off cleanly.
  EXPECT_EQ(B->available(), 0u);
  std::vector<uint8_t> Good = MsgWriter(MsgKind::FetchInt).u8('c').frame(10);
  A->write(Good.data(), Good.size());
  ASSERT_EQ(readFrame(*B, Msg), FrameStatus::Ok);
  EXPECT_EQ(Msg.seq(), 10u);
}

TEST(ReadFrame, FlippedHeaderByteIsGarbled) {
  auto [A, B] = LocalLink::makePair();
  std::vector<uint8_t> Frame = MsgWriter(MsgKind::FetchInt).u8('d').frame(9);
  Frame[3] ^= 0x40; // damage the sequence field itself
  A->write(Frame.data(), Frame.size());
  MsgReader Msg(MsgKind::Ack, {});
  EXPECT_EQ(readFrame(*B, Msg), FrameStatus::Garbled);
  EXPECT_EQ(B->available(), 0u);
}

TEST(ReadFrame, LargestLegalPayloadStillAccepted) {
  auto [A, B] = LocalLink::makePair();
  std::vector<uint8_t> Big(MaxFramePayload, 0xab);
  std::vector<uint8_t> Frame =
      MsgWriter(MsgKind::FetchBlockReply).raw(Big.data(), Big.size()).frame();
  A->write(Frame.data(), Frame.size());
  MsgReader Msg(MsgKind::Ack, {});
  ASSERT_EQ(readFrame(*B, Msg), FrameStatus::Ok);
  EXPECT_EQ(Msg.remaining(), MaxFramePayload);
}

TEST(Channel, BytesFlowBothWays) {
  auto [A, B] = LocalLink::makePair();
  uint8_t Out[4] = {1, 2, 3, 4};
  A->write(Out, 4);
  uint8_t In[4] = {0};
  ASSERT_TRUE(B->read(In, 4));
  EXPECT_EQ(In[2], 3);
  B->write(Out, 2);
  ASSERT_TRUE(A->read(In, 2));
  EXPECT_FALSE(A->read(In, 1)); // drained
}

TEST(Channel, ReadableCallbackFires) {
  auto [A, B] = LocalLink::makePair();
  int Fired = 0;
  B->setReadable([&] { ++Fired; });
  uint8_t Byte = 9;
  A->write(&Byte, 1);
  A->write(&Byte, 1);
  EXPECT_EQ(Fired, 2);
}

TEST(Channel, BrokenLinkDropsTraffic) {
  auto [A, B] = LocalLink::makePair();
  A->breakLink();
  EXPECT_TRUE(B->isBroken());
  uint8_t Byte = 9;
  A->write(&Byte, 1);
  EXPECT_EQ(B->available(), 0u);
}

} // namespace
