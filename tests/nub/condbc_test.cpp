//===- tests/nub/condbc_test.cpp - condition bytecode interpreter ---------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The condition-bytecode VM must mirror the host-side PostScript integer
/// semantics exactly (sign extension, 32-bit wraps, truncating division)
/// and be total: bad loads, zero divisors, stack misuse, and malformed
/// bytecode all yield Fail rather than trapping — the nub answers Fail by
/// stopping and letting the debugger decide.
///
//===----------------------------------------------------------------------===//

#include "nub/condbc.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ldb::nub::condbc;

namespace {

/// An environment over a tiny fake machine: regs r0..r31 hold their own
/// number ×10, and data memory is a 64-byte little-endian counter ramp.
EvalEnv fakeEnv() {
  EvalEnv Env;
  Env.ReadReg = [](unsigned R) -> uint64_t { return R < 32 ? R * 10 : 0; };
  Env.Load = [](uint32_t Addr, unsigned Size, uint32_t &Out) {
    if (Addr < 0x1000 || Addr + Size > 0x1000 + 64)
      return false;
    uint32_t V = 0;
    for (unsigned K = 0; K < Size; ++K)
      V |= static_cast<uint32_t>((Addr - 0x1000 + K) & 0xff) << (8 * K);
    Out = V;
    return true;
  };
  Env.Vfp = 0x1010;
  return Env;
}

EvalStatus run(const std::vector<uint8_t> &Code, int64_t &Result) {
  EvalEnv Env = fakeEnv();
  return evaluate(Code.data(), Code.size(), Env, Result);
}

EvalStatus run(const std::vector<uint8_t> &Code) {
  int64_t V = 0;
  return run(Code, V);
}

TEST(CondBc, ArithmeticAndComparisons) {
  struct Case {
    Op O;
    int64_t A, B, Want;
  } Cases[] = {
      {Op::Add, 6, 7, 13},       {Op::Sub, 5, 9, -4},
      {Op::Mul, -3, 7, -21},     {Op::Div, -7, 2, -3},
      {Op::Rem, -7, 2, -1},      {Op::And, 0xf0f, 0x0ff, 0x00f},
      {Op::Or, 0xf00, 0x00f, 0xf0f}, {Op::Xor, 0xff, 0x0f, 0xf0},
      {Op::Shl, 1, 33, 1ll << 33},   {Op::CmpEq, 4, 4, 1},
      {Op::CmpNe, 4, 4, 0},      {Op::CmpLt, -1, 0, 1},
      {Op::CmpLe, 2, 2, 1},      {Op::CmpGt, 2, 3, 0},
      {Op::CmpGe, 3, 3, 1},
  };
  for (const Case &C : Cases) {
    Assembler A;
    A.pushI(C.A);
    A.pushI(C.B);
    A.op(C.O);
    A.done();
    int64_t V = 0;
    EvalStatus St = run(A.take(), V);
    EXPECT_NE(St, EvalStatus::Fail) << static_cast<int>(C.O);
    EXPECT_EQ(V, C.Want) << static_cast<int>(C.O);
    EXPECT_EQ(St, C.Want ? EvalStatus::True : EvalStatus::False);
  }
}

TEST(CondBc, ShiftsUse32BitSemantics) {
  // Sra shifts the sign-extended-32 value; Srl the zero-extended low 32.
  Assembler A;
  A.pushI(0xffff0000u); // -65536 as an i32
  A.pushI(8);
  A.op(Op::Sra);
  A.done();
  int64_t V = 0;
  EXPECT_EQ(run(A.take(), V), EvalStatus::True);
  EXPECT_EQ(V, -256);

  Assembler B;
  B.pushI(0xffff0000u);
  B.pushI(8);
  B.op(Op::Srl);
  B.done();
  EXPECT_EQ(run(B.take(), V), EvalStatus::True);
  EXPECT_EQ(V, 0x00ffff00);
}

TEST(CondBc, SignExtendAndMask32) {
  Assembler A;
  A.pushI(0xff);
  A.sext(8);
  A.done();
  int64_t V = 0;
  EXPECT_EQ(run(A.take(), V), EvalStatus::True);
  EXPECT_EQ(V, -1);

  Assembler B;
  B.pushI(-1);
  B.mask32();
  B.done();
  EXPECT_EQ(run(B.take(), V), EvalStatus::True);
  EXPECT_EQ(V, 0xffffffffll);
}

TEST(CondBc, NegAndBitNotWrap) {
  Assembler A;
  A.pushI(5);
  A.op(Op::Neg);
  A.done();
  int64_t V = 0;
  EXPECT_EQ(run(A.take(), V), EvalStatus::True);
  EXPECT_EQ(V, -5);

  Assembler B;
  B.pushI(0);
  B.op(Op::BitNot);
  B.done();
  EXPECT_EQ(run(B.take(), V), EvalStatus::True);
  EXPECT_EQ(V, -1);
}

TEST(CondBc, RegistersVfpAndLoads) {
  // *(vfp + 4) as a 4-byte load: the ramp holds 0x14,0x15,0x16,0x17
  // there, little-endian.
  Assembler A;
  A.pushVfp();
  A.pushI(4);
  A.op(Op::Add);
  A.load(4);
  A.done();
  int64_t V = 0;
  EXPECT_EQ(run(A.take(), V), EvalStatus::True);
  EXPECT_EQ(V, 0x17161514);

  Assembler B;
  B.pushReg(7);
  B.done();
  EXPECT_EQ(run(B.take(), V), EvalStatus::True);
  EXPECT_EQ(V, 70);
}

TEST(CondBc, ShortCircuitJumps) {
  // 0 && (anything): JumpIfZero skips the right operand entirely — the
  // skipped bytes can even be a div-by-zero and never run.
  Assembler A;
  A.pushI(0);
  A.op(Op::Dup);
  size_t Skip = A.jump(Op::JumpIfZero);
  A.op(Op::Pop);
  A.pushI(1);
  A.pushI(0);
  A.op(Op::Div); // dead: the jump must hop over it
  A.patchHere(Skip);
  A.done();
  int64_t V = 0;
  EXPECT_EQ(run(A.take(), V), EvalStatus::False);
  EXPECT_EQ(V, 0);

  // An unconditional Jump skips an alternative arm.
  Assembler B;
  B.pushI(7);
  size_t Over = B.jump(Op::Jump);
  B.pushI(99);
  B.patchHere(Over);
  B.done();
  EXPECT_EQ(run(B.take(), V), EvalStatus::True);
  EXPECT_EQ(V, 7);
}

TEST(CondBc, DivideByZeroFails) {
  for (Op O : {Op::Div, Op::Rem}) {
    Assembler A;
    A.pushI(7);
    A.pushI(0);
    A.op(O);
    A.done();
    EXPECT_EQ(run(A.take()), EvalStatus::Fail);
  }
}

TEST(CondBc, BadLoadFails) {
  Assembler A;
  A.pushI(0x10); // outside the fake ramp
  A.load(4);
  A.done();
  EXPECT_EQ(run(A.take()), EvalStatus::Fail);

  Assembler B; // width 3 is not a load the protocol has
  B.pushVfp();
  B.load(3);
  B.done();
  EXPECT_EQ(run(B.take()), EvalStatus::Fail);
}

TEST(CondBc, StackMisuseFails) {
  // Underflow: Add with one operand.
  Assembler A;
  A.pushI(1);
  A.op(Op::Add);
  A.done();
  EXPECT_EQ(run(A.take()), EvalStatus::Fail);

  // Done must see exactly one value.
  Assembler B;
  B.pushI(1);
  B.pushI(2);
  B.done();
  EXPECT_EQ(run(B.take()), EvalStatus::Fail);

  // Overflow: 65 pushes exceed the 64-slot stack.
  Assembler C;
  for (int K = 0; K < 65; ++K)
    C.pushI(K);
  C.done();
  EXPECT_EQ(run(C.take()), EvalStatus::Fail);
}

TEST(CondBc, MalformedBytecodeFails) {
  // Unknown opcode.
  EXPECT_EQ(run({0xff}), EvalStatus::Fail);
  // Truncated PushI immediate.
  EXPECT_EQ(run({static_cast<uint8_t>(Op::PushI), 1, 2, 3}),
            EvalStatus::Fail);
  // Jump past the end.
  Assembler A;
  A.pushI(1);
  size_t J = A.jump(Op::Jump);
  (void)J; // placeholder displacement of 0 is fine...
  std::vector<uint8_t> Code = A.take();
  Code[Code.size() - 2] = 0xff; // ...but a huge one leaves the code
  Code[Code.size() - 1] = 0xff;
  EXPECT_EQ(run(Code), EvalStatus::Fail);
  // Falling off the end without Done.
  Assembler B;
  B.pushI(1);
  EXPECT_EQ(run(B.take()), EvalStatus::Fail);
  // Empty bytecode.
  EXPECT_EQ(run({}), EvalStatus::Fail);
}

TEST(CondBc, HexTransportRoundTrips) {
  std::vector<uint8_t> Bytes = {0x00, 0x7f, 0x80, 0xff, 0x12};
  std::string Hex = toHex(Bytes);
  EXPECT_EQ(Hex, "007f80ff12");
  std::vector<uint8_t> Back;
  ASSERT_TRUE(fromHex(Hex, Back));
  EXPECT_EQ(Back, Bytes);
  EXPECT_FALSE(fromHex("abc", Back));  // odd length
  EXPECT_FALSE(fromHex("zz", Back));   // not hex
}

TEST(CondBc, TraceRecordRoundTripsAndRejectsTruncation) {
  TraceRecord R;
  R.Id = 3;
  R.HitNo = 41;
  R.Pc = 0x4000;
  R.Vfp = 0x7ff0;
  R.RegMask = (1u << 29) | (1u << 30);
  R.Values = {-1, 0, 123456789};
  R.Regs = {0x7ff0, 0x8000};

  std::vector<uint8_t> Bytes;
  appendRecord(Bytes, R);
  size_t Pos = 0;
  TraceRecord Back;
  ASSERT_TRUE(parseRecord(Bytes.data(), Bytes.size(), Pos, Back));
  EXPECT_EQ(Pos, Bytes.size());
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.HitNo, R.HitNo);
  EXPECT_EQ(Back.Pc, R.Pc);
  EXPECT_EQ(Back.Vfp, R.Vfp);
  EXPECT_EQ(Back.RegMask, R.RegMask);
  EXPECT_EQ(Back.Values, R.Values);
  EXPECT_EQ(Back.Regs, R.Regs);

  // Every proper prefix is a truncation, never a crash or a bogus parse.
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    Pos = 0;
    EXPECT_FALSE(parseRecord(Bytes.data(), Cut, Pos, Back)) << Cut;
  }

  // Two records in one buffer parse back to back (the DrainTrace reply
  // shape).
  std::vector<uint8_t> Two;
  appendRecord(Two, R);
  TraceRecord S = R;
  S.HitNo = 42;
  appendRecord(Two, S);
  Pos = 0;
  ASSERT_TRUE(parseRecord(Two.data(), Two.size(), Pos, Back));
  EXPECT_EQ(Back.HitNo, 41u);
  ASSERT_TRUE(parseRecord(Two.data(), Two.size(), Pos, Back));
  EXPECT_EQ(Back.HitNo, 42u);
  EXPECT_EQ(Pos, Two.size());
}

} // namespace
