//===- tests/verify/blobcheck_test.cpp - fastload blob verification ----------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation-kill suite for the blob family: pristine compilations verify
/// clean, and each seeded blob corruption — flipped magic, wrong format
/// version, a damaged content-hash lane, truncation, trailing garbage,
/// an out-of-range table index, an unknown token tag, a lying procedure
/// length, bottomless nesting, a token stream that no longer matches the
/// text — produces exactly the expected diagnostic instead of a silent
/// scanner fallback.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "postscript/fastload.h"
#include "workload.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::ps;

namespace {

std::unique_ptr<lcc::Compilation> compile(const target::TargetDesc &Desc) {
  auto C = lcc::compileAndLink({{"fib.c", bench::fibProgram()}}, Desc, {});
  EXPECT_TRUE(bool(C)) << C.message();
  return C ? C.take() : nullptr;
}

/// Runs only the blob family.
Report verifyBlob(const lcc::Compilation &C) {
  Options Opt;
  Opt.CheckStops = Opt.CheckScopes = Opt.CheckWhere = Opt.CheckTypes =
      Opt.CheckAgreement = Opt.CheckCfa = false;
  Expected<Report> R = verifyCompilation(C, Opt);
  EXPECT_TRUE(bool(R)) << R.message();
  return R ? *R : Report();
}

bool mentions(const Report &R, const std::string &Needle) {
  for (const Diagnostic &D : R.Diags)
    if (D.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

/// A valid blob freshly encoded from \p Text, stamped with \p Hash (the
/// text's own hash unless a test wants a mismatch).
std::vector<uint8_t> freshBlob(const std::string &Text, uint64_t Hash) {
  Expected<std::vector<Object>> Tokens = fastload::scanAll(Text);
  EXPECT_TRUE(bool(Tokens)) << Tokens.message();
  Expected<std::vector<uint8_t>> Blob = fastload::encode(*Tokens, Hash);
  EXPECT_TRUE(bool(Blob)) << Blob.message();
  return Blob ? *Blob : std::vector<uint8_t>();
}

/// The blob family checks whatever the cache holds for the symtab's
/// content hash, so corrupt blobs are planted there.
class BlobTest : public ::testing::TestWithParam<const target::TargetDesc *> {
protected:
  void SetUp() override { fastload::Cache::global().clear(); }
  void TearDown() override { fastload::Cache::global().clear(); }

  const target::TargetDesc &desc() { return *GetParam(); }

  /// Compiles fib, corrupts its symtab blob with \p Corrupt, plants it,
  /// and returns the blob family's report.
  template <typename F> Report corrupted(F Corrupt) {
    auto C = compile(desc());
    EXPECT_TRUE(C);
    if (!C)
      return Report();
    uint64_t Hash = fastload::contentHash(C->PsSymtab);
    std::vector<uint8_t> Blob = freshBlob(C->PsSymtab, Hash);
    Corrupt(Blob);
    fastload::Cache::global().store(Hash, std::move(Blob));
    return verifyBlob(*C);
  }
};

TEST_P(BlobTest, PristineCompilationIsClean) {
  for (bool Deferred : {false, true}) {
    lcc::CompileOptions CO;
    CO.DeferredSymtab = Deferred;
    auto C = lcc::compileAndLink({{"fib.c", bench::fibProgram()}}, desc(), CO);
    ASSERT_TRUE(bool(C)) << C.message();
    Report R = verifyBlob(**C);
    EXPECT_TRUE(R.clean()) << R.str();
  }
}

TEST_P(BlobTest, CachedBlobFromARealLoadIsClean) {
  // Let the interpreter populate the cache (the production path), then
  // verify against that blob rather than a fresh encode.
  auto C = compile(desc());
  ASSERT_TRUE(C);
  Report First = verifyBlob(*C); // setup() interprets and caches
  EXPECT_TRUE(First.clean()) << First.str();
  ASSERT_GT(fastload::Cache::global().size(), 0u);
  Report Second = verifyBlob(*C);
  EXPECT_TRUE(Second.clean()) << Second.str();
}

TEST_P(BlobTest, FlippedMagicIsCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B[0] ^= 0xff; });
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "bad magic")) << R.str();
}

TEST_P(BlobTest, WrongFormatVersionIsCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B[4] += 1; });
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "format version")) << R.str();
}

TEST_P(BlobTest, FlippedHashLaneIsCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B[5] ^= 0x01; });
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "content hash does not match")) << R.str();
}

TEST_P(BlobTest, TruncatedHeaderIsCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B.resize(8); });
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "blob ends inside the content hash")) << R.str();
}

TEST_P(BlobTest, TruncatedTokenStreamIsCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B.pop_back(); });
  EXPECT_GE(R.errors(), 1u);
}

TEST_P(BlobTest, TrailingBytesAreCaught) {
  Report R = corrupted([](std::vector<uint8_t> &B) { B.push_back(0); });
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "trailing bytes")) << R.str();
}

TEST_P(BlobTest, ForeignTokenStreamIsCaught) {
  // Structurally flawless, stamped with the right hash — but it decodes
  // to a different program than the text scans to.
  auto C = compile(desc());
  ASSERT_TRUE(C);
  uint64_t Hash = fastload::contentHash(C->PsSymtab);
  fastload::Cache::global().store(Hash, freshBlob("1 2 3", Hash));
  Report R = verifyBlob(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "but the scanner produces")) << R.str();
}

INSTANTIATE_TEST_SUITE_P(AllTargets, BlobTest,
                         ::testing::ValuesIn(target::allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

//===----------------------------------------------------------------------===//
// Structural inspection of hand-corrupted small blobs
//===----------------------------------------------------------------------===//

std::vector<fastload::BlobIssue> inspectText(const std::string &Text,
                                             std::vector<uint8_t> Blob) {
  return fastload::inspect(Blob, fastload::contentHash(Text));
}

bool issueMentions(const std::vector<fastload::BlobIssue> &Issues,
                   const std::string &Needle) {
  for (const fastload::BlobIssue &I : Issues)
    if (I.What.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(BlobInspect, OutOfRangeNameIndexIsCaught) {
  // "/alpha" encodes as one literal-name token; its table index is the
  // blob's final byte.
  const std::string Text = "/alpha";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  ASSERT_EQ(B.back(), 0u);
  B.back() = 99;
  auto Issues = inspectText(Text, B);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "name index 99 out of range"));
}

TEST(BlobInspect, OutOfRangeStringIndexIsCaught) {
  const std::string Text = "(hello)";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  ASSERT_EQ(B.back(), 0u);
  B.back() = 7;
  auto Issues = inspectText(Text, B);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "string index 7 out of range"));
}

TEST(BlobInspect, UnknownTokenTagIsCaught) {
  const std::string Text = "/alpha";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  B[B.size() - 2] = 0x0f; // the tag byte of the only token
  auto Issues = inspectText(Text, B);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "unknown token tag 0x0f"));
}

TEST(BlobInspect, LyingProcedureLengthIsCaught) {
  // "{1 2}": header (13 bytes), empty name and string tables (1 byte
  // each), token count (1 byte), then the procedure tag and its element
  // count at offsets 16 and 17.
  const std::string Text = "{1 2}";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  ASSERT_GT(B.size(), 18u);
  ASSERT_EQ(B[17], 2u);
  B[17] = 127;
  auto Issues = inspectText(Text, B);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "procedure declares 127 elements"));
}

TEST(BlobInspect, TruncatedIntegerVarintIsCaught) {
  // 77777 zigzags to a multi-byte varint; dropping its last byte leaves
  // the stream ending mid-number.
  const std::string Text = "77777";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  B.pop_back();
  auto Issues = inspectText(Text, B);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "integer varint"));
}

TEST(BlobInspect, BottomlessNestingIsCaught) {
  // Hand-assembled: 210 nested one-element procedures overflow the
  // format's depth limit. (The scanner enforces the same limit, so a
  // blob this deep can only come from corruption.)
  std::vector<uint8_t> B = {'L', 'D', 'F', 'L', fastload::Version};
  uint64_t Hash = fastload::contentHash("x");
  for (int K = 0; K < 8; ++K)
    B.push_back(static_cast<uint8_t>(Hash >> (8 * K)));
  B.push_back(0); // empty name table
  B.push_back(0); // empty string table
  B.push_back(1); // one token
  for (int K = 0; K < 210; ++K) {
    B.push_back(0x85); // exec array
    B.push_back(1);    // of one element
  }
  B.push_back(0x85);
  B.push_back(0); // innermost: empty
  auto Issues = fastload::inspect(B, Hash);
  ASSERT_FALSE(Issues.empty());
  EXPECT_TRUE(issueMentions(Issues, "nesting exceeds"));
}

TEST(BlobInspect, CleanBlobHandsBackTheTokens) {
  const std::string Text = "/x 1 def { 2 add } (s)";
  std::vector<uint8_t> B = freshBlob(Text, fastload::contentHash(Text));
  std::vector<Object> Tokens;
  auto Issues = fastload::inspect(B, fastload::contentHash(Text), &Tokens);
  EXPECT_TRUE(Issues.empty());
  Expected<std::vector<Object>> Scanned = fastload::scanAll(Text);
  ASSERT_TRUE(bool(Scanned));
  EXPECT_EQ(Tokens.size(), Scanned->size());
}

} // namespace
