//===- tests/verify/verify_test.cpp - the static verifier -------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pristine compiler output must verify clean on every target, and each
/// class of artifact corruption — a dropped stopping-point no-op, a
/// broken or cyclic uplink, a skewed /where, a malformed type, a
/// desynchronized loader table or stabs blob — must be caught.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/byteorder.h"
#include "support/strings.h"
#include "workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <regex>

using namespace ldb;
using namespace ldb::verify;

namespace {

std::unique_ptr<lcc::Compilation>
compile(const target::TargetDesc &Desc, const std::string &Source,
        bool Deferred = false) {
  lcc::CompileOptions CO;
  CO.DeferredSymtab = Deferred;
  auto C = lcc::compileAndLink({{"fib.c", Source}}, Desc, CO);
  EXPECT_TRUE(bool(C)) << C.message();
  return C ? C.take() : nullptr;
}

Report verify(const lcc::Compilation &C) {
  Expected<Report> R = verifyCompilation(C);
  EXPECT_TRUE(bool(R)) << R.message();
  return R ? *R : Report();
}

/// True if any diagnostic's message or check family contains \p Needle.
bool mentions(const Report &R, const std::string &Needle) {
  for (const Diagnostic &D : R.Diags)
    if (D.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

/// Applies the first match of \p Pattern -> \p Replacement, asserting one
/// existed.
void mutate(std::string &Text, const std::string &Pattern,
            const std::string &Replacement) {
  std::regex Re(Pattern);
  ASSERT_TRUE(std::regex_search(Text, Re)) << "no match for " << Pattern;
  Text = std::regex_replace(Text, Re, Replacement,
                            std::regex_constants::format_first_only);
}

class VerifyTest : public ::testing::TestWithParam<const target::TargetDesc *> {
protected:
  const target::TargetDesc &desc() { return *GetParam(); }
};

//===----------------------------------------------------------------------===//
// Pristine output is clean
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, PristineProgramsAreClean) {
  for (const std::string &Source :
       {bench::helloProgram(), bench::fibProgram(),
        bench::generateProgram(1500)}) {
    for (bool Deferred : {false, true}) {
      auto C = compile(desc(), Source, Deferred);
      ASSERT_TRUE(C);
      Report R = verify(*C);
      EXPECT_TRUE(R.clean()) << (Deferred ? "deferred\n" : "eager\n")
                             << R.str();
      EXPECT_GT(R.StopsChecked, 0u);
      EXPECT_GT(R.EntriesWalked, 0u);
    }
  }
}

TEST_P(VerifyTest, MultiUnitProgramIsClean) {
  lcc::CompileOptions CO;
  auto C = lcc::compileAndLink(
      {{"a.c", "int shared; int helper(int x) { shared = x; return x + 1; }\n"},
       {"b.c", "extern int shared; int helper(int);\n"
               "int main() { int v; v = helper(4); return v + shared; }\n"}},
      desc(), CO);
  ASSERT_TRUE(bool(C)) << C.message();
  Report R = verify(**C);
  EXPECT_TRUE(R.clean()) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 1: a stopping point without its no-op
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, DroppedNoOpIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // Overwrite every no-op word in the text segment; stop-sites must
  // notice (delay-slot filler no-ops are not stopping points, so only
  // the stop-site family fires).
  uint32_t Nop = desc().nopWord();
  uint32_t Other = desc().Enc.encode(target::Instr::r(target::Op::Add, 1, 1, 1));
  unsigned Rewritten = 0;
  for (size_t K = 0; K + 4 <= C->Img.Text.size(); K += 4) {
    if (unpackInt(C->Img.Text.data() + K, 4, desc().Order) == Nop) {
      packInt(Other, C->Img.Text.data() + K, 4, desc().Order);
      ++Rewritten;
    }
  }
  ASSERT_GT(Rewritten, 0u);
  Report R = verify(*C);
  EXPECT_GE(R.errors(), R.StopsChecked);
  EXPECT_TRUE(mentions(R, "does not hold the no-op word")) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 2: broken uplinks
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, DanglingUplinkIsCaught) {
  // Deferred tables resolve uplinks lazily, so a dangling reference
  // survives until the verifier forces the chain.
  auto C = compile(desc(), bench::fibProgram(), /*Deferred=*/true);
  ASSERT_TRUE(C);
  mutate(C->PsSymtab, R"(/uplink S[0-9]+)", "/uplink S99999");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "scope")) << R.str();
}

TEST_P(VerifyTest, UplinkCycleIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // Make some linked-to entry its own uplink after the table loads.
  std::smatch M;
  ASSERT_TRUE(std::regex_search(C->PsSymtab, M,
                                std::regex(R"(/uplink (S[0-9]+))")));
  std::string Id = M[1];
  C->PsSymtab += "\n" + Id + " /uplink " + Id + " put\n";
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "uplink cycle")) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 3: skewed /where values
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, RegisterNumberOutOfRangeIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  mutate(C->PsSymtab, R"([0-9]+ Regset0 Absolute)", "99 Regset0 Absolute");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "register number 99 out of range")) << R.str();
}

TEST_P(VerifyTest, FrameOffsetOutOfRangeIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  mutate(C->PsSymtab, R"(-?[0-9]+ Locals Absolute)",
         "1000000 Locals Absolute");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "frame offset 1000000")) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 4: malformed type dictionaries
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, NegativeTypeSizeIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  mutate(C->PsSymtab, R"(/size 4)", "/size -4");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "implausible type size -4")) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 5: loader table out of sync
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, SkewedProcTableAddressIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // Nudge the first proctable address by four bytes.
  std::smatch M;
  ASSERT_TRUE(std::regex_search(
      C->LoaderTable, M, std::regex(R"(16#([0-9a-f]{8}) \()")));
  uint32_t Addr =
      static_cast<uint32_t>(std::stoul(M[1].str(), nullptr, 16)) + 4;
  C->LoaderTable = M.prefix().str() + psHex(Addr) + " (" +
                   M.suffix().str();
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "disagrees with the image symbol")) << R.str();
}

TEST_P(VerifyTest, MissingAnchorIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // Drop the anchormap entry the static array's /where depends on.
  mutate(C->LoaderTable, R"(/_stanchor_[0-9a-f_]+ 16#[0-9a-f]{8})", "");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "dangling")) << R.str();
}

TEST_P(VerifyTest, ArchitectureMismatchIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  std::string Wrong = desc().Name == "zvax" ? "zmips" : "zvax";
  mutate(C->PsSymtab, R"(/architecture \([a-z0-9]+\))",
         "/architecture (" + Wrong + ")");
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "but the image is " + desc().Name)) << R.str();
}

//===----------------------------------------------------------------------===//
// Corruption class 6: stabs out of sync with the PostScript table
//===----------------------------------------------------------------------===//

TEST_P(VerifyTest, RenamedStabProcedureIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // Rename main's stab record in place (same length, different name).
  const uint8_t Pattern[] = {4, 'm', 'a', 'i', 'n'};
  auto It = std::search(C->Stabs.begin(), C->Stabs.end(), Pattern,
                        Pattern + sizeof(Pattern));
  ASSERT_NE(It, C->Stabs.end());
  std::copy_n("niam", 4, It + 1);
  Report R = verify(*C);
  EXPECT_GE(R.errors(), 2u); // both directions of the name-set mismatch
  EXPECT_TRUE(mentions(R, "stabs")) << R.str();
}

INSTANTIATE_TEST_SUITE_P(AllTargets, VerifyTest,
                         ::testing::ValuesIn(target::allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

//===----------------------------------------------------------------------===//
// The multi-blob stabs reader
//===----------------------------------------------------------------------===//

TEST(ReadAllStabs, ConcatenatedBlobsParseAsOneList) {
  const target::TargetDesc &Desc = *target::targetByName("zmips");
  auto C = lcc::compileAndLink(
      {{"a.c", "int f(int x) { return x + 1; }\n"},
       {"b.c", "int f(int); int main() { return f(1); }\n"}},
      Desc, {});
  ASSERT_TRUE(bool(C)) << C.message();
  auto All = lcc::readAllStabs((*C)->Stabs);
  ASSERT_TRUE(bool(All)) << All.message();
  auto First = lcc::readStabs((*C)->Stabs);
  ASSERT_TRUE(bool(First)) << First.message();
  EXPECT_GT(All->size(), First->size());
  bool SawMain = false;
  for (const lcc::Stab &S : *All)
    SawMain |= S.Name == "main";
  EXPECT_TRUE(SawMain);
}

TEST(ReadAllStabs, TruncatedBlobIsAnError) {
  const target::TargetDesc &Desc = *target::targetByName("zmips");
  auto C = lcc::compileAndLink({{"a.c", "int main() { return 0; }\n"}},
                               Desc, {});
  ASSERT_TRUE(bool(C));
  std::vector<uint8_t> Bytes = (*C)->Stabs;
  Bytes.resize(Bytes.size() - 3);
  EXPECT_FALSE(bool(lcc::readAllStabs(Bytes)));
}

//===----------------------------------------------------------------------===//
// Diagnostic rendering
//===----------------------------------------------------------------------===//

TEST(Diagnostics, RenderCheckArtifactSymbolAndAddress) {
  Diagnostic D;
  D.Check = "stop-site";
  D.Art = Artifact::Image;
  D.Symbol = "fib";
  D.Addr = 0x1010;
  D.HasAddr = true;
  D.Message = "stopping point does not hold the no-op word";
  EXPECT_EQ(D.str(), "error: [stop-site] image: fib @ 0x00001010: "
                     "stopping point does not hold the no-op word");
  D.Sev = Severity::Warning;
  D.HasAddr = false;
  EXPECT_EQ(D.str(), "warning: [stop-site] image: fib: "
                     "stopping point does not hold the no-op word");
}

} // namespace
