//===- tests/verify/symtab_errors_test.cpp - error context ------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// symtab::force / field failures must say which dictionary key and which
/// symbol went wrong — the verifier surfaces these messages verbatim, and
/// "deferred value did not yield one result" with no context is useless
/// against a 13,000-line program's table.
///
//===----------------------------------------------------------------------===//

#include "core/symtab.h"

#include <gtest/gtest.h>

using namespace ldb;
using namespace ldb::ps;

namespace symtab = ldb::core::symtab;

namespace {

Object namedEntry(const std::string &Name) {
  auto D = std::make_shared<DictImpl>();
  D->set("name", Object::makeString(Name));
  return Object::makeDict(D);
}

TEST(SymtabErrors, MissingFieldNamesKeyAndSymbol) {
  Interp I;
  Object Entry = namedEntry("fib");
  Expected<Object> V = symtab::field(I, Entry, "framesize");
  ASSERT_FALSE(bool(V));
  EXPECT_NE(V.message().find("/framesize"), std::string::npos)
      << V.message();
  EXPECT_NE(V.message().find("'fib'"), std::string::npos) << V.message();
}

TEST(SymtabErrors, MissingFieldWithoutNameStillNamesKey) {
  Interp I;
  Object Entry = Object::makeDict(std::make_shared<DictImpl>());
  Expected<Object> V = symtab::field(I, Entry, "uplink");
  ASSERT_FALSE(bool(V));
  EXPECT_EQ(V.message(), "symbol-table entry has no /uplink");
}

TEST(SymtabErrors, FailedDeferredFieldNamesKeyAndSymbol) {
  Interp I;
  Object Entry = namedEntry("a");
  Object Bad = Object::makeString("undefinedoperator");
  Bad.Exec = true;
  Entry.DictVal->set("where", Bad);
  Expected<Object> V = symtab::field(I, Entry, "where");
  ASSERT_FALSE(bool(V));
  EXPECT_NE(V.message().find("forcing /where of 'a'"), std::string::npos)
      << V.message();
}

TEST(SymtabErrors, UndefinedLazyReferenceNamesTheEntry) {
  Interp I;
  Object Ref = Object::makeName("S99999", /*Exec=*/false);
  Error E = symtab::force(I, Ref);
  ASSERT_TRUE(bool(E));
  EXPECT_NE(E.message().find("S99999"), std::string::npos) << E.message();
}

TEST(SymtabErrors, DeferredValueYieldingNothingIsReported) {
  Interp I;
  Object Entry = namedEntry("v");
  Object Empty = Object::makeString("");
  Empty.Exec = true;
  Entry.DictVal->set("type", Empty);
  Expected<Object> V = symtab::field(I, Entry, "type");
  ASSERT_FALSE(bool(V));
  EXPECT_NE(V.message().find("did not yield one result"), std::string::npos)
      << V.message();
  EXPECT_NE(V.message().find("'v'"), std::string::npos) << V.message();
}

} // namespace
