//===- tests/verify/mdlint_test.cpp - machine-dependence isolation ----------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/mdlint.h"

#include "support/strings.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace ldb;
using namespace ldb::verify;

namespace fs = std::filesystem;

namespace {

class MdLintTest : public ::testing::Test {
protected:
  void SetUp() override {
    // One tree per test case: ctest runs the cases as concurrent
    // processes, so a shared path would race on remove_all.
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Root = fs::path(::testing::TempDir()) /
           (std::string("mdlint_") + Info->name());
    fs::remove_all(Root);
    fs::create_directories(Root / "core");
  }
  void TearDown() override { fs::remove_all(Root); }

  void addFile(const std::string &Rel, const std::string &Contents) {
    fs::path P = Root / Rel;
    fs::create_directories(P.parent_path());
    ASSERT_TRUE(writeFile(P.string(), Contents));
  }

  fs::path Root;
};

TEST_F(MdLintTest, TargetIdentifierInSharedCodeIsFlagged) {
  addFile("core/shared.cpp",
          "int shared();\n"
          "int leak() { return zmipsNopWord(); }\n");
  std::vector<Diagnostic> Diags = mdIsolationLint(Root.string());
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Check, "md-lint");
  EXPECT_EQ(Diags[0].Art, Artifact::Source);
  EXPECT_EQ(Diags[0].Symbol, "core/shared.cpp:2");
  EXPECT_NE(Diags[0].Message.find("zmips"), std::string::npos);
}

TEST_F(MdLintTest, TaggedMachineDependentFileIsExempt) {
  addFile("core/zmips_arch.cpp",
          "//===- zmips_arch.cpp -===//\n"
          "//\n"
          "// MACHINE-DEPENDENT: zmips. Counted by the Sec 4.3 LoC "
          "experiment.\n"
          "uint32_t zmipsNopWord() { return 0; }\n");
  EXPECT_TRUE(mdIsolationLint(Root.string()).empty());
}

TEST_F(MdLintTest, DispatchRegistriesAreExempt) {
  addFile("core/arch.cpp", "void f() { z68kArchitecture(); }\n");
  addFile("lcc/cgtarget.cpp", "void g() { zvaxCgTarget(); }\n");
  addFile("nub/nubmd.cpp", "void h() { zsparcNubMd(); }\n");
  EXPECT_TRUE(mdIsolationLint(Root.string()).empty());
}

TEST_F(MdLintTest, CommentsAndStringsAreExempt) {
  addFile("core/doc.cpp",
          "// the zmips runtime procedure table\n"
          "/* z68k saves floats in 80-bit format */\n"
          "const char *Name = \"zsparc\";\n"
          "const char Quote = 'z'; // not zvax\n"
          "int f() { return 0; }\n");
  EXPECT_TRUE(mdIsolationLint(Root.string()).empty());
}

TEST_F(MdLintTest, SuffixOfALongerIdentifierIsNotFlagged) {
  addFile("core/ok.cpp", "int ldb_zmips_count;\n");
  EXPECT_TRUE(mdIsolationLint(Root.string()).empty());
}

TEST_F(MdLintTest, EveryTargetNameIsCovered) {
  addFile("a.cpp", "int a = zmipsX;\n");
  addFile("b.cpp", "int b = z68kX;\n");
  addFile("c.cpp", "int c = zsparcX;\n");
  addFile("d.cpp", "int d = zvaxX;\n");
  EXPECT_EQ(mdIsolationLint(Root.string()).size(), 4u);
}

TEST_F(MdLintTest, NonSourceFilesAreIgnored) {
  addFile("notes.md", "zmips everywhere\n");
  addFile("build.txt", "zvax\n");
  EXPECT_TRUE(mdIsolationLint(Root.string()).empty());
}

// The real source tree must satisfy its own discipline (the acceptance
// check the CLI also runs).
TEST(MdLintTree, LdbSourceTreeIsClean) {
  std::vector<Diagnostic> Diags =
      mdIsolationLint(std::string(LDB_SOURCE_ROOT) + "/src");
  std::string All;
  for (const Diagnostic &D : Diags)
    All += D.str() + "\n";
  EXPECT_TRUE(Diags.empty()) << All;
}

} // namespace
