//===- tests/verify/cfa_test.cpp - control-flow analysis ---------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation-kill suite for the cfa family: pristine images analyze clean
/// on every target, and each seeded corruption — a reachable word no
/// instruction assembles to, a linked-in break word, a branch or jump
/// escaping its procedure, a call to a non-entry, control falling off a
/// procedure's end, an unreachable stopping point, overlapping or
/// out-of-text code ranges — produces exactly the expected diagnostic.
///
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "support/byteorder.h"
#include "workload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::target;

namespace {

std::unique_ptr<lcc::Compilation> compile(const TargetDesc &Desc,
                                          const std::string &Source) {
  auto C = lcc::compileAndLink({{"fib.c", Source}}, Desc, {});
  EXPECT_TRUE(bool(C)) << C.message();
  return C ? C.take() : nullptr;
}

/// Runs only the cfa family (plus the symtab walk that feeds it stop
/// addresses), so every diagnostic a mutation produces is a cfa one.
Report verifyCfa(const lcc::Compilation &C) {
  Options Opt;
  Opt.CheckStops = Opt.CheckScopes = Opt.CheckWhere = Opt.CheckTypes =
      Opt.CheckAgreement = Opt.CheckBlob = false;
  Expected<Report> R = verifyCompilation(C, Opt);
  EXPECT_TRUE(bool(R)) << R.message();
  return R ? *R : Report();
}

bool mentions(const Report &R, const std::string &Needle) {
  for (const Diagnostic &D : R.Diags)
    if (D.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

uint32_t wordAt(const lcc::Image &Img, uint32_t Addr) {
  return static_cast<uint32_t>(
      unpackInt(Img.Text.data() + (Addr - Img.TextBase), 4, Img.Desc->Order));
}

void setWord(lcc::Image &Img, uint32_t Addr, uint32_t W) {
  packInt(W, Img.Text.data() + (Addr - Img.TextBase), 4, Img.Desc->Order);
}

const lcc::ProcInfo *proc(const lcc::Image &Img, const std::string &Name) {
  for (const lcc::ProcInfo &P : Img.Procs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

/// Address of the first instruction of kind \p O inside \p P, or 0.
uint32_t findOp(const lcc::Image &Img, const lcc::ProcInfo &P, Op O) {
  for (uint32_t A = P.CodeOffset; A + 4 <= P.CodeOffset + P.CodeSize; A += 4) {
    Instr In;
    if (Img.Desc->Enc.decode(wordAt(Img, A), In) && In.Opc == O)
      return A;
  }
  return 0;
}

class CfaTest : public ::testing::TestWithParam<const TargetDesc *> {
protected:
  const TargetDesc &desc() { return *GetParam(); }
};

TEST_P(CfaTest, PristineProgramsAreClean) {
  for (const std::string &Source :
       {bench::helloProgram(), bench::fibProgram(),
        bench::generateProgram(800)}) {
    auto C = compile(desc(), Source);
    ASSERT_TRUE(C);
    Report R = verifyCfa(*C);
    EXPECT_TRUE(R.clean()) << R.str();
  }
}

TEST_P(CfaTest, ReachableUndecodableWordIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  // The all-zero word decodes on no target (tested in encoding_test).
  setWord(C->Img, P->CodeOffset, 0);
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no instruction assembles to")) << R.str();
}

TEST_P(CfaTest, ReachableBreakWordIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  setWord(C->Img, P->CodeOffset, desc().breakWord());
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "break word")) << R.str();
}

TEST_P(CfaTest, AlwaysTakenBranchOutOfRangeIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  // Beq r0, r0 is the code generator's unconditional jump; aim it far
  // past the procedure.
  setWord(C->Img, P->CodeOffset,
          desc().Enc.encode(Instr::i(Op::Beq, 0, 0, 1000)));
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "outside the procedure's code range")) << R.str();
}

TEST_P(CfaTest, ConditionalBranchBeforeProcIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  // A genuinely conditional branch (distinct registers) whose taken edge
  // lands far before the text segment.
  setWord(C->Img, P->CodeOffset,
          desc().Enc.encode(Instr::i(Op::Bne, 1, 2, -8000)));
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "outside the procedure's code range")) << R.str();
}

TEST_P(CfaTest, JumpOutsideTextIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  setWord(C->Img, P->CodeOffset,
          desc().Enc.encode(Instr::j(Op::J, 0x10000)));
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "outside the procedure's code range")) << R.str();
}

TEST_P(CfaTest, CallToNonEntryIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "main");
  ASSERT_NE(P, nullptr);
  uint32_t CallAt = findOp(C->Img, *P, Op::Jal);
  ASSERT_NE(CallAt, 0u) << "main must call fib";
  Instr In;
  ASSERT_TRUE(desc().Enc.decode(wordAt(C->Img, CallAt), In));
  // One word past the callee's entry is squarely inside its body.
  setWord(C->Img, CallAt, desc().Enc.encode(Instr::j(Op::Jal, In.Imm + 1)));
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no procedure entry the loader table knows"))
      << R.str();
}

TEST_P(CfaTest, ControlFallingOffTheEndIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  // The procedure placed last in the text segment ends exactly where the
  // loader-table view ends, so a no-op in its final word falls off.
  const lcc::ProcInfo *Last = nullptr;
  for (const lcc::ProcInfo &P : C->Img.Procs)
    if (!Last || P.CodeOffset > Last->CodeOffset)
      Last = &P;
  ASSERT_NE(Last, nullptr);
  uint32_t TextEnd =
      C->Img.TextBase + static_cast<uint32_t>(C->Img.Text.size());
  ASSERT_EQ(Last->CodeOffset + Last->CodeSize, TextEnd);
  uint32_t LastWord = TextEnd - 4;
  int32_t Disp =
      static_cast<int32_t>(LastWord - (Last->CodeOffset + 4)) / 4;
  setWord(C->Img, Last->CodeOffset,
          desc().Enc.encode(Instr::i(Op::Beq, 0, 0, Disp)));
  setWord(C->Img, LastWord, desc().nopWord());
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "falls off the end")) << R.str();
}

TEST_P(CfaTest, UnreachableStopSiteIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  const lcc::ProcInfo *P = proc(C->Img, "fib");
  ASSERT_NE(P, nullptr);
  // An Exit at the entry makes every later block — including its planted
  // stopping points — unreachable.
  setWord(C->Img, P->CodeOffset,
          desc().Enc.encode(Instr::i(
              Op::Sys, 0, 0, static_cast<int32_t>(Syscall::Exit))));
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "unreachable from the procedure entry")) << R.str();
}

TEST_P(CfaTest, OverlappingProcRangesAreCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  ASSERT_GE(C->Img.Procs.size(), 2u);
  // Stretch the first-placed procedure over its successor's entry.
  lcc::ProcInfo *First = &C->Img.Procs[0];
  for (lcc::ProcInfo &P : C->Img.Procs)
    if (P.CodeOffset < First->CodeOffset)
      First = &P;
  First->CodeSize += 8;
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "overlaps")) << R.str();
}

TEST_P(CfaTest, ProcRangeOutsideTextIsCaught) {
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  ASSERT_FALSE(C->Img.Procs.empty());
  C->Img.Procs[0].CodeSize =
      static_cast<uint32_t>(C->Img.Text.size()) + 64;
  Report R = verifyCfa(*C);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "outside the text segment")) << R.str();
}

TEST_P(CfaTest, ReturnStillTerminatesTheWalk) {
  // A control-positive check on the successor model: replacing fib's
  // body wholesale would be fragile, but verifying that a pristine image
  // stays clean when the verifier re-runs (CFG construction is pure)
  // guards against state leaking between procedures.
  auto C = compile(desc(), bench::fibProgram());
  ASSERT_TRUE(C);
  EXPECT_TRUE(verifyCfa(*C).clean());
  EXPECT_TRUE(verifyCfa(*C).clean());
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CfaTest,
                         ::testing::ValuesIn(target::allTargets()),
                         [](const auto &Info) { return Info.param->Name; });

} // namespace
