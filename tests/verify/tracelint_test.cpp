//===- tests/verify/tracelint_test.cpp - wire-trace protocol linting ---------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutation-kill suite for the trace family: a clean recorded session
/// lints clean, and each seeded discipline violation — duplicate or
/// non-increasing sequence numbers, a non-idempotent retransmit without a
/// licensing fault, a store posted after a Continue, window overflow, bad
/// checksums, replies without requests, reordered and duplicated traces —
/// is flagged.
///
/// Trace records are synthesized directly in the recorder's text format
/// (kind and seq are what the linter reads; declared and computed
/// checksums are carried per record, so a synthetic frame is "intact"
/// exactly when the two agree).
///
//===----------------------------------------------------------------------===//

#include "verify/tracelint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

using namespace ldb;
using namespace ldb::verify;

namespace {

/// Writes \p Body under a v1 header with \p Window and lints it. The
/// path carries the pid: ctest runs each test in its own process, in
/// parallel, so a per-process counter alone would collide.
Report lint(const std::string &Body, unsigned Window = 32,
            unsigned Override = 0) {
  static int Counter = 0;
  std::string Path = ::testing::TempDir() + "ldb_trace_" +
                     std::to_string(getpid()) + "_" +
                     std::to_string(Counter++) + ".txt";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  EXPECT_NE(F, nullptr);
  std::fprintf(F, "# ldb-wire-trace v1 window=%u\n", Window);
  std::fputs(Body.c_str(), F);
  std::fclose(F);
  Expected<Report> R = lintWireTrace(Path, Override);
  EXPECT_TRUE(bool(R)) << R.message();
  std::remove(Path.c_str());
  return R ? *R : Report();
}

bool mentions(const Report &R, const std::string &Needle) {
  for (const Diagnostic &D : R.Diags)
    if (D.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

// Kinds by number, as the recorder writes them: Hello=1 FetchInt=2
// StoreInt=3 Continue=6 StoreBlock=10; Welcome=64 Stopped=65 Exited=66
// FetchIntReply=67 Ack=69 FetchBlockReply=71 Corrupt=72.

const char CleanSession[] = "F 1 b 64 0 9 aa aa 0 Welcome\n"
                            "F 1 b 65 0 20 aa aa 5 Stopped\n"
                            "F 1 a 1 1 0 bb bb 10 Hello\n"
                            "F 1 b 69 1 0 cc cc 20 Ack\n"
                            "F 1 a 2 2 0 dd dd 30 FetchInt\n"
                            "F 1 b 67 2 4 ee ee 40 FetchIntReply\n";

TEST(TraceLint, CleanSessionIsClean) {
  Report R = lint(CleanSession);
  EXPECT_TRUE(R.clean()) << R.str();
  EXPECT_EQ(R.EntriesWalked, 6u);
}

TEST(TraceLint, MissingFileIsAnError) {
  EXPECT_FALSE(bool(lintWireTrace("/nonexistent/ldb.trace")));
}

TEST(TraceLint, TwoLinksKeepSeparateSequenceSpaces) {
  // The same seq numbers on another link ordinal are a fresh session,
  // not duplicates.
  std::string Two = CleanSession;
  for (const char *Line : {"F 2 a 1 1 0 aa aa 50 Hello\n",
                           "F 2 b 69 1 0 aa aa 60 Ack\n"})
    Two += Line;
  Report R = lint(Two);
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, DuplicateSeqWithDifferentKindIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 a 3 1 0 aa aa 10 StoreInt\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "seq 1 reused")) << R.str();
}

TEST(TraceLint, NonIncreasingFreshSeqIsCaught) {
  Report R = lint("F 1 a 2 5 0 aa aa 0 FetchInt\n"
                  "F 1 b 67 5 4 aa aa 5 FetchIntReply\n"
                  "F 1 a 2 3 0 aa aa 10 FetchInt\n"
                  "F 1 b 67 3 4 aa aa 15 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "not strictly increasing")) << R.str();
}

TEST(TraceLint, NonIdempotentRetransmitIsCaught) {
  Report R = lint("F 1 a 1 1 0 aa aa 0 Hello\n"
                  "F 1 a 1 1 0 aa aa 10 Hello\n"
                  "F 1 b 69 1 0 aa aa 20 Ack\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "not idempotent")) << R.str();
}

TEST(TraceLint, IdempotentRetransmitIsAllowed) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 a 2 1 0 aa aa 10 FetchInt\n"
                  "F 1 b 67 1 4 aa aa 20 FetchIntReply\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, DroppedFrameLicensesRetransmit) {
  // The first Continue copy is dropped by the link ('D'); resending a
  // non-idempotent kind is then legitimate.
  Report R = lint("D 1 a 6 1 0 aa aa 0 Continue\n"
                  "F 1 a 6 1 0 aa aa 10 Continue\n"
                  "F 1 b 65 1 20 aa aa 20 Stopped\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, CorruptReportLicensesResend) {
  Report R = lint("F 1 a 1 1 0 aa aa 0 Hello\n"
                  "F 1 b 72 1 4 aa aa 10 Corrupt\n"
                  "F 1 a 1 1 0 aa aa 20 Hello\n"
                  "F 1 b 69 1 0 aa aa 30 Ack\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, StoreAfterContinueIsCaught) {
  Report R = lint("F 1 a 6 1 0 aa aa 0 Continue\n"
                  "F 1 a 3 2 8 aa aa 10 StoreInt\n"
                  "F 1 b 65 1 20 aa aa 20 Stopped\n"
                  "F 1 b 69 2 0 aa aa 30 Ack\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "posted while a Continue is outstanding"))
      << R.str();
}

TEST(TraceLint, StoresRidingAheadOfContinueAreClean) {
  // The production flush discipline: stores go on the wire first, the
  // Continue follows, and the acks trail the Stopped.
  Report R = lint("F 1 a 3 1 8 aa aa 0 StoreInt\n"
                  "F 1 a 10 2 40 aa aa 5 StoreBlock\n"
                  "F 1 a 6 3 0 aa aa 10 Continue\n"
                  "F 1 b 69 1 0 aa aa 20 Ack\n"
                  "F 1 b 69 2 0 aa aa 25 Ack\n"
                  "F 1 b 65 3 20 aa aa 30 Stopped\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, SecondContinueIsCaught) {
  Report R = lint("F 1 a 6 1 0 aa aa 0 Continue\n"
                  "F 1 a 6 2 0 aa aa 10 Continue\n"
                  "F 1 b 65 1 20 aa aa 20 Stopped\n"
                  "F 1 b 65 2 20 aa aa 30 Stopped\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "second Continue")) << R.str();
}

TEST(TraceLint, WindowOverflowIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 a 2 2 0 aa aa 1 FetchInt\n"
                  "F 1 a 2 3 0 aa aa 2 FetchInt\n",
                  /*Window=*/2);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "exceeds the window of 2")) << R.str();
}

TEST(TraceLint, WindowOverrideBeatsTheHeader) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 a 2 2 0 aa aa 1 FetchInt\n"
                  "F 1 a 2 3 0 aa aa 2 FetchInt\n",
                  /*Window=*/2, /*Override=*/8);
  EXPECT_EQ(R.errors(), 0u) << R.str();
}

TEST(TraceLint, ChecksumMismatchIsCaught) {
  Report R = lint("F 1 a 2 1 0 12345678 9abcdef0 0 FetchInt\n"
                  "F 1 b 67 1 4 aa aa 10 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "declares checksum")) << R.str();
}

TEST(TraceLint, GarbledFrameChecksumIsExpected) {
  // 'G' means the link damaged the frame on purpose; its checksum
  // mismatch and even an unknown kind byte are not findings, and the
  // fault licenses the retransmit that follows.
  Report R = lint("G 1 a 6 1 0 12345678 9abcdef0 0 Continue\n"
                  "F 1 a 6 1 0 aa aa 10 Continue\n"
                  "F 1 b 65 1 20 aa aa 20 Stopped\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, UnknownKindIsCaught) {
  Report R = lint("F 1 a 50 1 0 aa aa 0 ?\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "not in the protocol")) << R.str();
}

TEST(TraceLint, ReplyWithoutRequestIsCaught) {
  Report R = lint("F 1 b 67 9 4 aa aa 0 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no outstanding request")) << R.str();
}

TEST(TraceLint, WrongReplyKindIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 b 71 1 8 aa aa 10 FetchBlockReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "does not answer a FetchInt")) << R.str();
}

TEST(TraceLint, StaleSecondReplyIsAWarning) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 b 67 1 4 aa aa 10 FetchIntReply\n"
                  "F 1 b 67 1 4 aa aa 20 FetchIntReply\n");
  EXPECT_EQ(R.errors(), 0u) << R.str();
  EXPECT_GE(R.warnings(), 1u);
  EXPECT_TRUE(mentions(R, "a second time")) << R.str();
}

TEST(TraceLint, RequestWithSeqZeroIsCaught) {
  Report R = lint("F 1 a 2 0 0 aa aa 0 FetchInt\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "sequence 0")) << R.str();
}

TEST(TraceLint, NonSpontaneousSeqZeroReplyIsCaught) {
  Report R = lint("F 1 b 67 0 4 aa aa 0 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "not a spontaneous kind")) << R.str();
}

TEST(TraceLint, WelcomeWithASeqIsCaught) {
  Report R = lint("F 1 b 64 5 9 aa aa 0 Welcome\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "Welcome must be spontaneous")) << R.str();
}

TEST(TraceLint, BackwardTimeIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 100 FetchInt\n"
                  "F 1 b 67 1 4 aa aa 50 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "time runs backward")) << R.str();
}

TEST(TraceLint, UnparseableRecordIsCaught) {
  Report R = lint("this is not a trace record\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "unparseable trace record")) << R.str();
}

TEST(TraceLint, OutstandingAtEofIsAWarning) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n");
  EXPECT_EQ(R.errors(), 0u) << R.str();
  EXPECT_GE(R.warnings(), 1u);
  EXPECT_TRUE(mentions(R, "still outstanding")) << R.str();
}

TEST(TraceLint, RoleMixingIsCaught) {
  // Side 'a' established itself as the client, then emits a reply.
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 a 67 1 4 aa aa 10 FetchIntReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "both requests and replies")) << R.str();
}

TEST(TraceLint, DuplicatedFrameInATraceIsCaught) {
  // The acceptance case: a tool (or a splice) duplicating a Hello frame
  // must be flagged — nothing lost a copy, so nothing licenses a repeat.
  std::string Dup = CleanSession;
  Dup += "F 1 a 1 1 0 bb bb 50 Hello\n";
  Report R = lint(Dup);
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "not idempotent")) << R.str();
}

TEST(TraceLint, ReorderedTraceIsCaught) {
  // The reply spliced ahead of its request answers nothing.
  Report R = lint("F 1 b 67 1 4 aa aa 0 FetchIntReply\n"
                  "F 1 a 2 1 0 aa aa 10 FetchInt\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no outstanding request")) << R.str();
}

// Nub-record kinds: SetCondition=11 ClearCondition=12 SetTracepoint=13
// DrainTrace=14; TraceReply=73.

TEST(TraceLint, NubRecordSessionIsClean) {
  // The production auto-resume shape: records shipped and acked before
  // the Continue, the buffered trace records drained after the stop.
  Report R = lint("F 1 a 11 1 40 aa aa 0 SetCondition\n"
                  "F 1 a 13 2 60 aa aa 5 SetTracepoint\n"
                  "F 1 b 69 1 0 aa aa 10 Ack\n"
                  "F 1 b 69 2 0 aa aa 15 Ack\n"
                  "F 1 a 6 3 1 aa aa 20 Continue\n"
                  "F 1 b 65 3 40 aa aa 30 Stopped\n"
                  "F 1 a 14 4 4 aa aa 40 DrainTrace\n"
                  "F 1 b 73 4 100 aa aa 50 TraceReply\n"
                  "F 1 a 12 5 5 aa aa 60 ClearCondition\n"
                  "F 1 b 69 5 0 aa aa 70 Ack\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, NubRecordRetransmitsAreIdempotent) {
  // Re-setting a record replaces it verbatim and a re-drain just yields
  // what is left, so a timeout retransmit needs no licensing fault.
  Report R = lint("F 1 a 11 1 40 aa aa 0 SetCondition\n"
                  "F 1 a 11 1 40 aa aa 10 SetCondition\n"
                  "F 1 b 69 1 0 aa aa 20 Ack\n"
                  "F 1 a 14 2 4 aa aa 30 DrainTrace\n"
                  "F 1 a 14 2 4 aa aa 40 DrainTrace\n"
                  "F 1 b 73 2 8 aa aa 50 TraceReply\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, DrainAnsweredByAckIsCaught) {
  Report R = lint("F 1 a 14 1 4 aa aa 0 DrainTrace\n"
                  "F 1 b 69 1 0 aa aa 10 Ack\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "does not answer a DrainTrace")) << R.str();
}

TEST(TraceLint, TraceReplyAnsweringAFetchIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 b 73 1 8 aa aa 10 TraceReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "does not answer a FetchInt")) << R.str();
}

TEST(TraceLint, TruncatedDrainReplyIsCaught) {
  // A TraceReply whose bytes were cut short no longer sums to its
  // declared checksum; with no fault injected that is a finding.
  Report R = lint("F 1 a 14 1 4 aa aa 0 DrainTrace\n"
                  "F 1 b 73 1 20 12345678 9abcdef0 10 TraceReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "TraceReply frame declares checksum")) << R.str();
}

TEST(TraceLint, GarbledDrainReplyLicensesRedrain) {
  // The link damaged the reply ('G'): the drain stays outstanding and
  // the client's re-drain is legitimate.
  Report R = lint("F 1 a 14 1 4 aa aa 0 DrainTrace\n"
                  "G 1 b 73 1 20 12345678 9abcdef0 10 TraceReply\n"
                  "F 1 a 14 1 4 aa aa 20 DrainTrace\n"
                  "F 1 b 73 1 20 bb bb 30 TraceReply\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, RequestWhileTargetRunsIsCaught) {
  // A nub-rejected hit must produce no host-visible frames: any request
  // between a Continue and its Stopped means the host serviced a hit the
  // nub should have disposed of locally.
  Report R = lint("F 1 a 6 1 1 aa aa 0 Continue\n"
                  "F 1 a 2 2 9 aa aa 10 FetchInt\n"
                  "F 1 b 67 2 4 aa aa 20 FetchIntReply\n"
                  "F 1 b 65 1 40 aa aa 30 Stopped\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no host-visible frames")) << R.str();
}

TEST(TraceLint, SetConditionWhileTargetRunsIsCaught) {
  Report R = lint("F 1 a 6 1 1 aa aa 0 Continue\n"
                  "F 1 a 11 2 40 aa aa 10 SetCondition\n"
                  "F 1 b 69 2 0 aa aa 20 Ack\n"
                  "F 1 b 65 1 40 aa aa 30 Stopped\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "no host-visible frames")) << R.str();
}

// Time-travel kinds: SetCheckpointPolicy=15 Seek=16 TimelineQuery=17;
// TimelineReply=74.

TEST(TraceLint, TimeTravelSessionIsClean) {
  // The production shape: policy enabled and acked, a run recorded, a
  // seek answered by the restored Stopped, the timeline inspected.
  Report R = lint("F 1 a 15 1 21 aa aa 0 SetCheckpointPolicy\n"
                  "F 1 b 69 1 0 aa aa 10 Ack\n"
                  "F 1 a 6 2 1 aa aa 20 Continue\n"
                  "F 1 b 65 2 40 aa aa 30 Stopped\n"
                  "F 1 a 16 3 8 aa aa 40 Seek\n"
                  "F 1 b 65 3 40 aa aa 50 Stopped\n"
                  "F 1 a 17 4 0 aa aa 60 TimelineQuery\n"
                  "F 1 b 74 4 77 aa aa 70 TimelineReply\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, TimeTravelRetransmitsAreIdempotent) {
  // Re-restoring the same checkpoint lands on the same bytes, a policy
  // re-enable resets to the state the first copy produced, and a
  // timeline read is pure: timeout retransmits need no licensing fault.
  Report R = lint("F 1 a 15 1 21 aa aa 0 SetCheckpointPolicy\n"
                  "F 1 a 15 1 21 aa aa 10 SetCheckpointPolicy\n"
                  "F 1 b 69 1 0 aa aa 20 Ack\n"
                  "F 1 a 16 2 8 aa aa 30 Seek\n"
                  "F 1 a 16 2 8 aa aa 40 Seek\n"
                  "F 1 b 65 2 40 aa aa 50 Stopped\n"
                  "F 1 a 17 3 0 aa aa 60 TimelineQuery\n"
                  "F 1 a 17 3 0 aa aa 70 TimelineQuery\n"
                  "F 1 b 74 3 77 aa aa 80 TimelineReply\n");
  EXPECT_TRUE(R.clean()) << R.str();
}

TEST(TraceLint, SeekAnsweredByExitedIsCaught) {
  // Restoring revives the process: a seek can never answer as Exited.
  Report R = lint("F 1 a 16 1 8 aa aa 0 Seek\n"
                  "F 1 b 66 1 4 aa aa 10 Exited\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "does not answer a Seek")) << R.str();
}

TEST(TraceLint, TimelineReplyAnsweringAFetchIsCaught) {
  Report R = lint("F 1 a 2 1 0 aa aa 0 FetchInt\n"
                  "F 1 b 74 1 77 aa aa 10 TimelineReply\n");
  EXPECT_GE(R.errors(), 1u);
  EXPECT_TRUE(mentions(R, "does not answer a FetchInt")) << R.str();
}

} // namespace
