//===- verify/ldb_verify_main.cpp - the ldb-verify tool ---------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the static debug-info verifier: compiles the
/// requested programs for the requested targets, cross-checks the four
/// debugging artifacts (image, PostScript symbol table, loader table,
/// stabs), and lints the source tree for machine-dependence leaks.
///
/// Run:  build/src/verify/ldb-verify [options]
///   --target=NAME|all       architecture to verify (default all four)
///   --program=SPEC          hello | fib | gen:<lines> | <path>.c;
///                           repeatable (default hello, fib, gen:13000)
///   --deferred              verify deferred-lexing symbol tables too
///   --no-fastload           disable the binary symtab fastload cache
///   --no-md-lint            skip the source-tree lint
///   --md-lint-only          run only the source-tree lint
///   --src-root=DIR          source tree for the lint (default: this
///                           checkout's src/)
///
/// Exits 0 when every report is clean, 1 otherwise.
///
//===----------------------------------------------------------------------===//

#include "verify/mdlint.h"
#include "verify/verify.h"

#include "postscript/fastload.h"
#include "support/strings.h"
#include "workload.h"

#include <cstdio>
#include <cstring>

using namespace ldb;

namespace {

struct ProgramSpec {
  std::string Label;
  lcc::SourceFile Source;
};

Expected<ProgramSpec> resolveProgram(const std::string &Spec) {
  if (Spec == "hello")
    return ProgramSpec{"hello", {"hello.c", bench::helloProgram()}};
  if (Spec == "fib")
    return ProgramSpec{"fib", {"fib.c", bench::fibProgram()}};
  if (Spec.rfind("gen:", 0) == 0) {
    unsigned Lines = static_cast<unsigned>(atoi(Spec.c_str() + 4));
    if (Lines == 0)
      return Error::failure("bad program spec: " + Spec);
    return ProgramSpec{Spec,
                       {Spec + ".c", bench::generateProgram(Lines)}};
  }
  std::string Text;
  if (!readFile(Spec, Text))
    return Error::failure("cannot read " + Spec);
  // The unit name becomes a PostScript name in the symtab's /sourcemap, so
  // strip the directories (a slash ends a name token).
  size_t Slash = Spec.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Spec : Spec.substr(Slash + 1);
  return ProgramSpec{Spec, {Base, Text}};
}

/// Verifies one program on one target; returns the number of errors, or
/// 1 for a program that cannot be compiled or analyzed at all.
unsigned verifyOne(const target::TargetDesc &Desc, const ProgramSpec &Prog,
                   bool Deferred) {
  lcc::CompileOptions CO;
  CO.DeferredSymtab = Deferred;
  Expected<std::unique_ptr<lcc::Compilation>> C =
      lcc::compileAndLink({Prog.Source}, Desc, CO);
  if (!C) {
    std::fprintf(stderr, "ldb-verify: %s/%s: compile failed: %s\n",
                 Desc.Name.c_str(), Prog.Label.c_str(),
                 C.message().c_str());
    return 1;
  }
  Expected<verify::Report> R = verify::verifyCompilation(**C);
  if (!R) {
    std::fprintf(stderr, "ldb-verify: %s/%s: %s\n", Desc.Name.c_str(),
                 Prog.Label.c_str(), R.message().c_str());
    return 1;
  }
  std::printf("%-6s %-10s %-8s %4u entries %4u stops  %s\n",
              Desc.Name.c_str(), Prog.Label.c_str(),
              Deferred ? "deferred" : "eager", R->EntriesWalked,
              R->StopsChecked,
              R->clean() ? "clean"
                         : (std::to_string(R->errors()) + " errors, " +
                            std::to_string(R->warnings()) + " warnings")
                               .c_str());
  if (!R->clean())
    std::fputs(R->str().c_str(), stdout);
  return R->errors();
}

} // namespace

int main(int argc, char **argv) {
  std::string TargetName = "all";
  std::vector<std::string> Programs;
  std::string SrcRoot = std::string(LDB_SOURCE_ROOT) + "/src";
  bool Deferred = false, MdLint = true, MdLintOnly = false;

  for (int K = 1; K < argc; ++K) {
    std::string Arg = argv[K];
    if (Arg.rfind("--target=", 0) == 0)
      TargetName = Arg.substr(9);
    else if (Arg.rfind("--program=", 0) == 0)
      Programs.push_back(Arg.substr(10));
    else if (Arg == "--deferred")
      Deferred = true;
    else if (Arg == "--no-fastload")
      ps::fastload::Cache::global().setEnabled(false);
    else if (Arg == "--no-md-lint")
      MdLint = false;
    else if (Arg == "--md-lint-only")
      MdLintOnly = true;
    else if (Arg.rfind("--src-root=", 0) == 0)
      SrcRoot = Arg.substr(11);
    else {
      std::fprintf(stderr, "ldb-verify: unknown option %s\n", Arg.c_str());
      return 2;
    }
  }
  if (Programs.empty())
    Programs = {"hello", "fib", "gen:13000"};

  std::vector<const target::TargetDesc *> Targets;
  if (TargetName == "all") {
    Targets = target::allTargets();
  } else if (const target::TargetDesc *D = target::targetByName(TargetName)) {
    Targets.push_back(D);
  } else {
    std::fprintf(stderr, "ldb-verify: unknown target %s\n",
                 TargetName.c_str());
    return 2;
  }

  unsigned Errors = 0;
  if (!MdLintOnly) {
    for (const std::string &Spec : Programs) {
      Expected<ProgramSpec> Prog = resolveProgram(Spec);
      if (!Prog) {
        std::fprintf(stderr, "ldb-verify: %s\n", Prog.message().c_str());
        return 2;
      }
      for (const target::TargetDesc *D : Targets) {
        Errors += verifyOne(*D, *Prog, /*Deferred=*/false);
        if (Deferred)
          Errors += verifyOne(*D, *Prog, /*Deferred=*/true);
      }
    }
  }

  if (MdLint || MdLintOnly) {
    std::vector<verify::Diagnostic> Lint = verify::mdIsolationLint(SrcRoot);
    std::printf("md-lint %-25s %s\n", SrcRoot.c_str(),
                Lint.empty()
                    ? "clean"
                    : (std::to_string(Lint.size()) + " findings").c_str());
    for (const verify::Diagnostic &D : Lint) {
      std::fputs(D.str().c_str(), stdout);
      std::fputc('\n', stdout);
      Errors += D.Sev == verify::Severity::Error;
    }
  }

  return Errors ? 1 : 0;
}
