//===- verify/ldb_verify_main.cpp - the ldb-verify tool ---------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the static debug-info verifier: compiles the
/// requested programs for the requested targets, cross-checks the
/// debugging artifacts (image, PostScript symbol table, loader table,
/// stabs, fastload blobs, control flow), lints recorded wire traces, and
/// lints the source tree for machine-dependence leaks. Independent
/// (target, program, mode) verifications run on a small thread pool;
/// results print in a fixed order regardless of scheduling, and each
/// report is sorted and deduplicated, so two runs produce byte-identical
/// output.
///
//===----------------------------------------------------------------------===//

#include "verify/mdlint.h"
#include "verify/tracelint.h"
#include "verify/verify.h"

#include "core/symblob.h"
#include "postscript/fastload.h"
#include "support/strings.h"
#include "workload.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <thread>

using namespace ldb;

namespace {

const char *HelpText = R"(ldb-verify - static verifier for ldb's debugging artifacts

Usage: ldb-verify [options]

  --target=NAME|all       architecture to verify (default all four)
  --program=SPEC          hello | fib | gen:<lines> | <path>.c;
                          repeatable (default hello, fib, gen:13000)
  --deferred              verify deferred-lexing symbol tables too
  --family=LIST           comma-separated check families to run, out of
                          stop-site,scope,where,type,agreement,cfa,blob,
                          md-lint,trace (default: all; "trace" selects
                          only the --trace lint, skipping the sweep)
  --json[=FILE]           emit diagnostics as JSON records (family,
                          severity, artifact, symbol, address); with no
                          FILE the JSON replaces the table on stdout
  --trace=FILE            lint a wire trace recorded via LDB_WIRE_TRACE;
                          repeatable
  --window=N              in-flight window for --trace (default: the
                          trace header's value, else 32)
  --jobs=N                worker threads for the verification sweep
                          (default: up to 4)
  --no-fastload           disable the binary symtab fastload cache
  --no-symblob            disable the compiled LDBI debug-info cache
  --no-md-lint            skip the source-tree lint
  --md-lint-only          run only the source-tree lint
  --src-root=DIR          source tree for the lint (default: this
                          checkout's src/)
  --help                  print this and exit

Exit status:
  0  every artifact verified clean (warnings allowed)
  1  at least one error-severity diagnostic was reported
  2  artifacts could not be loaded at all: unknown option or target,
     a program that does not compile, or an unreadable trace file
)";

struct ProgramSpec {
  std::string Label;
  lcc::SourceFile Source;
};

Expected<ProgramSpec> resolveProgram(const std::string &Spec) {
  if (Spec == "hello")
    return ProgramSpec{"hello", {"hello.c", bench::helloProgram()}};
  if (Spec == "fib")
    return ProgramSpec{"fib", {"fib.c", bench::fibProgram()}};
  if (Spec.rfind("gen:", 0) == 0) {
    unsigned Lines = static_cast<unsigned>(atoi(Spec.c_str() + 4));
    if (Lines == 0)
      return Error::failure("bad program spec: " + Spec);
    return ProgramSpec{Spec,
                       {Spec + ".c", bench::generateProgram(Lines)}};
  }
  std::string Text;
  if (!readFile(Spec, Text))
    return Error::failure("cannot read " + Spec);
  // The unit name becomes a PostScript name in the symtab's /sourcemap, so
  // strip the directories (a slash ends a name token).
  size_t Slash = Spec.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Spec : Spec.substr(Slash + 1);
  return ProgramSpec{Spec, {Base, Text}};
}

//===----------------------------------------------------------------------===//
// The verification sweep
//===----------------------------------------------------------------------===//

struct Job {
  const target::TargetDesc *Desc;
  const ProgramSpec *Prog;
  bool Deferred;
};

struct JobResult {
  bool Loaded = false;    ///< artifacts compiled and analyzed
  std::string LoadError;  ///< why not, when !Loaded
  verify::Report R;
};

JobResult runJob(const Job &J, const verify::Options &Opt) {
  JobResult Res;
  lcc::CompileOptions CO;
  CO.DeferredSymtab = J.Deferred;
  Expected<std::unique_ptr<lcc::Compilation>> C =
      lcc::compileAndLink({J.Prog->Source}, *J.Desc, CO);
  if (!C) {
    Res.LoadError = "compile failed: " + C.message();
    return Res;
  }
  Expected<verify::Report> R = verify::verifyCompilation(**C, Opt);
  if (!R) {
    Res.LoadError = R.message();
    return Res;
  }
  Res.Loaded = true;
  Res.R = std::move(*R);
  return Res;
}

//===----------------------------------------------------------------------===//
// JSON output
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void jsonDiags(std::string &Out, const std::vector<verify::Diagnostic> &Diags,
               const char *Indent) {
  Out += "[";
  for (size_t K = 0; K < Diags.size(); ++K) {
    const verify::Diagnostic &D = Diags[K];
    Out += K ? ",\n" : "\n";
    Out += Indent;
    Out += "{\"severity\":\"";
    Out += D.Sev == verify::Severity::Error ? "error" : "warning";
    Out += "\",\"family\":\"" + jsonEscape(D.Check) + "\"";
    Out += ",\"artifact\":\"";
    Out += verify::artifactName(D.Art);
    Out += "\"";
    if (!D.Symbol.empty())
      Out += ",\"symbol\":\"" + jsonEscape(D.Symbol) + "\"";
    if (D.HasAddr)
      Out += ",\"address\":" + std::to_string(D.Addr);
    Out += ",\"message\":\"" + jsonEscape(D.Message) + "\"}";
  }
  Out += "]";
}

} // namespace

int main(int argc, char **argv) {
  std::string TargetName = "all";
  std::vector<std::string> Programs, Traces;
  std::string SrcRoot = std::string(LDB_SOURCE_ROOT) + "/src";
  std::string JsonPath;
  bool Deferred = false, MdLint = true, MdLintOnly = false, Json = false;
  unsigned Window = 0;
  unsigned Jobs = std::min(4u, std::max(1u,
                           std::thread::hardware_concurrency()));
  verify::Options Opt;

  for (int K = 1; K < argc; ++K) {
    std::string Arg = argv[K];
    if (Arg.rfind("--target=", 0) == 0)
      TargetName = Arg.substr(9);
    else if (Arg.rfind("--program=", 0) == 0)
      Programs.push_back(Arg.substr(10));
    else if (Arg == "--deferred")
      Deferred = true;
    else if (Arg == "--no-fastload")
      ps::fastload::Cache::global().setEnabled(false);
    else if (Arg == "--no-symblob")
      core::symblob::Cache::global().setEnabled(false);
    else if (Arg == "--no-md-lint")
      MdLint = false;
    else if (Arg == "--md-lint-only")
      MdLintOnly = true;
    else if (Arg.rfind("--src-root=", 0) == 0)
      SrcRoot = Arg.substr(11);
    else if (Arg == "--json")
      Json = true;
    else if (Arg.rfind("--json=", 0) == 0) {
      Json = true;
      JsonPath = Arg.substr(7);
    } else if (Arg.rfind("--trace=", 0) == 0)
      Traces.push_back(Arg.substr(8));
    else if (Arg.rfind("--window=", 0) == 0)
      Window = static_cast<unsigned>(atoi(Arg.c_str() + 9));
    else if (Arg.rfind("--jobs=", 0) == 0)
      Jobs = std::max(1, atoi(Arg.c_str() + 7));
    else if (Arg.rfind("--family=", 0) == 0) {
      Opt.CheckStops = Opt.CheckScopes = Opt.CheckWhere = Opt.CheckTypes =
          Opt.CheckAgreement = Opt.CheckCfa = Opt.CheckBlob = false;
      MdLint = false;
      std::string List = Arg.substr(9);
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        std::string F = List.substr(
            Pos, Comma == std::string::npos ? Comma : Comma - Pos);
        Pos = Comma == std::string::npos ? List.size() + 1 : Comma + 1;
        if (F == "stop-site")
          Opt.CheckStops = true;
        else if (F == "scope")
          Opt.CheckScopes = true;
        else if (F == "where")
          Opt.CheckWhere = true;
        else if (F == "type")
          Opt.CheckTypes = true;
        else if (F == "agreement")
          Opt.CheckAgreement = true;
        else if (F == "cfa")
          Opt.CheckCfa = true;
        else if (F == "blob")
          Opt.CheckBlob = true;
        else if (F == "md-lint")
          MdLint = true;
        else if (F == "trace") {
          // The trace family runs on whatever --trace files were given;
          // naming it here just deselects the compile-and-verify sweep.
        } else if (!F.empty()) {
          std::fprintf(stderr, "ldb-verify: unknown family %s\n",
                       F.c_str());
          return 2;
        }
      }
    } else if (Arg == "--help" || Arg == "-h") {
      std::fputs(HelpText, stdout);
      return 0;
    } else {
      std::fprintf(stderr,
                   "ldb-verify: unknown option %s (try --help)\n",
                   Arg.c_str());
      return 2;
    }
  }
  if (Programs.empty())
    Programs = {"hello", "fib", "gen:13000"};

  std::vector<const target::TargetDesc *> Targets;
  if (TargetName == "all") {
    Targets = target::allTargets();
  } else if (const target::TargetDesc *D = target::targetByName(TargetName)) {
    Targets.push_back(D);
  } else {
    std::fprintf(stderr, "ldb-verify: unknown target %s\n",
                 TargetName.c_str());
    return 2;
  }

  unsigned Errors = 0;
  bool LoadFailure = false;
  // With --json and no file the JSON replaces the table on stdout, so
  // the output stays machine-parseable; --json=FILE keeps both.
  bool Table = !Json || !JsonPath.empty();
  std::string JsonOut = "{\"version\":1,\"jobs\":[";
  bool FirstJson = true;

  // Run the (target, program, mode) sweep. Every family the verifier
  // runs is pure over its own Compilation; the shared pieces (the atom
  // table, the fastload cache) synchronize themselves, so independent
  // verifications parallelize cleanly.
  bool SweepWanted =
      !MdLintOnly && (Opt.CheckStops || Opt.CheckScopes || Opt.CheckWhere ||
                      Opt.CheckTypes || Opt.CheckAgreement || Opt.CheckCfa ||
                      Opt.CheckBlob);
  if (SweepWanted) {
    std::vector<ProgramSpec> Specs;
    Specs.reserve(Programs.size());
    for (const std::string &Spec : Programs) {
      Expected<ProgramSpec> Prog = resolveProgram(Spec);
      if (!Prog) {
        std::fprintf(stderr, "ldb-verify: %s\n", Prog.message().c_str());
        return 2;
      }
      Specs.push_back(std::move(*Prog));
    }
    std::vector<Job> JobList;
    for (const ProgramSpec &P : Specs)
      for (const target::TargetDesc *D : Targets) {
        JobList.push_back(Job{D, &P, false});
        if (Deferred)
          JobList.push_back(Job{D, &P, true});
      }

    std::vector<JobResult> Results(JobList.size());
    std::atomic<size_t> NextJob{0};
    auto Worker = [&JobList, &Results, &NextJob, &Opt] {
      for (;;) {
        size_t K = NextJob.fetch_add(1);
        if (K >= JobList.size())
          return;
        Results[K] = runJob(JobList[K], Opt);
      }
    };
    std::vector<std::thread> Pool;
    unsigned NThreads =
        std::min<unsigned>(Jobs, static_cast<unsigned>(JobList.size()));
    for (unsigned T = 1; T < NThreads; ++T)
      Pool.emplace_back(Worker);
    Worker();
    for (std::thread &T : Pool)
      T.join();

    // Results print in job order, never completion order.
    for (size_t K = 0; K < JobList.size(); ++K) {
      const Job &J = JobList[K];
      const JobResult &Res = Results[K];
      const char *Mode = J.Deferred ? "deferred" : "eager";
      if (!Res.Loaded) {
        std::fprintf(stderr, "ldb-verify: %s/%s (%s): %s\n",
                     J.Desc->Name.c_str(), J.Prog->Label.c_str(), Mode,
                     Res.LoadError.c_str());
        LoadFailure = true;
        continue;
      }
      const verify::Report &R = Res.R;
      if (Table) {
        std::printf("%-6s %-10s %-8s %4u entries %4u stops  %s\n",
                    J.Desc->Name.c_str(), J.Prog->Label.c_str(), Mode,
                    R.EntriesWalked, R.StopsChecked,
                    R.clean() ? "clean"
                              : (std::to_string(R.errors()) + " errors, " +
                                 std::to_string(R.warnings()) + " warnings")
                                    .c_str());
        if (!R.clean())
          std::fputs(R.str().c_str(), stdout);
      }
      Errors += R.errors();
      if (Json) {
        JsonOut += FirstJson ? "\n" : ",\n";
        FirstJson = false;
        JsonOut += "  {\"target\":\"" + J.Desc->Name + "\",\"program\":\"" +
                   jsonEscape(J.Prog->Label) + "\",\"mode\":\"" + Mode +
                   "\",\"entries\":" + std::to_string(R.EntriesWalked) +
                   ",\"stops\":" + std::to_string(R.StopsChecked) +
                   ",\"diagnostics\":";
        jsonDiags(JsonOut, R.Diags, "    ");
        JsonOut += "}";
      }
    }
  }
  JsonOut += "]";

  // Wire traces: each file lints independently.
  if (Json)
    JsonOut += ",\"traces\":[";
  bool FirstTrace = true;
  for (const std::string &Path : Traces) {
    Expected<verify::Report> R = verify::lintWireTrace(Path, Window);
    if (!R) {
      std::fprintf(stderr, "ldb-verify: %s\n", R.message().c_str());
      LoadFailure = true;
      continue;
    }
    if (Table) {
      std::printf("trace  %-19s %4u frames  %s\n", Path.c_str(),
                  R->EntriesWalked,
                  R->clean() ? "clean"
                             : (std::to_string(R->errors()) + " errors, " +
                                std::to_string(R->warnings()) + " warnings")
                                   .c_str());
      if (!R->clean())
        std::fputs(R->str().c_str(), stdout);
    }
    Errors += R->errors();
    if (Json) {
      JsonOut += FirstTrace ? "\n" : ",\n";
      FirstTrace = false;
      JsonOut += "  {\"trace\":\"" + jsonEscape(Path) +
                 "\",\"frames\":" + std::to_string(R->EntriesWalked) +
                 ",\"diagnostics\":";
      jsonDiags(JsonOut, R->Diags, "    ");
      JsonOut += "}";
    }
  }
  if (Json)
    JsonOut += "]";

  if (MdLint || MdLintOnly) {
    std::vector<verify::Diagnostic> Lint = verify::mdIsolationLint(SrcRoot);
    if (Table)
      std::printf("md-lint %-25s %s\n", SrcRoot.c_str(),
                  Lint.empty()
                      ? "clean"
                      : (std::to_string(Lint.size()) + " findings").c_str());
    for (const verify::Diagnostic &D : Lint) {
      if (Table) {
        std::fputs(D.str().c_str(), stdout);
        std::fputc('\n', stdout);
      }
      Errors += D.Sev == verify::Severity::Error;
    }
    if (Json) {
      JsonOut += ",\"mdlint\":";
      jsonDiags(JsonOut, Lint, "  ");
    }
  }

  if (Json) {
    JsonOut += "}\n";
    if (JsonPath.empty()) {
      std::fputs(JsonOut.c_str(), stdout);
    } else if (std::FILE *F = std::fopen(JsonPath.c_str(), "w")) {
      std::fputs(JsonOut.c_str(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "ldb-verify: cannot write %s\n",
                   JsonPath.c_str());
      LoadFailure = true;
    }
  }

  // The exit contract (see --help): artifact-load failures dominate.
  if (LoadFailure)
    return 2;
  return Errors ? 1 : 0;
}
