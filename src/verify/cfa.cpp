//===- verify/cfa.cpp - control-flow analysis over the image --------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/cfa.h"

#include "support/byteorder.h"
#include "support/strings.h"
#include "target/targetdesc.h"

#include <algorithm>
#include <set>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::target;

namespace {

void emit(std::vector<Diagnostic> &Out, std::string Sym, uint32_t Addr,
          std::string Msg) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Check = "cfa";
  D.Art = Artifact::Image;
  D.Symbol = std::move(Sym);
  D.Addr = Addr;
  D.HasAddr = true;
  D.Message = std::move(Msg);
  Out.push_back(std::move(D));
}

/// The successors of one decoded instruction at \p Pc, following the
/// simulator's semantics: branches are pc-relative word-scaled
/// (Pc + 4 + Imm*4), J/Jal absolute word addresses (Imm*4), Jal/an
/// indirect call fall through to the return point, a return (Jalr whose
/// destination is not the link register) and Sys Exit end the walk.
/// A same-register Beq/Bge/Bgeu is the code generator's unconditional
/// jump (always taken, no fallthrough); a same-register Bne/Blt/Bltu can
/// never be taken.
struct Successors {
  uint32_t Next[2];
  unsigned Count = 0;
  bool IsCall = false;      ///< Jal: Next[] is the return point
  uint32_t CallTarget = 0;  ///< valid when IsCall
  void add(uint32_t A) { Next[Count++] = A; }
};

Successors successorsOf(const TargetDesc &D, const Instr &In, uint32_t Pc) {
  Successors S;
  switch (In.Opc) {
  case Op::Beq:
  case Op::Bne:
  case Op::Blt:
  case Op::Bge:
  case Op::Bltu:
  case Op::Bgeu: {
    uint32_t Target = Pc + 4 + static_cast<uint32_t>(In.Imm) * 4;
    bool Same = In.Rd == In.Ra;
    bool AlwaysTaken =
        Same && (In.Opc == Op::Beq || In.Opc == Op::Bge || In.Opc == Op::Bgeu);
    bool NeverTaken =
        Same && (In.Opc == Op::Bne || In.Opc == Op::Blt || In.Opc == Op::Bltu);
    if (!NeverTaken)
      S.add(Target);
    if (!AlwaysTaken)
      S.add(Pc + 4);
    return S;
  }
  case Op::J:
    S.add(static_cast<uint32_t>(In.Imm) * 4);
    return S;
  case Op::Jal:
    S.IsCall = true;
    S.CallTarget = static_cast<uint32_t>(In.Imm) * 4;
    S.add(Pc + 4);
    return S;
  case Op::Jalr:
    // The code generator's only Jalr is the return (Jalr 0, ra); a Jalr
    // that writes the link register would be an indirect call, which
    // falls through to its return point.
    if (In.Rd == D.RaReg)
      S.add(Pc + 4);
    return S;
  case Op::Sys:
    if (In.Imm != static_cast<int32_t>(Syscall::Exit))
      S.add(Pc + 4);
    return S;
  default:
    S.add(Pc + 4);
    return S;
  }
}

} // namespace

void ldb::verify::checkControlFlow(
    const lcc::Compilation &C, const std::vector<ProcRange> &Procs,
    const std::map<std::string, std::vector<uint32_t>> &StopAddrs,
    std::vector<Diagnostic> &Out) {
  const lcc::Image &Img = C.Img;
  const TargetDesc &D = *C.Desc;
  uint32_t TextEnd = Img.TextBase + static_cast<uint32_t>(Img.Text.size());

  // Procedure extents as the assembler recorded them: ranges must sit in
  // the text segment and never overlap (the loader-table view cannot
  // overlap by construction — End is the next entry — so the real sizes
  // are the ones worth checking).
  std::vector<const lcc::ProcInfo *> ByAddr;
  ByAddr.reserve(Img.Procs.size());
  for (const lcc::ProcInfo &P : Img.Procs)
    ByAddr.push_back(&P);
  std::sort(ByAddr.begin(), ByAddr.end(),
            [](const lcc::ProcInfo *A, const lcc::ProcInfo *B) {
              return A->CodeOffset < B->CodeOffset;
            });
  for (size_t K = 0; K < ByAddr.size(); ++K) {
    const lcc::ProcInfo &P = *ByAddr[K];
    uint32_t PEnd = P.CodeOffset + P.CodeSize;
    if (P.CodeOffset < Img.TextBase || PEnd > TextEnd)
      emit(Out, P.Name, P.CodeOffset,
           "procedure code range [" + hex32(P.CodeOffset) + ", " +
               hex32(PEnd) + ") lies outside the text segment");
    if (K + 1 < ByAddr.size() && PEnd > ByAddr[K + 1]->CodeOffset)
      emit(Out, P.Name, P.CodeOffset,
           "procedure code range overlaps " + ByAddr[K + 1]->Name +
               " at " + hex32(ByAddr[K + 1]->CodeOffset));
  }

  // Known call targets: every procedure entry the loader table lists.
  std::set<uint32_t> Entries;
  for (const ProcRange &P : Procs)
    Entries.insert(P.Addr);

  auto WordAt = [&Img](uint32_t Addr) {
    return static_cast<uint32_t>(unpackInt(
        Img.Text.data() + (Addr - Img.TextBase), 4, Img.Desc->Order));
  };

  for (const ProcRange &P : Procs) {
    if (P.Addr < Img.TextBase || P.End > TextEnd || P.Addr >= P.End ||
        (P.Addr - Img.TextBase) % 4 != 0)
      continue; // the agreement family reports malformed ranges

    // Decode the whole range once; a word no instruction assembles to
    // only matters if control can reach it (alignment padding between
    // procedures is legitimately undecodable).
    size_t N = (P.End - P.Addr) / 4;
    std::vector<Instr> Code(N);
    std::vector<uint8_t> Decodes(N, 0);
    for (size_t K = 0; K < N; ++K)
      Decodes[K] =
          D.Enc.decode(WordAt(P.Addr + static_cast<uint32_t>(K) * 4),
                       Code[K]);

    // Breadth-first reachability from the entry.
    std::vector<uint8_t> Reached(N, 0);
    std::vector<uint32_t> Work{P.Addr};
    Reached[0] = 1;
    while (!Work.empty()) {
      uint32_t Pc = Work.back();
      Work.pop_back();
      size_t K = (Pc - P.Addr) / 4;
      if (!Decodes[K]) {
        emit(Out, P.Name, Pc,
             "control reaches a word no instruction assembles to (" +
                 hex32(WordAt(Pc)) + ")");
        continue;
      }
      const Instr &In = Code[K];
      if (In.Opc == Op::Break) {
        emit(Out, P.Name, Pc,
             "linked code contains a break word (breakpoints are planted "
             "at run time, never linked in)");
        continue;
      }
      Successors S = successorsOf(D, In, Pc);
      if (S.IsCall && !Entries.count(S.CallTarget))
        emit(Out, P.Name, Pc,
             "call targets " + hex32(S.CallTarget) +
                 ", which is no procedure entry the loader table knows");
      for (unsigned I = 0; I < S.Count; ++I) {
        uint32_t Succ = S.Next[I];
        if (Succ < P.Addr || Succ >= P.End) {
          if (Succ == Pc + 4)
            emit(Out, P.Name, Pc,
                 "control falls off the end of the procedure");
          else
            emit(Out, P.Name, Pc,
                 std::string(opName(In.Opc)) + " targets " + hex32(Succ) +
                     ", outside the procedure's code range [" +
                     hex32(P.Addr) + ", " + hex32(P.End) + ")");
          continue;
        }
        size_t SK = (Succ - P.Addr) / 4;
        if (!Reached[SK]) {
          Reached[SK] = 1;
          Work.push_back(Succ);
        }
      }
    }

    // Every stopping point the symbol table resolved into this procedure
    // must be reachable: an unreachable stop site holds a perfectly good
    // no-op the program counter will never visit.
    auto It = StopAddrs.find(P.Name);
    if (It == StopAddrs.end())
      continue;
    for (uint32_t Stop : It->second) {
      if (Stop < P.Addr || Stop >= P.End || (Stop - P.Addr) % 4 != 0)
        continue; // the stop-site family reports out-of-range sites
      if (!Reached[(Stop - P.Addr) / 4])
        emit(Out, P.Name, Stop,
             "stopping point is unreachable from the procedure entry");
    }
  }
}
