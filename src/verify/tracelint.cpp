//===- verify/tracelint.cpp - wire-trace protocol linting -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/tracelint.h"

#include "nub/protocol.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::nub;

namespace {

bool isRequest(unsigned Kind) {
  return Kind >= static_cast<unsigned>(MsgKind::Hello) &&
         Kind <= static_cast<unsigned>(MsgKind::TimelineQuery);
}

bool isReply(unsigned Kind) {
  return Kind >= static_cast<unsigned>(MsgKind::Welcome) &&
         Kind <= static_cast<unsigned>(MsgKind::TimelineReply);
}

/// The kinds the client may retransmit on its own (a lost reply makes a
/// repeat harmless): all the fetches and stores, plus the nub-record
/// management kinds (re-setting a record replaces it with identical
/// contents, clearing twice is a no-op, and re-draining the trace buffer
/// just yields whatever records are left). Hello, Continue, Kill, and
/// Detach change target state and may be repeated only when the wire
/// demonstrably lost or damaged a copy, or the nub asked (Corrupt).
bool isIdempotent(unsigned Kind) {
  switch (static_cast<MsgKind>(Kind)) {
  case MsgKind::FetchInt:
  case MsgKind::StoreInt:
  case MsgKind::FetchFloat:
  case MsgKind::StoreFloat:
  case MsgKind::FetchBlock:
  case MsgKind::StoreBlock:
  case MsgKind::SetCondition:
  case MsgKind::ClearCondition:
  case MsgKind::SetTracepoint:
  case MsgKind::DrainTrace:
  // The checkpoint kinds: re-enabling a policy resets the store onto the
  // same keyframe, re-seeking restores the same checkpoint, and a
  // timeline query reads without writing.
  case MsgKind::SetCheckpointPolicy:
  case MsgKind::Seek:
  case MsgKind::TimelineQuery:
    return true;
  default:
    return false;
  }
}

bool isStore(unsigned Kind) {
  return Kind == static_cast<unsigned>(MsgKind::StoreInt) ||
         Kind == static_cast<unsigned>(MsgKind::StoreFloat) ||
         Kind == static_cast<unsigned>(MsgKind::StoreBlock);
}

/// May \p Reply answer a request of kind \p Req? Nak and Corrupt answer
/// anything; otherwise each request has one success shape (Continue has
/// two: the program stopped, or it exited).
bool replyAnswers(unsigned Req, unsigned Reply) {
  MsgKind P = static_cast<MsgKind>(Reply);
  if (P == MsgKind::Nak || P == MsgKind::Corrupt)
    return true;
  switch (static_cast<MsgKind>(Req)) {
  case MsgKind::FetchInt:
    return P == MsgKind::FetchIntReply;
  case MsgKind::FetchFloat:
    return P == MsgKind::FetchFloatReply;
  case MsgKind::FetchBlock:
    return P == MsgKind::FetchBlockReply;
  case MsgKind::Continue:
    return P == MsgKind::Stopped || P == MsgKind::Exited;
  case MsgKind::DrainTrace:
    return P == MsgKind::TraceReply;
  case MsgKind::Seek:
    // A seek lands on a restored stop; it can never answer as Exited
    // (restoring revives the process).
    return P == MsgKind::Stopped;
  case MsgKind::TimelineQuery:
    return P == MsgKind::TimelineReply;
  case MsgKind::Hello:
  case MsgKind::StoreInt:
  case MsgKind::StoreFloat:
  case MsgKind::StoreBlock:
  case MsgKind::SetCondition:
  case MsgKind::ClearCondition:
  case MsgKind::SetTracepoint:
  case MsgKind::SetCheckpointPolicy:
  case MsgKind::Kill:
  case MsgKind::Detach:
    return P == MsgKind::Ack;
  default:
    return false;
  }
}

/// One request the client has on the wire.
struct Outstanding {
  unsigned Kind = 0;
  bool FaultSince = false;   ///< a copy was dropped or garbled
  bool CorruptSince = false; ///< the nub reported a copy damaged
};

/// Everything the linter tracks for one link ordinal. One trace file may
/// hold many links (every Session opens its own), each with its own
/// sequence space.
struct LinkState {
  uint64_t LastTNs = 0;
  int ClientSide = 0; ///< 'a' or 'b' once known
  int NubSide = 0;
  uint32_t MaxFreshSeq = 0;
  std::map<uint32_t, Outstanding> Out;
  std::map<uint32_t, unsigned> Completed; ///< seq -> request kind
  bool ContinueOut = false;
};

class TraceLinter {
public:
  explicit TraceLinter(unsigned Window) : Window(Window) {}

  void setWindow(unsigned W) { Window = W; }
  void line(unsigned LineNo, unsigned Link, char Side, char Event,
            unsigned Kind, uint32_t Seq, uint32_t Declared,
            uint32_t Computed, uint64_t TNs);
  void parseFailure(unsigned LineNo) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Check = "trace";
    D.Art = Artifact::WireTrace;
    D.Message =
        "line " + std::to_string(LineNo) + ": unparseable trace record";
    R.Diags.push_back(std::move(D));
  }
  Report finish();

private:
  void diag(Severity Sev, unsigned Link, unsigned LineNo, std::string Msg) {
    Diagnostic D;
    D.Sev = Sev;
    D.Check = "trace";
    D.Art = Artifact::WireTrace;
    D.Symbol = "link " + std::to_string(Link);
    D.Message = "line " + std::to_string(LineNo) + ": " + std::move(Msg);
    R.Diags.push_back(std::move(D));
  }

  void clientFrame(LinkState &L, unsigned Link, unsigned LineNo, char Event,
                   unsigned Kind, uint32_t Seq);
  void nubFrame(LinkState &L, unsigned Link, unsigned LineNo, char Event,
                unsigned Kind, uint32_t Seq);

  unsigned Window;
  std::map<unsigned, LinkState> Links;
  Report R;
};

void TraceLinter::line(unsigned LineNo, unsigned Link, char Side, char Event,
                       unsigned Kind, uint32_t Seq, uint32_t Declared,
                       uint32_t Computed, uint64_t TNs) {
  LinkState &L = Links[Link];
  ++R.EntriesWalked;

  if (TNs < L.LastTNs)
    diag(Severity::Error, Link, LineNo,
         "virtual time runs backward (" + std::to_string(TNs) + "ns after " +
             std::to_string(L.LastTNs) + "ns)");
  L.LastTNs = std::max(L.LastTNs, TNs);

  // A garbled frame is expected to fail its checksum — that is the point.
  // Any other frame failing it means the recorder saw bytes the protocol
  // would reject even though no fault was injected.
  if (Event != 'G' && Declared != Computed)
    diag(Severity::Error, Link, LineNo,
         std::string(msgKindName(static_cast<MsgKind>(Kind))) +
             " frame declares checksum " + std::to_string(Declared) +
             " but its bytes sum to " + std::to_string(Computed));

  bool Request = isRequest(Kind);
  bool Reply = isReply(Kind);
  if (!Request && !Reply) {
    // A garbled kind byte produces this legitimately; an intact frame
    // with an unknown kind is a protocol violation.
    if (Event != 'G')
      diag(Severity::Error, Link, LineNo,
           "frame kind " + std::to_string(Kind) + " is not in the protocol");
    return;
  }

  // Infer which endpoint is the client: the side that sends requests.
  int &Mine = Request ? L.ClientSide : L.NubSide;
  int &Other = Request ? L.NubSide : L.ClientSide;
  if (!Mine)
    Mine = Side;
  if (Mine != Side)
    diag(Severity::Error, Link, LineNo,
         std::string(Request ? "request" : "reply") + " sent by side '" +
             static_cast<char>(Side) + "' but side '" +
             static_cast<char>(Mine) + "' owns that direction");
  else if (Other == Side)
    diag(Severity::Error, Link, LineNo,
         "one side sends both requests and replies");

  if (Request)
    clientFrame(L, Link, LineNo, Event, Kind, Seq);
  else
    nubFrame(L, Link, LineNo, Event, Kind, Seq);
}

void TraceLinter::clientFrame(LinkState &L, unsigned Link, unsigned LineNo,
                              char Event, unsigned Kind, uint32_t Seq) {
  const char *Name = msgKindName(static_cast<MsgKind>(Kind));
  if (Seq == 0) {
    diag(Severity::Error, Link, LineNo,
         std::string(Name) + " request carries sequence 0 (reserved for "
                             "spontaneous nub messages)");
    return;
  }

  // The flush discipline: posted stores ride the window together with the
  // Continue (the link delivers in order), so un-acked stores *before* a
  // Continue are fine — but a store written *after* the Continue could
  // land while the target runs, mutating memory the program is using.
  if (isStore(Kind) && L.ContinueOut)
    diag(Severity::Error, Link, LineNo,
         std::string(Name) + " posted while a Continue is outstanding");

  auto It = L.Out.find(Seq);
  if (It == L.Out.end() && L.Completed.count(Seq)) {
    // A retransmit racing the reply it did not see: rebuild the entry so
    // the nub's second answer has something to match.
    Outstanding O;
    O.Kind = L.Completed[Seq];
    It = L.Out.emplace(Seq, O).first;
    L.Completed.erase(Seq);
  }

  if (It != L.Out.end()) {
    Outstanding &O = It->second;
    if (O.Kind != Kind) {
      diag(Severity::Error, Link, LineNo,
           "seq " + std::to_string(Seq) + " reused: first sent as " +
               msgKindName(static_cast<MsgKind>(O.Kind)) + ", now " + Name);
      O.Kind = Kind;
    } else if (!isIdempotent(Kind) && !O.FaultSince && !O.CorruptSince) {
      diag(Severity::Error, Link, LineNo,
           std::string(Name) + " seq " + std::to_string(Seq) +
               " retransmitted, but the kind is not idempotent and no loss "
               "or Corrupt report licenses a repeat");
    }
    O.CorruptSince = false; // each Corrupt licenses one resend
    if (Event == 'D' || Event == 'G')
      O.FaultSince = true;
    if (Kind == static_cast<unsigned>(MsgKind::Continue))
      L.ContinueOut = true;
    return;
  }

  // A fresh request.
  if (Seq <= L.MaxFreshSeq)
    diag(Severity::Error, Link, LineNo,
         std::string(Name) + " seq " + std::to_string(Seq) +
             " is not strictly increasing (already at " +
             std::to_string(L.MaxFreshSeq) + ")");

  // While a Continue is outstanding the target runs, and a nub-rejected
  // hit must produce no host-visible frames: the only legal client
  // traffic is the Continue's own retransmit (handled above) — any fresh
  // request here means the host is servicing a hit the nub should have
  // disposed of locally. (Stores already got the sharper message.)
  if (L.ContinueOut && !isStore(Kind) &&
      Kind != static_cast<unsigned>(MsgKind::Continue))
    diag(Severity::Error, Link, LineNo,
         std::string(Name) +
             " sent while a Continue is outstanding: a nub-rejected hit "
             "must produce no host-visible frames");
  L.MaxFreshSeq = std::max(L.MaxFreshSeq, Seq);
  if (L.Out.size() + 1 > Window)
    diag(Severity::Error, Link, LineNo,
         "in-flight depth " + std::to_string(L.Out.size() + 1) +
             " exceeds the window of " + std::to_string(Window));
  if (Kind == static_cast<unsigned>(MsgKind::Continue)) {
    if (L.ContinueOut)
      diag(Severity::Error, Link, LineNo,
           "second Continue sent while one is outstanding");
    L.ContinueOut = true;
  }
  Outstanding O;
  O.Kind = Kind;
  O.FaultSince = Event == 'D' || Event == 'G';
  L.Out.emplace(Seq, O);
}

void TraceLinter::nubFrame(LinkState &L, unsigned Link, unsigned LineNo,
                           char Event, unsigned Kind, uint32_t Seq) {
  const char *Name = msgKindName(static_cast<MsgKind>(Kind));

  if (Seq == 0) {
    // Spontaneous messages: the attach-time Welcome and pending stop.
    if (Kind != static_cast<unsigned>(MsgKind::Welcome) &&
        Kind != static_cast<unsigned>(MsgKind::Stopped) &&
        Kind != static_cast<unsigned>(MsgKind::Exited))
      diag(Severity::Error, Link, LineNo,
           std::string(Name) +
               " carries sequence 0 but is not a spontaneous kind");
    return;
  }
  if (Kind == static_cast<unsigned>(MsgKind::Welcome)) {
    diag(Severity::Error, Link, LineNo,
         "Welcome must be spontaneous (sequence 0), not a reply to seq " +
             std::to_string(Seq));
    return;
  }

  auto It = L.Out.find(Seq);
  if (It == L.Out.end()) {
    if (L.Completed.count(Seq))
      diag(Severity::Warning, Link, LineNo,
           std::string(Name) + " answers seq " + std::to_string(Seq) +
               " a second time (stale reply after a retransmit race)");
    else
      diag(Severity::Error, Link, LineNo,
           std::string(Name) + " answers seq " + std::to_string(Seq) +
               ", which no outstanding request carries");
    return;
  }

  Outstanding &O = It->second;
  if (!replyAnswers(O.Kind, Kind))
    diag(Severity::Error, Link, LineNo,
         std::string(Name) + " does not answer a " +
             msgKindName(static_cast<MsgKind>(O.Kind)) + " (seq " +
             std::to_string(Seq) + ")");

  if (Event == 'D' || Event == 'G') {
    // The client never sees this reply; the request stays outstanding
    // and the loss licenses a retransmit.
    O.FaultSince = true;
    return;
  }
  if (Kind == static_cast<unsigned>(MsgKind::Corrupt)) {
    // The request arrived damaged; it stays outstanding and must be
    // resent — Corrupt explicitly licenses that even for non-idempotent
    // kinds.
    O.CorruptSince = true;
    return;
  }
  if (O.Kind == static_cast<unsigned>(MsgKind::Continue))
    L.ContinueOut = false;
  L.Completed[Seq] = O.Kind;
  L.Out.erase(It);
}

Report TraceLinter::finish() {
  for (const auto &[Link, L] : Links)
    for (const auto &[Seq, O] : L.Out) {
      Diagnostic D;
      D.Sev = Severity::Warning;
      D.Check = "trace";
      D.Art = Artifact::WireTrace;
      D.Symbol = "link " + std::to_string(Link);
      D.Message = std::string(msgKindName(static_cast<MsgKind>(O.Kind))) +
                  " seq " + std::to_string(Seq) +
                  " is still outstanding at the end of the trace";
      R.Diags.push_back(std::move(D));
    }
  R.normalize();
  return std::move(R);
}

} // namespace

Expected<Report> ldb::verify::lintWireTrace(const std::string &Path,
                                            unsigned WindowOverride) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return Error::failure("cannot open wire trace: " + Path);

  TraceLinter Linter(WindowOverride ? WindowOverride : 32);
  char Buf[512];
  unsigned LineNo = 0;
  while (std::fgets(Buf, sizeof(Buf), F)) {
    ++LineNo;
    if (Buf[0] == '\n' || Buf[0] == '\0')
      continue;
    if (Buf[0] == '#') {
      // The recorder stamps the window limit into the header; an
      // explicit --window wins over it.
      if (!WindowOverride)
        if (const char *W = std::strstr(Buf, "window="))
          Linter.setWindow(
              static_cast<unsigned>(std::strtoul(W + 7, nullptr, 10)));
      continue;
    }
    char Event, Side;
    unsigned Link, Kind;
    uint32_t Seq, Len, Declared, Computed;
    unsigned long long TNs;
    if (std::sscanf(Buf, "%c %u %c %u %" SCNu32 " %" SCNu32 " %" SCNx32
                         " %" SCNx32 " %llu",
                    &Event, &Link, &Side, &Kind, &Seq, &Len, &Declared,
                    &Computed, &TNs) != 9 ||
        (Event != 'F' && Event != 'D' && Event != 'G') ||
        (Side != 'a' && Side != 'b')) {
      // One bad line should not hide discipline violations later on.
      Linter.parseFailure(LineNo);
      continue;
    }
    Linter.line(LineNo, Link, Side, Event, Kind, Seq, Declared, Computed,
                TNs);
  }
  std::fclose(F);
  Report R = Linter.finish();
  return R;
}
