//===- verify/blobcheck.h - fastload blob verification ----------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier's fastload family ("blob"): structurally decodes the LDFL
/// v2 blob cached for each PostScript artifact — header magic, version,
/// content hash, both varint tables, every token tag and index — without
/// executing anything, then cross-checks the decoded token stream against
/// a fresh scanner pass over the same text. At run time a damaged blob is
/// silently dropped in favor of the scanner; here it becomes a structured
/// diagnostic naming the defect and its byte offset. Must run *before*
/// the verifier interprets the artifacts, since interpreting is exactly
/// what drops a bad blob from the cache. When no blob is cached yet, one
/// is encoded from the fresh scan first, so the family always exercises
/// the whole encode -> decode -> compare loop.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_BLOBCHECK_H
#define LDB_VERIFY_BLOBCHECK_H

#include "verify/verify.h"

#include <vector>

namespace ldb::verify {

/// Runs the blob family over \p C's PostScript artifacts (symbol table
/// and loader table), appending diagnostics to \p Out.
void checkFastloadBlobs(const lcc::Compilation &C,
                        std::vector<Diagnostic> &Out);

} // namespace ldb::verify

#endif // LDB_VERIFY_BLOBCHECK_H
