//===- verify/symblobcheck.h - LDBI blob verification -----------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The blob family's LDBI half: compiles the verifier's fully-forced
/// symbol table into a fresh LDBI blob (core/symblob.h), structurally
/// validates it, and cross-checks every query class against the
/// interpreter's view — the procedure table (pc -> proc), the resolved
/// stop-site addresses (pc -> locus and the (file, line) index), and the
/// name index against the walked entry names. A battery of deliberate
/// mutations (truncation, bad magic, stale key, unsorted index,
/// out-of-range string offsets) then proves the validator rejects each
/// one with a structured diagnostic rather than trusting damaged data.
///
/// Unlike the fastload half (blobcheck.h), which must run before the
/// artifacts are interpreted, this half needs the interpreter's state:
/// the blob compiler walks the same dictionaries the verifier just
/// forced, so it runs after the symtab walk.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_SYMBLOBCHECK_H
#define LDB_VERIFY_SYMBLOBCHECK_H

#include "verify/cfa.h"
#include "verify/verify.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace ldb::ps {
class Interp;
} // namespace ldb::ps

namespace ldb::verify {

/// Runs the LDBI checks over \p C, appending diagnostics to \p Out.
/// \p I is the verifier's interpreter with /symtab and /loadertable in
/// scope and every entry already forced; \p Procs is the loader table's
/// sorted procedure view; \p StopAddrs the absolute stop addresses per
/// procedure from the symtab walk; \p SymtabProcNames the procedures
/// that carry debugging symbols; \p EntryNames every entry name walked.
void checkSymblob(ps::Interp &I, const lcc::Compilation &C,
                  const std::vector<ProcRange> &Procs,
                  const std::map<std::string, std::vector<uint32_t>>
                      &StopAddrs,
                  const std::set<std::string> &SymtabProcNames,
                  const std::set<std::string> &EntryNames,
                  std::vector<Diagnostic> &Out);

} // namespace ldb::verify

#endif // LDB_VERIFY_SYMBLOBCHECK_H
