//===- verify/cfa.h - control-flow analysis over the image ------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier's control-flow family ("cfa"): disassembles every
/// procedure's code range through the target's MD encoding, builds a CFG
/// from the branch/jump/call words, and proves properties the stop-site
/// family cannot see from one word at a time — that every stopping point
/// is *reachable* from its procedure's entry (a stop site that holds the
/// no-op word but sits on dead code is a place the debugger will wait
/// forever), that procedure code ranges never overlap, that branches stay
/// inside their procedure, and that every direct call (Jal) targets a
/// known procedure entry. Everything is proved from the linked image and
/// loader table alone; no simulator runs.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_CFA_H
#define LDB_VERIFY_CFA_H

#include "verify/verify.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ldb::verify {

/// One procedure's code range, as the loader table sees it: [Addr, End)
/// where End is the next procedure's entry (or the end of text).
struct ProcRange {
  std::string Name;
  uint32_t Addr = 0;
  uint32_t End = 0;
};

/// Runs the control-flow family over \p C, appending diagnostics to
/// \p Out. \p Procs is the loader table's sorted procedure view;
/// \p StopAddrs maps each procedure name to the absolute addresses of its
/// stopping points (as resolved by the symtab walk).
void checkControlFlow(const lcc::Compilation &C,
                      const std::vector<ProcRange> &Procs,
                      const std::map<std::string, std::vector<uint32_t>>
                          &StopAddrs,
                      std::vector<Diagnostic> &Out);

} // namespace ldb::verify

#endif // LDB_VERIFY_CFA_H
