//===- verify/verify.h - static debug-info verifier -------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static verifier for the four debugging artifacts the compiler
/// pipeline emits independently: the linked image with its planted
/// stopping-point no-ops (paper Sec 3), the PostScript symbol table (Sec
/// 2), the nm-emitted loader table (Sec 3), and the stabs baseline (Sec
/// 7). Nothing else cross-checks these against each other except whatever
/// a live debug session happens to touch; the verifier walks all of them
/// — without running the simulator — and reports structured diagnostics
/// for every inconsistency it can prove from the artifacts alone.
///
/// Check families (see DESIGN.md "The static verifier"):
///   stop-site  every stopping point holds the target's no-op word and
///              lies inside its procedure's code range;
///   scope      the uplink tree is acyclic, every visible-chain link
///              resolves, and nesting matches source order (Fig 2);
///   where      every /where evaluates to a well-formed mem::Location
///              with register numbers and frame offsets in range;
///   type       type dictionaries are well-formed and /printer
///              procedures are syntactically valid PostScript;
///   agreement  loader table, symtab externs, image symbols, and stabs
///              agree on the name -> address map, with no dangling
///              anchor symbols;
///   cfa        (verify/cfa.h) a CFG disassembled through the MD layer
///              proves stop sites reachable, code ranges disjoint,
///              branches intra-procedure, and calls well-targeted;
///   blob       (verify/blobcheck.h) cached fastload blobs decode
///              structurally and agree with a fresh scanner pass, and
///              (verify/symblobcheck.h) the compiled LDBI blob answers
///              every pc/line/name query exactly as the interpreter does
///              and rejects a battery of structural mutations;
///   trace      (verify/tracelint.h) recorded wire traces obey the
///              protocol's sequence discipline;
///   md-lint    (verify/mdlint.h) target-specific identifiers appear
///              only in the tagged machine-dependent files.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_VERIFY_H
#define LDB_VERIFY_VERIFY_H

#include "lcc/driver.h"

#include <string>
#include <vector>

namespace ldb::verify {

enum class Severity : uint8_t { Error, Warning };

/// Which emitted artifact a diagnostic is about.
enum class Artifact : uint8_t {
  Image,        ///< the linked executable image
  Symtab,       ///< the PostScript symbol table
  LoaderTable,  ///< the nm-style loader table
  Stabs,        ///< the binary stabs baseline
  Source,       ///< the debugger's own source tree (md-lint)
  FastloadBlob, ///< a cached LDFL fastload blob
  Symblob,      ///< a compiled LDBI debug-info blob
  WireTrace,    ///< a recorded wire trace (LDB_WIRE_TRACE)
};

const char *artifactName(Artifact A);

/// One structured finding: severity, check family, artifact, and — when
/// known — the symbol and object-code address involved.
struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string Check;   ///< check family, e.g. "stop-site"
  Artifact Art = Artifact::Symtab;
  std::string Symbol;  ///< offending symbol or dictionary key, may be empty
  uint32_t Addr = 0;   ///< object-code address, valid when HasAddr
  bool HasAddr = false;
  std::string Message;

  /// Renders "error: [stop-site] symtab: main @ 0x00001010: ..." style.
  std::string str() const;
};

struct Report {
  std::vector<Diagnostic> Diags;
  unsigned EntriesWalked = 0; ///< symbol-table entries forced and checked
  unsigned StopsChecked = 0;  ///< stopping points validated against the image

  unsigned errors() const;
  unsigned warnings() const;
  bool clean() const { return Diags.empty(); }

  /// Sorts diagnostics into a stable order (severity first, then family,
  /// artifact, symbol, address, message) and drops exact duplicates, so
  /// two runs over the same artifacts print byte-identical output.
  void normalize();

  /// All diagnostics, one per line.
  std::string str() const;
};

struct Options {
  bool CheckStops = true;
  bool CheckScopes = true;
  bool CheckWhere = true;
  bool CheckTypes = true;
  bool CheckAgreement = true;
  bool CheckCfa = true;  ///< control-flow analysis (verify/cfa.h)
  bool CheckBlob = true; ///< blob verification: fastload (blobcheck.h)
                         ///< and LDBI (symblobcheck.h)
};

/// Statically verifies one compiled-and-linked program: interprets its
/// PostScript symbol table and loader table in a no-target "static scope"
/// (LazyData resolves against the loader table and the image's data
/// segment instead of a live process), forces every deferred entry, and
/// runs the check families enabled in \p Opt. Returns an Error only when
/// the artifacts cannot be analyzed at all (e.g. unknown architecture);
/// malformed-but-analyzable artifacts produce diagnostics instead.
Expected<Report> verifyCompilation(const lcc::Compilation &C,
                                   const Options &Opt = Options());

} // namespace ldb::verify

#endif // LDB_VERIFY_VERIFY_H
