//===- verify/mdlint.h - machine-dependence isolation lint ------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lint over the debugger's own source tree enforcing the paper's
/// machine-dependence discipline (Sec 4.3): target-specific identifiers
/// (zmips, z68k, zsparc, zvax) may appear only in the files tagged
/// MACHINE-DEPENDENT — the ones the Sec 4.3 LoC experiment counts — and
/// in the three dispatch registries that map an architecture name to its
/// machine-dependent instance. Comments and string literals are exempt:
/// naming a target is fine, *depending* on one is not.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_MDLINT_H
#define LDB_VERIFY_MDLINT_H

#include "verify/verify.h"

#include <string>
#include <vector>

namespace ldb::verify {

/// Walks every .h/.cpp under \p SrcRoot and reports each target
/// identifier found outside a MACHINE-DEPENDENT-tagged file or a
/// dispatch registry. Diagnostics carry Artifact::Source with the
/// offending "path:line" in Symbol; an unreadable tree yields a
/// diagnostic rather than an error.
std::vector<Diagnostic> mdIsolationLint(const std::string &SrcRoot);

} // namespace ldb::verify

#endif // LDB_VERIFY_MDLINT_H
