//===- verify/blobcheck.cpp - fastload blob verification ------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/blobcheck.h"

#include "postscript/fastload.h"

#include <optional>
#include <string>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::ps;

namespace {

void emit(std::vector<Diagnostic> &Out, const char *Label, size_t Offset,
          std::string Msg) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Check = "blob";
  D.Art = Artifact::FastloadBlob;
  D.Symbol = Label;
  D.Addr = static_cast<uint32_t>(Offset);
  D.HasAddr = true;
  D.Message = std::move(Msg);
  Out.push_back(std::move(D));
}

/// Structural equality of two scanned/decoded tokens. Strings compare by
/// text (the blob shares one allocation per distinct text; the scanner
/// does not), procedures recursively.
bool tokenEqual(const Object &A, const Object &B) {
  if (A.Ty != B.Ty || A.Exec != B.Exec)
    return false;
  switch (A.Ty) {
  case Type::Int:
    return A.IntVal == B.IntVal;
  case Type::Real:
    return A.RealVal == B.RealVal;
  case Type::Name:
    return A.Atom == B.Atom;
  case Type::String:
    return A.text() == B.text();
  case Type::Array: {
    if (A.ArrVal->size() != B.ArrVal->size())
      return false;
    for (size_t K = 0; K < A.ArrVal->size(); ++K)
      if (!tokenEqual((*A.ArrVal)[K], (*B.ArrVal)[K]))
        return false;
    return true;
  }
  default:
    return false;
  }
}

/// Verifies one text's blob: the cached one when present, else a freshly
/// encoded one, so the family checks the whole encode/decode loop even on
/// the first run.
void checkOne(const char *Label, const std::string &Text,
              std::vector<Diagnostic> &Out) {
  uint64_t Hash = fastload::contentHash(Text);

  Expected<std::vector<Object>> Scanned = fastload::scanAll(Text);
  if (!Scanned) {
    // The scope family reports artifacts that do not even scan; there is
    // no token stream to compare a blob against.
    return;
  }

  std::optional<std::vector<uint8_t>> Blob =
      fastload::Cache::global().snapshot(Hash);
  if (!Blob) {
    Expected<std::vector<uint8_t>> Fresh = fastload::encode(*Scanned, Hash);
    if (!Fresh) {
      emit(Out, Label, 0,
           "scanned token stream is not representable as a fastload blob: " +
               Fresh.message());
      return;
    }
    Blob = std::move(*Fresh);
  }

  std::vector<Object> Decoded;
  std::vector<fastload::BlobIssue> Issues =
      fastload::inspect(*Blob, Hash, &Decoded);
  for (const fastload::BlobIssue &I : Issues)
    emit(Out, Label, I.Offset, I.What);
  if (!Issues.empty())
    return;

  // The structural walk passed; the decoded stream must now agree with a
  // fresh scanner pass token for token, or replays and scans would load
  // different symbol tables.
  if (Decoded.size() != Scanned->size()) {
    emit(Out, Label, 0,
         "blob decodes to " + std::to_string(Decoded.size()) +
             " tokens but the scanner produces " +
             std::to_string(Scanned->size()));
    return;
  }
  for (size_t K = 0; K < Decoded.size(); ++K)
    if (!tokenEqual(Decoded[K], (*Scanned)[K])) {
      emit(Out, Label, 0,
           "decoded token " + std::to_string(K) +
               " disagrees with the scanner (" + repr(Decoded[K]) +
               " vs " + repr((*Scanned)[K]) + ")");
      return;
    }
}

} // namespace

void ldb::verify::checkFastloadBlobs(const lcc::Compilation &C,
                                     std::vector<Diagnostic> &Out) {
  checkOne("symtab", C.PsSymtab, Out);
  checkOne("loader-table", C.LoaderTable, Out);
}
