//===- verify/tracelint.h - wire-trace protocol linting ---------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier's wire family ("trace"): statically lints a wire trace
/// recorded by LDB_WIRE_TRACE (see nub/wiretrace.h for the line format)
/// against the protocol's sequence discipline — the checkable core of
/// what makes the pipelined transport replayable. Per link and direction:
/// fresh request sequence numbers are nonzero and strictly increasing;
/// the in-flight depth never exceeds the window; every reply answers an
/// outstanding request with a kind the request allows; a request is
/// retransmitted only when that is safe (its kind is idempotent, the nub
/// reported the previous copy Corrupt, or the link demonstrably lost or
/// damaged a frame since); no store is posted, no other request sent (a
/// nub-rejected hit must produce no host-visible frames), and no second
/// Continue issued while a Continue is outstanding; sequence-0 frames
/// are only the
/// spontaneous kinds (Welcome, attach-time Stopped/Exited); checksums
/// match on every untampered frame; and virtual time never runs backward.
/// Everything is proved from the trace text alone — no session is
/// replayed.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_VERIFY_TRACELINT_H
#define LDB_VERIFY_TRACELINT_H

#include "verify/verify.h"

#include <string>

namespace ldb::verify {

/// Lints the trace file at \p Path. \p WindowOverride, when nonzero,
/// replaces the window limit recorded in the trace header (default 32
/// when the header carries none). Returns an Error only when the file
/// cannot be read at all; malformed traces produce diagnostics.
Expected<Report> lintWireTrace(const std::string &Path,
                               unsigned WindowOverride = 0);

} // namespace ldb::verify

#endif // LDB_VERIFY_TRACELINT_H
