//===- verify/verify.cpp - static debug-info verifier ----------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/verify.h"

#include "verify/blobcheck.h"
#include "verify/cfa.h"
#include "verify/symblobcheck.h"

#include "core/arch.h"
#include "core/symtab.h"
#include "lcc/stabs.h"
#include "postscript/fastload.h"
#include "support/byteorder.h"
#include "support/strings.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::ps;

namespace symtab = ldb::core::symtab;

const char *ldb::verify::artifactName(Artifact A) {
  switch (A) {
  case Artifact::Image:
    return "image";
  case Artifact::Symtab:
    return "symtab";
  case Artifact::LoaderTable:
    return "loader-table";
  case Artifact::Stabs:
    return "stabs";
  case Artifact::Source:
    return "source";
  case Artifact::FastloadBlob:
    return "fastload-blob";
  case Artifact::Symblob:
    return "symblob";
  case Artifact::WireTrace:
    return "wire-trace";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string Out = Sev == Severity::Error ? "error: [" : "warning: [";
  Out += Check;
  Out += "] ";
  Out += artifactName(Art);
  if (!Symbol.empty())
    Out += ": " + Symbol;
  if (HasAddr)
    Out += " @ " + hex32(Addr);
  Out += ": " + Message;
  return Out;
}

unsigned Report::errors() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Error;
  return N;
}

unsigned Report::warnings() const {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Warning;
  return N;
}

void Report::normalize() {
  auto Key = [](const Diagnostic &D) {
    return std::tie(D.Sev, D.Check, D.Art, D.Symbol, D.HasAddr, D.Addr,
                    D.Message);
  };
  std::sort(Diags.begin(), Diags.end(),
            [&Key](const Diagnostic &A, const Diagnostic &B) {
              return Key(A) < Key(B);
            });
  Diags.erase(std::unique(Diags.begin(), Diags.end(),
                          [&Key](const Diagnostic &A, const Diagnostic &B) {
                            return Key(A) == Key(B);
                          }),
              Diags.end());
}

std::string Report::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += D.str() + "\n";
  return Out;
}

namespace {

/// LazyData resolution against the artifacts instead of a live process:
/// anchor addresses come from the loader-table object the verifier
/// interpreted, and "target memory" fetches read the image's data
/// segment. This is the whole trick that lets /where procedures — written
/// to run against a live target (paper Sec 2) — evaluate fully
/// statically.
class StaticHooks : public DebugHooks {
public:
  StaticHooks(Interp &I, const lcc::Image &Img) : I(I), Img(Img) {}

  Expected<uint32_t> anchorAddress(const std::string &Name) override {
    Object LT;
    if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict)
      return Error::failure("no loader table loaded");
    const Object *Map = LT.DictVal->find("anchormap");
    if (!Map || Map->Ty != Type::Dict)
      return Error::failure("loader table has no anchor map");
    const Object *Found = Map->DictVal->find(Name);
    if (!Found)
      return Error::failure("unknown anchor symbol: " + Name);
    return static_cast<uint32_t>(Found->IntVal);
  }

  Expected<uint32_t> fetchDataWord(uint32_t Addr) override {
    if (Addr < Img.DataBase || Addr + 4 > Img.DataBase + Img.Data.size())
      return Error::failure("data fetch at " + hex32(Addr) +
                            " is outside the data segment");
    return static_cast<uint32_t>(
        unpackInt(Img.Data.data() + (Addr - Img.DataBase), 4,
                  Img.Desc->Order));
  }

private:
  Interp &I;
  const lcc::Image &Img;
};

class Verifier {
public:
  Verifier(const lcc::Compilation &C, const Options &Opt)
      : C(C), Opt(Opt), Hooks(I, C.Img) {}

  Report run();

private:
  //===--- diagnostics ---------------------------------------------------===//

  void diag(Severity Sev, const char *Check, Artifact Art, std::string Sym,
            std::string Msg) {
    Diagnostic D;
    D.Sev = Sev;
    D.Check = Check;
    D.Art = Art;
    D.Symbol = std::move(Sym);
    D.Message = std::move(Msg);
    R.Diags.push_back(std::move(D));
  }

  void diagAt(Severity Sev, const char *Check, Artifact Art, std::string Sym,
              uint32_t Addr, std::string Msg) {
    Diagnostic D;
    D.Sev = Sev;
    D.Check = Check;
    D.Art = Art;
    D.Symbol = std::move(Sym);
    D.Addr = Addr;
    D.HasAddr = true;
    D.Message = std::move(Msg);
    R.Diags.push_back(std::move(D));
  }

  //===--- phases --------------------------------------------------------===//

  bool setup();
  void loadProcTable();
  void walkSymtab();
  void checkProcEntry(Object Entry, const std::string &Context);
  /// Structural checks on one (forced) entry; returns false if it is not
  /// a usable dictionary. FrameSize < 0 means "no enclosing procedure".
  bool checkEntry(Object &Entry, const std::string &Context,
                  int64_t FrameSize);
  void walkVisibleChain(Object Head, const std::string &Context,
                        int64_t FrameSize);
  void checkWhere(Object &Entry, const std::string &Name, int64_t FrameSize);
  void checkType(Object Ty, const std::string &Sym);
  void checkPrinterBody(const Object &Proc, const std::string &Sym);
  void checkAgreement();

  //===--- small helpers -------------------------------------------------===//

  /// The image word at code address \p Addr, or failure when outside the
  /// text segment.
  Expected<uint32_t> textWord(uint32_t Addr) const {
    const lcc::Image &Img = C.Img;
    if (Addr < Img.TextBase || Addr + 4 > Img.TextBase + Img.Text.size())
      return Error::failure("address outside the text segment");
    return static_cast<uint32_t>(unpackInt(
        Img.Text.data() + (Addr - Img.TextBase), 4, Img.Desc->Order));
  }

  /// Fetches an integer field, adding a diagnostic and returning false on
  /// absence or wrong type.
  bool intField(const Object &Entry, const char *Key,
                const std::string &Context, int64_t &Out) {
    Expected<Object> V = symtab::field(I, Entry, Key);
    if (!V || V->Ty != Type::Int) {
      diag(Severity::Error, "scope", Artifact::Symtab, Context,
           V ? "/" + std::string(Key) + " is not an integer"
             : V.message());
      return false;
    }
    Out = V->IntVal;
    return true;
  }

  const lcc::Compilation &C;
  Options Opt;
  Interp I;
  StaticHooks Hooks;
  const core::Architecture *Arch = nullptr;
  Object ArchDict, TargetDict;

  struct Proc {
    uint32_t Addr = 0;
    uint32_t End = 0; ///< start of the next procedure (or end of text)
    std::string Name;
  };
  std::vector<Proc> ProcTable; ///< the loader table's view, sorted
  std::map<std::string, size_t> ProcByName;

  std::set<const DictImpl *> SeenEntries;
  std::set<const DictImpl *> SeenTypes;
  std::set<std::string> EntryNames;      ///< /name of every entry walked
  std::set<std::string> SymtabProcNames; ///< entries with /kind (procedure)
  std::map<std::string, uint32_t> GlobalAddrs; ///< extern/static data addrs
  /// Absolute stop-site addresses per procedure, for the cfa family.
  std::map<std::string, std::vector<uint32_t>> StopAddrs;

  Report R;
};

//===----------------------------------------------------------------------===//
// Setup: the static scope
//===----------------------------------------------------------------------===//

bool Verifier::setup() {
  if (Error E = ps::fastload::Cache::global().run(I, prelude())) {
    diag(Severity::Error, "setup", Artifact::Symtab, "",
         "prelude failed: " + E.message());
    return false;
  }
  ArchDict = Object::makeDict(std::make_shared<DictImpl>());
  TargetDict = Object::makeDict(std::make_shared<DictImpl>());

  // Mirror Target::connect + Target::Scope: the architecture dictionary
  // is populated from the machine-dependent PostScript fragment, then
  // both dictionaries go on the stack for the whole verification.
  I.dictStack().push_back(ArchDict);
  Error E = ps::fastload::Cache::global().run(I, Arch->MdPostScript);
  I.dictStack().pop_back();
  if (E) {
    diag(Severity::Error, "setup", Artifact::Symtab, Arch->Desc->Name,
         "machine-dependent PostScript failed: " + E.message());
    return false;
  }
  I.dictStack().push_back(ArchDict);
  I.dictStack().push_back(TargetDict);
  I.Hooks = &Hooks;

  bool Ok = true;
  if (Error SymE = ps::fastload::Cache::global().run(I, C.PsSymtab)) {
    diag(Severity::Error, "scope", Artifact::Symtab, "",
         "symbol table does not interpret: " + SymE.message());
    Ok = false;
  }
  if (Error LtE = ps::fastload::Cache::global().run(I, C.LoaderTable)) {
    diag(Severity::Error, "agreement", Artifact::LoaderTable, "",
         "loader table does not interpret: " + LtE.message());
    Ok = false;
  }
  return Ok;
}

void Verifier::loadProcTable() {
  Object LT;
  if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict) {
    diag(Severity::Error, "agreement", Artifact::LoaderTable, "",
         "loader table did not define /loadertable");
    return;
  }
  const Object *Pt = LT.DictVal->find("proctable");
  if (!Pt || Pt->Ty != Type::Array) {
    diag(Severity::Error, "agreement", Artifact::LoaderTable, "",
         "loader table has no /proctable");
    return;
  }
  const ArrayImpl &A = *Pt->ArrVal;
  if (A.size() % 2 != 0)
    diag(Severity::Error, "agreement", Artifact::LoaderTable, "",
         "proctable length is odd; expected (address, name) pairs");
  for (size_t K = 0; K + 1 < A.size(); K += 2) {
    if (A[K].Ty != Type::Int || A[K + 1].Ty != Type::String) {
      diag(Severity::Error, "agreement", Artifact::LoaderTable, "",
           "proctable entry " + std::to_string(K / 2) +
               " is not an (address, name) pair");
      continue;
    }
    Proc P;
    P.Addr = static_cast<uint32_t>(A[K].IntVal);
    P.Name = A[K + 1].text();
    if (!ProcTable.empty() && P.Addr <= ProcTable.back().Addr)
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, P.Name,
             P.Addr, "proctable is not sorted by ascending address");
    ProcTable.push_back(P);
  }
  uint32_t TextEnd =
      C.Img.TextBase + static_cast<uint32_t>(C.Img.Text.size());
  for (size_t K = 0; K < ProcTable.size(); ++K) {
    ProcTable[K].End =
        K + 1 < ProcTable.size() ? ProcTable[K + 1].Addr : TextEnd;
    ProcByName[ProcTable[K].Name] = K;
  }
}

//===----------------------------------------------------------------------===//
// The symbol-table walk: families 1-4
//===----------------------------------------------------------------------===//

void Verifier::walkSymtab() {
  Expected<Object> Top = symtab::topLevel(I);
  if (!Top) {
    diag(Severity::Error, "scope", Artifact::Symtab, "", Top.message());
    return;
  }
  Expected<Object> ArchName = symtab::field(I, *Top, "architecture");
  if (!ArchName || ArchName->Ty != Type::String)
    diag(Severity::Error, "agreement", Artifact::Symtab, "",
         "top-level dictionary has no /architecture string");
  else if (ArchName->text() != C.Desc->Name)
    diag(Severity::Error, "agreement", Artifact::Symtab, ArchName->text(),
         "symbol table is for " + ArchName->text() +
             " but the image is " + C.Desc->Name);

  // Externs: every global datum and defined procedure. Forcing each one
  // exercises the deferred path when the table was emitted with
  // DeferDef.
  Expected<Object> Externs = symtab::field(I, *Top, "externs");
  if (!Externs || Externs->Ty != Type::Dict) {
    diag(Severity::Error, "scope", Artifact::Symtab, "",
         Externs ? "top-level /externs is not a dictionary"
                 : Externs.message());
  } else {
    ps::AtomTable &AT = ps::AtomTable::global();
    for (auto &KV : Externs->DictVal->sortedItems()) {
      const std::string &Key = AT.text(KV.first);
      Object V = KV.second;
      if (Error E = symtab::force(I, V)) {
        diag(Severity::Error, "scope", Artifact::Symtab, Key, E.message());
        continue;
      }
      Externs->DictVal->set(KV.first, V);
      checkEntry(V, Key, -1);
    }
  }

  // Procedures, with their loci (family 1), visible chains (family 2),
  // statics, and formals.
  Expected<Object> Procs = symtab::field(I, *Top, "procs");
  if (!Procs || Procs->Ty != Type::Array) {
    diag(Severity::Error, "scope", Artifact::Symtab, "",
         Procs ? "top-level /procs is not an array" : Procs.message());
  } else {
    for (size_t K = 0; K < Procs->ArrVal->size(); ++K) {
      Object Entry = (*Procs->ArrVal)[K];
      if (Error E = symtab::force(I, Entry)) {
        diag(Severity::Error, "scope", Artifact::Symtab,
             "procs[" + std::to_string(K) + "]", E.message());
        continue;
      }
      (*Procs->ArrVal)[K] = Entry;
      checkProcEntry(Entry, "procs[" + std::to_string(K) + "]");
    }
  }

  // The source map must reference the same procedure entries.
  Expected<Object> SourceMap = symtab::field(I, *Top, "sourcemap");
  if (!SourceMap || SourceMap->Ty != Type::Dict) {
    diag(Severity::Error, "scope", Artifact::Symtab, "",
         SourceMap ? "top-level /sourcemap is not a dictionary"
                   : SourceMap.message());
  } else {
    ps::AtomTable &AT = ps::AtomTable::global();
    for (auto &KV : SourceMap->DictVal->sortedItems()) {
      const std::string &Key = AT.text(KV.first);
      Object V = KV.second;
      if (Error E = symtab::force(I, V)) {
        diag(Severity::Error, "scope", Artifact::Symtab, Key, E.message());
        continue;
      }
      SourceMap->DictVal->set(KV.first, V);
      if (V.Ty != Type::Array) {
        diag(Severity::Error, "scope", Artifact::Symtab, Key,
             "sourcemap value is not an array of procedure entries");
        continue;
      }
      for (Object &Ref : *V.ArrVal) {
        Object Entry = Ref;
        if (Error E = symtab::force(I, Entry)) {
          diag(Severity::Error, "scope", Artifact::Symtab, Key,
               E.message());
          continue;
        }
        Ref = Entry;
        if (Entry.Ty != Type::Dict || !symtab::hasField(Entry, "loci"))
          diag(Severity::Error, "scope", Artifact::Symtab, Key,
               "sourcemap references a non-procedure entry");
      }
    }
  }
}

void Verifier::checkProcEntry(Object Entry, const std::string &Context) {
  if (!checkEntry(Entry, Context, -1))
    return;
  Expected<Object> NameV = symtab::field(I, Entry, "name");
  std::string Name = NameV && NameV->Ty == Type::String ? NameV->text()
                                                        : Context;
  SymtabProcNames.insert(Name);

  int64_t FrameSize = 0, SaveMask = 0, SaveOffset = 0;
  if (!intField(Entry, "framesize", Name, FrameSize))
    FrameSize = -1;
  else if (FrameSize < 0 || FrameSize > (1 << 20))
    diag(Severity::Error, "scope", Artifact::Symtab, Name,
         "implausible /framesize " + std::to_string(FrameSize));
  intField(Entry, "savemask", Name, SaveMask);
  intField(Entry, "saveoffset", Name, SaveOffset);

  // Statics: one dictionary shared by every procedure of the unit.
  if (symtab::hasField(Entry, "statics")) {
    Expected<Object> Statics = symtab::field(I, Entry, "statics");
    if (!Statics || Statics->Ty != Type::Dict) {
      diag(Severity::Error, "scope", Artifact::Symtab, Name,
           Statics ? "/statics is not a dictionary" : Statics.message());
    } else {
      ps::AtomTable &AT = ps::AtomTable::global();
      for (auto &KV : Statics->DictVal->sortedItems()) {
        const std::string &Key = AT.text(KV.first);
        Object V = KV.second;
        if (Error E = symtab::force(I, V)) {
          diag(Severity::Error, "scope", Artifact::Symtab, Key,
               E.message());
          continue;
        }
        Statics->DictVal->set(KV.first, V);
        checkEntry(V, Key, -1);
      }
    }
  } else {
    diag(Severity::Error, "scope", Artifact::Symtab, Name,
         "procedure entry has no /statics");
  }

  // Formals: the last parameter heads a chain through the rest.
  if (symtab::hasField(Entry, "formals")) {
    Expected<Object> Formals = symtab::field(I, Entry, "formals");
    if (!Formals)
      diag(Severity::Error, "scope", Artifact::Symtab, Name,
           Formals.message());
    else
      walkVisibleChain(*Formals, Name, FrameSize);
  }

  // The stopping points (family 1) and their visible chains (family 2).
  Expected<Object> Loci = symtab::field(I, Entry, "loci");
  if (!Loci || Loci->Ty != Type::Array) {
    diag(Severity::Error, "stop-site", Artifact::Symtab, Name,
         Loci ? "/loci is not an array" : Loci.message());
    return;
  }
  const Proc *P = nullptr;
  if (auto It = ProcByName.find(Name); It != ProcByName.end())
    P = &ProcTable[It->second];
  else
    diag(Severity::Error, "agreement", Artifact::LoaderTable, Name,
         "procedure has debugging symbols but no loader-table entry");

  int64_t PrevLine = 0;
  std::set<int64_t> SeenOffsets;
  for (size_t K = 0; K < Loci->ArrVal->size(); ++K) {
    const Object &Locus = (*Loci->ArrVal)[K];
    std::string Where = Name + " loci[" + std::to_string(K) + "]";
    if (Locus.Ty != Type::Array || Locus.ArrVal->size() < 3) {
      diag(Severity::Error, "stop-site", Artifact::Symtab, Where,
           "malformed stopping point: expected [line offset visible]");
      continue;
    }
    const ArrayImpl &L = *Locus.ArrVal;
    if (L[0].Ty != Type::Int || L[0].IntVal <= 0) {
      diag(Severity::Error, "stop-site", Artifact::Symtab, Where,
           "stopping point has no positive source line");
    } else {
      // Loci are sorted by source line (code offsets may jump around
      // loop back-edges), and each stopping point has its own no-op.
      if (L[0].IntVal < PrevLine)
        diag(Severity::Error, "stop-site", Artifact::Symtab, Where,
             "stopping points are not sorted by source line");
      PrevLine = L[0].IntVal;
    }
    if (L[1].Ty != Type::Int || L[1].IntVal < 0) {
      diag(Severity::Error, "stop-site", Artifact::Symtab, Where,
           "stopping point has no non-negative code offset");
      continue;
    }
    if (!SeenOffsets.insert(L[1].IntVal).second)
      diag(Severity::Error, "stop-site", Artifact::Symtab, Where,
           "two stopping points share one code offset");

    if (P) {
      uint32_t Addr = P->Addr + static_cast<uint32_t>(L[1].IntVal);
      bool InRange = Addr >= P->Addr && Addr < P->End;
      if (InRange)
        StopAddrs[Name].push_back(Addr); // the cfa family proves these
      if (Opt.CheckStops) {
        ++R.StopsChecked;
        if (!InRange) {
          diagAt(Severity::Error, "stop-site", Artifact::Symtab, Name, Addr,
                 "stopping point lies outside the procedure's code range ["
                 + hex32(P->Addr) + ", " + hex32(P->End) + ")");
        } else {
          Expected<uint32_t> Word = textWord(Addr);
          if (!Word)
            diagAt(Severity::Error, "stop-site", Artifact::Image, Name,
                   Addr, Word.message());
          else if (*Word != C.Desc->nopWord())
            diagAt(Severity::Error, "stop-site", Artifact::Image, Name,
                   Addr,
                   "stopping point does not hold the no-op word: found " +
                       hex32(*Word) + ", expected " +
                       hex32(C.Desc->nopWord()));
        }
      }
    }

    if (Opt.CheckScopes) {
      Object Visible = L[2];
      if (Error E = symtab::force(I, Visible)) {
        diag(Severity::Error, "scope", Artifact::Symtab, Where,
             E.message());
        continue;
      }
      walkVisibleChain(Visible, Where, FrameSize);
    }
  }
}

bool Verifier::checkEntry(Object &Entry, const std::string &Context,
                          int64_t FrameSize) {
  if (Entry.Ty != Type::Dict) {
    diag(Severity::Error, "scope", Artifact::Symtab, Context,
         "symbol-table entry is not a dictionary");
    return false;
  }
  if (!SeenEntries.insert(Entry.DictVal.get()).second)
    return true; // already checked
  ++R.EntriesWalked;

  std::string Name = Context;
  Expected<Object> NameV = symtab::field(I, Entry, "name");
  if (!NameV || NameV->Ty != Type::String)
    diag(Severity::Error, "scope", Artifact::Symtab, Context,
         NameV ? "/name is not a string" : NameV.message());
  else {
    Name = NameV->text();
    EntryNames.insert(Name);
  }

  for (const char *Key : {"sourcefile", "kind"}) {
    Expected<Object> V = symtab::field(I, Entry, Key);
    if (!V || V->Ty != Type::String)
      diag(Severity::Error, "scope", Artifact::Symtab, Name,
           V ? "/" + std::string(Key) + " is not a string" : V.message());
  }
  int64_t Y = 0, X = 0;
  intField(Entry, "sourcey", Name, Y);
  intField(Entry, "sourcex", Name, X);

  Expected<Object> Kind = symtab::field(I, Entry, "kind");
  bool IsProc = false;
  if (Kind && Kind->Ty == Type::String) {
    if (Kind->text() == "procedure")
      IsProc = true;
    else if (Kind->text() != "variable")
      diag(Severity::Error, "scope", Artifact::Symtab, Name,
           "unknown /kind (" + Kind->text() + ")");
  }

  if (Opt.CheckTypes) {
    Expected<Object> Ty = symtab::field(I, Entry, "type");
    if (!Ty)
      diag(Severity::Error, "type", Artifact::Symtab, Name, Ty.message());
    else
      checkType(*Ty, Name);
  }

  if (Opt.CheckWhere && !IsProc)
    checkWhere(Entry, Name, FrameSize);
  return true;
}

void Verifier::walkVisibleChain(Object Head, const std::string &Context,
                                int64_t FrameSize) {
  // null ends a chain (a stopping point before any declaration).
  std::set<const DictImpl *> OnChain;
  Object Entry = Head;
  int64_t PrevY = -1, PrevX = -1;
  std::string PrevFile, PrevName;
  while (Entry.Ty != Type::Null) {
    if (Error E = symtab::force(I, Entry)) {
      diag(Severity::Error, "scope", Artifact::Symtab, Context,
           "unresolved visible-chain link: " + E.message());
      return;
    }
    if (Entry.Ty != Type::Dict) {
      diag(Severity::Error, "scope", Artifact::Symtab, Context,
           "visible-chain link is not a symbol-table entry");
      return;
    }
    if (!OnChain.insert(Entry.DictVal.get()).second) {
      diag(Severity::Error, "scope", Artifact::Symtab, Context,
           "uplink cycle: the visible chain revisits an entry");
      return;
    }
    if (!checkEntry(Entry, Context, FrameSize))
      return;

    // Scope nesting must match the source (Fig 2): each uplink target
    // was declared at or before the symbol that links to it, so walking
    // up the chain source positions never advance (within one file).
    Expected<Object> File = symtab::field(I, Entry, "sourcefile");
    Expected<Object> NameV = symtab::field(I, Entry, "name");
    int64_t Y = 0, X = 0;
    bool HaveYx = symtab::hasField(Entry, "sourcey") &&
                  symtab::hasField(Entry, "sourcex");
    if (HaveYx) {
      Expected<Object> YV = symtab::field(I, Entry, "sourcey");
      Expected<Object> XV = symtab::field(I, Entry, "sourcex");
      if (YV && XV && YV->Ty == Type::Int && XV->Ty == Type::Int) {
        Y = YV->IntVal;
        X = XV->IntVal;
      } else {
        HaveYx = false;
      }
    }
    std::string FileText =
        File && File->Ty == Type::String ? File->text() : std::string();
    if (HaveYx && PrevY >= 0 && FileText == PrevFile &&
        (Y > PrevY || (Y == PrevY && X > PrevX)))
      diag(Severity::Error, "scope", Artifact::Symtab,
           NameV && NameV->Ty == Type::String ? NameV->text() : Context,
           "scope nesting does not match the source: declared at line " +
               std::to_string(Y) + " but linked below " + PrevName +
               " (line " + std::to_string(PrevY) + ")");
    if (HaveYx) {
      PrevY = Y;
      PrevX = X;
      PrevFile = FileText;
      PrevName = NameV && NameV->Ty == Type::String ? NameV->text()
                                                    : std::string("?");
    }

    if (!symtab::hasField(Entry, "uplink"))
      return;
    Expected<Object> Up = symtab::field(I, Entry, "uplink");
    if (!Up) {
      diag(Severity::Error, "scope", Artifact::Symtab, Context,
           "unresolved uplink: " + Up.message());
      return;
    }
    Entry = *Up;
  }
}

//===----------------------------------------------------------------------===//
// Family 3: /where well-formedness
//===----------------------------------------------------------------------===//

void Verifier::checkWhere(Object &Entry, const std::string &Name,
                          int64_t FrameSize) {
  if (!symtab::hasField(Entry, "where"))
    return; // procedures and abstract entries carry no /where
  Expected<mem::Location> Loc = symtab::whereOf(I, Entry);
  if (!Loc) {
    diag(Severity::Error, "where", Artifact::Symtab, Name, Loc.message());
    return;
  }
  const target::TargetDesc &D = *C.Desc;
  if (Loc->Mode == mem::AddrMode::Immediate)
    return;
  switch (Loc->Space) {
  case mem::SpGpr:
    if (Loc->Offset < 0 ||
        Loc->Offset >= static_cast<int64_t>(D.NumGpr))
      diag(Severity::Error, "where", Artifact::Symtab, Name,
           "register number " + std::to_string(Loc->Offset) +
               " out of range: " + D.Name + " has " +
               std::to_string(D.NumGpr) + " general registers");
    break;
  case mem::SpFpr:
    if (Loc->Offset < 0 ||
        Loc->Offset >= static_cast<int64_t>(D.NumFpr))
      diag(Severity::Error, "where", Artifact::Symtab, Name,
           "floating register number " + std::to_string(Loc->Offset) +
               " out of range: " + D.Name + " has " +
               std::to_string(D.NumFpr) + " floating registers");
    break;
  case mem::SpLocal: {
    // Locals live below the virtual frame pointer; allow headroom for
    // argument-build areas but reject anything that cannot be inside
    // this procedure's frame.
    int64_t Lo = FrameSize >= 0 ? -(FrameSize + 4096) : -(1 << 16);
    int64_t Hi = 4096;
    if (Loc->Offset < Lo || Loc->Offset > Hi)
      diag(Severity::Error, "where", Artifact::Symtab, Name,
           "frame offset " + std::to_string(Loc->Offset) +
               " cannot lie within the procedure's frame (size " +
               std::to_string(FrameSize) + ")");
    break;
  }
  case mem::SpData: {
    uint32_t Addr = static_cast<uint32_t>(Loc->Offset);
    if (Loc->Offset < 0 || Addr < C.Img.DataBase ||
        Addr >= C.Img.DataBase + C.Img.Data.size())
      diagAt(Severity::Error, "where", Artifact::Symtab, Name, Addr,
             "resolved data address lies outside the data segment");
    else
      GlobalAddrs[Name] = Addr;
    break;
  }
  case mem::SpCode:
    break;
  default:
    diag(Severity::Error, "where", Artifact::Symtab, Name,
         "location in unknown space: " + Loc->str());
  }
}

//===----------------------------------------------------------------------===//
// Family 4: type dictionaries
//===----------------------------------------------------------------------===//

void Verifier::checkPrinterBody(const Object &Proc, const std::string &Sym) {
  for (const Object &El : *Proc.ArrVal) {
    if (El.Ty == Type::Array && El.Exec)
      checkPrinterBody(El, Sym);
    else if (El.Ty == Type::Name && El.Exec) {
      Object Bound;
      if (!I.lookup(El.text(), Bound))
        diag(Severity::Error, "type", Artifact::Symtab, Sym,
             "/printer references undefined name " + El.text());
    }
  }
}

void Verifier::checkType(Object Ty, const std::string &Sym) {
  if (Ty.Ty != Type::Dict) {
    diag(Severity::Error, "type", Artifact::Symtab, Sym,
         "/type is not a dictionary");
    return;
  }
  // Types are hash-consed by the emitter; check each shared dictionary
  // once.
  if (!SeenTypes.insert(Ty.DictVal.get()).second)
    return;

  Expected<Object> Decl = symtab::field(I, Ty, "decl");
  if (!Decl || Decl->Ty != Type::String)
    diag(Severity::Error, "type", Artifact::Symtab, Sym,
         Decl ? "type has no /decl string" : Decl.message());
  std::string TyName =
      Decl && Decl->Ty == Type::String ? Sym + " (" + Decl->text() + ")"
                                       : Sym;

  int64_t Size = -1;
  Expected<Object> SizeV = symtab::field(I, Ty, "size");
  if (!SizeV || SizeV->Ty != Type::Int)
    diag(Severity::Error, "type", Artifact::Symtab, TyName,
         SizeV ? "type has no integer /size" : SizeV.message());
  else if ((Size = SizeV->IntVal) < 0 || Size > (1 << 24))
    diag(Severity::Error, "type", Artifact::Symtab, TyName,
         "implausible type size " + std::to_string(Size));

  Expected<Object> Printer = symtab::field(I, Ty, "printer");
  if (!Printer)
    diag(Severity::Error, "type", Artifact::Symtab, TyName,
         Printer.message());
  else if (Printer->Ty == Type::Array && Printer->Exec)
    checkPrinterBody(*Printer, TyName);
  else if (!(Printer->Ty == Type::Name && Printer->Exec) &&
           Printer->Ty != Type::Operator)
    diag(Severity::Error, "type", Artifact::Symtab, TyName,
         "/printer is not a procedure");

  if (symtab::hasField(Ty, "&pointee")) {
    Expected<Object> Pointee = symtab::field(I, Ty, "&pointee");
    if (Pointee)
      checkType(*Pointee, Sym);
    if (Size >= 0 && Size != 4)
      diag(Severity::Error, "type", Artifact::Symtab, TyName,
           "pointer type has size " + std::to_string(Size));
  }

  if (symtab::hasField(Ty, "&elemtype") ||
      symtab::hasField(Ty, "&elemsize")) {
    int64_t ElemSize = 0, ArraySize = 0;
    if (intField(Ty, "&elemsize", TyName, ElemSize)) {
      if (ElemSize <= 0)
        diag(Severity::Error, "type", Artifact::Symtab, TyName,
             "array element size " + std::to_string(ElemSize) +
                 " is not positive");
      else if (Size >= 0 && Size % ElemSize != 0)
        diag(Severity::Error, "type", Artifact::Symtab, TyName,
             "array size " + std::to_string(Size) +
                 " is not a multiple of the element size " +
                 std::to_string(ElemSize));
    }
    if (intField(Ty, "&arraysize", TyName, ArraySize) && Size >= 0 &&
        ArraySize != Size)
      diag(Severity::Error, "type", Artifact::Symtab, TyName,
           "/&arraysize " + std::to_string(ArraySize) +
               " disagrees with /size " + std::to_string(Size));
    if (symtab::hasField(Ty, "&elemtype")) {
      Expected<Object> Elem = symtab::field(I, Ty, "&elemtype");
      if (Elem)
        checkType(*Elem, Sym);
    }
  }

  if (symtab::hasField(Ty, "&fields")) {
    Expected<Object> Fields = symtab::field(I, Ty, "&fields");
    if (!Fields || Fields->Ty != Type::Array) {
      diag(Severity::Error, "type", Artifact::Symtab, TyName,
           Fields ? "/&fields is not an array" : Fields.message());
      return;
    }
    int64_t PrevOffset = -1;
    for (const Object &F : *Fields->ArrVal) {
      if (F.Ty != Type::Dict) {
        diag(Severity::Error, "type", Artifact::Symtab, TyName,
             "struct field is not a dictionary");
        continue;
      }
      Expected<Object> FName = symtab::field(I, F, "name");
      std::string FieldName =
          FName && FName->Ty == Type::String ? TyName + "." + FName->text()
                                             : TyName;
      int64_t Offset = -1, FieldSize = -1;
      if (intField(F, "offset", FieldName, Offset) && Offset < 0)
        diag(Severity::Error, "type", Artifact::Symtab, FieldName,
             "negative field offset " + std::to_string(Offset));
      if (Offset >= 0 && Offset < PrevOffset)
        diag(Severity::Error, "type", Artifact::Symtab, FieldName,
             "field offsets are not non-decreasing");
      PrevOffset = std::max(PrevOffset, Offset);
      Expected<Object> FTy = symtab::field(I, F, "type");
      if (!FTy) {
        diag(Severity::Error, "type", Artifact::Symtab, FieldName,
             FTy.message());
        continue;
      }
      checkType(*FTy, FieldName);
      if (FTy->Ty == Type::Dict && symtab::hasField(*FTy, "size")) {
        Expected<Object> FSize = symtab::field(I, *FTy, "size");
        if (FSize && FSize->Ty == Type::Int)
          FieldSize = FSize->IntVal;
      }
      if (Size >= 0 && Offset >= 0 && FieldSize >= 0 &&
          Offset + FieldSize > Size)
        diag(Severity::Error, "type", Artifact::Symtab, FieldName,
             "field at offset " + std::to_string(Offset) + " of size " +
                 std::to_string(FieldSize) +
                 " overruns the struct size " + std::to_string(Size));
    }
  }
}

//===----------------------------------------------------------------------===//
// Family 5: cross-artifact agreement
//===----------------------------------------------------------------------===//

void Verifier::checkAgreement() {
  const lcc::Image &Img = C.Img;
  std::map<std::string, uint32_t> ImageText, ImageData;
  for (const lcc::ImageSymbol &S : Img.Symbols)
    (S.Kind == 'T' ? ImageText : ImageData)[S.Name] = S.Addr;

  // Loader table vs image: the proctable is generated from the image, so
  // every entry must name a text symbol at the same address, and every
  // linked procedure must appear.
  uint32_t TextEnd = Img.TextBase + static_cast<uint32_t>(Img.Text.size());
  for (const Proc &P : ProcTable) {
    if (P.Addr < Img.TextBase || P.Addr >= TextEnd)
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, P.Name,
             P.Addr, "proctable entry lies outside the text segment");
    auto It = ImageText.find(P.Name);
    if (It == ImageText.end())
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, P.Name,
             P.Addr, "proctable names a procedure the image does not");
    else if (It->second != P.Addr)
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, P.Name,
             P.Addr,
             "proctable address disagrees with the image symbol at " +
                 hex32(It->second));
  }
  for (const lcc::ProcInfo &P : Img.Procs)
    if (!ProcByName.count(P.Name))
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, P.Name,
             P.CodeOffset,
             "linked procedure is missing from the proctable");

  // Anchor symbols: the symtab's anchors and the loader table's anchor
  // map must match exactly, and each anchor must be a data symbol the
  // image defines (paper Sec 2's "symbol table matches the object code"
  // check, strengthened to both directions).
  std::set<std::string> SymtabAnchors;
  Expected<Object> Top = symtab::topLevel(I);
  if (Top) {
    Expected<Object> Anchors = symtab::field(I, *Top, "anchors");
    if (!Anchors || Anchors->Ty != Type::Array)
      diag(Severity::Error, "agreement", Artifact::Symtab, "",
           Anchors ? "top-level /anchors is not an array"
                   : Anchors.message());
    else
      for (const Object &A : *Anchors->ArrVal)
        if (A.Ty == Type::Name || A.Ty == Type::String)
          SymtabAnchors.insert(A.text());
  }
  Object LT;
  std::map<std::string, uint32_t> AnchorMap;
  if (I.lookup("loadertable", LT) && LT.Ty == Type::Dict) {
    const Object *Found = LT.DictVal->find("anchormap");
    if (Found && Found->Ty == Type::Dict)
      Found->DictVal->forEach([&AnchorMap](uint32_t Key, const Object &V) {
        AnchorMap[ps::AtomTable::global().text(Key)] =
            static_cast<uint32_t>(V.IntVal);
      });
  }
  for (const std::string &A : SymtabAnchors)
    if (!AnchorMap.count(A))
      diag(Severity::Error, "agreement", Artifact::LoaderTable, A,
           "anchor symbol is dangling: named by the symbol table but "
           "missing from the loader table");
  for (const auto &[Name, Addr] : AnchorMap) {
    if (!SymtabAnchors.count(Name))
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, Name,
             Addr, "loader table lists an anchor no symbol table names");
    if (Addr < Img.DataBase || Addr >= Img.DataBase + Img.Data.size())
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, Name,
             Addr, "anchor address lies outside the data segment");
    auto It = ImageData.find(Name);
    if (It == ImageData.end())
      diag(Severity::Error, "agreement", Artifact::LoaderTable, Name,
           "anchor names a data symbol the image does not define");
    else if (It->second != Addr)
      diagAt(Severity::Error, "agreement", Artifact::LoaderTable, Name,
             Addr, "anchor address disagrees with the image symbol at " +
                       hex32(It->second));
  }

  // Symtab procedures must be loadable: every /kind (procedure) entry
  // needs a proctable address (the reverse — proctable entries like
  // _start without debugging symbols — is legitimate).
  for (const std::string &Name : SymtabProcNames)
    if (!ProcByName.count(Name))
      diag(Severity::Error, "agreement", Artifact::Symtab, Name,
           "procedure entry has no loader-table address");

  // Globals the symbol table located (via LazyData) must agree with the
  // image's data symbols when the image exports them by name.
  for (const auto &[Name, Addr] : GlobalAddrs) {
    auto It = ImageData.find(Name);
    if (It != ImageData.end() && It->second != Addr)
      diagAt(Severity::Error, "agreement", Artifact::Symtab, Name, Addr,
             "symbol table resolves the global to " + hex32(Addr) +
                 " but the image defines it at " + hex32(It->second));
  }

  // Stabs: the baseline must agree with the PostScript view on names.
  Expected<std::vector<lcc::Stab>> Stabs = lcc::readAllStabs(C.Stabs);
  if (!Stabs) {
    diag(Severity::Error, "agreement", Artifact::Stabs, "",
         Stabs.message());
    return;
  }
  std::set<std::string> StabProcs;
  const target::TargetDesc &D = *C.Desc;
  for (const lcc::Stab &S : *Stabs) {
    if (S.Kind == 1) {
      StabProcs.insert(S.Name);
      if (!ProcByName.count(S.Name))
        diag(Severity::Error, "agreement", Artifact::Stabs, S.Name,
             "stab procedure is missing from the loader table");
    } else if (S.LocKind == 2) {
      if (!EntryNames.count(S.Name))
        diag(Severity::Error, "agreement", Artifact::Stabs, S.Name,
             "stab global has no PostScript symbol-table entry");
      if (S.Value < 0)
        diag(Severity::Error, "agreement", Artifact::Stabs, S.Name,
             "negative anchor index " + std::to_string(S.Value));
    } else if (S.LocKind == 1) {
      int64_t MaxReg = std::max(D.NumGpr, D.NumFpr);
      if (S.Value < 0 || S.Value >= MaxReg)
        diag(Severity::Error, "agreement", Artifact::Stabs, S.Name,
             "stab register number " + std::to_string(S.Value) +
                 " out of range for " + D.Name);
    }
  }
  for (const std::string &Name : SymtabProcNames)
    if (!StabProcs.count(Name))
      diag(Severity::Error, "agreement", Artifact::Stabs, Name,
           "procedure has PostScript symbols but no stab");
  for (const std::string &Name : StabProcs)
    if (!SymtabProcNames.count(Name))
      diag(Severity::Error, "agreement", Artifact::Stabs, Name,
           "stab procedure has no PostScript symbol-table entry");
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

Report Verifier::run() {
  Arch = core::architectureByName(C.Desc->Name);
  // The blob family must look before setup() interprets the artifacts:
  // interpreting is exactly what silently drops a damaged blob from the
  // cache.
  if (Opt.CheckBlob)
    checkFastloadBlobs(C, R.Diags);
  if (setup()) {
    loadProcTable();
    walkSymtab();
    if (Opt.CheckAgreement)
      checkAgreement();
    std::vector<ProcRange> Ranges;
    Ranges.reserve(ProcTable.size());
    for (const Proc &P : ProcTable)
      Ranges.push_back(ProcRange{P.Name, P.Addr, P.End});
    if (Opt.CheckCfa)
      checkControlFlow(C, Ranges, StopAddrs, R.Diags);
    // The LDBI half of the blob family needs the walk's fully-forced
    // dictionaries: the compiler lowers exactly the state walkSymtab
    // just checked.
    if (Opt.CheckBlob)
      checkSymblob(I, C, Ranges, StopAddrs, SymtabProcNames, EntryNames,
                   R.Diags);
  }
  R.normalize();
  return std::move(R);
}

} // namespace

Expected<Report> ldb::verify::verifyCompilation(const lcc::Compilation &C,
                                                const Options &Opt) {
  if (!C.Desc)
    return Error::failure("compilation has no target description");
  if (!core::architectureByName(C.Desc->Name))
    return Error::failure("no registered architecture named " +
                          C.Desc->Name);
  Verifier V(C, Opt);
  return V.run();
}
