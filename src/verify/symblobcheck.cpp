//===- verify/symblobcheck.cpp - LDBI blob verification --------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/symblobcheck.h"

#include "core/symblob.h"
#include "core/symtab.h"
#include "postscript/fastload.h"
#include "postscript/interp.h"

#include <algorithm>
#include <cstring>
#include <set>

using namespace ldb;
using namespace ldb::verify;
using namespace ldb::ps;

namespace symblob = ldb::core::symblob;
namespace symtab = ldb::core::symtab;

namespace {

void emit(std::vector<Diagnostic> &Out, std::string Sym, std::string Msg) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Check = "blob";
  D.Art = Artifact::Symblob;
  D.Symbol = std::move(Sym);
  D.Message = std::move(Msg);
  Out.push_back(std::move(D));
}

void emitAt(std::vector<Diagnostic> &Out, std::string Sym, uint32_t Addr,
            std::string Msg) {
  Diagnostic D;
  D.Sev = Severity::Error;
  D.Check = "blob";
  D.Art = Artifact::Symblob;
  D.Symbol = std::move(Sym);
  D.Addr = Addr;
  D.HasAddr = true;
  D.Message = std::move(Msg);
  Out.push_back(std::move(D));
}

uint32_t rd32(const std::vector<uint8_t> &B, size_t Off) {
  return static_cast<uint32_t>(B[Off]) |
         (static_cast<uint32_t>(B[Off + 1]) << 8) |
         (static_cast<uint32_t>(B[Off + 2]) << 16) |
         (static_cast<uint32_t>(B[Off + 3]) << 24);
}

//===----------------------------------------------------------------------===//
// The mutation battery: each deliberately damaged copy must be rejected
// by inspect() with at least one structured issue, and attach() must
// refuse it. A mutation that slips through means queries would trust
// corrupt data, so the escape itself becomes a diagnostic.
//===----------------------------------------------------------------------===//

struct Mutation {
  const char *Label;
  bool Applied = false;
  std::vector<uint8_t> Bytes;
};

std::vector<Mutation> mutate(const std::vector<uint8_t> &Clean) {
  // Header layout (symblob.h): descriptors at 24, {offset, count} pairs
  // for strings, procs, loci, files, lines, names; ProcRec is 28 bytes
  // with the name offset at +8.
  constexpr size_t DescOff = 24, ProcRecSize = 28;
  uint32_t ProcsOff = Clean.size() >= 76 ? rd32(Clean, DescOff + 8) : 0;
  uint32_t ProcCnt = Clean.size() >= 76 ? rd32(Clean, DescOff + 12) : 0;

  std::vector<Mutation> Out;
  auto Add = [&](const char *Label) -> Mutation & {
    Out.push_back(Mutation{Label, false, Clean});
    return Out.back();
  };

  {
    Mutation &M = Add("truncation to half");
    M.Bytes.resize(M.Bytes.size() / 2);
    M.Applied = true;
  }
  {
    Mutation &M = Add("truncation inside the header");
    M.Bytes.resize(12);
    M.Applied = true;
  }
  {
    Mutation &M = Add("bad magic");
    if (!M.Bytes.empty()) {
      M.Bytes[0] ^= 0xFF;
      M.Applied = true;
    }
  }
  {
    Mutation &M = Add("stale image key");
    if (M.Bytes.size() >= 16) {
      M.Bytes[8] ^= 0x01;
      M.Applied = true;
    }
  }
  {
    Mutation &M = Add("unsorted pc index");
    if (ProcCnt >= 2 &&
        ProcsOff + 2 * ProcRecSize <= M.Bytes.size()) {
      std::vector<uint8_t> Tmp(ProcRecSize);
      std::memcpy(Tmp.data(), M.Bytes.data() + ProcsOff, ProcRecSize);
      std::memcpy(M.Bytes.data() + ProcsOff,
                  M.Bytes.data() + ProcsOff + ProcRecSize, ProcRecSize);
      std::memcpy(M.Bytes.data() + ProcsOff + ProcRecSize, Tmp.data(),
                  ProcRecSize);
      M.Applied = true;
    }
  }
  {
    Mutation &M = Add("out-of-range string offset");
    if (ProcCnt >= 1 && ProcsOff + ProcRecSize <= M.Bytes.size()) {
      uint32_t Bad = 0xFFFFFF00u;
      std::memcpy(M.Bytes.data() + ProcsOff + 8, &Bad, 4);
      M.Applied = true;
    }
  }
  return Out;
}

void checkMutations(const std::vector<uint8_t> &Clean, uint64_t Key,
                    std::vector<Diagnostic> &Out) {
  for (Mutation &M : mutate(Clean)) {
    if (!M.Applied)
      continue;
    std::vector<symblob::Issue> Issues = symblob::inspect(M.Bytes, Key);
    if (Issues.empty())
      emit(Out, M.Label,
           "mutated blob passes inspection; the validator would trust "
           "damaged data");
    Expected<std::shared_ptr<const symblob::Blob>> B =
        symblob::Blob::attach(M.Bytes, Key);
    if (B)
      emit(Out, M.Label, "mutated blob attaches successfully");
  }
}

} // namespace

void ldb::verify::checkSymblob(
    ps::Interp &I, const lcc::Compilation &C,
    const std::vector<ProcRange> &Procs,
    const std::map<std::string, std::vector<uint32_t>> &StopAddrs,
    const std::set<std::string> &SymtabProcNames,
    const std::set<std::string> &EntryNames,
    std::vector<Diagnostic> &Out) {
  // The blob keys exactly what the image repository would key: the
  // architecture name plus both debug texts.
  uint64_t Key = symblob::combineKeys(
      ps::fastload::contentHash(C.Desc->Name + "\n" + C.PsSymtab),
      ps::fastload::contentHash(C.LoaderTable));

  Expected<std::vector<uint8_t>> BytesE =
      symblob::compile(I, symblob::Params{Key, C.Desc->Name});
  if (!BytesE) {
    emit(Out, "", "symbol table does not compile to an LDBI blob: " +
                      BytesE.message());
    return;
  }
  std::vector<uint8_t> Bytes = BytesE.take();

  // Structural validation of the freshly compiled blob must be clean.
  for (const symblob::Issue &Is : symblob::inspect(Bytes, Key))
    emitAt(Out, "", static_cast<uint32_t>(Is.Offset), Is.What);

  Expected<std::shared_ptr<const symblob::Blob>> BlobE =
      symblob::Blob::attach(Bytes, Key);
  if (!BlobE) {
    emit(Out, "", "freshly compiled blob does not attach: " +
                      BlobE.message());
    return;
  }
  const symblob::Blob &B = **BlobE;

  if (B.archName() != C.Desc->Name)
    emit(Out, std::string(B.archName()),
         "blob architecture disagrees with the image's " + C.Desc->Name);

  // pc -> proc: the blob's procedure index against the loader table.
  if (B.procCount() != Procs.size())
    emit(Out, "",
         "blob has " + std::to_string(B.procCount()) +
             " procedures but the loader table lists " +
             std::to_string(Procs.size()));
  for (const ProcRange &P : Procs) {
    std::optional<symblob::Blob::ProcView> V = B.procAt(P.Addr);
    // The blob leaves the last procedure's range open (End = 0): the
    // compiler sees only the debug texts, not the image's text size.
    if (!V || V->Name != P.Name || (V->End != 0 && V->End != P.End)) {
      emitAt(Out, P.Name, P.Addr,
             "pc index disagrees with the loader table entry");
      continue;
    }
    std::optional<symblob::Blob::ProcView> Cont = B.procContaining(P.Addr);
    if (!Cont || Cont->Addr != P.Addr)
      emitAt(Out, P.Name, P.Addr,
             "procContaining does not return the procedure at its own "
             "entry address");
    // procNamed routes through the name index, which lowers the externs
    // dictionary; statics and runtime stubs are legitimately absent.
    std::optional<symblob::Blob::ProcView> Named = B.procNamed(P.Name);
    if (V->Extern && (!Named || Named->Addr != P.Addr))
      emitAt(Out, P.Name, P.Addr,
             "procedure name lookup disagrees with the loader table");
  }

  // pc -> locus: every stop address the symtab walk resolved must be a
  // blob locus of the same procedure, and vice versa.
  std::map<std::string, uint32_t> LoaderAddr;
  for (const ProcRange &P : Procs)
    LoaderAddr[P.Name] = P.Addr;
  for (const auto &[Name, Addrs] : StopAddrs) {
    // By loader-table address, not name: the name index covers only
    // externs, but every stop site belongs to a linked procedure.
    auto AddrIt = LoaderAddr.find(Name);
    std::optional<symblob::Blob::ProcView> V =
        AddrIt == LoaderAddr.end() ? std::nullopt : B.procAt(AddrIt->second);
    if (!V) {
      emit(Out, Name, "procedure with stop sites is missing from the blob");
      continue;
    }
    if (!V->HasSymbols) {
      emit(Out, Name,
           "procedure has stop sites but the blob carries no loci for it");
      continue;
    }
    std::set<uint32_t> BlobStops;
    for (uint32_t K = 0; K < V->LociCount; ++K) {
      symblob::Blob::LocusView L = B.locus(V->LociStart + K);
      if (L.ProcId != V->Id)
        emitAt(Out, Name, L.Addr,
               "locus group member does not point back at its procedure");
      BlobStops.insert(L.Addr);
    }
    for (uint32_t Addr : Addrs)
      if (!BlobStops.count(Addr))
        emitAt(Out, Name, Addr,
               "stop site resolved by the symtab walk is missing from "
               "the blob's pc index");
    std::set<uint32_t> Walked(Addrs.begin(), Addrs.end());
    for (uint32_t Addr : BlobStops)
      if (!Walked.count(Addr))
        emitAt(Out, Name, Addr,
               "blob lists a stop site the symtab walk did not resolve");
  }
  for (const std::string &Name : SymtabProcNames) {
    auto AddrIt = LoaderAddr.find(Name);
    if (AddrIt == LoaderAddr.end())
      continue; // the agreement family reports the missing loader entry
    std::optional<symblob::Blob::ProcView> V = B.procAt(AddrIt->second);
    if (V && !V->HasSymbols && StopAddrs.count(Name))
      emit(Out, Name, "blob marks a symtab procedure as symbol-less");
  }

  // (file, line) -> stop site: replay the sourcemap walk that built the
  // line index and demand the blob answers every query it defines.
  Expected<Object> Top = symtab::topLevel(I);
  if (Top && symtab::hasField(*Top, "sourcemap")) {
    Expected<Object> SM = symtab::field(I, *Top, "sourcemap");
    if (SM && SM->Ty == Type::Dict) {
      std::map<std::string, const ProcRange *> ByName;
      for (const ProcRange &P : Procs)
        ByName[P.Name] = &P;
      for (const auto &[Atom, Val] : SM->DictVal->sortedItems()) {
        std::string FileName = AtomTable::global().text(Atom);
        std::optional<uint32_t> Fid = B.fileId(FileName);
        Object Refs = Val;
        if (symtab::force(I, Refs) || Refs.Ty != Type::Array)
          continue; // the scope family reports malformed sourcemaps
        if (!Fid) {
          emit(Out, FileName,
               "sourcemap unit is missing from the blob's file table");
          continue;
        }
        for (const Object &EntryRef : *Refs.ArrVal) {
          Object Entry = EntryRef;
          if (symtab::force(I, Entry) || Entry.Ty != Type::Dict)
            continue;
          Expected<Object> NameV = symtab::field(I, Entry, "name");
          if (!NameV || NameV->Ty != Type::String)
            continue;
          auto It = ByName.find(NameV->text());
          if (It == ByName.end())
            continue; // not linked into this image; the blob skips it too
          Expected<Object> Loci = symtab::field(I, Entry, "loci");
          if (!Loci || Loci->Ty != Type::Array)
            continue;
          for (const Object &Locus : *Loci->ArrVal) {
            if (Locus.Ty != Type::Array || Locus.ArrVal->size() < 2)
              continue;
            const ArrayImpl &L = *Locus.ArrVal;
            if (L[0].Ty != Type::Int || L[1].Ty != Type::Int)
              continue;
            int Line = static_cast<int>(L[0].IntVal);
            uint32_t Addr =
                It->second->Addr + static_cast<uint32_t>(L[1].IntVal);
            bool Found = false;
            for (uint32_t Id : B.lociForLine(*Fid, Line))
              Found |= B.locus(Id).Addr == Addr;
            if (!Found)
              emitAt(Out, NameV->text() + " " + FileName + ":" +
                              std::to_string(Line),
                     Addr,
                     "line-index query misses a stop site the sourcemap "
                     "walk yields");
          }
        }
      }
    }
  }

  // name -> symbol: the externs dictionary is exactly what the blob's
  // name index lowers, so the two must agree in both directions.
  if (Top && symtab::hasField(*Top, "externs")) {
    Expected<Object> Externs = symtab::field(I, *Top, "externs");
    if (Externs && Externs->Ty == Type::Dict) {
      for (const auto &[Atom, Val] : Externs->DictVal->sortedItems()) {
        std::string SymName = AtomTable::global().text(Atom);
        Object Entry = Val;
        if (symtab::force(I, Entry) || Entry.Ty != Type::Dict)
          continue;
        bool IsProc = symtab::hasField(Entry, "loci");
        std::optional<symblob::Blob::SymbolView> S = B.symbolNamed(SymName);
        if (!S) {
          emit(Out, SymName,
               "extern symbol is missing from the blob's name index");
          continue;
        }
        if (S->IsProc != IsProc)
          emit(Out, SymName,
               "name index disagrees with the externs dictionary on the "
               "symbol's kind");
        if (S->IsProc && S->ProcId != symblob::NoId &&
            B.proc(S->ProcId).Name != SymName)
          emit(Out, SymName,
               "name index binds the symbol to the wrong procedure");
      }
    }
  }
  for (uint32_t K = 0; K < B.symbolCount(); ++K) {
    symblob::Blob::SymbolView S = B.symbol(K);
    std::string SymName(S.Name);
    if (!EntryNames.count(SymName))
      emit(Out, SymName,
           "blob names a symbol the symtab walk never saw");
    if (S.IsProc && S.ProcId != symblob::NoId &&
        (S.ProcId >= B.procCount() || B.proc(S.ProcId).Name != S.Name))
      emit(Out, SymName, "name record points at the wrong procedure");
    if (!S.IsProc && S.ProcId != symblob::NoId)
      emit(Out, SymName, "data symbol carries a procedure id");
  }

  checkMutations(Bytes, Key, Out);
}
