//===- verify/mdlint.cpp - machine-dependence isolation lint ---------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "verify/mdlint.h"

#include "support/strings.h"

#include <algorithm>
#include <filesystem>

using namespace ldb;
using namespace ldb::verify;

namespace fs = std::filesystem;

namespace {

const char *const TargetNames[] = {"zmips", "z68k", "zsparc", "zvax"};

/// The dispatch registries: the one place per subsystem allowed to map an
/// architecture name to its machine-dependent instance (paper Sec 4.3's
/// "machine-independent code selects among machine-dependent instances").
const char *const Registries[] = {
    "core/arch.cpp",
    "lcc/cgtarget.cpp",
    "nub/nubmd.cpp",
};

bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

/// Replaces comments and string/character literals with spaces, keeping
/// newlines so line numbers survive.
std::string stripCommentsAndLiterals(const std::string &In) {
  std::string Out = In;
  enum { Code, LineComment, BlockComment, Str, Chr } State = Code;
  for (size_t K = 0; K < In.size(); ++K) {
    char C = In[K];
    char Next = K + 1 < In.size() ? In[K + 1] : '\0';
    switch (State) {
    case Code:
      if (C == '/' && Next == '/') {
        State = LineComment;
        Out[K] = ' ';
      } else if (C == '/' && Next == '*') {
        State = BlockComment;
        Out[K] = ' ';
      } else if (C == '"') {
        State = Str;
        Out[K] = ' ';
      } else if (C == '\'') {
        State = Chr;
        Out[K] = ' ';
      }
      break;
    case LineComment:
      if (C == '\n')
        State = Code;
      else
        Out[K] = ' ';
      break;
    case BlockComment:
      if (C == '*' && Next == '/') {
        Out[K] = ' ';
        Out[K + 1] = ' ';
        ++K;
        State = Code;
      } else if (C != '\n') {
        Out[K] = ' ';
      }
      break;
    case Str:
    case Chr:
      if (C == '\\' && K + 1 < In.size()) {
        Out[K] = ' ';
        if (Next != '\n')
          Out[K + 1] = ' ';
        ++K;
      } else if ((State == Str && C == '"') || (State == Chr && C == '\'')) {
        Out[K] = ' ';
        State = Code;
      } else if (C != '\n') {
        Out[K] = ' ';
      }
      break;
    }
  }
  return Out;
}

void lintFile(const std::string &RelPath, const std::string &Contents,
              std::vector<Diagnostic> &Diags) {
  std::string Code = stripCommentsAndLiterals(Contents);
  for (const char *Target : TargetNames) {
    for (size_t Pos = Code.find(Target); Pos != std::string::npos;
         Pos = Code.find(Target, Pos + 1)) {
      if (Pos > 0 && isIdentChar(Code[Pos - 1]))
        continue; // suffix of a longer identifier
      unsigned Line =
          1 + static_cast<unsigned>(
                  std::count(Code.begin(), Code.begin() + Pos, '\n'));
      Diagnostic D;
      D.Sev = Severity::Error;
      D.Check = "md-lint";
      D.Art = Artifact::Source;
      D.Symbol = RelPath + ":" + std::to_string(Line);
      D.Message = std::string("target identifier '") + Target +
                  "' outside the machine-dependent files";
      Diags.push_back(std::move(D));
    }
  }
}

} // namespace

std::vector<Diagnostic>
ldb::verify::mdIsolationLint(const std::string &SrcRoot) {
  std::vector<Diagnostic> Diags;
  std::error_code Ec;
  std::vector<std::string> Files;
  for (fs::recursive_directory_iterator It(SrcRoot, Ec), End;
       !Ec && It != End; It.increment(Ec)) {
    if (!It->is_regular_file(Ec))
      continue;
    std::string Ext = It->path().extension().string();
    if (Ext == ".h" || Ext == ".cpp")
      Files.push_back(It->path().string());
  }
  if (Ec) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Check = "md-lint";
    D.Art = Artifact::Source;
    D.Symbol = SrcRoot;
    D.Message = "cannot walk source tree: " + Ec.message();
    Diags.push_back(std::move(D));
    return Diags;
  }
  std::sort(Files.begin(), Files.end()); // deterministic output

  for (const std::string &Path : Files) {
    std::string Rel =
        fs::path(Path).lexically_relative(SrcRoot).generic_string();
    bool Allowed = false;
    for (const char *Registry : Registries)
      if (Rel == Registry ||
          (Rel.size() > std::string(Registry).size() &&
           Rel.compare(Rel.size() - std::string(Registry).size(),
                       std::string::npos, Registry) == 0))
        Allowed = true;
    if (Allowed)
      continue;

    std::string Contents;
    if (!readFile(Path, Contents)) {
      Diagnostic D;
      D.Sev = Severity::Error;
      D.Check = "md-lint";
      D.Art = Artifact::Source;
      D.Symbol = Rel;
      D.Message = "cannot read source file";
      Diags.push_back(std::move(D));
      continue;
    }
    // The tag appears in the file header comment; look only at the head
    // so a stray mention deep in a shared file cannot exempt it.
    if (Contents.substr(0, 512).find("MACHINE-DEPENDENT:") !=
        std::string::npos)
      continue;
    lintFile(Rel, Contents, Diags);
  }
  return Diags;
}
