//===- core/frame.cpp - the stack-frame machinery --------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-independent part of the stack-frame abstraction (paper Sec
/// 4.1): building the per-frame abstract-memory DAG of Fig 4, and the
/// shared frame-pointer walker used by z68k, zsparc, and zvax (mirroring
/// the paper: the VAX, SPARC, and 68020 share a single machine-independent
/// implementation; the MIPS cannot, because it has no frame pointer).
///
//===----------------------------------------------------------------------===//

#include "core/symtab.h"
#include "core/target.h"
#include "support/byteorder.h"

using namespace ldb;
using namespace ldb::core;
using namespace ldb::mem;

FrameWalker::~FrameWalker() = default;

FrameInfo ldb::core::buildFrameDag(
    Target &T, uint32_t Pc, uint32_t Vfp,
    const std::function<Location(char, unsigned)> &RegHome) {
  const target::TargetDesc &Desc = *T.arch().Desc;
  FrameInfo FI;
  FI.Pc = Pc;
  FI.Vfp = Vfp;

  auto Alias = std::make_shared<AliasMemory>(T.wire());
  for (unsigned R = 0; R < Desc.NumGpr; ++R)
    Alias->addAlias(SpGpr, R, RegHome(SpGpr, R));
  for (unsigned R = 0; R < Desc.NumFpr; ++R)
    Alias->addAlias(SpFpr, R, RegHome(SpFpr, R));
  // The extra registers (pc and virtual frame pointer) are aliases for
  // immediate locations, not for locations in target memory.
  Alias->addAlias(SpExtra, 0, Location::immediate(Pc));
  Alias->addAlias(SpExtra, 1, Location::immediate(Vfp));
  // Frame locals address relative to the vfp.
  Alias->addRebase(SpLocal, SpData, static_cast<int64_t>(Vfp));

  auto Reg = std::make_shared<RegisterMemory>(Alias, "rfx");
  auto Joined = std::make_shared<JoinedMemory>();
  Joined->join("rfxl", Reg);
  Joined->join("cd", T.wire());

  FI.Alias = Alias;
  FI.Mem = Joined;
  return FI;
}

Expected<FrameInfo> ldb::core::buildCallerFrameDag(Target &T,
                                                   const FrameInfo &Callee,
                                                   uint32_t CallerPc,
                                                   uint32_t CallerVfp,
                                                   uint32_t CalleeSaveMask) {
  // Slots the callee's prologue used, descending from vfp-12 in save-mask
  // bit order (matching the compiler).
  std::map<unsigned, Location> SavedAt;
  int Index = 0;
  for (unsigned R = 0; R < 32; ++R) {
    if (!(CalleeSaveMask & (1u << R)))
      continue;
    SavedAt[R] = Location::absolute(
        SpData, static_cast<int64_t>(Callee.Vfp) - 12 - 4 * Index);
    ++Index;
  }

  auto Home = [&](char Space, unsigned R) -> Location {
    if (Space == SpGpr) {
      auto It = SavedAt.find(R);
      if (It != SavedAt.end())
        return It->second;
    }
    // Reuse the alias from the called frame: when callee-saved registers
    // are not modified by the called procedure, the callee's mapping
    // still describes where the caller's value lives.
    Location Out;
    Callee.Alias->translate(Location::absolute(Space, R), Out);
    return Out;
  };
  return buildFrameDag(T, CallerPc, CallerVfp, Home);
}

//===----------------------------------------------------------------------===//
// The shared frame-pointer walker
//===----------------------------------------------------------------------===//

namespace {

/// Walker for the three targets with a frame pointer. All machine
/// dependence is data: the frame-pointer register number from the
/// TargetDesc and the register-save information in symbol-table entries.
class FpFrameWalker : public FrameWalker {
public:
  Expected<FrameInfo> topFrame(Target &T, uint32_t Ctx) const override {
    const target::TargetDesc &Desc = *T.arch().Desc;
    Expected<uint32_t> Pc = T.ctxPc();
    if (!Pc)
      return Pc.takeError();
    Expected<uint32_t> Vfp = T.ctxGpr(static_cast<unsigned>(Desc.FpReg));
    if (!Vfp)
      return Vfp.takeError();
    const nub::ContextLayout &L = T.layout();
    auto Home = [&](char Space, unsigned R) {
      if (Space == SpGpr)
        return Location::absolute(SpData, L.gprAddr(Ctx, R, Desc.NumGpr));
      return Location::absolute(SpData, L.fprAddr(Ctx, R));
    };
    return buildFrameDag(T, *Pc, *Vfp, Home);
  }

  Expected<FrameInfo> callerFrame(Target &T,
                                  const FrameInfo &Callee) const override {
    // The two link words sit side by side at the top of the frame: fetch
    // them as one block (raw target-order bytes) instead of two word round
    // trips, and unpack with the target's byte order.
    const target::TargetDesc &Desc = *T.arch().Desc;
    uint8_t Link[8];
    if (Error E = T.wire()->fetchBlock(
            Location::absolute(SpData, Callee.Vfp - 8), 8, Link))
      return E;
    uint64_t CallerVfp = unpackInt(Link, 4, Desc.Order);
    uint64_t Ra = unpackInt(Link + 4, 4, Desc.Order);
    if (Ra < 8)
      return Error::failure("no caller: return address is null");
    uint32_t CallerPc = static_cast<uint32_t>(Ra) - 4;
    Expected<ProcFrameData> CalleeData = T.frameData(Callee.Pc);
    uint32_t Mask = CalleeData ? CalleeData->SaveMask : 0;
    return buildCallerFrameDag(T, Callee, CallerPc,
                               static_cast<uint32_t>(CallerVfp), Mask);
  }

  Expected<ProcFrameData> frameData(Target &T, uint32_t Pc) const override {
    // From the symbol table: /framesize, /savemask, /saveoffset in the
    // procedure's entry (the paper's 68020 register-save masks).
    Expected<Target::ProcAddr> Proc = T.procForPc(Pc);
    if (!Proc)
      return Proc.takeError();
    Expected<ps::Object> Entry =
        symtab::procEntryByName(T.interp(), Proc->Name);
    if (!Entry)
      return Error::failure("no frame data for " + Proc->Name);
    ProcFrameData Data;
    Expected<ps::Object> Fs =
        symtab::field(T.interp(), *Entry, "framesize");
    if (!Fs)
      return Fs.takeError();
    Data.FrameSize = static_cast<uint32_t>(Fs->IntVal);
    Expected<ps::Object> Sm = symtab::field(T.interp(), *Entry, "savemask");
    if (!Sm)
      return Sm.takeError();
    Data.SaveMask = static_cast<uint32_t>(Sm->IntVal);
    Expected<ps::Object> So =
        symtab::field(T.interp(), *Entry, "saveoffset");
    if (!So)
      return So.takeError();
    Data.SaveAreaOffset = static_cast<int32_t>(So->IntVal);
    return Data;
  }
};

} // namespace

const FrameWalker &ldb::core::fpFrameWalker() {
  static const FpFrameWalker W;
  return W;
}
