//===- core/eval.cpp - printing and assignment ------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/eval.h"

#include <cstdlib>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

Expected<std::string> ldb::core::printEntry(Target &T,
                                            const FrameInfo &Frame,
                                            Object Entry) {
  Interp &I = T.interp();
  Expected<mem::Location> Where = symtab::whereOf(I, Entry);
  if (!Where)
    return Where.takeError();
  Expected<Object> Ty = symtab::field(I, Entry, "type");
  if (!Ty)
    return Ty.takeError();

  I.takeOutput(); // drop anything pending
  I.push(Object::makeMemory(Frame.Mem));
  I.push(Object::makeLocation(*Where));
  I.push(*Ty);
  if (Error E = I.run("print"))
    return E;
  return I.takeOutput();
}

namespace {

/// Resolves \p Name in the context of \p FrameNo: the stopping point is
/// the one whose no-op the frame's pc addresses.
Expected<std::pair<FrameInfo, Object>>
resolveInFrame(Target &T, const std::string &Name, unsigned FrameNo) {
  Expected<FrameInfo> Frame = T.frame(FrameNo);
  if (!Frame)
    return Frame.takeError();
  Expected<symtab::StopSite> Site =
      symtab::nearestStopForPc(T, Frame->Pc);
  if (!Site)
    return Site.takeError();
  Expected<Object> Entry = symtab::resolveName(T.interp(), *Site, Name);
  if (!Entry)
    return Entry.takeError();
  return std::make_pair(*Frame, *Entry);
}

} // namespace

Expected<std::string> ldb::core::printVariable(Target &T,
                                               const std::string &Name,
                                               unsigned FrameNo) {
  Target::Scope S(T);
  Expected<std::pair<FrameInfo, Object>> R =
      resolveInFrame(T, Name, FrameNo);
  if (!R)
    return R.takeError();
  return printEntry(T, R->first, R->second);
}

Error ldb::core::assignVariable(Target &T, const std::string &Name,
                                const std::string &ValueText,
                                unsigned FrameNo) {
  Target::Scope S(T);
  Expected<std::pair<FrameInfo, Object>> R =
      resolveInFrame(T, Name, FrameNo);
  if (!R)
    return R.takeError();
  Interp &I = T.interp();
  Expected<mem::Location> Where = symtab::whereOf(I, R->second);
  if (!Where)
    return Where.takeError();
  Expected<Object> Ty = symtab::field(I, R->second, "type");
  if (!Ty)
    return Ty.takeError();
  Expected<Object> Size = symtab::field(I, *Ty, "size");
  if (!Size)
    return Size.takeError();
  Expected<Object> Decl = symtab::field(I, *Ty, "decl");
  if (!Decl)
    return Decl.takeError();

  bool Floating = Decl->text().find("float") != std::string::npos ||
                  Decl->text().find("double") != std::string::npos;
  char *End = nullptr;
  if (Floating) {
    double V = std::strtod(ValueText.c_str(), &End);
    if (End == ValueText.c_str() || *End != '\0')
      return Error::failure("not a numeric constant: " + ValueText);
    return R->first.Mem->storeFloat(
        *Where, static_cast<unsigned>(Size->IntVal), V);
  }
  long long V = std::strtoll(ValueText.c_str(), &End, 0);
  if (End == ValueText.c_str() || *End != '\0')
    return Error::failure("not an integer constant: " + ValueText);
  return R->first.Mem->storeInt(*Where,
                                static_cast<unsigned>(Size->IntVal),
                                static_cast<uint64_t>(V));
}

Expected<std::string> ldb::core::printRegisters(Target &T) {
  Target::Scope S(T);
  Expected<FrameInfo> Frame = T.frame(0);
  if (!Frame)
    return Frame.takeError();
  Interp &I = T.interp();
  I.takeOutput();
  I.push(Object::makeMemory(Frame->Mem));
  if (Error E = I.run("PrintRegisters"))
    return E;
  return I.takeOutput();
}

Expected<std::string> ldb::core::describeStop(Target &T) {
  if (T.exited())
    return "process exited with status " +
           std::to_string(T.lastStop().ExitStatus);
  if (!T.stopped())
    return Error::failure("the process is not stopped");
  const nub::StopInfo &Stop = T.lastStop();
  Expected<uint32_t> Pc = T.ctxPc();
  if (!Pc)
    return Pc.takeError();
  std::string Out = nub::signalName(Stop.Signo);
  Target::Scope S(T);
  // The brief is all a stop description needs — on the LDBI fast path it
  // costs two binary searches and forces nothing.
  Expected<symtab::SiteBrief> Site = symtab::briefForPc(T, *Pc);
  if (Site) {
    Out += " at " + (Site->HasFile ? Site->File : std::string("?")) + ":" +
           std::to_string(Site->Line) + " in " + Site->ProcName;
  } else {
    Expected<Target::ProcAddr> Proc = T.procForPc(*Pc);
    Out += " in " + (Proc ? Proc->Name : std::string("?"));
  }
  return Out;
}

Expected<std::string> ldb::core::renderBacktrace(Target &T, unsigned Max) {
  Target::Scope S(T);
  Expected<std::vector<FrameInfo>> Frames = T.backtrace(Max);
  if (!Frames)
    return Frames.takeError();
  std::string Out;
  for (size_t K = 0; K < Frames->size(); ++K) {
    const FrameInfo &FI = (*Frames)[K];
    Out += "#" + std::to_string(K) + " ";
    Expected<symtab::SiteBrief> Site = symtab::briefForPc(T, FI.Pc);
    if (Site) {
      Out += Site->ProcName + " at " +
             (Site->HasFile ? Site->File : std::string("?")) + ":" +
             std::to_string(Site->Line);
    } else {
      Expected<Target::ProcAddr> Proc = T.procForPc(FI.Pc);
      Out += Proc ? Proc->Name : std::string("?");
    }
    Out += "\n";
  }
  return Out;
}
