//===- core/symblob.cpp - compiled binary debug info (LDBI v1) -------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/symblob.h"

#include "core/symtab.h"
#include "postscript/object.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::core::symblob;
using namespace ldb::ps;

SymblobStats &symblob::symblobStats() {
  thread_local SymblobStats S;
  return S;
}

uint64_t symblob::combineKeys(uint64_t H1, uint64_t H2) {
  // The image repository's key combine: same formula, one definition.
  return H1 ^ (H2 + 0x9e3779b97f4a7c15ull + (H1 << 6) + (H1 >> 2));
}

//===----------------------------------------------------------------------===//
// Layout constants
//===----------------------------------------------------------------------===//

namespace {

constexpr size_t HeaderSize = 76;
constexpr size_t SecDescOff = 24;
constexpr size_t TotalSizeOff = 72;

enum Section : unsigned {
  SecStrings = 0, ///< count = byte size
  SecProcs = 1,
  SecLoci = 2,
  SecFiles = 3,
  SecLines = 4,
  SecNames = 5,
};

constexpr size_t RecSize[6] = {1, 28, 16, 4, 12, 12};
constexpr const char *SecName[6] = {"string", "proc",  "locus",
                                    "file",   "line", "name"};

enum ProcFlag : uint32_t {
  ProcHasLoci = 1, ///< the blob carries this procedure's stop sites
  ProcExtern = 2,  ///< the externs dictionary lists the procedure
};

//===----------------------------------------------------------------------===//
// Little-endian primitives (byte-wise: a blob is readable wherever it is
// mapped, with no alignment or host-endianness assumptions)
//===----------------------------------------------------------------------===//

uint16_t get16(const uint8_t *D) {
  return static_cast<uint16_t>(D[0] | (D[1] << 8));
}

uint32_t get32(const uint8_t *D) {
  return static_cast<uint32_t>(D[0]) | (static_cast<uint32_t>(D[1]) << 8) |
         (static_cast<uint32_t>(D[2]) << 16) |
         (static_cast<uint32_t>(D[3]) << 24);
}

uint64_t get64(const uint8_t *D) {
  return static_cast<uint64_t>(get32(D)) |
         (static_cast<uint64_t>(get32(D + 4)) << 32);
}

void put16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void put32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void put64(std::vector<uint8_t> &Out, uint64_t V) {
  put32(Out, static_cast<uint32_t>(V));
  put32(Out, static_cast<uint32_t>(V >> 32));
}

/// The string table under construction: NUL-terminated texts, offset 0 is
/// the empty string, every distinct text stored once.
class StrTab {
public:
  StrTab() : Bytes(1, 0) {}

  uint32_t add(std::string_view S) {
    if (S.empty())
      return 0;
    auto [It, New] = Map.emplace(std::string(S), 0);
    if (!New)
      return It->second;
    uint32_t Off = static_cast<uint32_t>(Bytes.size());
    It->second = Off;
    Bytes.insert(Bytes.end(), S.begin(), S.end());
    Bytes.push_back(0);
    return Off;
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }

private:
  std::vector<uint8_t> Bytes;
  std::map<std::string, uint32_t> Map;
};

} // namespace

//===----------------------------------------------------------------------===//
// Structural validation
//===----------------------------------------------------------------------===//

std::vector<Issue> symblob::inspect(const uint8_t *D, size_t Size,
                                    uint64_t ExpectKey) {
  std::vector<Issue> Issues;
  auto issue = [&Issues](size_t At, std::string What) {
    Issues.push_back(Issue{At, std::move(What)});
  };

  if (Size < HeaderSize) {
    issue(Size, "blob ends inside the header (" + std::to_string(Size) +
                    " bytes; the header is " + std::to_string(HeaderSize) +
                    ")");
    return Issues;
  }
  if (std::memcmp(D, "LDBI", 4) != 0) {
    issue(0, "bad magic (expected \"LDBI\")");
    return Issues;
  }
  uint16_t Ver = get16(D + 4);
  if (Ver != Version) {
    issue(4, "format version " + std::to_string(Ver) +
                 " (this build reads " + std::to_string(Version) + ")");
    return Issues;
  }
  if (get64(D + 8) != ExpectKey)
    // Keep walking: a stale blob is still structurally decodable, and the
    // extra findings tell stale-but-sound apart from corrupt.
    issue(8, "image key does not match the loaded image (stale blob, or a"
             " damaged key)");
  uint32_t Total = get32(D + TotalSizeOff);
  if (Total != Size) {
    issue(TotalSizeOff, "header declares " + std::to_string(Total) +
                            " bytes but the blob holds " +
                            std::to_string(Size));
    return Issues;
  }

  uint64_t Off[6], Cnt[6];
  for (unsigned S = 0; S < 6; ++S) {
    size_t At = SecDescOff + 8 * S;
    Off[S] = get32(D + At);
    Cnt[S] = get32(D + At + 4);
    uint64_t Bytes = Cnt[S] * RecSize[S];
    if (Off[S] > Size || Bytes > Size - Off[S]) {
      issue(At, std::string(SecName[S]) + " section (offset " +
                    std::to_string(Off[S]) + ", " + std::to_string(Cnt[S]) +
                    " entries) reaches past the end of the blob");
      return Issues;
    }
  }

  // The string table: must exist, start with the empty string, and end
  // with a terminator so every in-range offset names a NUL-terminated
  // text.
  size_t StrOff = static_cast<size_t>(Off[SecStrings]);
  size_t StrSize = static_cast<size_t>(Cnt[SecStrings]);
  if (StrSize == 0) {
    issue(SecDescOff, "empty string table (offset 0 must hold \"\")");
    return Issues;
  }
  if (D[StrOff] != 0)
    issue(StrOff, "string table does not begin with the empty string");
  if (D[StrOff + StrSize - 1] != 0) {
    issue(StrOff + StrSize - 1,
          "string table does not end with a terminator");
    return Issues;
  }
  auto strAt = [&](uint32_t SOff) {
    return std::string_view(
        reinterpret_cast<const char *>(D + StrOff + SOff));
  };
  uint32_t ArchOff = get32(D + 20);
  if (ArchOff >= StrSize) {
    issue(20, "architecture name offset " + std::to_string(ArchOff) +
                  " out of range (string table is " +
                  std::to_string(StrSize) + " bytes)");
    return Issues;
  }

  uint64_t NProcs = Cnt[SecProcs], NLoci = Cnt[SecLoci];
  uint64_t NFiles = Cnt[SecFiles], NLines = Cnt[SecLines];
  uint64_t NNames = Cnt[SecNames];

  // Procedure records: string/file/loci references in range, flags known,
  // and the pc index sorted by address.
  uint32_t PrevAddr = 0;
  for (uint64_t K = 0; K < NProcs; ++K) {
    size_t At = static_cast<size_t>(Off[SecProcs] + K * RecSize[SecProcs]);
    const uint8_t *R = D + At;
    uint32_t Addr = get32(R), NameOff = get32(R + 8);
    uint32_t FileId = get32(R + 12);
    uint64_t LociStart = get32(R + 16), LociCount = get32(R + 20);
    uint32_t Flags = get32(R + 24);
    if (NameOff >= StrSize) {
      issue(At, "procedure " + std::to_string(K) + " name offset " +
                    std::to_string(NameOff) + " out of range");
      return Issues;
    }
    if (FileId != NoId && FileId >= NFiles) {
      issue(At, "procedure " + std::to_string(K) + " file id " +
                    std::to_string(FileId) + " out of range (" +
                    std::to_string(NFiles) + " files)");
      return Issues;
    }
    if (LociStart + LociCount > NLoci) {
      issue(At, "procedure " + std::to_string(K) + " loci slice [" +
                    std::to_string(LociStart) + ", " +
                    std::to_string(LociStart + LociCount) +
                    ") out of range (" + std::to_string(NLoci) + " loci)");
      return Issues;
    }
    if (Flags & ~(ProcHasLoci | ProcExtern)) {
      issue(At, "procedure " + std::to_string(K) + " has unknown flags");
      return Issues;
    }
    if (K > 0 && Addr < PrevAddr) {
      issue(At, "pc index unsorted: procedure " + std::to_string(K) +
                    " at address " + std::to_string(Addr) +
                    " follows address " + std::to_string(PrevAddr));
      return Issues;
    }
    PrevAddr = Addr;
    // The procedure's loci: each must name its owner, and the slice must
    // be sorted by address.
    uint32_t PrevLocusAddr = 0;
    for (uint64_t L = LociStart; L < LociStart + LociCount; ++L) {
      size_t LAt = static_cast<size_t>(Off[SecLoci] + L * RecSize[SecLoci]);
      const uint8_t *LR = D + LAt;
      uint32_t LAddr = get32(LR), LProc = get32(LR + 12);
      if (LProc != K) {
        issue(LAt, "locus " + std::to_string(L) +
                       " does not name its owning procedure " +
                       std::to_string(K));
        return Issues;
      }
      if (L > LociStart && LAddr < PrevLocusAddr) {
        issue(LAt, "locus index unsorted: locus " + std::to_string(L) +
                       " at address " + std::to_string(LAddr) +
                       " follows address " + std::to_string(PrevLocusAddr));
        return Issues;
      }
      PrevLocusAddr = LAddr;
    }
  }

  // Every locus must belong to some procedure's slice (checked above via
  // ownership); here only the reference range.
  for (uint64_t K = 0; K < NLoci; ++K) {
    size_t At = static_cast<size_t>(Off[SecLoci] + K * RecSize[SecLoci]);
    uint32_t LProc = get32(D + At + 12);
    if (LProc >= NProcs) {
      issue(At, "locus " + std::to_string(K) + " procedure id " +
                    std::to_string(LProc) + " out of range");
      return Issues;
    }
  }

  for (uint64_t K = 0; K < NFiles; ++K) {
    size_t At = static_cast<size_t>(Off[SecFiles] + K * RecSize[SecFiles]);
    uint32_t NameOff = get32(D + At);
    if (NameOff >= StrSize) {
      issue(At, "file " + std::to_string(K) + " name offset " +
                    std::to_string(NameOff) + " out of range");
      return Issues;
    }
  }

  // The (file, line) index: references in range, sorted by (file, line).
  uint64_t PrevKey = 0;
  for (uint64_t K = 0; K < NLines; ++K) {
    size_t At = static_cast<size_t>(Off[SecLines] + K * RecSize[SecLines]);
    const uint8_t *R = D + At;
    uint32_t FileId = get32(R), Line = get32(R + 4), LocusId = get32(R + 8);
    if (FileId >= NFiles) {
      issue(At, "line record " + std::to_string(K) + " file id " +
                    std::to_string(FileId) + " out of range");
      return Issues;
    }
    if (LocusId >= NLoci) {
      issue(At, "line record " + std::to_string(K) + " locus id " +
                    std::to_string(LocusId) + " out of range");
      return Issues;
    }
    uint64_t Key = (static_cast<uint64_t>(FileId) << 32) | Line;
    if (K > 0 && Key < PrevKey) {
      issue(At, "line index unsorted at record " + std::to_string(K));
      return Issues;
    }
    PrevKey = Key;
  }

  // The name index: references in range, sorted by symbol text.
  std::string_view PrevName;
  for (uint64_t K = 0; K < NNames; ++K) {
    size_t At = static_cast<size_t>(Off[SecNames] + K * RecSize[SecNames]);
    const uint8_t *R = D + At;
    uint32_t NameOff = get32(R), Kind = get32(R + 4), ProcId = get32(R + 8);
    if (NameOff >= StrSize) {
      issue(At, "symbol " + std::to_string(K) + " name offset " +
                    std::to_string(NameOff) + " out of range");
      return Issues;
    }
    if (Kind > 1) {
      issue(At, "symbol " + std::to_string(K) + " has unknown kind " +
                    std::to_string(Kind));
      return Issues;
    }
    if (ProcId != NoId && ProcId >= NProcs) {
      issue(At, "symbol " + std::to_string(K) + " procedure id " +
                    std::to_string(ProcId) + " out of range");
      return Issues;
    }
    std::string_view Name = strAt(NameOff);
    if (K > 0 && Name < PrevName) {
      issue(At, "name index unsorted at record " + std::to_string(K));
      return Issues;
    }
    PrevName = Name;
  }

  return Issues;
}

std::vector<Issue> symblob::inspect(const std::vector<uint8_t> &Bytes,
                                    uint64_t ExpectKey) {
  return inspect(Bytes.data(), Bytes.size(), ExpectKey);
}

//===----------------------------------------------------------------------===//
// Blob
//===----------------------------------------------------------------------===//

uint32_t Blob::rd32(size_t Off) const { return get32(Data + Off); }
uint64_t Blob::rd64(size_t Off) const { return get64(Data + Off); }

std::string_view Blob::str(uint32_t Off) const {
  return std::string_view(reinterpret_cast<const char *>(
      Data + rd32(SecDescOff + 8 * SecStrings) + Off));
}

namespace {

/// Builds the blob's error for attach(): the first defect names the
/// failure precisely.
Error firstIssueError(const std::vector<Issue> &Issues) {
  return Error::failure("ldbi blob: " + Issues.front().What +
                        " (at byte offset " +
                        std::to_string(Issues.front().Offset) + ")");
}

} // namespace

Expected<std::shared_ptr<const Blob>>
Blob::attach(std::vector<uint8_t> Bytes, uint64_t ExpectKey) {
  std::vector<Issue> Issues =
      inspect(Bytes.data(), Bytes.size(), ExpectKey);
  if (!Issues.empty())
    return firstIssueError(Issues);
  auto B = std::shared_ptr<Blob>(new Blob());
  B->Owned = std::move(Bytes);
  B->Data = B->Owned.data();
  B->Size = B->Owned.size();
  return std::shared_ptr<const Blob>(std::move(B));
}

Expected<std::shared_ptr<const Blob>>
Blob::attachFile(const std::string &Path, uint64_t ExpectKey) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Error::failure("cannot open " + Path);
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size <= 0) {
    ::close(Fd);
    return Error::failure("cannot stat " + Path);
  }
  size_t Len = static_cast<size_t>(St.st_size);
  void *Map = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    return Error::failure("cannot map " + Path);
  std::vector<Issue> Issues =
      inspect(static_cast<const uint8_t *>(Map), Len, ExpectKey);
  if (!Issues.empty()) {
    ::munmap(Map, Len);
    return firstIssueError(Issues);
  }
  auto B = std::shared_ptr<Blob>(new Blob());
  B->Map = Map;
  B->MapLen = Len;
  B->Data = static_cast<const uint8_t *>(Map);
  B->Size = Len;
  return std::shared_ptr<const Blob>(std::move(B));
}

Blob::~Blob() {
  if (Map)
    ::munmap(Map, MapLen);
}

uint64_t Blob::imageKey() const { return rd64(8); }
uint32_t Blob::rptAddr() const { return rd32(16); }
std::string_view Blob::archName() const { return str(rd32(20)); }

uint32_t Blob::procCount() const {
  return rd32(SecDescOff + 8 * SecProcs + 4);
}
uint32_t Blob::locusCount() const {
  return rd32(SecDescOff + 8 * SecLoci + 4);
}
uint32_t Blob::fileCount() const {
  return rd32(SecDescOff + 8 * SecFiles + 4);
}
uint32_t Blob::symbolCount() const {
  return rd32(SecDescOff + 8 * SecNames + 4);
}

Blob::ProcView Blob::proc(uint32_t Id) const {
  size_t At = rd32(SecDescOff + 8 * SecProcs) + Id * RecSize[SecProcs];
  ProcView V;
  V.Id = Id;
  V.Addr = rd32(At);
  V.End = rd32(At + 4);
  V.Name = str(rd32(At + 8));
  uint32_t FileId = rd32(At + 12);
  if (FileId != NoId) {
    V.File = fileName(FileId);
    V.HasFile = true;
  }
  V.LociStart = rd32(At + 16);
  V.LociCount = rd32(At + 20);
  uint32_t Flags = rd32(At + 24);
  V.HasSymbols = (Flags & ProcHasLoci) != 0;
  V.Extern = (Flags & ProcExtern) != 0;
  return V;
}

std::optional<Blob::ProcView> Blob::procContaining(uint32_t Pc) const {
  uint32_t N = procCount();
  size_t Base = rd32(SecDescOff + 8 * SecProcs);
  // Last procedure whose entry address is at or below the pc.
  uint32_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (get32(Data + Base + Mid * RecSize[SecProcs]) <= Pc)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo == 0)
    return std::nullopt;
  return proc(Lo - 1);
}

std::optional<Blob::ProcView> Blob::procAt(uint32_t Addr) const {
  std::optional<ProcView> P = procContaining(Addr);
  if (!P || P->Addr != Addr)
    return std::nullopt;
  return P;
}

std::optional<Blob::ProcView> Blob::procNamed(std::string_view Name) const {
  std::optional<SymbolView> S = symbolNamed(Name);
  if (!S || !S->IsProc || S->ProcId == NoId)
    return std::nullopt;
  return proc(S->ProcId);
}

Blob::LocusView Blob::locus(uint32_t Id) const {
  size_t At = rd32(SecDescOff + 8 * SecLoci) + Id * RecSize[SecLoci];
  LocusView V;
  V.Addr = rd32(At);
  V.Line = static_cast<int>(rd32(At + 4));
  V.Index = static_cast<int>(rd32(At + 8));
  V.ProcId = rd32(At + 12);
  return V;
}

std::string_view Blob::fileName(uint32_t Id) const {
  size_t At = rd32(SecDescOff + 8 * SecFiles) + Id * RecSize[SecFiles];
  return str(rd32(At));
}

std::optional<uint32_t> Blob::fileId(std::string_view Name) const {
  uint32_t N = fileCount();
  for (uint32_t K = 0; K < N; ++K)
    if (fileName(K) == Name)
      return K;
  return std::nullopt;
}

std::vector<uint32_t> Blob::lociForLine(uint32_t File, int Line) const {
  uint32_t N = rd32(SecDescOff + 8 * SecLines + 4);
  size_t Base = rd32(SecDescOff + 8 * SecLines);
  uint64_t Want =
      (static_cast<uint64_t>(File) << 32) | static_cast<uint32_t>(Line);
  auto keyAt = [&](uint32_t K) {
    const uint8_t *R = Data + Base + K * RecSize[SecLines];
    return (static_cast<uint64_t>(get32(R)) << 32) | get32(R + 4);
  };
  uint32_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (keyAt(Mid) < Want)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  std::vector<uint32_t> Out;
  for (uint32_t K = Lo; K < N && keyAt(K) == Want; ++K)
    Out.push_back(get32(Data + Base + K * RecSize[SecLines] + 8));
  return Out;
}

bool Blob::fileInLineIndex(uint32_t File) const {
  uint32_t N = rd32(SecDescOff + 8 * SecLines + 4);
  size_t Base = rd32(SecDescOff + 8 * SecLines);
  uint32_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (get32(Data + Base + Mid * RecSize[SecLines]) < File)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo < N && get32(Data + Base + Lo * RecSize[SecLines]) == File;
}

Blob::SymbolView Blob::symbol(uint32_t Id) const {
  size_t At = rd32(SecDescOff + 8 * SecNames) + Id * RecSize[SecNames];
  SymbolView V;
  V.Name = str(rd32(At));
  V.IsProc = rd32(At + 4) == 0;
  V.ProcId = rd32(At + 8);
  return V;
}

std::optional<Blob::SymbolView>
Blob::symbolNamed(std::string_view Name) const {
  uint32_t N = symbolCount();
  size_t Base = rd32(SecDescOff + 8 * SecNames);
  uint32_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (str(get32(Data + Base + Mid * RecSize[SecNames])) < Name)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo >= N)
    return std::nullopt;
  SymbolView V = symbol(Lo);
  if (V.Name != Name)
    return std::nullopt;
  return V;
}

//===----------------------------------------------------------------------===//
// The compiler
//===----------------------------------------------------------------------===//

namespace {

struct BProc {
  uint32_t Addr = 0;
  uint32_t End = 0;
  std::string Name;
  int FileId = -1; ///< display file (the entry's /sourcefile)
  uint32_t Flags = 0;
};

struct BLocus {
  uint32_t Addr = 0;
  int Line = 0;
  uint32_t Index = 0;
  uint32_t ProcId = 0;
};

struct BLine {
  uint32_t FileId = 0;
  int Line = 0;
  uint32_t LocusId = 0;
};

struct BName {
  std::string Name;
  uint32_t Kind = 0;
  uint32_t ProcId = NoId;
};

Error compileError(const std::string &What) {
  return Error::failure("symblob: " + What);
}

} // namespace

Expected<std::vector<uint8_t>> symblob::compile(Interp &I, const Params &P) {
  // 1. The loader table's proctable: procedure address ranges, exactly as
  // StopSiteIndex::build reads them.
  Object LT;
  if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict)
    return compileError("no loader table for this target");
  const Object *Pt = LT.DictVal->find("proctable");
  if (!Pt || Pt->Ty != Type::Array)
    return compileError("loader table has no proctable");
  uint32_t Rpt = 0;
  if (const Object *R = LT.DictVal->find("rpt"); R && R->Ty == Type::Int)
    Rpt = static_cast<uint32_t>(R->IntVal);

  std::vector<BProc> Procs;
  for (size_t K = 0; K + 1 < Pt->ArrVal->size(); K += 2) {
    const Object &Addr = (*Pt->ArrVal)[K];
    const Object &Name = (*Pt->ArrVal)[K + 1];
    if (Addr.Ty != Type::Int ||
        (Name.Ty != Type::String && Name.Ty != Type::Name))
      return compileError("malformed proctable entry");
    BProc B;
    B.Addr = static_cast<uint32_t>(Addr.IntVal);
    B.Name = Name.text();
    Procs.push_back(std::move(B));
  }
  std::sort(Procs.begin(), Procs.end(),
            [](const BProc &A, const BProc &B) { return A.Addr < B.Addr; });
  std::map<std::string, uint32_t> ByName;
  for (size_t K = 0; K < Procs.size(); ++K) {
    Procs[K].End = K + 1 < Procs.size() ? Procs[K + 1].Addr : 0;
    ByName[Procs[K].Name] = static_cast<uint32_t>(K);
  }

  std::vector<std::string> Files;
  std::map<std::string, uint32_t> FileIds;
  auto internFile = [&](const std::string &F) {
    auto [It, New] = FileIds.emplace(F, Files.size());
    if (New)
      Files.push_back(F);
    return It->second;
  };

  std::vector<std::vector<BLocus>> ProcLoci(Procs.size());
  /// The stop sites the entry's /loci array names, offset-relative to the
  /// procedure's entry address, sorted by address like loadFromEntry.
  auto fillLoci = [&](uint32_t Pid, const Object &Entry) -> Error {
    Expected<Object> Loci = symtab::field(I, Entry, "loci");
    if (!Loci)
      return compileError(Procs[Pid].Name + ": " + Loci.message());
    if (Loci->Ty != Type::Array)
      return compileError(Procs[Pid].Name + ": /loci is not an array");
    std::vector<BLocus> &Out = ProcLoci[Pid];
    for (size_t K = 0; K < Loci->ArrVal->size(); ++K) {
      const Object &L = (*Loci->ArrVal)[K];
      if (L.Ty != Type::Array || L.ArrVal->size() < 2 ||
          (*L.ArrVal)[0].Ty != Type::Int || (*L.ArrVal)[1].Ty != Type::Int)
        return compileError(Procs[Pid].Name + ": malformed stopping point " +
                            std::to_string(K));
      BLocus Loc;
      Loc.Line = static_cast<int>((*L.ArrVal)[0].IntVal);
      Loc.Addr =
          Procs[Pid].Addr + static_cast<uint32_t>((*L.ArrVal)[1].IntVal);
      Loc.Index = static_cast<uint32_t>(K);
      Loc.ProcId = Pid;
      Out.push_back(Loc);
    }
    std::sort(Out.begin(), Out.end(),
              [](const BLocus &A, const BLocus &B) { return A.Addr < B.Addr; });
    Procs[Pid].Flags |= ProcHasLoci;
    // The display file (describeStop, backtraces): the entry's
    // /sourcefile, which may differ from the sourcemap key in a
    // hand-written table.
    if (symtab::hasField(Entry, "sourcefile")) {
      Expected<Object> F = symtab::field(I, Entry, "sourcefile");
      if (F && (F->Ty == Type::String || F->Ty == Type::Name))
        Procs[Pid].FileId = static_cast<int>(internFile(F->text()));
    }
    return Error::success();
  };

  Object Top;
  bool HasSymtab = I.lookup("symtab", Top) && Top.Ty == Type::Dict;

  // 2. The sourcemap, unit by unit: covers static functions the externs
  // dictionary does not list, and records the per-unit entry order the
  // interpreter's lociForSource walk yields (the line index preserves it).
  struct UnitProcs {
    uint32_t FileId = 0;
    std::vector<uint32_t> ProcIds;
  };
  std::vector<UnitProcs> Units;
  if (HasSymtab && symtab::hasField(Top, "sourcemap")) {
    Expected<Object> SM = symtab::field(I, Top, "sourcemap");
    if (!SM)
      return SM.takeError();
    if (SM->Ty == Type::Dict) {
      for (const auto &[Atom, Val] : SM->DictVal->sortedItems()) {
        std::string FileName = AtomTable::global().text(Atom);
        Object Refs = Val;
        if (Error E = symtab::force(I, Refs))
          return compileError(FileName + ": " + E.message());
        if (Refs.Ty != Type::Array)
          return compileError(FileName + ": malformed sourcemap");
        UnitProcs U;
        U.FileId = internFile(FileName);
        for (const Object &EntryRef : *Refs.ArrVal) {
          Object Entry = EntryRef;
          if (Error E = symtab::force(I, Entry))
            return compileError(FileName + ": " + E.message());
          Expected<Object> NameV = symtab::field(I, Entry, "name");
          if (!NameV)
            return compileError(FileName + ": " + NameV.message());
          auto It = ByName.find(NameV->text());
          if (It == ByName.end())
            continue; // procedure not in this image: legitimately skipped
          uint32_t Pid = It->second;
          if (Procs[Pid].Flags & ProcHasLoci)
            continue;
          if (Error E = fillLoci(Pid, Entry))
            return E;
          U.ProcIds.push_back(Pid);
        }
        Units.push_back(std::move(U));
      }
    }
  }

  // 3. The externs dictionary: one name->symbol record per global, plus
  // loci for any procedure the sourcemap missed. Forcing everything here
  // is the cold-build cost the cache amortizes; the memoized literals
  // land in the shared dictionaries exactly like any other reader's.
  std::vector<BName> Names;
  if (HasSymtab && symtab::hasField(Top, "externs")) {
    Expected<Object> Externs = symtab::field(I, Top, "externs");
    if (!Externs)
      return Externs.takeError();
    if (Externs->Ty == Type::Dict) {
      for (const auto &[Atom, Val] : Externs->DictVal->sortedItems()) {
        std::string SymName = AtomTable::global().text(Atom);
        Object Entry = Val;
        if (Error E = symtab::force(I, Entry))
          return compileError(SymName + ": " + E.message());
        if (Entry.Ty != Type::Dict)
          return compileError(SymName + ": entry is not a dictionary");
        Externs->DictVal->set(Atom, Entry);
        bool IsProc = symtab::hasField(Entry, "loci");
        uint32_t Pid = NoId;
        if (auto It = ByName.find(SymName); It != ByName.end())
          Pid = It->second;
        if (IsProc && Pid != NoId) {
          Procs[Pid].Flags |= ProcExtern;
          if (!(Procs[Pid].Flags & ProcHasLoci))
            if (Error E = fillLoci(Pid, Entry))
              return E;
        }
        BName N;
        N.Name = SymName;
        N.Kind = IsProc ? 0 : 1;
        N.ProcId = IsProc ? Pid : NoId;
        Names.push_back(std::move(N));
      }
    }
  }

  // 4. Flatten: loci grouped per procedure in address order, the line
  // index in sourcemap order stable-sorted by (file, line), the name
  // index sorted by text.
  std::vector<BLocus> AllLoci;
  std::vector<uint32_t> LociStart(Procs.size(), 0);
  for (size_t K = 0; K < Procs.size(); ++K) {
    LociStart[K] = static_cast<uint32_t>(AllLoci.size());
    AllLoci.insert(AllLoci.end(), ProcLoci[K].begin(), ProcLoci[K].end());
  }
  std::vector<BLine> Lines;
  for (const UnitProcs &U : Units)
    for (uint32_t Pid : U.ProcIds)
      for (size_t K = 0; K < ProcLoci[Pid].size(); ++K) {
        BLine L;
        L.FileId = U.FileId;
        L.Line = ProcLoci[Pid][K].Line;
        L.LocusId = LociStart[Pid] + static_cast<uint32_t>(K);
        Lines.push_back(L);
      }
  std::stable_sort(Lines.begin(), Lines.end(),
                   [](const BLine &A, const BLine &B) {
                     return A.FileId != B.FileId ? A.FileId < B.FileId
                                                 : A.Line < B.Line;
                   });
  std::sort(Names.begin(), Names.end(),
            [](const BName &A, const BName &B) { return A.Name < B.Name; });

  // 5. Assemble. Strings are interned first so every record write has a
  // final offset.
  StrTab Str;
  uint32_t ArchOff = Str.add(P.ArchName);
  std::vector<uint32_t> ProcNameOff(Procs.size());
  for (size_t K = 0; K < Procs.size(); ++K)
    ProcNameOff[K] = Str.add(Procs[K].Name);
  std::vector<uint32_t> FileNameOff(Files.size());
  for (size_t K = 0; K < Files.size(); ++K)
    FileNameOff[K] = Str.add(Files[K]);
  std::vector<uint32_t> SymNameOff(Names.size());
  for (size_t K = 0; K < Names.size(); ++K)
    SymNameOff[K] = Str.add(Names[K].Name);

  uint64_t Off[6], Cnt[6];
  Cnt[SecStrings] = Str.bytes().size();
  Cnt[SecProcs] = Procs.size();
  Cnt[SecLoci] = AllLoci.size();
  Cnt[SecFiles] = Files.size();
  Cnt[SecLines] = Lines.size();
  Cnt[SecNames] = Names.size();
  Off[0] = HeaderSize;
  for (unsigned S = 1; S < 6; ++S)
    Off[S] = Off[S - 1] + Cnt[S - 1] * RecSize[S - 1];
  uint64_t Total = Off[5] + Cnt[5] * RecSize[5];
  if (Total > 0xFFFFFFFFull)
    return compileError("image too large for the 32-bit blob format");

  std::vector<uint8_t> Out;
  Out.reserve(static_cast<size_t>(Total));
  Out.insert(Out.end(), {'L', 'D', 'B', 'I'});
  put16(Out, Version);
  put16(Out, 0); // flags
  put64(Out, P.ImageKey);
  put32(Out, Rpt);
  put32(Out, ArchOff);
  for (unsigned S = 0; S < 6; ++S) {
    put32(Out, static_cast<uint32_t>(Off[S]));
    put32(Out, static_cast<uint32_t>(Cnt[S]));
  }
  put32(Out, static_cast<uint32_t>(Total));

  Out.insert(Out.end(), Str.bytes().begin(), Str.bytes().end());
  for (size_t K = 0; K < Procs.size(); ++K) {
    const BProc &B = Procs[K];
    put32(Out, B.Addr);
    put32(Out, B.End);
    put32(Out, ProcNameOff[K]);
    put32(Out, B.FileId < 0 ? NoId : static_cast<uint32_t>(B.FileId));
    put32(Out, LociStart[K]);
    put32(Out, static_cast<uint32_t>(ProcLoci[K].size()));
    put32(Out, B.Flags);
  }
  for (const BLocus &L : AllLoci) {
    put32(Out, L.Addr);
    put32(Out, static_cast<uint32_t>(L.Line));
    put32(Out, L.Index);
    put32(Out, L.ProcId);
  }
  for (uint32_t NameOff : FileNameOff)
    put32(Out, NameOff);
  for (const BLine &L : Lines) {
    put32(Out, L.FileId);
    put32(Out, static_cast<uint32_t>(L.Line));
    put32(Out, L.LocusId);
  }
  for (size_t K = 0; K < Names.size(); ++K) {
    put32(Out, SymNameOff[K]);
    put32(Out, Names[K].Kind);
    put32(Out, Names[K].ProcId);
  }

  ++symblobStats().Builds;
  return Out;
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

Cache &Cache::global() {
  static Cache C;
  return C;
}

Cache::Cache() {
  if (std::getenv("LDB_NO_SYMBLOB"))
    Enabled = false;
  if (const char *D = std::getenv("LDB_SYMBLOB_DIR"))
    Dir = D;
}

namespace {

std::string blobPath(const std::string &Dir, uint64_t Key) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.ldbi",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Name;
}

} // namespace

std::shared_ptr<const Blob> Cache::acquire(uint64_t Key) {
  if (!Enabled)
    return nullptr;
  SymblobStats &S = symblobStats();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Key);
    if (It != Entries.end()) {
      if (!It->second.Attached) {
        // First use: attaching doubles as full validation. A defective
        // blob is dropped — the interpreter path is always behind it.
        Expected<std::shared_ptr<const Blob>> B =
            Blob::attach(It->second.Bytes, Key);
        if (!B) {
          ++S.Fallbacks;
          Entries.erase(It);
          return nullptr;
        }
        It->second.Attached = *B;
      }
      ++S.Hits;
      return It->second.Attached;
    }
  }
  if (!Dir.empty()) {
    std::string Path = blobPath(Dir, Key);
    if (::access(Path.c_str(), R_OK) == 0) {
      Expected<std::shared_ptr<const Blob>> B =
          Blob::attachFile(Path, Key);
      if (B) {
        std::lock_guard<std::mutex> Lock(Mu);
        Entry &E = Entries[Key];
        E.Attached = *B; // bytes stay on disk; the mapping serves reads
        ++S.Hits;
        return E.Attached;
      }
      // A damaged cache file: drop it like a corrupt in-memory blob.
      ++S.Fallbacks;
      std::remove(Path.c_str());
      return nullptr;
    }
  }
  ++S.Misses;
  return nullptr;
}

void Cache::store(uint64_t Key, std::vector<uint8_t> Bytes) {
  if (!Dir.empty()) {
    // Best-effort persistence: a failed write only costs a rebuild.
    std::string Path = blobPath(Dir, Key);
    if (std::FILE *F = std::fopen(Path.c_str(), "wb")) {
      std::fwrite(Bytes.data(), 1, Bytes.size(), F);
      std::fclose(F);
    }
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Entries[Key] = Entry{std::move(Bytes), nullptr};
}

std::optional<std::vector<uint8_t>>
Cache::snapshotBytes(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return std::nullopt;
  if (!It->second.Bytes.empty())
    return It->second.Bytes;
  if (It->second.Attached) {
    const Blob &B = *It->second.Attached;
    return std::vector<uint8_t>(B.data(), B.data() + B.byteSize());
  }
  return std::nullopt;
}

void Cache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.clear();
}

size_t Cache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
