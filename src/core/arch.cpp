//===- core/arch.cpp - the architecture registry ---------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/arch.h"

namespace ldb::core {
const Architecture &zmipsArchitecture();
const Architecture &z68kArchitecture();
const Architecture &zsparcArchitecture();
const Architecture &zvaxArchitecture();
} // namespace ldb::core

const ldb::core::Architecture *
ldb::core::architectureByName(const std::string &Name) {
  if (Name == "zmips")
    return &zmipsArchitecture();
  if (Name == "z68k")
    return &z68kArchitecture();
  if (Name == "zsparc")
    return &zsparcArchitecture();
  if (Name == "zvax")
    return &zvaxArchitecture();
  return nullptr;
}
