//===- core/fleet.h - N sessions on one event loop --------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet event loop: N debugging sessions multiplexed over one thread.
/// Each session's wire is one ChannelEnd registered in a nub::LinkSet;
/// whichever link holds the globally earliest in-flight message is pumped
/// next, so sessions on a shared virtual clock interleave in arrival
/// order — the socket event loop the paper's nub runs, lifted to the
/// debugger side and N targets. run() drives the sessions round-robin at
/// command granularity (one debugger command per turn is the natural
/// yield point: every command quiesces its own wire before returning).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_FLEET_H
#define LDB_CORE_FLEET_H

#include "core/session.h"
#include "nub/channel.h"

#include <functional>

namespace ldb::core {

class SessionManager {
public:
  /// Registers a connected session: its channel joins the pump set and
  /// its readable callback counts wakeups (the debugger-side end has no
  /// other listener). Borrowed, not owned — remove before the session
  /// dies.
  void add(DebugSession &S);
  void remove(DebugSession &S);
  size_t sessionCount() const { return Sessions.size(); }

  /// Delivers the earliest in-flight message across every session's link;
  /// false when all wires are quiet.
  bool pumpNext() { return Links.pumpNext(); }

  /// Drains every wire; returns how many messages were delivered.
  size_t pumpAll() { return Links.pumpAll(); }

  /// Round-robin cooperative schedule: calls Turn(session, round) for
  /// each live session, pumping the wires between turns, until every
  /// session's Turn has returned false. One Turn should issue one
  /// command-sized unit of work.
  void run(const std::function<bool(DebugSession &, size_t)> &Turn);

  /// Transport counters summed across the managed sessions.
  mem::TransportStats rollup() const;

  /// Turns taken across run() calls; wire wakeups observed.
  uint64_t turns() const { return Turns; }
  uint64_t wakeups() const { return Wakeups; }

private:
  std::vector<DebugSession *> Sessions;
  nub::LinkSet Links;
  uint64_t Turns = 0;
  uint64_t Wakeups = 0;
};

} // namespace ldb::core

#endif // LDB_CORE_FLEET_H
