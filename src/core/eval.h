//===- core/eval.h - printing and assignment --------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value printing and simple assignment. Printing is entirely delegated
/// to the PostScript /printer procedures in type dictionaries (paper Sec
/// 2): ldb pushes the frame's abstract memory, the symbol's location, and
/// the type dictionary, then interprets "print". Assignment of constants
/// goes straight through the abstract memory; full expression evaluation
/// and assignment run through the expression server (src/exprserver).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_EVAL_H
#define LDB_CORE_EVAL_H

#include "core/symtab.h"
#include "core/target.h"

namespace ldb::core {

/// Prints the value of the (forced) symbol-table entry \p Entry as seen
/// from \p Frame. Must run inside a Target::Scope.
Expected<std::string> printEntry(Target &T, const FrameInfo &Frame,
                                 ps::Object Entry);

/// Resolves \p Name at the current stop point of frame \p FrameNo and
/// prints its value. Manages its own scope.
Expected<std::string> printVariable(Target &T, const std::string &Name,
                                    unsigned FrameNo = 0);

/// Assigns a numeric constant (e.g. "42", "-1", "2.5") to the named
/// scalar variable.
Error assignVariable(Target &T, const std::string &Name,
                     const std::string &ValueText, unsigned FrameNo = 0);

/// Renders the target's registers using the machine-dependent
/// /RegisterNames PostScript.
Expected<std::string> printRegisters(Target &T);

/// One line describing where and why the target is stopped, e.g.
/// "breakpoint trap at fib.c:11 in fib".
Expected<std::string> describeStop(Target &T);

/// A rendered backtrace, one "#N proc at file:line" line per frame.
Expected<std::string> renderBacktrace(Target &T, unsigned Max = 16);

} // namespace ldb::core

#endif // LDB_CORE_EVAL_H
