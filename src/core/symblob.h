//===- core/symblob.h - compiled binary debug info (LDBI v1) ----*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LDBI: a compiled, position-independent binary debug-info blob. The
/// paper keeps symbol tables as PostScript programs for retargetability,
/// and fastload (postscript/fastload.h) made replaying them fast — but a
/// warm load still replays the whole program through the interpreter, and
/// every pc/line/name query ultimately walks interpreted dictionaries.
/// Following raddebugger's RDI design and the "simplify the debug-info
/// pipeline" lesson of Hanson's MSR-TR-99-4 revisit, compile() lowers a
/// fully-forced symbol table + loader table into one flat blob with three
/// sorted indexes — pc->proc/locus, (file,line)->stop-site, and
/// name->symbol — each answering in O(log n) with zero interpreter
/// involvement. The PostScript path stays the source of truth and the
/// reference oracle: the blob is a read-path cache over it, invalidated by
/// content hash, and ldb-verify's blob family cross-checks every query.
///
/// Blob layout (all fields little-endian; offsets are from byte 0, so a
/// blob is valid wherever it is mapped):
///
///   off  size  field
///     0     4  magic "LDBI"
///     4     2  format version (1)
///     6     2  flags (0)
///     8     8  image key: the combined content hash of
///              (arch "\n" symtab, loader table), see combineKeys()
///    16     4  runtime procedure table address (loader /rpt)
///    20     4  architecture name (string-table offset)
///    24    48  six section descriptors, each {u32 offset, u32 count}:
///              strings (count = byte size), procs, loci, files, lines,
///              names
///    72     4  total blob size in bytes
///    76     -  section payloads
///
/// Records (sizes in bytes):
///   ProcRec 28: addr, end, nameOff, fileId (NoId = none), lociStart,
///               lociCount, flags (bit0 = has loci, bit1 = listed in the
///               externs dictionary) — sorted by addr
///   LocusRec 16: addr, line, lociIndex (position in the entry's /loci
///               array), procId — grouped per procedure, each group
///               sorted by addr
///   FileRec  4: nameOff
///   LineRec 12: fileId, line, locusId — sorted by (fileId, line), ties
///               in the order the interpreter's sourcemap walk yields
///   NameRec 12: nameOff, kind (0 = procedure, 1 = data), procId
///               (NoId for data) — sorted by name text
///
/// The string table is NUL-terminated texts; offset 0 is the empty
/// string. Validation is O(n) and complete at attach time — magic,
/// version, key, section bounds, record sortedness, every string offset
/// and cross-record index — so queries can trust the data without
/// per-access checks, and a truncated or bit-flipped blob yields a
/// structured diagnostic, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_SYMBLOB_H
#define LDB_CORE_SYMBLOB_H

#include "support/error.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ldb::ps {
class Interp;
} // namespace ldb::ps

namespace ldb::core::symblob {

/// Format version; bump on any layout change so old blobs miss.
constexpr uint16_t Version = 1;

/// The reserved "no id / no file" value in record fields.
constexpr uint32_t NoId = 0xFFFFFFFFu;

/// Counters for the compiled-debug-info path, surfaced by the CLI `stats`
/// command next to the fastload counters. Thread-local like InterpStats:
/// an Interp never crosses threads, so each thread observes its own work.
struct SymblobStats {
  uint64_t Hits = 0;        ///< cache lookups that returned a valid blob
  uint64_t Misses = 0;      ///< cache lookups that found nothing
  uint64_t Builds = 0;      ///< blobs compiled from the interpreter
  uint64_t Fallbacks = 0;   ///< invalid blobs dropped to the interpreter
  uint64_t IndexProbes = 0; ///< index queries answered from a blob
  void reset() { *this = SymblobStats(); }
};
SymblobStats &symblobStats();

/// Combines the two per-text content hashes into the image key — the same
/// combine the image repository uses, so a blob keys exactly one
/// (architecture, symtab, loader table) triple.
uint64_t combineKeys(uint64_t H1, uint64_t H2);

/// One structural defect found while validating a blob, with the byte
/// offset at which it was noticed (ldb-verify's blob family turns these
/// into diagnostics).
struct Issue {
  size_t Offset = 0;
  std::string What;
};

/// Structurally validates \p Size bytes at \p Data against \p ExpectKey:
/// header, section bounds, sortedness of all three indexes, and every
/// string offset and cross-record id. An empty result means the blob is
/// sound; each defect is named precisely (truncation, bad magic, stale
/// key, unsorted index, out-of-range offsets, ...).
std::vector<Issue> inspect(const uint8_t *Data, size_t Size,
                           uint64_t ExpectKey);
std::vector<Issue> inspect(const std::vector<uint8_t> &Bytes,
                           uint64_t ExpectKey);

/// An attached (validated) blob. Queries are read-only, lock-free, and
/// O(log n); string_views point into the blob and live as long as it
/// does. Obtain one from attach()/attachFile() or Cache::acquire().
class Blob {
public:
  struct ProcView {
    uint32_t Id = NoId;
    uint32_t Addr = 0;
    uint32_t End = 0;
    std::string_view Name;
    bool HasSymbols = false; ///< the blob carries loci for this procedure
    bool Extern = false;     ///< the externs dictionary lists it
    std::string_view File;   ///< empty when HasFile is false
    bool HasFile = false;
    uint32_t LociStart = 0;
    uint32_t LociCount = 0;
  };

  struct LocusView {
    uint32_t Addr = 0;
    int Line = 0;
    int Index = -1; ///< position in the entry's /loci array
    uint32_t ProcId = NoId;
  };

  struct SymbolView {
    std::string_view Name;
    bool IsProc = false;
    uint32_t ProcId = NoId;
  };

  /// Validates and adopts \p Bytes. A defective blob is an error carrying
  /// the first Issue's text.
  static Expected<std::shared_ptr<const Blob>>
  attach(std::vector<uint8_t> Bytes, uint64_t ExpectKey);

  /// Maps \p Path (mmap, read-only) and validates in place; the mapping
  /// is released with the blob. Million-symbol images load at the cost of
  /// the map plus one validation pass — no interpreter replay.
  static Expected<std::shared_ptr<const Blob>>
  attachFile(const std::string &Path, uint64_t ExpectKey);

  ~Blob();
  Blob(const Blob &) = delete;
  Blob &operator=(const Blob &) = delete;

  uint64_t imageKey() const;
  uint32_t rptAddr() const;
  std::string_view archName() const;
  size_t byteSize() const { return Size; }
  const uint8_t *data() const { return Data; }

  uint32_t procCount() const;
  ProcView proc(uint32_t Id) const;
  /// The procedure whose [Addr, End) range contains \p Pc.
  std::optional<ProcView> procContaining(uint32_t Pc) const;
  /// The procedure whose entry address is exactly \p Addr.
  std::optional<ProcView> procAt(uint32_t Addr) const;
  std::optional<ProcView> procNamed(std::string_view Name) const;

  uint32_t locusCount() const;
  LocusView locus(uint32_t Id) const;

  uint32_t fileCount() const;
  std::string_view fileName(uint32_t Id) const;
  std::optional<uint32_t> fileId(std::string_view Name) const;

  /// Locus ids for every stop site of (\p File, \p Line), in the order
  /// the interpreter's sourcemap walk would yield them.
  std::vector<uint32_t> lociForLine(uint32_t File, int Line) const;

  /// True when \p File owns at least one line record — i.e. it is a
  /// compilation unit the sourcemap names, not merely a display file.
  bool fileInLineIndex(uint32_t File) const;

  uint32_t symbolCount() const;
  SymbolView symbol(uint32_t Id) const;
  std::optional<SymbolView> symbolNamed(std::string_view Name) const;

private:
  Blob() = default;

  uint32_t rd32(size_t Off) const;
  uint64_t rd64(size_t Off) const;
  std::string_view str(uint32_t Off) const;

  const uint8_t *Data = nullptr;
  size_t Size = 0;
  std::vector<uint8_t> Owned; ///< attach() storage
  void *Map = nullptr;        ///< attachFile() storage
  size_t MapLen = 0;
};

/// Compiles the loaded image the interpreter's dictionary stack names
/// (/symtab and /loadertable) into an LDBI blob. Forces every symbol
/// table entry — the cold-build cost the cache amortizes — but never
/// forces /where, so no target memory is read and the blob is a constant
/// of the image. Must run inside a scope whose dictionaries name the
/// image being compiled (Target::Scope, or the repository's build scope).
struct Params {
  uint64_t ImageKey = 0;
  std::string ArchName;
};
Expected<std::vector<uint8_t>> compile(ps::Interp &I, const Params &P);

/// The in-process blob cache, keyed by image key and persisted to disk as
/// <hexkey>.ldbi when a directory is configured (LDB_SYMBLOB_DIR, or
/// setDirectory). Disable with LDB_NO_SYMBLOB=1 or --no-symblob to revert
/// every consumer to the interpreter path. Shared by every thread in the
/// process, so the map is mutex-guarded; attached blobs are immutable and
/// queried outside the lock.
class Cache {
public:
  static Cache &global();

  bool enabled() const { return Enabled; }
  void setEnabled(bool E) { Enabled = E; }

  /// The validated blob for \p Key: from memory, else from the cache
  /// directory. Counts a hit or miss; an invalid cached blob is dropped
  /// (counted as a fallback) and null is returned — never an error, the
  /// interpreter path is always behind it.
  std::shared_ptr<const Blob> acquire(uint64_t Key);

  /// Caches \p Bytes for \p Key (unvalidated — the next acquire
  /// validates, so tests can plant corrupt blobs) and persists them when
  /// a cache directory is configured.
  void store(uint64_t Key, std::vector<uint8_t> Bytes);

  /// A copy of the cached bytes for \p Key, or nullopt. Safe to call
  /// while other threads mutate the cache.
  std::optional<std::vector<uint8_t>> snapshotBytes(uint64_t Key) const;

  void clear();
  size_t size() const;

  const std::string &directory() const { return Dir; }
  void setDirectory(std::string D) { Dir = std::move(D); }

private:
  Cache();

  struct Entry {
    std::vector<uint8_t> Bytes;
    std::shared_ptr<const Blob> Attached; ///< set once validated
  };

  bool Enabled = true;
  std::string Dir;
  mutable std::mutex Mu;
  std::unordered_map<uint64_t, Entry> Entries;
};

} // namespace ldb::core::symblob

#endif // LDB_CORE_SYMBLOB_H
