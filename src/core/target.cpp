//===- core/target.cpp - the target object ---------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/target.h"

#include "core/symblob.h"
#include "core/symtab.h"
#include "postscript/fastload.h"
#include "support/byteorder.h"

#include <algorithm>
#include <array>
#include <cstdlib>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

//===----------------------------------------------------------------------===//
// Scope
//===----------------------------------------------------------------------===//

Target::Scope::Scope(Target &T) : T(T) {
  SavedDepth = T.I.dictStack().size();
  SavedHooks = T.I.Hooks;
  // Architecture dictionary below, target dictionary on top: symbol
  // tables and loader tables read inside the scope define their names in
  // the target dictionary, and machine-dependent names resolve through
  // the architecture dictionary (the rebinding of paper Sec 5). A shared
  // image slots between them: its symtab/loadertable resolve for every
  // session, while fresh defs still land in the private target dict.
  T.I.dictStack().push_back(T.ArchDict);
  if (T.Image)
    T.I.dictStack().push_back(T.Image->imageDict());
  T.I.dictStack().push_back(T.TargetDict);
  T.I.Hooks = &T;
}

Target::Scope::~Scope() {
  T.I.dictStack().resize(SavedDepth);
  T.I.Hooks = SavedHooks;
}

//===----------------------------------------------------------------------===//
// Connection
//===----------------------------------------------------------------------===//

Error Target::connect(nub::ProcessHost &Host, const std::string &ProcName,
                      const nub::SimParams *Sim,
                      std::shared_ptr<nub::VirtualClock> Clock) {
  Expected<std::unique_ptr<nub::NubClient>> C =
      Host.connect(ProcName, &Stats, Sim, std::move(Clock));
  if (!C)
    return C.takeError();
  Client = C.take();

  // The nub's welcome names the architecture; that name selects all of
  // ldb's machine-dependent code and data.
  std::string ArchName = Client->archName();
  Arch = architectureByName(ArchName);
  if (!Arch) {
    Client = nullptr;
    return Error::failure("unknown target architecture: " + ArchName);
  }
  Layout = nub::nubMdFor(*Arch->Desc).layout(*Arch->Desc);
  // The block cache sits between the debugger and the wire (Fig 4 grows a
  // node): every consumer reads through it, and it is flushed whenever
  // the target runs. Code and data name the same nub memory, so the cache
  // is told they alias.
  Cache = std::make_shared<mem::CachedMemory>(
      std::make_shared<mem::WireMemory>(*Client), Arch->Desc->Order);
  Cache->setSpacesAlias(true);
  // Text never changes while the target runs (no self-modifying code in
  // this system, and the debugger's break words patch write-through), so
  // code lines survive the resume flush. LDB_CACHE_CODE=0 turns the
  // retention off.
  const char *KeepCode = std::getenv("LDB_CACHE_CODE");
  if (!KeepCode || std::string(KeepCode) != "0")
    Cache->setImmutableSpaces(std::string(1, mem::SpCode));
  // LDB_NO_NUBCOND=1 keeps every condition, ignore count, and tracepoint
  // host-evaluated: the kill switch, and the oracle the determinism suite
  // compares nub-side evaluation against.
  const char *NoNubCond = std::getenv("LDB_NO_NUBCOND");
  NubCondEnabled = !(NoNubCond && std::string(NoNubCond) == "1");
  Cache->setStats(&Stats);
  Wire = Cache;
  Stop = Client->pendingStop();
  seedStopWindow();

  TargetDict = Object::makeDict(std::make_shared<DictImpl>());
  ArchDict = Object::makeDict(std::make_shared<DictImpl>());

  // Populate the architecture dictionary from its PostScript fragment.
  // Every target of an architecture runs the same fragment, so this is a
  // fastload hit from the second connect on.
  I.dictStack().push_back(ArchDict);
  Error E = ps::fastload::Cache::global().run(I, Arch->MdPostScript);
  I.dictStack().pop_back();
  if (E)
    return E;

  // procnameat: addr -> procedure name, used by the FUNCPTR printer.
  Target *Self = this;
  ArchDict.DictVal->set("procnameat", Object::makeOperator(
      "procnameat", [Self](Interp &In) {
        int64_t Addr;
        if (PsStatus S = In.popInt(Addr); S != PsStatus::Ok)
          return S;
        Expected<ProcAddr> P =
            Self->procForPc(static_cast<uint32_t>(Addr));
        if (!P)
          return In.fail(P.message());
        In.push(Object::makeString(P->Name));
        return PsStatus::Ok;
      }));
  return Error::success();
}

void Target::crashConnection() {
  if (Client)
    Client->crash();
}

Error Target::loadSymbols(const std::string &PsText) {
  Scope S(*this);
  StopIndex.reset(); // new symbols: cached loci may be stale
  PrivateSymHash =
      ps::fastload::contentHash(Arch->Desc->Name + "\n" + PsText);
  // Symbol tables are where fastload pays: a re-connect or a second
  // target loading the same unit replays cached tokens past the scanner.
  return ps::fastload::Cache::global().run(I, PsText);
}

Error Target::loadLoaderTable(const std::string &PsText) {
  Scope S(*this);
  StopIndex.reset(); // new proctable: procedure ranges may have moved
  PrivateLtHash = ps::fastload::contentHash(PsText);
  if (Error E = ps::fastload::Cache::global().run(I, PsText))
    return E;
  return verifyLoadedImage(I, Arch->Desc->Name, RptAddr);
}

Error Target::attachImage(std::shared_ptr<SharedImage> Img) {
  if (!Arch)
    return Error::failure("attachImage before connect");
  if (Img->archName() != Arch->Desc->Name)
    return Error::failure("image is for " + Img->archName() +
                          " but the target runs " + Arch->Desc->Name);
  Image = std::move(Img);
  RptAddr = Image->rptAddr();
  StopIndex.reset();
  FrameDataCache.clear();
  return Error::success();
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

Error Target::requireStopped() const {
  if (!Client)
    return Error::failure("not connected to a process");
  if (!stopped())
    return Error::failure("the process is not stopped");
  return Error::success();
}

Error Target::resume(bool AllowAutoResume) {
  if (Error E = requireStopped())
    return E;
  // While recording, remember this stop's counters before leaving it: a
  // later seek below this instant rewinds to exactly what the user saw
  // here (hit bumps made while stopped — host condition evaluation, an
  // `ignore` command — ride with the stop they belong to).
  logTimelineEvent();
  // Ship dirty condition/tracepoint records before an auto-resume
  // continue; with at least one record live in the nub the continue runs
  // in auto-resume mode and false, ignored, and traced hits settle in the
  // target without a wire exchange. Any ship failure falls back to
  // report-all — host-side evaluation is always correct — with the
  // records left dirty for the next auto-resume continue to retry.
  uint8_t Mode = nub::ContinueReportAll;
  if (AllowAutoResume && NubCondEnabled) {
    bool AnyManaged = false;
    if (!syncNubRecords(AnyManaged) && AnyManaged)
      Mode = nub::ContinueAutoResume;
  }
  // Resuming from a planted breakpoint skips the no-op: advance the saved
  // pc in the context (paper Sec 3). The store is posted, not awaited: it
  // rides the request window with the Continue (the link delivers in
  // order, so the nub applies it first), and a failure surfaces from
  // doContinue. A seek-restored stop (SigPause) gets the same treatment:
  // a checkpoint taken at a trap instant restores its pc onto the break
  // word, and replaying forward must skip it exactly as the original
  // resume did.
  if (Stop->Signo == nub::SigTrap || Stop->Signo == nub::SigPause) {
    Expected<uint32_t> Pc = ctxPc();
    if (!Pc)
      return Pc.takeError();
    if (breakpointAt(*Pc)) {
      uint8_t Buf[4];
      packInt(*Pc + Arch->Bp.PcAdvance, Buf, 4, Arch->Desc->Order);
      Wire->postStoreBlock(mem::Location::absolute(
                               mem::SpData, Stop->ContextAddr + Layout.PcOff),
                           4, Buf, nullptr);
    }
  }
  nub::StopInfo Next;
  Error E = Client->doContinue(Next, Mode);
  // The target ran (or at least may have): every cached line is now
  // suspect, success or not.
  if (Cache)
    Cache->invalidate();
  if (E)
    return E;
  Stop = Next;
  applyCounterSync();
  seedStopWindow();
  return Error::success();
}

void Target::seedStopWindow() {
  // The nub pushed the stop context window with the Stopped message; the
  // pipelined client absorbs it into the cache so the first post-stop
  // reads cost no exchange. The serial client (window 1, the
  // pre-pipelining transport) ignores it.
  if (!Cache || Cache->bypass() || !Client || Client->window() <= 1)
    return;
  if (!Stop || Stop->Exited || Stop->CtxWin.empty())
    return;
  Cache->seed(mem::Location::absolute(mem::SpData, Stop->CtxWinLo),
              Stop->CtxWin.size(), Stop->CtxWin.data());
}

void Target::setBlockTransport(bool Enabled) {
  if (Cache)
    Cache->setBypass(!Enabled);
}

//===----------------------------------------------------------------------===//
// Context access
//===----------------------------------------------------------------------===//

Expected<uint32_t> Target::ctxWord(uint32_t Offset) {
  if (Error E = requireStopped())
    return E;
  uint64_t V = 0;
  if (Error E = Wire->fetchInt(
          mem::Location::absolute(mem::SpData,
                                  Stop->ContextAddr + Offset),
          4, V))
    return E;
  return static_cast<uint32_t>(V);
}

Error Target::setCtxWord(uint32_t Offset, uint32_t Value) {
  if (Error E = requireStopped())
    return E;
  return Wire->storeInt(
      mem::Location::absolute(mem::SpData, Stop->ContextAddr + Offset), 4,
      Value);
}

Expected<uint32_t> Target::ctxPc() { return ctxWord(Layout.PcOff); }

Error Target::setCtxPc(uint32_t Pc) { return setCtxWord(Layout.PcOff, Pc); }

Expected<uint32_t> Target::ctxGpr(unsigned Reg) {
  return ctxWord(Layout.gprAddr(0, Reg, Arch->Desc->NumGpr));
}

//===----------------------------------------------------------------------===//
// Linker interface
//===----------------------------------------------------------------------===//

Expected<uint32_t> Target::anchorAddress(const std::string &Name) {
  Object LT;
  if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict)
    return Error::failure("no loader table for this target");
  const Object *Map = LT.DictVal->find("anchormap");
  if (!Map || Map->Ty != Type::Dict)
    return Error::failure("loader table has no anchor map");
  const Object *Found = Map->DictVal->find(Name);
  if (!Found)
    return Error::failure("unknown anchor symbol: " + Name);
  return static_cast<uint32_t>(Found->IntVal);
}

Expected<uint32_t> Target::fetchDataWord(uint32_t Addr) {
  uint64_t V = 0;
  if (Error E =
          Wire->fetchInt(mem::Location::absolute(mem::SpData, Addr), 4, V))
    return E;
  return static_cast<uint32_t>(V);
}

Expected<StopSiteIndex *> Target::stopIndex() {
  // A shared image carries its index, built once at acquire time; every
  // session's lazy forcing lands in the same structure, so one session's
  // work pays for the fleet.
  if (Image)
    return &Image->stopIndex();
  if (!StopIndex) {
    auto Idx = std::make_unique<StopSiteIndex>(I);
    Scope S(*this);
    if (Error E = Idx->build())
      return E;
    // A blob some other load (the repository, a previous session) already
    // compiled for this image serves the private index too. Lookup only:
    // the private path never pays a compile.
    if (PrivateSymHash && PrivateLtHash &&
        symblob::Cache::global().enabled())
      Idx->attachBlob(symblob::Cache::global().acquire(
          symblob::combineKeys(PrivateSymHash, PrivateLtHash)));
    StopIndex = std::move(Idx);
  }
  return StopIndex.get();
}

Expected<Target::ProcAddr> Target::procForPc(uint32_t Pc) {
  Expected<StopSiteIndex *> Idx = stopIndex();
  if (!Idx)
    return Idx.takeError();
  // O(log n) over the sorted procedure ranges, instead of the seed's
  // linear proctable scan per query.
  Expected<StopSiteIndex::Proc *> P = (*Idx)->procContaining(Pc);
  if (!P)
    return P.takeError();
  return ProcAddr{(*P)->Addr, (*P)->Name};
}

Expected<uint32_t> Target::procAddr(const std::string &Name) {
  Expected<StopSiteIndex *> Idx = stopIndex();
  if (!Idx)
    return Idx.takeError();
  StopSiteIndex::Proc *P = (*Idx)->procByName(Name);
  if (!P)
    return Error::failure("no procedure named " + Name);
  return P->Addr;
}

Expected<FrameWalker::ProcFrameData> Target::frameData(uint32_t Pc) {
  Expected<ProcAddr> Proc = procForPc(Pc);
  if (!Proc)
    return Proc.takeError();
  auto Cached = FrameDataCache.find(Proc->Addr);
  if (Cached != FrameDataCache.end())
    return Cached->second;
  Expected<FrameWalker::ProcFrameData> Data =
      Arch->Walker->frameData(*this, Pc);
  if (Data)
    FrameDataCache[Proc->Addr] = *Data;
  return Data;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

Expected<FrameInfo> Target::frame(unsigned N) {
  if (Error E = requireStopped())
    return E;
  Expected<FrameInfo> FI = Arch->Walker->topFrame(*this, Stop->ContextAddr);
  for (unsigned K = 0; K < N && FI; ++K)
    FI = Arch->Walker->callerFrame(*this, *FI);
  return FI;
}

Expected<std::vector<FrameInfo>> Target::backtrace(unsigned Max) {
  if (Error E = requireStopped())
    return E;
  // One warm round up front: the context reads and every frame's link
  // words then come out of resident lines instead of paying a round trip
  // per frame.
  if (Error E = warmStopContext())
    return E;
  std::vector<FrameInfo> Frames;
  Expected<FrameInfo> FI = Arch->Walker->topFrame(*this, Stop->ContextAddr);
  if (!FI)
    return FI.takeError();
  while (Frames.size() < Max) {
    Expected<ProcAddr> Proc = procForPc(FI->Pc);
    Frames.push_back(*FI);
    if (!Proc || Proc->Name == "_start" || Proc->Name == "main")
      break;
    FI = Arch->Walker->callerFrame(*this, *FI);
    if (!FI)
      break; // the bottom of the stack
  }
  return Frames;
}

//===----------------------------------------------------------------------===//
// Breakpoints
//===----------------------------------------------------------------------===//

Error Target::plantBreakpoint(uint32_t Addr) {
  if (Error E = requireStopped())
    return E;
  if (Breakpoints.count(Addr))
    return Error::success();
  const BreakpointData &Bp = Arch->Bp;
  uint64_t Word = 0;
  if (Error E = Wire->fetchInt(mem::Location::absolute(mem::SpCode, Addr),
                               Bp.InstrSize, Word))
    return E;
  // The interim scheme: breakpoints go only on no-op instructions, which
  // can be skipped instead of interpreted (paper Sec 3).
  if (static_cast<uint32_t>(Word) != Bp.NopWord)
    return Error::failure("not a stopping point: no no-op at " +
                          std::to_string(Addr));
  if (Error E = Wire->storeInt(mem::Location::absolute(mem::SpCode, Addr),
                               Bp.InstrSize, Bp.BreakWord))
    return E;
  Breakpoints[Addr] = static_cast<uint32_t>(Word);
  EverPlanted.insert(Addr);
  return Error::success();
}

Error Target::removeBreakpoint(uint32_t Addr) {
  auto It = Breakpoints.find(Addr);
  if (It == Breakpoints.end())
    return Error::failure("no breakpoint at " + std::to_string(Addr));
  if (Error E = Wire->storeInt(mem::Location::absolute(mem::SpCode, Addr),
                               Arch->Bp.InstrSize, It->second))
    return E;
  Breakpoints.erase(It);
  return Error::success();
}

namespace {

/// A contiguous code range covering a run of nearby breakpoint sites.
struct SiteRange {
  uint32_t Begin = 0, End = 0; ///< [Begin, End) in bytes
  std::vector<uint32_t> Sites;
};

/// Coalesces sorted unique site addresses into ranges: sites within MaxGap
/// bytes share a range (the bytes between them ride along in the same
/// block), and no range outgrows one block message.
std::vector<SiteRange> coalesce(const std::vector<uint32_t> &Addrs,
                                uint32_t InstrSize) {
  constexpr uint32_t MaxGap = 1024;
  std::vector<SiteRange> Ranges;
  for (uint32_t A : Addrs) {
    if (!Ranges.empty() && A <= Ranges.back().End + MaxGap &&
        A + InstrSize - Ranges.back().Begin <= nub::MaxBlockLen) {
      Ranges.back().End = A + InstrSize;
      Ranges.back().Sites.push_back(A);
    } else {
      Ranges.push_back({A, A + InstrSize, {A}});
    }
  }
  return Ranges;
}

/// The ranges as warm spans, so every range's verification fetch lands in
/// one pipelined round instead of one round trip per range.
std::vector<std::pair<mem::Location, size_t>>
rangeSpans(const std::vector<SiteRange> &Ranges) {
  std::vector<std::pair<mem::Location, size_t>> Spans;
  for (const SiteRange &R : Ranges)
    Spans.push_back({mem::Location::absolute(mem::SpCode, R.Begin),
                     static_cast<size_t>(R.End - R.Begin)});
  return Spans;
}

} // namespace

Error Target::plantBreakpoints(const std::vector<uint32_t> &Addrs) {
  if (Error E = requireStopped())
    return E;
  std::vector<uint32_t> Fresh;
  for (uint32_t A : Addrs)
    if (!Breakpoints.count(A))
      Fresh.push_back(A);
  std::sort(Fresh.begin(), Fresh.end());
  Fresh.erase(std::unique(Fresh.begin(), Fresh.end()), Fresh.end());
  const BreakpointData &Bp = Arch->Bp;
  ByteOrder Order = Arch->Desc->Order;
  std::vector<SiteRange> Ranges = coalesce(Fresh, Bp.InstrSize);
  // Every range's verification fetch in one pipelined round, then every
  // patched block posted back and awaited together: two link latencies
  // for the whole plant, however many ranges there are.
  if (Error E = warmSpans(rangeSpans(Ranges)))
    return E;
  std::vector<std::vector<uint8_t>> Blocks;
  Blocks.reserve(Ranges.size());
  for (const SiteRange &R : Ranges) {
    std::vector<uint8_t> Block(R.End - R.Begin);
    if (Error E =
            Wire->fetchBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                             Block.size(), Block.data()))
      return E;
    // Verify every site before storing anything, so a bad site aborts its
    // whole range with no partial plants. Bytes between sites (including
    // any already-planted break words) ride along unchanged.
    for (uint32_t A : R.Sites) {
      uint32_t Word = static_cast<uint32_t>(
          unpackInt(Block.data() + (A - R.Begin), Bp.InstrSize, Order));
      if (Word != Bp.NopWord)
        return Error::failure("not a stopping point: no no-op at " +
                              std::to_string(A));
    }
    for (uint32_t A : R.Sites)
      packInt(Bp.BreakWord, Block.data() + (A - R.Begin), Bp.InstrSize,
              Order);
    Blocks.push_back(std::move(Block));
    Wire->postStoreBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                         Blocks.back().size(), Blocks.back().data(), nullptr);
    for (uint32_t A : R.Sites) {
      Breakpoints[A] = Bp.NopWord;
      EverPlanted.insert(A);
    }
  }
  return Wire->awaitPosted();
}

Error Target::removeBreakpoints(const std::vector<uint32_t> &Addrs) {
  std::vector<uint32_t> Sorted = Addrs;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  for (uint32_t A : Sorted)
    if (!Breakpoints.count(A))
      return Error::failure("no breakpoint at " + std::to_string(A));
  if (Sorted.empty())
    return Error::success();
  const BreakpointData &Bp = Arch->Bp;
  ByteOrder Order = Arch->Desc->Order;
  std::vector<SiteRange> Ranges = coalesce(Sorted, Bp.InstrSize);
  if (Error E = warmSpans(rangeSpans(Ranges)))
    return E;
  std::vector<std::vector<uint8_t>> Blocks;
  Blocks.reserve(Ranges.size());
  for (const SiteRange &R : Ranges) {
    std::vector<uint8_t> Block(R.End - R.Begin);
    if (Error E =
            Wire->fetchBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                             Block.size(), Block.data()))
      return E;
    for (uint32_t A : R.Sites)
      packInt(Breakpoints[A], Block.data() + (A - R.Begin), Bp.InstrSize,
              Order);
    Blocks.push_back(std::move(Block));
    Wire->postStoreBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                         Blocks.back().size(), Blocks.back().data(), nullptr);
    for (uint32_t A : R.Sites)
      Breakpoints.erase(A);
  }
  return Wire->awaitPosted();
}

//===----------------------------------------------------------------------===//
// Temporary breakpoints
//===----------------------------------------------------------------------===//

void Target::warmCode(uint32_t From, uint32_t To) {
  if (Cache && !Cache->bypass() && To > From)
    Cache->warm(mem::Location::absolute(mem::SpCode, From), To - From);
}

Error Target::warmSpans(
    const std::vector<std::pair<mem::Location, size_t>> &Spans) {
  if (!Cache || Cache->bypass() || Spans.empty())
    return Error::success();
  return Cache->warmMany(Spans);
}

void Target::stopContextSpans(
    std::vector<std::pair<mem::Location, size_t>> &Spans) const {
  if (!stopped())
    return;
  // The context sits at the top of target memory and the stack grows down
  // from just below it, so one window covers the context block and the
  // frames nearest the stop.
  constexpr uint32_t StackWindow = 4096;
  uint32_t Ctx = Stop->ContextAddr;
  uint32_t Top = Ctx & ~15u; // the nub's stackTop()
  uint32_t Lo = Top > StackWindow ? Top - StackWindow : 0;
  // The Stopped message carries the stop-time sp: when the live stack
  // reaches below the default window, extend it (bounded) so the whole
  // frame chain warms in the same pipelined round.
  if (Stop->Sp && Stop->Sp < Lo && Stop->Sp < Top) {
    uint32_t From = Stop->Sp > 64 ? Stop->Sp - 64 : 0;
    if (Lo - From <= 64 * 1024)
      Lo = From;
    else
      Lo = Lo - 64 * 1024;
  }
  Spans.push_back({mem::Location::absolute(mem::SpData, Lo),
                   static_cast<size_t>(Ctx - Lo) + Layout.Size});
}

Error Target::warmStopContext() {
  if (!stopped() || !Cache || Cache->bypass())
    return Error::success();
  std::vector<std::pair<mem::Location, size_t>> Spans;
  stopContextSpans(Spans);
  if (Error E = warmSpans(Spans))
    return E;
  if (Stop->Sp)
    return Error::success(); // the Stopped sp already sized the window
  // An old nub without the sp field: read the stop-time sp (a cache hit
  // now) and warm the live frames below the default window in a second
  // round.
  Expected<uint32_t> Sp = ctxWord(Layout.SpOff);
  if (!Sp)
    return Error::success(); // best-effort: the walk will pay its own way
  uint32_t Top = Stop->ContextAddr & ~15u;
  uint32_t Lo = Top > 4096 ? Top - 4096 : 0;
  if (*Sp >= Lo || *Sp >= Top)
    return Error::success();
  uint32_t From = *Sp > 64 ? *Sp - 64 : 0;
  size_t Len = std::min<size_t>(Lo - From, 64 * 1024);
  return warmSpans({{mem::Location::absolute(mem::SpData, From), Len}});
}

Error Target::plantTemporaries(const std::vector<uint32_t> &Addrs) {
  if (Error E = requireStopped())
    return E;
  // Skip sites that already carry a break word (a user breakpoint or a
  // temporary from an outer stepping loop): whoever planted it owns it.
  std::vector<uint32_t> Fresh;
  for (uint32_t A : Addrs)
    if (!Breakpoints.count(A))
      Fresh.push_back(A);
  std::sort(Fresh.begin(), Fresh.end());
  Fresh.erase(std::unique(Fresh.begin(), Fresh.end()), Fresh.end());
  const BreakpointData &Bp = Arch->Bp;
  ByteOrder Order = Arch->Desc->Order;
  std::vector<SiteRange> Ranges = coalesce(Fresh, Bp.InstrSize);
  if (Error E = warmSpans(rangeSpans(Ranges)))
    return E;
  for (const SiteRange &R : Ranges) {
    std::vector<uint8_t> Block(R.End - R.Begin);
    if (Error E =
            Wire->fetchBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                             Block.size(), Block.data()))
      return E;
    for (uint32_t A : R.Sites) {
      uint32_t Word = static_cast<uint32_t>(
          unpackInt(Block.data() + (A - R.Begin), Bp.InstrSize, Order));
      if (Word != Bp.NopWord)
        return Error::failure("not a stopping point: no no-op at " +
                              std::to_string(A));
    }
    // Keep the pre-plant bytes: clearTemporaries stores them back as-is,
    // one message per range, with no verification fetch of its own.
    TempImages.push_back({R.Begin, Block});
    for (uint32_t A : R.Sites)
      packInt(Bp.BreakWord, Block.data() + (A - R.Begin), Bp.InstrSize,
              Order);
    // Posted, not awaited: the plant stores ride the request window with
    // the Continue that always follows a plant (a failure surfaces from
    // doContinue, before the target could have run past the site).
    Wire->postStoreBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                         Block.size(), Block.data(), nullptr);
    for (uint32_t A : R.Sites) {
      Breakpoints[A] = Bp.NopWord;
      TempSites.insert(A);
      EverPlanted.insert(A);
    }
    Exec.TempPlants += R.Sites.size();
  }
  return Error::success();
}

Error Target::clearTemporaries() {
  if (TempSites.empty()) {
    TempImages.clear();
    return Error::success();
  }
  Exec.TempRemoves += TempSites.size();
  for (uint32_t A : TempSites)
    Breakpoints.erase(A);
  TempSites.clear();
  std::vector<TempImage> Images = std::move(TempImages);
  TempImages.clear();
  if (exited() || !connected()) {
    // An exited process cannot service the removal stores; the image is
    // gone with it.
    return Error::success();
  }
  // Posted, not awaited: the restore stores ride with whatever comes next
  // (the next step's warm fetches, or the next Continue). Any read issued
  // before they land is ordered behind them on the wire, and the cache
  // patches eagerly, so nothing can observe the stale break words.
  for (const TempImage &R : Images)
    Wire->postStoreBlock(mem::Location::absolute(mem::SpCode, R.Begin),
                         R.Bytes.size(), R.Bytes.data(), nullptr);
  return Error::success();
}

//===----------------------------------------------------------------------===//
// User breakpoints
//===----------------------------------------------------------------------===//

Expected<int> Target::addUserBreakpoint(const std::string &Spec,
                                        const std::vector<uint32_t> &Addrs) {
  std::vector<uint32_t> Sorted = Addrs;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  if (Sorted.empty())
    return Error::failure("breakpoint has no stopping points");
  if (Error E = plantBreakpoints(Sorted))
    return E;
  UserBreakpoint U;
  U.Id = NextBpId++;
  U.Spec = Spec;
  U.Addrs = std::move(Sorted);
  int Id = U.Id;
  UserBps[Id] = std::move(U);
  return Id;
}

Error Target::deleteUserBreakpoint(int Id) {
  auto It = UserBps.find(Id);
  if (It == UserBps.end())
    return Error::failure("no breakpoint " + std::to_string(Id));
  // Unplant only the sites nothing else owns: another user breakpoint at
  // the same line, or a live stepping temporary, keeps its break word.
  std::vector<uint32_t> Remove;
  for (uint32_t A : It->second.Addrs) {
    bool Shared = TempSites.count(A) != 0;
    for (const auto &[OtherId, U] : UserBps)
      if (OtherId != Id &&
          std::binary_search(U.Addrs.begin(), U.Addrs.end(), A)) {
        Shared = true;
        break;
      }
    for (const auto &[TpId, Tp] : Tracepoints) {
      if (Shared)
        break;
      if (std::binary_search(Tp.Addrs.begin(), Tp.Addrs.end(), A))
        Shared = true;
    }
    if (!Shared && Breakpoints.count(A))
      Remove.push_back(A);
  }
  bool WasManaged = It->second.NubManaged;
  UserBps.erase(It);
  if (exited() || !connected()) {
    for (uint32_t A : Remove)
      Breakpoints.erase(A);
    return Error::success();
  }
  // Best-effort: a stale nub record at an unplanted site can never fire
  // (no break word), so a failed clear costs nothing.
  if (WasManaged)
    (void)Client->clearCondition(false, static_cast<uint32_t>(Id));
  return removeBreakpoints(Remove);
}

Expected<size_t> Target::deleteAllUserBreakpoints() {
  size_t N = UserBps.size();
  std::vector<uint32_t> Remove;
  std::vector<int> Managed;
  for (const auto &[Id, U] : UserBps) {
    if (U.NubManaged)
      Managed.push_back(Id);
    for (uint32_t A : U.Addrs) {
      bool Traced = false;
      for (const auto &[TpId, Tp] : Tracepoints)
        if (std::binary_search(Tp.Addrs.begin(), Tp.Addrs.end(), A)) {
          Traced = true;
          break;
        }
      if (!TempSites.count(A) && !Traced && Breakpoints.count(A))
        Remove.push_back(A);
    }
  }
  UserBps.clear();
  std::sort(Remove.begin(), Remove.end());
  Remove.erase(std::unique(Remove.begin(), Remove.end()), Remove.end());
  if (exited() || !connected()) {
    for (uint32_t A : Remove)
      Breakpoints.erase(A);
    return N;
  }
  for (int Id : Managed)
    (void)Client->clearCondition(false, static_cast<uint32_t>(Id));
  if (Error E = removeBreakpoints(Remove))
    return E;
  return N;
}

Target::UserBreakpoint *Target::userBreakpoint(int Id) {
  auto It = UserBps.find(Id);
  return It == UserBps.end() ? nullptr : &It->second;
}

Target::UserBreakpoint *Target::userBreakpointAt(uint32_t Addr) {
  for (auto &[Id, U] : UserBps)
    if (std::binary_search(U.Addrs.begin(), U.Addrs.end(), Addr))
      return &U;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Nub-side condition and tracepoint records
//===----------------------------------------------------------------------===//

Expected<std::vector<std::pair<uint32_t, uint32_t>>>
Target::vfpSites(const std::vector<uint32_t> &Addrs, uint32_t &VfpReg) {
  std::vector<std::pair<uint32_t, uint32_t>> Sites;
  Sites.reserve(Addrs.size());
  const target::TargetDesc &D = *Arch->Desc;
  if (D.FpReg >= 0) {
    // A frame-pointer architecture: the walker's top-frame vfp is the fp
    // register itself, at every site.
    VfpReg = static_cast<uint32_t>(D.FpReg);
    for (uint32_t A : Addrs)
      Sites.push_back({A, 0});
    return Sites;
  }
  // No frame pointer (zmips): the vfp is sp plus the procedure's frame
  // size, a per-site constant from the runtime procedure table — exactly
  // what the zmips walker computes for frame 0.
  VfpReg = D.SpReg;
  for (uint32_t A : Addrs) {
    Expected<FrameWalker::ProcFrameData> FD = frameData(A);
    if (!FD)
      return FD.takeError();
    Sites.push_back({A, FD->FrameSize});
  }
  return Sites;
}

Error Target::syncNubRecords(bool &AnyManaged) {
  AnyManaged = false;
  if (!connected())
    return Error::success();
  Scope Sc(*this); // vfpSites reads frame data through the PS scope
  Error First = Error::success();
  auto keep = [&First](Error E) {
    if (E && !First)
      First = std::move(E);
  };
  for (auto &[Id, U] : UserBps) {
    if (U.Dirty) {
      if (!U.CondText.empty() && U.Bytecode.empty()) {
        // An inexpressible condition stays host-evaluated: clear any
        // stale record so the nub reports every hit at its sites.
        if (!U.NubManaged) {
          U.Dirty = false;
        } else if (Error E =
                       Client->clearCondition(false,
                                              static_cast<uint32_t>(U.Id))) {
          keep(std::move(E));
        } else {
          U.NubManaged = false;
          U.Dirty = false;
        }
      } else {
        nub::CondRecordSpec Spec;
        Spec.Id = static_cast<uint32_t>(U.Id);
        Spec.PcAdvance = Arch->Bp.PcAdvance;
        Spec.Hits = static_cast<uint32_t>(U.HitCount);
        Spec.Ignore = static_cast<uint32_t>(U.Ignore);
        Spec.Bytecode = U.Bytecode;
        uint32_t VfpReg = 0;
        Expected<std::vector<std::pair<uint32_t, uint32_t>>> Sites =
            vfpSites(U.Addrs, VfpReg);
        if (!Sites) {
          keep(Sites.takeError());
        } else {
          Spec.VfpReg = VfpReg;
          Spec.Sites = Sites.take();
          if (Error E = Client->setCondition(Spec)) {
            keep(std::move(E));
          } else {
            U.NubManaged = true;
            U.Dirty = false;
            ++Exec.CondShips;
          }
        }
      }
    }
    AnyManaged |= U.NubManaged;
  }
  for (auto &[Id, T] : Tracepoints) {
    if (T.Dirty) {
      nub::TraceRecordSpec Spec;
      Spec.Id = static_cast<uint32_t>(T.Id);
      Spec.PcAdvance = Arch->Bp.PcAdvance;
      Spec.RegMask = T.RegMask;
      Spec.Exprs = T.Exprs;
      uint32_t VfpReg = 0;
      Expected<std::vector<std::pair<uint32_t, uint32_t>>> Sites =
          vfpSites(T.Addrs, VfpReg);
      if (!Sites) {
        keep(Sites.takeError());
      } else {
        Spec.VfpReg = VfpReg;
        Spec.Sites = Sites.take();
        if (Error E = Client->setTracepoint(Spec)) {
          keep(std::move(E));
        } else {
          T.NubManaged = true;
          T.Dirty = false;
          ++Exec.CondShips;
        }
      }
    }
    AnyManaged |= T.NubManaged;
  }
  return First;
}

void Target::applyCounterSync() {
  if (!Stop)
    return;
  const nub::StopInfo &S = *Stop;
  // All nub counters are absolute, folded here by delta so `stats` and
  // `info breakpoints` read the same whether a hit settled in the nub or
  // on the host. Monotone guards make a tail-less frame (parsed as
  // zeros) and host-side counter mutations harmless: deltas only ever
  // fold forward.
  if (S.NubCondEvals >= Exec.NubCondEvals) {
    uint64_t EvalsDelta = S.NubCondEvals - Exec.NubCondEvals;
    // Of the evals the nub ran since the last sync, every one resumed
    // locally except a decisive one that produced this very stop at a
    // conditional breakpoint (true condition, or a failed eval the host
    // will finish).
    uint64_t Decisive = 0;
    if (EvalsDelta > 0 && !S.Exited &&
        (S.Decision == nub::StopNubDecided ||
         S.Decision == nub::StopNubEvalFailed))
      if (UserBreakpoint *U = userBreakpointAt(S.Pc))
        if (!U->Bytecode.empty())
          Decisive = 1;
    Exec.CondEvals += EvalsDelta;
    Exec.CondResumes += EvalsDelta - Decisive;
    Exec.NubCondEvals = S.NubCondEvals;
  }
  if (S.NubLocalResumes >= Exec.NubLocalResumes)
    Exec.NubLocalResumes = S.NubLocalResumes;
  for (const nub::CounterSync &C : S.Counters) {
    UserBreakpoint *U = userBreakpoint(static_cast<int>(C.Id));
    if (!U)
      continue;
    if (C.Hits >= U->HitCount) {
      Exec.BpHits += C.Hits - U->HitCount;
      U->HitCount = C.Hits;
    }
    if (C.Ignore <= U->Ignore) {
      Exec.IgnoreResumes += U->Ignore - C.Ignore;
      U->Ignore = C.Ignore;
    }
  }
}

Expected<int> Target::addTracepoint(const std::string &Spec,
                                    const std::vector<uint32_t> &Addrs,
                                    std::vector<std::string> ExprTexts,
                                    std::vector<std::vector<uint8_t>> Exprs,
                                    uint32_t RegMask) {
  std::vector<uint32_t> Sorted = Addrs;
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  if (Sorted.empty())
    return Error::failure("tracepoint has no stopping points");
  // Tracepoint sites are planted like breakpoints (the resume machinery
  // must advance the pc past them); only the nub-side record makes hits
  // resume instead of stop.
  if (Error E = plantBreakpoints(Sorted))
    return E;
  Tracepoint T;
  T.Id = NextTpId++;
  T.Spec = Spec;
  T.ExprTexts = std::move(ExprTexts);
  T.Exprs = std::move(Exprs);
  T.Addrs = std::move(Sorted);
  T.RegMask = RegMask;
  int Id = T.Id;
  Tracepoints[Id] = std::move(T);
  return Id;
}

Error Target::deleteTracepoint(int Id) {
  auto It = Tracepoints.find(Id);
  if (It == Tracepoints.end())
    return Error::failure("no tracepoint " + std::to_string(Id));
  std::vector<uint32_t> Remove;
  for (uint32_t A : It->second.Addrs) {
    bool Shared = TempSites.count(A) != 0 || userBreakpointAt(A) != nullptr;
    for (const auto &[OtherId, Tp] : Tracepoints) {
      if (Shared)
        break;
      if (OtherId != Id &&
          std::binary_search(Tp.Addrs.begin(), Tp.Addrs.end(), A))
        Shared = true;
    }
    if (!Shared && Breakpoints.count(A))
      Remove.push_back(A);
  }
  bool WasManaged = It->second.NubManaged;
  Tracepoints.erase(It);
  if (exited() || !connected()) {
    for (uint32_t A : Remove)
      Breakpoints.erase(A);
    return Error::success();
  }
  if (WasManaged)
    (void)Client->clearCondition(true, static_cast<uint32_t>(Id));
  return removeBreakpoints(Remove);
}

Target::Tracepoint *Target::tracepoint(int Id) {
  auto It = Tracepoints.find(Id);
  return It == Tracepoints.end() ? nullptr : &It->second;
}

Error Target::drainTraceRecords() {
  // The nub services drains in any state, so records buffered on the way
  // to an exit still come home.
  bool AnyManaged = false;
  for (const auto &[Id, T] : Tracepoints)
    AnyManaged |= T.NubManaged;
  if (!AnyManaged || !connected())
    return Error::success();
  for (;;) {
    nub::TraceDrain D;
    if (Error E = Client->drainTrace(D))
      return E;
    TraceDropTotal += D.Dropped;
    for (nub::condbc::TraceRecord &R : D.Records) {
      if (Tracepoint *T = tracepoint(static_cast<int>(R.Id)))
        T->Hits = std::max<uint64_t>(T->Hits, R.HitNo);
      TraceLog.push_back(std::move(R));
    }
    if (D.Remaining == 0)
      return Error::success();
    if (D.Records.empty())
      return Error::failure("trace drain made no progress");
  }
}

//===----------------------------------------------------------------------===//
// Time travel
//===----------------------------------------------------------------------===//

Error Target::enableRecording() {
  if (Error E = requireStopped())
    return E;
  uint64_t Spacing = 0, Budget = 0;
  uint32_t KeyInt = 0;
  if (const char *S = std::getenv("LDB_CHECKPOINT_SPACING"))
    Spacing = std::strtoull(S, nullptr, 10);
  if (const char *S = std::getenv("LDB_CHECKPOINT_KEYINT"))
    KeyInt = static_cast<uint32_t>(std::strtoul(S, nullptr, 10));
  if (const char *S = std::getenv("LDB_CHECKPOINT_BUDGET"))
    Budget = std::strtoull(S, nullptr, 10);
  // Zero spacing/interval pick the nub defaults; zero budget is
  // unbounded (the LRU eviction never fires).
  if (Error E = Client->setCheckpointPolicy(true, Spacing, KeyInt, Budget))
    return E;
  RecordingOn = true;
  // The recording starts from this stop: log its counters as the rewind
  // floor for seeks below every later stop.
  TimelineLog.clear();
  logTimelineEvent();
  return Error::success();
}

Error Target::disableRecording() {
  if (!connected())
    return Error::failure("not connected to a process");
  if (Error E = Client->setCheckpointPolicy(false, 0, 0, 0))
    return E;
  RecordingOn = false;
  TimelineLog.clear();
  return Error::success();
}

Expected<nub::TimelineInfo> Target::timeline() {
  if (!connected())
    return Error::failure("not connected to a process");
  nub::TimelineInfo Info;
  if (Error E = Client->queryTimeline(Info))
    return E;
  return Info;
}

void Target::logTimelineEvent() {
  if (!RecordingOn || !Stop)
    return;
  TimelineEvent Ev;
  Ev.Icount = stopIcount();
  Ev.Bps.reserve(UserBps.size());
  for (const auto &[Id, U] : UserBps)
    Ev.Bps.push_back({Id, U.HitCount, U.Ignore});
  TimelineLog.push_back(std::move(Ev));
}

void Target::rewindCounters(const nub::StopInfo &Reply) {
  uint64_t Restored = Reply.HasIcount ? Reply.Icount : 0;
  // Host side first: the newest logged stop at or below the restored
  // instant carries the counters as the user saw them then. (Events are
  // appended in timeline order, so the scan takes the last match.)
  const TimelineEvent *Ev = nullptr;
  for (const TimelineEvent &E : TimelineLog) {
    if (E.Icount > Restored)
      break;
    Ev = &E;
  }
  if (Ev)
    for (const auto &[Id, Hits, Ignore] : Ev->Bps)
      if (UserBreakpoint *U = userBreakpoint(Id)) {
        U->HitCount = Hits;
        U->Ignore = Ignore;
      }
  // Truncate the log's future: re-execution is about to rewrite it.
  while (!TimelineLog.empty() && TimelineLog.back().Icount > Restored)
    TimelineLog.pop_back();
  // The nub's restored record counters are authoritative for nub-managed
  // breakpoints; the seek reply's tail applies absolutely — a rewind can
  // never be folded as a forward delta, and the monotone guards in
  // applyCounterSync would (correctly) refuse it.
  for (const nub::CounterSync &C : Reply.Counters)
    if (UserBreakpoint *U = userBreakpoint(static_cast<int>(C.Id))) {
      U->HitCount = C.Hits;
      U->Ignore = C.Ignore;
      U->Dirty = false; // host and nub agree at this instant
    }
  Exec.NubCondEvals = Reply.NubCondEvals;
  Exec.NubLocalResumes = Reply.NubLocalResumes;
}

Error Target::seekTo(uint64_t Icount) {
  if (!connected())
    return Error::failure("not connected to a process");
  if (!RecordingOn)
    return Error::failure("recording is off (use `record on`)");
  if (!Stop)
    return Error::failure("the process has not stopped yet");
  if (!TempSites.empty())
    return Error::failure("cannot seek with stepping temporaries planted");
  nub::StopInfo Next;
  if (Error E = Client->seek(Icount, Next))
    return E;
  ++Exec.Seeks;
  // Time travel invalidates everything derived from target state —
  // including the code lines a plain run-flush deliberately keeps: the
  // restored image carries the snapshot's break words, not today's.
  if (Cache)
    Cache->invalidateAll();
  FrameDataCache.clear();
  Stop = Next;
  rewindCounters(Next);
  logTimelineEvent(); // the rewind floor for seeks inside this interval
  // Sweep every site that ever carried a break word to its current
  // truth: planted sites get the break word (the snapshot may predate
  // the plant), everything else reverts to the no-op (the snapshot may
  // predate the removal). Posted in one pipelined burst.
  const BreakpointData &Bp = Arch->Bp;
  ByteOrder Order = Arch->Desc->Order;
  std::vector<std::array<uint8_t, 4>> Words;
  Words.reserve(EverPlanted.size()); // postStoreBlock keeps the pointers
  for (uint32_t A : EverPlanted) {
    Words.emplace_back();
    packInt(Breakpoints.count(A) ? Bp.BreakWord : Bp.NopWord,
            Words.back().data(), Bp.InstrSize, Order);
    Wire->postStoreBlock(mem::Location::absolute(mem::SpCode, A),
                         Bp.InstrSize, Words.back().data(), nullptr);
  }
  if (Error E = Wire->awaitPosted())
    return E;
  seedStopWindow();
  return Error::success();
}
