//===- core/target.h - the target object ------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A target object: ldb's handle on one debugged process (paper Sec 7:
/// "ldb can connect to multiple targets simultaneously, so it must not
/// leave target-specific state in global variables. It stores such state
/// in target objects.") Each target carries its nub connection, its
/// loader table and symbol table (as PostScript objects in a per-target
/// dictionary), its architecture, its breakpoints, and the current stop
/// state. The debugger shares one embedded interpreter across targets;
/// entering a target's Scope pushes the target dictionary and the
/// architecture's machine-dependent dictionary onto the dictionary stack
/// (the rebinding of Sec 5).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_TARGET_H
#define LDB_CORE_TARGET_H

#include "core/arch.h"
#include "core/imagecache.h"
#include "core/stopindex.h"
#include "mem/cached.h"
#include "mem/remote.h"
#include "mem/stats.h"
#include "nub/host.h"
#include "postscript/interp.h"

#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

namespace ldb::core {

class Target : public ps::DebugHooks {
public:
  Target(std::string Name, ps::Interp &Interp)
      : Name(std::move(Name)), I(Interp) {}

  const std::string &name() const { return Name; }

  //===--------------------------------------------------------------------===
  // Connection and symbols
  //===--------------------------------------------------------------------===

  /// Connects to a waiting process; the Welcome message names the
  /// architecture, which selects ldb's machine-dependent code and data.
  /// \p Sim, when given, interposes a simulated-latency link (the bench
  /// harness measures transports with it); by default the link is the
  /// zero-latency local pair, or a SimLink when the LDB_SIM_* environment
  /// knobs are set. \p Clock joins a SimLink connection to a shared
  /// virtual clock (the fleet event loop drives many links on one).
  Error connect(nub::ProcessHost &Host, const std::string &ProcName,
                const nub::SimParams *Sim = nullptr,
                std::shared_ptr<nub::VirtualClock> Clock = nullptr);

  /// Interprets PostScript symbol tables into the target dictionary (the
  /// private, per-session load path; sessions sharing an image attach a
  /// SharedImage instead).
  Error loadSymbols(const std::string &PsText);

  /// Interprets the loader table, then checks that the top-level
  /// dictionary matches the object code: every anchor symbol the symtab
  /// names must appear in the loader table's anchor map (paper Sec 2).
  Error loadLoaderTable(const std::string &PsText);

  /// Maps a repository image into this target's scope: symtab and
  /// loadertable lookups resolve through the shared image dictionary
  /// (below the private target dictionary), and the shared stop-site
  /// index serves this target. Replaces any privately loaded tables.
  Error attachImage(std::shared_ptr<SharedImage> Img);
  const std::shared_ptr<SharedImage> &image() const { return Image; }

  /// The machine-dependent dictionary (the image repository builds shared
  /// images inside the same architecture scope a private load sees).
  ps::Object archDict() const { return ArchDict; }

  const Architecture &arch() const { return *Arch; }
  nub::NubClient &client() { return *Client; }
  bool connected() const { return Client != nullptr; }

  /// Severs the connection as a crash would (no Detach): the nub must
  /// preserve the process state for the next debugger.
  void crashConnection();

  //===--------------------------------------------------------------------===
  // Execution state
  //===--------------------------------------------------------------------===

  bool stopped() const { return Stop.has_value() && !Stop->Exited; }
  bool exited() const { return Stop.has_value() && Stop->Exited; }
  const nub::StopInfo &lastStop() const { return *Stop; }

  /// Resumes the target; if it is stopped at a planted breakpoint the
  /// saved pc is advanced past the no-op first (the Sec 3 resume).
  /// \p AllowAutoResume lets this resume ship dirty condition/tracepoint
  /// records to the nub and continue in auto-resume mode, so false or
  /// ignored hits (and tracepoint hits) settle in the target without a
  /// wire exchange. Stepping passes false: its temporaries must report
  /// every trap. If shipping fails (transport fault, nub refusal) the
  /// continue falls back to report-all and host-side evaluation; the
  /// records stay dirty and the next auto-resume continue retries.
  Error resume(bool AllowAutoResume = false);

  //===--------------------------------------------------------------------===
  // Context access: machine-independent code parameterized by the
  // machine-dependent field description (paper Sec 4.3).
  //===--------------------------------------------------------------------===

  Expected<uint32_t> ctxWord(uint32_t Offset);
  Error setCtxWord(uint32_t Offset, uint32_t Value);
  Expected<uint32_t> ctxPc();
  Error setCtxPc(uint32_t Pc);
  Expected<uint32_t> ctxGpr(unsigned Reg);
  const nub::ContextLayout &layout() const { return Layout; }

  //===--------------------------------------------------------------------===
  // The wire and the PostScript scope
  //===--------------------------------------------------------------------===

  /// The target's code/data memory as the rest of the debugger should see
  /// it: the block cache over the wire, so bursts of nearby accesses cost
  /// one round trip per line. Invalidated whenever the target runs.
  mem::MemoryRef wire() { return Wire; }
  ps::Interp &interp() { return I; }

  /// Transport counters for this connection: round trips, bytes on the
  /// wire, and cache hits/misses per space.
  mem::TransportStats &stats() { return Stats; }
  void resetStats() { Stats.reset(); }

  /// Switches between the block transport (default: block messages plus
  /// the cache) and the word-granularity transport every access cost a
  /// round trip under (kept for word-only nubs; the wire-traffic bench
  /// measures it as the baseline).
  void setBlockTransport(bool Enabled);
  bool blockTransport() const { return Cache && !Cache->bypass(); }

  /// RAII: pushes the target dictionary and the architecture dictionary,
  /// installs this target as the interpreter's debug hooks.
  class Scope {
  public:
    explicit Scope(Target &T);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Target &T;
    ps::DebugHooks *SavedHooks;
    size_t SavedDepth;
  };

  //===--------------------------------------------------------------------===
  // Linker interface (paper Sec 3): the loader table as an object.
  //===--------------------------------------------------------------------===

  Expected<uint32_t> anchorAddress(const std::string &Name) override;
  Expected<uint32_t> fetchDataWord(uint32_t Addr) override;

  struct ProcAddr {
    uint32_t Addr = 0;
    std::string Name;
  };
  /// The procedure containing \p Pc, from the loader table's proctable.
  Expected<ProcAddr> procForPc(uint32_t Pc);
  /// The procedure entry address for \p Name.
  Expected<uint32_t> procAddr(const std::string &Name);

  /// Frame data for the procedure containing \p Pc, via the walker's
  /// machine-dependent source (must be called inside a Scope). Cached per
  /// procedure.
  Expected<FrameWalker::ProcFrameData> frameData(uint32_t Pc);

  /// Runtime procedure table address (zmips), from the loader table.
  uint32_t rptAddr() const { return RptAddr; }

  //===--------------------------------------------------------------------===
  // Frames
  //===--------------------------------------------------------------------===

  /// Frame 0 is the stopped frame; N walks down the stack. Must be called
  /// inside a Scope.
  Expected<FrameInfo> frame(unsigned N);

  /// All frames down to main/_start (bounded by \p Max).
  Expected<std::vector<FrameInfo>> backtrace(unsigned Max = 64);

  //===--------------------------------------------------------------------===
  // Breakpoints (implemented entirely in the debugger with fetches and
  // stores; the nub knows nothing about them — paper Sec 3, 6).
  //===--------------------------------------------------------------------===

  /// Plants a breakpoint at \p Addr, which must hold the no-op word.
  Error plantBreakpoint(uint32_t Addr);
  Error removeBreakpoint(uint32_t Addr);

  /// Plants (removes) breakpoints at every address at once: the addresses
  /// are coalesced into ranges and each range is moved with one block
  /// fetch and one block store, instead of a round trip per word. All
  /// sites are verified to hold no-ops before anything is stored.
  Error plantBreakpoints(const std::vector<uint32_t> &Addrs);
  Error removeBreakpoints(const std::vector<uint32_t> &Addrs);

  bool breakpointAt(uint32_t Addr) const { return Breakpoints.count(Addr); }
  const std::map<uint32_t, uint32_t> &breakpoints() const {
    return Breakpoints;
  }

  //===--------------------------------------------------------------------===
  // The stop-site index: sorted procedure ranges from the proctable,
  // per-procedure loci loaded lazily (deferred symtab entries stay
  // deferred). Built on first use, rebuilt after new symbols or a new
  // loader table.
  //===--------------------------------------------------------------------===

  /// The index, building it on first use (enters its own Scope).
  Expected<StopSiteIndex *> stopIndex();

  //===--------------------------------------------------------------------===
  // Temporary breakpoints (stepping). The target owns the bookkeeping so
  // a temporary never double-plants or removes an overlapping user
  // breakpoint: plantTemporaries skips sites that already carry a break
  // word, and clearTemporaries removes exactly what it planted.
  //===--------------------------------------------------------------------===

  Error plantTemporaries(const std::vector<uint32_t> &Addrs);
  Error clearTemporaries();
  bool temporaryAt(uint32_t Addr) const { return TempSites.count(Addr); }
  size_t temporaryCount() const { return TempSites.size(); }

  /// Prefetches code bytes [From, To) into the block cache (best-effort,
  /// no-op without block transport) so the reads stepping is about to
  /// issue — the call scan, the plant's verification fetch — are served
  /// from resident lines instead of the wire.
  void warmCode(uint32_t From, uint32_t To);

  /// Prefetches several spans in one pipelined round: every non-resident
  /// span is posted at once and awaited together, so the batch costs one
  /// link latency instead of one per span. No-op without block transport.
  Error warmSpans(const std::vector<std::pair<mem::Location, size_t>> &Spans);

  /// Appends the spans a stopped target's state reads touch — the context
  /// block and the stack window below it (the stack grows down from just
  /// above the context) — for callers batching them with their own spans.
  void stopContextSpans(
      std::vector<std::pair<mem::Location, size_t>> &Spans) const;

  /// Warms the stop context and stack in one round; if the stop-time sp
  /// shows live frames below the default window, warms those in a second
  /// round. Frame walks and context reads after this are cache hits.
  Error warmStopContext();

  /// Completes every posted transfer still in flight (queued stores
  /// included) and returns the first deferred failure. The bench uses it
  /// to settle the wire before comparing memory images.
  Error flushWire() { return Wire ? Wire->awaitPosted() : Error::success(); }

  //===--------------------------------------------------------------------===
  // User breakpoints: numbered, listable, optionally conditional. The
  // plain Breakpoints map below stays the planting machinery; these
  // records give each user-visible breakpoint an identity, its sites, a
  // compiled condition, and hit/ignore counters.
  //===--------------------------------------------------------------------===

  struct UserBreakpoint {
    int Id = 0;
    std::string Spec;          ///< what the user typed (file:line or proc)
    std::string CondText;      ///< condition source, empty if none
    ps::Object Condition;      ///< compiled condition; Null if none
    std::vector<uint32_t> Addrs; ///< sorted unique site addresses
    uint64_t HitCount = 0;
    uint64_t Ignore = 0;
    /// The condition compiled to nub bytecode; empty when there is no
    /// condition (the record is then unconditional: count and stop) —
    /// for an *inexpressible* condition no record ships at all and the
    /// host keeps evaluating (see CondText/Bytecode in syncNubRecords).
    std::vector<uint8_t> Bytecode;
    bool NubManaged = false; ///< a record for this bp lives in the nub
    /// Host-side state (hits, ignore, condition) changed since the last
    /// ship; the record re-ships before the next auto-resume continue.
    bool Dirty = true;
  };

  /// Plants \p Addrs and records them as one numbered breakpoint.
  Expected<int> addUserBreakpoint(const std::string &Spec,
                                  const std::vector<uint32_t> &Addrs);
  /// Removes breakpoint \p Id, unplanting sites no other user breakpoint
  /// shares. Tolerates an exited target (the image is gone).
  Error deleteUserBreakpoint(int Id);
  /// Removes every user breakpoint; returns how many there were.
  Expected<size_t> deleteAllUserBreakpoints();
  UserBreakpoint *userBreakpoint(int Id);
  /// The user breakpoint owning a site at \p Addr, or null.
  UserBreakpoint *userBreakpointAt(uint32_t Addr);
  const std::map<int, UserBreakpoint> &userBreakpoints() const {
    return UserBps;
  }

  //===--------------------------------------------------------------------===
  // Nub-side condition and tracepoint records. The debugger compiles
  // conditions to machine-independent bytecode (nub/condbc.h), ships them
  // with the breakpoint's counters, and lets the nub settle false and
  // ignored hits in the target. Tracepoints are planted sites whose hits
  // never stop: the nub appends compiled-expression values and a register
  // subset to a bounded ring buffer the host drains in bulk.
  //===--------------------------------------------------------------------===

  /// Whether conditions, ignore counts, and tracepoints may be evaluated
  /// in the nub. LDB_NO_NUBCOND=1 at connect time forces host-side
  /// evaluation (the oracle the determinism suite compares against).
  bool nubCondEnabled() const { return NubCondEnabled; }
  void setNubCondEnabled(bool On) { NubCondEnabled = On; }

  struct Tracepoint {
    int Id = 0;
    std::string Spec;                  ///< what the user typed
    std::vector<std::string> ExprTexts;
    std::vector<std::vector<uint8_t>> Exprs; ///< compiled bytecode
    std::vector<uint32_t> Addrs;       ///< sorted unique site addresses
    uint32_t RegMask = 0;              ///< registers captured per hit
    uint64_t Hits = 0;                 ///< highest hit number drained
    bool NubManaged = false;
    bool Dirty = true;
  };

  /// Plants \p Addrs and records them as one numbered tracepoint. The
  /// record ships to the nub before the next auto-resume continue.
  Expected<int> addTracepoint(const std::string &Spec,
                              const std::vector<uint32_t> &Addrs,
                              std::vector<std::string> ExprTexts,
                              std::vector<std::vector<uint8_t>> Exprs,
                              uint32_t RegMask);
  /// Removes tracepoint \p Id, clearing its nub record (best-effort) and
  /// unplanting sites nothing else shares.
  Error deleteTracepoint(int Id);
  Tracepoint *tracepoint(int Id);
  const std::map<int, Tracepoint> &tracepoints() const { return Tracepoints; }

  /// Drains every buffered tracepoint record from the nub into the
  /// host-side log (one block-protocol exchange per reply's worth).
  /// No-op when nothing is nub-managed or the target is gone.
  Error drainTraceRecords();
  const std::vector<nub::condbc::TraceRecord> &traceLog() const {
    return TraceLog;
  }
  void clearTraceLog() { TraceLog.clear(); }
  /// Records the nub dropped because its ring buffer was full.
  uint64_t traceDropped() const { return TraceDropTotal; }

  //===--------------------------------------------------------------------===
  // Time travel: checkpointed recording in the nub, seeks back along the
  // retired-instruction timeline, reverse execution by re-running forward
  // from the nearest checkpoint (exec::reverseStep and friends).
  //===--------------------------------------------------------------------===

  /// Starts (or restarts) recording at the current stop: the nub begins
  /// taking incremental checkpoints every LDB_CHECKPOINT_SPACING retired
  /// instructions (default 20000), a self-contained keyframe every
  /// LDB_CHECKPOINT_KEYINT of them (default 8), and evicts old
  /// incremental chains once the store passes LDB_CHECKPOINT_BUDGET
  /// bytes (default unbounded).
  Error enableRecording();
  /// Stops recording and drops the nub's checkpoint store.
  Error disableRecording();
  bool recording() const { return RecordingOn; }

  /// The retired-instruction count at the last stop — the stop's
  /// coordinate on the recording timeline (0 when the nub reported none).
  uint64_t stopIcount() const {
    return Stop && Stop->HasIcount ? Stop->Icount : 0;
  }
  bool stopHasIcount() const { return Stop && Stop->HasIcount; }

  /// The nub's recording state: checkpoint count, store footprint,
  /// restore and replay counters.
  Expected<nub::TimelineInfo> timeline();

  /// Seeks to the nearest restorable checkpoint at or below \p Icount and
  /// reconciles everything host-side that must not survive time travel:
  /// every cached line (code lines included — the restored image carries
  /// the snapshot's break words, not today's), the per-procedure frame
  /// data, planted break words (every site that ever held one is swept to
  /// its current truth), and breakpoint counters (rewound from the
  /// per-stop timeline log, then overridden by the nub's restored
  /// absolute counters). Leaves the target stopped at the restored
  /// instant; re-executing forward is the caller's business.
  Error seekTo(uint64_t Icount);

  //===--------------------------------------------------------------------===
  // Execution-control counters (the `stats` command reports them next to
  // the transport counters).
  //===--------------------------------------------------------------------===

  struct ExecStats {
    uint64_t Steps = 0;         ///< stepToNextStop calls
    uint64_t Nexts = 0;         ///< stepOver calls
    uint64_t Finishes = 0;      ///< stepOut calls
    uint64_t TempPlants = 0;    ///< temporary sites planted
    uint64_t TempRemoves = 0;   ///< temporary sites removed
    uint64_t BpHits = 0;        ///< user-breakpoint hits
    uint64_t CondEvals = 0;     ///< condition evaluations
    uint64_t CondResumes = 0;   ///< auto-resumes on a false condition
    uint64_t IgnoreResumes = 0; ///< auto-resumes on an ignore count
    uint64_t CondShips = 0;     ///< condition/tracepoint records shipped
    uint64_t NubCondEvals = 0;  ///< nub-side condition evals (absolute)
    uint64_t NubLocalResumes = 0; ///< nub-side local resumes (absolute)
    uint64_t Seeks = 0;         ///< timeline seeks (checkpoint restores)
    uint64_t Reverses = 0;      ///< reverse-execution commands
    void reset() { *this = ExecStats(); }
  };
  ExecStats &execStats() { return Exec; }

private:
  friend class Scope;

  Error requireStopped() const;

  /// Absorbs the Stopped message's expedited context window into the
  /// cache (pipelined client only; no wire traffic).
  void seedStopWindow();

  /// Ships every dirty condition/tracepoint record; \p AnyManaged reports
  /// whether the nub holds at least one live record afterwards.
  Error syncNubRecords(bool &AnyManaged);
  /// Applies the last stop's counter tail: absolute nub counters fold
  /// into the host's hit/ignore/eval counters so `stats` and `info
  /// breakpoints` read the same with or without nub-side evaluation.
  void applyCounterSync();
  /// The (vfp register, per-site vfp offset) the nub needs to evaluate
  /// frame-relative bytecode at \p Addrs: the frame-pointer register and
  /// offset 0 on fp architectures, sp plus the procedure's frame size on
  /// zmips (from the runtime procedure table).
  Expected<std::vector<std::pair<uint32_t, uint32_t>>>
  vfpSites(const std::vector<uint32_t> &Addrs, uint32_t &VfpReg);

  std::string Name;
  ps::Interp &I;
  std::unique_ptr<nub::NubClient> Client;
  const Architecture *Arch = nullptr;
  nub::ContextLayout Layout{};
  mem::TransportStats Stats;
  mem::MemoryRef Wire; ///< what wire() hands out: the cache over the wire
  std::shared_ptr<mem::CachedMemory> Cache;
  ps::Object TargetDict; ///< per-session defs; tables too, when private
  ps::Object ArchDict;   ///< machine-dependent PostScript bindings
  std::shared_ptr<SharedImage> Image; ///< shared tables + index, if attached
  std::optional<nub::StopInfo> Stop;
  uint32_t RptAddr = 0;
  std::map<uint32_t, uint32_t> Breakpoints; ///< addr -> saved word
  std::map<uint32_t, FrameWalker::ProcFrameData> FrameDataCache;
  std::unique_ptr<StopSiteIndex> StopIndex; ///< built lazily, see stopIndex()
  /// Content hashes of the privately loaded texts, so the private-path
  /// index can attach an LDBI blob another load already compiled for the
  /// same image (lookup-only: the private path never compiles one).
  uint64_t PrivateSymHash = 0;
  uint64_t PrivateLtHash = 0;
  std::set<uint32_t> TempSites; ///< temporaries currently planted

  /// The pre-plant bytes of each code range plantTemporaries patched, so
  /// clearTemporaries restores with one store per range and no re-fetch.
  /// User break words inside a range were present before the plant and
  /// ride along unchanged in both directions.
  struct TempImage {
    uint32_t Begin = 0;
    std::vector<uint8_t> Bytes;
  };
  std::vector<TempImage> TempImages;
  std::map<int, UserBreakpoint> UserBps;
  int NextBpId = 1;
  std::map<int, Tracepoint> Tracepoints;
  int NextTpId = 1;
  std::vector<nub::condbc::TraceRecord> TraceLog;
  uint64_t TraceDropTotal = 0;
  bool NubCondEnabled = true;
  ExecStats Exec;

  bool RecordingOn = false;
  /// Every site that ever carried a break word: the seek sweep writes
  /// each one's *current* truth over whatever plant state the restored
  /// snapshot happened to capture. Never pruned — removal is what makes
  /// a site's restored break word stale.
  std::set<uint32_t> EverPlanted;
  /// Host-side breakpoint counters witnessed at each recorded stop, so a
  /// seek can rewind them. Nub-managed records override from the seek
  /// reply's restored counter tail; this log is what rewinds the
  /// host-evaluated rest.
  struct TimelineEvent {
    uint64_t Icount = 0;
    std::vector<std::tuple<int, uint64_t, uint64_t>> Bps; ///< id,hits,ignore
  };
  std::vector<TimelineEvent> TimelineLog;
  /// Snapshots the current stop's counters into the log (no-op unless
  /// recording); called on the way into every resume, so host-side bumps
  /// made while stopped ride with the stop they belong to.
  void logTimelineEvent();
  /// The seek half of the counter contract: rewind host counters from
  /// the log, truncate the log's future, then apply the reply's restored
  /// nub counters absolutely (a rewind cannot fold as a forward delta).
  void rewindCounters(const nub::StopInfo &Reply);
};

} // namespace ldb::core

#endif // LDB_CORE_TARGET_H
