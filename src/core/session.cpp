//===- core/session.cpp - one debugging session ----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/session.h"

#include "core/eval.h"
#include "core/symtab.h"
#include "support/byteorder.h"

#include <algorithm>
#include <cstdlib>
#include <set>

using namespace ldb;
using namespace ldb::core;

Expected<int> exec::addBreakAtLine(Target &T, const std::string &File,
                                   int Line) {
  Target::Scope S(T);
  Expected<std::vector<symtab::StopSite>> Sites =
      symtab::stopsForSource(T, File, Line);
  if (!Sites)
    return Sites.takeError();
  std::vector<uint32_t> Addrs;
  for (const symtab::StopSite &Site : *Sites)
    Addrs.push_back(Site.Addr);
  return T.addUserBreakpoint(File + ":" + std::to_string(Line), Addrs);
}

Expected<int> exec::addBreakAtProc(Target &T, const std::string &Proc) {
  Target::Scope S(T);
  Expected<symtab::StopSite> Site = symtab::entryStop(T, Proc);
  if (!Site)
    return Site.takeError();
  return T.addUserBreakpoint(Proc, {Site->Addr});
}

Error exec::setBreakpointCondition(Target &T, ExprSession &Session, int Id,
                                   const std::string &Text) {
  Target::Scope S(T);
  Target::UserBreakpoint *U = T.userBreakpoint(Id);
  if (!U)
    return Error::failure("no breakpoint " + std::to_string(Id));
  // Compile once against the breakpoint's first site: that fixes which
  // symbols the condition's names resolve to (locals become
  // frame-relative locations). Each hit then runs the compiled procedure
  // against the stopped frame's memory.
  Expected<symtab::StopSite> Site = symtab::stopForPc(T, U->Addrs.front());
  if (!Site)
    return Site.takeError();
  std::vector<uint8_t> Bc;
  Expected<ps::Object> Proc = compileExpression(T, Session, Text, *Site, &Bc);
  if (!Proc)
    return Proc.takeError();
  U->CondText = Text;
  U->Condition = *Proc;
  // The nub half: when the server could express the condition as machine
  // bytecode it ships to the nub before the next continue; when it could
  // not (floats, calls, aggregates) Bc stays empty and every hit comes
  // home for host evaluation.
  U->Bytecode = std::move(Bc);
  U->Dirty = true;
  return Error::success();
}

Expected<int> exec::addTracepoint(Target &T, ExprSession &Session,
                                  const std::string &Spec,
                                  const std::vector<std::string> &ExprTexts) {
  if (!T.nubCondEnabled())
    return Error::failure(
        "tracepoints need nub-side evaluation (disabled by LDB_NO_NUBCOND)");
  if (ExprTexts.empty())
    return Error::failure("tracepoint needs at least one expression");
  Target::Scope S(T);
  std::vector<uint32_t> Addrs;
  size_t Colon = Spec.rfind(':');
  if (Colon != std::string::npos) {
    Expected<std::vector<symtab::StopSite>> Sites = symtab::stopsForSource(
        T, Spec.substr(0, Colon), std::atoi(Spec.c_str() + Colon + 1));
    if (!Sites)
      return Sites.takeError();
    for (const symtab::StopSite &Site : *Sites)
      Addrs.push_back(Site.Addr);
  } else {
    Expected<symtab::StopSite> Site = symtab::entryStop(T, Spec);
    if (!Site)
      return Site.takeError();
    Addrs.push_back(Site->Addr);
  }
  if (Addrs.empty())
    return Error::failure("tracepoint has no stopping points");
  // Like a condition, each expression compiles once against the first
  // site; unlike a condition it must come out as nub bytecode, whole.
  Expected<symtab::StopSite> Site = symtab::stopForPc(T, Addrs.front());
  if (!Site)
    return Site.takeError();
  std::vector<std::vector<uint8_t>> Exprs;
  for (const std::string &Text : ExprTexts) {
    std::vector<uint8_t> Bc;
    Expected<ps::Object> Proc = compileExpression(T, Session, Text, *Site, &Bc);
    if (!Proc)
      return Error::failure("tracepoint expression '" + Text +
                            "': " + Proc.message());
    if (Bc.empty())
      return Error::failure("tracepoint expression '" + Text +
                            "' cannot run in the nub (floats, calls, and "
                            "aggregates stay host-side)");
    Exprs.push_back(std::move(Bc));
  }
  // Each record also carries the stack registers, enough to place the hit
  // in a frame chain after the fact.
  const target::TargetDesc &D = *T.arch().Desc;
  uint32_t RegMask = 1u << D.SpReg;
  if (D.FpReg >= 0)
    RegMask |= 1u << static_cast<unsigned>(D.FpReg);
  return T.addTracepoint(Spec, Addrs, ExprTexts, std::move(Exprs), RegMask);
}

Expected<bool> exec::breakpointWantsStop(Target &T,
                                         Target::UserBreakpoint &U) {
  Target::ExecStats &ES = T.execStats();
  ++U.HitCount;
  ++ES.BpHits;
  // Host-side counting diverges from the nub's shipped record; re-ship
  // before the next auto-resume continue.
  U.Dirty = true;
  if (U.Ignore > 0) {
    --U.Ignore;
    ++ES.IgnoreResumes;
    return false;
  }
  if (U.Condition.Ty == ps::Type::Null)
    return true;
  ++ES.CondEvals;
  Expected<bool> V = evalCondition(T, U.Condition);
  if (!V)
    return Error::failure("breakpoint " + std::to_string(U.Id) +
                          " condition '" + U.CondText + "': " + V.message());
  if (!*V)
    ++ES.CondResumes;
  return *V;
}

namespace {

/// The next stopping-point address strictly after \p From in \p P, or
/// \p P.End (0 for the last procedure) when the statement region runs to
/// the procedure's end.
uint32_t nextLocusAddrAfter(const StopSiteIndex::Proc &P, uint32_t From) {
  auto It = std::upper_bound(
      P.Loci.begin(), P.Loci.end(), From,
      [](uint32_t V, const StopSiteIndex::Locus &L) { return V < L.Addr; });
  return It == P.Loci.end() ? P.End : It->Addr;
}

/// Adds every stopping point of \p P (loading its loci if needed).
Error addProcSites(StopSiteIndex &Idx, StopSiteIndex::Proc &P,
                   std::set<uint32_t> &Sites) {
  if (Error E = Idx.ensureLoaded(P))
    return E;
  for (const StopSiteIndex::Locus &L : P.Loci)
    Sites.insert(L.Addr);
  return Error::success();
}

/// Call-scan regions are capped: scanning is O(region), and a statement
/// region is small. The cap only bites in procedures with no upper bound
/// (the image's last) or without symbols (startup code).
constexpr uint32_t ScanCap = 16 * 1024;

/// Clamps a call-scan region [From, To) to the cap; To == 0 means "no
/// upper bound known".
void clampScan(uint32_t From, uint32_t &To) {
  if (To == 0 || To - From > ScanCap)
    To = From + ScanCap;
}

/// Scans the pre-clamped code range [From, To) for direct calls and adds
/// the callee's entry stopping point for each call that targets a known
/// procedure entry. The compiler emits every call as Jal with an
/// absolute word-address target, and every loop's branch targets land at
/// or before a stopping point, so the region between two adjacent
/// stopping points contains exactly the calls the current statement can
/// make. Only the entry locus is planted: it sits right after the
/// prologue at the callee's lowest stopping-point address, so execution
/// reaches it before any other site in the callee — planting the rest
/// would change nothing about where the step stops.
Error addCalleeSites(Target &T, StopSiteIndex &Idx, uint32_t From,
                     uint32_t To, std::set<uint32_t> &Sites) {
  if (To <= From)
    return Error::success();
  std::vector<uint8_t> Block(To - From);
  if (Error E = T.wire()->fetchBlock(
          mem::Location::absolute(mem::SpCode, From), Block.size(),
          Block.data()))
    return E;
  const target::TargetDesc &Desc = *T.arch().Desc;
  for (uint32_t Off = 0; Off + 4 <= Block.size(); Off += 4) {
    uint32_t Word = static_cast<uint32_t>(
        unpackInt(Block.data() + Off, 4, Desc.Order));
    target::Instr In;
    if (!Desc.Enc.decode(Word, In) || In.Opc != target::Op::Jal)
      continue;
    uint32_t Callee = static_cast<uint32_t>(In.Imm) * 4;
    Expected<StopSiteIndex::Proc *> CP = Idx.procContaining(Callee);
    if (!CP || (*CP)->Addr != Callee)
      continue; // not a procedure entry: not a call we understand
    if (Error E = Idx.ensureLoaded(**CP))
      return E;
    if (const StopSiteIndex::Locus *L = StopSiteIndex::entryLocus(**CP))
      Sites.insert(L->Addr);
  }
  return Error::success();
}

/// The scoped-stepping site set: the current procedure's stopping
/// points; at the exit stop, the caller's as well (the return is about
/// to happen); and, when stepping into calls, the entries of the
/// procedures the current statement region calls. The seed planted every
/// stopping point of every procedure instead — and forced every deferred
/// symtab entry doing it.
///
/// Before reading anything, the regions the step will touch are warmed
/// into the block cache as one aligned transfer per cluster, so the call
/// scan and the plant's verification fetch are cache hits instead of
/// separate round trips.
/// One pipelined warm round for everything the step is about to read,
/// sized from the stop pc the nub reported in the Stopped message: the
/// context block and stack window (the frame and context reads), the
/// current procedure's code, and the likely call-scan region. The hint
/// only warms — every semantic read below still goes through the context,
/// and now hits the cache. Best-effort: a span that cannot be warmed just
/// means the reads pay their own way.
void warmStepReads(Target &T, StopSiteIndex &Idx) {
  if (!T.stopped())
    return;
  uint32_t Hint = T.lastStop().Pc;
  std::vector<std::pair<mem::Location, size_t>> Spans;
  T.stopContextSpans(Spans);
  Expected<StopSiteIndex::Proc *> POr = Idx.procContaining(Hint);
  if (POr && !Idx.ensureLoaded(**POr)) {
    StopSiteIndex::Proc &P = **POr;
    uint32_t From = 0, To = 0;
    if (P.HasSymbols && !P.Loci.empty()) {
      From = P.Loci.front().Addr;
      To = P.Loci.back().Addr + 4;
    }
    // The scan region can run past the procedure's sites (startup code,
    // the last procedure): extend the span to cover it.
    uint32_t ScanFrom = Hint, ScanTo = P.HasSymbols
                                          ? nextLocusAddrAfter(P, Hint)
                                          : P.End;
    clampScan(ScanFrom, ScanTo);
    if (From == To) {
      From = ScanFrom;
      To = ScanTo;
    } else {
      From = std::min(From, ScanFrom);
      To = std::max(To, ScanTo);
    }
    constexpr uint32_t WarmCap = 64 * 1024;
    if (To > From && To - From <= WarmCap)
      Spans.push_back({mem::Location::absolute(mem::SpCode, From),
                       static_cast<size_t>(To - From)});
  }
  (void)T.warmSpans(Spans);
}

Error collectStepSites(Target &T, bool IntoCalls,
                       std::set<uint32_t> &Sites) {
  Expected<StopSiteIndex *> IdxOr = T.stopIndex();
  if (!IdxOr)
    return IdxOr.takeError();
  StopSiteIndex &Idx = **IdxOr;
  warmStepReads(T, Idx);
  Expected<uint32_t> Pc = T.ctxPc();
  if (!Pc)
    return Pc.takeError();
  Expected<StopSiteIndex::Proc *> POr = Idx.procContaining(*Pc);
  if (!POr)
    return POr.takeError();
  StopSiteIndex::Proc &P = **POr;
  if (Error E = Idx.ensureLoaded(P))
    return E;

  // The exact stopping point we are at, when there is one.
  const StopSiteIndex::Locus *Cur = nullptr;
  auto It = std::lower_bound(
      P.Loci.begin(), P.Loci.end(), *Pc,
      [](const StopSiteIndex::Locus &L, uint32_t V) { return L.Addr < V; });
  if (It != P.Loci.end() && It->Addr == *Pc)
    Cur = &*It;
  bool AtExit = Cur && Cur->Addr == P.Loci.back().Addr;

  // At the exit stop the next stop is in the caller: find it up front so
  // its sites share the warming pass. Frame-walk errors degrade
  // gracefully — _start has no caller, and the current procedure's sites
  // are still planted.
  StopSiteIndex::Proc *CallerProc = nullptr;
  uint32_t CallerPc = 0;
  if (AtExit) {
    Expected<FrameInfo> Caller = T.frame(1);
    if (Caller) {
      Expected<StopSiteIndex::Proc *> CPOr = Idx.procContaining(Caller->Pc);
      if (CPOr) {
        CallerProc = *CPOr;
        CallerPc = Caller->Pc;
        if (Error E = Idx.ensureLoaded(*CallerProc))
          return E;
      }
    }
  }

  // The call-scan region. At the exit stop a multi-call statement
  // (fib(n-1) + fib(n-2)) calls again after the return, before the
  // caller's next stopping point: scan the caller's post-return region.
  // Otherwise scan [here, next stopping point); without symbols for this
  // procedure (stopped in startup code) the whole remainder is the
  // region — that is how the first step out of _start reaches main's
  // entry.
  bool HaveScan = false;
  uint32_t ScanFrom = 0, ScanTo = 0;
  if (AtExit) {
    if (IntoCalls && CallerProc && CallerProc->HasSymbols) {
      ScanFrom = CallerPc + 4;
      ScanTo = nextLocusAddrAfter(*CallerProc, CallerPc);
      HaveScan = true;
    }
  } else if (IntoCalls || !P.HasSymbols) {
    ScanFrom = Cur ? Cur->Addr : *Pc;
    ScanTo = P.HasSymbols ? nextLocusAddrAfter(P, ScanFrom) : P.End;
    HaveScan = true;
  }
  if (HaveScan)
    clampScan(ScanFrom, ScanTo);

  // Warm whatever the hint round missed (the caller's code at an exit
  // stop, a scan region that moved) in one more pipelined round; spans
  // already resident cost nothing.
  {
    std::vector<std::pair<uint32_t, uint32_t>> Code;
    auto NoteProc = [&Code](const StopSiteIndex::Proc &Q) {
      if (Q.HasSymbols && !Q.Loci.empty())
        Code.push_back({Q.Loci.front().Addr, Q.Loci.back().Addr + 4});
    };
    NoteProc(P);
    if (CallerProc)
      NoteProc(*CallerProc);
    if (HaveScan && ScanFrom < ScanTo)
      Code.push_back({ScanFrom, ScanTo});
    std::sort(Code.begin(), Code.end());
    constexpr uint32_t MergeGap = 1024, WarmCap = 64 * 1024;
    std::vector<std::pair<mem::Location, size_t>> Spans;
    for (size_t I = 0; I < Code.size();) {
      auto [From, To] = Code[I++];
      while (I < Code.size() && Code[I].first <= To + MergeGap) {
        To = std::max(To, Code[I].second);
        ++I;
      }
      if (To - From <= WarmCap)
        Spans.push_back({mem::Location::absolute(mem::SpCode, From),
                         static_cast<size_t>(To - From)});
    }
    (void)T.warmSpans(Spans);
  }

  if (Error E = addProcSites(Idx, P, Sites))
    return E;
  if (CallerProc)
    if (Error E = addProcSites(Idx, *CallerProc, Sites))
      return E;
  if (HaveScan)
    if (Error E = addCalleeSites(T, Idx, ScanFrom, ScanTo, Sites))
      return E;
  return Error::success();
}

/// After a stop: one pipelined round warming everything the stop's
/// readers touch first — the frame-depth judging in next/finish, the
/// user's print/backtrace, the next step's call scan. Any restore
/// stores already queued ride the same round. Best-effort.
void warmAfterStop(Target &T) {
  if (!T.stopped())
    return;
  Expected<StopSiteIndex *> IdxOr = T.stopIndex();
  if (IdxOr)
    warmStepReads(T, **IdxOr);
}

} // namespace

Error exec::stepToNextStop(Target &T) {
  Target::Scope S(T);
  ++T.execStats().Steps;
  std::set<uint32_t> Sites;
  if (Error E = collectStepSites(T, /*IntoCalls=*/true, Sites))
    return E;
  // One batch plant and one batch removal: a handful of block transfers
  // instead of a round trip per stopping point.
  if (Error E = T.plantTemporaries(
          std::vector<uint32_t>(Sites.begin(), Sites.end())))
    return E;
  Error RunError = T.resume();
  Error E = T.clearTemporaries();
  if (!RunError && E)
    RunError = std::move(E);
  if (!RunError)
    warmAfterStop(T);
  return RunError;
}

Error exec::stepOver(Target &T) {
  Target::Scope S(T);
  ++T.execStats().Nexts;
  std::set<uint32_t> Sites;
  if (Error E = collectStepSites(T, /*IntoCalls=*/false, Sites))
    return E;
  // Depth is judged by the virtual frame pointer: the stack grows down,
  // so a deeper frame has a smaller vfp. Without a walkable frame
  // (stopped in startup code) the first stop wins — a plain step.
  bool HaveVfp = false;
  uint32_t StartVfp = 0;
  if (Expected<FrameInfo> F = T.frame(0)) {
    HaveVfp = true;
    StartVfp = F->Vfp;
  }
  if (Error E = T.plantTemporaries(
          std::vector<uint32_t>(Sites.begin(), Sites.end())))
    return E;
  Error RunError = Error::success();
  for (uint64_t Guard = 0;; ++Guard) {
    if (Guard > 1000000) {
      RunError = Error::failure("next did not converge");
      break;
    }
    RunError = T.resume();
    if (!RunError)
      warmAfterStop(T);
    if (RunError || T.exited() || !T.stopped() ||
        T.lastStop().Signo != nub::SigTrap || !HaveVfp)
      break;
    Expected<FrameInfo> F = T.frame(0);
    if (!F)
      break; // cannot judge depth: surface the stop
    if (F->Vfp >= StartVfp)
      break; // the same frame or a shallower one: the step is done
    // A deeper frame: a call out of this statement (recursion included).
    // Only a user breakpoint that wants the stop may keep it.
    Expected<uint32_t> Pc = T.ctxPc();
    if (!Pc) {
      RunError = Pc.takeError();
      break;
    }
    if (Target::UserBreakpoint *U = T.userBreakpointAt(*Pc)) {
      Expected<bool> Want = breakpointWantsStop(T, *U);
      if (!Want) {
        RunError = Want.takeError();
        break;
      }
      if (*Want)
        break;
    }
  }
  Error E = T.clearTemporaries();
  if (!RunError && E)
    RunError = std::move(E);
  return RunError;
}

Error exec::stepOut(Target &T) {
  Target::Scope S(T);
  ++T.execStats().Finishes;
  Expected<FrameInfo> Caller = T.frame(1);
  if (!Caller)
    return Error::failure("no caller frame to finish to");
  Expected<StopSiteIndex *> IdxOr = T.stopIndex();
  if (!IdxOr)
    return IdxOr.takeError();
  StopSiteIndex &Idx = **IdxOr;
  Expected<StopSiteIndex::Proc *> CPOr = Idx.procContaining(Caller->Pc);
  if (!CPOr)
    return CPOr.takeError();
  StopSiteIndex::Proc &CP = **CPOr;
  if (Error E = Idx.ensureLoaded(CP))
    return E;
  if (!CP.HasSymbols)
    return Error::failure("no debugging symbols for " + CP.Name);
  std::vector<uint32_t> Addrs;
  for (const StopSiteIndex::Locus &L : CP.Loci)
    Addrs.push_back(L.Addr);
  uint32_t TargetVfp = Caller->Vfp;
  if (Error E = T.plantTemporaries(Addrs))
    return E;
  Error RunError = Error::success();
  for (uint64_t Guard = 0;; ++Guard) {
    if (Guard > 1000000) {
      RunError = Error::failure("finish did not converge");
      break;
    }
    RunError = T.resume();
    if (!RunError)
      warmAfterStop(T);
    if (RunError || T.exited() || !T.stopped() ||
        T.lastStop().Signo != nub::SigTrap)
      break;
    Expected<FrameInfo> F = T.frame(0);
    if (!F)
      break;
    if (F->Vfp >= TargetVfp)
      break; // back in the caller (or above it)
    // Still below the caller: recursion through the caller's own
    // stopping points, or a user breakpoint.
    Expected<uint32_t> Pc = T.ctxPc();
    if (!Pc) {
      RunError = Pc.takeError();
      break;
    }
    if (Target::UserBreakpoint *U = T.userBreakpointAt(*Pc)) {
      Expected<bool> Want = breakpointWantsStop(T, *U);
      if (!Want) {
        RunError = Want.takeError();
        break;
      }
      if (*Want)
        break;
    }
  }
  Error E = T.clearTemporaries();
  if (!RunError && E)
    RunError = std::move(E);
  return RunError;
}

//===----------------------------------------------------------------------===//
// Reverse execution (checkpoint restore + deterministic forward replay)
//===----------------------------------------------------------------------===//

namespace {

/// One replayed stop on the way from a checkpoint back up to "now".
/// (Icount, Pc) identifies a stop uniquely along one timeline: equal
/// icounts mean no instruction retired between the stops — adjacent
/// planted sites — whose pcs necessarily differ, and a revisited pc (a
/// loop) has retired instructions in between.
struct ReplayStop {
  uint64_t Icount = 0;
  uint32_t Pc = 0;
  uint32_t Vfp = 0;
  bool HasVfp = false;
};

enum class ReverseKind { Step, Next, Finish, Continue };

Error reverseCommon(Target &T, ReverseKind Kind) {
  if (!T.recording())
    return Error::failure("recording is off (use `record on`)");
  if (!T.stopped() && !T.exited())
    return Error::failure("the process has not stopped yet");
  if (!T.stopHasIcount())
    return Error::failure(
        "the nub reported no instruction count for this stop");
  ++T.execStats().Reverses;

  const uint64_t Now = T.stopIcount();
  const bool NowExited = T.exited();
  const uint32_t NowPc = NowExited ? 0 : T.lastStop().Pc;

  // The depth reference for reverse-next/finish: the frame we are in
  // now. Without a walkable frame reverse-next degrades to reverse-step.
  bool HaveVfp = false;
  uint32_t CurVfp = 0;
  if ((Kind == ReverseKind::Next || Kind == ReverseKind::Finish) &&
      T.stopped())
    if (Expected<FrameInfo> F = T.frame(0)) {
      HaveVfp = true;
      CurVfp = F->Vfp;
    }
  if (Kind == ReverseKind::Finish && !HaveVfp)
    return Error::failure("no frame to finish out of in reverse");

  auto qualifies = [&](const ReplayStop &S) {
    switch (Kind) {
    case ReverseKind::Next:
      return !HaveVfp || (S.HasVfp && S.Vfp >= CurVfp);
    case ReverseKind::Finish:
      return S.HasVfp && S.Vfp > CurVfp;
    default:
      return true;
    }
  };
  // The replay op matches the command family: stepping stops enumerate
  // every stopping point reached; continue stops honor breakpoint
  // conditions and ignore counts exactly as the forward run did (the
  // seek rewound their counters, so they re-decide identically).
  auto forwardOp = [&T, Kind] {
    return Kind == ReverseKind::Continue ? exec::continueToStop(T)
                                         : exec::stepToNextStop(T);
  };

  // Pass 1: restore the nearest checkpoint below the search ceiling and
  // enumerate the stops forward re-execution passes through; the newest
  // qualifying one strictly before now is the destination. An interval
  // without one sends the search a checkpoint further back — only over
  // the not-yet-searched range — bottoming out at the recording's first
  // keyframe.
  uint64_t SeekBelow = Now;
  uint64_t SearchedDown = UINT64_MAX; // icounts >= this are already searched
  uint64_t PrevBase = UINT64_MAX;
  for (;;) {
    if (SeekBelow == 0) {
      if (Kind == ReverseKind::Finish)
        return Error::failure("no shallower frame in the recorded history");
      return T.seekTo(0); // the recording's first keyframe
    }
    if (Error E = T.seekTo(SeekBelow - 1))
      return E;
    const uint64_t Base = T.stopIcount();
    if (Base == PrevBase) {
      // The store has nothing older: settle at the recording floor.
      if (Kind == ReverseKind::Finish)
        return Error::failure("no shallower frame in the recorded history");
      return T.seekTo(Base);
    }
    std::vector<ReplayStop> Stops;
    for (uint64_t Guard = 0; Guard <= 5000000; ++Guard) {
      if (Error E = forwardOp())
        return E;
      if (T.exited() || !T.stopped())
        break; // the exit is "now" (or past everything recorded before it)
      ReplayStop S;
      S.Icount = T.stopIcount();
      S.Pc = T.lastStop().Pc;
      if (SearchedDown == UINT64_MAX) {
        // First interval: the ceiling is the current stop itself.
        if (S.Icount > Now || (S.Icount == Now && S.Pc == NowPc))
          break;
      } else if (S.Icount > SearchedDown) {
        break; // into territory an earlier interval already searched
      }
      if (Kind == ReverseKind::Next || Kind == ReverseKind::Finish)
        if (Expected<FrameInfo> F = T.frame(0)) {
          S.HasVfp = true;
          S.Vfp = F->Vfp;
        }
      Stops.push_back(S);
    }
    size_t Chosen = Stops.size();
    for (size_t K = Stops.size(); K-- > 0;)
      if (qualifies(Stops[K])) {
        Chosen = K;
        break;
      }
    if (Chosen < Stops.size()) {
      // Pass 2: land exactly there — re-restore the same checkpoint
      // (its icount is an exact key) and replay the counted ops.
      // Determinism makes the replay byte-identical to pass 1.
      const ReplayStop Dest = Stops[Chosen];
      if (Error E = T.seekTo(Base))
        return E;
      for (size_t K = 0; K <= Chosen; ++K)
        if (Error E = forwardOp())
          return E;
      if (!T.stopped() || T.stopIcount() != Dest.Icount ||
          T.lastStop().Pc != Dest.Pc)
        return Error::failure(
            "reverse re-execution diverged from the recording");
      return Error::success();
    }
    SearchedDown = Base;
    PrevBase = Base;
    SeekBelow = Base;
  }
}

} // namespace

Error exec::reverseStep(Target &T) {
  Target::Scope S(T);
  return reverseCommon(T, ReverseKind::Step);
}

Error exec::reverseNext(Target &T) {
  Target::Scope S(T);
  return reverseCommon(T, ReverseKind::Next);
}

Error exec::reverseFinish(Target &T) {
  Target::Scope S(T);
  return reverseCommon(T, ReverseKind::Finish);
}

Error exec::reverseContinue(Target &T) {
  Target::Scope S(T);
  return reverseCommon(T, ReverseKind::Continue);
}

Error exec::continueToStop(Target &T) {
  Target::Scope S(T);
  // Any stop this returns at is a real stop: warm the reads the user's
  // next command will issue, and bring buffered tracepoint records home
  // with it (best-effort — a failed drain loses trace data, not the
  // stop). Rejected hits skip the warm on purpose: deciding a condition
  // needs only the expedited stop window the nub already pushed, so a
  // false hit must not re-fetch the frame-0 context or the stop site's
  // code span (with code retention off that warm was a block fetch per
  // rejected hit).
  auto stopHere = [&T] {
    warmAfterStop(T);
    (void)T.drainTraceRecords();
    return Error::success();
  };
  for (uint64_t Guard = 0; Guard <= 5000000; ++Guard) {
    if (Error E = T.resume(/*AllowAutoResume=*/true))
      return E;
    if (T.exited() || !T.stopped() ||
        T.lastStop().Signo != nub::SigTrap)
      return stopHere();
    // A nub-decided stop already counted the hit and settled the
    // condition in the target; re-deciding here would double-count.
    if (T.lastStop().Decision == nub::StopNubDecided)
      return stopHere();
    Expected<uint32_t> Pc = T.ctxPc();
    if (!Pc)
      return Pc.takeError();
    Target::UserBreakpoint *U = T.userBreakpointAt(*Pc);
    if (!U)
      return stopHere(); // a trap we did not plant: surface it
    if (T.lastStop().Decision == nub::StopNubEvalFailed &&
        U->Condition.Ty != ps::Type::Null) {
      // The nub counted the hit but its bytecode could not settle the
      // condition (a bad load, a divide by zero); finish the decision
      // here with the full evaluator.
      Target::ExecStats &ES = T.execStats();
      ++ES.CondEvals;
      Expected<bool> V = evalCondition(T, U->Condition);
      if (!V)
        return Error::failure("breakpoint " + std::to_string(U->Id) +
                              " condition '" + U->CondText +
                              "': " + V.message());
      if (*V)
        return stopHere();
      ++ES.CondResumes;
      continue;
    }
    Expected<bool> Want = breakpointWantsStop(T, *U);
    if (!Want)
      return Want.takeError();
    if (*Want)
      return stopHere();
  }
  return Error::failure("continue did not converge");
}
