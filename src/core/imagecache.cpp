//===- core/imagecache.cpp - shared per-image artifacts --------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/imagecache.h"

#include "core/symblob.h"
#include "core/symtab.h"
#include "core/target.h"
#include "postscript/fastload.h"

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

Error core::verifyLoadedImage(Interp &I, const std::string &ArchName,
                              uint32_t &RptAddr) {
  Object LT;
  if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict)
    return Error::failure("loader table did not define /loadertable");
  if (const Object *Rpt = LT.DictVal->find("rpt"))
    RptAddr = static_cast<uint32_t>(Rpt->IntVal);

  // Consistency check (paper Sec 2): the anchor-symbol names in the
  // top-level dictionary must all appear in the loader table, ensuring
  // the symbol table matches the object code.
  Object Top;
  if (!I.lookup("symtab", Top) || Top.Ty != Type::Dict)
    return Error::success(); // no symbols loaded; nothing to verify
  Expected<Object> SymArch = symtab::field(I, Top, "architecture");
  if (SymArch && SymArch->text() != ArchName)
    return Error::failure("symbol table is for " + SymArch->text() +
                          " but the target runs " + ArchName);
  Expected<Object> Anchors = symtab::field(I, Top, "anchors");
  if (!Anchors)
    return Anchors.takeError();
  Expected<Object> AnchorMap = symtab::field(I, LT, "anchormap");
  if (!AnchorMap)
    return AnchorMap.takeError();
  for (const Object &A : *Anchors->ArrVal)
    if (!AnchorMap->DictVal->contains(A.text()))
      return Error::failure(
          "symbol table does not match the object code: anchor " + A.text() +
          " is missing from the loader table");
  return Error::success();
}

size_t ImageRepository::sourceBytes() const {
  size_t N = 0;
  for (const auto &[Key, Img] : Images)
    N += Img->sourceBytes();
  return N;
}

Expected<std::shared_ptr<SharedImage>>
ImageRepository::acquire(Target &For, const std::string &PsSymtab,
                         const std::string &LoaderTable) {
  const std::string &ArchName = For.arch().Desc->Name;
  // Content-hash key over the triple: same architecture and same texts
  // means the interpreted dictionaries would come out identical.
  uint64_t H1 = fastload::contentHash(ArchName + "\n" + PsSymtab);
  uint64_t H2 = fastload::contentHash(LoaderTable);
  uint64_t Key = symblob::combineKeys(H1, H2);
  auto It = Images.find(Key);
  if (It != Images.end())
    return It->second;

  auto Img = std::make_shared<SharedImage>();
  Img->Key = Key;
  Img->Arch = ArchName;
  Img->SrcBytes = PsSymtab.size() + LoaderTable.size();
  Img->Dict = Object::makeDict(std::make_shared<DictImpl>());

  // Interpret the texts with the acquiring target's architecture
  // dictionary below the image dictionary — the same stack shape a
  // private load sees (Target::Scope), so machine-dependent names
  // resolve identically; the defs land in the shared image dictionary.
  // The hooks are the acquiring target's: any LazyData forced during the
  // verification below reads image constants, which are the same through
  // every target running this image.
  Interp &I = For.interp();
  size_t Depth = I.dictStack().size();
  DebugHooks *SavedHooks = I.Hooks;
  I.dictStack().push_back(For.archDict());
  I.dictStack().push_back(Img->Dict);
  I.Hooks = &For;

  Error E = Error::success();
  if (!PsSymtab.empty())
    E = fastload::Cache::global().run(I, PsSymtab);
  if (!E && !LoaderTable.empty())
    E = fastload::Cache::global().run(I, LoaderTable);
  if (!E && !LoaderTable.empty())
    E = verifyLoadedImage(I, ArchName, Img->Rpt);
  Img->Index = std::make_unique<StopSiteIndex>(I);
  if (!E && !LoaderTable.empty())
    E = Img->Index->build();

  // The compiled debug info (LDBI): prefer a cached blob for this key;
  // compile one on the first miss. Compiling forces every symtab entry —
  // into the shared dictionary, so the one-time cost pays for the whole
  // fleet — and a failure is never fatal: the interpreter path stays
  // behind the index.
  if (!E && !LoaderTable.empty() && symblob::Cache::global().enabled()) {
    symblob::Cache &BC = symblob::Cache::global();
    std::shared_ptr<const symblob::Blob> B = BC.acquire(Key);
    if (!B) {
      Expected<std::vector<uint8_t>> Bytes =
          symblob::compile(I, symblob::Params{Key, ArchName});
      if (Bytes) {
        BC.store(Key, Bytes.take());
        B = BC.acquire(Key);
      }
    }
    Img->Index->attachBlob(std::move(B));
  }

  I.dictStack().resize(Depth);
  I.Hooks = SavedHooks;
  if (E)
    return E;
  Images[Key] = Img;
  return Img;
}
