//===- core/symtab.cpp - reading PostScript symbol tables ------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/symtab.h"

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

namespace {

/// The entry's /name for error context, when it is already a plain
/// string (never forces). Empty when unavailable.
std::string entryName(const Object &Dict) {
  if (Dict.Ty != Type::Dict)
    return std::string();
  const Object *Found = Dict.DictVal->find("name");
  if (!Found || Found->Ty != Type::String)
    return std::string();
  return Found->text();
}

/// Renders " of 'name'" when the entry has a usable /name.
std::string ofEntry(const Object &Dict) {
  std::string Name = entryName(Dict);
  return Name.empty() ? std::string() : " of '" + Name + "'";
}

} // namespace

Error symtab::force(Interp &I, Object &V) {
  // Deferred symbol tables reference entries by literal name from their
  // containers; resolve the indirection first.
  if (V.Ty == Type::Name && !V.Exec) {
    Object Bound;
    if (!I.lookup(V.Atom, Bound))
      return Error::failure("undefined symbol-table entry " + V.text());
    V = Bound;
  }
  if (!V.Exec || (V.Ty != Type::Array && V.Ty != Type::String))
    return Error::success();
  size_t Depth = I.opStack().size();
  PsStatus S = I.exec(V);
  if (S == PsStatus::Failed) {
    I.opStack().resize(Depth);
    return Error::failure("deferred value failed: " + I.errorMessage());
  }
  if (S != PsStatus::Ok || I.opStack().size() != Depth + 1) {
    I.opStack().resize(Depth);
    return Error::failure("deferred value did not yield one result");
  }
  V = I.opStack().back();
  I.opStack().pop_back();
  return Error::success();
}

bool symtab::hasField(const Object &Dict, const std::string &Key) {
  return Dict.Ty == Type::Dict && Dict.DictVal->contains(Key);
}

Expected<ps::Object> symtab::field(Interp &I, const Object &Dict,
                                   const std::string &Key) {
  if (Dict.Ty != Type::Dict)
    return Error::failure("symbol-table entry is not a dictionary");
  Object *Found = Dict.DictVal->find(Key);
  if (!Found)
    return Error::failure("symbol-table entry" + ofEntry(Dict) +
                          " has no /" + Key);
  Object V = *Found;
  // Force only deferred (executable-string) values here: procedures such
  // as /printer are values in their own right and must not run.
  if (V.Exec && V.Ty == Type::String) {
    if (Error E = force(I, V))
      return Error::failure("forcing /" + Key + ofEntry(Dict) + ": " +
                            E.message());
    // Memoize: the literal replaces the procedure. Re-find, since forcing
    // can define new entries in the same dict.
    Dict.DictVal->set(Key, V);
  }
  return V;
}

Expected<ps::Object> symtab::topLevel(Interp &I) {
  Object Top;
  if (!I.lookup("symtab", Top) || Top.Ty != Type::Dict)
    return Error::failure("no symbol table loaded for this target");
  return Top;
}

Expected<ps::Object> symtab::procEntryByName(Interp &I,
                                             const std::string &Name) {
  Expected<Object> Top = topLevel(I);
  if (!Top)
    return Top.takeError();
  Expected<Object> Externs = field(I, *Top, "externs");
  if (!Externs)
    return Externs.takeError();
  const Object *Found = Externs->DictVal->find(Name);
  if (!Found)
    return Error::failure("no symbol named " + Name);
  Object Entry = *Found;
  if (Error E = force(I, Entry))
    return Error::failure("forcing entry for '" + Name + "': " +
                          E.message());
  Externs->DictVal->set(Name, Entry);
  return Entry;
}

namespace {

/// Builds a StopSite from one loci element: [ line codeoffset visible ].
Expected<symtab::StopSite> siteFromLocus(Interp &I, const Object &Locus,
                                         int Index, uint32_t ProcAddr,
                                         const std::string &ProcName,
                                         Object ProcEntry) {
  if (Locus.Ty != Type::Array || Locus.ArrVal->size() < 3)
    return Error::failure("malformed stopping point");
  symtab::StopSite Site;
  Site.Line = static_cast<int>((*Locus.ArrVal)[0].IntVal);
  Site.Addr = ProcAddr + static_cast<uint32_t>((*Locus.ArrVal)[1].IntVal);
  Site.Index = Index;
  Site.ProcAddr = ProcAddr;
  Site.ProcName = ProcName;
  Site.ProcEntry = std::move(ProcEntry);
  Object Visible = (*Locus.ArrVal)[2];
  if (Error E = symtab::force(I, Visible))
    return E;
  Site.Visible = Visible;
  return Site;
}

/// Builds the full StopSite for an index reference: the index keeps only
/// (addr, line, loci position); the visible-symbol chain is forced here,
/// when the caller actually needs name-resolution context. The LDBI fast
/// path loads loci without forcing the entry, so the entry may still be
/// unresolved — ensureEntry forces exactly one, like the interpreter
/// path would have.
Expected<symtab::StopSite> siteFromRef(Target &T,
                                       StopSiteIndex::LocusRef R) {
  Interp &I = T.interp();
  if (R.P->Entry.Ty != Type::Dict) {
    Expected<StopSiteIndex *> Idx = T.stopIndex();
    if (!Idx)
      return Idx.takeError();
    if (Error E = (*Idx)->ensureEntry(*R.P))
      return E;
  }
  Expected<Object> Loci = symtab::field(I, R.P->Entry, "loci");
  if (!Loci)
    return Loci.takeError();
  if (R.L->Index < 0 ||
      static_cast<size_t>(R.L->Index) >= Loci->ArrVal->size())
    return Error::failure("malformed stopping point");
  return siteFromLocus(I, (*Loci->ArrVal)[R.L->Index], R.L->Index,
                       R.P->Addr, R.P->Name, R.P->Entry);
}

} // namespace

Expected<symtab::StopSite> symtab::stopForPc(Target &T, uint32_t Pc) {
  Expected<StopSiteIndex *> Idx = T.stopIndex();
  if (!Idx)
    return Idx.takeError();
  Expected<StopSiteIndex::LocusRef> R = (*Idx)->locusAt(Pc);
  if (!R)
    return R.takeError();
  return siteFromRef(T, *R);
}

Expected<symtab::StopSite> symtab::nearestStopForPc(Target &T, uint32_t Pc) {
  Expected<StopSiteIndex *> Idx = T.stopIndex();
  if (!Idx)
    return Idx.takeError();
  Expected<StopSiteIndex::LocusRef> R = (*Idx)->nearestLocus(Pc);
  if (!R)
    return R.takeError();
  return siteFromRef(T, *R);
}

Expected<symtab::SiteBrief> symtab::briefForPc(Target &T, uint32_t Pc) {
  Expected<StopSiteIndex *> Idx = T.stopIndex();
  if (!Idx)
    return Idx.takeError();
  Expected<StopSiteIndex::LocusRef> R = (*Idx)->nearestLocus(Pc);
  if (!R)
    return R.takeError();
  StopSiteIndex::Proc &P = *R->P;
  SiteBrief B;
  B.Addr = R->L->Addr;
  B.Line = R->L->Line;
  B.ProcName = P.Name;
  if (P.FileSt == StopSiteIndex::Proc::FileInfo::Unknown) {
    // The interpreter path loaded this procedure (the blob fill records
    // the file up front): resolve /sourcefile once and cache it on the
    // index, so the next backtrace row is a lookup, not a force.
    if (P.Entry.Ty != Type::Dict && (*Idx)->ensureEntry(P)) {
      P.FileSt = StopSiteIndex::Proc::FileInfo::None;
    } else {
      Expected<Object> File = field(T.interp(), P.Entry, "sourcefile");
      if (File) {
        P.File = File->text();
        P.FileSt = StopSiteIndex::Proc::FileInfo::Known;
      } else {
        P.FileSt = StopSiteIndex::Proc::FileInfo::None;
      }
    }
  }
  B.HasFile = P.FileSt == StopSiteIndex::Proc::FileInfo::Known;
  if (B.HasFile)
    B.File = P.File;
  return B;
}

Expected<std::vector<symtab::StopSite>>
symtab::stopsForSource(Target &T, const std::string &File, int Line) {
  Expected<StopSiteIndex *> Idx = T.stopIndex();
  if (!Idx)
    return Idx.takeError();
  Expected<std::vector<StopSiteIndex::LocusRef>> Refs =
      (*Idx)->lociForSource(File, Line);
  if (!Refs)
    return Refs.takeError();
  std::vector<StopSite> Sites;
  for (const StopSiteIndex::LocusRef &R : *Refs) {
    Expected<StopSite> Site = siteFromRef(T, R);
    if (!Site)
      return Site.takeError();
    Sites.push_back(*Site);
  }
  return Sites;
}

Expected<symtab::StopSite> symtab::entryStop(Target &T,
                                             const std::string &ProcName) {
  Expected<StopSiteIndex *> Idx = T.stopIndex();
  if (!Idx)
    return Idx.takeError();
  StopSiteIndex::Proc *P = (*Idx)->procByName(ProcName);
  if (!P)
    return Error::failure("no symbol named " + ProcName);
  if (Error E = (*Idx)->ensureLoaded(*P))
    return E;
  if (!P->HasSymbols)
    return Error::failure("no symbol named " + ProcName);
  const StopSiteIndex::Locus *L = StopSiteIndex::entryLocus(*P);
  if (!L)
    return Error::failure(ProcName + " has no stopping points");
  return siteFromRef(T, StopSiteIndex::LocusRef{P, L});
}

Expected<ps::Object> symtab::resolveName(Interp &I, const StopSite &Site,
                                         const std::string &Name) {
  // Walk up the uplink tree from the stopping point's visible chain.
  Object Entry = Site.Visible;
  while (Entry.Ty == Type::Dict) {
    Expected<Object> EntryName = field(I, Entry, "name");
    if (!EntryName)
      return EntryName.takeError();
    if (EntryName->text() == Name)
      return Entry;
    if (!hasField(Entry, "uplink"))
      break;
    Expected<Object> Up = field(I, Entry, "uplink");
    if (!Up)
      return Up.takeError();
    Entry = *Up;
  }
  // Statics of the current compilation unit.
  if (Site.ProcEntry.Ty == Type::Dict &&
      hasField(Site.ProcEntry, "statics")) {
    Expected<Object> Statics = field(I, Site.ProcEntry, "statics");
    if (!Statics)
      return Statics.takeError();
    if (const Object *Found = Statics->DictVal->find(Name)) {
      Object E = *Found;
      if (Error Err = force(I, E))
        return Err;
      Statics->DictVal->set(Name, E);
      return E;
    }
  }
  // Global symbols.
  Expected<Object> Top = topLevel(I);
  if (!Top)
    return Top.takeError();
  Expected<Object> Externs = field(I, *Top, "externs");
  if (!Externs)
    return Externs.takeError();
  if (const Object *Found = Externs->DictVal->find(Name)) {
    Object E = *Found;
    if (Error Err = force(I, E))
      return Err;
    Externs->DictVal->set(Name, E);
    return E;
  }
  return Error::failure("no symbol named '" + Name + "' is visible here");
}

Expected<mem::Location> symtab::whereOf(Interp &I, ps::Object Entry) {
  if (Entry.Ty != Type::Dict)
    return Error::failure("symbol-table entry is not a dictionary");
  const Object *Found = Entry.DictVal->find("where");
  if (!Found)
    return Error::failure("symbol" + ofEntry(Entry) +
                          " has no storage location");
  Object Where = *Found;
  // Where-values may be procedures interpreted at debug time (the
  // anchor-symbol technique); the result replaces the procedure so the
  // target fetch happens at most once per entry (paper Sec 5, 7).
  if (Error E = force(I, Where))
    return Error::failure("forcing /where" + ofEntry(Entry) + ": " +
                          E.message());
  Entry.DictVal->set("where", Where);
  if (Where.Ty != Type::Location)
    return Error::failure("/where" + ofEntry(Entry) +
                          " did not yield a location");
  return Where.LocVal;
}
