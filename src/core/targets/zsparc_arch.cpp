//===- core/targets/zsparc_arch.cpp - zsparc debugger port ----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
// MACHINE-DEPENDENT: zsparc. Counted by the Sec 4.3 LoC experiment.
//
//===----------------------------------------------------------------------===//

#include "core/target.h"

using namespace ldb::core;

namespace ldb::core {
const Architecture &zsparcArchitecture();
} // namespace ldb::core

namespace {

/// zsparc shares the frame-pointer walker; almost everything else about
/// it is provided by its context (the reason the paper's SPARC nub needed
/// only 5 lines of machine-dependent code).
const char ZsparcPostScript[] = R"PS(
% zsparc machine-dependent PostScript: register enumeration.
/RegisterNames [
  (g0) (g1) (g2) (g3) (g4) (g5) (g6) (g7)
  (o0) (o1) (o2) (o3) (o4) (o5) (sp) (o7)
  (l0) (l1) (l2) (l3) (l4) (l5) (l6) (l7)
  (i0) (i1) (i2) (i3) (i4) (i5) (fp) (ra)
] def
/FramePointerName (fp) def
)PS";

} // namespace

const Architecture &ldb::core::zsparcArchitecture() {
  static const Architecture Arch = [] {
    const ldb::target::TargetDesc *Desc =
        ldb::target::targetByName("zsparc");
    Architecture A;
    A.Desc = Desc;
    A.Bp = BreakpointData{Desc->breakWord(), Desc->nopWord(), 4, 4};
    A.Walker = &fpFrameWalker();
    A.MdPostScript = ZsparcPostScript;
    return A;
  }();
  return Arch;
}
