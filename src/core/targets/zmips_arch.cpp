//===- core/targets/zmips_arch.cpp - zmips debugger port ------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
// MACHINE-DEPENDENT: zmips. Counted by the Sec 4.3 LoC experiment.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zmips port of ldb's machine-dependent pieces. It is the largest of
/// the four (as the MIPS port was in the paper) because zmips has no
/// frame pointer: the walker computes a virtual frame pointer by adding
/// the procedure's frame size to the stack pointer, and the frame sizes
/// come from the runtime procedure table located in the target's address
/// space — fetched through the wire, entry by entry, even for procedures
/// without debugging symbols.
///
//===----------------------------------------------------------------------===//

#include "core/target.h"
#include "support/byteorder.h"

#include <vector>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::mem;

namespace ldb::core {
const Architecture &zmipsArchitecture();
} // namespace ldb::core

namespace {

/// One runtime-procedure-table probe: the table is a count word followed
/// by entries of (address, frame size, save mask, save-area offset). The
/// whole table is moved as raw blocks and scanned locally — one round trip
/// per block rather than four per entry.
Expected<FrameWalker::ProcFrameData> rptLookup(Target &T, uint32_t Pc) {
  uint32_t Rpt = T.rptAddr();
  if (Rpt == 0)
    return Error::failure("no runtime procedure table in this image");
  uint64_t Count = 0;
  if (Error E = T.wire()->fetchInt(Location::absolute(SpData, Rpt), 4,
                                   Count))
    return E;
  if (Count > (1u << 16))
    return Error::failure("runtime procedure table is implausibly large");
  std::vector<uint8_t> Table(Count * 16);
  if (Error E = T.wire()->fetchBlock(Location::absolute(SpData, Rpt + 4),
                                     Table.size(), Table.data()))
    return E;
  ByteOrder Order = T.arch().Desc->Order;
  FrameWalker::ProcFrameData Best;
  uint32_t BestAddr = 0;
  bool Found = false;
  for (uint64_t K = 0; K < Count; ++K) {
    const uint8_t *Entry = Table.data() + 16 * K;
    uint32_t Addr = static_cast<uint32_t>(unpackInt(Entry, 4, Order));
    if (Addr > Pc || (Found && Addr <= BestAddr))
      continue;
    Found = true;
    BestAddr = Addr;
    Best.FrameSize = static_cast<uint32_t>(unpackInt(Entry + 4, 4, Order));
    Best.SaveMask = static_cast<uint32_t>(unpackInt(Entry + 8, 4, Order));
    Best.SaveAreaOffset =
        static_cast<int32_t>(unpackInt(Entry + 12, 4, Order));
  }
  if (!Found)
    return Error::failure("pc not covered by the runtime procedure table");
  return Best;
}

/// zmips stack walking: no frame pointer, so vfp = sp + frame size, with
/// the frame size from the runtime procedure table.
class ZmipsFrameWalker : public FrameWalker {
public:
  Expected<FrameInfo> topFrame(Target &T, uint32_t Ctx) const override {
    const target::TargetDesc &Desc = *T.arch().Desc;
    Expected<uint32_t> Pc = T.ctxPc();
    if (!Pc)
      return Pc.takeError();
    Expected<uint32_t> Sp = T.ctxGpr(Desc.SpReg);
    if (!Sp)
      return Sp.takeError();
    Expected<ProcFrameData> Data = T.frameData(*Pc);
    if (!Data)
      return Data.takeError();
    uint32_t Vfp = *Sp + Data->FrameSize;
    const nub::ContextLayout &L = T.layout();
    auto Home = [&](char Space, unsigned R) {
      if (Space == SpGpr)
        return Location::absolute(SpData, L.gprAddr(Ctx, R, Desc.NumGpr));
      return Location::absolute(SpData, L.fprAddr(Ctx, R));
    };
    return buildFrameDag(T, *Pc, Vfp, Home);
  }

  Expected<FrameInfo> callerFrame(Target &T,
                                  const FrameInfo &Callee) const override {
    uint64_t Ra = 0;
    if (Error E = T.wire()->fetchInt(
            Location::absolute(SpData, Callee.Vfp - 4), 4, Ra))
      return E;
    if (Ra < 8)
      return Error::failure("no caller: return address is null");
    uint32_t CallerPc = static_cast<uint32_t>(Ra) - 4;
    // To walk past a zmips frame ldb needs the *caller's* frame size: the
    // callee's vfp is the caller's sp, so caller vfp = callee vfp +
    // caller frame size.
    Expected<ProcFrameData> CallerData = T.frameData(CallerPc);
    if (!CallerData)
      return CallerData.takeError();
    uint32_t CallerVfp = Callee.Vfp + CallerData->FrameSize;
    Expected<ProcFrameData> CalleeData = T.frameData(Callee.Pc);
    uint32_t Mask = CalleeData ? CalleeData->SaveMask : 0;
    return buildCallerFrameDag(T, Callee, CallerPc, CallerVfp, Mask);
  }

  Expected<ProcFrameData> frameData(Target &T, uint32_t Pc) const override {
    return rptLookup(T, Pc);
  }
};

const char ZmipsPostScript[] = R"PS(
% zmips machine-dependent PostScript: register enumeration.
/RegisterNames [
  (r0) (r1) (rv) (r3) (a0) (a1) (a2) (a3)
  (t0) (t1) (t2) (t3) (t4) (t5) (r14) (r15)
  (s0) (s1) (s2) (s3) (s4) (s5) (s6) (s7)
  (r24) (r25) (r26) (r27) (r28) (sp) (r30) (ra)
] def
/FramePointerName (virtual) def
)PS";

} // namespace

const Architecture &ldb::core::zmipsArchitecture() {
  static const ZmipsFrameWalker Walker;
  static const Architecture Arch = [] {
    const target::TargetDesc *Desc = target::targetByName("zmips");
    Architecture A;
    A.Desc = Desc;
    A.Bp = BreakpointData{Desc->breakWord(), Desc->nopWord(), 4, 4};
    A.Walker = &Walker;
    A.MdPostScript = ZmipsPostScript;
    return A;
  }();
  return Arch;
}
