//===- core/targets/zvax_arch.cpp - zvax debugger port --------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
// MACHINE-DEPENDENT: zvax. Counted by the Sec 4.3 LoC experiment.
//
//===----------------------------------------------------------------------===//

#include "core/target.h"

using namespace ldb::core;

namespace ldb::core {
const Architecture &zvaxArchitecture();
} // namespace ldb::core

namespace {

/// zvax shares the frame-pointer walker.
const char ZvaxPostScript[] = R"PS(
% zvax machine-dependent PostScript: register enumeration.
/RegisterNames [
  (r0) (r1) (r2) (r3) (r4) (r5) (r6) (r7)
  (r8) (r9) (r10) (r11) (fp) (ra) (sp) (r15)
] def
/FramePointerName (fp) def
)PS";

} // namespace

const Architecture &ldb::core::zvaxArchitecture() {
  static const Architecture Arch = [] {
    const ldb::target::TargetDesc *Desc = ldb::target::targetByName("zvax");
    Architecture A;
    A.Desc = Desc;
    A.Bp = BreakpointData{Desc->breakWord(), Desc->nopWord(), 4, 4};
    A.Walker = &fpFrameWalker();
    A.MdPostScript = ZvaxPostScript;
    return A;
  }();
  return Arch;
}
