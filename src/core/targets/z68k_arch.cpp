//===- core/targets/z68k_arch.cpp - z68k debugger port --------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
// MACHINE-DEPENDENT: z68k. Counted by the Sec 4.3 LoC experiment.
//
//===----------------------------------------------------------------------===//

#include "core/target.h"

using namespace ldb::core;

namespace ldb::core {
const Architecture &z68kArchitecture();
} // namespace ldb::core

namespace {

/// z68k uses the shared frame-pointer walker; its register-save masks
/// come from the symbol table (the compiler adds them when compiling
/// procedures for this target, paper Sec 5).
const char Z68kPostScript[] = R"PS(
% z68k machine-dependent PostScript: register enumeration and the
% decoding of register-save masks stored in procedure entries.
/RegisterNames [
  (d0) (d1) (d2) (d3) (d4) (d5) (d6) (d7)
  (a0) (a1) (a2) (a3) (a4) (a5) (fp) (sp)
] def
/FramePointerName (fp) def
/SaveMaskBits 16 def
)PS";

} // namespace

const Architecture &ldb::core::z68kArchitecture() {
  static const Architecture Arch = [] {
    const ldb::target::TargetDesc *Desc = ldb::target::targetByName("z68k");
    Architecture A;
    A.Desc = Desc;
    A.Bp = BreakpointData{Desc->breakWord(), Desc->nopWord(), 4, 4};
    A.Walker = &fpFrameWalker();
    A.MdPostScript = Z68kPostScript;
    return A;
  }();
  return Arch;
}
