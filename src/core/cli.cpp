//===- core/cli.cpp - the command interpreter -------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/cli.h"

#include "core/symblob.h"
#include "postscript/atoms.h"
#include "support/strings.h"
#include "target/disasm.h"

#include <cstdint>
#include <cstdlib>

using namespace ldb;
using namespace ldb::core;

namespace {

const char *HelpText =
    "commands:\n"
    "  break SPEC [if EXPR]           plant a breakpoint at FILE:LINE or\n"
    "                                 PROC, optionally conditional\n"
    "  breakpoints | info breakpoints list breakpoints with conditions\n"
    "                                 and hit/ignore counts\n"
    "  delete [N]                     remove breakpoint N, or every one\n"
    "  ignore N COUNT                 skip the next COUNT hits of N\n"
    "  trace SPEC EXPR[,EXPR...]      plant a tracepoint: hits never stop,\n"
    "                                 the nub records the expressions\n"
    "  trace [list]                   list tracepoints\n"
    "  trace dump                     drain and print buffered records\n"
    "  trace delete [N]               remove tracepoint N, or every one\n"
    "  continue (c)                   resume execution (conditional hits\n"
    "                                 that do not match auto-resume;\n"
    "                                 LDB_NO_NUBCOND=1 keeps evaluation\n"
    "                                 host-side)\n"
    "  step (s)                       run to the next stopping point\n"
    "  next (n)                       like step, but skip over calls\n"
    "  finish                         run until the caller is current\n"
    "  record [on|off]                checkpointed recording: the nub\n"
    "                                 snapshots dirty pages every\n"
    "                                 LDB_CHECKPOINT_SPACING instructions\n"
    "                                 (keyframe every LDB_CHECKPOINT_KEYINT,\n"
    "                                 byte cap LDB_CHECKPOINT_BUDGET)\n"
    "  reverse-step (rs)              back to the previous stopping point\n"
    "  reverse-next (rn)              like reverse-step, but stay in this\n"
    "                                 frame or a shallower one\n"
    "  reverse-finish                 back to before this call was made\n"
    "  reverse-continue (rc)          back to the previous breakpoint stop\n"
    "  info timeline                  checkpoint store and replay counters\n"
    "  status                         why and where the target stopped\n"
    "  where (bt)                     backtrace\n"
    "  frame N                        select frame N for print/eval/set\n"
    "  print NAME (p)                 print a variable\n"
    "  eval EXPR (e)                  evaluate an expression\n"
    "  set NAME VALUE                 assign a constant to a variable\n"
    "  regs                           registers\n"
    "  disasm [N]                     disassemble N words at the pc\n"
    "  stats [reset]                  wire-transport, interpreter, and\n"
    "                                 execution counters (round trips,\n"
    "                                 cache hits, steps, breakpoint hits)\n"
    "  targets | target NAME          list / switch sessions\n"
    "  disconnect [NAME]              drop a session\n"
    "  help | quit\n";

std::string errText(const std::string &Message) {
  return "error: " + Message + "\n";
}

std::string joinWith(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Out;
  for (const std::string &P : Parts) {
    if (!Out.empty())
      Out += Sep;
    Out += P;
  }
  return Out;
}

std::string trimWs(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  size_t E = S.find_last_not_of(" \t");
  return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
}

} // namespace

DebugSession *CommandInterpreter::currentSession(std::string &Err) {
  if (CurrentName.empty()) {
    Err = "no target selected; use `target NAME`\n";
    return nullptr;
  }
  DebugSession *S = Debugger.session(CurrentName);
  if (!S) {
    Err = "target '" + CurrentName +
          "' is no longer connected; use `target NAME`\n";
    CurrentName.clear();
    return nullptr;
  }
  return S;
}

std::string CommandInterpreter::execute(const std::string &Line) {
  std::vector<std::string> Words = splitWords(Line);
  if (Words.empty())
    return std::string();
  const std::string &Cmd = Words[0];

  if (Cmd == "help")
    return HelpText;
  if (Cmd == "quit" || Cmd == "q") {
    Quit = true;
    return std::string();
  }

  if (Cmd == "targets") {
    std::string Out;
    for (DebugSession *S : Debugger.sessions()) {
      Target *T = &S->target();
      Out += (S->name() == CurrentName ? "* " : "  ") + T->name() + " (" +
             T->arch().Desc->Name + ") ";
      if (T->exited())
        Out += "exited " + std::to_string(T->lastStop().ExitStatus);
      else if (T->stopped())
        Out += "stopped";
      else
        Out += "running";
      Out += "\n";
    }
    return Out.empty() ? "no targets\n" : Out;
  }
  if (Cmd == "target") {
    if (Words.size() < 2)
      return errText("target NAME");
    DebugSession *S = Debugger.session(Words[1]);
    if (!S)
      return errText("no target named " + Words[1]);
    CurrentName = Words[1];
    // A fresh selection starts at the stopped frame: a frame number
    // carried over from another session would silently misread this one.
    S->setCurrentFrame(0);
    return "current target: " + Words[1] + "\n";
  }
  if (Cmd == "disconnect") {
    std::string Name = Words.size() > 1 ? Words[1] : CurrentName;
    if (Name.empty())
      return errText("disconnect [NAME]");
    if (!Debugger.session(Name))
      return errText("no target named " + Name);
    Debugger.disconnect(Name);
    if (Name == CurrentName)
      CurrentName.clear();
    return "disconnected " + Name + "\n";
  }

  std::string Err;
  DebugSession *S = currentSession(Err);
  if (!S)
    return Err;
  Target *Current = &S->target();

  if (Cmd == "break" || Cmd == "b") {
    if (Words.size() < 2)
      return errText("break SPEC [if EXPR]");
    // `break SPEC if EXPR`: everything after the ` if ` is the condition.
    std::string Cond;
    if (Words.size() >= 4 && Words[2] == "if") {
      size_t IfAt = Line.find(" if ");
      if (IfAt != std::string::npos)
        Cond = Line.substr(IfAt + 4);
    }
    size_t Colon = Words[1].rfind(':');
    Expected<int> Id =
        Colon != std::string::npos
            ? S->addBreakAtLine(Words[1].substr(0, Colon),
                                std::atoi(Words[1].c_str() + Colon + 1))
            : S->addBreakAtProc(Words[1]);
    if (!Id)
      return errText(Id.message());
    if (!Cond.empty()) {
      if (Error E = S->setBreakpointCondition(*Id, Cond)) {
        // A condition that will not compile must not leave an
        // unconditional breakpoint behind.
        Error D = Current->deleteUserBreakpoint(*Id);
        (void)D;
        return errText(E.message());
      }
      return "breakpoint " + std::to_string(*Id) + " planted at " +
             Words[1] + " if " + Cond + "\n";
    }
    return "breakpoint " + std::to_string(*Id) + " planted at " + Words[1] +
           "\n";
  }

  if (Cmd == "breakpoints" ||
      (Cmd == "info" && Words.size() > 1 && Words[1] == "breakpoints")) {
    const auto &Bps = Current->userBreakpoints();
    if (Bps.empty())
      return "no breakpoints\n";
    std::string Out;
    for (const auto &[Id, U] : Bps) {
      Out += "  " + std::to_string(Id) + "  " + hex32(U.Addrs.front()) +
             "  " + U.Spec;
      if (U.Addrs.size() > 1)
        Out += " (" + std::to_string(U.Addrs.size()) + " sites)";
      if (!U.CondText.empty())
        Out += "  if " + U.CondText;
      Out += "  hits " + std::to_string(U.HitCount);
      if (U.Ignore)
        Out += "  ignore " + std::to_string(U.Ignore);
      Out += "\n";
    }
    return Out;
  }

  if (Cmd == "delete") {
    if (Words.size() > 1) {
      int Id = std::atoi(Words[1].c_str());
      if (Error E = Current->deleteUserBreakpoint(Id))
        return errText(E.message());
      return "deleted breakpoint " + std::to_string(Id) + "\n";
    }
    Expected<size_t> N = Current->deleteAllUserBreakpoints();
    if (!N)
      return errText(N.message());
    return "deleted " + std::to_string(*N) + " breakpoint(s)\n";
  }

  if (Cmd == "ignore") {
    if (Words.size() < 3)
      return errText("ignore N COUNT");
    int Id = std::atoi(Words[1].c_str());
    Target::UserBreakpoint *U = Current->userBreakpoint(Id);
    if (!U)
      return errText("no breakpoint " + Words[1]);
    U->Ignore = static_cast<uint64_t>(std::atoll(Words[2].c_str()));
    U->Dirty = true; // the nub's shipped record is stale now
    return "will ignore the next " + Words[2] + " hits of breakpoint " +
           Words[1] + "\n";
  }

  if (Cmd == "trace") {
    if (Words.size() < 2 || Words[1] == "list") {
      const auto &Tps = Current->tracepoints();
      if (Tps.empty())
        return "no tracepoints\n";
      std::string Out;
      for (const auto &[Id, Tp] : Tps) {
        Out += "  " + std::to_string(Id) + "  " + hex32(Tp.Addrs.front()) +
               "  " + Tp.Spec;
        if (Tp.Addrs.size() > 1)
          Out += " (" + std::to_string(Tp.Addrs.size()) + " sites)";
        Out += "  trace " + joinWith(Tp.ExprTexts, ", ");
        Out += "  hits " + std::to_string(Tp.Hits);
        Out += "\n";
      }
      return Out;
    }
    if (Words[1] == "delete") {
      if (Words.size() > 2) {
        int Id = std::atoi(Words[2].c_str());
        if (Error E = Current->deleteTracepoint(Id))
          return errText(E.message());
        return "deleted tracepoint " + std::to_string(Id) + "\n";
      }
      std::vector<int> Ids;
      for (const auto &[Id, Tp] : Current->tracepoints())
        Ids.push_back(Id);
      for (int Id : Ids)
        if (Error E = Current->deleteTracepoint(Id))
          return errText(E.message());
      return "deleted " + std::to_string(Ids.size()) + " tracepoint(s)\n";
    }
    if (Words[1] == "dump") {
      if (Error E = Current->drainTraceRecords())
        return errText(E.message());
      std::string Out;
      Target::Scope Sc(*Current);
      for (const nub::condbc::TraceRecord &R : Current->traceLog()) {
        Out += "tp " + std::to_string(R.Id) + " hit " +
               std::to_string(R.HitNo) + " at ";
        Expected<symtab::SiteBrief> B =
            symtab::briefForPc(*Current, R.Pc);
        if (B && B->HasFile)
          Out += B->File + ":" + std::to_string(B->Line) + " (" +
                 B->ProcName + ")";
        else if (B)
          Out += B->ProcName;
        else
          Out += hex32(R.Pc);
        const Target::Tracepoint *Tp =
            Current->tracepoint(static_cast<int>(R.Id));
        std::string Vals;
        for (size_t K = 0; K < R.Values.size(); ++K) {
          Vals += Vals.empty() ? ": " : ", ";
          Vals += Tp && K < Tp->ExprTexts.size()
                      ? Tp->ExprTexts[K]
                      : "expr" + std::to_string(K);
          // INT64_MIN marks an expression whose bytecode failed at this
          // hit (a bad load mid-recursion, say); the record survives.
          Vals += R.Values[K] == INT64_MIN
                      ? " = ?"
                      : " = " + std::to_string(R.Values[K]);
        }
        Out += Vals;
        std::string Regs;
        for (unsigned Reg = 0, K = 0; Reg < 32; ++Reg)
          if (R.RegMask & (1u << Reg)) {
            if (K < R.Regs.size())
              Regs += (Regs.empty() ? "  [" : " ") + ("r" +
                      std::to_string(Reg)) + "=" + hex32(R.Regs[K]);
            ++K;
          }
        if (!Regs.empty())
          Out += Regs + "]";
        Out += "\n";
      }
      if (Current->traceDropped())
        Out += "(" + std::to_string(Current->traceDropped()) +
               " records dropped by the nub's full buffer)\n";
      if (Out.empty())
        Out = "no trace records\n";
      Current->clearTraceLog();
      return Out;
    }
    // trace SPEC EXPR[,EXPR...]: everything after the spec, split on
    // commas, is the expression list.
    size_t SpecAt = Line.find(Words[1]);
    size_t ExprAt = Line.find(' ', SpecAt);
    if (ExprAt == std::string::npos)
      return errText("trace SPEC EXPR[,EXPR...]");
    std::vector<std::string> Exprs;
    std::string Rest = Line.substr(ExprAt + 1);
    size_t Pos = 0;
    while (Pos <= Rest.size()) {
      size_t Comma = Rest.find(',', Pos);
      std::string Piece = Rest.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      Piece = trimWs(Piece);
      if (!Piece.empty())
        Exprs.push_back(Piece);
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 1;
    }
    Expected<int> Id = S->addTracepoint(Words[1], Exprs);
    if (!Id)
      return errText(Id.message());
    return "tracepoint " + std::to_string(*Id) + " planted at " + Words[1] +
           " tracing " + joinWith(Exprs, ", ") + "\n";
  }

  if (Cmd == "stats") {
    if (Words.size() > 1 && Words[1] == "reset") {
      for (DebugSession *Each : Debugger.sessions()) {
        Each->target().resetStats();
        Each->target().execStats().reset();
      }
      Debugger.clearRetiredStats();
      ps::interpStats().reset();
      symblob::symblobStats().reset();
      return "transport and interpreter counters reset\n";
    }
    const mem::TransportStats &St = Current->stats();
    std::string Out;
    Out += "round trips:    " + std::to_string(St.RoundTrips) + "\n";
    Out += "messages:       " + std::to_string(St.MsgsSent) + " sent, " +
           std::to_string(St.MsgsReceived) + " received\n";
    Out += "  block frames: " + std::to_string(St.BlockMsgsSent) +
           " sent, " + std::to_string(St.BlockRepliesReceived) +
           " received\n";
    Out += "  word frames:  " + std::to_string(St.WordMsgsSent) + " sent, " +
           std::to_string(St.WordRepliesReceived) + " received\n";
    Out += "bytes on wire:  " + std::to_string(St.BytesSent) + " sent, " +
           std::to_string(St.BytesReceived) + " received\n";
    Out += "pipeline:       " + std::to_string(St.Posted) + " posted, " +
           std::to_string(St.MaxInFlight) + " max in flight, " +
           std::to_string(St.StoresCombined) + " stores combined\n";
    Out += "recovery:       " + std::to_string(St.Retries) + " retries, " +
           std::to_string(St.Timeouts) + " timeouts, " +
           std::to_string(St.StaleReplies) + " stale replies, " +
           std::to_string(St.LinkDrops) + " drops, " +
           std::to_string(St.LinkGarbles) + " garbles\n";
    Out += "cache:          " + std::to_string(St.cacheHits()) + " hits, " +
           std::to_string(St.cacheMisses()) + " misses\n";
    for (const auto &[Space, C] : St.Cache)
      Out += "  space " + std::string(1, Space) + ":      " +
             std::to_string(C.Hits) + " hits, " + std::to_string(C.Misses) +
             " misses\n";
    std::vector<DebugSession *> All = Debugger.sessions();
    Out += "sessions:       " + std::to_string(All.size()) + " active, " +
           std::to_string(Debugger.images().imageCount()) +
           " shared images\n";
    for (DebugSession *Each : All) {
      const mem::TransportStats &ES = Each->stats();
      Out += "  session " + Each->name() + ": " +
             std::to_string(ES.Posted) + " posted, " +
             std::to_string(ES.Retries) + " retries\n";
    }
    mem::TransportStats Fleet = Debugger.fleetStats();
    Out += "fleet:          " + std::to_string(Fleet.RoundTrips) +
           " round trips, " + std::to_string(Fleet.Posted) + " posted, " +
           std::to_string(Fleet.Retries) + " retries\n";
    const ps::InterpStats &IS = ps::interpStats();
    Out += "atoms interned: " + std::to_string(IS.AtomsInterned) + "\n";
    Out += "dict lookups:   " + std::to_string(IS.DictFinds) + " finds, " +
           std::to_string(IS.DictProbes) + " probes";
    if (IS.DictFinds) {
      char Avg[32];
      std::snprintf(Avg, sizeof(Avg), " (%.2f avg)",
                    double(IS.DictProbes) / double(IS.DictFinds));
      Out += Avg;
    }
    Out += "\n";
    Out += "fastload:       " + std::to_string(IS.FastloadHits) + " hits, " +
           std::to_string(IS.FastloadMisses) + " misses, " +
           std::to_string(IS.FastloadStores) + " stores, " +
           std::to_string(IS.FastloadFallbacks) + " fallbacks\n";
    const symblob::SymblobStats &BS = symblob::symblobStats();
    Out += "symblob:        " + std::to_string(BS.Hits) + " hits, " +
           std::to_string(BS.Misses) + " misses, " +
           std::to_string(BS.Builds) + " builds, " +
           std::to_string(BS.Fallbacks) + " fallbacks, " +
           std::to_string(BS.IndexProbes) + " probes\n";
    const Target::ExecStats &ES = Current->execStats();
    Out += "stepping:       " + std::to_string(ES.Steps) + " steps, " +
           std::to_string(ES.Nexts) + " nexts, " +
           std::to_string(ES.Finishes) + " finishes\n";
    Out += "temporaries:    " + std::to_string(ES.TempPlants) +
           " planted, " + std::to_string(ES.TempRemoves) + " removed\n";
    Out += "bp hits:        " + std::to_string(ES.BpHits) + " hits, " +
           std::to_string(ES.CondEvals) + " cond evals, " +
           std::to_string(ES.CondResumes) + " cond resumes, " +
           std::to_string(ES.IgnoreResumes) + " ignore resumes\n";
    Out += "nub eval:       " + std::to_string(ES.NubCondEvals) +
           " evals, " + std::to_string(ES.NubLocalResumes) +
           " local resumes, " + std::to_string(ES.CondShips) + " ships, " +
           std::to_string(St.CondMsgsSent) + " record msgs\n";
    Out += "trace:          " + std::to_string(St.TraceDrains) +
           " drains, " + std::to_string(St.TraceRecords) + " records, " +
           std::to_string(St.TraceDrainBytes) + " bytes\n";
    Out += "timeline:       " + std::to_string(ES.Seeks) + " seeks, " +
           std::to_string(ES.Reverses) + " reverse commands\n";
    if (Current->recording()) {
      Expected<nub::TimelineInfo> TI = Current->timeline();
      if (TI)
        Out += "checkpoints:    " + std::to_string(TI->Checkpoints) +
               " held (" + std::to_string(TI->Bytes) + " bytes, " +
               std::to_string(TI->Evictions) + " evicted), " +
               std::to_string(TI->PagesSaved) + " pages saved, " +
               std::to_string(TI->PagesClean) + " skipped clean, " +
               std::to_string(TI->Restores) + " restores, " +
               std::to_string(TI->ReplayedInstrs) + " replayed\n";
    }
    return Out;
  }

  if (Cmd == "continue" || Cmd == "c") {
    if (Error E = S->continueToStop())
      return errText(E.message());
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "step" || Cmd == "s") {
    if (Error E = S->stepToNextStop())
      return errText(E.message());
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "next" || Cmd == "n") {
    if (Error E = S->stepOver())
      return errText(E.message());
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "finish") {
    if (Error E = S->stepOut())
      return errText(E.message());
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "record") {
    if (Words.size() > 1 && Words[1] != "on" && Words[1] != "off")
      return errText("record [on|off]");
    if (Words.size() > 1 && Words[1] == "off") {
      if (Error E = S->disableRecording())
        return errText(E.message());
      return "recording off\n";
    }
    if (Error E = S->enableRecording())
      return errText(E.message());
    return "recording from instruction " +
           std::to_string(Current->stopIcount()) + "\n";
  }

  if (Cmd == "reverse-step" || Cmd == "rs" || Cmd == "reverse-next" ||
      Cmd == "rn" || Cmd == "reverse-finish" || Cmd == "reverse-continue" ||
      Cmd == "rc") {
    Error E = (Cmd == "reverse-step" || Cmd == "rs") ? S->reverseStep()
              : (Cmd == "reverse-next" || Cmd == "rn") ? S->reverseNext()
              : Cmd == "reverse-finish"                ? S->reverseFinish()
                                                       : S->reverseContinue();
    if (E)
      return errText(E.message());
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "timeline" ||
      (Cmd == "info" && Words.size() > 1 && Words[1] == "timeline")) {
    Expected<nub::TimelineInfo> TI = Current->timeline();
    if (!TI)
      return errText(TI.message());
    std::string Out;
    Out += std::string("recording:      ") + (TI->Enabled ? "on" : "off") +
           "\n";
    Out += "instructions:   " + std::to_string(TI->CurIcount) + " now, " +
           std::to_string(TI->MaxIcount) + " max recorded\n";
    Out += "checkpoints:    " + std::to_string(TI->Checkpoints) + " (" +
           std::to_string(TI->Keyframes) + " keyframes), every " +
           std::to_string(TI->Spacing) + " instructions, keyframe every " +
           std::to_string(TI->KeyInterval) + "\n";
    Out += "store:          " + std::to_string(TI->Bytes) + " bytes, " +
           std::to_string(TI->Evictions) + " chains evicted, oldest " +
           "restorable " + std::to_string(TI->OldestRestorable) + "\n";
    Out += "pages:          " + std::to_string(TI->PagesSaved) +
           " snapshotted, " + std::to_string(TI->PagesClean) +
           " skipped clean\n";
    Out += "replay:         " + std::to_string(TI->Restores) + " restores, " +
           std::to_string(TI->ReplayedInstrs) + " instructions re-executed, " +
           std::to_string(Current->execStats().Seeks) + " seeks, " +
           std::to_string(Current->execStats().Reverses) +
           " reverse commands\n";
    return Out;
  }

  if (Cmd == "status") {
    Expected<std::string> Where = describeStop(*Current);
    if (!Where)
      return errText(Where.message());
    return *Where + "\n";
  }

  if (Cmd == "where" || Cmd == "bt") {
    Expected<std::string> Bt = renderBacktrace(*Current);
    if (!Bt)
      return errText(Bt.message());
    return *Bt;
  }

  if (Cmd == "frame") {
    if (Words.size() < 2)
      return errText("frame N");
    S->setCurrentFrame(static_cast<unsigned>(std::atoi(Words[1].c_str())));
    return "frame " + Words[1] + " selected\n";
  }

  if (Cmd == "print" || Cmd == "p") {
    if (Words.size() < 2)
      return errText("print NAME");
    Expected<std::string> V =
        printVariable(*Current, Words[1], S->currentFrame());
    if (!V)
      return errText(V.message());
    return Words[1] + " = " + *V + "\n";
  }

  if (Cmd == "eval" || Cmd == "e") {
    if (Words.size() < 2)
      return errText("eval EXPR");
    std::string Expr = Line.substr(Line.find(Cmd) + Cmd.size());
    Expected<std::string> V = evalExpression(*Current, S->exprSession(),
                                             Expr, S->currentFrame());
    if (!V)
      return errText(V.message());
    return *V + "\n";
  }

  if (Cmd == "set") {
    if (Words.size() < 3)
      return errText("set NAME VALUE");
    if (Error E = assignVariable(*Current, Words[1], Words[2],
                                 S->currentFrame()))
      return errText(E.message());
    return Words[1] + " = " + Words[2] + "\n";
  }

  if (Cmd == "disasm") {
    unsigned Count = Words.size() > 1
                         ? static_cast<unsigned>(std::atoi(Words[1].c_str()))
                         : 6;
    Expected<uint32_t> Pc = Current->ctxPc();
    if (!Pc)
      return errText(Pc.message());
    std::string Out;
    for (unsigned K = 0; K < Count; ++K) {
      uint32_t Addr = *Pc + 4 * K;
      uint64_t Word = 0;
      if (Error E = Current->wire()->fetchInt(
              mem::Location::absolute(mem::SpCode, Addr), 4, Word))
        return errText(E.message());
      Out += "  " + hex32(Addr) + ": " +
             target::disassemble(*Current->arch().Desc,
                                 static_cast<uint32_t>(Word)) +
             (Current->breakpointAt(Addr) ? "   <- breakpoint" : "") + "\n";
    }
    return Out;
  }

  if (Cmd == "regs") {
    Expected<std::string> R = printRegisters(*Current);
    if (!R)
      return errText(R.message());
    return *R;
  }

  return errText("unknown command '" + Cmd + "' (try help)");
}
