//===- core/cli.cpp - the command interpreter -------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/cli.h"

#include "postscript/atoms.h"
#include "support/strings.h"
#include "target/disasm.h"

#include <cstdlib>

using namespace ldb;
using namespace ldb::core;

namespace {

const char *HelpText =
    "commands:\n"
    "  break FILE:LINE | break PROC   plant a breakpoint at a stopping "
    "point\n"
    "  breakpoints                    list planted breakpoints\n"
    "  delete                         remove every breakpoint\n"
    "  continue (c)                   resume execution\n"
    "  step (s)                       run to the next stopping point\n"
    "  status                         why and where the target stopped\n"
    "  where (bt)                     backtrace\n"
    "  frame N                        select frame N for print/eval/set\n"
    "  print NAME (p)                 print a variable\n"
    "  eval EXPR (e)                  evaluate an expression\n"
    "  set NAME VALUE                 assign a constant to a variable\n"
    "  regs                           registers\n"
    "  disasm [N]                     disassemble N words at the pc\n"
    "  stats [reset]                  wire-transport and interpreter\n"
    "                                 counters (round trips, bytes, cache\n"
    "                                 hits, atoms, dict probes, fastload)\n"
    "  targets | target NAME          list / switch targets\n"
    "  help | quit\n";

std::string errText(const std::string &Message) {
  return "error: " + Message + "\n";
}

} // namespace

std::string CommandInterpreter::requireTarget() {
  if (!Current)
    return "no target selected; use `target NAME`\n";
  return std::string();
}

std::string CommandInterpreter::execute(const std::string &Line) {
  std::vector<std::string> Words = splitWords(Line);
  if (Words.empty())
    return std::string();
  const std::string &Cmd = Words[0];

  if (Cmd == "help")
    return HelpText;
  if (Cmd == "quit" || Cmd == "q") {
    Quit = true;
    return std::string();
  }

  if (Cmd == "targets") {
    std::string Out;
    for (Target *T : Debugger.targets()) {
      Out += (T == Current ? "* " : "  ") + T->name() + " (" +
             T->arch().Desc->Name + ") ";
      if (T->exited())
        Out += "exited " + std::to_string(T->lastStop().ExitStatus);
      else if (T->stopped())
        Out += "stopped";
      else
        Out += "running";
      Out += "\n";
    }
    return Out.empty() ? "no targets\n" : Out;
  }
  if (Cmd == "target") {
    if (Words.size() < 2)
      return errText("target NAME");
    Target *T = Debugger.target(Words[1]);
    if (!T)
      return errText("no target named " + Words[1]);
    Current = T;
    CurrentFrame = 0;
    return "current target: " + Words[1] + "\n";
  }

  if (std::string E = requireTarget(); !E.empty())
    return E;

  if (Cmd == "break" || Cmd == "b") {
    if (Words.size() < 2)
      return errText("break FILE:LINE or break PROC");
    size_t Colon = Words[1].rfind(':');
    Error E = Error::success();
    if (Colon != std::string::npos) {
      int LineNo = std::atoi(Words[1].c_str() + Colon + 1);
      E = Debugger.breakAtLine(*Current, Words[1].substr(0, Colon), LineNo);
    } else {
      E = Debugger.breakAtProc(*Current, Words[1]);
    }
    if (E)
      return errText(E.message());
    return "breakpoint planted at " + Words[1] + "\n";
  }

  if (Cmd == "breakpoints") {
    if (Current->breakpoints().empty())
      return "no breakpoints\n";
    std::string Out;
    for (const auto &[Addr, Orig] : Current->breakpoints())
      Out += "  " + hex32(Addr) + "\n";
    return Out;
  }

  if (Cmd == "delete") {
    std::vector<uint32_t> Addrs;
    for (const auto &[Addr, Orig] : Current->breakpoints())
      Addrs.push_back(Addr);
    if (Error E = Current->removeBreakpoints(Addrs))
      return errText(E.message());
    return "deleted " + std::to_string(Addrs.size()) + " breakpoint(s)\n";
  }

  if (Cmd == "stats") {
    if (Words.size() > 1 && Words[1] == "reset") {
      Current->resetStats();
      ps::interpStats().reset();
      return "transport and interpreter counters reset\n";
    }
    const mem::TransportStats &S = Current->stats();
    std::string Out;
    Out += "round trips:    " + std::to_string(S.RoundTrips) + "\n";
    Out += "messages:       " + std::to_string(S.MsgsSent) + " sent, " +
           std::to_string(S.MsgsReceived) + " received\n";
    Out += "bytes on wire:  " + std::to_string(S.BytesSent) + " sent, " +
           std::to_string(S.BytesReceived) + " received\n";
    Out += "cache:          " + std::to_string(S.cacheHits()) + " hits, " +
           std::to_string(S.cacheMisses()) + " misses\n";
    for (const auto &[Space, C] : S.Cache)
      Out += "  space " + std::string(1, Space) + ":      " +
             std::to_string(C.Hits) + " hits, " + std::to_string(C.Misses) +
             " misses\n";
    const ps::InterpStats &IS = ps::interpStats();
    Out += "atoms interned: " + std::to_string(IS.AtomsInterned) + "\n";
    Out += "dict lookups:   " + std::to_string(IS.DictFinds) + " finds, " +
           std::to_string(IS.DictProbes) + " probes";
    if (IS.DictFinds) {
      char Avg[32];
      std::snprintf(Avg, sizeof(Avg), " (%.2f avg)",
                    double(IS.DictProbes) / double(IS.DictFinds));
      Out += Avg;
    }
    Out += "\n";
    Out += "fastload:       " + std::to_string(IS.FastloadHits) + " hits, " +
           std::to_string(IS.FastloadMisses) + " misses, " +
           std::to_string(IS.FastloadStores) + " stores, " +
           std::to_string(IS.FastloadFallbacks) + " fallbacks\n";
    return Out;
  }

  if (Cmd == "continue" || Cmd == "c") {
    if (Error E = Current->resume())
      return errText(E.message());
    CurrentFrame = 0;
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "step" || Cmd == "s") {
    if (Error E = Debugger.stepToNextStop(*Current))
      return errText(E.message());
    CurrentFrame = 0;
    Expected<std::string> Where = describeStop(*Current);
    return (Where ? *Where : std::string("stopped")) + "\n";
  }

  if (Cmd == "status") {
    Expected<std::string> Where = describeStop(*Current);
    if (!Where)
      return errText(Where.message());
    return *Where + "\n";
  }

  if (Cmd == "where" || Cmd == "bt") {
    Expected<std::string> Bt = renderBacktrace(*Current);
    if (!Bt)
      return errText(Bt.message());
    return *Bt;
  }

  if (Cmd == "frame") {
    if (Words.size() < 2)
      return errText("frame N");
    CurrentFrame = static_cast<unsigned>(std::atoi(Words[1].c_str()));
    return "frame " + Words[1] + " selected\n";
  }

  if (Cmd == "print" || Cmd == "p") {
    if (Words.size() < 2)
      return errText("print NAME");
    Expected<std::string> V =
        printVariable(*Current, Words[1], CurrentFrame);
    if (!V)
      return errText(V.message());
    return Words[1] + " = " + *V + "\n";
  }

  if (Cmd == "eval" || Cmd == "e") {
    if (Words.size() < 2)
      return errText("eval EXPR");
    std::string Expr = Line.substr(Line.find(Cmd) + Cmd.size());
    Expected<std::string> V =
        evalExpression(*Current, Session, Expr, CurrentFrame);
    if (!V)
      return errText(V.message());
    return *V + "\n";
  }

  if (Cmd == "set") {
    if (Words.size() < 3)
      return errText("set NAME VALUE");
    if (Error E =
            assignVariable(*Current, Words[1], Words[2], CurrentFrame))
      return errText(E.message());
    return Words[1] + " = " + Words[2] + "\n";
  }

  if (Cmd == "disasm") {
    unsigned Count = Words.size() > 1
                         ? static_cast<unsigned>(std::atoi(Words[1].c_str()))
                         : 6;
    Expected<uint32_t> Pc = Current->ctxPc();
    if (!Pc)
      return errText(Pc.message());
    std::string Out;
    for (unsigned K = 0; K < Count; ++K) {
      uint32_t Addr = *Pc + 4 * K;
      uint64_t Word = 0;
      if (Error E = Current->wire()->fetchInt(
              mem::Location::absolute(mem::SpCode, Addr), 4, Word))
        return errText(E.message());
      Out += "  " + hex32(Addr) + ": " +
             target::disassemble(*Current->arch().Desc,
                                 static_cast<uint32_t>(Word)) +
             (Current->breakpointAt(Addr) ? "   <- breakpoint" : "") + "\n";
    }
    return Out;
  }

  if (Cmd == "regs") {
    Expected<std::string> R = printRegisters(*Current);
    if (!R)
      return errText(R.message());
    return *R;
  }

  return errText("unknown command '" + Cmd + "' (try help)");
}
