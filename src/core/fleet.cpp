//===- core/fleet.cpp - N sessions on one event loop ------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/fleet.h"

#include "nub/client.h"

#include <algorithm>

using namespace ldb;
using namespace ldb::core;

void SessionManager::add(DebugSession &S) {
  if (std::find(Sessions.begin(), Sessions.end(), &S) != Sessions.end())
    return;
  Sessions.push_back(&S);
  nub::ChannelEnd &End = S.target().client().channel();
  Links.add(&End);
  // The debugger-side end is polled by its own reply waits, never via the
  // callback — free for the loop's wakeup accounting.
  End.setReadable([this] { ++Wakeups; });
}

void SessionManager::remove(DebugSession &S) {
  auto It = std::find(Sessions.begin(), Sessions.end(), &S);
  if (It == Sessions.end())
    return;
  Sessions.erase(It);
  nub::ChannelEnd &End = S.target().client().channel();
  End.setReadable(nullptr);
  Links.remove(&End);
}

void SessionManager::run(
    const std::function<bool(DebugSession &, size_t)> &Turn) {
  std::vector<bool> Live(Sessions.size(), true);
  size_t Remaining = Sessions.size();
  for (size_t Round = 0; Remaining > 0; ++Round) {
    for (size_t I = 0; I < Sessions.size(); ++I) {
      if (!Live[I])
        continue;
      ++Turns;
      if (!Turn(*Sessions[I], Round)) {
        Live[I] = false;
        --Remaining;
      }
      // Deliver whatever the turn left in flight before the next session
      // runs, so cross-session time stays in arrival order.
      Links.pumpAll();
    }
  }
}

mem::TransportStats SessionManager::rollup() const {
  mem::TransportStats Out;
  for (DebugSession *S : Sessions)
    Out.accumulate(S->stats());
  return Out;
}
