//===- core/expreval.h - expression evaluation ------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ldb's end of the expression server (paper Sec 3, Fig 3). To evaluate
/// an expression, ldb sends it to the server as a string, then interprets
/// PostScript from the server's pipe until told to stop: lookups resolve
/// symbols at the current stopping point and reply with reconstructed
/// entry data; the final procedure is executed against the frame's
/// abstract memory. Assignments work because the rewritten code stores
/// through the same abstract memories.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_EXPREVAL_H
#define LDB_CORE_EXPREVAL_H

#include "core/symtab.h"
#include "core/target.h"
#include "exprserver/server.h"

namespace ldb::core {

/// One expression server, shared across expressions (the server keeps
/// accumulated type information; symbols are discarded per expression).
class ExprSession {
public:
  exprserver::ExprServer &server() { return Server; }

private:
  exprserver::ExprServer Server;
};

/// Evaluates \p Text in the context of \p FrameNo and renders the result.
Expected<std::string> evalExpression(Target &T, ExprSession &Session,
                                     const std::string &Text,
                                     unsigned FrameNo = 0);

/// Compiles \p Text once through the expression server, resolving names
/// at \p Site, and returns the rewritten PostScript procedure. The
/// procedure reads the target through whatever `&mem` names when it
/// runs, so it can be executed many times against different frames —
/// conditional breakpoints compile at `break` time and evaluate per hit.
/// When \p CondBytecode is non-null and the server could also express the
/// tree as nub-side condition bytecode (nub/condbc.h), the bytecode is
/// stored there; an expression the bytecode cannot express leaves it
/// empty, which callers treat as "host evaluation only".
Expected<ps::Object> compileExpression(Target &T, ExprSession &Session,
                                       const std::string &Text,
                                       const symtab::StopSite &Site,
                                       std::vector<uint8_t> *CondBytecode =
                                           nullptr);

/// Runs a compiled expression against \p Frame's abstract memory and
/// returns the result object.
Expected<ps::Object> runCompiled(Target &T, const ps::Object &Proc,
                                 const FrameInfo &Frame);

/// Runs a compiled condition in the stopped frame (frame 0) and reduces
/// the result to C truthiness: nonzero is true.
Expected<bool> evalCondition(Target &T, const ps::Object &Proc);

/// Encodes a PostScript type dictionary as a wire type description for
/// lookup replies (exposed for tests).
Expected<std::string> encodePsType(ps::Interp &I, ps::Object TyDict);

} // namespace ldb::core

#endif // LDB_CORE_EXPREVAL_H
