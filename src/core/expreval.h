//===- core/expreval.h - expression evaluation ------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ldb's end of the expression server (paper Sec 3, Fig 3). To evaluate
/// an expression, ldb sends it to the server as a string, then interprets
/// PostScript from the server's pipe until told to stop: lookups resolve
/// symbols at the current stopping point and reply with reconstructed
/// entry data; the final procedure is executed against the frame's
/// abstract memory. Assignments work because the rewritten code stores
/// through the same abstract memories.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_EXPREVAL_H
#define LDB_CORE_EXPREVAL_H

#include "core/target.h"
#include "exprserver/server.h"

namespace ldb::core {

/// One expression server, shared across expressions (the server keeps
/// accumulated type information; symbols are discarded per expression).
class ExprSession {
public:
  exprserver::ExprServer &server() { return Server; }

private:
  exprserver::ExprServer Server;
};

/// Evaluates \p Text in the context of \p FrameNo and renders the result.
Expected<std::string> evalExpression(Target &T, ExprSession &Session,
                                     const std::string &Text,
                                     unsigned FrameNo = 0);

/// Encodes a PostScript type dictionary as a wire type description for
/// lookup replies (exposed for tests).
Expected<std::string> encodePsType(ps::Interp &I, ps::Object TyDict);

} // namespace ldb::core

#endif // LDB_CORE_EXPREVAL_H
