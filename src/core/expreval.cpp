//===- core/expreval.cpp - expression evaluation ----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/expreval.h"

#include "core/symtab.h"
#include "nub/condbc.h"

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

Expected<std::string> ldb::core::encodePsType(Interp &I, Object TyDict) {
  Expected<Object> Printer = symtab::field(I, TyDict, "printer");
  if (!Printer)
    return Printer.takeError();
  if (Printer->Ty != Type::Array || Printer->ArrVal->empty() ||
      (*Printer->ArrVal)[0].Ty != Type::Name)
    return Error::failure("malformed printer procedure in type dict");
  const std::string &Kind = (*Printer->ArrVal)[0].text();

  if (Kind == "INT")
    return std::string("i4");
  if (Kind == "UNSIGNED")
    return std::string("u4");
  if (Kind == "SHORT")
    return std::string("i2");
  if (Kind == "CHAR" || Kind == "SCHAR")
    return std::string("i1");
  if (Kind == "FLOAT")
    return std::string("f4");
  if (Kind == "DOUBLE")
    return std::string("f8");
  if (Kind == "LONGDOUBLE")
    return std::string("f10");
  if (Kind == "FUNCPTR")
    return std::string("pf");
  if (Kind == "POINTER") {
    if (!symtab::hasField(TyDict, "&pointee"))
      return std::string("p v");
    Expected<Object> Pointee = symtab::field(I, TyDict, "&pointee");
    if (!Pointee)
      return Pointee.takeError();
    Expected<std::string> Sub = encodePsType(I, *Pointee);
    if (!Sub)
      return Sub.takeError();
    return "p " + *Sub;
  }
  if (Kind == "CHARARRAY") {
    Expected<Object> Size = symtab::field(I, TyDict, "&arraysize");
    if (!Size)
      return Size.takeError();
    return "a " + std::to_string(Size->IntVal) + " i1";
  }
  if (Kind == "ARRAY") {
    Expected<Object> Total = symtab::field(I, TyDict, "&arraysize");
    Expected<Object> ElemSize = symtab::field(I, TyDict, "&elemsize");
    Expected<Object> ElemTy = symtab::field(I, TyDict, "&elemtype");
    if (!Total || !ElemSize || !ElemTy)
      return Error::failure("malformed array type dict");
    Expected<std::string> Sub = encodePsType(I, *ElemTy);
    if (!Sub)
      return Sub.takeError();
    int64_t Count =
        ElemSize->IntVal > 0 ? Total->IntVal / ElemSize->IntVal : 0;
    return "a " + std::to_string(Count) + " " + *Sub;
  }
  if (Kind == "STRUCT") {
    Expected<Object> Fields = symtab::field(I, TyDict, "&fields");
    if (!Fields || Fields->Ty != Type::Array)
      return Error::failure("malformed struct type dict");
    std::string Out = "s " + std::to_string(Fields->ArrVal->size());
    for (const Object &F : *Fields->ArrVal) {
      Expected<Object> Name = symtab::field(I, F, "name");
      Expected<Object> Offset = symtab::field(I, F, "offset");
      Expected<Object> Sub = symtab::field(I, F, "type");
      if (!Name || !Offset || !Sub)
        return Error::failure("malformed struct field");
      Expected<std::string> SubCode = encodePsType(I, *Sub);
      if (!SubCode)
        return SubCode.takeError();
      Out += " " + Name->text() + " " +
             std::to_string(Offset->IntVal) + " " + *SubCode;
    }
    return Out;
  }
  return Error::failure("cannot describe type with printer " + Kind);
}

namespace {

/// Builds one lookup reply line, or "unknown" when resolution fails.
std::string lookupReply(Target &T, const symtab::StopSite &Site,
                        const std::string &Name) {
  Interp &I = T.interp();
  Expected<Object> Entry = symtab::resolveName(I, Site, Name);
  if (!Entry)
    return "unknown";

  Expected<Object> Kind = symtab::field(I, *Entry, "kind");
  if (Kind && Kind->text() == "procedure") {
    Expected<uint32_t> Addr = T.procAddr(Name);
    return "sym proc " + std::to_string(Addr ? *Addr : 0) + " func";
  }

  Expected<mem::Location> Where = symtab::whereOf(I, *Entry);
  if (!Where)
    return "unknown";
  Expected<Object> TyDict = symtab::field(I, *Entry, "type");
  if (!TyDict)
    return "unknown";
  Expected<std::string> TyCode = encodePsType(I, *TyDict);
  if (!TyCode)
    return "unknown";

  std::string Loc;
  switch (Where->Space) {
  case mem::SpGpr:
    Loc = "reg " + std::to_string(Where->Offset);
    break;
  case mem::SpLocal:
    Loc = "local " + std::to_string(Where->Offset);
    break;
  case mem::SpData:
    Loc = "addr " + std::to_string(Where->Offset);
    break;
  default:
    return "unknown";
  }
  return "sym " + Loc + " " + *TyCode;
}

} // namespace

Expected<ps::Object> ldb::core::compileExpression(
    Target &T, ExprSession &Session, const std::string &Text,
    const symtab::StopSite &Site, std::vector<uint8_t> *CondBytecode) {
  Interp &I = T.interp();
  exprserver::ExprServer &Srv = Session.server();

  // The debugger treats each expression as a string: send it to the
  // expression server, then interpret PostScript code until the server
  // says to stop (paper Sec 3). The final procedure resolves `&mem`
  // dynamically, so the caller may run it against any frame later.
  Srv.toServer().writeLine(Text);

  bool GotResult = false;
  std::string ServerError;
  auto Ops = Object::makeDict(std::make_shared<DictImpl>());
  Ops.DictVal->set(
      "ExpressionServer.lookup",
      Object::makeOperator("ExpressionServer.lookup", [&](Interp &In) {
        std::string Name;
        if (PsStatus St = In.popNameText(Name); St != PsStatus::Ok)
          return St;
        Srv.toServer().writeLine(lookupReply(T, Site, Name));
        return PsStatus::Ok;
      }));
  Ops.DictVal->set(
      "ExpressionServer.result",
      Object::makeOperator("ExpressionServer.result", [&](Interp &) {
        GotResult = true;
        return PsStatus::Stop;
      }));
  Ops.DictVal->set(
      "ExpressionServer.condbc",
      Object::makeOperator("ExpressionServer.condbc", [&](Interp &In) {
        Object Hex;
        if (PsStatus St = In.pop(Hex); St != PsStatus::Ok)
          return St;
        // The server volunteers the nub-expressible form ahead of the
        // PostScript result; keep it only when the caller wants it.
        if (CondBytecode) {
          std::vector<uint8_t> Bytes;
          if (nub::condbc::fromHex(cvsText(Hex), Bytes))
            *CondBytecode = std::move(Bytes);
        }
        return PsStatus::Ok;
      }));
  Ops.DictVal->set(
      "ExpressionServer.error",
      Object::makeOperator("ExpressionServer.error", [&](Interp &In) {
        Object Msg;
        if (PsStatus St = In.pop(Msg); St != PsStatus::Ok)
          return St;
        ServerError = cvsText(Msg);
        return PsStatus::Stop;
      }));

  size_t Depth = I.opStack().size();
  I.dictStack().push_back(Ops);
  auto Source = std::make_shared<CallbackCharSource>(
      [&Srv] { return Srv.fromServer().readByte(); });
  PsStatus St = I.exec(Object::makeFile(Source));
  I.dictStack().pop_back();

  if (St == PsStatus::Failed) {
    I.opStack().resize(Depth);
    return Error::failure(I.errorMessage());
  }
  if (!ServerError.empty()) {
    I.opStack().resize(Depth);
    return Error::failure(ServerError);
  }
  if (!GotResult || I.opStack().size() != Depth + 1) {
    I.opStack().resize(Depth);
    return Error::failure("expression server sent no result");
  }
  Object Proc = I.opStack().back();
  I.opStack().pop_back();
  return Proc;
}

Expected<ps::Object> ldb::core::runCompiled(Target &T, const Object &Proc,
                                            const FrameInfo &Frame) {
  Interp &I = T.interp();
  size_t Depth = I.opStack().size();
  // Execute the procedure against the frame's abstract memory.
  auto Env = Object::makeDict(std::make_shared<DictImpl>());
  Env.DictVal->set("&mem", Object::makeMemory(Frame.Mem));
  I.dictStack().push_back(Env);
  PsStatus St = I.exec(Proc);
  I.dictStack().pop_back();
  if (St == PsStatus::Failed) {
    I.opStack().resize(Depth);
    return Error::failure(I.errorMessage());
  }
  if (I.opStack().size() != Depth + 1) {
    I.opStack().resize(Depth);
    return Error::failure("expression produced no value");
  }
  Object Result = I.opStack().back();
  I.opStack().pop_back();
  return Result;
}

Expected<bool> ldb::core::evalCondition(Target &T, const Object &Proc) {
  Expected<FrameInfo> Frame = T.frame(0);
  if (!Frame)
    return Frame.takeError();
  Expected<Object> Result = runCompiled(T, Proc, *Frame);
  if (!Result)
    return Result.takeError();
  switch (Result->Ty) {
  case Type::Int:
    return Result->IntVal != 0;
  case Type::Bool:
    return Result->BoolVal;
  case Type::Real:
    return Result->RealVal != 0.0;
  default:
    return Error::failure("condition did not yield a number");
  }
}

Expected<std::string> ldb::core::evalExpression(Target &T,
                                                ExprSession &Session,
                                                const std::string &Text,
                                                unsigned FrameNo) {
  Target::Scope S(T);
  Expected<FrameInfo> Frame = T.frame(FrameNo);
  if (!Frame)
    return Frame.takeError();
  Expected<symtab::StopSite> Site = symtab::nearestStopForPc(T, Frame->Pc);
  if (!Site)
    return Site.takeError();
  Expected<Object> Proc = compileExpression(T, Session, Text, *Site);
  if (!Proc)
    return Proc.takeError();
  Expected<Object> Result = runCompiled(T, *Proc, *Frame);
  if (!Result)
    return Result.takeError();
  return cvsText(*Result);
}
