//===- core/debugger.h - ldb ------------------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The debugger: one embedded PostScript interpreter, any number of
/// simultaneously connected targets (possibly on different architectures,
/// paper Sec 7), and the high-level operations user interfaces build on —
/// the paper's point that ldb defines a client interface so other
/// programs (user interfaces, event-action debuggers) can drive it.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_DEBUGGER_H
#define LDB_CORE_DEBUGGER_H

#include "core/eval.h"
#include "core/symtab.h"
#include "core/target.h"

namespace ldb::core {

class Ldb {
public:
  /// Builds the interpreter and reads the initial PostScript (the prelude
  /// of printers — a separately timed startup phase in the paper's Sec 7
  /// table).
  Ldb();

  ps::Interp &interp() { return I; }

  //===--------------------------------------------------------------------===
  // Targets
  //===--------------------------------------------------------------------===

  /// Connects a new target to a waiting process and reads its symbols
  /// and loader table.
  Expected<Target *> connect(nub::ProcessHost &Host,
                             const std::string &ProcName,
                             const std::string &PsSymtab,
                             const std::string &LoaderTable);

  Target *target(const std::string &ProcName);
  std::vector<Target *> targets();

  /// Drops a target (detaching politely when still connected).
  void disconnect(const std::string &ProcName);

  //===--------------------------------------------------------------------===
  // Breakpoints by source location or procedure name (paper Sec 3:
  // "users specify source locations or procedure names; ldb computes the
  // locations of the corresponding instructions").
  //===--------------------------------------------------------------------===

  /// Plants breakpoints at every stopping point for File:Line.
  Error breakAtLine(Target &T, const std::string &File, int Line);

  /// Plants a breakpoint at the procedure's entry stopping point.
  Error breakAtProc(Target &T, const std::string &Proc);

  /// Source-level stepping, built entirely on breakpoints (the layering
  /// the paper's Sec 7.1 sketches): plants temporary breakpoints at every
  /// stopping point of every procedure with symbols, continues, then
  /// removes the temporaries. Stops at the next stopping point reached,
  /// including the entry of a called procedure.
  Error stepToNextStop(Target &T);

private:
  ps::Interp I;
  std::map<std::string, std::unique_ptr<Target>> Targets;
};

} // namespace ldb::core

#endif // LDB_CORE_DEBUGGER_H
