//===- core/debugger.h - ldb ------------------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The debugger: one embedded PostScript interpreter, any number of
/// simultaneously connected targets (possibly on different architectures,
/// paper Sec 7), and the high-level operations user interfaces build on —
/// the paper's point that ldb defines a client interface so other
/// programs (user interfaces, event-action debuggers) can drive it.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_DEBUGGER_H
#define LDB_CORE_DEBUGGER_H

#include "core/eval.h"
#include "core/expreval.h"
#include "core/symtab.h"
#include "core/target.h"

namespace ldb::core {

class Ldb {
public:
  /// Builds the interpreter and reads the initial PostScript (the prelude
  /// of printers — a separately timed startup phase in the paper's Sec 7
  /// table).
  Ldb();

  ps::Interp &interp() { return I; }

  //===--------------------------------------------------------------------===
  // Targets
  //===--------------------------------------------------------------------===

  /// Connects a new target to a waiting process and reads its symbols
  /// and loader table. When \p Sim is given the connection rides a
  /// SimLink with those latency/fault parameters instead of a LocalLink.
  Expected<Target *> connect(nub::ProcessHost &Host,
                             const std::string &ProcName,
                             const std::string &PsSymtab,
                             const std::string &LoaderTable,
                             const nub::SimParams *Sim = nullptr);

  Target *target(const std::string &ProcName);
  std::vector<Target *> targets();

  /// Drops a target (detaching politely when still connected).
  void disconnect(const std::string &ProcName);

  //===--------------------------------------------------------------------===
  // Breakpoints by source location or procedure name (paper Sec 3:
  // "users specify source locations or procedure names; ldb computes the
  // locations of the corresponding instructions").
  //===--------------------------------------------------------------------===

  /// Plants a numbered breakpoint at every stopping point for File:Line.
  Expected<int> addBreakAtLine(Target &T, const std::string &File,
                               int Line);

  /// Plants a numbered breakpoint at the procedure's entry stopping
  /// point.
  Expected<int> addBreakAtProc(Target &T, const std::string &Proc);

  /// Compatibility wrappers that drop the breakpoint number.
  Error breakAtLine(Target &T, const std::string &File, int Line);
  Error breakAtProc(Target &T, const std::string &Proc);

  /// Attaches a condition to breakpoint \p Id: the expression is compiled
  /// once (against the breakpoint's first site, which fixes name
  /// resolution) and evaluated per hit; non-matching hits auto-resume.
  Error setBreakpointCondition(Target &T, ExprSession &Session, int Id,
                               const std::string &Text);

  /// Source-level stepping, built entirely on breakpoints (the layering
  /// the paper's Sec 7.1 sketches) but scoped by the stop-site index:
  /// temporaries go only at the current procedure's stopping points, the
  /// caller's (for returns), and the entries of procedures the current
  /// statement can call — not the seed's every-stopping-point-in-the-
  /// program sweep. Stops at the next stopping point reached, including
  /// the entry of a called procedure.
  Error stepToNextStop(Target &T);

  /// `next`: like step, but a stop in a deeper frame (a call from this
  /// statement, including recursion) auto-resumes — unless a user
  /// breakpoint wants it.
  Error stepOver(Target &T);

  /// `finish`: runs until the caller's frame is current again (plants
  /// only the caller's stopping points).
  Error stepOut(Target &T);

  /// `continue` with breakpoint semantics: a hit whose ignore count or
  /// condition says "not this time" is counted and auto-resumed.
  Error continueToStop(Target &T);

private:
  /// Evaluates \p U's ignore count and condition at a hit; bumps the
  /// counters. True means "really stop".
  Expected<bool> breakpointWantsStop(Target &T, Target::UserBreakpoint &U);

  ps::Interp I;
  std::map<std::string, std::unique_ptr<Target>> Targets;
};

} // namespace ldb::core

#endif // LDB_CORE_DEBUGGER_H
