//===- core/debugger.h - ldb ------------------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The debugger: one embedded PostScript interpreter, a shared repository
/// of per-image artifacts, and any number of simultaneously connected
/// debugging sessions (possibly on different architectures, paper Sec 7).
/// Ldb is the session factory; per-session mutable state lives in
/// DebugSession, and the execution-control operations live in the exec
/// namespace (core/session.h). The target-oriented methods here are
/// compatibility wrappers over those free functions — the paper's point
/// that ldb defines a client interface so other programs (user
/// interfaces, event-action debuggers, fleet drivers) can drive it.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_DEBUGGER_H
#define LDB_CORE_DEBUGGER_H

#include "core/eval.h"
#include "core/expreval.h"
#include "core/imagecache.h"
#include "core/session.h"
#include "core/symtab.h"
#include "core/target.h"

namespace ldb::core {

class Ldb {
public:
  /// Builds the interpreter and reads the initial PostScript (the prelude
  /// of printers — a separately timed startup phase in the paper's Sec 7
  /// table). Image sharing is on unless LDB_NO_IMAGE_SHARE is set.
  Ldb();

  ps::Interp &interp() { return I; }

  //===--------------------------------------------------------------------===
  // Sessions
  //===--------------------------------------------------------------------===

  /// Connects a new session to a waiting process and maps the image's
  /// shared artifacts (symbol table, loader table, stop-site index) into
  /// it — building them only for the first session on each image. With
  /// sharing disabled every session interprets its own private copies
  /// (the naive baseline bench_fleet measures against). When \p Sim is
  /// given the connection rides a SimLink with those latency/fault
  /// parameters; \p Clock joins it to a shared virtual clock so a fleet
  /// event loop can pump many sessions in one time order. A session with
  /// the same name replaces the old one (its transport counters roll into
  /// the retired aggregate).
  Expected<DebugSession *>
  createSession(nub::ProcessHost &Host, const std::string &ProcName,
                const std::string &PsSymtab, const std::string &LoaderTable,
                const nub::SimParams *Sim = nullptr,
                std::shared_ptr<nub::VirtualClock> Clock = nullptr);

  DebugSession *session(const std::string &ProcName);
  std::vector<DebugSession *> sessions();

  /// The session owning \p T, or null (a target not created by this Ldb).
  DebugSession *sessionFor(const Target &T);

  /// Drops a session (detaching politely when still connected). Its
  /// transport counters roll into the retired aggregate so fleet totals
  /// survive the session.
  void disconnect(const std::string &ProcName);

  //===--------------------------------------------------------------------===
  // Shared per-image artifacts and fleet-wide statistics
  //===--------------------------------------------------------------------===

  ImageRepository &images() { return Images; }

  /// Toggles image sharing for sessions created after the call.
  void setImageSharing(bool Share) { ShareImages = Share; }
  bool imageSharing() const { return ShareImages; }

  /// Transport counters summed across every live session plus everything
  /// retired sessions accumulated before they were dropped.
  mem::TransportStats fleetStats();

  /// Clears the retired-session aggregate (stats reset does; live
  /// sessions reset their own blocks).
  void clearRetiredStats() { Retired.reset(); }

  //===--------------------------------------------------------------------===
  // Target-oriented compatibility interface
  //===--------------------------------------------------------------------===

  /// Connects a new session and returns its target.
  Expected<Target *> connect(nub::ProcessHost &Host,
                             const std::string &ProcName,
                             const std::string &PsSymtab,
                             const std::string &LoaderTable,
                             const nub::SimParams *Sim = nullptr);

  Target *target(const std::string &ProcName);
  std::vector<Target *> targets();

  //===--------------------------------------------------------------------===
  // Breakpoints by source location or procedure name (paper Sec 3:
  // "users specify source locations or procedure names; ldb computes the
  // locations of the corresponding instructions").
  //===--------------------------------------------------------------------===

  /// Plants a numbered breakpoint at every stopping point for File:Line.
  Expected<int> addBreakAtLine(Target &T, const std::string &File,
                               int Line) {
    return exec::addBreakAtLine(T, File, Line);
  }

  /// Plants a numbered breakpoint at the procedure's entry stopping
  /// point.
  Expected<int> addBreakAtProc(Target &T, const std::string &Proc) {
    return exec::addBreakAtProc(T, Proc);
  }

  /// Compatibility wrappers that drop the breakpoint number.
  Error breakAtLine(Target &T, const std::string &File, int Line);
  Error breakAtProc(Target &T, const std::string &Proc);

  /// Attaches a condition to breakpoint \p Id: the expression is compiled
  /// once (against the breakpoint's first site, which fixes name
  /// resolution) and evaluated per hit; non-matching hits auto-resume.
  Error setBreakpointCondition(Target &T, ExprSession &Session, int Id,
                               const std::string &Text) {
    return exec::setBreakpointCondition(T, Session, Id, Text);
  }

  /// Source-level stepping, built entirely on breakpoints (the layering
  /// the paper's Sec 7.1 sketches) but scoped by the stop-site index:
  /// temporaries go only at the current procedure's stopping points, the
  /// caller's (for returns), and the entries of procedures the current
  /// statement can call. Stops at the next stopping point reached,
  /// including the entry of a called procedure.
  Error stepToNextStop(Target &T) { return exec::stepToNextStop(T); }

  /// `next`: like step, but a stop in a deeper frame (a call from this
  /// statement, including recursion) auto-resumes — unless a user
  /// breakpoint wants it.
  Error stepOver(Target &T) { return exec::stepOver(T); }

  /// `finish`: runs until the caller's frame is current again (plants
  /// only the caller's stopping points).
  Error stepOut(Target &T) { return exec::stepOut(T); }

  /// `continue` with breakpoint semantics: a hit whose ignore count or
  /// condition says "not this time" is counted and auto-resumed.
  Error continueToStop(Target &T) { return exec::continueToStop(T); }

private:
  ps::Interp I;
  std::map<std::string, std::unique_ptr<DebugSession>> Sessions;
  ImageRepository Images;
  bool ShareImages = true;
  mem::TransportStats Retired; ///< rollup of disconnected sessions
};

} // namespace ldb::core

#endif // LDB_CORE_DEBUGGER_H
