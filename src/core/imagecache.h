//===- core/imagecache.h - shared per-image artifacts -----------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The image repository: one copy of each image's immutable heavyweights,
/// shared by every session debugging that image. A session's Target used
/// to interpret its own copy of the symbol table and loader table into a
/// private dictionary — megabytes of PostScript objects duplicated per
/// session, the "unbounded per-session duplication" a fleet server cannot
/// afford. The repository interprets each distinct (architecture, symbol
/// table, loader table) triple once, into a shared image dictionary, and
/// builds one StopSiteIndex over it; sessions map the dictionary into
/// their scope below their private target dictionary, so per-session
/// definitions (expression temporaries, anything user-defined) still land
/// privately while symtab and loader lookups resolve through the shared
/// copy.
///
/// What is shareable and why:
///  * the symtab/loadertable dictionaries — immutable after load; the
///    deferred-entry forcing memoizes *into* the shared structure, so one
///    session's forcing pays for everyone (the AtomTable and fastload
///    token cache below this layer are already process-global);
///  * the StopSiteIndex — reads only the interpreter, never target
///    memory;
///  * the /where reconstruction — its LazyData forcing reads anchor
///    addresses and data words that are constants of the loaded image,
///    identical across sessions running the same image.
/// Per-session state (breakpoints, stop state, caches, transport) stays
/// in the Target.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_IMAGECACHE_H
#define LDB_CORE_IMAGECACHE_H

#include "core/stopindex.h"
#include "postscript/object.h"
#include "support/error.h"

#include <map>
#include <memory>
#include <string>

namespace ldb::core {

class Target;

/// The immutable heavyweights of one loaded image: the interpreted
/// symtab + loadertable dictionary, the stop-site index over it, and the
/// handful of scalars extracted at load time. Built once by the
/// repository; mapped read-through into every session's scope.
class SharedImage {
public:
  uint64_t key() const { return Key; }
  const std::string &archName() const { return Arch; }
  ps::Object imageDict() const { return Dict; }
  uint32_t rptAddr() const { return Rpt; }
  StopSiteIndex &stopIndex() { return *Index; }
  /// Bytes of PostScript source the image was built from — what every
  /// additional session avoids re-interpreting.
  size_t sourceBytes() const { return SrcBytes; }

private:
  friend class ImageRepository;
  uint64_t Key = 0;
  std::string Arch;
  ps::Object Dict;
  std::unique_ptr<StopSiteIndex> Index;
  uint32_t Rpt = 0;
  size_t SrcBytes = 0;
};

/// The per-debugger image cache, keyed by content hash of (architecture,
/// symbol table, loader table). acquire() returns the existing entry when
/// the image is already loaded; otherwise it interprets the texts once —
/// inside \p For's architecture scope, so machine-dependent names resolve
/// exactly as a private load would — and indexes them.
class ImageRepository {
public:
  Expected<std::shared_ptr<SharedImage>>
  acquire(Target &For, const std::string &PsSymtab,
          const std::string &LoaderTable);

  size_t imageCount() const { return Images.size(); }
  /// Source bytes across all entries: the per-session cost each sharing
  /// session avoids.
  size_t sourceBytes() const;

private:
  std::map<uint64_t, std::shared_ptr<SharedImage>> Images;
};

/// The post-load consistency check both load paths share (paper Sec 2):
/// /loadertable must exist, the symtab's architecture must match
/// \p ArchName, and every anchor symbol the symtab names must appear in
/// the loader table's anchor map. Extracts the runtime procedure table
/// address into \p RptAddr. Must run inside a scope where the freshly
/// loaded dictionaries are visible.
Error verifyLoadedImage(ps::Interp &I, const std::string &ArchName,
                        uint32_t &RptAddr);

} // namespace ldb::core

#endif // LDB_CORE_IMAGECACHE_H
