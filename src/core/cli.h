//===- core/cli.h - the command interpreter ---------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-level command interpreter, built entirely on the client
/// interface (the paper's point that ldb exposes one so user interfaces
/// and higher-level tools can be layered above it). Commands:
///
///   break SPEC [if EXPR]              plant (conditional) breakpoints
///   breakpoints / info breakpoints    list with conditions and counters
///   delete [N] / ignore N COUNT       remove / skip the next COUNT hits
///   continue (c)                      resume until a stop that matches
///   step (s) / next (n) / finish      scoped source-level stepping
///   status                            why and where the target stopped
///   where (bt)                        backtrace
///   print NAME (p)                    print via the PostScript printers
///   eval EXPR (e)                     evaluate via the expression server
///   set NAME VALUE                    assign a constant
///   frame N                           select the current frame
///   regs                              registers, with per-target names
///   disasm [N]                        disassemble N words at the pc
///   targets / target NAME             list / switch sessions
///   disconnect [NAME]                 drop a session
///   help, quit
///
/// The interpreter holds no per-session state of its own: it remembers
/// only the *name* of the selected session and resolves it through the
/// debugger on every command, so a session dropped out from under it
/// (disconnect, reconnect-after-crash replacing the entry) can never
/// leave a dangling pointer — the next command reports the session gone.
/// Frame selection and the expression-server session live in the
/// DebugSession and follow it across `target NAME` switches.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_CLI_H
#define LDB_CORE_CLI_H

#include "core/debugger.h"
#include "core/expreval.h"

namespace ldb::core {

class CommandInterpreter {
public:
  explicit CommandInterpreter(Ldb &Debugger) : Debugger(Debugger) {}

  /// Executes one command line and returns its output (errors come back
  /// as "error: ..." text, not failures — this is the user surface).
  std::string execute(const std::string &Line);

  /// The session commands apply to; switched by `target NAME`. Only the
  /// name is remembered — resolution happens per command.
  void setCurrent(DebugSession *S) {
    CurrentName = S ? S->name() : std::string();
  }
  void setCurrent(Target *T) {
    CurrentName = T ? T->name() : std::string();
  }

  /// The selected session's target, or null when none is selected or the
  /// session is gone.
  Target *current() {
    DebugSession *S =
        CurrentName.empty() ? nullptr : Debugger.session(CurrentName);
    return S ? &S->target() : nullptr;
  }

  bool quitRequested() const { return Quit; }

private:
  /// Resolves the selected session; on failure fills \p Err with the
  /// message to show and returns null (clearing a stale selection).
  DebugSession *currentSession(std::string &Err);

  Ldb &Debugger;
  std::string CurrentName;
  bool Quit = false;
};

} // namespace ldb::core

#endif // LDB_CORE_CLI_H
