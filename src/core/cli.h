//===- core/cli.h - the command interpreter ---------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-level command interpreter, built entirely on the client
/// interface (the paper's point that ldb exposes one so user interfaces
/// and higher-level tools can be layered above it). Commands:
///
///   break SPEC [if EXPR]              plant (conditional) breakpoints
///   breakpoints / info breakpoints    list with conditions and counters
///   delete [N] / ignore N COUNT       remove / skip the next COUNT hits
///   continue (c)                      resume until a stop that matches
///   step (s) / next (n) / finish      scoped source-level stepping
///   status                            why and where the target stopped
///   where (bt)                        backtrace
///   print NAME (p)                    print via the PostScript printers
///   eval EXPR (e)                     evaluate via the expression server
///   set NAME VALUE                    assign a constant
///   frame N                           select the current frame
///   regs                              registers, with per-target names
///   disasm [N]                        disassemble N words at the pc
///   targets / target NAME             list / switch targets
///   help, quit
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_CLI_H
#define LDB_CORE_CLI_H

#include "core/debugger.h"
#include "core/expreval.h"

namespace ldb::core {

class CommandInterpreter {
public:
  explicit CommandInterpreter(Ldb &Debugger) : Debugger(Debugger) {}

  /// Executes one command line and returns its output (errors come back
  /// as "error: ..." text, not failures — this is the user surface).
  std::string execute(const std::string &Line);

  bool quitRequested() const { return Quit; }

  /// The target commands apply to; switched by `target NAME`.
  void setCurrent(Target *T) { Current = T; }
  Target *current() { return Current; }

private:
  std::string requireTarget();

  Ldb &Debugger;
  ExprSession Session;
  Target *Current = nullptr;
  unsigned CurrentFrame = 0;
  bool Quit = false;
};

} // namespace ldb::core

#endif // LDB_CORE_CLI_H
