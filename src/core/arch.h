//===- core/arch.h - per-architecture bundle --------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Everything ldb proper needs per target architecture, gathered behind
/// one registry keyed by the architecture name the nub announces (which
/// is also the /architecture value in top-level dictionaries, paper Sec
/// 2). Machine-independent classes define the abstractions; the
/// machine-dependent subtypes and data live in core/targets/*.cpp and are
/// counted by the Sec 4.3 LoC experiment:
///
///  * breakpoint data: the break and no-op bit patterns, the instruction
///    access width, and the pc advance for resuming past a planted no-op
///    (the four items of Sec 3);
///  * the stack-frame walker subtype (Sec 4.1);
///  * the per-architecture PostScript fragment (register names and
///    similar MD data, Sec 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_ARCH_H
#define LDB_CORE_ARCH_H

#include "mem/memories.h"
#include "nub/client.h"
#include "nub/nubmd.h"
#include "support/error.h"
#include "target/targetdesc.h"

#include <functional>
#include <memory>
#include <string>

namespace ldb::core {

class Target; // the debugger's handle on one process (core/target.h)

/// The four items of machine-dependent breakpoint data (paper Sec 3).
struct BreakpointData {
  uint32_t BreakWord;
  uint32_t NopWord;
  unsigned InstrSize; ///< type used to fetch and store instructions
  unsigned PcAdvance; ///< amount to advance the pc past the no-op
};

/// One activation record. The machine-independent part carries the pc,
/// the virtual frame pointer, and the frame's abstract memory (the joined
/// memory at the root of the Fig 4 DAG); machine-dependent walkers fill
/// these in.
struct FrameInfo {
  uint32_t Pc = 0;
  uint32_t Vfp = 0;
  mem::MemoryRef Mem;                       ///< joined memory for the frame
  std::shared_ptr<mem::AliasMemory> Alias;  ///< kept for alias reuse
};

/// The machine-dependent stack-frame methods: one that builds the top
/// frame from a context and one that walks down the stack (paper Sec 4.1:
/// machine-dependent instances supply only two methods).
class FrameWalker {
public:
  virtual ~FrameWalker();

  virtual Expected<FrameInfo> topFrame(Target &T, uint32_t CtxAddr) const = 0;
  virtual Expected<FrameInfo> callerFrame(Target &T,
                                          const FrameInfo &Callee) const = 0;

  /// Frame size and register-save data for the procedure containing
  /// \p Pc. The zmips implementation reads the runtime procedure table in
  /// the target's address space; the shared frame-pointer implementation
  /// reads the symbol table (paper Sec 4.3).
  struct ProcFrameData {
    uint32_t FrameSize = 0;
    uint32_t SaveMask = 0;
    int32_t SaveAreaOffset = 0;
  };
  virtual Expected<ProcFrameData> frameData(Target &T, uint32_t Pc) const = 0;
};

/// Shared machinery, parameterized by machine-dependent data: builds the
/// frame DAG (wire -> alias -> register -> joined) with register aliases
/// supplied by \p RegHome, pc and vfp as immediates in the extra-register
/// space, and the frame-local space rebased at the vfp.
FrameInfo buildFrameDag(Target &T, uint32_t Pc, uint32_t Vfp,
                        const std::function<mem::Location(char, unsigned)>
                            &RegHome);

/// Builds a caller frame once the machine-dependent walker has produced
/// the caller's pc and vfp: registers the callee saved are found on the
/// stack; aliases from the called frame are reused for the rest (paper
/// Sec 4.1).
Expected<FrameInfo> buildCallerFrameDag(Target &T, const FrameInfo &Callee,
                                        uint32_t CallerPc, uint32_t CallerVfp,
                                        uint32_t CalleeSaveMask);

/// The shared walker for targets with a frame pointer.
const FrameWalker &fpFrameWalker();

struct Architecture {
  const target::TargetDesc *Desc = nullptr;
  BreakpointData Bp;
  const FrameWalker *Walker = nullptr;
  std::string MdPostScript; ///< register names etc., pushed per target
};

/// The registered architecture named \p Name, or null.
const Architecture *architectureByName(const std::string &Name);

} // namespace ldb::core

#endif // LDB_CORE_ARCH_H
