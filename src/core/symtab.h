//===- core/symtab.h - reading PostScript symbol tables ---------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ldb's view of the PostScript symbol tables: stopping points, the
/// uplink-tree name resolution of Sec 2, and where-value evaluation with
/// the replace-procedure-by-result memoization of Sec 5. All functions
/// must run inside a Target::Scope so the target's dictionaries are on
/// the dictionary stack and LazyData can reach the linker interface.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_SYMTAB_H
#define LDB_CORE_SYMTAB_H

#include "core/target.h"
#include "postscript/interp.h"

#include <vector>

namespace ldb::core::symtab {

/// If \p V is executable (a deferred entry string or a where-procedure),
/// executes it and replaces it with the single result.
Error force(ps::Interp &I, ps::Object &V);

/// Fetches \p Key from \p Dict, forcing deferred values and memoizing the
/// result back into the dictionary (literal-replaces-procedure, Sec 5).
Expected<ps::Object> field(ps::Interp &I, const ps::Object &Dict,
                           const std::string &Key);

/// True if \p Dict has \p Key.
bool hasField(const ps::Object &Dict, const std::string &Key);

/// The current /symtab top-level dictionary.
Expected<ps::Object> topLevel(ps::Interp &I);

/// The (forced) symbol-table entry for procedure \p Name, from the
/// top-level externs dictionary.
Expected<ps::Object> procEntryByName(ps::Interp &I, const std::string &Name);

/// A stopping point, fully resolved to an object-code address.
struct StopSite {
  uint32_t Addr = 0;     ///< absolute address of the no-op
  int Line = 0;          ///< source line
  int Index = -1;        ///< position in the procedure's loci
  uint32_t ProcAddr = 0;
  std::string ProcName;
  ps::Object ProcEntry; ///< the procedure's symbol-table entry
  ps::Object Visible;   ///< head of the visible-symbol chain (may be null)
};

/// The stopping point whose no-op is at \p Pc (the context for name
/// resolution when the target stops there).
Expected<StopSite> stopForPc(Target &T, uint32_t Pc);

/// The nearest stopping point at or before \p Pc — used for caller
/// frames, whose pc is at a call site between stopping points, and for
/// faults that occur mid-expression.
Expected<StopSite> nearestStopForPc(Target &T, uint32_t Pc);

/// The symbolization a stop description or backtrace row needs — no
/// entry dictionary, no visible chain. On the LDBI fast path this is
/// pure index arithmetic; without a blob it forces at most the
/// procedure's entry (once, the display file is cached on the index).
struct SiteBrief {
  uint32_t Addr = 0; ///< the stopping point's address
  int Line = 0;
  std::string ProcName;
  std::string File; ///< display source file; empty when HasFile is false
  bool HasFile = false;
};

/// The brief for the nearest stopping point at or before \p Pc.
Expected<SiteBrief> briefForPc(Target &T, uint32_t Pc);

/// All stopping points for \p File : \p Line — one source location can
/// map to several stopping points (paper Sec 2).
Expected<std::vector<StopSite>> stopsForSource(Target &T,
                                               const std::string &File,
                                               int Line);

/// The procedure-entry stopping point of \p ProcName.
Expected<StopSite> entryStop(Target &T, const std::string &ProcName);

/// Name resolution (paper Sec 2): walk up the uplink tree from the
/// stopping point's visible chain, then the procedure's statics, then the
/// program's externs. Returns the symbol's (forced) entry.
Expected<ps::Object> resolveName(ps::Interp &I, const StopSite &Site,
                                 const std::string &Name);

/// The entry's location: forces and memoizes /where.
Expected<mem::Location> whereOf(ps::Interp &I, ps::Object Entry);

} // namespace ldb::core::symtab

#endif // LDB_CORE_SYMTAB_H
