//===- core/debugger.cpp - ldb ----------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/debugger.h"

#include "postscript/fastload.h"

#include <cassert>

using namespace ldb;
using namespace ldb::core;

Ldb::Ldb() {
  // Reading the initial PostScript can only fail if the prelude itself is
  // broken; surface that loudly in debug builds.
  Error E = ps::fastload::Cache::global().run(I, ps::prelude());
  (void)E;
  assert(!E && "the machine-independent prelude must interpret cleanly");
}

Expected<Target *> Ldb::connect(nub::ProcessHost &Host,
                                const std::string &ProcName,
                                const std::string &PsSymtab,
                                const std::string &LoaderTable) {
  auto T = std::make_unique<Target>(ProcName, I);
  if (Error E = T->connect(Host, ProcName))
    return E;
  if (!PsSymtab.empty())
    if (Error E = T->loadSymbols(PsSymtab))
      return E;
  if (!LoaderTable.empty())
    if (Error E = T->loadLoaderTable(LoaderTable))
      return E;
  Target *Raw = T.get();
  Targets[ProcName] = std::move(T);
  return Raw;
}

Target *Ldb::target(const std::string &ProcName) {
  auto It = Targets.find(ProcName);
  return It == Targets.end() ? nullptr : It->second.get();
}

std::vector<Target *> Ldb::targets() {
  std::vector<Target *> Out;
  for (auto &[Name, T] : Targets)
    Out.push_back(T.get());
  return Out;
}

void Ldb::disconnect(const std::string &ProcName) {
  auto It = Targets.find(ProcName);
  if (It == Targets.end())
    return;
  if (It->second->connected()) {
    Error E = It->second->client().detach();
    (void)E; // the process may already be gone
  }
  Targets.erase(It);
}

Error Ldb::breakAtLine(Target &T, const std::string &File, int Line) {
  Target::Scope S(T);
  Expected<std::vector<symtab::StopSite>> Sites =
      symtab::stopsForSource(T, File, Line);
  if (!Sites)
    return Sites.takeError();
  std::vector<uint32_t> Addrs;
  for (const symtab::StopSite &Site : *Sites)
    Addrs.push_back(Site.Addr);
  return T.plantBreakpoints(Addrs);
}

Error Ldb::stepToNextStop(Target &T) {
  Target::Scope S(T);
  Expected<ps::Object> Top = symtab::topLevel(T.interp());
  if (!Top)
    return Top.takeError();
  Expected<ps::Object> Procs = symtab::field(T.interp(), *Top, "procs");
  if (!Procs)
    return Procs.takeError();

  // Plant a temporary breakpoint at every stopping point that does not
  // already carry one. The currently-stopped point is skipped by the
  // normal resume logic (the pc is advanced past its no-op).
  std::vector<uint32_t> Temporary;
  for (const ps::Object &EntryRef : *Procs->ArrVal) {
    ps::Object Entry = EntryRef;
    if (Error E = symtab::force(T.interp(), Entry))
      return E;
    Expected<ps::Object> Name = symtab::field(T.interp(), Entry, "name");
    if (!Name)
      continue;
    Expected<uint32_t> ProcAddr = T.procAddr(Name->text());
    if (!ProcAddr)
      continue; // not in this image
    Expected<ps::Object> Loci = symtab::field(T.interp(), Entry, "loci");
    if (!Loci)
      continue;
    for (const ps::Object &Locus : *Loci->ArrVal) {
      if (Locus.Ty != ps::Type::Array || Locus.ArrVal->size() < 2)
        continue;
      uint32_t Addr = *ProcAddr +
                      static_cast<uint32_t>((*Locus.ArrVal)[1].IntVal);
      if (T.breakpointAt(Addr))
        continue;
      Temporary.push_back(Addr);
    }
  }
  // One batch plant and one batch removal: a handful of block transfers
  // instead of a round trip per stopping point.
  if (Error E = T.plantBreakpoints(Temporary))
    return E;

  Error RunError = T.resume();
  if (!Temporary.empty()) {
    Error E = T.removeBreakpoints(Temporary);
    // An exited process may not service the removal stores; that is fine,
    // the image is gone with it.
    if (!RunError && E && !T.exited())
      RunError = std::move(E);
  }
  return RunError;
}

Error Ldb::breakAtProc(Target &T, const std::string &Proc) {
  Target::Scope S(T);
  Expected<symtab::StopSite> Site = symtab::entryStop(T, Proc);
  if (!Site)
    return Site.takeError();
  return T.plantBreakpoint(Site->Addr);
}
