//===- core/debugger.cpp - ldb ----------------------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/debugger.h"

#include "postscript/fastload.h"

#include <cassert>
#include <cstdlib>

using namespace ldb;
using namespace ldb::core;

Ldb::Ldb() {
  // Reading the initial PostScript can only fail if the prelude itself is
  // broken; surface that loudly in debug builds.
  Error E = ps::fastload::Cache::global().run(I, ps::prelude());
  (void)E;
  assert(!E && "the machine-independent prelude must interpret cleanly");
  const char *NoShare = std::getenv("LDB_NO_IMAGE_SHARE");
  if (NoShare && *NoShare)
    ShareImages = false;
}

Expected<DebugSession *>
Ldb::createSession(nub::ProcessHost &Host, const std::string &ProcName,
                   const std::string &PsSymtab,
                   const std::string &LoaderTable, const nub::SimParams *Sim,
                   std::shared_ptr<nub::VirtualClock> Clock) {
  auto S = std::make_unique<DebugSession>(*this, ProcName, I);
  Target &T = S->target();
  if (Error E = T.connect(Host, ProcName, Sim, std::move(Clock)))
    return E;
  if (ShareImages && !LoaderTable.empty()) {
    Expected<std::shared_ptr<SharedImage>> Img =
        Images.acquire(T, PsSymtab, LoaderTable);
    if (!Img)
      return Img.takeError();
    if (Error E = T.attachImage(*Img))
      return E;
  } else {
    if (!PsSymtab.empty())
      if (Error E = T.loadSymbols(PsSymtab))
        return E;
    if (!LoaderTable.empty())
      if (Error E = T.loadLoaderTable(LoaderTable))
        return E;
  }
  DebugSession *Raw = S.get();
  // Replacement keeps reconnect-after-crash working: the stale session's
  // counters survive in the retired aggregate.
  auto It = Sessions.find(ProcName);
  if (It != Sessions.end())
    Retired.accumulate(It->second->stats());
  Sessions[ProcName] = std::move(S);
  return Raw;
}

DebugSession *Ldb::session(const std::string &ProcName) {
  auto It = Sessions.find(ProcName);
  return It == Sessions.end() ? nullptr : It->second.get();
}

std::vector<DebugSession *> Ldb::sessions() {
  std::vector<DebugSession *> Out;
  for (auto &[Name, S] : Sessions)
    Out.push_back(S.get());
  return Out;
}

DebugSession *Ldb::sessionFor(const Target &T) {
  for (auto &[Name, S] : Sessions)
    if (&S->target() == &T)
      return S.get();
  return nullptr;
}

void Ldb::disconnect(const std::string &ProcName) {
  auto It = Sessions.find(ProcName);
  if (It == Sessions.end())
    return;
  Target &T = It->second->target();
  if (T.connected()) {
    // The nub outlives the connection and waits for the next debugger:
    // detach must leave the process as if it had never been debugged.
    // Break words left planted would refuse the next debugger's plants
    // (no no-op at the site) and trap with nobody listening; condition
    // or tracepoint records left in the nub would hand that debugger
    // decisions it never asked for the moment it plants the same site
    // (hits silently auto-resumed at what it believes are plain
    // breakpoints). The delete paths unplant and clear both, and they
    // are best-effort on a dying process — a failed store costs nothing.
    std::vector<int> BpIds, TpIds;
    for (const auto &[Id, U] : T.userBreakpoints())
      BpIds.push_back(Id);
    for (const auto &[Id, Tp] : T.tracepoints())
      TpIds.push_back(Id);
    for (int Id : BpIds)
      (void)T.deleteUserBreakpoint(Id);
    for (int Id : TpIds)
      (void)T.deleteTracepoint(Id);
    Error E = T.client().detach();
    (void)E; // the process may already be gone
  }
  Retired.accumulate(It->second->stats());
  Sessions.erase(It);
}

mem::TransportStats Ldb::fleetStats() {
  mem::TransportStats Out = Retired;
  for (auto &[Name, S] : Sessions)
    Out.accumulate(S->stats());
  return Out;
}

Expected<Target *> Ldb::connect(nub::ProcessHost &Host,
                                const std::string &ProcName,
                                const std::string &PsSymtab,
                                const std::string &LoaderTable,
                                const nub::SimParams *Sim) {
  Expected<DebugSession *> S =
      createSession(Host, ProcName, PsSymtab, LoaderTable, Sim);
  if (!S)
    return S.takeError();
  return &(*S)->target();
}

Target *Ldb::target(const std::string &ProcName) {
  DebugSession *S = session(ProcName);
  return S ? &S->target() : nullptr;
}

std::vector<Target *> Ldb::targets() {
  std::vector<Target *> Out;
  for (auto &[Name, S] : Sessions)
    Out.push_back(&S->target());
  return Out;
}

Error Ldb::breakAtLine(Target &T, const std::string &File, int Line) {
  Expected<int> Id = exec::addBreakAtLine(T, File, Line);
  if (!Id)
    return Id.takeError();
  return Error::success();
}

Error Ldb::breakAtProc(Target &T, const std::string &Proc) {
  Expected<int> Id = exec::addBreakAtProc(T, Proc);
  if (!Id)
    return Id.takeError();
  return Error::success();
}
