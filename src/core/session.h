//===- core/session.h - one debugging session -------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DebugSession owns all per-session mutable state: the Target (its nub
/// connection, stop state, breakpoints, transport counters), the
/// expression-server session, and the user's current frame selection.
/// Everything above it — Ldb, the command interpreter, the fleet event
/// loop — operates on sessions; everything immutable and per-image lives
/// in the shared ImageRepository instead. This is the separation the
/// paper's client interface implies (Sec 2, 7): one debugger core, any
/// number of independent sessions multiplexed over it.
///
/// The execution-control operations (scoped stepping, breakpoint
/// planting by source location, conditional-hit auto-resume) live here as
/// free functions over Target in the exec namespace; DebugSession's
/// methods and Ldb's target-oriented compatibility wrappers both delegate
/// to them.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_SESSION_H
#define LDB_CORE_SESSION_H

#include "core/expreval.h"
#include "core/target.h"

namespace ldb::core {

class Ldb;

//===----------------------------------------------------------------------===//
// Execution control over a target (paper Sec 3, 7.1). All of it is
// breakpoint-based and scoped by the stop-site index.
//===----------------------------------------------------------------------===//

namespace exec {

/// Plants a numbered breakpoint at every stopping point for File:Line.
Expected<int> addBreakAtLine(Target &T, const std::string &File, int Line);

/// Plants a numbered breakpoint at the procedure's entry stopping point.
Expected<int> addBreakAtProc(Target &T, const std::string &Proc);

/// Attaches a condition to breakpoint \p Id: compiled once against the
/// breakpoint's first site, evaluated per hit via \p Session's server.
Error setBreakpointCondition(Target &T, ExprSession &Session, int Id,
                             const std::string &Text);

/// Evaluates \p U's ignore count and condition at a hit; bumps the
/// counters. True means "really stop".
Expected<bool> breakpointWantsStop(Target &T, Target::UserBreakpoint &U);

/// Plants a numbered tracepoint at \p Spec (FILE:LINE or PROC) whose hits
/// never stop: while the target runs, the nub appends each expression's
/// value plus the sp/fp registers to its ring buffer. Every expression
/// must compile to nub bytecode (there is no host fallback for a site the
/// debugger never sees), so this fails under LDB_NO_NUBCOND.
Expected<int> addTracepoint(Target &T, ExprSession &Session,
                            const std::string &Spec,
                            const std::vector<std::string> &ExprTexts);

/// Source-level step into calls; `next` over them; `finish` out to the
/// caller; `continue` with conditional-hit auto-resume.
Error stepToNextStop(Target &T);
Error stepOver(Target &T);
Error stepOut(Target &T);
Error continueToStop(Target &T);

/// Reverse execution over a recording target: restore the nearest
/// checkpoint below the current stop and re-execute forward under the
/// scoped-stepping machinery, landing on the latest qualifying stop
/// strictly before now — the previous stopping point (reverse-step), the
/// previous one in this frame or a shallower one (reverse-next), the
/// last stop before this procedure was entered (reverse-finish), or the
/// previous breakpoint stop with conditions and ignore counts honored
/// (reverse-continue). Cost is bounded: one checkpoint restore plus at
/// most one checkpoint interval of re-execution per interval searched.
/// reverse-step and reverse-continue past the oldest qualifying stop
/// settle at the recording's first keyframe.
Error reverseStep(Target &T);
Error reverseNext(Target &T);
Error reverseFinish(Target &T);
Error reverseContinue(Target &T);

} // namespace exec

/// One debugging session: a connected target plus the per-session state
/// that used to be smeared across Ldb and the command interpreter.
/// Created by Ldb (the session factory), which shares its interpreter and
/// image repository across all sessions.
class DebugSession {
public:
  DebugSession(Ldb &Owner, std::string Name, ps::Interp &I)
      : Owner(Owner), Name(std::move(Name)),
        T(std::make_unique<Target>(this->Name, I)) {}

  const std::string &name() const { return Name; }
  Ldb &debugger() { return Owner; }
  Target &target() { return *T; }
  ExprSession &exprSession() { return Session; }

  /// The user's frame selection (print/eval/set read it); reset to the
  /// stopped frame whenever the target runs or the session is re-entered.
  unsigned currentFrame() const { return CurrentFrame; }
  void setCurrentFrame(unsigned N) { CurrentFrame = N; }

  /// This session's transport counters (the fleet rollup sums them).
  mem::TransportStats &stats() { return T->stats(); }

  // Breakpoints.
  Expected<int> addBreakAtLine(const std::string &File, int Line) {
    return exec::addBreakAtLine(*T, File, Line);
  }
  Expected<int> addBreakAtProc(const std::string &Proc) {
    return exec::addBreakAtProc(*T, Proc);
  }
  Error setBreakpointCondition(int Id, const std::string &Text) {
    return exec::setBreakpointCondition(*T, Session, Id, Text);
  }
  Expected<int> addTracepoint(const std::string &Spec,
                              const std::vector<std::string> &ExprTexts) {
    return exec::addTracepoint(*T, Session, Spec, ExprTexts);
  }

  // Execution control. Each resets the frame selection on success.
  Error stepToNextStop() { return ranTo(exec::stepToNextStop(*T)); }
  Error stepOver() { return ranTo(exec::stepOver(*T)); }
  Error stepOut() { return ranTo(exec::stepOut(*T)); }
  Error continueToStop() { return ranTo(exec::continueToStop(*T)); }

  // Time travel. Reverse commands move the stop, so they too reset the
  // frame selection.
  Error enableRecording() { return T->enableRecording(); }
  Error disableRecording() { return T->disableRecording(); }
  Error reverseStep() { return ranTo(exec::reverseStep(*T)); }
  Error reverseNext() { return ranTo(exec::reverseNext(*T)); }
  Error reverseFinish() { return ranTo(exec::reverseFinish(*T)); }
  Error reverseContinue() { return ranTo(exec::reverseContinue(*T)); }

private:
  Error ranTo(Error E) {
    if (!E)
      CurrentFrame = 0;
    return E;
  }

  Ldb &Owner;
  std::string Name;
  std::unique_ptr<Target> T;
  ExprSession Session;
  unsigned CurrentFrame = 0;
};

} // namespace ldb::core

#endif // LDB_CORE_SESSION_H
