//===- core/stopindex.cpp - the per-target stop-site index -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "core/stopindex.h"

#include "core/symblob.h"
#include "core/symtab.h"
#include "core/target.h"

#include <algorithm>

using namespace ldb;
using namespace ldb::core;
using namespace ldb::ps;

namespace {

/// Index errors follow ldb-verify's diagnostic text: [check] artifact:
/// symbol: message.
Error indexError(const std::string &Symbol, const std::string &Message) {
  return Error::failure("[stop-index] symtab: " + Symbol + ": " + Message);
}

} // namespace

Error StopSiteIndex::build() {
  Object LT;
  if (!I.lookup("loadertable", LT) || LT.Ty != Type::Dict)
    return Error::failure("no loader table for this target");
  const Object *Pt = LT.DictVal->find("proctable");
  if (!Pt || Pt->Ty != Type::Array)
    return Error::failure("loader table has no proctable");

  // The flat array of ascending (address, name) pairs. No symbol-table
  // entry is touched: procedure ranges come straight from the linker.
  Procs.clear();
  ByName.clear();
  FileProcs.clear();
  for (size_t K = 0; K + 1 < Pt->ArrVal->size(); K += 2) {
    const Object &Addr = (*Pt->ArrVal)[K];
    const Object &Name = (*Pt->ArrVal)[K + 1];
    if (Addr.Ty != Type::Int ||
        (Name.Ty != Type::String && Name.Ty != Type::Name))
      return Error::failure("malformed proctable entry");
    Proc P;
    P.Addr = static_cast<uint32_t>(Addr.IntVal);
    P.Name = Name.text();
    Procs.push_back(std::move(P));
  }
  std::sort(Procs.begin(), Procs.end(),
            [](const Proc &A, const Proc &B) { return A.Addr < B.Addr; });
  for (size_t K = 0; K < Procs.size(); ++K) {
    Procs[K].End = K + 1 < Procs.size() ? Procs[K + 1].Addr : 0;
    ByName[Procs[K].Name] = K;
  }
  Blob.reset(); // a rebuild invalidates any attached fast path
  return Error::success();
}

void StopSiteIndex::attachBlob(std::shared_ptr<const symblob::Blob> B) {
  if (!B)
    return;
  // The blob's procedure records and this index come from the same
  // proctable in the same order; anything else means a stale or foreign
  // blob, and the interpreter path serves instead.
  if (B->procCount() != Procs.size()) {
    ++symblob::symblobStats().Fallbacks;
    return;
  }
  Blob = std::move(B);
}

bool StopSiteIndex::fillFromBlob(Proc &P, uint32_t Id, bool RequireExtern) {
  symblob::Blob::ProcView V = Blob->proc(Id);
  if (V.Addr != P.Addr || V.Name != P.Name)
    return false;
  ++symblob::symblobStats().IndexProbes;
  P.Loaded = true;
  P.FileSt = V.HasFile ? Proc::FileInfo::Known : Proc::FileInfo::None;
  if (V.HasFile)
    P.File = std::string(V.File);
  if (V.HasSymbols && (!RequireExtern || V.Extern)) {
    P.HasSymbols = true;
    P.Loci.reserve(V.LociCount);
    for (uint32_t K = 0; K < V.LociCount; ++K) {
      symblob::Blob::LocusView LV = Blob->locus(V.LociStart + K);
      Locus Loc;
      Loc.Addr = LV.Addr;
      Loc.Line = LV.Line;
      Loc.Index = LV.Index;
      P.Loci.push_back(Loc);
    }
  } else {
    P.HasSymbols = false;
  }
  return true;
}

Expected<StopSiteIndex::Proc *> StopSiteIndex::procContaining(uint32_t Pc) {
  // Last procedure whose entry address is at or below the pc.
  auto It = std::upper_bound(
      Procs.begin(), Procs.end(), Pc,
      [](uint32_t V, const Proc &P) { return V < P.Addr; });
  if (It == Procs.begin())
    return Error::failure("pc is below every known procedure");
  return &*std::prev(It);
}

StopSiteIndex::Proc *StopSiteIndex::procByName(const std::string &Name) {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : &Procs[It->second];
}

Error StopSiteIndex::ensureLoaded(Proc &P) {
  if (P.Loaded)
    return Error::success();

  // The blob fast path: no symtab entry is forced, no interpreter runs.
  // The interpreter path only reaches loci through the externs
  // dictionary, so a static function stays "no debugging symbols" here —
  // the blob's Extern bit preserves that exactly.
  if (Blob) {
    size_t Id = static_cast<size_t>(&P - Procs.data());
    if (fillFromBlob(P, static_cast<uint32_t>(Id), /*RequireExtern=*/true))
      return Error::success();
    ++symblob::symblobStats().Fallbacks;
  }

  Expected<Object> Top = symtab::topLevel(I);
  if (!Top) {
    P.Loaded = true;
    return Error::success(); // no symbols loaded: an address-only index
  }
  Expected<Object> Externs = symtab::field(I, *Top, "externs");
  if (!Externs)
    return indexError("externs", Externs.message());
  const Object *Found = Externs->DictVal->find(P.Name);
  if (!Found) {
    // Startup code and library routines carry no debug info; that is the
    // normal shape of an image, not corruption.
    P.Loaded = true;
    P.HasSymbols = false;
    return Error::success();
  }

  // Force exactly this entry (deferred entries elsewhere stay deferred),
  // memoizing the result like every other symtab read.
  Object Entry = *Found;
  if (Error E = symtab::force(I, Entry))
    return indexError(P.Name, E.message());
  if (Entry.Ty != Type::Dict)
    return indexError(P.Name, "entry is not a dictionary");
  Externs->DictVal->set(P.Name, Entry);
  return loadFromEntry(P, Entry);
}

Error StopSiteIndex::loadFromEntry(Proc &P, ps::Object Entry) {
  if (P.Loaded)
    return Error::success();
  P.Loaded = true;

  Expected<Object> Loci = symtab::field(I, Entry, "loci");
  if (!Loci)
    return indexError(P.Name, Loci.message());
  if (Loci->Ty != Type::Array)
    return indexError(P.Name, "/loci is not an array");
  for (size_t K = 0; K < Loci->ArrVal->size(); ++K) {
    const Object &L = (*Loci->ArrVal)[K];
    if (L.Ty != Type::Array || L.ArrVal->size() < 2 ||
        (*L.ArrVal)[0].Ty != Type::Int || (*L.ArrVal)[1].Ty != Type::Int)
      return indexError(P.Name, "malformed stopping point " +
                                    std::to_string(K));
    Locus Loc;
    Loc.Line = static_cast<int>((*L.ArrVal)[0].IntVal);
    Loc.Addr = P.Addr + static_cast<uint32_t>((*L.ArrVal)[1].IntVal);
    Loc.Index = static_cast<int>(K);
    P.Loci.push_back(Loc);
  }
  // /loci is in creation order (loop-condition and -increment stops are
  // created before the body's); queries want address order.
  std::sort(P.Loci.begin(), P.Loci.end(),
            [](const Locus &A, const Locus &B) { return A.Addr < B.Addr; });
  P.Entry = Entry;
  P.HasSymbols = true;
  return Error::success();
}

Expected<StopSiteIndex::LocusRef> StopSiteIndex::locusAt(uint32_t Addr) {
  Expected<Proc *> POr = procContaining(Addr);
  if (!POr)
    return POr.takeError();
  Proc &P = **POr;
  if (Error E = ensureLoaded(P))
    return E;
  if (!P.HasSymbols)
    return Error::failure("no debugging symbols for " + P.Name);
  auto It = std::lower_bound(
      P.Loci.begin(), P.Loci.end(), Addr,
      [](const Locus &L, uint32_t V) { return L.Addr < V; });
  if (It == P.Loci.end() || It->Addr != Addr)
    return Error::failure("pc " + std::to_string(Addr) +
                          " is not at a stopping point of " + P.Name);
  return LocusRef{&P, &*It};
}

Expected<StopSiteIndex::LocusRef> StopSiteIndex::nearestLocus(uint32_t Pc) {
  Expected<Proc *> POr = procContaining(Pc);
  if (!POr)
    return POr.takeError();
  Proc &P = **POr;
  if (Error E = ensureLoaded(P))
    return E;
  if (!P.HasSymbols)
    return Error::failure("no debugging symbols for " + P.Name);
  auto It = std::upper_bound(
      P.Loci.begin(), P.Loci.end(), Pc,
      [](uint32_t V, const Locus &L) { return V < L.Addr; });
  if (It == P.Loci.begin())
    return Error::failure("no stopping point at or before this pc");
  return LocusRef{&P, &*std::prev(It)};
}

Error StopSiteIndex::ensureEntry(Proc &P) {
  if (P.Entry.Ty == Type::Dict)
    return Error::success();

  // The blob fast path loaded loci without forcing the entry; a consumer
  // now needs the real dictionary (visible chains, /where). Resolve it
  // exactly the way the interpreter path would have: externs first, then
  // the procedure's own compilation unit (static functions).
  Expected<Object> Top = symtab::topLevel(I);
  if (!Top)
    return indexError(P.Name, "no symbol table");
  Expected<Object> Externs = symtab::field(I, *Top, "externs");
  if (!Externs)
    return indexError("externs", Externs.message());
  if (const Object *Found = Externs->DictVal->find(P.Name)) {
    Object Entry = *Found;
    if (Error E = symtab::force(I, Entry))
      return indexError(P.Name, E.message());
    if (Entry.Ty != Type::Dict)
      return indexError(P.Name, "entry is not a dictionary");
    Externs->DictVal->set(P.Name, Entry);
    P.Entry = Entry;
    return Error::success();
  }
  if (P.FileSt == Proc::FileInfo::Known) {
    Expected<Object> SourceMap = symtab::field(I, *Top, "sourcemap");
    if (!SourceMap)
      return indexError("sourcemap", SourceMap.message());
    if (const Object *Found = SourceMap->DictVal->find(P.File)) {
      Object Refs = *Found;
      if (Error E = symtab::force(I, Refs))
        return indexError(P.File, E.message());
      if (Refs.Ty == Type::Array)
        for (const Object &EntryRef : *Refs.ArrVal) {
          Object Entry = EntryRef;
          if (Error E = symtab::force(I, Entry))
            return indexError(P.File, E.message());
          Expected<Object> NameV = symtab::field(I, Entry, "name");
          if (!NameV)
            return indexError(P.File, NameV.message());
          if (Entry.Ty == Type::Dict && NameV->text() == P.Name) {
            P.Entry = Entry;
            return Error::success();
          }
        }
    }
  }
  return indexError(P.Name, "no symbol-table entry");
}

Expected<std::vector<StopSiteIndex::LocusRef>>
StopSiteIndex::lociForSource(const std::string &File, int Line) {
  // The blob fast path: the sorted (file, line) index answers without
  // forcing a single entry. Only files the blob's line index knows are
  // eligible — anything else (including a file the sourcemap does not
  // name) takes the interpreter path and its exact errors. Once the
  // interpreter has cached a file, stay with that cache.
  if (Blob && FileProcs.find(File) == FileProcs.end()) {
    std::optional<uint32_t> Fid = Blob->fileId(File);
    if (Fid && Blob->fileInLineIndex(*Fid)) {
      ++symblob::symblobStats().IndexProbes;
      std::vector<LocusRef> Out;
      bool Mismatch = false;
      for (uint32_t LocusId : Blob->lociForLine(*Fid, Line)) {
        symblob::Blob::LocusView LV = Blob->locus(LocusId);
        if (LV.ProcId >= Procs.size()) {
          Mismatch = true;
          break;
        }
        Proc &P = Procs[LV.ProcId];
        if (!P.Loaded &&
            !fillFromBlob(P, LV.ProcId, /*RequireExtern=*/false)) {
          Mismatch = true;
          break;
        }
        // A procedure already loaded without symbols contributes nothing
        // — the same shape the interpreter's loadFromEntry early-return
        // yields when ensureLoaded ran first.
        if (!P.HasSymbols)
          continue;
        for (const Locus &L : P.Loci)
          if (L.Addr == LV.Addr && L.Index == LV.Index) {
            Out.push_back(LocusRef{&P, &L});
            break;
          }
      }
      if (!Mismatch) {
        if (Out.empty())
          return Error::failure("no stopping point at " + File + ":" +
                                std::to_string(Line));
        return Out;
      }
      ++symblob::symblobStats().Fallbacks;
    }
  }

  auto Cached = FileProcs.find(File);
  if (Cached == FileProcs.end()) {
    // First query against this file: force its procedures (and only its)
    // through the sourcemap, then remember them.
    Expected<Object> Top = symtab::topLevel(I);
    if (!Top)
      return Top.takeError();
    Expected<Object> SourceMap = symtab::field(I, *Top, "sourcemap");
    if (!SourceMap)
      return SourceMap.takeError();
    const Object *Found = SourceMap->DictVal->find(File);
    if (!Found)
      return Error::failure("no compilation unit named " + File);
    Object Refs = *Found;
    if (Error E = symtab::force(I, Refs))
      return indexError(File, E.message());
    if (Refs.Ty != Type::Array)
      return indexError(File, "malformed sourcemap");

    std::vector<size_t> Indices;
    for (const Object &EntryRef : *Refs.ArrVal) {
      Object Entry = EntryRef;
      // A failing force is symbol-table corruption and must surface; the
      // seed's stepping loop swallowed these with `continue`.
      if (Error E = symtab::force(I, Entry))
        return indexError(File, E.message());
      Expected<Object> NameV = symtab::field(I, Entry, "name");
      if (!NameV)
        return indexError(File, NameV.message());
      Proc *P = procByName(NameV->text());
      if (!P)
        continue; // procedure not in this image: legitimately skipped
      // The entry is already forced; load from it directly (it may be a
      // static function the externs dictionary does not list).
      if (Error E = loadFromEntry(*P, Entry))
        return E;
      Indices.push_back(static_cast<size_t>(P - Procs.data()));
    }
    Cached = FileProcs.emplace(File, std::move(Indices)).first;
  }

  // Because of the preprocessor a single source location may correspond
  // to more than one stopping point (paper Sec 2); collect them all.
  std::vector<LocusRef> Out;
  for (size_t K : Cached->second) {
    Proc &P = Procs[K];
    for (const Locus &L : P.Loci)
      if (L.Line == Line)
        Out.push_back(LocusRef{&P, &L});
  }
  if (Out.empty())
    return Error::failure("no stopping point at " + File + ":" +
                          std::to_string(Line));
  return Out;
}

const StopSiteIndex::Locus *StopSiteIndex::entryLocus(const Proc &P) {
  for (const Locus &L : P.Loci)
    if (L.Index == 0)
      return &L;
  return nullptr;
}

const StopSiteIndex::Locus *StopSiteIndex::exitLocus(const Proc &P) {
  return P.Loci.empty() ? nullptr : &P.Loci.back();
}

size_t StopSiteIndex::loadedCount() const {
  size_t N = 0;
  for (const Proc &P : Procs)
    if (P.Loaded && P.HasSymbols)
      ++N;
  return N;
}
