//===- core/stopindex.h - the per-target stop-site index --------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An index of stopping points, built once from the loader table's
/// proctable and completed lazily per procedure, so execution
/// control scales with the current procedure instead of the whole
/// program. The seed walked the entire PostScript symbol table for every
/// pc-to-locus query and every step — forcing every deferred entry and
/// defeating the Sec 5 deferred-lexing win. The index keeps the paper's
/// architecture (the symbol table stays the PostScript source of truth;
/// entries are forced through the same memoizing reader) but adds the
/// sorted address table Hanson's revisited design (MSR-TR-99-4) indexes
/// stop sites with:
///
///  * one pass over the proctable at first use — procedure address
///    ranges, no symtab entry is forced;
///  * per-procedure loci loaded on demand via the externs dictionary, so
///    deferred entries stay deferred until a query actually lands in
///    their procedure;
///  * O(log n) addr->locus queries (exact and at-or-before) for stop
///    description, backtrace symbolization, and stepping;
///  * a per-file cache for source-line queries (breakAtLine), built by
///    forcing only that file's procedures.
///
/// Index errors follow ldb-verify's diagnostic shape
/// ("[check] artifact: symbol: message") and distinguish "procedure not
/// in this image" (skipped: the symbol table may describe units the
/// linker dropped) from real symbol-table corruption (propagated).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_CORE_STOPINDEX_H
#define LDB_CORE_STOPINDEX_H

#include "postscript/object.h"
#include "support/error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ldb::ps {
class Interp;
} // namespace ldb::ps

namespace ldb::core {

namespace symblob {
class Blob;
} // namespace symblob

/// The stop-site index reads only the interpreter (the loader table and
/// symbol table it finds through the dictionary stack), never target
/// memory — which is what lets one instance serve every session debugging
/// the same image (see core/imagecache.h). Build and the forcing queries
/// must therefore run inside some Target::Scope whose dictionaries name
/// the image this index describes.
class StopSiteIndex {
public:
  /// One stopping point: the no-op's absolute address, its source line,
  /// and its position in the entry's /loci array (needed to recover the
  /// visible-symbol chain without re-scanning).
  struct Locus {
    uint32_t Addr = 0;
    int Line = 0;
    int Index = -1;
  };

  /// One procedure from the proctable. Loci are filled in (and the
  /// symtab entry forced) only when a query lands in the procedure.
  struct Proc {
    uint32_t Addr = 0; ///< entry address
    uint32_t End = 0;  ///< next procedure's address; 0 for the last
    std::string Name;
    bool Loaded = false;     ///< loci computed (entry forced if present)
    bool HasSymbols = false; ///< a symbol-table entry exists
    ps::Object Entry;        ///< the forced entry when HasSymbols; may be
                             ///< null on the blob fast path (ensureEntry
                             ///< resolves it on demand)
    std::vector<Locus> Loci; ///< sorted by address
    /// The display source file (the entry's /sourcefile), cached so
    /// symbolization need not force the entry. Unknown until a blob fill
    /// or a briefForPc query resolves it.
    enum class FileInfo { Unknown, Known, None };
    FileInfo FileSt = FileInfo::Unknown;
    std::string File; ///< valid when FileSt == Known
  };

  /// A locus together with its procedure.
  struct LocusRef {
    Proc *P = nullptr;
    const Locus *L = nullptr;
  };

  explicit StopSiteIndex(ps::Interp &I) : I(I) {}

  /// One pass over the loader table's proctable: procedure addresses and
  /// names only. Must run inside a Target::Scope.
  Error build();

  //===--------------------------------------------------------------------===
  // Queries. All but procContaining/procByName may force the procedure's
  // symtab entry and must run inside a Target::Scope.
  //===--------------------------------------------------------------------===

  /// The procedure whose range contains \p Pc (binary search; never
  /// forces anything). The procedure may lack symbols.
  Expected<Proc *> procContaining(uint32_t Pc);

  /// The procedure named \p Name, or null.
  Proc *procByName(const std::string &Name);

  /// The stopping point whose no-op is exactly at \p Addr.
  Expected<LocusRef> locusAt(uint32_t Addr);

  /// The nearest stopping point at or before \p Pc within its procedure
  /// (caller frames stop between loci; faults stop mid-expression).
  Expected<LocusRef> nearestLocus(uint32_t Pc);

  /// Every stopping point of \p File : \p Line, forcing only that file's
  /// procedures (cached per file). Procedures the image does not contain
  /// are skipped; malformed entries are errors.
  Expected<std::vector<LocusRef>> lociForSource(const std::string &File,
                                                int Line);

  /// Loads \p P's loci if not yet loaded: forces exactly one symtab
  /// entry. A procedure without an entry (startup code, libraries) is
  /// not an error — it simply has no loci.
  Error ensureLoaded(Proc &P);

  /// Like ensureLoaded, but from an already-forced entry (the sourcemap
  /// walk holds one; static functions may not appear in externs).
  Error loadFromEntry(Proc &P, ps::Object Entry);

  /// Resolves \p P's symbol-table entry when the blob fast path left it
  /// null: externs first, then the procedure's compilation unit (static
  /// functions). Forces exactly one entry, memoizing like ensureLoaded.
  Error ensureEntry(Proc &P);

  /// Attaches a validated blob as the index's fast path: ensureLoaded and
  /// lociForSource answer from it without forcing symtab entries, and
  /// every query falls back to the interpreter when the blob disagrees
  /// with the proctable. Rejected (with a fallback counted) when the
  /// blob's procedure list does not line up with this index.
  void attachBlob(std::shared_ptr<const symblob::Blob> B);
  const symblob::Blob *blob() const { return Blob.get(); }

  /// The entry stopping point: /loci position 0 (emitted right after the
  /// prologue). Null when the procedure has none.
  static const Locus *entryLocus(const Proc &P);

  /// The exit stopping point: the single epilogue's locus, the highest
  /// address (every return passes it). Null when the procedure has none.
  static const Locus *exitLocus(const Proc &P);

  size_t procCount() const { return Procs.size(); }
  /// Procedures whose loci have been computed — the E6 regression tests
  /// watch this to prove stepping no longer forces the world.
  size_t loadedCount() const;

private:
  /// Fills \p P from the blob's record \p Id. RequireExtern gives
  /// ensureLoaded parity: the interpreter path only finds loci through
  /// the externs dictionary, so a static stays HasSymbols = false there
  /// (lociForSource's sourcemap walk, which does reach statics, passes
  /// false). Returns false when the record does not match \p P.
  bool fillFromBlob(Proc &P, uint32_t Id, bool RequireExtern);

  ps::Interp &I;
  std::vector<Proc> Procs;              ///< sorted by Addr
  std::map<std::string, size_t> ByName; ///< name -> Procs index
  /// file -> indices of its (loaded) procedures, built on first query.
  std::map<std::string, std::vector<size_t>> FileProcs;
  std::shared_ptr<const symblob::Blob> Blob; ///< the fast path, if any
};

} // namespace ldb::core

#endif // LDB_CORE_STOPINDEX_H
