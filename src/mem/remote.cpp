//===- mem/remote.cpp - the wire memory ----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "mem/remote.h"

using namespace ldb;
using namespace ldb::mem;

RemoteEndpoint::~RemoteEndpoint() = default;

Error WireMemory::checkAddr(Location Loc, uint32_t &Addr) {
  if (Loc.Offset < 0 || Loc.Offset > UINT32_MAX)
    return Error::failure("remote address " + Loc.str() + " out of range");
  Addr = static_cast<uint32_t>(Loc.Offset);
  return Error::success();
}

Error WireMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (Loc.Mode == AddrMode::Immediate) {
    Value = static_cast<uint64_t>(Loc.Offset);
    return Error::success();
  }
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteFetchInt(Loc.Space, Addr, Size, Value);
}

Error WireMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteStoreInt(Loc.Space, Addr, Size, Value);
}

Error WireMemory::fetchFloat(Location Loc, unsigned Size, long double &Value) {
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteFetchFloat(Loc.Space, Addr, Size, Value);
}

Error WireMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteStoreFloat(Loc.Space, Addr, Size, Value);
}
