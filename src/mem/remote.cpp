//===- mem/remote.cpp - the wire memory ----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "mem/remote.h"

using namespace ldb;
using namespace ldb::mem;

RemoteEndpoint::~RemoteEndpoint() = default;

Error RemoteEndpoint::remoteFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                                       uint8_t *Out) {
  for (uint32_t K = 0; K < Len; ++K) {
    uint64_t Byte = 0;
    if (Error E = remoteFetchInt(Space, Addr + K, 1, Byte))
      return E;
    Out[K] = static_cast<uint8_t>(Byte);
  }
  return Error::success();
}

Error RemoteEndpoint::remoteStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                                       const uint8_t *Bytes) {
  for (uint32_t K = 0; K < Len; ++K)
    if (Error E = remoteStoreInt(Space, Addr + K, 1, Bytes[K]))
      return E;
  return Error::success();
}

void RemoteEndpoint::postFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                                    uint8_t *Out,
                                    std::function<void(Error)> Done) {
  Error E = remoteFetchBlock(Space, Addr, Len, Out);
  if (Done)
    Done(std::move(E));
  else if (E && !DeferredPostErr)
    DeferredPostErr = std::move(E);
}

void RemoteEndpoint::postStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                                    const uint8_t *Bytes,
                                    std::function<void(Error)> Done) {
  Error E = remoteStoreBlock(Space, Addr, Len, Bytes);
  if (Done)
    Done(std::move(E));
  else if (E && !DeferredPostErr)
    DeferredPostErr = std::move(E);
}

Error RemoteEndpoint::awaitPosted() {
  Error E = std::move(DeferredPostErr);
  DeferredPostErr = Error::success();
  return E;
}

Error WireMemory::checkAddr(Location Loc, uint32_t &Addr) {
  if (Loc.Offset < 0 || Loc.Offset > UINT32_MAX)
    return Error::failure("remote address " + Loc.str() + " out of range");
  Addr = static_cast<uint32_t>(Loc.Offset);
  return Error::success();
}

Error WireMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (Loc.Mode == AddrMode::Immediate) {
    Value = static_cast<uint64_t>(Loc.Offset);
    return Error::success();
  }
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteFetchInt(Loc.Space, Addr, Size, Value);
}

Error WireMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteStoreInt(Loc.Space, Addr, Size, Value);
}

Error WireMemory::fetchFloat(Location Loc, unsigned Size, long double &Value) {
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteFetchFloat(Loc.Space, Addr, Size, Value);
}

Error WireMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteStoreFloat(Loc.Space, Addr, Size, Value);
}

Error WireMemory::fetchBlock(Location Loc, size_t Size, uint8_t *Out) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot fetch a block from an immediate location");
  if (Size > UINT32_MAX)
    return Error::failure("block size too large for the wire");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteFetchBlock(Loc.Space, Addr,
                                   static_cast<uint32_t>(Size), Out);
}

Error WireMemory::storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  if (Size > UINT32_MAX)
    return Error::failure("block size too large for the wire");
  uint32_t Addr;
  if (Error E = checkAddr(Loc, Addr))
    return E;
  return Endpoint.remoteStoreBlock(Loc.Space, Addr,
                                   static_cast<uint32_t>(Size), Bytes);
}

void WireMemory::postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                                std::function<void(Error)> Done) {
  uint32_t Addr;
  if (Loc.Mode == AddrMode::Immediate || Size > UINT32_MAX) {
    settlePosted(Error::failure("cannot post a block fetch for " + Loc.str()),
                 Done);
    return;
  }
  if (Error E = checkAddr(Loc, Addr)) {
    settlePosted(std::move(E), Done);
    return;
  }
  Endpoint.postFetchBlock(Loc.Space, Addr, static_cast<uint32_t>(Size), Out,
                          std::move(Done));
}

void WireMemory::postStoreBlock(Location Loc, size_t Size,
                                const uint8_t *Bytes,
                                std::function<void(Error)> Done) {
  uint32_t Addr;
  if (Loc.Mode == AddrMode::Immediate || Size > UINT32_MAX) {
    settlePosted(Error::failure("cannot post a block store for " + Loc.str()),
                 Done);
    return;
  }
  if (Error E = checkAddr(Loc, Addr)) {
    settlePosted(std::move(E), Done);
    return;
  }
  Endpoint.postStoreBlock(Loc.Space, Addr, static_cast<uint32_t>(Size), Bytes,
                          std::move(Done));
}

Error WireMemory::awaitPosted() {
  Error Deferred = takeDeferred();
  if (Error E = Endpoint.awaitPosted())
    return E;
  return Deferred;
}
