//===- mem/memory.h - the abstract memory class -----------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract memory class (paper Sec 4.1). Abstract memories represent
/// the registers and memory of a target process. Given a memory and a
/// location, ldb can fetch and store three sizes of integers (8, 16, and 32
/// bits) and three sizes of floating-point values (32, 64, and 80 bits).
/// Instances are combined into a per-frame DAG (Fig 4) by the classes in
/// mem/memories.h and the frame code in core/.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_MEMORY_H
#define LDB_MEM_MEMORY_H

#include "mem/location.h"
#include "support/error.h"

#include <cstddef>
#include <functional>
#include <memory>

namespace ldb::mem {

/// Abstract base for all memories in the DAG. Integer values travel
/// zero-extended in a uint64_t; floating values travel as long double
/// (which can represent all three target float sizes exactly).
class Memory {
public:
  virtual ~Memory();

  /// Fetches a \p Size-byte integer (Size is 1, 2, or 4) at \p Loc.
  virtual Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) = 0;

  /// Stores the low \p Size bytes of \p Value at \p Loc.
  virtual Error storeInt(Location Loc, unsigned Size, uint64_t Value) = 0;

  /// Fetches a \p Size-byte float (Size is 4, 8, or 10) at \p Loc.
  virtual Error fetchFloat(Location Loc, unsigned Size, long double &Value);

  /// Stores \p Value as a \p Size-byte float at \p Loc.
  virtual Error storeFloat(Location Loc, unsigned Size, long double Value);

  //===--------------------------------------------------------------------===
  // Block access. Blocks are raw bytes in the *target's* byte order (what
  // the nub's memcpy would see), unlike the word operations, which carry
  // values. The defaults loop over single-byte word operations, so every
  // memory is block-addressable and byte-for-byte consistent with its own
  // word operations; memories with a cheaper bulk path (the wire, the
  // block cache, flat storage) override them.
  //===--------------------------------------------------------------------===

  /// Fetches \p Size raw bytes starting at \p Loc into \p Out.
  virtual Error fetchBlock(Location Loc, size_t Size, uint8_t *Out);

  /// Stores \p Size raw bytes from \p Bytes starting at \p Loc.
  virtual Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes);

  //===--------------------------------------------------------------------===
  // Pipelined block access: post now, complete at awaitPosted(). Callers
  // with a known fetch set (a stack walk's window, a plant's verification
  // fetches, a step's code spans) post everything and await once, paying a
  // single link latency instead of one per request. The defaults complete
  // synchronously, so every memory supports the interface and memories
  // without an asynchronous substrate lose nothing. \p Out and \p Bytes
  // must stay valid until awaitPosted() returns. A null \p Done defers the
  // first failure to awaitPosted()'s return value.
  //===--------------------------------------------------------------------===

  virtual void postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                              std::function<void(Error)> Done);
  virtual void postStoreBlock(Location Loc, size_t Size, const uint8_t *Bytes,
                              std::function<void(Error)> Done);
  virtual Error awaitPosted();

protected:
  /// Deferred-error bookkeeping shared by the synchronous defaults.
  void settlePosted(Error E, std::function<void(Error)> &Done);
  Error takeDeferred();

private:
  Error DeferredPostErr = Error::success();
};

using MemoryRef = std::shared_ptr<Memory>;

/// Checks that \p Size is a legal integer access width.
inline bool isIntSize(unsigned Size) {
  return Size == 1 || Size == 2 || Size == 4;
}

/// Checks that \p Size is a legal float access width.
inline bool isFloatSize(unsigned Size) {
  return Size == 4 || Size == 8 || Size == 10;
}

} // namespace ldb::mem

#endif // LDB_MEM_MEMORY_H
