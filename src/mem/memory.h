//===- mem/memory.h - the abstract memory class -----------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract memory class (paper Sec 4.1). Abstract memories represent
/// the registers and memory of a target process. Given a memory and a
/// location, ldb can fetch and store three sizes of integers (8, 16, and 32
/// bits) and three sizes of floating-point values (32, 64, and 80 bits).
/// Instances are combined into a per-frame DAG (Fig 4) by the classes in
/// mem/memories.h and the frame code in core/.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_MEMORY_H
#define LDB_MEM_MEMORY_H

#include "mem/location.h"
#include "support/error.h"

#include <memory>

namespace ldb::mem {

/// Abstract base for all memories in the DAG. Integer values travel
/// zero-extended in a uint64_t; floating values travel as long double
/// (which can represent all three target float sizes exactly).
class Memory {
public:
  virtual ~Memory();

  /// Fetches a \p Size-byte integer (Size is 1, 2, or 4) at \p Loc.
  virtual Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) = 0;

  /// Stores the low \p Size bytes of \p Value at \p Loc.
  virtual Error storeInt(Location Loc, unsigned Size, uint64_t Value) = 0;

  /// Fetches a \p Size-byte float (Size is 4, 8, or 10) at \p Loc.
  virtual Error fetchFloat(Location Loc, unsigned Size, long double &Value);

  /// Stores \p Value as a \p Size-byte float at \p Loc.
  virtual Error storeFloat(Location Loc, unsigned Size, long double Value);
};

using MemoryRef = std::shared_ptr<Memory>;

/// Checks that \p Size is a legal integer access width.
inline bool isIntSize(unsigned Size) {
  return Size == 1 || Size == 2 || Size == 4;
}

/// Checks that \p Size is a legal float access width.
inline bool isFloatSize(unsigned Size) {
  return Size == 4 || Size == 8 || Size == 10;
}

} // namespace ldb::mem

#endif // LDB_MEM_MEMORY_H
