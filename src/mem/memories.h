//===- mem/memories.h - the memory DAG building blocks ---------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-memory instances that form the per-frame DAG of Fig 4
/// (grown by one node, the block cache of the MSR-TR-99-4 revisit):
///
///   joined -> register -> alias -> cache -> wire -> nub
///        \_______________________/
///
/// * FlatMemory: host-side byte storage per space (used for tests and for
///   debugger-side scratch such as saved contexts in unit tests).
/// * AliasMemory: translates register-space locations into code/data (or
///   immediate) locations; also rebases whole spaces (frame-local space 'l'
///   onto the data space at the virtual frame pointer).
/// * RegisterMemory: turns subword register accesses into full-word
///   operations on the underlying memory so target byte order is
///   irrelevant to the debugger (paper Sec 4.1).
/// * JoinedMemory: routes each space to an underlying memory; this is the
///   instance presented to the rest of the debugger for a stack frame.
///
/// All memories return immediate-mode fetches directly (the offset is the
/// value) and refuse immediate-mode stores.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_MEMORIES_H
#define LDB_MEM_MEMORIES_H

#include "mem/memory.h"
#include "support/byteorder.h"

#include <map>
#include <vector>

namespace ldb::mem {

/// Byte storage for a set of spaces, with a byte order; the test-suite
/// stand-in for real target memory and a convenient backing store.
class FlatMemory : public Memory {
public:
  explicit FlatMemory(ByteOrder Order) : Order(Order) {}

  /// Creates (or grows) storage for \p Space to at least \p Size bytes.
  void addSpace(char Space, size_t Size);

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override;
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override;

  ByteOrder byteOrder() const { return Order; }

private:
  Error bytesAt(Location Loc, unsigned Size, uint8_t *&Ptr);

  ByteOrder Order;
  std::map<char, std::vector<uint8_t>> Spaces;
};

/// Translates aliased locations, then forwards everything to an underlying
/// memory. Machine-independent code manipulating machine-dependent data:
/// only the alias table differs between targets.
class AliasMemory : public Memory {
public:
  explicit AliasMemory(MemoryRef Under) : Under(std::move(Under)) {}

  /// Makes (Space, Offset) an alias for \p Target (which may be immediate).
  void addAlias(char Space, int64_t Offset, Location Target);

  /// Rebases all of \p Space onto \p TargetSpace at \p Delta: location
  /// (Space, o) becomes (TargetSpace, o + Delta). Used for the frame-local
  /// space, whose delta is the virtual frame pointer.
  void addRebase(char Space, char TargetSpace, int64_t Delta);

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;

  /// Exposes the translation for reuse when a caller's frame shares
  /// register aliases with its callee (paper Sec 4.1).
  bool translate(Location Loc, Location &Out) const;

private:
  struct Rebase {
    char TargetSpace;
    int64_t Delta;
  };
  MemoryRef Under;
  std::map<std::pair<char, int64_t>, Location> Aliases;
  std::map<char, Rebase> Rebases;
};

/// Widens subword accesses to register spaces into full-word operations so
/// the same debugger code runs against little- and big-endian targets.
class RegisterMemory : public Memory {
public:
  RegisterMemory(MemoryRef Under, std::string RegisterSpaces)
      : Under(std::move(Under)), RegisterSpaces(std::move(RegisterSpaces)) {}

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;

private:
  bool isRegisterSpace(char Space) const {
    return RegisterSpaces.find(Space) != std::string::npos;
  }

  MemoryRef Under;
  std::string RegisterSpaces;
};

/// Routes each space to one of several underlying memories.
class JoinedMemory : public Memory {
public:
  void join(const std::string &Spaces, MemoryRef M);

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;
  // Blocks route whole so a joined code/data space keeps the underlying
  // memory's bulk path (one wire message, cache lines) instead of
  // degrading to the byte loop.
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override;
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override;

private:
  Error route(char Space, MemoryRef &Out);

  std::map<char, MemoryRef> Routes;
};

} // namespace ldb::mem

#endif // LDB_MEM_MEMORIES_H
