//===- mem/cached.cpp - the block cache -----------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "mem/cached.h"

#include <algorithm>
#include <deque>

using namespace ldb;
using namespace ldb::mem;

CachedMemory::CachedMemory(MemoryRef Under, ByteOrder Order, unsigned LineBytes,
                           std::string CachedSpaces)
    : Under(std::move(Under)), Order(Order), LineBytes(LineBytes),
      CachedSpaces(std::move(CachedSpaces)) {}

void CachedMemory::seed(Location Loc, size_t Size, const uint8_t *Bytes) {
  if (Bypass || !cacheable(Loc) || Size < LineBytes)
    return;
  int64_t First =
      (Loc.Offset + LineBytes - 1) / LineBytes * static_cast<int64_t>(LineBytes);
  int64_t End =
      (Loc.Offset + static_cast<int64_t>(Size)) / LineBytes *
      static_cast<int64_t>(LineBytes);
  for (int64_t B = First; B < End; B += LineBytes) {
    const uint8_t *Src = Bytes + (B - Loc.Offset);
    Lines[std::make_pair(Loc.Space, B)].assign(Src, Src + LineBytes);
  }
}

void CachedMemory::invalidate() {
  if (ImmutableSpaces.empty()) {
    Lines.clear();
    return;
  }
  for (auto It = Lines.begin(); It != Lines.end();)
    if (ImmutableSpaces.find(It->first.first) == std::string::npos)
      It = Lines.erase(It);
    else
      ++It;
}

void CachedMemory::setBypass(bool Enabled) {
  Bypass = Enabled;
  if (Enabled)
    Lines.clear();
}

Error CachedMemory::fetchBytes(Location Loc, size_t Size, uint8_t *Out) {
  size_t Done = 0;
  while (Done < Size) {
    int64_t Addr = Loc.Offset + static_cast<int64_t>(Done);
    int64_t LineBase = Addr - (Addr % LineBytes);
    auto Key = std::make_pair(Loc.Space, LineBase);
    auto It = Lines.find(Key);
    if (It == Lines.end()) {
      if (Stats)
        ++Stats->Cache[Loc.Space].Misses;
      std::vector<uint8_t> Line(LineBytes);
      if (Under->fetchBlock(Location::absolute(Loc.Space, LineBase), LineBytes,
                            Line.data())) {
        // The line fill failed — likely a line that runs past the end of
        // target memory. Serve exactly the requested range uncached; its
        // own error (if any) is the honest answer.
        return Under->fetchBlock(Loc, Size, Out);
      }
      It = Lines.emplace(Key, std::move(Line)).first;
    } else if (Stats) {
      ++Stats->Cache[Loc.Space].Hits;
    }
    size_t InLine = static_cast<size_t>(Addr - LineBase);
    size_t N = std::min(Size - Done, static_cast<size_t>(LineBytes) - InLine);
    std::copy_n(It->second.data() + InLine, N, Out + Done);
    Done += N;
  }
  return Error::success();
}

void CachedMemory::patchSpace(char Space, int64_t Offset, size_t Size,
                              const uint8_t *Bytes) {
  size_t Done = 0;
  while (Done < Size) {
    int64_t Addr = Offset + static_cast<int64_t>(Done);
    int64_t LineBase = Addr - (Addr % LineBytes);
    size_t InLine = static_cast<size_t>(Addr - LineBase);
    size_t N = std::min(Size - Done, static_cast<size_t>(LineBytes) - InLine);
    auto It = Lines.find(std::make_pair(Space, LineBase));
    if (It != Lines.end())
      std::copy_n(Bytes + Done, N, It->second.data() + InLine);
    Done += N;
  }
}

void CachedMemory::patchLines(Location Loc, size_t Size,
                              const uint8_t *Bytes) {
  if (!SpacesAlias) {
    patchSpace(Loc.Space, Loc.Offset, Size, Bytes);
    return;
  }
  // All cached spaces are windows onto the same storage (the nub's code
  // and data spaces): a store through any of them must be visible through
  // all of them.
  for (char Space : CachedSpaces)
    patchSpace(Space, Loc.Offset, Size, Bytes);
}

bool CachedMemory::allResident(Location Loc, size_t Size) const {
  int64_t Base = Loc.Offset - (Loc.Offset % LineBytes);
  int64_t End = Loc.Offset + static_cast<int64_t>(Size);
  for (int64_t B = Base; B < End; B += LineBytes)
    if (!Lines.count(std::make_pair(Loc.Space, B)))
      return false;
  return true;
}

void CachedMemory::warm(Location Loc, size_t Size) {
  (void)warmMany({{Loc, Size}});
}

Error CachedMemory::warmMany(
    const std::vector<std::pair<Location, size_t>> &Spans) {
  if (Bypass)
    return Error::success();

  // Align every span to whole lines and merge overlapping or adjacent
  // spans in the same space, so one transfer covers what would otherwise
  // be several (a step's code span usually overlaps its context span's
  // trailing line, say).
  struct Span {
    char Space;
    int64_t Base, End;
  };
  std::vector<Span> Aligned;
  for (const auto &[Loc, Size] : Spans) {
    if (Size == 0 || !cacheable(Loc))
      continue;
    int64_t Base = Loc.Offset - (Loc.Offset % LineBytes);
    int64_t End = Loc.Offset + static_cast<int64_t>(Size);
    if (End % LineBytes)
      End += LineBytes - End % LineBytes;
    Aligned.push_back({Loc.Space, Base, End});
  }
  std::sort(Aligned.begin(), Aligned.end(), [](const Span &A, const Span &B) {
    return A.Space != B.Space ? A.Space < B.Space : A.Base < B.Base;
  });
  std::vector<Span> Merged;
  for (const Span &S : Aligned) {
    if (!Merged.empty() && Merged.back().Space == S.Space &&
        S.Base <= Merged.back().End)
      Merged.back().End = std::max(Merged.back().End, S.End);
    else
      Merged.push_back(S);
  }

  // Post every non-resident span, then await the whole batch at once.
  struct Xfer {
    Location At;
    std::vector<uint8_t> Buf;
    Error Err = Error::success();
  };
  std::deque<Xfer> Xfers; // deque: addresses stay valid while posting
  for (const Span &S : Merged) {
    Location At = Location::absolute(S.Space, S.Base);
    size_t Size = static_cast<size_t>(S.End - S.Base);
    if (allResident(At, Size))
      continue;
    Xfers.push_back({At, std::vector<uint8_t>(Size)});
    Xfer &X = Xfers.back();
    Under->postFetchBlock(X.At, X.Buf.size(), X.Buf.data(),
                          [&X](Error E) { X.Err = std::move(E); });
  }
  if (Xfers.empty())
    return Error::success();
  Error HardErr = Under->awaitPosted();

  // Seed what landed; retry failures once without their trailing line (the
  // aligned tail may run past the end of target memory) — still as one
  // posted batch.
  std::vector<Xfer *> Retry;
  for (Xfer &X : Xfers) {
    if (!X.Err) {
      if (Stats)
        ++Stats->Cache[X.At.Space].Misses;
      seedLines(X.At, X.Buf.size(), X.Buf.data());
      continue;
    }
    if (HardErr || X.Buf.size() <= LineBytes)
      continue;
    X.Err = Error::success();
    X.Buf.resize(X.Buf.size() - LineBytes);
    Under->postFetchBlock(X.At, X.Buf.size(), X.Buf.data(),
                          [&X](Error E) { X.Err = std::move(E); });
    Retry.push_back(&X);
  }
  if (!Retry.empty()) {
    if (Error E = Under->awaitPosted(); E && !HardErr)
      HardErr = std::move(E);
    for (Xfer *X : Retry) {
      if (X->Err)
        continue;
      if (Stats)
        ++Stats->Cache[X->At.Space].Misses;
      seedLines(X->At, X->Buf.size(), X->Buf.data());
    }
  }
  return HardErr;
}

void CachedMemory::seedLines(Location Loc, size_t Size,
                             const uint8_t *Bytes) {
  int64_t First = Loc.Offset + (LineBytes - 1);
  First -= First % LineBytes; // first line base fully inside the block
  for (int64_t Base = First;
       Base + LineBytes <= Loc.Offset + static_cast<int64_t>(Size);
       Base += LineBytes) {
    const uint8_t *Src = Bytes + (Base - Loc.Offset);
    Lines[std::make_pair(Loc.Space, Base)].assign(Src, Src + LineBytes);
  }
}

Error CachedMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (Loc.Mode == AddrMode::Immediate) {
    Value = static_cast<uint64_t>(Loc.Offset);
    return Error::success();
  }
  if (Bypass || !cacheable(Loc))
    return Under->fetchInt(Loc, Size, Value);
  uint8_t Buf[8];
  if (Error E = fetchBytes(Loc, Size, Buf))
    return E;
  Value = unpackInt(Buf, Size, Order);
  return Error::success();
}

Error CachedMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  // Write through as the same word message the wire always carried (so the
  // nub's validation is unchanged), then patch any resident copy.
  if (Error E = Under->storeInt(Loc, Size, Value))
    return E;
  if (!Bypass && cacheable(Loc)) {
    uint8_t Buf[8];
    packInt(Value, Buf, Size, Order);
    patchLines(Loc, Size, Buf);
  }
  return Error::success();
}

Error CachedMemory::fetchFloat(Location Loc, unsigned Size,
                               long double &Value) {
  // Floats stay word operations: the nub gates 80-bit requests on the
  // target's float support, and a cache serving raw bytes would skip that.
  return Under->fetchFloat(Loc, Size, Value);
}

Error CachedMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  if (Error E = Under->storeFloat(Loc, Size, Value))
    return E;
  if (!Bypass && cacheable(Loc) && isFloatSize(Size)) {
    uint8_t Buf[10];
    if (Size == 4)
      packF32(static_cast<float>(Value), Buf, Order);
    else if (Size == 8)
      packF64(static_cast<double>(Value), Buf, Order);
    else
      packF80(Value, Buf, Order);
    patchLines(Loc, Size, Buf);
  }
  return Error::success();
}

Error CachedMemory::fetchBlock(Location Loc, size_t Size, uint8_t *Out) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot fetch a block from an immediate location");
  if (Size == 0)
    return Error::success();
  if (Bypass && cacheable(Loc)) {
    // Word-granularity compatibility: one value message per word, repacked
    // into the target-order bytes a block carries.
    size_t Done = 0;
    while (Done < Size) {
      size_t Left = Size - Done;
      unsigned Chunk = Left >= 4 ? 4 : Left >= 2 ? 2 : 1;
      uint64_t Value = 0;
      if (Error E = Under->fetchInt(Loc.shifted(Done), Chunk, Value))
        return E;
      packInt(Value, Out + Done, Chunk, Order);
      Done += Chunk;
    }
    return Error::success();
  }
  if (!cacheable(Loc))
    return Under->fetchBlock(Loc, Size, Out);
  if (Size < LineBytes || allResident(Loc, Size))
    return fetchBytes(Loc, Size, Out);
  // A block at least one line long: move it in one transfer rather than
  // line by line, then keep the whole lines it covers.
  if (Error E = Under->fetchBlock(Loc, Size, Out))
    return E;
  if (Stats)
    ++Stats->Cache[Loc.Space].Misses;
  seedLines(Loc, Size, Out);
  return Error::success();
}

Error CachedMemory::storeBlock(Location Loc, size_t Size,
                               const uint8_t *Bytes) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot store to an immediate location");
  if (Size == 0)
    return Error::success();
  if (Bypass && cacheable(Loc)) {
    size_t Done = 0;
    while (Done < Size) {
      size_t Left = Size - Done;
      unsigned Chunk = Left >= 4 ? 4 : Left >= 2 ? 2 : 1;
      uint64_t Value = unpackInt(Bytes + Done, Chunk, Order);
      if (Error E = Under->storeInt(Loc.shifted(Done), Chunk, Value))
        return E;
      Done += Chunk;
    }
    return Error::success();
  }
  if (Error E = Under->storeBlock(Loc, Size, Bytes))
    return E;
  patchLines(Loc, Size, Bytes);
  return Error::success();
}

void CachedMemory::dropLines(Location Loc, size_t Size) {
  int64_t Base = Loc.Offset - (Loc.Offset % LineBytes);
  int64_t End = Loc.Offset + static_cast<int64_t>(Size);
  std::string Spaces = SpacesAlias ? CachedSpaces : std::string(1, Loc.Space);
  for (char Space : Spaces)
    for (int64_t B = Base; B < End; B += LineBytes)
      Lines.erase(std::make_pair(Space, B));
}

void CachedMemory::postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                                  std::function<void(Error)> Done) {
  if (Loc.Mode == AddrMode::Immediate) {
    settlePosted(
        Error::failure("cannot fetch a block from an immediate location"),
        Done);
    return;
  }
  if (Size == 0) {
    settlePosted(Error::success(), Done);
    return;
  }
  if (!cacheable(Loc) && !Bypass) {
    Under->postFetchBlock(Loc, Size, Out, std::move(Done));
    return;
  }
  if (Bypass || Size < LineBytes || allResident(Loc, Size)) {
    // The cache (or the word-compatibility path) can answer now.
    settlePosted(fetchBlock(Loc, Size, Out), Done);
    return;
  }
  // A long non-resident block: post it downstream and keep the lines it
  // covers when it lands.
  Under->postFetchBlock(
      Loc, Size, Out, [this, Loc, Size, Out, Done](Error E) mutable {
        if (!E) {
          if (Stats)
            ++Stats->Cache[Loc.Space].Misses;
          seedLines(Loc, Size, Out);
        }
        settlePosted(std::move(E), Done);
      });
}

void CachedMemory::postStoreBlock(Location Loc, size_t Size,
                                  const uint8_t *Bytes,
                                  std::function<void(Error)> Done) {
  if (Loc.Mode == AddrMode::Immediate) {
    settlePosted(Error::failure("cannot store to an immediate location"),
                 Done);
    return;
  }
  if (Size == 0) {
    settlePosted(Error::success(), Done);
    return;
  }
  if (Bypass || !cacheable(Loc)) {
    if (Bypass && cacheable(Loc)) {
      settlePosted(storeBlock(Loc, Size, Bytes), Done);
      return;
    }
    Under->postStoreBlock(Loc, Size, Bytes, std::move(Done));
    return;
  }
  // Patch resident copies now — reads between post and await must see the
  // new bytes — and drop them again if the target later refuses the store.
  patchLines(Loc, Size, Bytes);
  Under->postStoreBlock(Loc, Size, Bytes,
                        [this, Loc, Size, Done](Error E) mutable {
                          if (E)
                            dropLines(Loc, Size);
                          settlePosted(std::move(E), Done);
                        });
}

Error CachedMemory::awaitPosted() {
  Error Deferred = takeDeferred();
  if (Error E = Under->awaitPosted())
    return E;
  return Deferred;
}
