//===- mem/location.h - abstract memory locations --------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locations within an abstract memory (paper Sec 4.1). An abstract memory
/// is a collection of spaces denoted by lower-case letters; a location is a
/// space plus an integer offset, with an addressing mode. Fetches that use
/// the immediate mode return the offset itself as the value.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_LOCATION_H
#define LDB_MEM_LOCATION_H

#include <cstdint>
#include <string>

namespace ldb::mem {

/// Space letters used by every target. Targets may add more; these are the
/// ones ldb itself assumes (code and data) plus the conventional ones the
/// MIPS port introduced (paper Sec 4.1) and the frame-local space.
enum Space : char {
  SpCode = 'c',   ///< instructions
  SpData = 'd',   ///< data, stack, contexts
  SpGpr = 'r',    ///< general-purpose registers
  SpFpr = 'f',    ///< floating-point registers
  SpExtra = 'x',  ///< extra registers: x0 = pc, x1 = virtual frame pointer
  SpLocal = 'l',  ///< frame locals, offsets relative to the virtual frame
                  ///< pointer; resolved per-frame by an alias memory
};

enum class AddrMode : uint8_t {
  Absolute,  ///< offset addresses a cell within the space
  Immediate, ///< the offset *is* the value
};

struct Location {
  char Space = SpData;
  int64_t Offset = 0;
  AddrMode Mode = AddrMode::Absolute;

  static Location absolute(char Space, int64_t Offset) {
    return Location{Space, Offset, AddrMode::Absolute};
  }
  static Location immediate(int64_t Value) {
    return Location{'i', Value, AddrMode::Immediate};
  }

  /// Returns a location \p Bytes further into the same space (the PostScript
  /// Shifted operator).
  Location shifted(int64_t Bytes) const {
    return Location{Space, Offset + Bytes, Mode};
  }

  bool operator==(const Location &O) const {
    return Space == O.Space && Offset == O.Offset && Mode == O.Mode;
  }

  /// Renders e.g. "r:30", "d:0x23d8", or "imm:42" for diagnostics.
  std::string str() const;
};

} // namespace ldb::mem

#endif // LDB_MEM_LOCATION_H
