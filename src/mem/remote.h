//===- mem/remote.h - the wire memory --------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire: an abstract memory that holds a connection to the nub and
/// forwards fetch and store requests to it (paper Sec 4.1, Fig 4). The
/// connection itself is behind the RemoteEndpoint interface so this library
/// stays independent of the protocol implementation (ldb_nub provides the
/// endpoint).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_REMOTE_H
#define LDB_MEM_REMOTE_H

#include "mem/memory.h"

namespace ldb::mem {

/// What the wire needs from a nub connection. The nub can respond to
/// requests only for locations in the code and data spaces.
class RemoteEndpoint {
public:
  virtual ~RemoteEndpoint();

  virtual Error remoteFetchInt(char Space, uint32_t Addr, unsigned Size,
                               uint64_t &Value) = 0;
  virtual Error remoteStoreInt(char Space, uint32_t Addr, unsigned Size,
                               uint64_t Value) = 0;
  virtual Error remoteFetchFloat(char Space, uint32_t Addr, unsigned Size,
                                 long double &Value) = 0;
  virtual Error remoteStoreFloat(char Space, uint32_t Addr, unsigned Size,
                                 long double Value) = 0;

  /// Block transfers: \p Len raw bytes in the target's byte order. The
  /// defaults loop over single-byte word requests so every endpoint is
  /// block-capable; real protocols (the nub client) override them with
  /// one message per block.
  virtual Error remoteFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                                 uint8_t *Out);
  virtual Error remoteStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                                 const uint8_t *Bytes);

  /// Pipelined halves: post requests now, complete them at awaitPosted().
  /// The defaults complete synchronously; the nub client overrides with a
  /// real request window so a posted batch costs one link latency. \p Out
  /// and \p Bytes must stay valid until awaitPosted() returns. A null
  /// \p Done defers the first failure to awaitPosted().
  virtual void postFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                              uint8_t *Out, std::function<void(Error)> Done);
  virtual void postStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                              const uint8_t *Bytes,
                              std::function<void(Error)> Done);
  virtual Error awaitPosted();

private:
  Error DeferredPostErr = Error::success();
};

/// Forwards every request to the nub through a RemoteEndpoint.
class WireMemory : public Memory {
public:
  explicit WireMemory(RemoteEndpoint &Endpoint) : Endpoint(Endpoint) {}

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override;
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override;

  void postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                      std::function<void(Error)> Done) override;
  void postStoreBlock(Location Loc, size_t Size, const uint8_t *Bytes,
                      std::function<void(Error)> Done) override;
  Error awaitPosted() override;

private:
  Error checkAddr(Location Loc, uint32_t &Addr);

  RemoteEndpoint &Endpoint;
};

} // namespace ldb::mem

#endif // LDB_MEM_REMOTE_H
