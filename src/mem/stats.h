//===- mem/stats.h - transport instrumentation ------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters threaded through the transport stack (channel -> client ->
/// wire -> cache) so the cost of debugger operations on the wire is
/// observable: synchronous round trips, bytes in each direction, and the
/// block cache's hits and misses per abstract-memory space. One instance
/// lives in each core::Target; the CLI's `stats` command renders it.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_STATS_H
#define LDB_MEM_STATS_H

#include <cstdint>
#include <map>

namespace ldb::mem {

struct TransportStats {
  /// Synchronous request/reply exchanges with the nub (each one is a
  /// full wire latency; the number the block refactor exists to shrink).
  uint64_t RoundTrips = 0;

  /// Frames sent to / received from the nub.
  uint64_t MsgsSent = 0;
  uint64_t MsgsReceived = 0;

  /// Raw bytes written to / read from the channel.
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;

  /// Frames split word vs block, per direction, so the shape of the
  /// traffic (and the pipelining win) is visible interactively.
  uint64_t BlockMsgsSent = 0;
  uint64_t WordMsgsSent = 0;
  uint64_t BlockRepliesReceived = 0;
  uint64_t WordRepliesReceived = 0;

  /// Pipelined-window counters. Posted counts requests issued through the
  /// asynchronous half of the client; MaxInFlight is the deepest request
  /// window observed; StoresCombined counts stores merged into a queued
  /// contiguous neighbour instead of becoming their own frame.
  uint64_t Posted = 0;
  uint64_t MaxInFlight = 0;
  uint64_t StoresCombined = 0;

  /// Loss recovery. Retries counts retransmitted request frames (after a
  /// timeout or a Corrupt report); Timeouts counts requests whose reply
  /// deadline passed; StaleReplies counts replies whose sequence number
  /// matched no outstanding request (late duplicates after a retry).
  uint64_t Retries = 0;
  uint64_t Timeouts = 0;
  uint64_t StaleReplies = 0;

  /// Fault injection at the (simulated) link, counted at the sender.
  uint64_t LinkDrops = 0;
  uint64_t LinkGarbles = 0;

  /// Nub-side record management: condition/tracepoint record frames sent
  /// (SetCondition, ClearCondition, SetTracepoint), trace drains issued,
  /// records received, and the raw record bytes those drains moved.
  uint64_t CondMsgsSent = 0;
  uint64_t TraceDrains = 0;
  uint64_t TraceRecords = 0;
  uint64_t TraceDrainBytes = 0;

  struct CacheCounters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  /// Block-cache line lookups, keyed by space letter ('c', 'd').
  std::map<char, CacheCounters> Cache;

  void reset() { *this = TransportStats(); }

  /// Folds \p O into this block — the fleet rollup: counters add, the
  /// window high-water mark takes the max, and per-space cache counters
  /// merge by space. One session's block never loses information by being
  /// summed into an aggregate.
  void accumulate(const TransportStats &O) {
    RoundTrips += O.RoundTrips;
    MsgsSent += O.MsgsSent;
    MsgsReceived += O.MsgsReceived;
    BytesSent += O.BytesSent;
    BytesReceived += O.BytesReceived;
    BlockMsgsSent += O.BlockMsgsSent;
    WordMsgsSent += O.WordMsgsSent;
    BlockRepliesReceived += O.BlockRepliesReceived;
    WordRepliesReceived += O.WordRepliesReceived;
    Posted += O.Posted;
    if (O.MaxInFlight > MaxInFlight)
      MaxInFlight = O.MaxInFlight;
    StoresCombined += O.StoresCombined;
    Retries += O.Retries;
    Timeouts += O.Timeouts;
    StaleReplies += O.StaleReplies;
    LinkDrops += O.LinkDrops;
    LinkGarbles += O.LinkGarbles;
    CondMsgsSent += O.CondMsgsSent;
    TraceDrains += O.TraceDrains;
    TraceRecords += O.TraceRecords;
    TraceDrainBytes += O.TraceDrainBytes;
    for (const auto &[Space, C] : O.Cache) {
      Cache[Space].Hits += C.Hits;
      Cache[Space].Misses += C.Misses;
    }
  }

  uint64_t cacheHits() const {
    uint64_t N = 0;
    for (const auto &[Space, C] : Cache)
      N += C.Hits;
    return N;
  }
  uint64_t cacheMisses() const {
    uint64_t N = 0;
    for (const auto &[Space, C] : Cache)
      N += C.Misses;
    return N;
  }
};

} // namespace ldb::mem

#endif // LDB_MEM_STATS_H
