//===- mem/stats.h - transport instrumentation ------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters threaded through the transport stack (channel -> client ->
/// wire -> cache) so the cost of debugger operations on the wire is
/// observable: synchronous round trips, bytes in each direction, and the
/// block cache's hits and misses per abstract-memory space. One instance
/// lives in each core::Target; the CLI's `stats` command renders it.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_STATS_H
#define LDB_MEM_STATS_H

#include <cstdint>
#include <map>

namespace ldb::mem {

struct TransportStats {
  /// Synchronous request/reply exchanges with the nub (each one is a
  /// full wire latency; the number the block refactor exists to shrink).
  uint64_t RoundTrips = 0;

  /// Frames sent to / received from the nub.
  uint64_t MsgsSent = 0;
  uint64_t MsgsReceived = 0;

  /// Raw bytes written to / read from the channel.
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;

  struct CacheCounters {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
  };
  /// Block-cache line lookups, keyed by space letter ('c', 'd').
  std::map<char, CacheCounters> Cache;

  void reset() { *this = TransportStats(); }

  uint64_t cacheHits() const {
    uint64_t N = 0;
    for (const auto &[Space, C] : Cache)
      N += C.Hits;
    return N;
  }
  uint64_t cacheMisses() const {
    uint64_t N = 0;
    for (const auto &[Space, C] : Cache)
      N += C.Misses;
    return N;
  }
};

} // namespace ldb::mem

#endif // LDB_MEM_STATS_H
