//===- mem/cached.h - the block cache ---------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-granular, write-through cache that sits between the joined
/// memory and the wire (the block-oriented transport of Hanson's
/// MSR-TR-99-4 revisit of the nub design). Word fetches that reach it are
/// served from cached lines filled by one block message each, so a burst
/// of nearby fetches — a stack walk, a context read, breakpoint planting —
/// costs one round trip per line instead of one per word. Stores write
/// through to the target first and only then patch any cached copy, so
/// the cache never holds bytes the target has not accepted. The owner
/// must invalidate() on every Continue/Stopped transition: the target
/// runs, the cache forgets, stale state is impossible.
///
/// Lines hold raw bytes in the target's byte order; the cache is given
/// that order so it can serve the value-level word interface from them.
/// Bypass mode degrades every operation to the word-granularity wire
/// traffic ldb produced before the block protocol existed — kept for
/// backward compatibility with word-only nubs and used by the wire
/// traffic bench as the measured baseline.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_MEM_CACHED_H
#define LDB_MEM_CACHED_H

#include "mem/memory.h"
#include "mem/stats.h"
#include "support/byteorder.h"

#include <map>
#include <string>
#include <vector>

namespace ldb::mem {

class CachedMemory : public Memory {
public:
  /// Caches \p CachedSpaces of \p Under in lines of \p LineBytes, serving
  /// values in \p Order (the target's byte order).
  CachedMemory(MemoryRef Under, ByteOrder Order, unsigned LineBytes = 256,
               std::string CachedSpaces = "cd");

  /// Declares that all cached spaces name the same underlying storage (as
  /// the nub's code and data spaces do), so a store through one space also
  /// patches lines cached under the others.
  void setSpacesAlias(bool Alias) { SpacesAlias = Alias; }

  /// Drops every line except those in immutable spaces. Must be called
  /// whenever the target may have run.
  void invalidate();

  /// Drops every line unconditionally, immutable spaces included.
  void invalidateAll() { Lines.clear(); }

  /// Declares spaces whose contents the target never changes while it
  /// runs (text, in a system without self-modifying code): their lines
  /// survive invalidate(). The debugger's own writes — break words —
  /// patch resident lines write-through, so they stay coherent. Pass ""
  /// to restore the drop-everything policy.
  void setImmutableSpaces(std::string Spaces) {
    ImmutableSpaces = std::move(Spaces);
  }

  /// Word-granularity compatibility mode: no lines are kept and block
  /// operations degrade to one word message per 4 bytes, reproducing the
  /// pre-block wire traffic.
  void setBypass(bool Enabled);
  bool bypass() const { return Bypass; }

  /// Counters for line hits and misses (per space); may be null.
  void setStats(TransportStats *S) { Stats = S; }

  /// Best-effort prefetch: fills every line overlapping [Loc, Loc+Size)
  /// with one aligned block transfer, so the reads that follow — a call
  /// scan, a breakpoint plant's verification fetch — are served from the
  /// cache. A failed transfer (the aligned span may run past the end of
  /// target memory) leaves the cache unchanged; the ordinary reads then
  /// pay their own way and report their own errors.
  void warm(Location Loc, size_t Size);

  /// Seeds lines from bytes the peer pushed without being asked (the
  /// nub's expedited stop window): every line fully covered by
  /// [Loc, Loc+Size) becomes resident, partial edge lines are ignored.
  /// Costs no wire traffic.
  void seed(Location Loc, size_t Size, const uint8_t *Bytes);

  /// Prefetches several spans at once: every non-resident aligned span is
  /// posted downstream in one batch and awaited together, so the whole
  /// set costs one link latency. Spans that fail (the aligned tail may run
  /// past the end of target memory) are retried once without their
  /// trailing line — also pipelined — then given up on. Returns the first
  /// hard transport error (or a deferred error from earlier fire-and-
  /// forget posts flushed by the same await); a span that merely cannot
  /// be prefetched is not an error.
  Error warmMany(const std::vector<std::pair<Location, size_t>> &Spans);

  unsigned lineBytes() const { return LineBytes; }
  size_t cachedLines() const { return Lines.size(); }

  Error fetchInt(Location Loc, unsigned Size, uint64_t &Value) override;
  Error storeInt(Location Loc, unsigned Size, uint64_t Value) override;
  Error fetchFloat(Location Loc, unsigned Size, long double &Value) override;
  Error storeFloat(Location Loc, unsigned Size, long double Value) override;
  Error fetchBlock(Location Loc, size_t Size, uint8_t *Out) override;
  Error storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) override;

  /// Posted block access. Fetches that the cache can serve (resident, or
  /// shorter than a line) complete immediately; the rest are posted
  /// downstream, and seed lines when they land. Posted stores patch
  /// resident lines *eagerly* — reads between post and await see the new
  /// bytes, which is what lets breakpoint stores ride the window with the
  /// Continue — and drop the patched lines again if the store later
  /// fails, so the cache never keeps bytes the target refused.
  void postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                      std::function<void(Error)> Done) override;
  void postStoreBlock(Location Loc, size_t Size, const uint8_t *Bytes,
                      std::function<void(Error)> Done) override;
  Error awaitPosted() override;

private:
  bool cacheable(Location Loc) const {
    return Loc.Mode == AddrMode::Absolute && Loc.Offset >= 0 &&
           CachedSpaces.find(Loc.Space) != std::string::npos;
  }

  /// Reads \p Size raw bytes at \p Loc through the line cache, filling
  /// missing lines with one block fetch each. Falls back to one direct
  /// uncached block fetch if a line fill fails (e.g. a line that would
  /// run past the end of target memory).
  Error fetchBytes(Location Loc, size_t Size, uint8_t *Out);

  /// Patches bytes that are present in cached lines (never allocates); with
  /// aliased spaces, patches every cached space at the same offsets.
  void patchLines(Location Loc, size_t Size, const uint8_t *Bytes);
  void patchSpace(char Space, int64_t Offset, size_t Size,
                  const uint8_t *Bytes);

  /// Installs whole lines covered by a block that was just transferred.
  void seedLines(Location Loc, size_t Size, const uint8_t *Bytes);

  /// Drops every line overlapping [Loc, Loc+Size) (all aliased spaces).
  void dropLines(Location Loc, size_t Size);

  /// True when every line overlapping [Loc, Loc+Size) is resident.
  bool allResident(Location Loc, size_t Size) const;

  MemoryRef Under;
  ByteOrder Order;
  unsigned LineBytes;
  std::string CachedSpaces;
  std::string ImmutableSpaces;
  bool SpacesAlias = false;
  bool Bypass = false;
  TransportStats *Stats = nullptr;
  std::map<std::pair<char, int64_t>, std::vector<uint8_t>> Lines;
};

} // namespace ldb::mem

#endif // LDB_MEM_CACHED_H
