//===- mem/memories.cpp - the memory DAG building blocks -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "mem/memories.h"

#include <algorithm>
#include <cassert>

using namespace ldb;
using namespace ldb::mem;

Memory::~Memory() = default;

std::string Location::str() const {
  if (Mode == AddrMode::Immediate)
    return "imm:" + std::to_string(Offset);
  return std::string(1, Space) + ":" + std::to_string(Offset);
}

namespace {

/// Immediate-mode fetches return the offset itself (paper Sec 4.1); stores
/// to immediate locations are always errors.
bool fetchImmediate(Location Loc, uint64_t &Value) {
  if (Loc.Mode != AddrMode::Immediate)
    return false;
  Value = static_cast<uint64_t>(Loc.Offset);
  return true;
}

Error immediateStoreError() {
  return Error::failure("cannot store to an immediate location");
}

} // namespace

Error Memory::fetchFloat(Location Loc, unsigned Size, long double &Value) {
  // Default path for memories whose cells are value-addressable through
  // fetchInt: reassemble the float from its bit pattern. Only 4-byte floats
  // can travel through the 32-bit integer path.
  if (Size != 4)
    return Error::failure("this memory cannot fetch " +
                          std::to_string(Size) + "-byte floats");
  uint64_t Bits;
  if (Error E = fetchInt(Loc, 4, Bits))
    return E;
  uint8_t Raw[4];
  packInt(Bits, Raw, 4, ByteOrder::Little);
  Value = unpackF32(Raw, ByteOrder::Little);
  return Error::success();
}

Error Memory::storeFloat(Location Loc, unsigned Size, long double Value) {
  if (Size != 4)
    return Error::failure("this memory cannot store " +
                          std::to_string(Size) + "-byte floats");
  uint8_t Raw[4];
  packF32(static_cast<float>(Value), Raw, ByteOrder::Little);
  return storeInt(Loc, 4, unpackInt(Raw, 4, ByteOrder::Little));
}

Error Memory::fetchBlock(Location Loc, size_t Size, uint8_t *Out) {
  // Single-byte fetches are byte-order-independent, so this loop yields
  // the target's raw bytes through any memory's value-level word path.
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot fetch a block from an immediate location");
  for (size_t K = 0; K < Size; ++K) {
    uint64_t Byte = 0;
    if (Error E = fetchInt(Loc.shifted(static_cast<int64_t>(K)), 1, Byte))
      return E;
    Out[K] = static_cast<uint8_t>(Byte);
  }
  return Error::success();
}

Error Memory::storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  for (size_t K = 0; K < Size; ++K)
    if (Error E =
            storeInt(Loc.shifted(static_cast<int64_t>(K)), 1, Bytes[K]))
      return E;
  return Error::success();
}

void Memory::settlePosted(Error E, std::function<void(Error)> &Done) {
  if (Done)
    Done(std::move(E));
  else if (E && !DeferredPostErr)
    DeferredPostErr = std::move(E);
}

Error Memory::takeDeferred() {
  Error E = std::move(DeferredPostErr);
  DeferredPostErr = Error::success();
  return E;
}

void Memory::postFetchBlock(Location Loc, size_t Size, uint8_t *Out,
                            std::function<void(Error)> Done) {
  // Synchronous default: complete immediately. Memories backed by a real
  // asynchronous transport (the wire, the cache above it) override.
  settlePosted(fetchBlock(Loc, Size, Out), Done);
}

void Memory::postStoreBlock(Location Loc, size_t Size, const uint8_t *Bytes,
                            std::function<void(Error)> Done) {
  settlePosted(storeBlock(Loc, Size, Bytes), Done);
}

Error Memory::awaitPosted() { return takeDeferred(); }

//===----------------------------------------------------------------------===//
// FlatMemory
//===----------------------------------------------------------------------===//

void FlatMemory::addSpace(char Space, size_t Size) {
  std::vector<uint8_t> &Bytes = Spaces[Space];
  if (Bytes.size() < Size)
    Bytes.resize(Size, 0);
}

Error FlatMemory::bytesAt(Location Loc, unsigned Size, uint8_t *&Ptr) {
  auto It = Spaces.find(Loc.Space);
  if (It == Spaces.end())
    return Error::failure("no such space '" + std::string(1, Loc.Space) +
                          "' in flat memory");
  if (Loc.Offset < 0 ||
      static_cast<uint64_t>(Loc.Offset) + Size > It->second.size())
    return Error::failure("address " + Loc.str() + " out of range");
  Ptr = It->second.data() + Loc.Offset;
  return Error::success();
}

Error FlatMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (fetchImmediate(Loc, Value))
    return Error::success();
  assert(isIntSize(Size) && "bad integer size");
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, Size, Ptr))
    return E;
  Value = unpackInt(Ptr, Size, Order);
  return Error::success();
}

Error FlatMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  assert(isIntSize(Size) && "bad integer size");
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, Size, Ptr))
    return E;
  packInt(Value, Ptr, Size, Order);
  return Error::success();
}

Error FlatMemory::fetchFloat(Location Loc, unsigned Size, long double &Value) {
  assert(isFloatSize(Size) && "bad float size");
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, Size, Ptr))
    return E;
  switch (Size) {
  case 4:
    Value = unpackF32(Ptr, Order);
    break;
  case 8:
    Value = unpackF64(Ptr, Order);
    break;
  default:
    Value = unpackF80(Ptr, Order);
  }
  return Error::success();
}

namespace {

/// bytesAt takes an unsigned count; refuse sizes that would truncate.
bool blockSizeSane(size_t Size) { return Size <= (size_t(1) << 30); }

} // namespace

Error FlatMemory::fetchBlock(Location Loc, size_t Size, uint8_t *Out) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot fetch a block from an immediate location");
  if (!blockSizeSane(Size))
    return Error::failure("block size too large");
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, static_cast<unsigned>(Size), Ptr))
    return E;
  std::copy(Ptr, Ptr + Size, Out);
  return Error::success();
}

Error FlatMemory::storeBlock(Location Loc, size_t Size, const uint8_t *Bytes) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  if (!blockSizeSane(Size))
    return Error::failure("block size too large");
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, static_cast<unsigned>(Size), Ptr))
    return E;
  std::copy(Bytes, Bytes + Size, Ptr);
  return Error::success();
}

Error FlatMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  assert(isFloatSize(Size) && "bad float size");
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  uint8_t *Ptr;
  if (Error E = bytesAt(Loc, Size, Ptr))
    return E;
  switch (Size) {
  case 4:
    packF32(static_cast<float>(Value), Ptr, Order);
    break;
  case 8:
    packF64(static_cast<double>(Value), Ptr, Order);
    break;
  default:
    packF80(Value, Ptr, Order);
  }
  return Error::success();
}

//===----------------------------------------------------------------------===//
// AliasMemory
//===----------------------------------------------------------------------===//

void AliasMemory::addAlias(char Space, int64_t Offset, Location Target) {
  Aliases[{Space, Offset}] = Target;
}

void AliasMemory::addRebase(char Space, char TargetSpace, int64_t Delta) {
  Rebases[Space] = Rebase{TargetSpace, Delta};
}

bool AliasMemory::translate(Location Loc, Location &Out) const {
  auto It = Aliases.find({Loc.Space, Loc.Offset});
  if (It != Aliases.end()) {
    Out = It->second;
    return true;
  }
  auto RIt = Rebases.find(Loc.Space);
  if (RIt != Rebases.end()) {
    Out = Location::absolute(RIt->second.TargetSpace,
                             Loc.Offset + RIt->second.Delta);
    return true;
  }
  Out = Loc;
  return false;
}

Error AliasMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (fetchImmediate(Loc, Value))
    return Error::success();
  Location Target;
  translate(Loc, Target);
  if (fetchImmediate(Target, Value))
    return Error::success();
  return Under->fetchInt(Target, Size, Value);
}

Error AliasMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  Location Target;
  translate(Loc, Target);
  if (Target.Mode == AddrMode::Immediate)
    return immediateStoreError();
  return Under->storeInt(Target, Size, Value);
}

Error AliasMemory::fetchFloat(Location Loc, unsigned Size,
                              long double &Value) {
  Location Target;
  translate(Loc, Target);
  return Under->fetchFloat(Target, Size, Value);
}

Error AliasMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  Location Target;
  translate(Loc, Target);
  if (Target.Mode == AddrMode::Immediate)
    return immediateStoreError();
  return Under->storeFloat(Target, Size, Value);
}

//===----------------------------------------------------------------------===//
// RegisterMemory
//===----------------------------------------------------------------------===//

Error RegisterMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (fetchImmediate(Loc, Value))
    return Error::success();
  if (!isRegisterSpace(Loc.Space) || Size == 4)
    return Under->fetchInt(Loc, Size, Value);
  // Subword register fetch: fetch the whole register, then return only the
  // least significant bits; byte order never enters the picture.
  uint64_t Word;
  if (Error E = Under->fetchInt(Loc, 4, Word))
    return E;
  Value = Word & ((uint64_t(1) << (8 * Size)) - 1);
  return Error::success();
}

Error RegisterMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  if (!isRegisterSpace(Loc.Space) || Size == 4)
    return Under->storeInt(Loc, Size, Value);
  uint64_t Word;
  if (Error E = Under->fetchInt(Loc, 4, Word))
    return E;
  uint64_t Mask = (uint64_t(1) << (8 * Size)) - 1;
  Word = (Word & ~Mask) | (Value & Mask);
  return Under->storeInt(Loc, 4, Word);
}

Error RegisterMemory::fetchFloat(Location Loc, unsigned Size,
                                 long double &Value) {
  return Under->fetchFloat(Loc, Size, Value);
}

Error RegisterMemory::storeFloat(Location Loc, unsigned Size,
                                 long double Value) {
  return Under->storeFloat(Loc, Size, Value);
}

//===----------------------------------------------------------------------===//
// JoinedMemory
//===----------------------------------------------------------------------===//

void JoinedMemory::join(const std::string &Spaces, MemoryRef M) {
  for (char Space : Spaces)
    Routes[Space] = M;
}

Error JoinedMemory::route(char Space, MemoryRef &Out) {
  auto It = Routes.find(Space);
  if (It == Routes.end())
    return Error::failure("no memory joined for space '" +
                          std::string(1, Space) + "'");
  Out = It->second;
  return Error::success();
}

Error JoinedMemory::fetchInt(Location Loc, unsigned Size, uint64_t &Value) {
  if (fetchImmediate(Loc, Value))
    return Error::success();
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->fetchInt(Loc, Size, Value);
}

Error JoinedMemory::storeInt(Location Loc, unsigned Size, uint64_t Value) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->storeInt(Loc, Size, Value);
}

Error JoinedMemory::fetchFloat(Location Loc, unsigned Size,
                               long double &Value) {
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->fetchFloat(Loc, Size, Value);
}

Error JoinedMemory::storeFloat(Location Loc, unsigned Size, long double Value) {
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->storeFloat(Loc, Size, Value);
}

Error JoinedMemory::fetchBlock(Location Loc, size_t Size, uint8_t *Out) {
  if (Loc.Mode == AddrMode::Immediate)
    return Error::failure("cannot fetch a block from an immediate location");
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->fetchBlock(Loc, Size, Out);
}

Error JoinedMemory::storeBlock(Location Loc, size_t Size,
                               const uint8_t *Bytes) {
  if (Loc.Mode == AddrMode::Immediate)
    return immediateStoreError();
  MemoryRef M;
  if (Error E = route(Loc.Space, M))
    return E;
  return M->storeBlock(Loc, Size, Bytes);
}
