//===- support/lzw.cpp - LZW compression ---------------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/lzw.h"

#include <cassert>
#include <unordered_map>

using namespace ldb;

namespace {

constexpr unsigned MinBits = 9;
constexpr unsigned MaxBits = 16;
constexpr uint32_t FullCode = 1u << MaxBits;

/// Packs variable-width codes least-significant-bit first, as compress(1)
/// does.
class BitWriter {
public:
  void write(uint32_t Value, unsigned Width) {
    Acc |= static_cast<uint64_t>(Value) << Pending;
    Pending += Width;
    while (Pending >= 8) {
      Bytes.push_back(static_cast<uint8_t>(Acc & 0xff));
      Acc >>= 8;
      Pending -= 8;
    }
  }

  std::vector<uint8_t> finish() {
    if (Pending > 0)
      Bytes.push_back(static_cast<uint8_t>(Acc & 0xff));
    return std::move(Bytes);
  }

private:
  std::vector<uint8_t> Bytes;
  uint64_t Acc = 0;
  unsigned Pending = 0;
};

class BitReader {
public:
  explicit BitReader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  /// Reads \p Width bits; returns false at end of stream.
  bool read(unsigned Width, uint32_t &Value) {
    while (Pending < Width) {
      if (Next >= Bytes.size())
        return false;
      Acc |= static_cast<uint64_t>(Bytes[Next++]) << Pending;
      Pending += 8;
    }
    Value = static_cast<uint32_t>(Acc & ((1u << Width) - 1));
    Acc >>= Width;
    Pending -= Width;
    return true;
  }

private:
  const std::vector<uint8_t> &Bytes;
  uint64_t Acc = 0;
  unsigned Pending = 0;
  size_t Next = 0;
};

/// Code width for the Nth emitted code (1-based): both ends derive the
/// width from the emit count, so they never fall out of sync. The encoder's
/// dictionary holds min(256 + N - 1, FullCode) entries when it emits code N.
unsigned widthForEmit(size_t N) {
  uint32_t DictSize = static_cast<uint32_t>(
      std::min<uint64_t>(256 + (N - 1), FullCode));
  unsigned Width = MinBits;
  while ((1u << Width) < DictSize && Width < MaxBits)
    ++Width;
  return Width;
}

} // namespace

std::vector<uint8_t> ldb::lzwCompress(const std::string &Input) {
  BitWriter Writer;
  if (Input.empty())
    return Writer.finish();

  // Key is (prefix code << 8) | next byte; values are codes >= 256.
  std::unordered_map<uint32_t, uint32_t> Dict;
  uint32_t NextCode = 256;
  size_t Emits = 0;

  uint32_t Cur = static_cast<uint8_t>(Input[0]);
  for (size_t I = 1; I < Input.size(); ++I) {
    uint8_t Byte = static_cast<uint8_t>(Input[I]);
    uint32_t Key = (Cur << 8) | Byte;
    auto It = Dict.find(Key);
    if (It != Dict.end()) {
      Cur = It->second;
      continue;
    }
    Writer.write(Cur, widthForEmit(++Emits));
    if (NextCode < FullCode)
      Dict.emplace(Key, NextCode++);
    Cur = Byte;
  }
  Writer.write(Cur, widthForEmit(++Emits));
  return Writer.finish();
}

std::string ldb::lzwDecompress(const std::vector<uint8_t> &Compressed) {
  BitReader Reader(Compressed);
  std::string Output;

  std::vector<std::string> Table;
  Table.reserve(FullCode);
  for (unsigned I = 0; I < 256; ++I)
    Table.push_back(std::string(1, static_cast<char>(I)));

  size_t Emits = 0;
  uint32_t Code;
  if (!Reader.read(widthForEmit(++Emits), Code))
    return Output;
  if (Code >= 256)
    return std::string();
  std::string Prev = Table[Code];
  Output += Prev;

  while (Reader.read(widthForEmit(++Emits), Code)) {
    std::string Entry;
    if (Code < Table.size()) {
      Entry = Table[Code];
    } else if (Code == Table.size() && Table.size() < FullCode) {
      Entry = Prev + Prev[0]; // The KwKwK case.
    } else {
      return std::string(); // Corrupt stream.
    }
    Output += Entry;
    if (Table.size() < FullCode)
      Table.push_back(Prev + Entry[0]);
    Prev = Entry;
  }
  return Output;
}
