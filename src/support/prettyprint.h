//===- support/prettyprint.h - fill-style pretty printer ------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-filling pretty printer. The original ldb exposed the Modula-3
/// prettyprinter to PostScript printing procedures through the Put / Break /
/// Begin / End operators (paper Sec 5); this class is the engine behind
/// those operators. Begin opens a group whose continuation lines are
/// indented relative to the column where the group began; Break marks an
/// optional break point that becomes a newline only when the following
/// segment would overflow the margin.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_PRETTYPRINT_H
#define LDB_SUPPORT_PRETTYPRINT_H

#include <string>
#include <vector>

namespace ldb {

class PrettyPrinter {
public:
  explicit PrettyPrinter(unsigned Margin = 72) : Margin(Margin) {}

  /// Appends \p Text to the current unbreakable segment.
  void put(const std::string &Text);

  /// Marks an optional break point between segments.
  void brk();

  /// Opens a group; continuation lines inside it are indented \p Indent
  /// columns past the column where the group began.
  void begin(unsigned Indent);

  /// Closes the innermost group.
  void end();

  /// Flushes pending output and returns everything printed so far.
  std::string take();

  unsigned margin() const { return Margin; }

private:
  void flushSegment();

  unsigned Margin;
  std::string Out;
  std::string Line;
  std::string Segment;
  std::vector<unsigned> IndentStack;
};

} // namespace ldb

#endif // LDB_SUPPORT_PRETTYPRINT_H
