//===- support/byteorder.cpp - endian-aware byte packing -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/byteorder.h"

using namespace ldb;

// The host long double must be x87-style 80-bit extended precision; the
// packed wire layout is a 16-bit sign/exponent word followed by the 64-bit
// significand, each in the requested byte order.
static_assert(sizeof(long double) >= 10,
              "host long double too small for 80-bit floats");

void ldb::packF80(long double Value, uint8_t *Out, ByteOrder Order) {
  uint8_t Raw[sizeof(long double)] = {0};
  std::memcpy(Raw, &Value, 10);
  // Host x87 layout is little-endian: significand first, then sign/exponent.
  uint64_t Significand = unpackInt(Raw, 8, ByteOrder::Little);
  uint16_t SignExp =
      static_cast<uint16_t>(unpackInt(Raw + 8, 2, ByteOrder::Little));
  packInt(SignExp, Out, 2, Order);
  packInt(Significand, Out + 2, 8, Order);
}

long double ldb::unpackF80(const uint8_t *In, ByteOrder Order) {
  uint16_t SignExp = static_cast<uint16_t>(unpackInt(In, 2, Order));
  uint64_t Significand = unpackInt(In + 2, 8, Order);
  uint8_t Raw[sizeof(long double)] = {0};
  packInt(Significand, Raw, 8, ByteOrder::Little);
  packInt(SignExp, Raw + 8, 2, ByteOrder::Little);
  long double Value = 0;
  std::memcpy(&Value, Raw, 10);
  return Value;
}
