//===- support/error.h - lightweight error handling -----------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error and Expected<T>: a small exception-free error-handling scheme in
/// the spirit of llvm::Error / llvm::Expected. The original ldb relied on
/// Modula-3 exceptions; library code here instead returns these values and
/// callers check them explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_ERROR_H
#define LDB_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ldb {

/// An error outcome: success, or failure with a human-readable message.
///
/// Messages follow the tool-diagnostic convention: lowercase first word,
/// no trailing period.
class Error {
public:
  /// Creates a success value.
  static Error success() { return Error(); }

  /// Creates a failure carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Failed = true;
    E.Message = std::move(Message);
    return E;
  }

  /// True when this is a failure value.
  explicit operator bool() const { return Failed; }

  /// The failure message; empty for success values.
  const std::string &message() const { return Message; }

private:
  bool Failed = false;
  std::string Message;
};

/// Either a value of type \p T or an Error. Test with operator bool, then
/// dereference on success or call takeError() on failure.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Error E) : Storage(std::move(E)) {
    assert(std::get<Error>(Storage) && "Expected built from success Error");
  }

  /// True on success.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  T &operator*() {
    assert(*this && "dereferencing failed Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing failed Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Moves the value out of a successful Expected.
  T take() {
    assert(*this && "taking value of failed Expected");
    return std::move(std::get<T>(Storage));
  }

  /// Extracts the error from a failed Expected.
  Error takeError() {
    if (*this)
      return Error::success();
    return std::move(std::get<Error>(Storage));
  }

  /// The failure message (empty on success); convenience for diagnostics.
  std::string message() const {
    if (*this)
      return std::string();
    return std::get<Error>(Storage).message();
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace ldb

#endif // LDB_SUPPORT_ERROR_H
