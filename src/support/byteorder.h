//===- support/byteorder.h - endian-aware byte packing --------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-order conversion helpers. ldb's wire protocol is little-endian on
/// every host/target combination (paper Sec 4.2); simulated targets are big-
/// or little-endian. All multi-byte values cross module boundaries as byte
/// vectors packed by these helpers, so the debugger proper never depends on
/// host byte order.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_BYTEORDER_H
#define LDB_SUPPORT_BYTEORDER_H

#include <cstdint>
#include <cstring>

namespace ldb {

enum class ByteOrder { Little, Big };

/// Writes the low \p Size bytes of \p Value at \p Out in \p Order.
inline void packInt(uint64_t Value, uint8_t *Out, unsigned Size,
                    ByteOrder Order) {
  for (unsigned I = 0; I < Size; ++I) {
    unsigned Shift =
        (Order == ByteOrder::Little) ? 8 * I : 8 * (Size - 1 - I);
    Out[I] = static_cast<uint8_t>(Value >> Shift);
  }
}

/// Reads \p Size bytes at \p In in \p Order as an unsigned integer.
inline uint64_t unpackInt(const uint8_t *In, unsigned Size, ByteOrder Order) {
  uint64_t Value = 0;
  for (unsigned I = 0; I < Size; ++I) {
    unsigned Shift =
        (Order == ByteOrder::Little) ? 8 * I : 8 * (Size - 1 - I);
    Value |= static_cast<uint64_t>(In[I]) << Shift;
  }
  return Value;
}

/// Sign-extends the low \p Bits bits of \p Value.
inline int64_t signExtend(uint64_t Value, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(Value);
  uint64_t Mask = (uint64_t(1) << Bits) - 1;
  Value &= Mask;
  uint64_t Sign = uint64_t(1) << (Bits - 1);
  return static_cast<int64_t>((Value ^ Sign) - Sign);
}

/// Packs an IEEE single into 4 bytes in \p Order.
inline void packF32(float Value, uint8_t *Out, ByteOrder Order) {
  uint32_t Bits;
  std::memcpy(&Bits, &Value, 4);
  packInt(Bits, Out, 4, Order);
}

/// Packs an IEEE double into 8 bytes in \p Order.
inline void packF64(double Value, uint8_t *Out, ByteOrder Order) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, 8);
  packInt(Bits, Out, 8, Order);
}

inline float unpackF32(const uint8_t *In, ByteOrder Order) {
  uint32_t Bits = static_cast<uint32_t>(unpackInt(In, 4, Order));
  float Value;
  std::memcpy(&Value, &Bits, 4);
  return Value;
}

inline double unpackF64(const uint8_t *In, ByteOrder Order) {
  uint64_t Bits = unpackInt(In, 8, Order);
  double Value;
  std::memcpy(&Value, &Bits, 8);
  return Value;
}

/// Packs an 80-bit extended float (the 68020's long double; paper Sec 4.1
/// supports three float sizes: 32, 64, and 80 bits) into 10 bytes.
///
/// Encoding: 1 sign bit + 15 exponent bits, then a 64-bit significand with
/// explicit integer bit, matching the x87/68881 layout. The value travels
/// as (sign/exponent 16-bit word, significand 64-bit word) each in \p Order.
void packF80(long double Value, uint8_t *Out, ByteOrder Order);

/// Reads a 10-byte extended float packed by packF80.
long double unpackF80(const uint8_t *In, ByteOrder Order);

} // namespace ldb

#endif // LDB_SUPPORT_BYTEORDER_H
