//===- support/lzw.h - LZW compression ------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LZW compressor/decompressor standing in for UNIX compress(1), which
/// the paper uses to compare PostScript symbol-table sizes against dbx
/// stabs ("after compression ... the ratio is about 2", Sec 7). Like
/// compress, this is LZW with codes growing from 9 to 16 bits.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_LZW_H
#define LDB_SUPPORT_LZW_H

#include <cstdint>
#include <string>
#include <vector>

namespace ldb {

/// Compresses \p Input with LZW (9..16-bit codes, dictionary reset when
/// full, as in compress(1) without the adaptive reset heuristic).
std::vector<uint8_t> lzwCompress(const std::string &Input);

/// Inverts lzwCompress. Malformed input yields an empty result.
std::string lzwDecompress(const std::vector<uint8_t> &Compressed);

} // namespace ldb

#endif // LDB_SUPPORT_LZW_H
