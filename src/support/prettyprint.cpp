//===- support/prettyprint.cpp - fill-style pretty printer ---------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/prettyprint.h"

using namespace ldb;

void PrettyPrinter::put(const std::string &Text) {
  // Honor explicit newlines from the caller (e.g. PostScript printing a
  // literal \n): they flush the line unconditionally.
  for (char C : Text) {
    if (C != '\n') {
      Segment += C;
      continue;
    }
    Line += Segment;
    Segment.clear();
    Out += Line;
    Out += '\n';
    Line.clear();
  }
}

void PrettyPrinter::brk() { flushSegment(); }

void PrettyPrinter::begin(unsigned Indent) {
  flushSegment();
  IndentStack.push_back(static_cast<unsigned>(Line.size()) + Indent);
}

void PrettyPrinter::end() {
  flushSegment();
  if (!IndentStack.empty())
    IndentStack.pop_back();
}

std::string PrettyPrinter::take() {
  Line += Segment;
  Segment.clear();
  Out += Line;
  Line.clear();
  return std::move(Out);
}

void PrettyPrinter::flushSegment() {
  if (Segment.empty())
    return;
  if (Line.size() + Segment.size() > Margin && !Line.empty()) {
    Out += Line;
    Out += '\n';
    unsigned Indent = IndentStack.empty() ? 0 : IndentStack.back();
    Line.assign(Indent, ' ');
  }
  Line += Segment;
  Segment.clear();
}
