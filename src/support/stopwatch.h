//===- support/stopwatch.h - wall-clock timing -----------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic stopwatch. The paper's Sec 7 timing table was measured "with
/// a stopwatch"; benches use this one instead.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_STOPWATCH_H
#define LDB_SUPPORT_STOPWATCH_H

#include <chrono>

namespace ldb {

class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time since construction or the last reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace ldb

#endif // LDB_SUPPORT_STOPWATCH_H
