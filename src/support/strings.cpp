//===- support/strings.cpp - small string utilities ----------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/strings.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ldb;

std::string ldb::psEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '(':
      Out += "\\(";
      break;
    case ')':
      Out += "\\)";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\%03o",
                      static_cast<unsigned char>(C));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string ldb::psHex(uint32_t Value) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "16#%08x", Value);
  return Buf;
}

std::string ldb::hex32(uint32_t Value) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08x", Value);
  return Buf;
}

std::vector<std::string> ldb::splitWords(const std::string &Text) {
  std::vector<std::string> Words;
  std::string Word;
  std::istringstream Stream(Text);
  while (Stream >> Word)
    Words.push_back(Word);
  return Words;
}

std::vector<std::string> ldb::splitOn(const std::string &Text, char Sep) {
  std::vector<std::string> Fields;
  std::string Field;
  for (char C : Text) {
    if (C == Sep) {
      Fields.push_back(Field);
      Field.clear();
    } else {
      Field += C;
    }
  }
  Fields.push_back(Field);
  return Fields;
}

unsigned ldb::countCodeLines(const std::string &Source,
                             const std::string &LineComment) {
  unsigned Count = 0;
  for (const std::string &Line : splitOn(Source, '\n')) {
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos)
      continue; // Blank line.
    if (!LineComment.empty() &&
        Line.compare(First, LineComment.size(), LineComment) == 0)
      continue; // Pure comment line.
    ++Count;
  }
  return Count;
}

bool ldb::readFile(const std::string &Path, std::string &Contents) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Contents = Buffer.str();
  return true;
}

bool ldb::writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Contents;
  return Out.good();
}
