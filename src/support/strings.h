//===- support/strings.h - small string utilities --------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the PostScript emitters, scanners, and the
/// command interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_SUPPORT_STRINGS_H
#define LDB_SUPPORT_STRINGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ldb {

/// Escapes \p Text for inclusion in a PostScript (...) string literal:
/// backslash-escapes parentheses and backslashes, and encodes control
/// characters as \n, \t, or octal.
std::string psEscape(const std::string &Text);

/// Formats \p Value as PostScript radix-16 syntax, e.g. "16#000023d8".
std::string psHex(uint32_t Value);

/// Formats \p Value as 0x-prefixed zero-padded hex, e.g. "0x000023d8".
std::string hex32(uint32_t Value);

/// Splits \p Text on whitespace into non-empty words.
std::vector<std::string> splitWords(const std::string &Text);

/// Splits \p Text on \p Sep (keeping empty fields).
std::vector<std::string> splitOn(const std::string &Text, char Sep);

/// Counts lines of code in \p Source: lines that are neither blank nor
/// pure comment. \p LineComment is the comment leader ("//", "%", or "#").
/// Used by the machine-dependent-LoC experiment (paper Sec 4.3 table).
unsigned countCodeLines(const std::string &Source,
                        const std::string &LineComment);

/// Reads a whole file; returns false if it cannot be opened.
bool readFile(const std::string &Path, std::string &Contents);

/// Writes \p Contents to \p Path; returns false on failure.
bool writeFile(const std::string &Path, const std::string &Contents);

} // namespace ldb

#endif // LDB_SUPPORT_STRINGS_H
