//===- nub/protocol.cpp - the ldb <-> nub wire protocol -------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/protocol.h"

#include "nub/channel.h"

#include <algorithm>

using namespace ldb;
using namespace ldb::nub;

const char *ldb::nub::signalName(int32_t Signo) {
  switch (Signo) {
  case SigPause:
    return "pause before main";
  case SigIll:
    return "illegal instruction";
  case SigTrap:
    return "breakpoint trap";
  case SigFpe:
    return "arithmetic fault";
  case SigBus:
    return "bus error (load delay hazard)";
  case SigSegv:
    return "segmentation fault";
  default:
    return "unknown signal";
  }
}

const char *ldb::nub::msgKindName(MsgKind Kind) {
  switch (Kind) {
  case MsgKind::Hello:
    return "Hello";
  case MsgKind::FetchInt:
    return "FetchInt";
  case MsgKind::StoreInt:
    return "StoreInt";
  case MsgKind::FetchFloat:
    return "FetchFloat";
  case MsgKind::StoreFloat:
    return "StoreFloat";
  case MsgKind::Continue:
    return "Continue";
  case MsgKind::Kill:
    return "Kill";
  case MsgKind::Detach:
    return "Detach";
  case MsgKind::FetchBlock:
    return "FetchBlock";
  case MsgKind::StoreBlock:
    return "StoreBlock";
  case MsgKind::SetCondition:
    return "SetCondition";
  case MsgKind::ClearCondition:
    return "ClearCondition";
  case MsgKind::SetTracepoint:
    return "SetTracepoint";
  case MsgKind::DrainTrace:
    return "DrainTrace";
  case MsgKind::SetCheckpointPolicy:
    return "SetCheckpointPolicy";
  case MsgKind::Seek:
    return "Seek";
  case MsgKind::TimelineQuery:
    return "TimelineQuery";
  case MsgKind::Welcome:
    return "Welcome";
  case MsgKind::Stopped:
    return "Stopped";
  case MsgKind::Exited:
    return "Exited";
  case MsgKind::FetchIntReply:
    return "FetchIntReply";
  case MsgKind::FetchFloatReply:
    return "FetchFloatReply";
  case MsgKind::Ack:
    return "Ack";
  case MsgKind::Nak:
    return "Nak";
  case MsgKind::FetchBlockReply:
    return "FetchBlockReply";
  case MsgKind::Corrupt:
    return "Corrupt";
  case MsgKind::TraceReply:
    return "TraceReply";
  case MsgKind::TimelineReply:
    return "TimelineReply";
  }
  return "?";
}

MsgWriter &MsgWriter::u8(uint8_t V) {
  Payload.push_back(V);
  return *this;
}

MsgWriter &MsgWriter::u32(uint32_t V) {
  uint8_t Raw[4];
  packInt(V, Raw, 4, ByteOrder::Little);
  Payload.insert(Payload.end(), Raw, Raw + 4);
  return *this;
}

MsgWriter &MsgWriter::u64(uint64_t V) {
  uint8_t Raw[8];
  packInt(V, Raw, 8, ByteOrder::Little);
  Payload.insert(Payload.end(), Raw, Raw + 8);
  return *this;
}

MsgWriter &MsgWriter::f80(long double V) {
  uint8_t Raw[10];
  packF80(V, Raw, ByteOrder::Little);
  Payload.insert(Payload.end(), Raw, Raw + 10);
  return *this;
}

MsgWriter &MsgWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Payload.insert(Payload.end(), S.begin(), S.end());
  return *this;
}

MsgWriter &MsgWriter::raw(const uint8_t *Bytes, size_t Size) {
  Payload.insert(Payload.end(), Bytes, Bytes + Size);
  return *this;
}

uint32_t ldb::nub::fnv1a32(uint32_t Seed, const uint8_t *Bytes, size_t Size) {
  uint32_t H = Seed;
  for (size_t K = 0; K < Size; ++K) {
    H ^= Bytes[K];
    H *= 16777619u;
  }
  return H;
}

std::vector<uint8_t> MsgWriter::frame(uint32_t Seq) const {
  std::vector<uint8_t> Out;
  Out.reserve(Payload.size() + FrameHeaderSize);
  Out.push_back(static_cast<uint8_t>(Kind));
  uint8_t Word[4];
  packInt(Seq, Word, 4, ByteOrder::Little);
  Out.insert(Out.end(), Word, Word + 4);
  packInt(Payload.size(), Word, 4, ByteOrder::Little);
  Out.insert(Out.end(), Word, Word + 4);
  // Checksum covers kind, seq, len, payload — everything but itself.
  uint32_t Sum = fnv1a32(Fnv1a32Init, Out.data(), Out.size());
  Sum = fnv1a32(Sum, Payload.data(), Payload.size());
  packInt(Sum, Word, 4, ByteOrder::Little);
  Out.insert(Out.end(), Word, Word + 4);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool MsgReader::take(size_t N, const uint8_t *&Ptr) {
  if (Pos + N > Payload.size())
    return false;
  Ptr = Payload.data() + Pos;
  Pos += N;
  return true;
}

bool MsgReader::u8(uint8_t &V) {
  const uint8_t *Ptr;
  if (!take(1, Ptr))
    return false;
  V = *Ptr;
  return true;
}

bool MsgReader::u32(uint32_t &V) {
  const uint8_t *Ptr;
  if (!take(4, Ptr))
    return false;
  V = static_cast<uint32_t>(unpackInt(Ptr, 4, ByteOrder::Little));
  return true;
}

bool MsgReader::u64(uint64_t &V) {
  const uint8_t *Ptr;
  if (!take(8, Ptr))
    return false;
  V = unpackInt(Ptr, 8, ByteOrder::Little);
  return true;
}

bool MsgReader::f80(long double &V) {
  const uint8_t *Ptr;
  if (!take(10, Ptr))
    return false;
  V = unpackF80(Ptr, ByteOrder::Little);
  return true;
}

bool MsgReader::str(std::string &S) {
  uint32_t Size;
  if (!u32(Size))
    return false;
  const uint8_t *Ptr;
  if (!take(Size, Ptr))
    return false;
  S.assign(reinterpret_cast<const char *>(Ptr), Size);
  return true;
}

bool MsgReader::raw(size_t N, const uint8_t *&Ptr) { return take(N, Ptr); }

FrameStatus ldb::nub::readFrame(ChannelEnd &Ch, MsgReader &Out) {
  if (Ch.available() < FrameHeaderSize)
    return FrameStatus::NoFrame;
  uint8_t Header[FrameHeaderSize];
  if (!Ch.read(Header, FrameHeaderSize))
    return FrameStatus::NoFrame;
  MsgKind Kind = static_cast<MsgKind>(Header[0]);
  uint32_t Seq =
      static_cast<uint32_t>(unpackInt(Header + 1, 4, ByteOrder::Little));
  uint32_t Len =
      static_cast<uint32_t>(unpackInt(Header + 5, 4, ByteOrder::Little));
  uint32_t Sum =
      static_cast<uint32_t>(unpackInt(Header + 9, 4, ByteOrder::Little));
  if (Len > MaxFramePayload) {
    // A hostile or corrupt length: never allocate it. Whatever payload
    // bytes did arrive are garbage belonging to this frame — drain them so
    // a following frame can resynchronize.
    uint8_t Sink[256];
    uint64_t Left = Len;
    while (Left > 0 && Ch.available() > 0) {
      size_t N = std::min<uint64_t>({Left, Ch.available(), sizeof(Sink)});
      if (!Ch.read(Sink, N))
        break;
      Left -= N;
    }
    Out = MsgReader(Kind, {}, Seq);
    return FrameStatus::Oversized;
  }
  std::vector<uint8_t> Payload(Len);
  if (Len > 0 && !Ch.read(Payload.data(), Len)) {
    Out = MsgReader(Kind, {}, Seq);
    return FrameStatus::Truncated;
  }
  uint32_t Want = fnv1a32(Fnv1a32Init, Header, 9);
  Want = fnv1a32(Want, Payload.data(), Payload.size());
  if (Want != Sum) {
    // Damaged in flight. The whole frame was consumed so the stream stays
    // framed; kind and seq are best-effort (they may be the damaged bytes).
    Out = MsgReader(Kind, {}, Seq);
    return FrameStatus::Garbled;
  }
  Out = MsgReader(Kind, std::move(Payload), Seq);
  return FrameStatus::Ok;
}
