//===- nub/client.cpp - debugger end of the nub protocol -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/client.h"

#include <algorithm>

using namespace ldb;
using namespace ldb::nub;

Error NubClient::send(const MsgWriter &W) {
  if (Chan->isBroken())
    return Error::failure("connection to nub is broken");
  std::vector<uint8_t> Frame = W.frame();
  Chan->write(Frame.data(), Frame.size());
  if (Stats)
    ++Stats->MsgsSent;
  return Error::success();
}

Error NubClient::recv(MsgReader &Out) {
  switch (readFrame(*Chan, Out)) {
  case FrameStatus::Ok:
    // Every receive in this synchronous protocol answers a send, so each
    // one closes a round trip.
    if (Stats) {
      ++Stats->MsgsReceived;
      ++Stats->RoundTrips;
    }
    return Error::success();
  case FrameStatus::NoFrame:
    return Error::failure("connection to nub is broken: no reply");
  case FrameStatus::Truncated:
    return Error::failure("truncated reply from nub");
  case FrameStatus::Oversized:
    return Error::failure("oversized reply from nub");
  }
  return Error::failure("unexpected frame state");
}

Error NubClient::expectAck() {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recv(Msg))
    return E;
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused: " + Reason);
  }
  return Error::failure("unexpected reply from nub");
}

namespace {

bool parseStop(MsgReader &Msg, StopInfo &Out) {
  if (Msg.kind() == MsgKind::Exited) {
    Out.Exited = true;
    return Msg.u32(Out.ExitStatus);
  }
  if (Msg.kind() != MsgKind::Stopped)
    return false;
  uint32_t Signo;
  if (!Msg.u32(Signo) || !Msg.u32(Out.Code) || !Msg.u32(Out.ContextAddr))
    return false;
  Out.Signo = static_cast<int32_t>(Signo);
  Out.Exited = false;
  return true;
}

} // namespace

Error NubClient::handshake() {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recv(Msg))
    return E;
  if (Msg.kind() != MsgKind::Welcome || !Msg.str(Arch))
    return Error::failure("nub did not send a welcome");
  // A stop or exit notification may already be queued (the nub announces
  // the current state of an already-stopped process at attach time).
  if (Chan->available() >= 5) {
    MsgReader Note(MsgKind::Ack, {});
    if (Error E = recv(Note))
      return E;
    StopInfo Info;
    if (parseStop(Note, Info))
      Pending = Info;
  }
  return Error::success();
}

Error NubClient::doContinue(StopInfo &Out) {
  Pending.reset();
  if (Error E = send(MsgWriter(MsgKind::Continue)))
    return E;
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recv(Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused to continue: " + Reason);
  }
  if (!parseStop(Msg, Out))
    return Error::failure("unexpected reply to continue");
  return Error::success();
}

Error NubClient::kill() {
  if (Error E = send(MsgWriter(MsgKind::Kill)))
    return E;
  return expectAck();
}

Error NubClient::detach() {
  if (Error E = send(MsgWriter(MsgKind::Detach)))
    return E;
  return expectAck();
}

Error NubClient::remoteFetchInt(char Space, uint32_t Addr, unsigned Size,
                                uint64_t &Value) {
  if (Error E = send(MsgWriter(MsgKind::FetchInt)
                         .u8(static_cast<uint8_t>(Space))
                         .u32(Addr)
                         .u8(static_cast<uint8_t>(Size))))
    return E;
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recv(Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("fetch failed: " + Reason);
  }
  if (Msg.kind() != MsgKind::FetchIntReply || !Msg.u64(Value))
    return Error::failure("unexpected reply to fetch");
  return Error::success();
}

Error NubClient::remoteStoreInt(char Space, uint32_t Addr, unsigned Size,
                                uint64_t Value) {
  if (Error E = send(MsgWriter(MsgKind::StoreInt)
                         .u8(static_cast<uint8_t>(Space))
                         .u32(Addr)
                         .u8(static_cast<uint8_t>(Size))
                         .u64(Value)))
    return E;
  return expectAck();
}

Error NubClient::remoteFetchFloat(char Space, uint32_t Addr, unsigned Size,
                                  long double &Value) {
  if (Error E = send(MsgWriter(MsgKind::FetchFloat)
                         .u8(static_cast<uint8_t>(Space))
                         .u32(Addr)
                         .u8(static_cast<uint8_t>(Size))))
    return E;
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recv(Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("fetch failed: " + Reason);
  }
  if (Msg.kind() != MsgKind::FetchFloatReply || !Msg.f80(Value))
    return Error::failure("unexpected reply to float fetch");
  return Error::success();
}

Error NubClient::remoteStoreFloat(char Space, uint32_t Addr, unsigned Size,
                                  long double Value) {
  if (Error E = send(MsgWriter(MsgKind::StoreFloat)
                         .u8(static_cast<uint8_t>(Space))
                         .u32(Addr)
                         .u8(static_cast<uint8_t>(Size))
                         .f80(Value)))
    return E;
  return expectAck();
}

Error NubClient::remoteFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                                  uint8_t *Out) {
  while (Len > 0) {
    uint32_t N = std::min(Len, MaxBlockLen);
    if (Error E = send(MsgWriter(MsgKind::FetchBlock)
                           .u8(static_cast<uint8_t>(Space))
                           .u32(Addr)
                           .u32(N)))
      return E;
    MsgReader Msg(MsgKind::Ack, {});
    if (Error E = recv(Msg))
      return E;
    if (Msg.kind() == MsgKind::Nak) {
      std::string Reason;
      Msg.str(Reason);
      return Error::failure("block fetch failed: " + Reason);
    }
    const uint8_t *Ptr;
    // A reply shorter than requested is an error, never a partial success:
    // a link that dies mid-block must not read as zeros.
    if (Msg.kind() != MsgKind::FetchBlockReply || Msg.remaining() != N ||
        !Msg.raw(N, Ptr))
      return Error::failure("unexpected reply to block fetch");
    std::copy_n(Ptr, N, Out);
    Addr += N;
    Out += N;
    Len -= N;
  }
  return Error::success();
}

Error NubClient::remoteStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                                  const uint8_t *Bytes) {
  while (Len > 0) {
    uint32_t N = std::min(Len, MaxBlockLen);
    if (Error E = send(MsgWriter(MsgKind::StoreBlock)
                           .u8(static_cast<uint8_t>(Space))
                           .u32(Addr)
                           .u32(N)
                           .raw(Bytes, N)))
      return E;
    if (Error E = expectAck())
      return E;
    Addr += N;
    Bytes += N;
    Len -= N;
  }
  return Error::success();
}
