//===- nub/client.cpp - debugger end of the nub protocol -----------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/client.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

using namespace ldb;
using namespace ldb::nub;

NubClient::NubClient(std::shared_ptr<ChannelEnd> End) : Chan(std::move(End)) {
  if (const char *W = std::getenv("LDB_WIRE_WINDOW")) {
    unsigned long N = std::strtoul(W, nullptr, 10);
    WindowMax = N ? static_cast<unsigned>(N) : 1;
  }
}

void NubClient::rawWrite(const std::vector<uint8_t> &Frame) {
  Chan->write(Frame.data(), Frame.size());
  if (Stats)
    ++Stats->MsgsSent;
}

void NubClient::countRequestSent(MsgKind Kind) {
  if (!Stats)
    return;
  switch (Kind) {
  case MsgKind::FetchBlock:
  case MsgKind::StoreBlock:
    ++Stats->BlockMsgsSent;
    break;
  case MsgKind::FetchInt:
  case MsgKind::StoreInt:
  case MsgKind::FetchFloat:
  case MsgKind::StoreFloat:
    ++Stats->WordMsgsSent;
    break;
  case MsgKind::SetCondition:
  case MsgKind::ClearCondition:
  case MsgKind::SetTracepoint:
  case MsgKind::SetCheckpointPolicy:
    ++Stats->CondMsgsSent;
    break;
  case MsgKind::DrainTrace:
    ++Stats->TraceDrains;
    break;
  default:
    break;
  }
}

void NubClient::countReplyFor(MsgKind ReqKind) {
  if (!Stats)
    return;
  switch (ReqKind) {
  case MsgKind::FetchBlock:
  case MsgKind::StoreBlock:
    ++Stats->BlockRepliesReceived;
    break;
  case MsgKind::FetchInt:
  case MsgKind::StoreInt:
  case MsgKind::FetchFloat:
  case MsgKind::StoreFloat:
    ++Stats->WordRepliesReceived;
    break;
  default:
    break;
  }
}

void NubClient::postFrame(MsgKind Kind, const MsgWriter &W, uint8_t *Out,
                          uint32_t Len, std::function<void(Error)> Done,
                          MsgReader *Capture) {
  Request R;
  R.Seq = NextSeq++;
  R.ReqKind = Kind;
  R.Frame = W.frame(R.Seq);
  R.Out = Out;
  R.Len = Len;
  R.Done = std::move(Done);
  R.Capture = Capture;
  R.DeadlineNs = Chan->nowNs() + TimeoutNs;
  countRequestSent(Kind);
  rawWrite(R.Frame);
  Outstanding.push_back(std::move(R));
  if (Stats && Outstanding.size() > Stats->MaxInFlight)
    Stats->MaxInFlight = Outstanding.size();
}

void NubClient::finish(Request &R, Error E) {
  if (R.Done)
    R.Done(std::move(E));
  else if (E && !DeferredErr)
    DeferredErr = std::move(E);
}

namespace {

/// Requests that may be replayed after a timeout without changing target
/// state. Continue/Kill/Detach are not: a lost *reply* means the nub
/// already acted, and acting twice is worse than a clean error.
bool idempotent(MsgKind Kind) {
  switch (Kind) {
  case MsgKind::FetchInt:
  case MsgKind::StoreInt:
  case MsgKind::FetchFloat:
  case MsgKind::StoreFloat:
  case MsgKind::FetchBlock:
  case MsgKind::StoreBlock:
  // Record management replays safely: re-setting a record replaces it
  // with identical contents, clearing twice is a no-op, and a re-drained
  // trace buffer just yields whatever records are left.
  case MsgKind::SetCondition:
  case MsgKind::ClearCondition:
  case MsgKind::SetTracepoint:
  case MsgKind::DrainTrace:
  // The checkpoint kinds are idempotent by design: re-enabling resets
  // the store onto the same keyframe, re-seeking restores the same
  // checkpoint, and a timeline query is a pure read.
  case MsgKind::SetCheckpointPolicy:
  case MsgKind::Seek:
  case MsgKind::TimelineQuery:
    return true;
  default:
    return false;
  }
}

} // namespace

void NubClient::retransmitOrFail(std::list<Request>::iterator It,
                                 const char *Why, bool SafeToRetry) {
  Request &R = *It;
  if (!SafeToRetry || R.Tries >= MaxTries) {
    Request Dead = std::move(R);
    Outstanding.erase(It);
    finish(Dead, Error::failure("no usable reply from nub after " +
                                std::to_string(Dead.Tries) + " attempts (" +
                                Why + ")"));
    return;
  }
  ++R.Tries;
  if (Stats)
    ++Stats->Retries;
  rawWrite(R.Frame);
  R.DeadlineNs = Chan->nowNs() + TimeoutNs;
}

void NubClient::handleReply(MsgReader Msg) {
  auto It = std::find_if(Outstanding.begin(), Outstanding.end(),
                         [&](const Request &R) { return R.Seq == Msg.seq(); });
  if (It == Outstanding.end()) {
    // A late duplicate (we already retried and completed this sequence
    // number) or a reply to nothing. Never match it to a later request.
    if (Stats)
      ++Stats->StaleReplies;
    return;
  }
  if (Msg.kind() == MsgKind::Corrupt) {
    // Our request arrived damaged; the nub could not act on it, so any
    // request — idempotent or not — is safe to resend.
    retransmitOrFail(It, "request garbled in flight", /*SafeToRetry=*/true);
    return;
  }
  Request R = std::move(*It);
  Outstanding.erase(It);
  if (Stats)
    ++Stats->RoundTrips;
  countReplyFor(R.ReqKind);
  if (R.Capture) {
    *R.Capture = std::move(Msg);
    finish(R, Error::success());
    return;
  }
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    finish(R, Error::failure((R.ReqKind == MsgKind::FetchBlock
                                  ? "block fetch failed: "
                                  : "nub refused: ") +
                             Reason));
    return;
  }
  if (R.ReqKind == MsgKind::FetchBlock) {
    const uint8_t *Ptr;
    // A reply shorter than requested is an error, never a partial success:
    // a link that dies mid-block must not read as zeros.
    if (Msg.kind() != MsgKind::FetchBlockReply || Msg.remaining() != R.Len ||
        !Msg.raw(R.Len, Ptr)) {
      finish(R, Error::failure("unexpected reply to block fetch"));
      return;
    }
    std::copy_n(Ptr, R.Len, R.Out);
    finish(R, Error::success());
    return;
  }
  if (Msg.kind() != MsgKind::Ack) {
    finish(R, Error::failure("unexpected reply to block store"));
    return;
  }
  finish(R, Error::success());
}

Error NubClient::failAll(Error E) {
  std::list<Request> Doomed = std::move(Outstanding);
  Outstanding.clear();
  std::vector<QueuedStore> DoomedStores = std::move(StoreQ);
  StoreQ.clear();
  for (Request &R : Doomed)
    finish(R, E);
  for (QueuedStore &S : DoomedStores)
    for (auto &Done : S.Dones)
      if (Done)
        Done(E);
      else if (!DeferredErr)
        DeferredErr = E;
  return E;
}

Error NubClient::stepProgress() {
  // First account for every whole frame already buffered.
  for (;;) {
    MsgReader Msg(MsgKind::Ack, {});
    FrameStatus St = readFrame(*Chan, Msg);
    if (St == FrameStatus::NoFrame)
      break;
    if (St == FrameStatus::Truncated)
      return failAll(Error::failure("truncated reply from nub"));
    if (St == FrameStatus::Oversized)
      return failAll(Error::failure("oversized reply from nub"));
    if (St == FrameStatus::Garbled) {
      // On a simulated link the damaged reply is simply lost: its request
      // times out and is retransmitted. A zero-latency local link has no
      // retransmission clock, so surface the damage immediately.
      if (!Chan->simulated())
        return failAll(Error::failure("garbled reply from nub"));
      continue;
    }
    if (Stats)
      ++Stats->MsgsReceived;
    handleReply(std::move(Msg));
  }
  if (Outstanding.empty())
    return Error::success();
  if (Chan->isBroken())
    return failAll(Error::failure("connection to nub is broken"));
  if (Chan->pump())
    return Error::success();
  if (!Chan->simulated())
    // On a local link every reply is already buffered by the time the
    // request returns; nothing left means nothing is coming.
    return failAll(Error::failure("connection to nub is broken: no reply"));
  // The simulated link is idle with requests outstanding: their frames
  // (or replies) were lost. Wait out the earliest deadline and retry.
  uint64_t Earliest = UINT64_MAX;
  for (const Request &R : Outstanding)
    Earliest = std::min(Earliest, R.DeadlineNs);
  if (Earliest > Chan->nowNs())
    Chan->advanceNs(Earliest - Chan->nowNs());
  uint64_t Now = Chan->nowNs();
  for (auto It = Outstanding.begin(); It != Outstanding.end();) {
    auto Cur = It++;
    if (Cur->DeadlineNs <= Now) {
      if (Stats)
        ++Stats->Timeouts;
      retransmitOrFail(Cur, "timed out", idempotent(Cur->ReqKind));
    }
  }
  return Error::success();
}

Error NubClient::enforceWindow() {
  while (Outstanding.size() >= WindowMax)
    if (Error E = stepProgress())
      return E;
  return Error::success();
}

Error NubClient::flushStores() {
  std::vector<QueuedStore> Q = std::move(StoreQ);
  StoreQ.clear();
  for (QueuedStore &S : Q) {
    if (Error E = enforceWindow()) {
      // enforceWindow already failed everything outstanding; these queued
      // stores were pulled out of StoreQ above, so fail them here too.
      for (QueuedStore &Rest : Q)
        for (auto &Done : Rest.Dones)
          if (Done)
            Done(E);
      return E;
    }
    auto Dones = std::make_shared<std::vector<std::function<void(Error)>>>(
        std::move(S.Dones));
    MsgWriter W(MsgKind::StoreBlock);
    W.u8(static_cast<uint8_t>(S.Space))
        .u32(S.Addr)
        .u32(static_cast<uint32_t>(S.Bytes.size()))
        .raw(S.Bytes.data(), S.Bytes.size());
    postFrame(MsgKind::StoreBlock, W, nullptr, 0,
              [Dones](Error E) {
                for (auto &Done : *Dones)
                  if (Done)
                    Done(E);
              },
              nullptr);
    S.Dones.clear();
  }
  return Error::success();
}

Error NubClient::awaitPosted() {
  if (Error E = flushStores())
    return E;
  while (!Outstanding.empty())
    if (Error E = stepProgress())
      return E;
  Error E = std::move(DeferredErr);
  DeferredErr = Error::success();
  return E;
}

void NubClient::postFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                               uint8_t *Out, std::function<void(Error)> Done) {
  if (WindowMax <= 1) {
    Error E = remoteFetchBlock(Space, Addr, Len, Out);
    if (Done)
      Done(std::move(E));
    else if (E && !DeferredErr)
      DeferredErr = std::move(E);
    return;
  }
  // Stores queued earlier must reach the nub before this fetch reads.
  if (Error E = flushStores()) {
    if (Done)
      Done(std::move(E));
    return;
  }
  // A request larger than one frame becomes several outstanding requests
  // sharing the completion: first failure wins.
  unsigned Parts = (Len + MaxBlockLen - 1) / MaxBlockLen;
  if (Parts == 0)
    Parts = 1;
  struct Shared {
    unsigned Left;
    Error First = Error::success();
    std::function<void(Error)> Done;
  };
  auto S = std::make_shared<Shared>();
  S->Left = Parts;
  S->Done = std::move(Done);
  auto PartDone = [S](Error E) {
    if (E && !S->First)
      S->First = std::move(E);
    if (--S->Left == 0) {
      if (S->Done)
        S->Done(std::move(S->First));
    }
  };
  while (true) {
    uint32_t N = std::min(Len, MaxBlockLen);
    if (Error E = enforceWindow()) {
      PartDone(E);
      // Remaining parts were never posted; settle them immediately.
      while (Len > N) {
        Len -= std::min(Len - N, MaxBlockLen);
        PartDone(Error::success());
      }
      return;
    }
    if (Stats)
      ++Stats->Posted;
    postFrame(MsgKind::FetchBlock,
              MsgWriter(MsgKind::FetchBlock)
                  .u8(static_cast<uint8_t>(Space))
                  .u32(Addr)
                  .u32(N),
              Out, N, PartDone, nullptr);
    if (Len <= N)
      return;
    Addr += N;
    Out += N;
    Len -= N;
  }
}

void NubClient::postStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                               const uint8_t *Bytes,
                               std::function<void(Error)> Done) {
  if (WindowMax <= 1) {
    Error E = remoteStoreBlock(Space, Addr, Len, Bytes);
    if (Done)
      Done(std::move(E));
    else if (E && !DeferredErr)
      DeferredErr = std::move(E);
    return;
  }
  // Try to extend a queued contiguous neighbour: one frame instead of two.
  for (QueuedStore &S : StoreQ) {
    if (S.Space == Space && S.Addr + S.Bytes.size() == Addr &&
        S.Bytes.size() + Len <= MaxBlockLen) {
      S.Bytes.insert(S.Bytes.end(), Bytes, Bytes + Len);
      S.Dones.push_back(std::move(Done));
      if (Stats)
        ++Stats->StoresCombined;
      return;
    }
  }
  while (Len > 0) {
    uint32_t N = std::min(Len, MaxBlockLen);
    QueuedStore S;
    S.Space = Space;
    S.Addr = Addr;
    S.Bytes.assign(Bytes, Bytes + N);
    if (Len <= N)
      S.Dones.push_back(std::move(Done));
    S.Dones.shrink_to_fit();
    if (Stats)
      ++Stats->Posted;
    StoreQ.push_back(std::move(S));
    Addr += N;
    Bytes += N;
    Len -= N;
  }
}

Error NubClient::transact(MsgKind Kind, const MsgWriter &W, MsgReader &Out) {
  // Queued stores precede every synchronous exchange so the nub sees a
  // consistent order.
  if (Error E = flushStores())
    return E;
  bool Flag = false;
  Error Result = Error::success();
  postFrame(Kind, W, nullptr, 0,
            [&Flag, &Result](Error E) {
              Flag = true;
              Result = std::move(E);
            },
            &Out);
  while (!Flag)
    if (Error E = stepProgress())
      return E;
  return Result;
}

Error NubClient::recvBlocking(MsgReader &Out) {
  for (;;) {
    switch (readFrame(*Chan, Out)) {
    case FrameStatus::Ok:
      if (Stats) {
        ++Stats->MsgsReceived;
        ++Stats->RoundTrips;
      }
      return Error::success();
    case FrameStatus::NoFrame:
      if (Chan->pump())
        continue;
      return Error::failure("connection to nub is broken: no reply");
    case FrameStatus::Truncated:
      return Error::failure("truncated reply from nub");
    case FrameStatus::Oversized:
      return Error::failure("oversized reply from nub");
    case FrameStatus::Garbled:
      return Error::failure("garbled reply from nub");
    }
  }
}

namespace {

/// Parses the optional counter tail at the reader's position. A missing
/// tail (tests, older nubs) reads as host-decides with no sync; a damaged
/// one is dropped whole, never half-applied.
void parseCounterTail(MsgReader &Msg, StopInfo &Out) {
  Out.Decision = StopHostDecides;
  Out.NubCondEvals = 0;
  Out.NubLocalResumes = 0;
  Out.Counters.clear();
  Out.HasIcount = false;
  Out.Icount = 0;
  if (Msg.atEnd())
    return;
  uint8_t Decision = StopHostDecides;
  uint32_t Evals = 0, Resumes = 0, Entries = 0;
  if (!Msg.u8(Decision) || !Msg.u32(Evals) || !Msg.u32(Resumes) ||
      !Msg.u32(Entries))
    return; // damaged tail: keep the stop, drop the sync
  std::vector<CounterSync> Counters;
  for (uint32_t K = 0; K < Entries; ++K) {
    CounterSync C;
    if (!Msg.u32(C.Id) || !Msg.u32(C.Hits) || !Msg.u32(C.Ignore))
      return; // damaged tail: keep the stop, drop the sync
    Counters.push_back(C);
  }
  Out.Decision = Decision;
  Out.NubCondEvals = Evals;
  Out.NubLocalResumes = Resumes;
  Out.Counters = std::move(Counters);
  // A recording-aware nub appends the stop's retired-instruction count;
  // an older tail just ends here.
  uint64_t Icount = 0;
  if (Msg.remaining() >= 8 && Msg.u64(Icount)) {
    Out.HasIcount = true;
    Out.Icount = Icount;
  }
}

bool parseStop(MsgReader &Msg, StopInfo &Out) {
  if (Msg.kind() == MsgKind::Exited) {
    Out.Exited = true;
    if (!Msg.u32(Out.ExitStatus))
      return false;
    // Exited carries the counter tail too: hits the nub counted between
    // the last real stop and the exit would otherwise be lost.
    parseCounterTail(Msg, Out);
    return true;
  }
  if (Msg.kind() != MsgKind::Stopped)
    return false;
  uint32_t Signo, WinLen;
  if (!Msg.u32(Signo) || !Msg.u32(Out.Code) || !Msg.u32(Out.ContextAddr) ||
      !Msg.u32(Out.Pc) || !Msg.u32(Out.Sp) || !Msg.u32(Out.CtxWinLo) ||
      !Msg.u32(WinLen))
    return false;
  const uint8_t *Win;
  // The window is read by its declared length; a counter tail (if any)
  // follows it. A declared window the payload cannot cover is treated as
  // absent, never as a short read.
  if (WinLen && Msg.remaining() >= WinLen && Msg.raw(WinLen, Win))
    Out.CtxWin.assign(Win, Win + WinLen);
  else
    Out.CtxWin.clear();
  Out.Signo = static_cast<int32_t>(Signo);
  Out.Exited = false;
  parseCounterTail(Msg, Out);
  return true;
}

} // namespace

Error NubClient::handshake() {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = recvBlocking(Msg))
    return E;
  if (Msg.kind() != MsgKind::Welcome || !Msg.str(Arch))
    return Error::failure("nub did not send a welcome");
  // A stop or exit notification may already be queued (the nub announces
  // the current state of an already-stopped process at attach time); on a
  // simulated link it may still be in flight right behind the Welcome.
  while (Chan->available() < FrameHeaderSize && Chan->pump()) {
  }
  if (Chan->available() >= FrameHeaderSize) {
    MsgReader Note(MsgKind::Ack, {});
    if (Error E = recvBlocking(Note))
      return E;
    StopInfo Info;
    if (parseStop(Note, Info))
      Pending = Info;
  }
  return Error::success();
}

Error NubClient::doContinue(StopInfo &Out, uint8_t Mode) {
  Pending.reset();
  // Flush the store queue first, but do not await it: the stores and the
  // Continue ride the window together, and the link delivers in order.
  if (Error E = flushStores())
    return E;
  MsgWriter W(MsgKind::Continue);
  // The mode byte is appended only when it says something: a ReportAll
  // Continue is byte-identical to what pre-condition clients sent.
  if (Mode != ContinueReportAll)
    W.u8(Mode);
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::Continue, W, Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused to continue: " + Reason);
  }
  if (!parseStop(Msg, Out))
    return Error::failure("unexpected reply to continue");
  // The stores that rode with the Continue were acknowledged before the
  // Stopped reply (the link delivers in order): surface a failure now
  // rather than from some later await.
  return std::exchange(DeferredErr, Error::success());
}

namespace {

/// Shared Ack/Nak postlude for the record-management requests.
Error expectAck(MsgReader &Msg, const char *What) {
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure(std::string("nub refused ") + What + ": " + Reason);
  }
  return Error::failure(std::string("unexpected reply to ") + What);
}

} // namespace

Error NubClient::setCondition(const CondRecordSpec &Spec) {
  MsgWriter W(MsgKind::SetCondition);
  W.u32(Spec.Id)
      .u32(Spec.PcAdvance)
      .u32(Spec.VfpReg)
      .u32(Spec.Hits)
      .u32(Spec.Ignore)
      .u32(static_cast<uint32_t>(Spec.Bytecode.size()));
  if (!Spec.Bytecode.empty())
    W.raw(Spec.Bytecode.data(), Spec.Bytecode.size());
  W.u32(static_cast<uint32_t>(Spec.Sites.size()));
  for (const auto &S : Spec.Sites)
    W.u32(S.first).u32(S.second);
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::SetCondition, W, Msg))
    return E;
  return expectAck(Msg, "condition record");
}

Error NubClient::setTracepoint(const TraceRecordSpec &Spec) {
  MsgWriter W(MsgKind::SetTracepoint);
  W.u32(Spec.Id)
      .u32(Spec.PcAdvance)
      .u32(Spec.VfpReg)
      .u32(Spec.RegMask)
      .u8(static_cast<uint8_t>(Spec.Exprs.size()));
  for (const std::vector<uint8_t> &Bc : Spec.Exprs) {
    W.u32(static_cast<uint32_t>(Bc.size()));
    if (!Bc.empty())
      W.raw(Bc.data(), Bc.size());
  }
  W.u32(static_cast<uint32_t>(Spec.Sites.size()));
  for (const auto &S : Spec.Sites)
    W.u32(S.first).u32(S.second);
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::SetTracepoint, W, Msg))
    return E;
  return expectAck(Msg, "tracepoint record");
}

Error NubClient::clearCondition(bool Tracepoint, uint32_t Id) {
  MsgWriter W(MsgKind::ClearCondition);
  W.u8(Tracepoint ? 1 : 0).u32(Id);
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::ClearCondition, W, Msg))
    return E;
  return expectAck(Msg, "record clear");
}

Error NubClient::drainTrace(TraceDrain &Out) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::DrainTrace,
                         MsgWriter(MsgKind::DrainTrace).u32(MaxBlockLen), Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused trace drain: " + Reason);
  }
  uint32_t Count = 0;
  if (Msg.kind() != MsgKind::TraceReply || !Msg.u32(Out.Dropped) ||
      !Msg.u32(Out.Remaining) || !Msg.u32(Count))
    return Error::failure("unexpected reply to trace drain");
  size_t RecordBytes = Msg.remaining();
  const uint8_t *Raw = nullptr;
  if (RecordBytes > 0 && !Msg.raw(RecordBytes, Raw))
    return Error::failure("unexpected reply to trace drain");
  size_t Pos = 0;
  Out.Records.clear();
  for (uint32_t K = 0; K < Count; ++K) {
    condbc::TraceRecord R;
    if (!condbc::parseRecord(Raw, RecordBytes, Pos, R))
      return Error::failure("damaged trace record in drain reply");
    Out.Records.push_back(std::move(R));
  }
  if (Stats) {
    Stats->TraceRecords += Out.Records.size();
    Stats->TraceDrainBytes += RecordBytes;
  }
  return Error::success();
}

Error NubClient::setCheckpointPolicy(bool Enable, uint64_t Spacing,
                                     uint32_t KeyInterval, uint64_t Budget) {
  MsgWriter W(MsgKind::SetCheckpointPolicy);
  W.u8(Enable ? 1 : 0).u64(Spacing).u32(KeyInterval).u64(Budget);
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::SetCheckpointPolicy, W, Msg))
    return E;
  return expectAck(Msg, "checkpoint policy");
}

Error NubClient::seek(uint64_t Target, StopInfo &Out) {
  Pending.reset();
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E =
          transact(MsgKind::Seek, MsgWriter(MsgKind::Seek).u64(Target), Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused seek: " + Reason);
  }
  if (!parseStop(Msg, Out))
    return Error::failure("unexpected reply to seek");
  return Error::success();
}

Error NubClient::queryTimeline(TimelineInfo &Out) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::TimelineQuery,
                         MsgWriter(MsgKind::TimelineQuery), Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused timeline query: " + Reason);
  }
  uint8_t Enabled = 0;
  if (Msg.kind() != MsgKind::TimelineReply || !Msg.u8(Enabled) ||
      !Msg.u64(Out.CurIcount) || !Msg.u64(Out.MaxIcount) ||
      !Msg.u64(Out.OldestRestorable) || !Msg.u32(Out.Checkpoints) ||
      !Msg.u32(Out.Keyframes) || !Msg.u64(Out.Bytes) || !Msg.u64(Out.Spacing) ||
      !Msg.u32(Out.KeyInterval) || !Msg.u32(Out.Evictions) ||
      !Msg.u32(Out.Restores) || !Msg.u64(Out.PagesSaved) ||
      !Msg.u64(Out.PagesClean) || !Msg.u64(Out.ReplayedInstrs))
    return Error::failure("unexpected reply to timeline query");
  Out.Enabled = Enabled != 0;
  return Error::success();
}

Error NubClient::kill() {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::Kill, MsgWriter(MsgKind::Kill), Msg))
    return E;
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused: " + Reason);
  }
  return Error::failure("unexpected reply from nub");
}

Error NubClient::detach() {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::Detach, MsgWriter(MsgKind::Detach), Msg))
    return E;
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused: " + Reason);
  }
  return Error::failure("unexpected reply from nub");
}

Error NubClient::remoteFetchInt(char Space, uint32_t Addr, unsigned Size,
                                uint64_t &Value) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::FetchInt,
                         MsgWriter(MsgKind::FetchInt)
                             .u8(static_cast<uint8_t>(Space))
                             .u32(Addr)
                             .u8(static_cast<uint8_t>(Size)),
                         Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("fetch failed: " + Reason);
  }
  if (Msg.kind() != MsgKind::FetchIntReply || !Msg.u64(Value))
    return Error::failure("unexpected reply to fetch");
  return Error::success();
}

Error NubClient::remoteStoreInt(char Space, uint32_t Addr, unsigned Size,
                                uint64_t Value) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::StoreInt,
                         MsgWriter(MsgKind::StoreInt)
                             .u8(static_cast<uint8_t>(Space))
                             .u32(Addr)
                             .u8(static_cast<uint8_t>(Size))
                             .u64(Value),
                         Msg))
    return E;
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused: " + Reason);
  }
  return Error::failure("unexpected reply from nub");
}

Error NubClient::remoteFetchFloat(char Space, uint32_t Addr, unsigned Size,
                                  long double &Value) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::FetchFloat,
                         MsgWriter(MsgKind::FetchFloat)
                             .u8(static_cast<uint8_t>(Space))
                             .u32(Addr)
                             .u8(static_cast<uint8_t>(Size)),
                         Msg))
    return E;
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("fetch failed: " + Reason);
  }
  if (Msg.kind() != MsgKind::FetchFloatReply || !Msg.f80(Value))
    return Error::failure("unexpected reply to float fetch");
  return Error::success();
}

Error NubClient::remoteStoreFloat(char Space, uint32_t Addr, unsigned Size,
                                  long double Value) {
  MsgReader Msg(MsgKind::Ack, {});
  if (Error E = transact(MsgKind::StoreFloat,
                         MsgWriter(MsgKind::StoreFloat)
                             .u8(static_cast<uint8_t>(Space))
                             .u32(Addr)
                             .u8(static_cast<uint8_t>(Size))
                             .f80(Value),
                         Msg))
    return E;
  if (Msg.kind() == MsgKind::Ack)
    return Error::success();
  if (Msg.kind() == MsgKind::Nak) {
    std::string Reason;
    Msg.str(Reason);
    return Error::failure("nub refused: " + Reason);
  }
  return Error::failure("unexpected reply from nub");
}

Error NubClient::remoteFetchBlock(char Space, uint32_t Addr, uint32_t Len,
                                  uint8_t *Out) {
  while (Len > 0) {
    uint32_t N = std::min(Len, MaxBlockLen);
    MsgReader Msg(MsgKind::Ack, {});
    if (Error E = transact(MsgKind::FetchBlock,
                           MsgWriter(MsgKind::FetchBlock)
                               .u8(static_cast<uint8_t>(Space))
                               .u32(Addr)
                               .u32(N),
                           Msg))
      return E;
    if (Msg.kind() == MsgKind::Nak) {
      std::string Reason;
      Msg.str(Reason);
      return Error::failure("block fetch failed: " + Reason);
    }
    const uint8_t *Ptr;
    // A reply shorter than requested is an error, never a partial success:
    // a link that dies mid-block must not read as zeros.
    if (Msg.kind() != MsgKind::FetchBlockReply || Msg.remaining() != N ||
        !Msg.raw(N, Ptr))
      return Error::failure("unexpected reply to block fetch");
    std::copy_n(Ptr, N, Out);
    Addr += N;
    Out += N;
    Len -= N;
  }
  return Error::success();
}

Error NubClient::remoteStoreBlock(char Space, uint32_t Addr, uint32_t Len,
                                  const uint8_t *Bytes) {
  while (Len > 0) {
    uint32_t N = std::min(Len, MaxBlockLen);
    MsgReader Msg(MsgKind::Ack, {});
    if (Error E = transact(MsgKind::StoreBlock,
                           MsgWriter(MsgKind::StoreBlock)
                               .u8(static_cast<uint8_t>(Space))
                               .u32(Addr)
                               .u32(N)
                               .raw(Bytes, N),
                           Msg))
      return E;
    if (Msg.kind() == MsgKind::Nak) {
      std::string Reason;
      Msg.str(Reason);
      return Error::failure("nub refused: " + Reason);
    }
    if (Msg.kind() != MsgKind::Ack)
      return Error::failure("unexpected reply from nub");
    Addr += N;
    Bytes += N;
    Len -= N;
  }
  return Error::success();
}
