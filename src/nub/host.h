//===- nub/host.h - process rendezvous --------------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rendezvous between debuggers and target processes — the simulated
/// analogue of connecting to a waiting nub over the network (paper Sec
/// 4.2). Processes register under a name; any number of sequential
/// connections may be made to the same process (a new connection after a
/// debugger crash reattaches to the preserved state). ldb can hold
/// connections to several processes at once, on different architectures.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_NUB_HOST_H
#define LDB_NUB_HOST_H

#include "nub/client.h"
#include "nub/nub.h"

#include <map>
#include <memory>
#include <string>

namespace ldb::nub {

class ProcessHost {
public:
  /// Creates a process named \p Name for \p Desc. The name plays the role
  /// of host:port.
  NubProcess &createProcess(const std::string &Name,
                            const target::TargetDesc &Desc,
                            uint32_t MemBytes = 1u << 20);

  /// Connects a new debugger to the named process: builds a channel pair,
  /// attaches the nub end, and performs the client handshake. If \p Stats
  /// is given it is attached before the handshake, so the counters see
  /// every byte of the connection's life. The link is a zero-latency
  /// LocalLink unless \p Sim is given (or LDB_SIM_LATENCY_US and friends
  /// are set in the environment), in which case a latency-modeling
  /// SimLink substitutes — same protocol, same nub, slower wire. \p Clock
  /// (SimLink only) joins the connection to a shared virtual clock so a
  /// fleet of sessions advances one timeline.
  Expected<std::unique_ptr<NubClient>>
  connect(const std::string &Name, mem::TransportStats *Stats = nullptr,
          const SimParams *Sim = nullptr,
          std::shared_ptr<VirtualClock> Clock = nullptr);

  NubProcess *find(const std::string &Name);

  /// Removes an exited process.
  void reap(const std::string &Name);

private:
  std::map<std::string, std::unique_ptr<NubProcess>> Processes;
};

} // namespace ldb::nub

#endif // LDB_NUB_HOST_H
