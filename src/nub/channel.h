//===- nub/channel.h - duplex byte channels ---------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream connection between ldb and a nub. The original used
/// UNIX sockets; the simulated equivalents are deterministic in-process
/// duplex links with the same observable semantics: ordered bytes, two
/// independent directions, and an explicit broken state (so debugger-crash
/// recovery is testable). The nub side registers a readable-callback and
/// services requests as they arrive, exactly like a socket event loop.
///
/// Two link flavors share the ChannelEnd interface. LocalLink delivers
/// writes instantly (the zero-latency wire every test rides). SimLink
/// models a real link: each write() is one message that spends a
/// configurable latency (plus seeded jitter and a bandwidth-proportional
/// serialization time) in flight on a virtual clock, and can be dropped
/// or garbled for fault-injection. Nothing moves until pump() delivers
/// the next in-flight message, so a single-threaded caller controls time
/// explicitly and every run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_NUB_CHANNEL_H
#define LDB_NUB_CHANNEL_H

#include "mem/stats.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <vector>

namespace ldb::nub {

/// One endpoint of a duplex link.
class ChannelEnd {
public:
  virtual ~ChannelEnd() = default;

  /// Sends one message to the peer. On a LocalLink the bytes land in the
  /// peer's inbox and its readable callback fires before write() returns;
  /// on a SimLink they enter the in-flight queue until pump() delivers
  /// them. Writing on a broken channel silently drops the bytes, like
  /// writing to a closed socket with SIGPIPE ignored.
  virtual void write(const uint8_t *Bytes, size_t Size) = 0;

  /// Reads exactly \p Size bytes; returns false if fewer are available or
  /// the channel is broken and drained.
  virtual bool read(uint8_t *Out, size_t Size) = 0;

  virtual size_t available() const = 0;

  /// Called after bytes arrive for this endpoint.
  virtual void setReadable(std::function<void()> Fn) = 0;

  /// Breaks the connection (debugger crash / detach at the transport
  /// level). Both ends observe it; in-flight messages are lost.
  virtual void breakLink() = 0;

  virtual bool isBroken() const = 0;

  /// Counts bytes this endpoint puts on and takes off the wire (the
  /// transport-instrumentation hook; per endpoint, may be null).
  virtual void setStats(mem::TransportStats *S) = 0;

  /// True when this link models latency: pump() and advanceNs() drive a
  /// virtual clock and a request may legitimately be answered later.
  virtual bool simulated() const { return false; }

  /// Delivers the next in-flight message (advancing the virtual clock to
  /// its arrival and firing the receiving end's readable callback).
  /// Returns false when nothing is in flight — on a LocalLink, always.
  virtual bool pump() { return false; }

  /// Virtual time, in nanoseconds since the link was made.
  virtual uint64_t nowNs() const { return 0; }

  /// Advances the virtual clock with the link idle — how a caller waits
  /// out a timeout when pump() has nothing to deliver.
  virtual void advanceNs(uint64_t Ns) { (void)Ns; }

  /// The virtual arrival time of the earliest in-flight message on this
  /// link (either direction), or nullopt when nothing is in flight — how
  /// a multi-link event loop decides which link to pump next. A LocalLink
  /// never has anything in flight.
  virtual std::optional<uint64_t> nextArrivalNs() const {
    return std::nullopt;
  }
};

/// The virtual clock a SimLink runs on. Normally each link owns its own;
/// a fleet of links driven by one event loop shares a single instance, so
/// time advances consistently across every session (a message delivered
/// on one link moves "now" for all of them).
struct VirtualClock {
  uint64_t NowNs = 0;
};

/// A set of channel endpoints driven as one event loop: whichever link
/// holds the globally earliest in-flight message is pumped next, so N
/// simulated sessions interleave in virtual-arrival order on a single
/// thread — no thread-per-session. Endpoints are borrowed, not owned;
/// remove one before its channel dies.
class LinkSet {
public:
  void add(ChannelEnd *End);
  void remove(const ChannelEnd *End);
  size_t size() const { return Ends.size(); }

  /// Delivers the earliest in-flight message across every registered
  /// link; false when nothing is in flight anywhere.
  bool pumpNext();

  /// Drains every in-flight message; returns how many were delivered.
  size_t pumpAll();

private:
  std::vector<ChannelEnd *> Ends;
};

/// A zero-latency bidirectional in-process link with two endpoints, A and B.
class LocalLink {
public:
  /// Creates a connected pair of endpoints.
  static std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
  makePair();

private:
  friend class LocalEnd;
  std::deque<uint8_t> ToA, ToB;
  std::function<void()> AReadable, BReadable;
  bool Broken = false;
  unsigned TraceId = 0; ///< wire-trace link ordinal; 0 = not recording
};

/// One endpoint of a LocalLink.
class LocalEnd : public ChannelEnd {
public:
  LocalEnd(std::shared_ptr<LocalLink> Link, bool IsA)
      : Link(std::move(Link)), IsA(IsA) {}

  void write(const uint8_t *Bytes, size_t Size) override;
  bool read(uint8_t *Out, size_t Size) override;
  size_t available() const override;
  void setReadable(std::function<void()> Fn) override;
  void breakLink() override;
  bool isBroken() const override { return Link->Broken; }
  void setStats(mem::TransportStats *S) override { Stats = S; }

private:
  std::deque<uint8_t> &inbox() const { return IsA ? Link->ToA : Link->ToB; }
  std::deque<uint8_t> &outbox() const { return IsA ? Link->ToB : Link->ToA; }

  std::shared_ptr<LocalLink> Link;
  bool IsA;
  mem::TransportStats *Stats = nullptr;
};

/// Tuning for a SimLink. All times are virtual nanoseconds.
struct SimParams {
  uint64_t LatencyNs = 0;    ///< one-way propagation delay per message
  uint64_t BytesPerSec = 0;  ///< serialization rate; 0 = infinite
  uint64_t JitterNs = 0;     ///< uniform [0, JitterNs] added per message
  uint64_t Seed = 1;         ///< jitter PRNG seed
  uint64_t DropEvery = 0;    ///< lose every Nth message; 0 = never
  uint64_t GarbleEvery = 0;  ///< flip a byte in every Nth message; 0 = never

  /// Builds params from LDB_SIM_LATENCY_US / LDB_SIM_JITTER_US /
  /// LDB_SIM_BW_MBPS / LDB_SIM_SEED, or nullopt when none are set.
  static std::optional<SimParams> fromEnv();
};

/// A latency-modeling link on a virtual clock. Messages written on either
/// end queue in flight and arrive, per direction, in FIFO order at
/// max(lastArrival, now + latency + jitter) + size/bandwidth. Delivery
/// happens only inside pump(), which the debugger side calls while
/// awaiting replies — the nub's readable callback then runs at the
/// message's (virtual) arrival time, exactly like its event loop waking.
class SimLink {
public:
  /// Creates a connected pair. With \p Clock the link joins a shared
  /// virtual clock (the fleet event loop pumps many links from one);
  /// without, it runs its own.
  static std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
  makePair(const SimParams &Params,
           std::shared_ptr<VirtualClock> Clock = nullptr);

private:
  friend class SimEnd;
  struct Flight {
    uint64_t ArriveNs;
    std::vector<uint8_t> Bytes;
  };

  SimLink(const SimParams &Params, std::shared_ptr<VirtualClock> Clock)
      : P(Params), Clock(Clock ? std::move(Clock)
                               : std::make_shared<VirtualClock>()),
        Rng(Params.Seed) {}

  uint64_t nowNs() const { return Clock->NowNs; }
  std::optional<uint64_t> nextArrival() const;

  /// Queues one message toward A or B, applying jitter, bandwidth, and
  /// fault injection. \p Stats is the sending end's counter block.
  void transmit(bool TowardA, const uint8_t *Bytes, size_t Size,
                mem::TransportStats *Stats);
  bool pump();

  SimParams P;
  std::shared_ptr<VirtualClock> Clock;
  std::deque<Flight> FlightToA, FlightToB;
  std::deque<uint8_t> InA, InB;
  std::function<void()> AReadable, BReadable;
  uint64_t LastArriveA = 0, LastArriveB = 0;
  uint64_t Sent = 0; ///< messages offered, for the fault-injection cadence
  std::mt19937_64 Rng;
  bool Broken = false;
  unsigned TraceId = 0; ///< wire-trace link ordinal; 0 = not recording
};

/// One endpoint of a SimLink.
class SimEnd : public ChannelEnd {
public:
  SimEnd(std::shared_ptr<SimLink> Link, bool IsA)
      : Link(std::move(Link)), IsA(IsA) {}

  void write(const uint8_t *Bytes, size_t Size) override;
  bool read(uint8_t *Out, size_t Size) override;
  size_t available() const override;
  void setReadable(std::function<void()> Fn) override;
  void breakLink() override;
  bool isBroken() const override { return Link->Broken; }
  void setStats(mem::TransportStats *S) override { Stats = S; }

  bool simulated() const override { return true; }
  bool pump() override { return Link->pump(); }
  uint64_t nowNs() const override { return Link->nowNs(); }
  void advanceNs(uint64_t Ns) override { Link->Clock->NowNs += Ns; }
  std::optional<uint64_t> nextArrivalNs() const override {
    return Link->nextArrival();
  }

private:
  std::deque<uint8_t> &inbox() const { return IsA ? Link->InA : Link->InB; }

  std::shared_ptr<SimLink> Link;
  bool IsA;
  mem::TransportStats *Stats = nullptr;
};

} // namespace ldb::nub

#endif // LDB_NUB_CHANNEL_H
