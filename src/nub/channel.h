//===- nub/channel.h - duplex byte channels ---------------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-stream connection between ldb and a nub. The original used
/// UNIX sockets; the simulated equivalent is a deterministic in-process
/// duplex link with the same observable semantics: ordered bytes, two
/// independent directions, and an explicit broken state (so debugger-crash
/// recovery is testable). The nub side registers a readable-callback and
/// services requests as they arrive, exactly like a socket event loop.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_NUB_CHANNEL_H
#define LDB_NUB_CHANNEL_H

#include "mem/stats.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

namespace ldb::nub {

class ChannelEnd;

/// A bidirectional in-process link with two endpoints, A and B.
class LocalLink {
public:
  /// Creates a connected pair of endpoints.
  static std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
  makePair();

private:
  friend class ChannelEnd;
  std::deque<uint8_t> ToA, ToB;
  std::function<void()> AReadable, BReadable;
  bool Broken = false;
};

/// One endpoint of a link.
class ChannelEnd {
public:
  ChannelEnd(std::shared_ptr<LocalLink> Link, bool IsA)
      : Link(std::move(Link)), IsA(IsA) {}

  /// Appends bytes for the peer and synchronously invokes the peer's
  /// readable callback (the simulated analogue of the peer's event loop
  /// waking up). Writing on a broken channel silently drops the bytes,
  /// like writing to a closed socket with SIGPIPE ignored.
  void write(const uint8_t *Bytes, size_t Size);

  /// Reads exactly \p Size bytes; returns false if fewer are available or
  /// the channel is broken and drained.
  bool read(uint8_t *Out, size_t Size);

  size_t available() const;

  /// Called after bytes arrive for this endpoint.
  void setReadable(std::function<void()> Fn);

  /// Breaks the connection (debugger crash / detach at the transport
  /// level). Both ends observe it.
  void breakLink();

  bool isBroken() const { return Link->Broken; }

  /// Counts bytes this endpoint puts on and takes off the wire (the
  /// transport-instrumentation hook; per endpoint, may be null).
  void setStats(mem::TransportStats *S) { Stats = S; }

private:
  std::deque<uint8_t> &inbox() const { return IsA ? Link->ToA : Link->ToB; }
  std::deque<uint8_t> &outbox() const { return IsA ? Link->ToB : Link->ToA; }

  std::shared_ptr<LocalLink> Link;
  bool IsA;
  mem::TransportStats *Stats = nullptr;
};

} // namespace ldb::nub

#endif // LDB_NUB_CHANNEL_H
