//===- nub/channel.cpp - duplex byte channels -----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/channel.h"

#include "nub/protocol.h"
#include "nub/wiretrace.h"

#include <algorithm>
#include <cstdlib>

using namespace ldb::nub;

std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
LocalLink::makePair() {
  auto Link = std::make_shared<LocalLink>();
  Link->TraceId = WireTrace::global().registerLink();
  auto A = std::make_shared<LocalEnd>(Link, /*IsA=*/true);
  auto B = std::make_shared<LocalEnd>(Link, /*IsA=*/false);
  return {A, B};
}

void LocalEnd::write(const uint8_t *Bytes, size_t Size) {
  if (Link->Broken)
    return;
  if (Link->TraceId)
    WireTrace::global().record(Link->TraceId, IsA ? 'a' : 'b', 'F', Bytes,
                               Size, /*TNs=*/0);
  if (Stats)
    Stats->BytesSent += Size;
  std::deque<uint8_t> &Out = outbox();
  Out.insert(Out.end(), Bytes, Bytes + Size);
  // Wake the peer. The callback may itself write back to us; that nests
  // safely because each direction has its own queue.
  std::function<void()> &Peer = IsA ? Link->BReadable : Link->AReadable;
  if (Peer)
    Peer();
}

bool LocalEnd::read(uint8_t *Out, size_t Size) {
  std::deque<uint8_t> &In = inbox();
  if (In.size() < Size)
    return false;
  for (size_t K = 0; K < Size; ++K) {
    Out[K] = In.front();
    In.pop_front();
  }
  if (Stats)
    Stats->BytesReceived += Size;
  return true;
}

size_t LocalEnd::available() const { return inbox().size(); }

void LocalEnd::setReadable(std::function<void()> Fn) {
  (IsA ? Link->AReadable : Link->BReadable) = std::move(Fn);
}

void LocalEnd::breakLink() {
  Link->Broken = true;
  Link->AReadable = nullptr;
  Link->BReadable = nullptr;
}

std::optional<SimParams> SimParams::fromEnv() {
  const char *Latency = std::getenv("LDB_SIM_LATENCY_US");
  const char *Jitter = std::getenv("LDB_SIM_JITTER_US");
  const char *Bw = std::getenv("LDB_SIM_BW_MBPS");
  const char *Seed = std::getenv("LDB_SIM_SEED");
  if (!Latency && !Jitter && !Bw)
    return std::nullopt;
  SimParams P;
  if (Latency)
    P.LatencyNs = std::strtoull(Latency, nullptr, 10) * 1000;
  if (Jitter)
    P.JitterNs = std::strtoull(Jitter, nullptr, 10) * 1000;
  if (Bw)
    P.BytesPerSec = std::strtoull(Bw, nullptr, 10) * 1000000;
  if (Seed)
    P.Seed = std::strtoull(Seed, nullptr, 10);
  return P;
}

std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
SimLink::makePair(const SimParams &Params,
                  std::shared_ptr<VirtualClock> Clock) {
  auto Link =
      std::shared_ptr<SimLink>(new SimLink(Params, std::move(Clock)));
  Link->TraceId = WireTrace::global().registerLink();
  auto A = std::make_shared<SimEnd>(Link, /*IsA=*/true);
  auto B = std::make_shared<SimEnd>(Link, /*IsA=*/false);
  return {A, B};
}

void SimLink::transmit(bool TowardA, const uint8_t *Bytes, size_t Size,
                       mem::TransportStats *Stats) {
  if (Broken)
    return;
  // The writing endpoint: transmit(TowardA) is a write by the other side.
  char Side = TowardA ? 'b' : 'a';
  if (Stats)
    Stats->BytesSent += Size;
  ++Sent;
  if (P.DropEvery && Sent % P.DropEvery == 0) {
    if (TraceId)
      WireTrace::global().record(TraceId, Side, 'D', Bytes, Size,
                                 Clock->NowNs);
    if (Stats)
      ++Stats->LinkDrops;
    return;
  }
  Flight F;
  F.Bytes.assign(Bytes, Bytes + Size);
  bool Garbled = false;
  if (P.GarbleEvery && Sent % P.GarbleEvery == 0) {
    // Flip one byte — the kind for runt messages, otherwise the payload
    // middle. Never the length field: a real link corrupting the length
    // desynchronizes the stream, which the protocol survives only by
    // timeout, and the deterministic tests want the cheaper recovery
    // (checksum mismatch -> Corrupt/retry) to be what is exercised.
    size_t At = Size > FrameHeaderSize
                    ? FrameHeaderSize + (Size - FrameHeaderSize) / 2
                    : 0;
    F.Bytes[At] ^= 0x5a;
    Garbled = true;
    if (Stats)
      ++Stats->LinkGarbles;
  }
  if (TraceId)
    WireTrace::global().record(TraceId, Side, Garbled ? 'G' : 'F',
                               F.Bytes.data(), F.Bytes.size(), Clock->NowNs);
  uint64_t Jitter = P.JitterNs ? Rng() % (P.JitterNs + 1) : 0;
  uint64_t TxNs =
      P.BytesPerSec ? (Size * 1000000000ull) / P.BytesPerSec : 0;
  uint64_t &Last = TowardA ? LastArriveA : LastArriveB;
  uint64_t Arrive =
      std::max(Clock->NowNs + P.LatencyNs + Jitter, Last) + TxNs;
  Last = Arrive;
  F.ArriveNs = Arrive;
  (TowardA ? FlightToA : FlightToB).push_back(std::move(F));
}

bool SimLink::pump() {
  bool ToA;
  if (!FlightToA.empty() &&
      (FlightToB.empty() ||
       FlightToA.front().ArriveNs <= FlightToB.front().ArriveNs))
    ToA = true;
  else if (!FlightToB.empty())
    ToA = false;
  else
    return false;
  std::deque<Flight> &Flights = ToA ? FlightToA : FlightToB;
  Flight F = std::move(Flights.front());
  Flights.pop_front();
  Clock->NowNs = std::max(Clock->NowNs, F.ArriveNs);
  std::deque<uint8_t> &In = ToA ? InA : InB;
  In.insert(In.end(), F.Bytes.begin(), F.Bytes.end());
  // The callback may write back into the link (the nub answering); those
  // replies queue in flight for a later pump.
  std::function<void()> &Fn = ToA ? AReadable : BReadable;
  if (Fn)
    Fn();
  return true;
}

std::optional<uint64_t> SimLink::nextArrival() const {
  std::optional<uint64_t> Next;
  if (!FlightToA.empty())
    Next = FlightToA.front().ArriveNs;
  if (!FlightToB.empty() && (!Next || FlightToB.front().ArriveNs < *Next))
    Next = FlightToB.front().ArriveNs;
  return Next;
}

void SimEnd::write(const uint8_t *Bytes, size_t Size) {
  Link->transmit(/*TowardA=*/!IsA, Bytes, Size, Stats);
}

bool SimEnd::read(uint8_t *Out, size_t Size) {
  std::deque<uint8_t> &In = inbox();
  if (In.size() < Size)
    return false;
  for (size_t K = 0; K < Size; ++K) {
    Out[K] = In.front();
    In.pop_front();
  }
  if (Stats)
    Stats->BytesReceived += Size;
  return true;
}

size_t SimEnd::available() const { return inbox().size(); }

void SimEnd::setReadable(std::function<void()> Fn) {
  (IsA ? Link->AReadable : Link->BReadable) = std::move(Fn);
}

void SimEnd::breakLink() {
  Link->Broken = true;
  Link->AReadable = nullptr;
  Link->BReadable = nullptr;
  Link->FlightToA.clear();
  Link->FlightToB.clear();
}

//===----------------------------------------------------------------------===//
// LinkSet
//===----------------------------------------------------------------------===//

void LinkSet::add(ChannelEnd *End) {
  if (End && std::find(Ends.begin(), Ends.end(), End) == Ends.end())
    Ends.push_back(End);
}

void LinkSet::remove(const ChannelEnd *End) {
  Ends.erase(std::remove(Ends.begin(), Ends.end(), End), Ends.end());
}

bool LinkSet::pumpNext() {
  // Both ends of a link report the same earliest arrival, so registering
  // one end per link is the normal shape; registering both is harmless
  // (the pump lands on whichever comes first).
  ChannelEnd *Earliest = nullptr;
  uint64_t When = 0;
  for (ChannelEnd *End : Ends) {
    std::optional<uint64_t> Next = End->nextArrivalNs();
    if (Next && (!Earliest || *Next < When)) {
      Earliest = End;
      When = *Next;
    }
  }
  return Earliest && Earliest->pump();
}

size_t LinkSet::pumpAll() {
  size_t Delivered = 0;
  while (pumpNext())
    ++Delivered;
  return Delivered;
}
