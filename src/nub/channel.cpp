//===- nub/channel.cpp - duplex byte channels -----------------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/channel.h"

using namespace ldb::nub;

std::pair<std::shared_ptr<ChannelEnd>, std::shared_ptr<ChannelEnd>>
LocalLink::makePair() {
  auto Link = std::make_shared<LocalLink>();
  auto A = std::make_shared<ChannelEnd>(Link, /*IsA=*/true);
  auto B = std::make_shared<ChannelEnd>(Link, /*IsA=*/false);
  return {A, B};
}

void ChannelEnd::write(const uint8_t *Bytes, size_t Size) {
  if (Link->Broken)
    return;
  if (Stats)
    Stats->BytesSent += Size;
  std::deque<uint8_t> &Out = outbox();
  Out.insert(Out.end(), Bytes, Bytes + Size);
  // Wake the peer. The callback may itself write back to us; that nests
  // safely because each direction has its own queue.
  std::function<void()> &Peer = IsA ? Link->BReadable : Link->AReadable;
  if (Peer)
    Peer();
}

bool ChannelEnd::read(uint8_t *Out, size_t Size) {
  std::deque<uint8_t> &In = inbox();
  if (In.size() < Size)
    return false;
  for (size_t K = 0; K < Size; ++K) {
    Out[K] = In.front();
    In.pop_front();
  }
  if (Stats)
    Stats->BytesReceived += Size;
  return true;
}

size_t ChannelEnd::available() const { return inbox().size(); }

void ChannelEnd::setReadable(std::function<void()> Fn) {
  (IsA ? Link->AReadable : Link->BReadable) = std::move(Fn);
}

void ChannelEnd::breakLink() {
  Link->Broken = true;
  Link->AReadable = nullptr;
  Link->BReadable = nullptr;
}
