//===- nub/md_zmips.cpp - zmips nub fragment (machine-dependent) ---------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
// MACHINE-DEPENDENT: zmips. Counted by the Sec 4.3 LoC experiment.
//
//===----------------------------------------------------------------------===//

#include "nub/nubmd.h"

namespace ldb::nub {
const NubMd &zmipsNubMd();
} // namespace ldb::nub

using namespace ldb::nub;
using namespace ldb::target;

namespace {

/// zmips contexts follow the struct-sigcontext convention: signo, code,
/// pc, sp, then the 32 general registers in ascending order, then the 16
/// floating registers as 64-bit doubles.
class ZmipsNubMd : public NubMd {
public:
  const char *targetName() const override { return "zmips"; }

  ContextLayout layout(const TargetDesc &Desc) const override {
    ContextLayout L;
    L.SignoOff = 0;
    L.CodeOff = 4;
    L.PcOff = 8;
    L.SpOff = 12;
    L.GprOff = 16;
    L.GprsReversed = false;
    L.FprOff = L.GprOff + 4 * Desc.NumGpr;
    L.FprSize = 8;
    L.Size = L.FprOff + L.FprSize * Desc.NumFpr;
    return L;
  }
};

} // namespace

const NubMd &ldb::nub::zmipsNubMd() {
  static const ZmipsNubMd Md;
  return Md;
}
