//===- nub/nubmd.h - machine-dependent nub fragments ------------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-dependent corner of the nub (paper Sec 4.3): what a context
/// looks like for each target and how machine state is saved into and
/// restored from it. The save/restore code itself is machine-independent
/// but parameterized by this per-target description, exactly as the paper
/// describes for the code that fetches and stores fields of a context.
/// Per-target quirks (z68k saves floating registers in 80-bit format, the
/// zvax context stores its general registers high-to-low, the zsparc
/// context puts floating state first) live in the md_*.cpp files, which
/// the machine-dependent-LoC experiment counts.
///
//===----------------------------------------------------------------------===//

#ifndef LDB_NUB_NUBMD_H
#define LDB_NUB_NUBMD_H

#include "target/machine.h"

namespace ldb::nub {

/// Where each field of a saved context lives, relative to the context's
/// base address in the target's data space. Machine-dependent data.
struct ContextLayout {
  uint32_t SignoOff;
  uint32_t CodeOff;
  uint32_t PcOff;
  uint32_t SpOff; ///< copy of the stack pointer at stop time
  uint32_t GprOff;
  bool GprsReversed; ///< zvax stores r(N-1) first
  uint32_t FprOff;
  unsigned FprSize; ///< 8, or 10 on z68k
  uint32_t Size;    ///< total bytes

  uint32_t gprAddr(uint32_t Ctx, unsigned Reg, unsigned NumGpr) const {
    unsigned Index = GprsReversed ? NumGpr - 1 - Reg : Reg;
    return Ctx + GprOff + 4 * Index;
  }
  uint32_t fprAddr(uint32_t Ctx, unsigned Reg) const {
    return Ctx + FprOff + FprSize * Reg;
  }
};

/// The per-target nub fragment.
class NubMd {
public:
  virtual ~NubMd();

  virtual const char *targetName() const = 0;
  virtual ContextLayout layout(const target::TargetDesc &Desc) const = 0;

  /// Saves the machine's registers and pc into the context block at \p Ctx
  /// in target memory (in target byte order, as a real sigcontext would
  /// be). The shared implementation is parameterized by layout().
  virtual void saveContext(target::Machine &M, uint32_t Ctx, int32_t Signo,
                           uint32_t Code) const;

  /// Restores machine state from the context (the debugger may have
  /// modified it: advancing the pc past a breakpoint no-op, assigning to
  /// register variables).
  virtual void restoreContext(target::Machine &M, uint32_t Ctx) const;
};

/// The fragment for \p Desc; every registered target has one.
const NubMd &nubMdFor(const target::TargetDesc &Desc);

} // namespace ldb::nub

#endif // LDB_NUB_NUBMD_H
