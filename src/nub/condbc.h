//===- nub/condbc.h - condition bytecode for nub-side eval ------*- C++ -*-===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, machine-independent bytecode for breakpoint conditions and
/// tracepoint expressions, evaluated inside the nub at each break hit so
/// a condition that is false a million times costs no wire traffic. The
/// expression server compiles the same checked expression tree it already
/// rewrites to PostScript into this bytecode; expressions it cannot
/// express (floats, calls, assignments, aggregates as values) simply get
/// no bytecode and fall back to host-side evaluation.
///
/// The machine model is deliberately tiny: a stack of 64-bit signed
/// integers, reads of the target's general registers, the per-site
/// virtual frame pointer as a distinguished operand, and typed loads
/// through the nub's existing memory access paths. Every operation
/// mirrors the integer semantics of the PostScript the host-side path
/// evaluates — sign extension and 32-bit wrapping are explicit
/// instructions the emitter places exactly where the PostScript rewriter
/// places `signedbits` and `16#ffffffff and` — so the nub and the host
/// compute identical answers. Control flow is forward-only conditional
/// jumps (short-circuit && || ?:), which makes termination trivial: the
/// pc only moves forward.
///
/// Evaluation is total: a load from a bad address or a divide by zero
/// yields Fail rather than trapping, and the nub answers Fail by
/// stopping and letting the debugger decide (StopNubEvalFailed).
///
//===----------------------------------------------------------------------===//

#ifndef LDB_NUB_CONDBC_H
#define LDB_NUB_CONDBC_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ldb::nub::condbc {

/// One-byte opcodes. Immediates follow the opcode little-endian.
enum class Op : uint8_t {
  PushI = 1, ///< i64 immediate (8 bytes LE)
  PushReg,   ///< u8 register number; pushes the u32 gpr zero-extended
  PushVfp,   ///< pushes the per-site virtual frame pointer
  Load,      ///< u8 size (1/2/4): pops an address, pushes zero-extended
  SExt,      ///< u8 bits: sign-extends the low \e bits of the top
  Mask32,    ///< top &= 0xffffffff (the PostScript UInt wrap)
  Add,
  Sub,
  Mul,
  Div, ///< truncating; divide by zero fails the evaluation
  Rem, ///< truncating remainder; zero divisor fails the evaluation
  And,
  Or,
  Xor,
  Shl,
  Sra, ///< arithmetic shift right of the sign-extended-32 value
  Srl, ///< logical shift right of the low 32 bits
  Neg,
  BitNot,
  CmpEq, ///< pushes 1 or 0
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Jump,       ///< u16 forward displacement from the next instruction
  JumpIfZero, ///< u16 forward displacement; pops the condition
  Dup,
  Pop,
  Done, ///< result is the (single) value on the stack
};

/// How an evaluation came out.
enum class EvalStatus : uint8_t {
  True,  ///< completed; result nonzero
  False, ///< completed; result zero
  Fail,  ///< bad load, zero divisor, or malformed bytecode
};

/// The evaluation environment: how the interpreter reads registers and
/// target memory. Inside the nub these bind to the live Machine; in
/// tests they bind to arrays.
struct EvalEnv {
  /// Reads general register \p Reg, zero-extended (r0 reads 0).
  std::function<uint64_t(unsigned Reg)> ReadReg;
  /// Loads \p Size (1/2/4) bytes at \p Addr in the data space, in target
  /// byte order, zero-extended into \p Out; false on a bad address.
  std::function<bool(uint32_t Addr, unsigned Size, uint32_t &Out)> Load;
  /// The virtual frame pointer for the site being evaluated.
  uint32_t Vfp = 0;
};

/// Runs \p Size bytes of bytecode at \p Code, leaving the final value in
/// \p Result when the evaluation completes.
EvalStatus evaluate(const uint8_t *Code, size_t Size, const EvalEnv &Env,
                    int64_t &Result);

/// Convenience: completed-and-nonzero / completed-and-zero / failed.
inline EvalStatus evaluate(const uint8_t *Code, size_t Size,
                           const EvalEnv &Env) {
  int64_t V = 0;
  return evaluate(Code, Size, Env, V);
}

/// Builds bytecode. Forward jump targets are patched through the
/// returned fixup positions.
class Assembler {
public:
  void op(Op O) { Code.push_back(static_cast<uint8_t>(O)); }
  void pushI(int64_t V);
  void pushReg(uint8_t Reg);
  void pushVfp() { op(Op::PushVfp); }
  void load(uint8_t Size);
  void sext(uint8_t Bits);
  void mask32() { op(Op::Mask32); }

  /// Emits \p O (Jump or JumpIfZero) with a placeholder displacement and
  /// returns the fixup position for patchHere().
  size_t jump(Op O);
  /// Points the jump whose fixup is \p Fixup at the current end.
  void patchHere(size_t Fixup);

  void done() { op(Op::Done); }
  size_t size() const { return Code.size(); }
  std::vector<uint8_t> take() { return std::move(Code); }

private:
  std::vector<uint8_t> Code;
};

/// Hex transport for shipping bytecode through the expression server's
/// text pipe (lowercase, two digits per byte).
std::string toHex(const std::vector<uint8_t> &Bytes);
bool fromHex(const std::string &Hex, std::vector<uint8_t> &Bytes);

/// One buffered tracepoint record. Serialized little-endian as: id (u32),
/// hit number (u32), pc (u32), vfp (u32), register mask (u32), value
/// count (u8), values (i64 each), then one u32 per set mask bit in
/// ascending register order.
struct TraceRecord {
  uint32_t Id = 0;
  uint32_t HitNo = 0;
  uint32_t Pc = 0;
  uint32_t Vfp = 0;
  uint32_t RegMask = 0;
  std::vector<int64_t> Values;
  std::vector<uint32_t> Regs;
};

void appendRecord(std::vector<uint8_t> &Out, const TraceRecord &R);
/// Parses one record at \p Pos, advancing it; false on truncation.
bool parseRecord(const uint8_t *Bytes, size_t Size, size_t &Pos,
                 TraceRecord &R);

} // namespace ldb::nub::condbc

#endif // LDB_NUB_CONDBC_H
