//===- nub/wiretrace.cpp - wire-protocol frame recorder -------------------===//
//
// Part of the ldb reproduction of "A Retargetable Debugger" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "nub/wiretrace.h"

#include "nub/protocol.h"
#include "support/byteorder.h"

#include <cstdlib>

using namespace ldb;
using namespace ldb::nub;

WireTrace &WireTrace::global() {
  static WireTrace T;
  return T;
}

WireTrace::WireTrace() {
  const char *Path = std::getenv("LDB_WIRE_TRACE");
  if (!Path || !*Path)
    return;
  File = std::fopen(Path, "a");
  if (!File)
    return;
  const char *Window = std::getenv("LDB_WIRE_WINDOW");
  unsigned W = 32;
  if (Window && *Window)
    W = static_cast<unsigned>(std::strtoul(Window, nullptr, 10));
  std::fprintf(File, "# ldb-wire-trace v1 window=%u\n", W);
}

WireTrace::~WireTrace() {
  if (File)
    std::fclose(File);
}

unsigned WireTrace::registerLink() {
  if (!File)
    return 0;
  std::lock_guard<std::mutex> Lock(Mu);
  return ++NextLink;
}

void WireTrace::record(unsigned Link, char Side, char Event,
                       const uint8_t *Bytes, size_t Size, uint64_t TNs) {
  if (!File)
    return;
  // A write is always one whole frame, but record runts faithfully (a
  // garbled runt still has a kind byte worth logging) so the linter sees
  // what the wire saw.
  unsigned Kind = Size >= 1 ? Bytes[0] : 0;
  uint32_t Seq = 0, Len = 0, Declared = 0, Computed = 0;
  if (Size >= FrameHeaderSize) {
    Seq = static_cast<uint32_t>(unpackInt(Bytes + 1, 4, ByteOrder::Little));
    Len = static_cast<uint32_t>(unpackInt(Bytes + 5, 4, ByteOrder::Little));
    Declared =
        static_cast<uint32_t>(unpackInt(Bytes + 9, 4, ByteOrder::Little));
    // The checksum covers kind+seq+len then the payload — never itself.
    Computed = fnv1a32(Fnv1a32Init, Bytes, 9);
    Computed = fnv1a32(Computed, Bytes + FrameHeaderSize,
                       Size - FrameHeaderSize);
  }
  std::lock_guard<std::mutex> Lock(Mu);
  std::fprintf(File, "%c %u %c %u %u %u %08x %08x %llu %s\n", Event, Link,
               Side, Kind, Seq, Len, Declared, Computed,
               static_cast<unsigned long long>(TNs),
               msgKindName(static_cast<MsgKind>(Kind)));
  std::fflush(File);
}
